package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"carmot/internal/testutil"
	"carmot/internal/wire"
)

// streamLines parses an NDJSON response body into events.
func streamLines(t *testing.T, body []byte) []wire.StreamEvent {
	t.Helper()
	var events []wire.StreamEvent
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line is not a StreamEvent: %v\n%s", err, sc.Bytes())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestServeStreamEvents: ?stream=1 turns the response into ordered
// NDJSON — one compile event, at least one progress snapshot, one
// terminal result carrying the full response document.
func TestServeStreamEvents(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{StreamInterval: -1}) // every batch boundary
	body, _ := json.Marshal(profileRequest{Source: demoSrc, PSECs: true})
	r := httptest.NewRequest(http.MethodPost, "/v1/profile?stream=1", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)

	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.Bytes())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	events := streamLines(t, w.Body.Bytes())
	if len(events) < 3 {
		t.Fatalf("got %d events, want compile + ≥1 progress + result:\n%s", len(events), w.Body.Bytes())
	}
	if events[0].Event != wire.EventCompile || events[0].ROIs != 1 {
		t.Errorf("first event = %+v, want compile with 1 ROI", events[0])
	}
	progress := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev.Event == wire.EventProgress {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no progress events between compile and result")
	}
	last := events[len(events)-1]
	if last.Event != wire.EventResult || last.Status != http.StatusOK {
		t.Fatalf("terminal event = %+v, want result/200", last)
	}
	var resp profileResponse
	if err := json.Unmarshal(last.Result, &resp); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if resp.ExitCode != 0 || resp.Kind != wire.KindOK || len(resp.PSECs) == 0 {
		t.Errorf("streamed result = exit %d kind %q psecs %d bytes", resp.ExitCode, resp.Kind, len(resp.PSECs))
	}
}

// TestServeStreamCachedResult: a result-cache hit on a streaming request
// replays the stored body as a single result event, byte-identical
// (modulo NDJSON compaction) to the plain response that produced it.
func TestServeStreamCachedResult(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{StreamInterval: -1})
	h := s.Handler()

	warm, resp := postProfile(t, h, profileRequest{Source: demoSrc, PSECs: true}, nil)
	if warm.Code != http.StatusOK || resp.ExitCode != 0 {
		t.Fatalf("warm run: status %d exit %d", warm.Code, resp.ExitCode)
	}

	body, _ := json.Marshal(profileRequest{Source: demoSrc, PSECs: true, Stream: true})
	r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if got := w.Header().Get(ResultCacheHeader); got != "hit" {
		t.Fatalf("stream repeat outcome = %q, want hit", got)
	}
	events := streamLines(t, w.Body.Bytes())
	if len(events) != 1 || events[0].Event != wire.EventResult {
		t.Fatalf("cached stream = %d events (%+v), want exactly one result", len(events), events)
	}
	var compactWarm bytes.Buffer
	if err := json.Compact(&compactWarm, warm.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(events[0].Result), compactWarm.Bytes()) {
		t.Fatalf("streamed cached result diverges from the plain body\nplain (compacted):\n%s\nstreamed:\n%s",
			compactWarm.Bytes(), events[0].Result)
	}
}

// TestServeStreamDrainMidStream: a replica that begins draining (the
// SIGTERM path in carmotd calls Drain) while a ?stream=1 session is in
// flight must not cut the stream off — the session registered with
// inflight before the drain, so Drain waits for it and the client
// receives its complete NDJSON terminal result. A request arriving
// after the drain started gets a structured, retryable 503 instead, so
// a router can fail it over.
func TestServeStreamDrainMidStream(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{StreamInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(profileRequest{Source: demoSrc, PSECs: true, Stream: true})
	resp, err := ts.Client().Post(ts.URL+"/v1/profile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	// Wait for the first event so the session is provably committed,
	// then start the drain while the stream is (at latest) mid-flight.
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first stream event: %v", err)
	}
	var ev wire.StreamEvent
	if err := json.Unmarshal(first, &ev); err != nil || ev.Event != wire.EventCompile {
		t.Fatalf("first event = %q (err %v), want compile", first, err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("stream truncated after drain began: %v", err)
	}
	events := streamLines(t, rest)
	if len(events) == 0 {
		t.Fatal("no events after compile")
	}
	last := events[len(events)-1]
	if last.Event != wire.EventResult || last.Status != http.StatusOK {
		t.Fatalf("terminal event = %+v, want result/200 despite the drain", last)
	}
	var pr profileResponse
	if err := json.Unmarshal(last.Result, &pr); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if pr.ExitCode != 0 || pr.Kind != wire.KindOK || len(pr.PSECs) == 0 {
		t.Errorf("drained stream degraded: exit %d kind %q psecs %d", pr.ExitCode, pr.Kind, len(pr.PSECs))
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Streams that arrive after the cut get a retryable refusal, not a
	// hang and not a silent empty body.
	late, err := ts.Client().Post(ts.URL+"/v1/profile?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain stream status = %d, want 503", late.StatusCode)
	}
	var refusal profileResponse
	if err := json.NewDecoder(late.Body).Decode(&refusal); err != nil {
		t.Fatalf("post-drain refusal body: %v", err)
	}
	if refusal.Kind != wire.KindDraining || refusal.RetryAfterMs <= 0 {
		t.Errorf("post-drain refusal = kind %q retry_after_ms %d, want draining + positive backoff",
			refusal.Kind, refusal.RetryAfterMs)
	}
}

// TestServeStreamClientDisconnect: a streaming client dropping the
// connection mid-run cancels the session through the request context;
// the server winds down without leaking pipeline goroutines.
func TestServeStreamClientDisconnect(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{StreamInterval: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(profileRequest{Source: spinSrc, TimeoutMs: 30_000, Stream: true})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/profile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := ts.Client()
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event to prove the stream is live, then hang up.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first stream event: %v", err)
	}
	var ev wire.StreamEvent
	if err := json.Unmarshal(line, &ev); err != nil || ev.Event != wire.EventCompile {
		t.Fatalf("first event = %q (err %v), want compile", line, err)
	}
	resp.Body.Close()
	client.CloseIdleConnections()

	// The session must notice the cancellation well before its own 30s
	// deadline: ts.Close blocks until the handler returns.
	done := make(chan struct{})
	go func() {
		ts.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("session did not wind down after client disconnect")
	}
}

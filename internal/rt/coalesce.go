package rt

import "carmot/internal/core"

// Producer-side access coalescing (the dynamic complement to the
// instrumenter's static aggregation, §4.4 opt 2), implemented directly
// inside the runtime's emit path: consecutive EmitAccess calls that share
// a site, callstack, and access kind and fall on the same cell or on a
// constant stride are merged into one pending run, which reaches the
// batch as a single EvAccessRun slot. Because the flush path reserves one
// sequence number per covered access and splits runs at batch boundaries,
// the condensed stream downstream is byte-identical to the uncoalesced
// one — coalescing only compresses the in-memory batch format.
//
// Earlier the combining buffer was a separate rt.Coalescer the
// interpreter held in front of the runtime, which cost every access an
// extra call level and forced every non-access emit helper in both
// execution engines to remember a flush call. Folding it into the emit
// path deleted that discipline (the Emit* helpers flush internally) and
// recovered the bytecode engine's coalescing regression: the run-extend
// check now runs where the access is already in registers.
//
// The Emit* methods are documented single-threaded (one program thread),
// so the pending-run state lives in plain fields.
type pendingRun struct {
	active     bool
	haveStride bool
	write      bool
	site       int32
	cs         core.CallstackID
	addr       uint64 // first covered cell
	lastAddr   uint64 // most recent covered cell
	stride     uint64 // constant stride (two's-complement; 0 = same cell)
	count      int64
}

// The combining buffer carries its own cost (a run-extend check plus a
// flush/restart on every access that doesn't merge), which is pure loss
// on workloads whose accesses alternate sites and never form runs. The
// gate measures the merge ratio over the first window of accesses and
// switches the buffer off for the rest of the run when it saves less
// than 1/16 of the emits. The decision is a pure function of the access
// stream, so gated runs stay deterministic — and byte-identical to
// ungated ones, since coalescing never changes the condensed stream.
const (
	coalesceProbeWindow = 8192
	coalesceMinSavings  = 16 // keep the buffer only if ≥ 1/16 of emits merge away
	// coalesceEarlyWindow is the zero-merge early exit: a stream whose
	// first window produced not one merged run cannot possibly clear the
	// savings threshold by the full probe window, so the gate decides
	// after an eighth of it and stops taxing the non-merging stream.
	coalesceEarlyWindow = 1024
)

// coalesceStart begins a new pending run after flushPending sequenced the
// previous one; it also hosts the adaptive gate, which sits off the
// run-extend fast path so merging streams never pay for it.
func (r *Runtime) coalesceStart(addr uint64, write bool, site int32, cs core.CallstackID) bool {
	r.flushPending()
	if !r.coForce && !r.coProbed {
		if r.coAccesses >= coalesceProbeWindow ||
			(r.coAccesses >= coalesceEarlyWindow && r.coAccesses == r.coRuns) {
			r.coProbed = true
			if (r.coAccesses-r.coRuns)*coalesceMinSavings < r.coAccesses {
				r.coOn = false
				return r.emit(Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs})
			}
		}
	}
	p := &r.pend
	p.active = true
	p.haveStride = false
	p.addr = addr
	p.lastAddr = addr
	p.count = 1
	p.write = write
	p.site = site
	p.cs = cs
	r.coAccesses++
	return true
}

// flushPending sequences the pending run, if any, ahead of whatever the
// caller is about to emit. Idempotent; every emit helper that appends a
// non-access event calls it first, so the run takes exactly the sequence
// numbers its accesses would have taken uncoalesced. A one-access run —
// the common case for access patterns that alternate sites and never
// merge — skips the run encoding and goes straight to the plain emit
// path it would reduce to anyway.
func (r *Runtime) flushPending() {
	p := &r.pend
	if !p.active {
		return
	}
	p.active = false
	r.coRuns++
	if p.count == 1 {
		r.emit(Event{Kind: EvAccess, Write: p.write, Addr: p.addr, Site: p.site, CS: p.cs})
		return
	}
	r.emitRun(p.addr, p.stride, p.count, p.write, p.site, p.cs)
}

// CoalesceStats reports how many accesses the combining buffer has seen
// and how many emit-path runs they became (equal when nothing merged).
// Zero/zero when Config.Coalesce is off.
func (r *Runtime) CoalesceStats() (accesses, runs uint64) { return r.coAccesses, r.coRuns }

// Package chaos is a deterministic fault-schedule harness for the
// profiling pipeline. A Schedule is derived entirely from one seed: the
// pipeline geometry, the randomized workload, and a set of injected
// faults (panics, delays, capacity exhaustion) at named faultinject
// points, each firing on specific shot numbers. Execute runs the
// schedule against internal/rt and Check verifies the self-healing
// invariants:
//
//	termination   — the run finishes within its deadline (no hangs)
//	containment   — no goroutine outlives Finish
//	equivalence   — the report is byte-identical to the fault-free
//	                reference, OR the divergence is honestly accounted
//	                for in Diagnostics (an error, a degraded recovery,
//	                or a downgrade record)
//	transparency  — delay-only schedules must be byte-identical with a
//	                clean error state: latency alone may never change
//	                a PSEC
//
// Everything is reproducible: rerunning a seed replays the same
// workload against the same faults.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"carmot/internal/faultinject"
	"carmot/internal/rt"
	"carmot/internal/testutil"
)

// Fault kinds a schedule can inject.
const (
	KindPanic = "panic"
	KindDelay = "delay"
)

// Points lists the pipeline fault points schedules draw from. Shot
// counters are per-point and global, so a shot number selects the n-th
// crossing of that point across all goroutines.
var Points = []string{
	"rt.worker.batch",
	"rt.post.apply",
	"rt.shard.apply",
	"rt.shard.replay",
	"rt.post.finish",
}

// Fault is one injected fault: Kind fired at Point on each shot number
// in Shots.
type Fault struct {
	Point string
	Kind  string
	Shots []int64
	Delay time.Duration // KindDelay only
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@%s%v", f.Kind, f.Point, f.Shots)
}

// Schedule is a fully derived chaos run: geometry, recovery knobs, and
// the fault set. Build one with NewSchedule; every field is a pure
// function of the seed.
type Schedule struct {
	Seed    int64
	Batch   int
	Workers int
	Shards  int
	Recover bool
	// JournalBudget is the rt.Config journal budget (0 = default).
	// Small budgets force eviction-degraded recoveries.
	JournalBudget int64
	// MaxLiveCells, when nonzero, is a capacity-exhaustion fault: the
	// governor must climb its ladder rather than crash.
	MaxLiveCells int64
	Faults       []Fault
}

func (s Schedule) String() string {
	fs := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		fs[i] = f.String()
	}
	return fmt.Sprintf("seed=%d b=%d w=%d k=%d recover=%v journal=%d cells=%d faults=[%s]",
		s.Seed, s.Batch, s.Workers, s.Shards, s.Recover, s.JournalBudget,
		s.MaxLiveCells, strings.Join(fs, " "))
}

// DelayOnly reports whether every injected fault is a delay and no
// capacity cap is set — the schedules for which byte-identical output
// is mandatory, not merely preferred.
func (s Schedule) DelayOnly() bool {
	if s.MaxLiveCells != 0 {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind != KindDelay {
			return false
		}
	}
	return true
}

// NewSchedule derives a schedule from seed. The distribution leans
// toward recovery-enabled runs with panic faults (the subsystem under
// test) but keeps delay-only, containment-only (Recover off), starved
// journal, and capacity-exhaustion schedules in the mix.
func NewSchedule(seed int64) Schedule {
	r := rand.New(rand.NewSource(seed))
	geoms := [][3]int{{3, 1, 2}, {8, 2, 4}, {16, 2, 4}, {64, 3, 3}, {257, 4, 7}, {31, 2, 1}, {1, 1, 8}}
	g := geoms[r.Intn(len(geoms))]
	s := Schedule{
		Seed:    seed,
		Batch:   g[0],
		Workers: g[1],
		Shards:  g[2],
		Recover: r.Intn(4) != 0, // 3/4 recovery on, 1/4 legacy containment
	}
	switch r.Intn(8) {
	case 0:
		s.JournalBudget = -1 // retain nothing: every recovery degrades
	case 1:
		s.JournalBudget = int64(1024 + r.Intn(4096)) // starved: evictions likely
	}
	if r.Intn(6) == 0 {
		s.MaxLiveCells = int64(8 + r.Intn(56))
	}
	nf := 1 + r.Intn(3)
	for i := 0; i < nf; i++ {
		f := Fault{Point: Points[r.Intn(len(Points))]}
		if r.Intn(4) == 0 {
			f.Kind = KindDelay
			f.Delay = time.Duration(50+r.Intn(450)) * time.Microsecond
		} else {
			f.Kind = KindPanic
		}
		ns := 1 + r.Intn(3)
		for j := 0; j < ns; j++ {
			f.Shots = append(f.Shots, int64(1+r.Intn(120)))
		}
		s.Faults = append(s.Faults, f)
	}
	return s
}

// Result is one executed schedule: the faulted run's report and
// diagnostics next to the fault-free reference report.
type Result struct {
	Schedule Schedule
	Report   string
	Ref      string
	Diag     rt.Diagnostics
	Err      error
	TimedOut bool
	Leaked   bool
}

// Execute runs the schedule: first the fault-free reference (same seed,
// same geometry, no faults, no caps), then the faulted run with the
// schedule's hooks armed, under deadline with a goroutine-leak check.
func Execute(s Schedule, deadline time.Duration) Result {
	ops := genOps(rand.New(rand.NewSource(s.Seed)))
	refCfg := s.config()
	refCfg.Limits.MaxLiveCells = 0
	ref, _, _ := run(refCfg, ops)

	res := Result{Schedule: s, Ref: ref}
	baseline := testutil.Goroutines()
	defer faultinject.Reset()
	for _, f := range s.Faults {
		switch f.Kind {
		case KindPanic:
			faultinject.Set(f.Point, faultinject.PanicOnShots(
				fmt.Sprintf("chaos %s seed %d", f.Point, s.Seed), f.Shots...))
		case KindDelay:
			faultinject.Set(f.Point, faultinject.SleepOnShots(f.Delay, f.Shots...))
		}
	}

	type outcome struct {
		report string
		diag   rt.Diagnostics
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		report, diag, err := run(s.config(), ops)
		ch <- outcome{report, diag, err}
	}()
	select {
	case o := <-ch:
		res.Report, res.Diag, res.Err = o.report, o.diag, o.err
	case <-time.After(deadline):
		res.TimedOut = true
		return res
	}
	faultinject.Reset()
	// Settle with a generous window: the faulted run may still be
	// tearing down shard goroutines when run() returns, and delay
	// faults stretch that tail.
	res.Leaked = !testutil.SettleGoroutines(baseline, 5*time.Second)
	return res
}

func (s Schedule) config() rt.Config {
	return rt.Config{
		BatchSize: s.Batch, Workers: s.Workers, Shards: s.Shards,
		Profile: rt.ProfileFull,
		Sites: []rt.SiteInfo{
			{Pos: "c.mc:5:3", Func: "f", Write: false},
			{Pos: "c.mc:6:3", Func: "g", Write: true},
		},
		ROIs: []rt.ROIMeta{
			{ID: 0, Name: "outer", Kind: "carmot", Pos: "c.mc:1:1"},
			{ID: 1, Name: "inner", Kind: "carmot", Pos: "c.mc:2:2"},
		},
		Limits:             rt.Limits{MaxLiveCells: s.MaxLiveCells},
		Recover:            s.Recover,
		JournalBudgetBytes: s.JournalBudget,
	}
}

// Check verifies the invariants on an executed schedule. It returns nil
// when the run is sound and a descriptive error otherwise; the error
// always embeds the schedule (and thus the seed) for replay.
func Check(res Result) error {
	s := res.Schedule
	if res.TimedOut {
		return fmt.Errorf("%s: run did not terminate within deadline", s)
	}
	if res.Leaked {
		return fmt.Errorf("%s: goroutines leaked past Finish", s)
	}
	d := res.Diag
	honest := res.Err != nil || d.RecoveryFailed() || d.Degraded() ||
		d.WorkerPanics > 0 || d.PostprocessorPanics > 0
	if res.Report != res.Ref && !honest {
		return fmt.Errorf("%s: report diverges from fault-free reference with clean diagnostics", s)
	}
	if s.DelayOnly() {
		if res.Report != res.Ref {
			return fmt.Errorf("%s: delay-only schedule changed the report", s)
		}
		if res.Err != nil {
			return fmt.Errorf("%s: delay-only schedule reported error: %v", s, res.Err)
		}
	}
	// A run that claims full recovery (replays only, no degradations,
	// no caps) must actually be byte-identical.
	if s.MaxLiveCells == 0 && res.Err == nil && !d.RecoveryFailed() && !d.Degraded() &&
		res.Report != res.Ref {
		return fmt.Errorf("%s: recovered run silently diverges", s)
	}
	return nil
}

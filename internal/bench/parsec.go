package bench

import "fmt"

// blackscholesBench is the PARSEC blackscholes analog: option pricing
// over independent entries with native math calls, all inputs shared, the
// price vector written disjointly.
func blackscholesBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float exp(float x);
extern float log(float x);
extern float sqrt(float x);

int N = %d;
float* sptprice;
float* strike;
float* rate;
float* volatility;
float* otime;
float* prices;

void init() {
	sptprice = malloc(N);
	strike = malloc(N);
	rate = malloc(N);
	volatility = malloc(N);
	otime = malloc(N);
	prices = malloc(N);
	rand_seed(101);
	for (int j = 0; j < N; j++) {
		sptprice[j] = 90.0 + rand_float() * 20.0;
		strike[j] = 95.0 + rand_float() * 10.0;
		rate[j] = 0.01 + rand_float() * 0.05;
		volatility[j] = 0.1 + rand_float() * 0.4;
		otime[j] = 0.25 + rand_float();
	}
}

float cndf(float x) {
	float k = 1.0 / (1.0 + 0.2316419 * x);
	float w = 0.31938153 * k - 0.356563782 * k * k + 1.781477937 * k * k * k;
	float d = 0.3989423 * exp(0.0 - x * x / 2.0);
	return 1.0 - d * w;
}

void priceAll() {
	float d1;
	float d2;
	float den;
	#pragma omp parallel for private(d1, d2, den)
	for (int i = 0; i < N; i++) {
		den = volatility[i] * sqrt(otime[i]);
		d1 = (log(sptprice[i] / strike[i]) + (rate[i] + volatility[i] * volatility[i] / 2.0) * otime[i]) / den;
		d2 = d1 - den;
		prices[i] = 0.0;
		for (int rep = 0; rep < 4; rep++) {
			prices[i] = prices[i] + sptprice[i] * cndf(d1 + rep * 0.001) - strike[i] * exp(0.0 - rate[i] * otime[i]) * cndf(d2 + rep * 0.001);
		}
		prices[i] = prices[i] / 4.0;
	}
}

int main() {
	init();
	priceAll();
	float acc = 0.0;
	for (int i = 0; i < N; i++) {
		acc = acc + prices[i];
	}
	return acc / N;
}
`, scale)
	}
	return Benchmark{
		Name: "blackscholes", Suite: SuitePARSEC, Source: src,
		DevScale: 800, ProdScale: 30000,
		Notes: "embarrassingly parallel pricing; private temporaries inside called helpers",
	}
}

// cannealBench is the PARSEC canneal analog. Its original parallelism is
// pthread workers, modeled as parallel sections over disjoint element
// ranges; CARMOT's ROI is the worker's swap loop (§5.1: "we use as ROI
// the entry point function of such threads").
func cannealBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
int N = %d;
int* loc;
int* gain;
int accepted = 0;

void init() {
	loc = malloc(N);
	gain = malloc(N);
	for (int j = 0; j < N; j++) {
		loc[j] = j;
		gain[j] = (j * 2654435761) %% 1000;
	}
}

int cost(int a, int b) {
	int c = 0;
	for (int r = 0; r < 24; r++) {
		c = c + (gain[a] - gain[b] + r) %% 17;
	}
	return c;
}

void worker(int lo, int hi, int seed) {
	int s = seed;
	int a = 0;
	int b = 0;
	int delta = 0;
	#pragma carmot roi swaps
	for (int i = lo; i < hi; i++) {
		a = lo + (i * 48271) %% (hi - lo);
		b = lo + (i * 16807 + 7) %% (hi - lo);
		delta = cost(a, b);
		if (delta %% 2 == 0) {
			accepted = accepted + 1;
		}
	}
}

int main() {
	init();
	int q = N / 4;
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			worker(0, q, 1);
		}
		#pragma omp section
		{
			worker(q, 2 * q, 2);
		}
		#pragma omp section
		{
			worker(2 * q, 3 * q, 3);
		}
		#pragma omp section
		{
			worker(3 * q, N, 4);
		}
	}
	return accepted;
}
`, scale)
	}
	return Benchmark{
		Name: "canneal", Suite: SuitePARSEC, Source: src,
		DevScale: 1200, ProdScale: 40000,
		PthreadStyle: true,
		Notes:        "pthread-style sections; CARMOT recommends parallel for + reduction on the accept counter",
	}
}

// streamclusterBench is the PARSEC streamcluster analog: nearest-center
// assignment with a cost reduction.
func streamclusterBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
int K = 24;
int D = 8;
float* pts;
float* ctr;
float totalCost = 0.0;

void init() {
	pts = malloc(N * 8);
	ctr = malloc(24 * 8);
	rand_seed(55);
	for (int j = 0; j < N * 8; j++) {
		pts[j] = rand_float();
	}
	for (int j = 0; j < 24 * 8; j++) {
		ctr[j] = rand_float();
	}
}

void assign() {
	float best;
	float d;
	float diff;
	#pragma omp parallel for private(best, d, diff) reduction(+: totalCost)
	for (int i = 0; i < N; i++) {
		best = 1000000.0;
		for (int k = 0; k < K; k++) {
			d = 0.0;
			for (int j = 0; j < D; j++) {
				diff = pts[i * D + j] - ctr[k * D + j];
				d = d + diff * diff;
			}
			if (d < best) {
				best = d;
			}
		}
		totalCost = totalCost + best;
	}
}

int main() {
	init();
	assign();
	return totalCost;
}
`, scale)
	}
	return Benchmark{
		Name: "streamcluster", Suite: SuitePARSEC, Source: src,
		DevScale: 400, ProdScale: 12000,
		Notes: "nested distance loops; global cost reduction",
	}
}

// swaptionsBench is the PARSEC swaptions analog: pthread-style sections,
// each pricing a range of swaptions by Monte Carlo with per-trial hashed
// seeds (independent iterations — unlike ep, CARMOT recovers all the
// parallelism here and matches the hand-written threads, §5.1).
func swaptionsBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern float sqrt(float x);
extern float exp(float x);

int N = %d;
float* price;

float simTrial(int t) {
	int h = (t * 2654435761) %% 1000003;
	float x = h;
	x = x / 1000003.0;
	float v = 0.0;
	for (int s = 0; s < 16; s++) {
		v = v + exp(0.0 - x * s / 16.0);
		x = x * 0.9 + 0.05;
	}
	return v / 16.0;
}

void priceRange(int lo, int hi) {
	float sum;
	#pragma carmot roi trials
	for (int i = lo; i < hi; i++) {
		sum = simTrial(i) * sqrt(1.0 + i %% 7);
		price[i] = sum;
	}
}

int main() {
	price = malloc(N);
	int q = N / 4;
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			priceRange(0, q);
		}
		#pragma omp section
		{
			priceRange(q, 2 * q);
		}
		#pragma omp section
		{
			priceRange(2 * q, 3 * q);
		}
		#pragma omp section
		{
			priceRange(3 * q, N);
		}
	}
	float acc = 0.0;
	for (int i = 0; i < N; i++) {
		acc = acc + price[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "swaptions", Suite: SuitePARSEC, Source: src,
		DevScale: 1000, ProdScale: 30000,
		PthreadStyle: true,
		Notes:        "independent Monte-Carlo trials; CARMOT matches the labor-intensive pthread parallelism",
	}
}

package main

import (
	"testing"

	"carmot/internal/harness"
)

// quick shrinks inputs so every experiment path runs in CI time.
var quick = harness.Config{Threads: 8, ScaleDiv: 32}

func TestRunFastExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig9", "stats", "verify"} {
		if err := run(exp, quick, 1, "", interpOpts{iters: 1}, 1, 1, "", 1, 1); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunRTExperiment(t *testing.T) {
	if err := run("rt", quick, 1, "", interpOpts{iters: 1}, 1, 1, "", 1, 1); err != nil {
		t.Errorf("run(rt): %v", err)
	}
}

func TestRunInterpExperiment(t *testing.T) {
	if err := run("interp", quick, 1, "", interpOpts{iters: 1}, 1, 1, "", 1, 1); err != nil {
		t.Errorf("run(interp): %v", err)
	}
}

func TestRunServeExperiment(t *testing.T) {
	if err := run("serve", quick, 1, "", interpOpts{iters: 1}, 4, 24, "", 1, 1); err != nil {
		t.Errorf("run(serve): %v", err)
	}
}

func TestRunFleetExperiment(t *testing.T) {
	if err := run("fleet", quick, 1, "", interpOpts{iters: 1}, 1, 1, "", 4, 24); err != nil {
		t.Errorf("run(fleet): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("frobnicate", quick, 1, "", interpOpts{iters: 1}, 1, 1, "", 1, 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

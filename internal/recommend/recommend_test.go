package recommend

import (
	"strings"
	"testing"

	"carmot/internal/core"
)

func mkPSEC(elems ...*core.Element) *core.PSEC {
	return &core.PSEC{
		ROI:        core.ROIInfo{Name: "r", Kind: "carmot", Pos: "t.mc:1:1"},
		Elements:   elems,
		Reach:      core.NewReachGraph(),
		Callstacks: core.NewCallstackTable(),
	}
}

func variable(name string, sets core.SetMask) *core.Element {
	return &core.Element{
		PSE:    core.PSEDesc{Kind: core.PSEVariable, Name: name, AllocPos: "t.mc:2:2", Cells: 1},
		Sets:   sets,
		Ranges: []core.CellRange{{Lo: 0, Hi: 1, Sets: sets}},
	}
}

func heap(name string, ranges ...core.CellRange) *core.Element {
	e := &core.Element{
		PSE:    core.PSEDesc{Kind: core.PSEHeap, Name: name, AllocPos: "t.mc:3:3", Cells: 8},
		Ranges: ranges,
	}
	for _, r := range ranges {
		e.Sets = core.MergeSets(e.Sets, r.Sets)
	}
	return e
}

func TestParallelForClauseMapping(t *testing.T) {
	psec := mkPSEC(
		variable("ro", core.SetInput),
		variable("scratch", core.SetCloneable|core.SetOutput),
		variable("seed", core.SetCloneable|core.SetInput|core.SetOutput),
		variable("sum", core.SetTransfer|core.SetInput|core.SetOutput),
		variable("dep", core.SetTransfer|core.SetOutput),
	)
	psec.ElementByName("sum").Reducible = true
	psec.ElementByName("sum").Reduction = "+"
	psec.ElementByName("dep").UseSites = []core.UseSite{
		{Pos: "t.mc:9:3", IsWrite: true, Callstacks: []core.CallstackID{0}},
	}
	rec := RecommendParallelFor(psec, nil)
	pragma := rec.Pragma()
	for _, want := range []string{"shared(ro)", "reduction(+:sum)"} {
		if !strings.Contains(pragma, want) {
			t.Errorf("pragma %q missing %q", pragma, want)
		}
	}
	// With no ROI context the liveness question is answered
	// conservatively: Cloneable+Output becomes lastprivate.
	if len(rec.LastPrivate) == 0 {
		t.Errorf("scratch should be lastprivate without liveness proof: %+v", rec)
	}
	if len(rec.FirstPrivate) != 1 || rec.FirstPrivate[0].Name != "seed" {
		t.Errorf("firstprivate = %v", rec.FirstPrivate)
	}
	if len(rec.Criticals) != 1 || rec.Criticals[0].PSE != "dep" {
		t.Fatalf("criticals = %+v", rec.Criticals)
	}
	if len(rec.Criticals[0].Statements) != 1 || rec.Criticals[0].Statements[0].Pos != "t.mc:9:3" {
		t.Errorf("critical statements = %+v", rec.Criticals[0].Statements)
	}
}

func TestParallelForMemoryRanges(t *testing.T) {
	// Figure 2: one cell of the array carries the RAW; most of it is
	// cloneable.
	psec := mkPSEC(heap("a",
		core.CellRange{Lo: 0, Hi: 1, Sets: core.SetCloneable | core.SetOutput},
		core.CellRange{Lo: 1, Hi: 2, Sets: core.SetTransfer | core.SetInput | core.SetOutput},
		core.CellRange{Lo: 2, Hi: 8, Sets: core.SetInput | core.SetOutput},
	))
	rec := RecommendParallelFor(psec, nil)
	if len(rec.Clones) != 1 || rec.Clones[0].Name != "a" {
		t.Fatalf("clone advice = %+v", rec.Clones)
	}
	if len(rec.Clones[0].Ranges) != 1 || rec.Clones[0].Ranges[0].Lo != 0 {
		t.Errorf("clone ranges = %v", rec.Clones[0].Ranges)
	}
	if len(rec.Criticals) != 1 {
		t.Fatalf("criticals = %+v", rec.Criticals)
	}
	if rg := rec.Criticals[0].Ranges; len(rg) != 1 || rg[0].Lo != 1 || rg[0].Hi != 2 {
		t.Errorf("transfer ranges = %v", rg)
	}
	report := rec.Report()
	if !strings.Contains(report, "omp_get_thread_num") {
		t.Errorf("clone advice should mention omp_get_thread_num:\n%s", report)
	}
}

func TestParallelForInputOnlyMemoryShared(t *testing.T) {
	psec := mkPSEC(heap("ro", core.CellRange{Lo: 0, Hi: 8, Sets: core.SetInput}))
	rec := RecommendParallelFor(psec, nil)
	if len(rec.Shared) != 1 || rec.Shared[0].Name != "ro" {
		t.Errorf("shared = %v", rec.Shared)
	}
	if len(rec.Clones)+len(rec.Criticals) != 0 {
		t.Error("input-only memory needs no clone/critical")
	}
}

func TestTaskRecommendation(t *testing.T) {
	psec := mkPSEC(
		variable("in1", core.SetInput),
		variable("out1", core.SetOutput),
		variable("both", core.SetInput|core.SetOutput),
	)
	rec := RecommendTask(psec)
	if got := rec.Pragma(); got != "#pragma omp task depend(in: both, in1) depend(out: both, out1)" {
		t.Errorf("task pragma = %q", got)
	}
}

func TestSmartPointerReport(t *testing.T) {
	psec := mkPSEC()
	a := core.PSEDesc{Kind: core.PSEHeap, Name: "doc", AllocPos: "t.mc:4:4"}
	b := core.PSEDesc{Kind: core.PSEHeap, Name: "para", AllocPos: "t.mc:5:5"}
	psec.Reach.Touch(a, 1)
	psec.Reach.Touch(b, 2)
	psec.Reach.AddEdge(a, b, 3)
	psec.Reach.AddEdge(b, a, 4)
	rec := RecommendSmartPointers(psec)
	if len(rec.Cycles) != 1 {
		t.Fatalf("cycles = %d", len(rec.Cycles))
	}
	if rec.Cycles[0].WeakSuggestion == nil || rec.Cycles[0].WeakSuggestion.To != "doc" {
		t.Errorf("weak suggestion = %+v (doc has the oldest access)", rec.Cycles[0].WeakSuggestion)
	}
	report := rec.Report()
	for _, want := range []string{"doc", "para", "weak pointer"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	empty := RecommendSmartPointers(mkPSEC())
	if !strings.Contains(empty.Report(), "no reference cycles") {
		t.Error("cycle-free report should say so")
	}
}

func TestSTATSClassification(t *testing.T) {
	psec := mkPSEC(
		variable("in", core.SetInput),
		variable("out", core.SetOutput),
		variable("state1", core.SetTransfer|core.SetInput|core.SetOutput),
		variable("state2", core.SetInput|core.SetOutput),
		variable("scratch", core.SetCloneable|core.SetOutput),
		heap("buf", core.CellRange{Lo: 0, Hi: 8, Sets: core.SetCloneable | core.SetOutput}),
	)
	rec := RecommendSTATS(psec)
	check := func(list []string, want ...string) {
		if len(list) != len(want) {
			t.Errorf("class = %v, want %v", list, want)
			return
		}
		for i := range want {
			if list[i] != want[i] {
				t.Errorf("class = %v, want %v", list, want)
			}
		}
	}
	check(rec.Input, "in")
	check(rec.Output, "buf", "out")
	check(rec.State, "state1", "state2")
	check(rec.Local, "scratch")
	if p := rec.Pragma(); !strings.Contains(p, "state(state1, state2)") {
		t.Errorf("pragma = %q", p)
	}
}

func TestSTATSNameFolding(t *testing.T) {
	// A pointer variable (Input) and its pointee (Transfer) share a name;
	// the strongest class wins.
	psec := mkPSEC(
		variable("w", core.SetInput),
		heap("w", core.CellRange{Lo: 0, Hi: 8, Sets: core.SetTransfer | core.SetInput | core.SetOutput}),
	)
	rec := RecommendSTATS(psec)
	if len(rec.State) != 1 || rec.State[0] != "w" || len(rec.Input) != 0 {
		t.Errorf("classes = %+v", rec)
	}
}

func TestTable1Shape(t *testing.T) {
	t1 := Table1()
	if len(t1) != 4 {
		t.Fatalf("Table 1 has %d rows", len(t1))
	}
	omp := t1["OMP parallel for (and critical/ordered)"]
	if !omp.Sets || !omp.UseCallstacks || omp.Reachability {
		t.Errorf("parallel for needs = %+v", omp)
	}
	sp := t1["Smart Pointers"]
	if !sp.Sets || sp.UseCallstacks || !sp.Reachability {
		t.Errorf("smart pointers needs = %+v", sp)
	}
	task := t1["OMP task"]
	if !task.Sets || task.UseCallstacks || task.Reachability {
		t.Errorf("task needs = %+v", task)
	}
}

func TestClauseDeduplication(t *testing.T) {
	// Two dynamic instances of the same variable (different call stacks)
	// must yield one clause.
	e1 := variable("t", core.SetCloneable|core.SetOutput)
	e2 := variable("t", core.SetCloneable|core.SetOutput)
	e2.PSE.AllocStack = 5
	rec := RecommendParallelFor(mkPSEC(e1, e2), nil)
	if n := len(rec.LastPrivate) + len(rec.Private); n != 1 {
		t.Errorf("duplicate clauses: %+v", rec)
	}
}

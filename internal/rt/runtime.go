package rt

import (
	"runtime"
	"sort"
	"sync"

	"carmot/internal/core"
)

// Config configures the runtime.
type Config struct {
	BatchSize int // events per batch (default 4096)
	Workers   int // worker goroutines (default GOMAXPROCS)
	Profile   TrackingProfile
	Sites     []SiteInfo
	ROIs      []ROIMeta
	// StaticVarUses supplies compiler-known use sites (accesses whose
	// instrumentation optimization 1 removed), keyed by the variable's
	// declaration position.
	StaticVarUses map[string][]int32
	// ReducibleVars supplies the statically decided reduction operators,
	// keyed by the variable's declaration position.
	ReducibleVars map[string]string
}

// Runtime is the profiling runtime. The program thread calls the Emit*
// methods and Finish; everything else runs on the pipeline goroutines.
type Runtime struct {
	cfg Config
	cs  *core.CallstackTable

	cur   []Event
	seq   uint64
	phase uint32

	nextBatch int
	filled    chan batchMsg
	done      chan []*core.PSEC
	workerWG  sync.WaitGroup
	toPost    chan processedMsg
	post      *postState
}

type batchMsg struct {
	idx int
	evs []Event
}

type processedMsg struct {
	idx   int
	items []postItem
}

// postItem is either a passthrough event or a block of condensed access
// summaries; items preserve intra-batch ordering across the two forms.
type postItem struct {
	ev   *Event
	sums []accSummary
	uses []useRec
}

// accSummary condenses every access to one cell within one phase of one
// batch; the FSA needs only the kind of the first access and whether any
// write followed (§4.1).
type accSummary struct {
	addr         uint64
	firstIsWrite bool
	hasWrite     bool
	count        uint64
	firstSeq     uint64
	lastSeq      uint64
}

// useRec aggregates use-callstack samples per (site, callstack).
type useRec struct {
	site    int32
	cs      core.CallstackID
	count   uint64
	samples []uint64 // representative accessed addresses (capped)
}

const maxUseSamples = 8

// New creates and starts a runtime.
func New(cfg Config) *Runtime {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	r := &Runtime{
		cfg:    cfg,
		cs:     core.NewCallstackTable(),
		cur:    make([]Event, 0, cfg.BatchSize),
		filled: make(chan batchMsg, 4*cfg.Workers),
		toPost: make(chan processedMsg, 4*cfg.Workers),
		done:   make(chan []*core.PSEC, 1),
	}
	r.post = newPostState(&cfg, r.cs)
	// Worker threads: condense batches (the "Process Batch" stage).
	for i := 0; i < cfg.Workers; i++ {
		r.workerWG.Add(1)
		go r.worker()
	}
	// Post-processing stage: reorder and apply (the "Postprocess Batch"
	// stage; ordering preserves FSA and ASMT semantics).
	go r.postprocessor()
	go func() {
		r.workerWG.Wait()
		close(r.toPost)
	}()
	return r
}

// Callstacks exposes the interning table; the interpreter interns one
// stack per function entry (callstack clustering, §4.4 opt 7).
func (r *Runtime) Callstacks() *core.CallstackTable { return r.cs }

// Profile returns the tracking profile the runtime was configured with.
func (r *Runtime) Profile() TrackingProfile { return r.cfg.Profile }

// Emit queues an event. The caller is the single program thread.
func (r *Runtime) Emit(ev Event) {
	ev.Phase = r.phase
	ev.Seq = r.seq
	r.seq++
	r.cur = append(r.cur, ev)
	if len(r.cur) == cap(r.cur) {
		r.flush()
	}
}

// EmitAccess is the hot-path helper for single-cell accesses.
func (r *Runtime) EmitAccess(addr uint64, write bool, site int32, cs core.CallstackID) {
	r.Emit(Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs})
}

// BeginROI marks the start of a dynamic ROI invocation.
func (r *Runtime) BeginROI(roi int) {
	r.Emit(Event{Kind: EvROIBegin, ROI: int32(roi)})
	r.phase++
}

// EndROI marks the end of a dynamic ROI invocation.
func (r *Runtime) EndROI(roi int) {
	r.Emit(Event{Kind: EvROIEnd, ROI: int32(roi)})
	r.phase++
}

func (r *Runtime) flush() {
	if len(r.cur) == 0 {
		return
	}
	r.filled <- batchMsg{idx: r.nextBatch, evs: r.cur}
	r.nextBatch++
	r.cur = make([]Event, 0, r.cfg.BatchSize)
}

// Finish flushes pending events, drains the pipeline, and returns the
// PSEC of every ROI (indexed by ROI ID).
func (r *Runtime) Finish() []*core.PSEC {
	r.flush()
	close(r.filled)
	return <-r.done
}

func (r *Runtime) worker() {
	defer r.workerWG.Done()
	for b := range r.filled {
		r.toPost <- processedMsg{idx: b.idx, items: condense(b.evs)}
	}
}

// condense is the worker stage: it folds runs of access events into
// per-cell summaries while passing structural events through in order.
func condense(evs []Event) []postItem {
	var items []postItem
	type key struct {
		phase uint32
		addr  uint64
	}
	var sums map[key]*accSummary
	type useKey struct {
		site int32
		cs   core.CallstackID
	}
	var uses map[useKey]*useRec
	var order []key
	var useOrder []useKey

	flushBlock := func() {
		if len(sums) == 0 && len(uses) == 0 {
			return
		}
		it := postItem{}
		it.sums = make([]accSummary, 0, len(sums))
		for _, k := range order {
			it.sums = append(it.sums, *sums[k])
		}
		it.uses = make([]useRec, 0, len(uses))
		for _, k := range useOrder {
			it.uses = append(it.uses, *uses[k])
		}
		items = append(items, it)
		sums, uses, order, useOrder = nil, nil, nil, nil
	}

	for i := range evs {
		ev := &evs[i]
		if ev.Kind == EvAccess {
			if sums == nil {
				sums = map[key]*accSummary{}
				uses = map[useKey]*useRec{}
			}
			k := key{ev.Phase, ev.Addr}
			s := sums[k]
			if s == nil {
				s = &accSummary{addr: ev.Addr, firstIsWrite: ev.Write, firstSeq: ev.Seq}
				sums[k] = s
				order = append(order, k)
			}
			s.count++
			s.lastSeq = ev.Seq
			if ev.Write {
				s.hasWrite = true
			}
			if ev.Site >= 0 {
				uk := useKey{ev.Site, ev.CS}
				u := uses[uk]
				if u == nil {
					u = &useRec{site: ev.Site, cs: ev.CS}
					uses[uk] = u
					useOrder = append(useOrder, uk)
				}
				u.count++
				if len(u.samples) < maxUseSamples && !containsU64(u.samples, ev.Addr) {
					u.samples = append(u.samples, ev.Addr)
				}
			}
			continue
		}
		// Structural event: close the open summary block first so that
		// alloc/free/ROI boundaries interleave correctly.
		flushBlock()
		items = append(items, postItem{ev: ev})
	}
	flushBlock()
	return items
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (r *Runtime) postprocessor() {
	pending := map[int]processedMsg{}
	next := 0
	for msg := range r.toPost {
		pending[msg.idx] = msg
		for {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for i := range m.items {
				r.post.apply(&m.items[i])
			}
			next++
		}
	}
	// Drain any stragglers deterministically (should be empty).
	if len(pending) > 0 {
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			m := pending[i]
			for j := range m.items {
				r.post.apply(&m.items[j])
			}
		}
	}
	r.done <- r.post.finish()
}

package instrument

import (
	"sort"

	"carmot/internal/analysis"
	"carmot/internal/core"
	"carmot/internal/ir"
	"carmot/internal/lang"
)

// applyFixedState implements §4.4 optimization 3 for a loop-body ROI:
// scalar variables that are provably only read inside the ROI are
// pre-classified Input, and scalars that are provably only written are
// pre-classified Cloneable+Output (the loop-governing induction variable
// re-executes the store every invocation). One FixedClass event per loop
// execution replaces their per-access instrumentation.
func (p *Plan) applyFixedState(prog *ir.Program, roi *ir.ROI, region *analysis.ROIRegion, pre *preheader) {
	type accInfo struct {
		loads  []*ir.Load
		stores []*ir.Store
	}
	acc := map[*lang.Symbol]*accInfo{}
	var order []*lang.Symbol
	get := func(sym *lang.Symbol) *accInfo {
		if acc[sym] == nil {
			acc[sym] = &accInfo{}
			order = append(order, sym)
		}
		return acc[sym]
	}
	hasCall := false
	region.Instructions(func(in ir.Instr) bool {
		switch x := in.(type) {
		case *ir.Load:
			if x.Sym != nil {
				g := get(x.Sym)
				g.loads = append(g.loads, x)
			}
		case *ir.Store:
			if x.Sym != nil {
				g := get(x.Sym)
				g.stores = append(g.stores, x)
			}
		case *ir.Call:
			hasCall = true
		}
		return true
	})
	sortSymsByID(order)

	for _, sym := range order {
		info := acc[sym]
		if sym.AddressTaken || !sym.Type.IsScalar() {
			continue
		}
		// A callee can write a global directly; locals are safe because
		// their address is never taken.
		if sym.Storage == lang.StorageGlobal && hasCall {
			continue
		}
		base := addrOfSym(prog, roi.Func, sym)
		if base == nil {
			continue
		}
		switch {
		case len(info.stores) == 0 && len(info.loads) > 0:
			pre.insert(&ir.FixedClass{ROI: roi, Base: base, Cells: 1,
				Sets: uint8(core.SetInput)}, roi.Pos)
			p.Stats.FixedEvents++
			for _, ld := range info.loads {
				if ld.Track == ir.TrackOn {
					ld.Track = ir.TrackFixed
					p.Stats.RemovedByFixed++
				}
			}
		case len(info.loads) == 0 && len(info.stores) > 0:
			pre.insert(&ir.FixedClass{ROI: roi, Base: base, Cells: 1,
				Sets: uint8(core.SetCloneable | core.SetOutput)}, roi.Pos)
			p.Stats.FixedEvents++
			for _, st := range info.stores {
				if st.Track == ir.TrackOn {
					st.Track = ir.TrackFixed
					p.Stats.RemovedByFixed++
				}
			}
		}
	}
}

func sortSymsByID(syms []*lang.Symbol) {
	sort.Slice(syms, func(i, j int) bool { return syms[i].ID < syms[j].ID })
}

// applyAggregation implements §4.4 optimization 2: contiguous PSEs indexed
// by the loop-governing induction variable, uniformly read or uniformly
// written, are instrumented with a single ranged event per loop execution.
func (p *Plan) applyAggregation(prog *ir.Program, roi *ir.ROI, region *analysis.ROIRegion, pre *preheader, pt *analysis.PointsTo) {
	loop := roi.Loop
	if loop.Step != 1 {
		return
	}
	startVal, boundVal, inclusive, ok := loopBounds(loop, region)
	if !ok {
		return
	}

	type group struct {
		geps   []*ir.GEP
		loads  []*ir.Load
		stores []*ir.Store
		scale  int64
		bad    bool
	}
	groups := map[*lang.Symbol]*group{}
	var groupOrder []*lang.Symbol
	var otherAddrs []ir.Value

	qualifies := func(g *ir.GEP) bool {
		if g.BaseSym == nil || g.Offset != 0 || g.Scale <= 0 {
			return false
		}
		il, ok := g.Index.(*ir.Load)
		return ok && il.Sym == loop.IndVar
	}

	region.Instructions(func(in ir.Instr) bool {
		var addr ir.Value
		switch x := in.(type) {
		case *ir.Load:
			if x.Sym != nil {
				return true // direct variable access; not an array element
			}
			addr = x.Addr
		case *ir.Store:
			if x.Sym != nil {
				return true
			}
			addr = x.Addr
		default:
			return true
		}
		g, isGEP := addr.(*ir.GEP)
		if isGEP && qualifies(g) {
			grp := groups[g.BaseSym]
			if grp == nil {
				grp = &group{scale: g.Scale}
				groups[g.BaseSym] = grp
				groupOrder = append(groupOrder, g.BaseSym)
			}
			if g.Scale != grp.scale {
				grp.bad = true
			}
			grp.geps = append(grp.geps, g)
			switch x := in.(type) {
			case *ir.Load:
				grp.loads = append(grp.loads, x)
			case *ir.Store:
				grp.stores = append(grp.stores, x)
			}
			return true
		}
		if isGEP && g.BaseSym != nil {
			// Non-induction access to a known array disqualifies it.
			if grp := groups[g.BaseSym]; grp != nil {
				grp.bad = true
			} else {
				groups[g.BaseSym] = &group{bad: true}
				groupOrder = append(groupOrder, g.BaseSym)
			}
		}
		otherAddrs = append(otherAddrs, addr)
		return true
	})

	sortSymsByID(groupOrder)
	for _, sym := range groupOrder {
		grp := groups[sym]
		if grp.bad || len(grp.geps) == 0 {
			continue
		}
		isWrite := len(grp.stores) > 0
		if isWrite && len(grp.loads) > 0 {
			continue // mixed access kinds: not uniform
		}
		rep := grp.geps[0]
		aliased := false
		for _, oa := range otherAddrs {
			if pt.MayAlias(rep, oa) {
				aliased = true
				break
			}
		}
		// Other aggregated arrays may alias this one (e.g. two pointer
		// params to the same buffer); check across groups too.
		for other, og := range groups {
			if other == sym || len(og.geps) == 0 {
				continue
			}
			if pt.MayAlias(rep, og.geps[0]) {
				aliased = true
				break
			}
		}
		if aliased {
			continue
		}

		baseVal := p.materializeBase(prog, roi.Func, sym, pre, roi.Pos)
		if baseVal == nil {
			continue
		}
		start := p.materializeOperand(prog, roi.Func, startVal, pre, roi.Pos)
		bound := p.materializeOperand(prog, roi.Func, boundVal, pre, roi.Pos)
		if start == nil || bound == nil {
			continue
		}
		count := p.materializeCount(start, bound, inclusive, pre, roi.Pos)
		elemBase := baseVal
		if c, isConst := start.(*ir.Const); !isConst || c.Int != 0 {
			gep := &ir.GEP{Base: baseVal, Index: start, Scale: grp.scale}
			pre.insert(gep, roi.Pos)
			elemBase = gep
		}
		pre.insert(&ir.RangedEvent{
			ROI: roi, Base: elemBase, Count: count, Stride: grp.scale, IsWrite: isWrite,
		}, roi.Pos)
		p.Stats.RangedEvents++
		for _, ld := range grp.loads {
			if ld.Track == ir.TrackOn {
				ld.Track = ir.TrackAggregated
				p.Stats.RemovedByAggregate++
			}
		}
		for _, st := range grp.stores {
			if st.Track == ir.TrackOn {
				st.Track = ir.TrackAggregated
				p.Stats.RemovedByAggregate++
			}
		}
	}
}

// boundOperand is a compile-time constant or a loop-invariant variable.
type boundOperand struct {
	konst int64
	sym   *lang.Symbol
}

// loopBounds extracts (start, bound, inclusive) from the canonical loop
// shape; ok is false when the loop is not analyzable.
func loopBounds(loop *ir.LoopInfo, region *analysis.ROIRegion) (start, bound boundOperand, inclusive, ok bool) {
	toOperand := func(e lang.Expr) (boundOperand, bool) {
		switch x := e.(type) {
		case *lang.IntLit:
			return boundOperand{konst: x.Value}, true
		case *lang.Ident:
			if x.Sym == nil || x.Sym.AddressTaken || x.Sym.Type.Kind != lang.KindInt {
				return boundOperand{}, false
			}
			if x.Sym == loop.IndVar || symWrittenInRegion(x.Sym, region) {
				return boundOperand{}, false
			}
			return boundOperand{sym: x.Sym}, true
		}
		return boundOperand{}, false
	}
	switch init := loop.For.Init.(type) {
	case *lang.DeclStmt:
		start, ok = toOperand(init.Init)
	case *lang.ExprStmt:
		if as, isAssign := init.X.(*lang.Assign); isAssign && as.Op == lang.AssignSet {
			start, ok = toOperand(as.RHS)
		}
	}
	if !ok {
		return start, bound, false, false
	}
	cond, isBin := loop.For.Cond.(*lang.Binary)
	if !isBin {
		return start, bound, false, false
	}
	l, isIdent := cond.L.(*lang.Ident)
	if !isIdent || l.Sym != loop.IndVar {
		return start, bound, false, false
	}
	switch cond.Op {
	case lang.BinLt:
		inclusive = false
	case lang.BinLe:
		inclusive = true
	default:
		return start, bound, false, false
	}
	bound, ok = toOperand(cond.R)
	return start, bound, inclusive, ok
}

func symWrittenInRegion(sym *lang.Symbol, region *analysis.ROIRegion) bool {
	written := false
	region.Instructions(func(in ir.Instr) bool {
		if st, isStore := in.(*ir.Store); isStore && st.Sym == sym {
			written = true
			return false
		}
		return true
	})
	return written
}

// materializeBase yields the array's element-0 address at the preheader.
func (p *Plan) materializeBase(prog *ir.Program, fn *ir.Func, sym *lang.Symbol, pre *preheader, pos lang.Pos) ir.Value {
	addr := addrOfSym(prog, fn, sym)
	if addr == nil {
		return nil
	}
	if sym.Type.Kind == lang.KindArray {
		return addr
	}
	// Pointer variable: read its current value.
	ld := &ir.Load{Addr: addr, Cls: ir.ClassPtr}
	pre.insert(ld, pos)
	return ld
}

func (p *Plan) materializeOperand(prog *ir.Program, fn *ir.Func, op boundOperand, pre *preheader, pos lang.Pos) ir.Value {
	if op.sym == nil {
		return ir.ConstInt(op.konst)
	}
	addr := addrOfSym(prog, fn, op.sym)
	if addr == nil {
		return nil
	}
	ld := &ir.Load{Addr: addr, Cls: ir.ClassInt}
	pre.insert(ld, pos)
	return ld
}

func (p *Plan) materializeCount(start, bound ir.Value, inclusive bool, pre *preheader, pos lang.Pos) ir.Value {
	extra := int64(0)
	if inclusive {
		extra = 1
	}
	cs, sOK := start.(*ir.Const)
	cb, bOK := bound.(*ir.Const)
	if sOK && bOK {
		n := cb.Int - cs.Int + extra
		if n < 0 {
			n = 0
		}
		return ir.ConstInt(n)
	}
	sub := &ir.Bin{Op: ir.OpSub, L: bound, R: start}
	pre.insert(sub, pos)
	if !inclusive {
		return sub
	}
	add := &ir.Bin{Op: ir.OpAdd, L: sub, R: ir.ConstInt(1)}
	pre.insert(add, pos)
	return add
}

// addrOfSym returns the address value of a variable: its alloca within fn
// or its global.
func addrOfSym(prog *ir.Program, fn *ir.Func, sym *lang.Symbol) ir.Value {
	if sym.Storage == lang.StorageGlobal {
		for _, g := range prog.Globals {
			if g.Sym == sym {
				return &ir.GlobalAddr{Global: g}
			}
		}
		return nil
	}
	for _, a := range fn.Allocas {
		if a.Sym == sym {
			if a.Promoted {
				return nil
			}
			return a
		}
	}
	return nil
}

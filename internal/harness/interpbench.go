// Interpreter microbenchmark (the BENCH_interp.json experiment): profiles
// one full benchmark program under every engine x coalescing combination
// and reports end-to-end throughput. The bytecode engine plus the
// producer-side combining buffer is the shipping default; the tree-walker
// with coalescing off is the differential oracle and the speedup
// baseline. Every timed run's PSECs are checked byte-identical against
// the oracle's, so the experiment doubles as an engine-equivalence test.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/interp"
)

// InterpBenchRow is one measured engine configuration.
type InterpBenchRow struct {
	Engine   string `json:"engine"`
	Coalesce bool   `json:"coalesce"`
	// NoFuse disables the superinstruction pass (bytecode engine only);
	// the row isolates how much of the bytecode speedup fusion buys.
	NoFuse       bool    `json:"nofuse,omitempty"`
	Iterations   int     `json:"iterations"`
	InstrsPerOp  int64   `json:"instrs_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerInstr   float64 `json:"ns_per_instr"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// Speedup is this row's throughput relative to the tree-walker
	// without coalescing (the pre-bytecode behavior): the median of the
	// per-iteration paired ratios, which cancels machine drift between
	// interleaved rounds.
	Speedup float64 `json:"speedup_vs_tree"`
	// SamplesNs holds the per-iteration wall times. Iteration i of every
	// row ran back to back, so paired comparisons across rows are far
	// less noisy than comparing the medians above.
	SamplesNs []float64 `json:"samples_ns,omitempty"`
}

// InterpBenchReport is the full machine-readable experiment output.
type InterpBenchReport struct {
	Workload   string           `json:"workload"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Rows       []InterpBenchRow `json:"rows"`
}

type interpBenchCfg struct {
	name     string
	engine   interp.Engine
	coalesce bool
	nofuse   bool
}

var interpBenchCfgs = []interpBenchCfg{
	{"tree", carmot.EngineTree, false, false},
	{"tree", carmot.EngineTree, true, false},
	{"bytecode", carmot.EngineBytecode, false, true},
	{"bytecode", carmot.EngineBytecode, false, false},
	{"bytecode", carmot.EngineBytecode, true, false},
}

// InterpBench profiles the cg benchmark (scale 500, the
// BenchmarkProfiledRun workload) under all engine x coalescing x fusion
// combinations, iters timed runs each after one warm-up, verifying every
// run's PSECs byte-identical against the tree-walking oracle.
//
// Two methodology points keep the numbers honest on small shared boxes:
//
//   - The timed region is Profile alone. Front-end compilation (parse,
//     lower, instrument) and PSEC marshalling are engine-independent
//     fixed costs; timing them would pad every row equally and dampen
//     the engine ratios the experiment exists to measure. The bytecode
//     translation itself still runs (and is timed) inside every
//     bytecode-row Profile call.
//   - The timed iterations interleave configurations round-robin so
//     that machine-wide throughput drift spreads evenly across rows
//     instead of biasing whichever configuration ran while the box was
//     slow.
func InterpBench(iters int) (InterpBenchReport, error) {
	if iters <= 0 {
		iters = 20
	}
	bm, err := bench.ByName("cg")
	if err != nil {
		return InterpBenchReport{}, err
	}
	prog, err := carmot.Compile("cg.mc", bm.Source(500), carmot.CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		return InterpBenchReport{}, err
	}
	rep := InterpBenchReport{
		Workload:   "cg scale 500, UseOpenMP, ProfileOmpRegions (the BenchmarkProfiledRun workload)",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	oracle, _, err := interpBenchRun(prog, interpBenchCfgs[0])
	if err != nil {
		return rep, err
	}
	for _, cfg := range interpBenchCfgs {
		// Warm-up doubles as the equivalence check for this configuration.
		psecs, _, err := interpBenchRun(prog, cfg)
		if err != nil {
			return rep, err
		}
		if !bytes.Equal(psecs, oracle) {
			return rep, fmt.Errorf("%s coalesce=%v nofuse=%v: PSECs differ from the tree-walking oracle",
				cfg.name, cfg.coalesce, cfg.nofuse)
		}
	}
	samples := make([][]time.Duration, len(interpBenchCfgs))
	instrs := make([]int64, len(interpBenchCfgs))
	for i := 0; i < iters; i++ {
		for ci, cfg := range interpBenchCfgs {
			start := time.Now()
			res, err := prog.Profile(interpBenchOpts(cfg))
			if err != nil {
				return rep, err
			}
			samples[ci] = append(samples[ci], time.Since(start))
			instrs[ci] = res.Run.Steps
		}
	}
	for ci, cfg := range interpBenchCfgs {
		// Median, not mean: transient machine events (a noisy neighbor, a
		// GC of some other process) hit a minority of iterations hard and
		// would otherwise dominate the row they landed in.
		nsOp := medianNs(samples[ci])
		ns := make([]float64, len(samples[ci]))
		for i, d := range samples[ci] {
			ns[i] = float64(d.Nanoseconds())
		}
		row := InterpBenchRow{
			Engine:       cfg.name,
			Coalesce:     cfg.coalesce,
			NoFuse:       cfg.nofuse,
			Iterations:   iters,
			InstrsPerOp:  instrs[ci],
			NsPerOp:      nsOp,
			NsPerInstr:   nsOp / float64(instrs[ci]),
			InstrsPerSec: float64(instrs[ci]) / (nsOp / 1e9),
			SamplesNs:    ns,
		}
		if ci == 0 {
			row.Speedup = 1 // rows[0] is the tree baseline
		} else {
			row.Speedup = pairedRatio(rep.Rows[0].SamplesNs, ns)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// pairedRatio returns the median of the per-iteration ratios num[i] /
// den[i]. Iteration i of both rows ran back to back in the interleaved
// loop, so the ratio within a pair is immune to the machine drifting
// between rounds — the statistic that makes assertions on a shared noisy
// box meaningful. Returns 0 when the sample sets don't line up.
func pairedRatio(num, den []float64) float64 {
	if len(num) == 0 || len(num) != len(den) {
		return 0
	}
	ratios := make([]float64, len(num))
	for i := range num {
		ratios[i] = num[i] / den[i]
	}
	sort.Float64s(ratios)
	n := len(ratios)
	if n%2 == 1 {
		return ratios[n/2]
	}
	return (ratios[n/2-1] + ratios[n/2]) / 2
}

// AssertInterpBench enforces the experiment's perf floors — the checks
// the verify pipeline runs at low iteration counts:
//
//   - the producer-side combining buffer must never cost an engine more
//     than 5% (the adaptive gate's contract: coalescing is at worst a
//     bounded probe, never a tax), and
//   - the bytecode engine's best configuration must hold at least a 2.0x
//     speedup over the tree-walking baseline.
func AssertInterpBench(rep InterpBenchReport) error {
	base := map[string][]float64{}
	for _, r := range rep.Rows {
		if !r.Coalesce && !r.NoFuse {
			base[r.Engine] = r.SamplesNs
		}
	}
	var errs []string
	for _, r := range rep.Rows {
		if !r.Coalesce || r.NoFuse {
			continue
		}
		b, ok := base[r.Engine]
		if !ok {
			continue
		}
		// Paired per-iteration ratios, not a ratio of medians: the paired
		// statistic cancels drift between rounds, so 5% is a real margin
		// rather than the box's noise floor.
		if ratio := pairedRatio(r.SamplesNs, b); ratio > 1.05 {
			errs = append(errs, fmt.Sprintf(
				"%s+coalesce regressed %.1f%% over %s (>5%%: the adaptive gate is not containing the buffer's cost)",
				r.Engine, (ratio-1)*100, r.Engine))
		}
	}
	var best float64
	for _, r := range rep.Rows {
		if r.Engine == "bytecode" && !r.NoFuse && r.Speedup > best {
			best = r.Speedup
		}
	}
	if best < 2.0 {
		errs = append(errs, fmt.Sprintf(
			"bytecode best configuration at %.2fx vs tree, below the 2.0x floor", best))
	}
	if len(errs) > 0 {
		return fmt.Errorf("interp bench assertions failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// InterpCounters profiles the benchmark workload once on the bytecode
// engine with dispatch counting enabled and renders the opcode and
// fall-through-pair frequency tables. This is the report the
// superinstruction table in internal/interp/fuse.go was chosen from;
// rerun it after compiler changes to see whether the fused pairs still
// cover the dominant adjacencies. nofuse shows the pre-fusion stream.
func InterpCounters(nofuse bool) (string, error) {
	bm, err := bench.ByName("cg")
	if err != nil {
		return "", err
	}
	prog, err := carmot.Compile("cg.mc", bm.Source(500), carmot.CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		return "", err
	}
	res, err := prog.Profile(carmot.ProfileOptions{
		UseCase: carmot.UseOpenMP, Engine: carmot.EngineBytecode,
		NoCoalesce: true, NoFuse: nofuse, CountDispatch: true,
	})
	if err != nil {
		return "", err
	}
	st := res.Dispatch
	if st == nil {
		return "", fmt.Errorf("no dispatch stats (bytecode engine did not run)")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dispatch counters (cg scale 500, nofuse=%v): %d dispatches\n", nofuse, st.Total)
	fmt.Fprintf(&sb, "%-16s %12s\n", "opcode", "dispatches")
	for _, oc := range st.Ops {
		fmt.Fprintf(&sb, "%-16s %12d\n", oc.Name, oc.Count)
	}
	sb.WriteString("\ntop fall-through pairs (superinstruction candidates):\n")
	pairs := st.Pairs
	if len(pairs) > 20 {
		pairs = pairs[:20]
	}
	for _, pc := range pairs {
		fmt.Fprintf(&sb, "%-16s -> %-16s %12d\n", pc.First, pc.Second, pc.Count)
	}
	return sb.String(), nil
}

// medianNs returns the median of the duration samples in nanoseconds
// (mean of the middle two for even counts).
func medianNs(ds []time.Duration) float64 {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2].Nanoseconds())
	}
	return float64(s[n/2-1].Nanoseconds()+s[n/2].Nanoseconds()) / 2
}

// interpBenchOpts maps a bench configuration to profile options.
func interpBenchOpts(cfg interpBenchCfg) carmot.ProfileOptions {
	return carmot.ProfileOptions{
		UseCase: carmot.UseOpenMP, Engine: cfg.engine, NoCoalesce: !cfg.coalesce, NoFuse: cfg.nofuse,
	}
}

// interpBenchRun profiles the compiled program once under the given
// configuration, returning the marshalled PSECs and the step count.
func interpBenchRun(prog *carmot.Program, cfg interpBenchCfg) ([]byte, int64, error) {
	res, err := prog.Profile(interpBenchOpts(cfg))
	if err != nil {
		return nil, 0, err
	}
	psecs, err := carmot.MarshalPSECs(res.PSECs)
	if err != nil {
		return nil, 0, err
	}
	return psecs, res.Run.Steps, nil
}

// RenderInterpBench formats the report as a text table.
func RenderInterpBench(rep InterpBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Interpreter throughput (%s)\n", rep.Workload)
	fmt.Fprintf(&sb, "%-20s %12s %12s %14s %10s\n",
		"configuration", "ms/op", "ns/instr", "instrs/sec", "speedup")
	for _, r := range rep.Rows {
		name := r.Engine
		if r.NoFuse {
			name += "-nofuse"
		}
		if r.Coalesce {
			name += "+coalesce"
		}
		fmt.Fprintf(&sb, "%-20s %12.2f %12.2f %14.0f %9.2fx\n",
			name, r.NsPerOp/1e6, r.NsPerInstr, r.InstrsPerSec, r.Speedup)
	}
	return sb.String()
}

// MarshalInterpBench encodes the report as indented JSON
// (BENCH_interp.json).
func MarshalInterpBench(rep InterpBenchReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

package carmot

import (
	"strings"
	"testing"

	"carmot/internal/recommend"
)

// TestAnnotateSourceInsertsPragma drives the full recommend→rewrite
// pipeline: profile a loop, generate the recommendation, and check that
// the annotated source carries the pragma and the critical advice at the
// right lines — and still compiles.
func TestAnnotateSourceInsertsPragma(t *testing.T) {
	const src = `int N = 16;
float* a;
float run = 1.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j + 1.0; }
}
int main() {
	init();
	float t;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		run = run / (t + 1.0);
		a[i] = t;
	}
	return run * 1000.0;
}`
	prog, err := Compile("ann.mc", src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	roi := prog.ROIs()[0]
	rec := RecommendParallelFor(res.PSECs[roi.ID], roi)
	annotated, err := recommend.AnnotateSource(src, roi, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(annotated, "#pragma omp parallel for") {
		t.Fatalf("pragma not inserted:\n%s", annotated)
	}
	if !strings.Contains(annotated, "// CARMOT: wrap in") {
		t.Fatalf("critical advice not inserted:\n%s", annotated)
	}
	// The pragma must sit directly above the for loop.
	lines := strings.Split(annotated, "\n")
	for i, line := range lines {
		if strings.Contains(line, "for (int i = 0; i < N; i++)") {
			if !strings.Contains(lines[i-1], "#pragma omp parallel for") {
				t.Errorf("pragma not adjacent to the loop:\n%s", annotated)
			}
		}
	}
	// The advice comment precedes the run statement.
	for i, line := range lines {
		if strings.Contains(line, "run = run /") {
			if !strings.Contains(lines[i-1], "CARMOT: wrap in") {
				t.Errorf("advice not adjacent to the dependent statement:\n%s", annotated)
			}
		}
	}
	// Annotated source is still a valid MiniC program.
	if _, err := Compile("ann2.mc", annotated, CompileOptions{ProfileOmpRegions: true}); err != nil {
		t.Errorf("annotated source no longer compiles: %v\n%s", err, annotated)
	}
}

// TestAnnotateReplacesExistingPragma: re-annotating a loop that already
// has an omp pragma replaces it instead of stacking a second one.
func TestAnnotateReplacesExistingPragma(t *testing.T) {
	const src = `int N = 8;
float* a;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma omp parallel for shared(a)
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		a[i] = t;
	}
	return a[3];
}`
	prog, err := Compile("rep.mc", src, CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	roi := prog.ROIs()[0]
	rec := RecommendParallelFor(res.PSECs[roi.ID], roi)
	annotated, err := recommend.AnnotateSource(src, roi, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(annotated, "#pragma omp parallel for"); n != 1 {
		t.Errorf("want exactly one pragma after re-annotation, got %d:\n%s", n, annotated)
	}
	// The original pragma misses private(t); the replacement has it.
	privLine := ""
	for _, line := range strings.Split(annotated, "\n") {
		if strings.Contains(line, "#pragma omp parallel for") {
			privLine = line
		}
	}
	if !strings.Contains(privLine, "private(") || !strings.Contains(privLine, "t") {
		t.Errorf("replacement should privatize t: %q", privLine)
	}
}

// TestAnnotateRejectsNonLoopROI: annotation needs a loop-shaped ROI.
func TestAnnotateRejectsNonLoopROI(t *testing.T) {
	const src = `int main() {
	int s = 0;
	#pragma carmot roi blockroi
	{
		s = 1;
	}
	return s;
}`
	prog, err := Compile("nl.mc", src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	roi := prog.ROIs()[0]
	rec := RecommendParallelFor(res.PSECs[roi.ID], roi)
	if _, err := recommend.AnnotateSource(src, roi, rec); err == nil {
		t.Error("block ROI outside any loop should not annotate")
	}
}

package rt

import (
	"math/rand"
	"strings"
	"testing"

	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/testutil"
)

// healWorkload builds one fixed randomized workload for the recovery
// tests; the seed pins the stream so failures reproduce.
func healWorkload(seed int64) []diffOp {
	return randomDiffWorkload(rand.New(rand.NewSource(seed)))
}

// recoverConfig is the geometry the single-fault equivalence tests use:
// small batches so a single run crosses many batch/flush boundaries.
func recoverConfig() Config {
	cfg := diffConfig(8, 2, 4)
	cfg.Recover = true
	return cfg
}

// expectOneReplay asserts the run recorded exactly one successful
// recovery at the given stage and no degraded ones, and that Err() is
// nil — a fully recovered run is indistinguishable from a clean one
// apart from the Recovery record and the panic counter.
func expectOneReplay(t *testing.T, r *Runtime, stage string) {
	t.Helper()
	d := r.Diagnostics()
	if len(d.Recoveries) != 1 {
		t.Fatalf("Recoveries = %+v, want exactly one", d.Recoveries)
	}
	rec := d.Recoveries[0]
	if rec.Stage != stage || rec.Outcome != RecoveryReplayed {
		t.Errorf("Recovery = %+v, want stage %q outcome %q", rec, stage, RecoveryReplayed)
	}
	if d.RecoveryFailed() {
		t.Errorf("RecoveryFailed() true: %+v", d.Recoveries)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err() = %v after a fully recovered fault", err)
	}
}

// TestWorkerPanicRecoveredByteIdentical: a single injected worker panic
// with a sufficient journal budget must leave the text+JSON PSEC report
// byte-identical to the fault-free run, with exactly one Recovery.
func TestWorkerPanicRecoveredByteIdentical(t *testing.T) {
	ops := healWorkload(7001)
	ref, _ := replayDiffCfg(ops, recoverConfig())
	baseline := testutil.Goroutines()
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(2, "injected worker fault"))
	got, r := replayDiffCfg(ops, recoverConfig())
	if got != ref {
		t.Fatalf("recovered run diverges from fault-free reference\n--- got ---\n%s\n--- want ---\n%s", got, ref)
	}
	expectOneReplay(t, r, "worker")
	if d := r.Diagnostics(); d.WorkerPanics != 1 {
		t.Errorf("WorkerPanics = %d, want 1", d.WorkerPanics)
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestShardPanicRecoveredByteIdentical: a single injected shard panic
// must trigger a respawn-and-replay that reproduces the byte-identical
// report, across several geometries.
func TestShardPanicRecoveredByteIdentical(t *testing.T) {
	ops := healWorkload(7002)
	for _, g := range [][3]int{{8, 2, 4}, {3, 1, 2}, {64, 3, 7}} {
		cfg := diffConfig(g[0], g[1], g[2])
		cfg.Recover = true
		ref, _ := replayDiffCfg(ops, cfg)
		baseline := testutil.Goroutines()
		faultinject.Set("rt.shard.apply", faultinject.CountdownPanic(5, "injected shard fault"))
		got, r := replayDiffCfg(ops, cfg)
		faultinject.Reset()
		if got != ref {
			t.Fatalf("geometry %v: recovered run diverges\n--- got ---\n%s\n--- want ---\n%s", g, got, ref)
		}
		expectOneReplay(t, r, "shard")
		d := r.Diagnostics()
		if d.PostprocessorPanics != 1 {
			t.Errorf("geometry %v: PostprocessorPanics = %d, want 1", g, d.PostprocessorPanics)
		}
		if d.Recoveries[0].Ops == 0 {
			t.Errorf("geometry %v: shard replay reported zero replayed ops", g)
		}
		testutil.WaitGoroutines(t, baseline)
	}
}

// TestSequencerBoundaryFaultRecovered: a fault at the sequencer's stage
// boundary (before any ASMT mutation) is absorbed and the item applied
// afresh — byte-identical output, one Recovery.
func TestSequencerBoundaryFaultRecovered(t *testing.T) {
	ops := healWorkload(7003)
	ref, _ := replayDiffCfg(ops, recoverConfig())
	defer faultinject.Reset()
	faultinject.Set("rt.post.apply", faultinject.CountdownPanic(3, "injected sequencer fault"))
	got, r := replayDiffCfg(ops, recoverConfig())
	if got != ref {
		t.Fatalf("recovered run diverges\n--- got ---\n%s\n--- want ---\n%s", got, ref)
	}
	expectOneReplay(t, r, "sequencer")
}

// TestRecoveryWithoutJournalDegrades: with the journal budget forced to
// zero retention, a worker fault must complete via the degradation path
// with an honest Downgrade record (the PR 1 ladder rung), not crash and
// not silently diverge.
func TestRecoveryWithoutJournalDegrades(t *testing.T) {
	ops := healWorkload(7004)
	cfg := recoverConfig()
	cfg.JournalBudgetBytes = -1 // retain nothing
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(2, "injected worker fault"))
	got, r := replayDiffCfg(ops, cfg)
	if !strings.Contains(got, "outer") {
		t.Fatalf("degraded run lost the report: %q", got)
	}
	d := r.Diagnostics()
	if !d.RecoveryFailed() {
		t.Fatalf("no degraded Recovery recorded: %+v", d.Recoveries)
	}
	found := false
	for _, dg := range d.Downgrades {
		if dg.Action == "drop-batch" {
			found = true
		}
	}
	if !found {
		t.Errorf("no drop-batch Downgrade recorded: %+v", d.Downgrades)
	}
	if r.Err() == nil {
		t.Error("Err() nil after a degraded recovery")
	}
}

// TestShardJournalEvictionDegrades: a journal budget small enough to
// evict shard log entries makes a late shard fault unrecoverable; the
// supervisor must fall back to the degrade rung with honest records.
func TestShardJournalEvictionDegrades(t *testing.T) {
	ops := healWorkload(7005)
	cfg := recoverConfig()
	cfg.JournalBudgetBytes = 2048 // shard share: 256 bytes across 4 shards
	defer faultinject.Reset()
	// Fire late so the shard logs have certainly evicted by then.
	faultinject.Set("rt.shard.apply", faultinject.CountdownPanic(200, "late shard fault"))
	got, r := replayDiffCfg(ops, cfg)
	if !strings.Contains(got, "outer") {
		t.Fatalf("degraded run lost the report: %q", got)
	}
	d := r.Diagnostics()
	if len(d.Recoveries) == 0 {
		t.Skip("workload too small to reach the 200th shard op") // defensive; seed is pinned
	}
	if !d.RecoveryFailed() {
		t.Fatalf("eviction did not degrade: %+v", d.Recoveries)
	}
	if r.Err() == nil {
		t.Error("Err() nil after an eviction-degraded fault")
	}
}

// TestShardRespawnCapBoundsReplays: a persistent multi-shot fault on the
// shard apply path must terminate — respawn attempts are bounded, after
// which ops drop one at a time (honest degradation), never a hang.
func TestShardRespawnCapBoundsReplays(t *testing.T) {
	ops := healWorkload(7006)
	baseline := testutil.Goroutines()
	defer faultinject.Reset()
	// Enough consecutive shots that at least one shard exhausts its
	// respawn cap (panics spread round-robin-ish across 4 shards).
	shots := make([]int64, 48)
	for i := range shots {
		shots[i] = int64(i + 1)
	}
	faultinject.Set("rt.shard.apply",
		faultinject.PanicOnShots("persistent shard fault", shots...))
	got, r := replayDiffCfg(ops, recoverConfig())
	if !strings.Contains(got, "outer") {
		t.Fatalf("run lost the report: %q", got)
	}
	d := r.Diagnostics()
	replays, degrades := 0, 0
	for _, rec := range d.Recoveries {
		switch rec.Outcome {
		case RecoveryReplayed:
			replays++
		case RecoveryDegraded:
			degrades++
		}
	}
	if degrades == 0 {
		t.Errorf("persistent fault never degraded: %+v", d.Recoveries)
	}
	if r.Err() == nil {
		t.Error("Err() nil after degraded ops")
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestJournalDrainedAfterFinish: on the fault-free path every journaled
// batch must be acked (and its buffer released) by the time Finish
// returns — the journal must not turn the batch pool into a leak.
func TestJournalDrainedAfterFinish(t *testing.T) {
	ops := healWorkload(7007)
	_, r := replayDiffCfg(ops, recoverConfig())
	if r.journal == nil {
		t.Fatal("Recover config built no journal")
	}
	r.journal.mu.Lock()
	defer r.journal.mu.Unlock()
	if len(r.journal.batches) != 0 || r.journal.batchUsed != 0 {
		t.Errorf("journal retains %d batches (%d bytes) after Finish",
			len(r.journal.batches), r.journal.batchUsed)
	}
}

// TestRecoveredRunKeepsEventAccounting: a recovered worker batch is not
// double-counted — Events in Diagnostics equals the accepted stream
// length regardless of the replay.
func TestRecoveredRunKeepsEventAccounting(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(1, "boom"))
	cfg := Config{BatchSize: 4, Workers: 2, Shards: 2, Profile: ProfileFull,
		ROIs: []ROIMeta{{ID: 0, Name: "z"}}, Recover: true}
	r := New(cfg)
	r.EmitAlloc(100, 8, 0, &AllocMeta{Kind: core.PSEHeap, Name: "arr", Pos: "h.mc"})
	r.BeginROI(0)
	for i := 0; i < 64; i++ {
		r.EmitAccess(100+uint64(i%8), i%2 == 0, -1, 0)
	}
	r.EndROI(0)
	psecs := r.Finish()
	if psecs[0] == nil {
		t.Fatal("nil PSEC")
	}
	d := r.Diagnostics()
	if d.Events != 67 { // alloc + 64 accesses + ROI begin/end
		t.Errorf("Events = %d, want 67", d.Events)
	}
	if psecs[0].Stats.TotalAccesses != 64 {
		t.Errorf("TotalAccesses = %d, want 64 (replay must not double-count)", psecs[0].Stats.TotalAccesses)
	}
}

package ir

import (
	"fmt"
	"strings"
)

// ComputeCFG (re)computes predecessor/successor lists and block indices
// for a function. Analyses call it after construction or mutation.
func ComputeCFG(f *Func) {
	for i, b := range f.Blocks {
		b.Index = i
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		switch t := b.Terminator().(type) {
		case *Br:
			b.Succs = append(b.Succs, t.Target)
		case *CondBr:
			b.Succs = append(b.Succs, t.True)
			if t.False != t.True {
				b.Succs = append(b.Succs, t.False)
			}
		}
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Verify checks structural invariants of a function: every block ends with
// exactly one terminator and non-terminators do not appear after it.
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s: block %s is empty", f.Name, b.Label)
		}
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("ir: %s: block %s has terminator %s before end", f.Name, b.Label, in.Mnemonic())
			}
		}
		if b.Terminator() == nil {
			return fmt.Errorf("ir: %s: block %s lacks a terminator", f.Name, b.Label)
		}
	}
	return nil
}

// VerifyProgram verifies all functions.
func VerifyProgram(p *Program) error {
	for _, f := range p.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}

// String renders the function as human-readable IR text.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Cls, p.Name())
	}
	fmt.Fprintf(&b, ") %s {\n", f.Ret)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(FormatInstr(in))
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// FormatInstr renders one instruction.
func FormatInstr(in Instr) string {
	base := in.instrBase()
	var sb strings.Builder
	if v, ok := in.(Value); ok && v.Class() != ClassVoid {
		fmt.Fprintf(&sb, "%%t%d = ", base.Temp)
	}
	sb.WriteString(in.Mnemonic())
	switch x := in.(type) {
	case *Alloca:
		name := "<tmp>"
		if x.Sym != nil {
			name = x.Sym.Name
		}
		fmt.Fprintf(&sb, " %s x%d", name, x.Cells)
		if x.Promoted {
			sb.WriteString(" [promoted]")
		}
	case *Br:
		fmt.Fprintf(&sb, " %s", x.Target.Label)
	case *CondBr:
		fmt.Fprintf(&sb, " %s, %s, %s", x.Cond.Name(), x.True.Label, x.False.Label)
	case *ROIBegin:
		fmt.Fprintf(&sb, " roi%d(%s)", x.ROI.ID, x.ROI.Name)
	case *ROIEnd:
		fmt.Fprintf(&sb, " roi%d(%s)", x.ROI.ID, x.ROI.Name)
	case *GEP:
		fmt.Fprintf(&sb, " %s", x.Base.Name())
		if x.Index != nil {
			fmt.Fprintf(&sb, " + %s*%d", x.Index.Name(), x.Scale)
		}
		if x.Offset != 0 {
			fmt.Fprintf(&sb, " + %d", x.Offset)
		}
	default:
		for i, op := range in.Operands() {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", op.Name())
		}
	}
	if ls, ok := in.(*Load); ok && ls.Sym != nil {
		fmt.Fprintf(&sb, " ; var %s", ls.Sym.Name)
	}
	if ss, ok := in.(*Store); ok && ss.Sym != nil {
		fmt.Fprintf(&sb, " ; var %s", ss.Sym.Name)
	}
	if base.Track != TrackOff {
		fmt.Fprintf(&sb, " [track=%s]", base.Track)
	}
	return sb.String()
}

// Instructions iterates over every instruction in the function in block
// order, calling fn; returning false stops the iteration.
func (f *Func) Instructions(fn func(Instr) bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !fn(in) {
				return
			}
		}
	}
}

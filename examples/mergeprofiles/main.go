// Mergeprofiles: the §4.2 workflow. CARMOT users profile a program under
// several inputs and combine the PSECs by set union — with the exception
// that Cloneable from one run plus Transfer from another conservatively
// yields Transfer. The PSECs travel as JSON (what `carmot -json` emits).
//
// Run with: go run ./examples/mergeprofiles
package main

import (
	"fmt"
	"log"
	"strings"

	"carmot"
	"carmot/internal/core"
)

// The region either accumulates into acc (mode 1: a cross-invocation RAW,
// Transfer) or overwrites it (mode 0: Cloneable), depending on the input.
const template = `
int mode = %MODE%;
int* acc;
int main() {
	acc = malloc(2);
	acc[0] = 100;
	for (int i = 0; i < 6; i++) {
		#pragma carmot roi step
		{
			if (mode == 1) {
				acc[0] = acc[0] + i;
			} else {
				acc[0] = i;
			}
		}
	}
	return acc[0];
}
`

func profileWithInput(mode string) *core.PSEC {
	src := strings.Replace(template, "%MODE%", mode, 1)
	prog, err := carmot.Compile("merge.mc", src, carmot.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
	if err != nil {
		log.Fatal(err)
	}
	// Round-trip through JSON, as a stored per-input profile would.
	data, err := carmot.MarshalPSECs(res.PSECs)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := carmot.UnmarshalPSECs(data)
	if err != nil {
		log.Fatal(err)
	}
	return loaded[0]
}

func heapSets(p *core.PSEC) core.SetMask {
	for _, e := range p.Elements {
		if e.PSE.Kind == core.PSEHeap && e.PSE.Name == "acc" {
			return e.Sets
		}
	}
	return 0
}

func main() {
	runA := profileWithInput("1") // accumulating input
	runB := profileWithInput("0") // overwriting input
	fmt.Printf("run A (accumulate): acc classified %s\n", heapSets(runA))
	fmt.Printf("run B (overwrite):  acc classified %s\n", heapSets(runB))

	merged := carmot.MergePSECs(runA, runB)
	fmt.Printf("merged (§4.2):      acc classified %s\n", heapSets(merged))
	fmt.Println()
	fmt.Println("Cloneable ∪ Transfer resolves to Transfer: across all observed")
	fmt.Println("inputs the element may carry a cross-invocation RAW, so the")
	fmt.Println("conservative recommendation protects it.")
}

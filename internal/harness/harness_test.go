package harness

import (
	"strings"
	"testing"

	"carmot/internal/bench"
)

// quick is a reduced-scale config so the full experiment surface runs in
// CI time.
var quick = Config{Threads: 24, ScaleDiv: 8}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"OMP parallel for", "OMP task", "Smart Pointers", "STATS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestAccessAmplification(t *testing.T) {
	rows, geomean, err := Accesses(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("want 15 rows, got %d", len(rows))
	}
	// §2.3: PSEC tracks substantially more accesses than memory-only
	// tools; the paper reports 8x on average. Require at least 2x so the
	// qualitative claim holds on our analogs.
	if geomean < 2 {
		t.Errorf("access amplification geomean %.2f, want >= 2", geomean)
	}
	t.Log("\n" + RenderAccesses(rows, geomean))
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 takes a while")
	}
	rows, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig6(rows, quick.Threads))
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	// Shape checks from the paper: CARMOT matches the original
	// parallelism on most benchmarks; ep and nab are the exceptions
	// (sections/barrier/master parallelism CARMOT does not generate).
	for _, name := range []string{"bt", "cg", "ft", "lu", "blackscholes", "streamcluster", "swaptions", "lbm"} {
		r := byName[name]
		if r.Carmot < 2 {
			t.Errorf("%s: CARMOT-induced speedup %.2f, want >= 2", name, r.Carmot)
		}
		// "as good as or better than pragmas implemented manually" (§5.1).
		if r.Carmot < 0.7*r.Original {
			t.Errorf("%s: CARMOT %.2fx should match original %.2fx", name, r.Carmot, r.Original)
		}
	}
	for _, name := range []string{"ep", "nab"} {
		r := byName[name]
		if r.Carmot >= r.Original {
			t.Errorf("%s: CARMOT %.2fx should trail original %.2fx (unsupported sections parallelism)", name, r.Carmot, r.Original)
		}
	}
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 takes a while")
	}
	rows, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderOverhead("Figure 7: OpenMP use-case overhead", rows))
	for _, r := range rows {
		if r.Naive <= r.Carmot {
			t.Errorf("%s: naive overhead %.1fx should exceed CARMOT %.1fx", r.Bench, r.Naive, r.Carmot)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 takes a while")
	}
	rows, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig8(rows))
	for _, r := range rows {
		total := r.Pin + r.Clustering + r.Callgraph + r.Redundant
		if total < 99 || total > 101 {
			t.Errorf("%s: contributions sum to %.1f%%, want ~100%%", r.Bench, total)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 takes a while")
	}
	rows, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderOverhead("Figure 10: smart-pointer use-case overhead", rows))
	for _, r := range rows {
		// §5.2: CARMOT only tracks allocations and reachability, so its
		// overhead sits two orders of magnitude under the naive one.
		if r.Naive/r.Carmot < 10 {
			t.Errorf("%s: naive/carmot ratio %.1f, want >= 10", r.Bench, r.Naive/r.Carmot)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 takes a while")
	}
	rows, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderOverhead("Figure 11: STATS use-case overhead", rows))
	for _, r := range rows {
		if r.Naive <= r.Carmot {
			t.Errorf("%s: naive %.1fx should exceed CARMOT %.1fx", r.Bench, r.Naive, r.Carmot)
		}
	}
}

func TestVerifySweep(t *testing.T) {
	rows, err := VerifyAll(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderVerify(rows))
	totalPragmas := 0
	for _, r := range rows {
		totalPragmas += r.Pragmas
		if r.Errors != 0 {
			t.Errorf("%s: %d verification errors:\n%s", r.Bench, r.Errors, strings.Join(r.Reports, ""))
		}
		if r.OK != r.Pragmas {
			t.Errorf("%s: %d/%d pragmas verified", r.Bench, r.OK, r.Pragmas)
		}
	}
	if totalPragmas < 10 {
		t.Errorf("suite should contain >=10 hand pragmas, found %d", totalPragmas)
	}
}

func TestFig9NabCycle(t *testing.T) {
	res, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFig9(res))
	if res.Cycles == 0 {
		t.Fatal("no reference cycle found in nab")
	}
	if res.RecoveredCells == 0 || res.ReductionPct <= 0 {
		t.Errorf("breaking the cycle should recover leaked cells (got %d, %.1f%%)", res.RecoveredCells, res.ReductionPct)
	}
}

func TestCompareStats(t *testing.T) {
	cmps, err := CompareStats(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderStats(cmps))
	if len(cmps) != len(bench.StatsWorkloads()) {
		t.Fatalf("want %d comparisons, got %d", len(bench.StatsWorkloads()), len(cmps))
	}
	found := false
	for _, c := range cmps {
		if c.Bench == "kmeans" {
			for _, m := range c.Mismatches {
				if strings.Contains(m, "scale_") {
					found = true
				}
			}
			continue
		}
		if len(c.Mismatches) != 0 {
			t.Errorf("%s: unexpected mismatches %v", c.Bench, c.Mismatches)
		}
	}
	if !found {
		t.Error("kmeans: CARMOT should catch the deliberate scale_ misclassification")
	}
}

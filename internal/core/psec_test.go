package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeSetsUnion(t *testing.T) {
	cases := []struct {
		a, b, want SetMask
	}{
		{SetInput, SetOutput, SetInput | SetOutput},
		{0, SetInput, SetInput},
		{SetInput | SetOutput, SetCloneable | SetOutput, SetInput | SetOutput | SetCloneable},
		// §4.2: Cloneable in one run + Transfer in another ⇒ Transfer.
		{SetCloneable | SetOutput, SetTransfer | SetOutput, SetTransfer | SetOutput},
		{SetTransfer | SetOutput, SetCloneable | SetOutput, SetTransfer | SetOutput},
	}
	for _, c := range cases {
		if got := MergeSets(c.a, c.b); got != c.want {
			t.Errorf("MergeSets(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

// TestMergeSetsProperties: commutative, idempotent, never yields C∧T.
func TestMergeSetsProperties(t *testing.T) {
	err := quick.Check(func(a, b uint8) bool {
		x, y := SetMask(a&0xF), SetMask(b&0xF)
		m := MergeSets(x, y)
		if m != MergeSets(y, x) {
			return false
		}
		if MergeSets(m, m) != m {
			return false
		}
		return !(m.Has(SetCloneable) && m.Has(SetTransfer))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetMaskString(t *testing.T) {
	if s := (SetInput | SetOutput).String(); s != "{Input, Output}" {
		t.Errorf("got %q", s)
	}
	if s := SetMask(0).String(); s != "{}" {
		t.Errorf("got %q", s)
	}
	if s := (SetTransfer | SetOutput | SetInput).String(); !strings.Contains(s, "Transfer") {
		t.Errorf("got %q", s)
	}
}

func TestAggregateRanges(t *testing.T) {
	cells := []SetMask{
		SetInput, SetInput, 0, SetOutput, SetOutput, SetOutput,
		SetTransfer | SetOutput, SetInput,
	}
	got := AggregateRanges(cells)
	want := []CellRange{
		{Lo: 0, Hi: 2, Sets: SetInput},
		{Lo: 3, Hi: 6, Sets: SetOutput},
		{Lo: 6, Hi: 7, Sets: SetTransfer | SetOutput},
		{Lo: 7, Hi: 8, Sets: SetInput},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if rs := AggregateRanges(nil); len(rs) != 0 {
		t.Errorf("empty input should give no ranges, got %v", rs)
	}
}

// TestAggregateRangesCoversAllCells: every non-zero cell appears in
// exactly one range carrying its classification.
func TestAggregateRangesCoversAllCells(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(40)
		cells := make([]SetMask, n)
		for i := range cells {
			cells[i] = SetMask(r.Intn(16)) &^ 0 // any 4-bit mask
		}
		ranges := AggregateRanges(cells)
		covered := make([]SetMask, n)
		prevHi := 0
		for _, rg := range ranges {
			if rg.Lo < prevHi || rg.Hi <= rg.Lo || rg.Hi > n {
				t.Fatalf("bad range %v for %v", rg, cells)
			}
			prevHi = rg.Hi
			for i := rg.Lo; i < rg.Hi; i++ {
				covered[i] = rg.Sets
			}
		}
		for i, c := range cells {
			if c != 0 && covered[i] != c {
				t.Fatalf("cell %d (%s) covered as %s", i, c, covered[i])
			}
			if c == 0 && covered[i] != 0 {
				t.Fatalf("cell %d unaccessed but covered", i)
			}
		}
	}
}

func elem(name string, kind PSEKind, sets SetMask) *Element {
	return &Element{
		PSE:    PSEDesc{Kind: kind, Name: name, AllocPos: "f.mc:1:1", Cells: 1},
		Sets:   sets,
		Ranges: []CellRange{{Lo: 0, Hi: 1, Sets: sets}},
	}
}

func TestPSECMergeAcrossRuns(t *testing.T) {
	cs := NewCallstackTable()
	run1 := &PSEC{
		ROI:        ROIInfo{ID: 0, Name: "r"},
		Callstacks: cs,
		Elements: []*Element{
			elem("e", PSEHeap, SetInput|SetOutput),
			elem("only1", PSEVariable, SetInput),
		},
		Stats: Stats{TotalAccesses: 10, Invocations: 2},
	}
	run2 := &PSEC{
		ROI:        ROIInfo{ID: 0, Name: "r"},
		Callstacks: cs,
		Elements: []*Element{
			elem("e", PSEHeap, SetCloneable|SetOutput),
			elem("only2", PSEVariable, SetOutput),
		},
		Stats: Stats{TotalAccesses: 5, Invocations: 1},
	}
	m := Merge(run1, run2)
	if m.Stats.TotalAccesses != 15 || m.Stats.Invocations != 3 {
		t.Errorf("stats not accumulated: %+v", m.Stats)
	}
	if len(m.Elements) != 3 {
		t.Fatalf("want 3 merged elements, got %d", len(m.Elements))
	}
	e := m.ElementByName("e")
	if e == nil || e.Sets != SetInput|SetOutput|SetCloneable {
		t.Errorf("merged e = %v", e)
	}
	if m.ElementByName("only1") == nil || m.ElementByName("only2") == nil {
		t.Error("union should keep run-unique elements")
	}

	// The §4.2 exception: Cloneable in one run, Transfer in the other.
	run3 := &PSEC{ROI: run1.ROI, Callstacks: cs,
		Elements: []*Element{elem("e", PSEHeap, SetTransfer|SetOutput)}}
	m2 := Merge(run2, run3)
	if got := m2.ElementByName("e").Sets; got != SetTransfer|SetOutput {
		t.Errorf("C ∪ T should be T, got %s", got)
	}
}

func TestPSECElementsIn(t *testing.T) {
	p := &PSEC{Elements: []*Element{
		elem("b", PSEVariable, SetInput),
		elem("a", PSEVariable, SetInput|SetOutput),
		elem("c", PSEHeap, SetTransfer|SetOutput),
	}}
	in := p.ElementsIn(SetInput)
	if len(in) != 2 || in[0].PSE.Name != "a" || in[1].PSE.Name != "b" {
		t.Errorf("ElementsIn(Input) = %v", in)
	}
	if n := len(p.ElementsIn(SetTransfer)); n != 1 {
		t.Errorf("ElementsIn(Transfer) = %d elements", n)
	}
}

func TestCallstackInterning(t *testing.T) {
	tbl := NewCallstackTable()
	a := tbl.Intern([]Frame{{Func: "main", Pos: "m.mc:1:1"}, {Func: "f", Pos: "m.mc:5:2"}})
	b := tbl.Intern([]Frame{{Func: "main", Pos: "m.mc:1:1"}, {Func: "f", Pos: "m.mc:5:2"}})
	c := tbl.Intern([]Frame{{Func: "main", Pos: "m.mc:1:1"}})
	if a != b {
		t.Error("identical stacks should intern to one ID")
	}
	if a == c {
		t.Error("distinct stacks should get distinct IDs")
	}
	if tbl.Intern(nil) != 0 {
		t.Error("empty stack must be ID 0")
	}
	if got := tbl.Format(a); got != "main (m.mc:1:1) > f (m.mc:5:2)" {
		t.Errorf("Format = %q", got)
	}
	if got := tbl.Format(0); got != "<top>" {
		t.Errorf("Format(0) = %q", got)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d, want 3", tbl.Len())
	}
	if fr := tbl.Frames(a); len(fr) != 2 || fr[1].Func != "f" {
		t.Errorf("Frames = %v", fr)
	}
	if fr := tbl.Frames(999); fr != nil {
		t.Error("out-of-range ID should give nil")
	}
}

func TestReachGraphCycles(t *testing.T) {
	g := NewReachGraph()
	a := PSEDesc{Kind: PSEHeap, Name: "a", AllocPos: "1"}
	b := PSEDesc{Kind: PSEHeap, Name: "b", AllocPos: "2"}
	c := PSEDesc{Kind: PSEHeap, Name: "c", AllocPos: "3"}
	d := PSEDesc{Kind: PSEHeap, Name: "d", AllocPos: "4"}
	g.Touch(a, 10)
	g.Touch(b, 5)
	g.Touch(c, 20)
	g.AddEdge(a, b, 11)
	g.AddEdge(b, c, 12)
	g.AddEdge(c, a, 13)
	g.AddEdge(a, d, 14) // acyclic appendage

	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("want 1 cycle, got %d", len(cycles))
	}
	if len(cycles[0].Nodes) != 3 {
		t.Errorf("cycle has %d nodes, want 3", len(cycles[0].Nodes))
	}
	if len(cycles[0].Edges) != 3 {
		t.Errorf("cycle has %d edges, want 3", len(cycles[0].Edges))
	}
	// b has the oldest access (5): the weak pointer should target b.
	weak := g.WeakPointerSuggestion(cycles[0])
	if weak == nil || weak.To.Name != "b" {
		t.Errorf("weak suggestion = %+v, want edge into b", weak)
	}
}

func TestReachGraphSelfLoopAndDedup(t *testing.T) {
	g := NewReachGraph()
	a := PSEDesc{Kind: PSEHeap, Name: "self", AllocPos: "1"}
	g.AddEdge(a, a, 1)
	g.AddEdge(a, a, 9) // same edge, refreshes LastTime
	if len(g.Edges()) != 1 {
		t.Fatalf("duplicate edges should merge, got %d", len(g.Edges()))
	}
	if e := g.Edges()[0]; e.FirstTime != 1 || e.LastTime != 9 {
		t.Errorf("edge times = %d..%d", e.FirstTime, e.LastTime)
	}
	cycles := g.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("self loop is a cycle, got %d", len(cycles))
	}
}

func TestReachGraphNoCycles(t *testing.T) {
	g := NewReachGraph()
	a := PSEDesc{Kind: PSEHeap, Name: "a", AllocPos: "1"}
	b := PSEDesc{Kind: PSEHeap, Name: "b", AllocPos: "2"}
	g.AddEdge(a, b, 1)
	if len(g.Cycles()) != 0 {
		t.Error("a→b is acyclic")
	}
}

// TestReachGraphRandomSCC cross-checks Tarjan against a reachability
// oracle: u and v share a cycle iff u reaches v and v reaches u.
func TestReachGraphRandomSCC(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		descs := make([]PSEDesc, n)
		for i := range descs {
			descs[i] = PSEDesc{Kind: PSEHeap, Name: string(rune('a' + i)), AllocPos: string(rune('0' + i))}
		}
		adj := make([][]bool, n)
		g := NewReachGraph()
		for i := range adj {
			adj[i] = make([]bool, n)
			g.Node(descs[i])
		}
		for e := 0; e < n+r.Intn(n*2); e++ {
			u, v := r.Intn(n), r.Intn(n)
			adj[u][v] = true
			g.AddEdge(descs[u], descs[v], uint64(e))
		}
		reach := func(from, to int) bool {
			seen := make([]bool, n)
			var dfs func(int) bool
			dfs = func(u int) bool {
				if adj[u][to] {
					return true
				}
				for v := 0; v < n; v++ {
					if adj[u][v] && !seen[v] {
						seen[v] = true
						if dfs(v) {
							return true
						}
					}
				}
				return false
			}
			return dfs(from)
		}
		inCycle := map[string]bool{}
		for _, cyc := range g.Cycles() {
			for _, nd := range cyc.Nodes {
				inCycle[nd.Name] = true
			}
		}
		for i := 0; i < n; i++ {
			want := reach(i, i)
			if got := inCycle[descs[i].Name]; got != want {
				t.Fatalf("trial %d node %d: in-cycle=%v, oracle=%v", trial, i, got, want)
			}
		}
	}
}

func TestPSECSummary(t *testing.T) {
	p := &PSEC{
		ROI:        ROIInfo{Name: "loop", Kind: "carmot", Pos: "x.mc:3:1"},
		Callstacks: NewCallstackTable(),
		Elements:   []*Element{elem("v", PSEVariable, SetInput)},
		Stats:      Stats{Invocations: 4, TotalAccesses: 8, VarAccesses: 8},
	}
	s := p.Summary()
	for _, want := range []string{"loop", "invocations: 4", "v", "{Input}"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// Package instrument decides, instruction by instruction, how the lowered
// program is observed by the profiling runtime. It implements the seven
// PSEC-specific optimizations of §4.4 as independent toggles so that the
// naive baseline (all off) and the per-optimization ablation of Figure 8
// come from the same planner.
//
// Static aggregation (opt 2) is complemented at run time by the
// producer-side combining buffer in the runtime's emit path
// (internal/rt/coalesce.go): what the planner cannot prove affine here,
// EmitAccess still merges dynamically into ranged EvAccessRun events
// when consecutive accesses happen to share a site and a constant
// stride. The two layers are independent — the planner shrinks the set
// of instrumented instructions, the combining buffer shrinks the wire
// traffic the survivors generate.
package instrument

import (
	"fmt"

	"carmot/internal/analysis"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/rt"
)

// Options selects the optimizations and the tracking profile.
type Options struct {
	SubsequentAccess    bool // §4.4 opt 1: must-access data-flow removal
	Aggregation         bool // §4.4 opt 2: ranged events for indexed arrays
	FixedState          bool // §4.4 opt 3: compile-time FSA classification
	Mem2Reg             bool // §4.4 opt 4: selective promotion of locals
	CallgraphO3         bool // §4.4 opt 5: complete-call-graph -O3 scoping
	PinGating           bool // §4.4 opt 6: Pin hooks only where needed
	CallstackClustering bool // §4.4 opt 7: one stack capture per fn entry

	Profile rt.TrackingProfile
}

// Naive returns the baseline configuration of Figures 7/10/11: no
// PSEC-specific optimization, full tracking, still a correct PSEC.
func Naive() Options {
	return Options{Profile: rt.ProfileFull}
}

// Carmot returns the full CARMOT configuration for a use-case profile.
func Carmot(profile rt.TrackingProfile) Options {
	return Options{
		SubsequentAccess: true, Aggregation: true, FixedState: true,
		Mem2Reg: true, CallgraphO3: true, PinGating: true,
		CallstackClustering: true, Profile: profile,
	}
}

// Stats reports what the planner did; tests and the Figure 8 ablation
// read these.
type Stats struct {
	AccessSites        int // loads+stores in instrumentation scope
	Instrumented       int // sites left with TrackOn
	RemovedByDataflow  int // opt 1
	RemovedByAggregate int // opt 2
	RemovedByFixed     int // opt 3
	PromotedAllocas    int // opt 4 (+ synthetic slots)
	O3Functions        int // opt 5
	PinGatedCalls      int
	TotalCalls         int
	RangedEvents       int
	FixedEvents        int
}

// Plan is the result of instrumentation planning. Per-instruction
// decisions live on the IR itself (InstrBase.Track / Site, Call.PinGated,
// Alloca.Promoted); the plan carries the tables the runtime needs.
type Plan struct {
	Options Options
	Sites   []rt.SiteInfo
	ROIs    []rt.ROIMeta
	Stats   Stats
	// StaticVarUses maps a variable's declaration position to the site
	// IDs of accesses whose instrumentation was removed by the
	// must-access data flow (§4.4 opt 1) but whose target variable is
	// statically known: the compiler contributes these use sites to the
	// PSEC directly, keeping Use-callstack reports complete.
	StaticVarUses map[string][]int32
	// ReducibleVars maps a variable's declaration position to the
	// reduction operator when every in-ROI access is part of one
	// reduction pattern — decided statically so that instrumentation
	// removal cannot change the §3.2 reducibility answer.
	ReducibleVars map[string]string
}

// Apply plans instrumentation for the program, mutating IR flags and
// inserting RangedEvent/FixedClass instructions. It is idempotent: a
// previous plan's flags and inserted instructions are stripped first.
func Apply(prog *ir.Program, opts Options) (*Plan, error) {
	strip(prog)
	plan := &Plan{Options: opts}
	for _, roi := range prog.ROIs {
		plan.ROIs = append(plan.ROIs, rt.ROIMeta{
			ID: roi.ID, Name: roi.Name, Kind: roi.Kind.String(), Pos: roi.Pos.String(),
		})
	}

	pt := analysis.ComputePointsTo(prog)
	cg := analysis.ComputeCallGraph(prog, pt)
	regions := analysis.ComputeROIRegions(prog)

	onStack := cg.OnStackAtROIStart()
	reachable := cg.ReachableWithinROI(regions)
	mayReachPin := cg.MayReachPrecompiled()
	calledWithinROI := computeCalledWithinROI(prog, cg, regions)

	for _, fn := range prog.Funcs {
		accessScope := !opts.CallgraphO3 || reachable[fn]
		o3 := opts.CallgraphO3 && !onStack[fn]
		if o3 {
			plan.Stats.O3Functions++
		}
		plan.planAllocas(fn, o3, regions, calledWithinROI)
		plan.planAccesses(fn, accessScope, o3, cg, mayReachPin)
	}

	// Loop-shaped ROI optimizations need the region begin markers.
	for _, roi := range prog.ROIs {
		if roi.Loop == nil {
			continue
		}
		region := regions[roi]
		if region.Begin == nil {
			continue
		}
		pre := findPreheader(prog, roi)
		if pre.blk == nil {
			continue
		}
		if opts.FixedState {
			plan.applyFixedState(prog, roi, region, &pre)
		}
		if opts.Aggregation {
			plan.applyAggregation(prog, roi, region, &pre, pt)
		}
	}

	var removedVarAccesses []ir.Instr
	if opts.SubsequentAccess {
		for _, roi := range prog.ROIs {
			region := regions[roi]
			if region.Begin == nil {
				continue
			}
			ma := analysis.ComputeMustAccess(region)
			region.Instructions(func(in ir.Instr) bool {
				if !ma.Redundant[in] || ir.Base(in).Track != ir.TrackOn {
					return true
				}
				ir.Base(in).Track = ir.TrackOff
				plan.Stats.RemovedByDataflow++
				if symOfAccess(in) != nil {
					removedVarAccesses = append(removedVarAccesses, in)
				}
				return true
			})
		}
	}

	reduceOps := recognizeReductions(prog)
	plan.assignSites(prog, reduceOps)
	plan.recordStaticUses(removedVarAccesses, reduceOps)
	plan.recordReducibleVars(prog, regions, reduceOps)
	return plan, nil
}

func symOfAccess(in ir.Instr) *lang.Symbol {
	switch x := in.(type) {
	case *ir.Load:
		return x.Sym
	case *ir.Store:
		return x.Sym
	}
	return nil
}

// recordStaticUses registers compiler-known use sites for accesses whose
// instrumentation was removed.
func (p *Plan) recordStaticUses(removed []ir.Instr, reduceOps map[ir.Instr]string) {
	if len(removed) == 0 {
		return
	}
	p.StaticVarUses = map[string][]int32{}
	for _, in := range removed {
		sym := symOfAccess(in)
		base := ir.Base(in)
		_, write := in.(*ir.Store)
		site := int32(len(p.Sites))
		p.Sites = append(p.Sites, rt.SiteInfo{
			Pos: base.Pos.String(), Func: base.Blk.Func.Name, Write: write,
			ReduceOp: reduceOps[in],
		})
		key := sym.Pos.String()
		p.StaticVarUses[key] = append(p.StaticVarUses[key], site)
	}
}

// recordReducibleVars decides reducibility statically per (ROI, variable):
// the variable is written in the region and every in-region access is
// part of the same reduction pattern.
func (p *Plan) recordReducibleVars(prog *ir.Program, regions map[*ir.ROI]*analysis.ROIRegion, reduceOps map[ir.Instr]string) {
	p.ReducibleVars = map[string]string{}
	blocked := map[string]bool{}
	for _, roi := range prog.ROIs {
		region := regions[roi]
		if region == nil || region.Begin == nil {
			continue
		}
		type info struct {
			op       string
			mixed    bool
			hasWrite bool
		}
		vars := map[*lang.Symbol]*info{}
		region.Instructions(func(in ir.Instr) bool {
			sym := symOfAccess(in)
			if sym == nil {
				return true
			}
			inf := vars[sym]
			if inf == nil {
				inf = &info{op: reduceOps[in]}
				vars[sym] = inf
			}
			op := reduceOps[in]
			if op == "" || (inf.op != "" && op != inf.op) {
				inf.mixed = true
			}
			if inf.op == "" {
				inf.op = op
			}
			if _, w := in.(*ir.Store); w {
				inf.hasWrite = true
			}
			return true
		})
		for sym, inf := range vars {
			key := sym.Pos.String()
			if inf.mixed || !inf.hasWrite || inf.op == "" || sym.AddressTaken {
				blocked[key] = true
				delete(p.ReducibleVars, key)
				continue
			}
			if blocked[key] {
				continue
			}
			if prev, ok := p.ReducibleVars[key]; ok && prev != inf.op {
				blocked[key] = true
				delete(p.ReducibleVars, key)
				continue
			}
			p.ReducibleVars[key] = inf.op
		}
	}
}

// strip removes artifacts of a previous plan.
func strip(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				if ir.Base(b.Instrs[i]).Planner {
					b.RemoveAt(i)
				}
			}
		}
		fn.Instructions(func(in ir.Instr) bool {
			base := ir.Base(in)
			base.Track = ir.TrackOff
			base.Site = -1
			if a, ok := in.(*ir.Alloca); ok {
				a.Promoted = false
			}
			if c, ok := in.(*ir.Call); ok {
				c.PinGated = false
			}
			return true
		})
	}
}

func (p *Plan) planAllocas(fn *ir.Func, o3 bool, regions map[*ir.ROI]*analysis.ROIRegion, calledWithinROI map[*ir.Func]bool) {
	for _, a := range fn.Allocas {
		switch {
		case a.Synthetic:
			// Compiler temporaries are not source PSEs in any mode.
			a.Promoted = true
		case o3:
			// §4.4 opt 5: this function cannot be on the call stack when
			// any ROI starts, so its stack PSEs cannot be part of a PSEC.
			a.Promoted = true
			p.Stats.PromotedAllocas++
		case p.Options.Mem2Reg && promotable(a, fn, regions, calledWithinROI):
			a.Promoted = true
			p.Stats.PromotedAllocas++
		default:
			a.Track = ir.TrackOn
		}
	}
}

// promotable implements §4.4 opt 4: a local can be promoted when no ROI
// can ever observe it — it is never accessed inside a lexical ROI region
// of its function, its address is never taken, and its function is not
// called from within any ROI.
func promotable(a *ir.Alloca, fn *ir.Func, regions map[*ir.ROI]*analysis.ROIRegion, calledWithinROI map[*ir.Func]bool) bool {
	if a.Sym == nil || a.Sym.AddressTaken || calledWithinROI[fn] {
		return false
	}
	for _, region := range regions {
		if region.ROI.Func != fn {
			continue
		}
		used := false
		region.Instructions(func(in ir.Instr) bool {
			switch x := in.(type) {
			case *ir.Load:
				if x.Sym == a.Sym {
					used = true
					return false
				}
			case *ir.Store:
				if x.Sym == a.Sym {
					used = true
					return false
				}
			}
			return true
		})
		if used {
			return false
		}
	}
	return true
}

func (p *Plan) planAccesses(fn *ir.Func, accessScope, o3 bool, cg *analysis.CallGraph, mayReachPin map[*ir.Func]bool) {
	fn.Instructions(func(in ir.Instr) bool {
		switch x := in.(type) {
		case *ir.Malloc:
			// Heap PSEs are tracked in every configuration (§4.4 opt 5:
			// -O3 preserves heap allocations).
			x.Track = ir.TrackOn
		case *ir.Free:
			x.Track = ir.TrackOn
		case *ir.Load:
			if !accessScope || !p.Options.Profile.Sets {
				return true
			}
			if suppressedAddr(x.Addr, o3, x.Sym) {
				return true
			}
			p.Stats.AccessSites++
			x.Track = ir.TrackOn
		case *ir.Store:
			if !accessScope {
				return true
			}
			needSets := p.Options.Profile.Sets
			needEscape := p.Options.Profile.Reach && x.PtrStore
			if !needSets && !needEscape {
				return true
			}
			if suppressedAddr(x.Addr, o3, x.Sym) {
				return true
			}
			p.Stats.AccessSites++
			x.Track = ir.TrackOn
		case *ir.Call:
			p.Stats.TotalCalls++
			if !p.Options.PinGating {
				// Naive: the Pintool shadows every call site.
				x.PinGated = true
				p.Stats.PinGatedCalls++
				return true
			}
			if accessScope && cg.CallNeedsPin(x, mayReachPin) {
				x.PinGated = true
				p.Stats.PinGatedCalls++
			}
		}
		return true
	})
}

// suppressedAddr reports whether an access needs no instrumentation
// because its target is a promoted/synthetic slot, or — under the -O3
// treatment — a direct access to the function's own (untracked) locals.
func suppressedAddr(addr ir.Value, o3 bool, sym *lang.Symbol) bool {
	if a, ok := addr.(*ir.Alloca); ok && a.Promoted {
		return true
	}
	if o3 && sym != nil && sym.Storage != lang.StorageGlobal {
		return true
	}
	return false
}

// computeCalledWithinROI returns the functions that may be invoked from
// inside some ROI region (the forward closure of in-region call targets).
func computeCalledWithinROI(prog *ir.Program, cg *analysis.CallGraph, regions map[*ir.ROI]*analysis.ROIRegion) map[*ir.Func]bool {
	out := map[*ir.Func]bool{}
	var work []*ir.Func
	add := func(f *ir.Func) {
		if f != nil && !out[f] {
			out[f] = true
			work = append(work, f)
		}
	}
	for _, region := range regions {
		region.Instructions(func(in ir.Instr) bool {
			if c, ok := in.(*ir.Call); ok {
				for _, f := range cg.CalleeFuncs[c] {
					add(f)
				}
			}
			return true
		})
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		f.Instructions(func(in ir.Instr) bool {
			if c, ok := in.(*ir.Call); ok {
				for _, g := range cg.CalleeFuncs[c] {
					add(g)
				}
			}
			return true
		})
	}
	return out
}

// assignSites numbers every remaining TrackOn access and builds the
// use-site table, including reduction-pattern recognition (§3.2).
func (p *Plan) assignSites(prog *ir.Program, reduceOps map[ir.Instr]string) {
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			base := ir.Base(in)
			var write bool
			switch in.(type) {
			case *ir.Load:
				write = false
			case *ir.Store:
				write = true
			default:
				return true
			}
			if base.Track != ir.TrackOn {
				return true
			}
			base.Site = int32(len(p.Sites))
			p.Sites = append(p.Sites, rt.SiteInfo{
				Pos: base.Pos.String(), Func: fn.Name, Write: write,
				ReduceOp: reduceOps[in],
			})
			p.Stats.Instrumented++
			return true
		})
	}
}

// recognizeReductions finds load-op-store reduction patterns: a store
// whose value is a commutative binary operation with exactly one operand
// being a load of the same location, where that load has no other use.
func recognizeReductions(prog *ir.Program) map[ir.Instr]string {
	out := map[ir.Instr]string{}
	useCount := map[ir.Value]int{}
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			for _, op := range in.Operands() {
				useCount[op]++
			}
			return true
		})
	}
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			st, ok := in.(*ir.Store)
			if !ok {
				return true
			}
			bin, ok := st.Val.(*ir.Bin)
			if !ok || !bin.Op.IsCommutative() {
				return true
			}
			opName := "+"
			if bin.Op == ir.OpMul {
				opName = "*"
			}
			for _, cand := range []ir.Value{bin.L, bin.R} {
				ld, ok := cand.(*ir.Load)
				if !ok || !sameLocation(ld.Addr, st.Addr) {
					continue
				}
				// The load must feed only this reduction; the bin result
				// must feed only the store.
				if useCount[ld] != 1 || useCount[bin] != 1 {
					continue
				}
				out[st] = opName
				out[ld] = opName
				break
			}
			return true
		})
	}
	return out
}

// sameLocation reports whether two address operands statically denote the
// same storage: the same alloca, the same global, the same GEP result, or
// two structurally equal GEPs over the same base and provably equal index
// (e.g. the two `cnt[k]` of `cnt[k] = cnt[k] + 1`, which lower to two
// separate GEPs).
func sameLocation(a, b ir.Value) bool {
	if a == b {
		return true
	}
	if ga, ok := a.(*ir.GlobalAddr); ok {
		gb, ok2 := b.(*ir.GlobalAddr)
		return ok2 && ga.Global == gb.Global
	}
	gpa, ok1 := a.(*ir.GEP)
	gpb, ok2 := b.(*ir.GEP)
	if !ok1 || !ok2 {
		return false
	}
	if gpa.Scale != gpb.Scale || gpa.Offset != gpb.Offset {
		return false
	}
	if !sameLocation(gpa.Base, gpb.Base) && !sameValue(gpa.Base, gpb.Base) {
		return false
	}
	if gpa.Index == gpb.Index {
		return true
	}
	return sameValue(gpa.Index, gpb.Index)
}

// sameValue reports whether two values provably evaluate to the same
// result at their respective uses: identical values, equal constants, or
// two loads of the same non-address-taken variable within one basic block
// with no intervening store to it or call.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return a != nil
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	if ok1 && ok2 {
		return ca.IsFloat == cb.IsFloat && ca.Int == cb.Int && ca.Float == cb.Float
	}
	la, ok1 := a.(*ir.Load)
	lb, ok2 := b.(*ir.Load)
	if !ok1 || !ok2 || la.Sym == nil || la.Sym != lb.Sym || la.Sym.AddressTaken {
		return false
	}
	if la.Blk != lb.Blk {
		return false
	}
	// Scan between the two loads for writes to the variable or calls.
	lo, hi := la, lb
	if ir.Base(lb).ID < ir.Base(la).ID {
		lo, hi = lb, la
	}
	started := false
	for _, in := range la.Blk.Instrs {
		if in == ir.Instr(lo) {
			started = true
			continue
		}
		if !started {
			continue
		}
		if in == ir.Instr(hi) {
			return true
		}
		switch x := in.(type) {
		case *ir.Store:
			if x.Sym == la.Sym {
				return false
			}
		case *ir.Call:
			return false
		}
	}
	return false
}

// preheader is an insertion cursor just after an ROI's region-begin mark.
type preheader struct {
	blk *ir.Block
	idx int
}

func (ph *preheader) insert(in ir.Instr, pos lang.Pos) {
	ir.Base(in).Pos = pos
	ir.Base(in).Planner = true
	ph.blk.InsertAt(in, ph.idx)
	ph.idx++
}

// findPreheader locates the MarkRegionBegin of the parallel region that
// carries the ROI (lowering creates one for every loop-shaped ROI).
func findPreheader(prog *ir.Program, roi *ir.ROI) preheader {
	for _, b := range roi.Func.Blocks {
		for i, in := range b.Instrs {
			if m, ok := in.(*ir.Mark); ok && m.Kind == ir.MarkRegionBegin && m.Region != nil && m.Region.ROI == roi {
				return preheader{blk: b, idx: i + 1}
			}
		}
	}
	return preheader{}
}

// debugString summarizes the plan (used by tests and the CLI -v mode).
func (p *Plan) String() string {
	s := p.Stats
	return fmt.Sprintf(
		"plan: %d/%d access sites instrumented (dataflow -%d, aggregated -%d, fixed -%d), %d allocas promoted, %d -O3 functions, %d/%d pin-gated calls, %d ranged, %d fixed events",
		s.Instrumented, s.AccessSites, s.RemovedByDataflow, s.RemovedByAggregate,
		s.RemovedByFixed, s.PromotedAllocas, s.O3Functions, s.PinGatedCalls,
		s.TotalCalls, s.RangedEvents, s.FixedEvents)
}

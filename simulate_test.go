package carmot_test

import (
	"testing"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/harness"
)

// TestSimulateAPIs exercises the three simulation entry points on one
// benchmark end to end.
func TestSimulateAPIs(t *testing.T) {
	b, err := bench.ByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	copts := carmot.CompileOptions{ProfileOmpRegions: true}
	scale := b.DevScale

	dev, err := carmot.Compile("lu.mc", b.Source(scale), copts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	recs := harness.RecommendAll(dev, res)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}

	prod, err := carmot.Compile("lu.mc", b.Source(scale*2), copts)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := prod.SimulateSerial(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := serial.Speedup(); s < 0.95 || s > 1.05 {
		t.Errorf("serial 'speedup' = %.3f, want ~1", s)
	}
	orig, err := prod.SimulateOriginal(24, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Speedup() < 2 {
		t.Errorf("original parallelism speedup = %.2f, want > 2", orig.Speedup())
	}
	cm, err := prod.SimulateCarmot(24, harness.MapRecommendations(prod, recs), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Speedup() < 0.7*orig.Speedup() {
		t.Errorf("carmot %.2f should track original %.2f on lu", cm.Speedup(), orig.Speedup())
	}
	// All three replay the same serial execution.
	if serial.SerialCycles != orig.SerialCycles || orig.SerialCycles != cm.SerialCycles {
		t.Error("serial cycle counts must agree across plans")
	}
	// Deterministic across repetition.
	cm2, err := prod.SimulateCarmot(24, harness.MapRecommendations(prod, recs), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cm2.SimCycles != cm.SimCycles {
		t.Errorf("simulation not deterministic: %d vs %d", cm2.SimCycles, cm.SimCycles)
	}
}

// TestPostfixSemantics pins i++ evaluating to the old value.
func TestPostfixSemantics(t *testing.T) {
	prog, err := carmot.Compile("p.mc", `
int main() {
	int i = 5;
	int a = i++;
	int* p = malloc(4);
	p[0] = 10;
	p[1] = 20;
	int* q = p;
	int b = *q++;       // *(q++): reads through the old q, then advances q
	return a * 100 + i * 10 + b;
}`, carmot.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Execute(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// a = 5 (old), i = 6; *q++ = *(q++) = old q target = p[0] = 10.
	if res.Exit != 5*100+6*10+10 {
		t.Errorf("exit = %d", res.Exit)
	}
}

package native

import (
	"math"
	"strings"
	"testing"
)

// fakeEnv is a minimal in-memory environment for exercising natives.
type fakeEnv struct {
	mem  map[uint64]uint64
	out  strings.Builder
	rand uint64
}

func newFakeEnv() *fakeEnv { return &fakeEnv{mem: map[uint64]uint64{}, rand: 42} }

func (f *fakeEnv) LoadCell(addr uint64) uint64       { return f.mem[addr] }
func (f *fakeEnv) StoreCell(addr uint64, val uint64) { f.mem[addr] = val }
func (f *fakeEnv) Print(s string)                    { f.out.WriteString(s) }
func (f *fakeEnv) RandState() *uint64                { return &f.rand }

func TestRegistryCompleteness(t *testing.T) {
	for _, name := range []string{
		"print_int", "print_float", "sqrt", "exp", "log", "pow", "sin",
		"cos", "fabs", "floor", "rand_seed", "rand_int", "rand_float",
		"memcpy_cells", "memset_cells", "sum_cells", "fsum_cells",
	} {
		spec := Lookup(name)
		if spec == nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if spec.Impl == nil || spec.Cost <= 0 {
			t.Errorf("%s has incomplete spec", name)
		}
	}
	if Lookup("no_such_fn") != nil {
		t.Error("unknown names must return nil")
	}
	if len(Names()) < 17 {
		t.Errorf("registry has %d entries", len(Names()))
	}
}

func TestMemoryFlagsMatchBehavior(t *testing.T) {
	memoryFns := map[string]bool{
		"memcpy_cells": true, "memset_cells": true, "sum_cells": true, "fsum_cells": true,
	}
	for _, name := range Names() {
		if spec := Lookup(name); spec.AccessesMemory != memoryFns[name] {
			t.Errorf("%s AccessesMemory = %v", name, spec.AccessesMemory)
		}
	}
}

func TestMathNatives(t *testing.T) {
	env := newFakeEnv()
	call := func(name string, args ...uint64) uint64 {
		return Lookup(name).Impl(env, args)
	}
	f := math.Float64bits
	if got := call("sqrt", f(16)); math.Float64frombits(got) != 4 {
		t.Errorf("sqrt(16) = %v", math.Float64frombits(got))
	}
	if got := call("pow", f(2), f(10)); math.Float64frombits(got) != 1024 {
		t.Errorf("pow(2,10) = %v", math.Float64frombits(got))
	}
	if got := call("fabs", f(-3.5)); math.Float64frombits(got) != 3.5 {
		t.Errorf("fabs(-3.5) = %v", math.Float64frombits(got))
	}
	if got := call("floor", f(2.9)); math.Float64frombits(got) != 2 {
		t.Errorf("floor(2.9) = %v", math.Float64frombits(got))
	}
}

func TestMemoryNatives(t *testing.T) {
	env := newFakeEnv()
	for i := uint64(0); i < 4; i++ {
		env.mem[100+i] = i + 1
	}
	Lookup("memcpy_cells").Impl(env, []uint64{200, 100, 4})
	for i := uint64(0); i < 4; i++ {
		if env.mem[200+i] != i+1 {
			t.Errorf("memcpy cell %d = %d", i, env.mem[200+i])
		}
	}
	Lookup("memset_cells").Impl(env, []uint64{300, 9, 3})
	if env.mem[300] != 9 || env.mem[302] != 9 || env.mem[303] != 0 {
		t.Error("memset wrong extent")
	}
	if got := Lookup("sum_cells").Impl(env, []uint64{100, 4}); got != 10 {
		t.Errorf("sum_cells = %d", got)
	}
	env.mem[400] = math.Float64bits(1.5)
	env.mem[401] = math.Float64bits(2.5)
	if got := Lookup("fsum_cells").Impl(env, []uint64{400, 2}); math.Float64frombits(got) != 4 {
		t.Errorf("fsum_cells = %v", math.Float64frombits(got))
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := newFakeEnv(), newFakeEnv()
	Lookup("rand_seed").Impl(a, []uint64{7})
	Lookup("rand_seed").Impl(b, []uint64{7})
	for i := 0; i < 20; i++ {
		x := Lookup("rand_int").Impl(a, []uint64{1000})
		y := Lookup("rand_int").Impl(b, []uint64{1000})
		if x != y {
			t.Fatalf("draw %d differs: %d vs %d", i, x, y)
		}
		if x >= 1000 {
			t.Fatalf("rand_int out of bound: %d", x)
		}
	}
	v := Lookup("rand_float").Impl(a, nil)
	fv := math.Float64frombits(v)
	if fv < 0 || fv >= 1 {
		t.Errorf("rand_float = %v, want [0,1)", fv)
	}
}

func TestPrintNatives(t *testing.T) {
	env := newFakeEnv()
	Lookup("print_int").Impl(env, []uint64{uint64(^uint64(0))}) // -1
	Lookup("print_float").Impl(env, []uint64{math.Float64bits(2.5)})
	if got := env.out.String(); got != "-1\n2.5\n" {
		t.Errorf("output = %q", got)
	}
}

// Command carmot-router is the fault-tolerant front door of a carmotd
// fleet: it consistent-hashes each profile request's (tenant, program)
// onto one of N replicas — so every replica's program and PSEC result
// caches stay hot for their slice of the keyspace — and survives
// replica crashes, hangs, and restarts with health probing, per-replica
// circuit breakers, failover retries, and optional request hedging.
//
// Usage:
//
//	carmot-router -replicas http://host:8458,http://host:8459[,...] [flags]
//
// Endpoints:
//
//	POST /v1/profile — routed to a replica; the response body is the
//	                   replica's, byte for byte. The X-Carmot-Route
//	                   header carries the routing trail (replica id,
//	                   attempts, failover reason). ?stream=1 NDJSON
//	                   responses are relayed live.
//	GET  /v1/healthz — 200 while ≥1 replica is routable; the body is
//	                   the per-replica fleet state
//	GET  /v1/statz   — router counters (failovers, hedges, breaker
//	                   trips) as JSON
//
// Example (3-replica fleet on one machine):
//
//	carmotd -addr 127.0.0.1:8461 & carmotd -addr 127.0.0.1:8462 &
//	carmotd -addr 127.0.0.1:8463 &
//	carmot-router -addr 127.0.0.1:8460 \
//	  -replicas http://127.0.0.1:8461,http://127.0.0.1:8462,http://127.0.0.1:8463
//	curl -s -X POST -H 'X-Carmot-Tenant: alice' -d '{"source":"..."}' \
//	  http://127.0.0.1:8460/v1/profile
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"carmot/internal/router"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8460", "listen address")
		replicas      = flag.String("replicas", "", "comma-separated carmotd base URLs (required)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
		probeInterval = flag.Duration("probe-interval", 0, "health-probe period (0 = default 250ms)")
		downAfter     = flag.Int("down-after", 0, "consecutive probe failures before a replica is down (0 = default 2)")
		upAfter       = flag.Int("up-after", 0, "consecutive probe successes before a down replica is up (0 = default 2)")
		breakerN      = flag.Int("breaker-threshold", 0, "consecutive failures that open a replica's breaker (0 = default 3)")
		breakerCool   = flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before a half-open trial (0 = default 1s)")
		maxAttempts   = flag.Int("max-attempts", 0, "per-request attempt budget across failover and hedging (0 = replicas+1)")
		hedge         = flag.Duration("hedge", 0, "race a second replica when a buffered request is slower than this (0 = hedging off)")
		attemptTO     = flag.Duration("attempt-timeout", 0, "per-attempt timeout; the hung-replica detector (0 = default 15s)")
	)
	flag.Parse()
	if flag.NArg() != 0 || *replicas == "" {
		fmt.Fprintln(os.Stderr, "usage: carmot-router -replicas url[,url...] [flags]")
		flag.Usage()
		os.Exit(2)
	}
	var bases []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			if !strings.Contains(r, "://") {
				r = "http://" + r // bare host:port is fine
			}
			bases = append(bases, strings.TrimRight(r, "/"))
		}
	}
	if err := run(*addr, router.Config{
		Replicas:         bases,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		DownAfter:        *downAfter,
		UpAfter:          *upAfter,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		MaxAttempts:      *maxAttempts,
		Hedge:            *hedge,
		AttemptTimeout:   *attemptTO,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "carmot-router:", err)
		os.Exit(1)
	}
}

// run serves until SIGTERM/SIGINT, then shuts down. The router holds no
// session state, so shutdown only needs to stop the listener and let
// in-flight relays finish.
func run(addr string, cfg router.Config) error {
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}
	defer rt.Close()
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("carmot-router: listening on http://%s, fronting %d replicas\n", ln.Addr(), len(cfg.Replicas))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("carmot-router: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("carmot-router: bye")
	return nil
}

package analysis

import "carmot/internal/ir"

// PointsTo is a flow-insensitive, field-insensitive, inclusion-based
// (Andersen-style) points-to analysis over the whole program. It resolves
// the possible callees of indirect calls — what the paper obtains from
// NOELLE's PDG to build the complete call graph (§4.4 opt 5) — and powers
// the may-alias queries behind the PDG memory dependences (opt 3).
type PointsTo struct {
	prog *ir.Program

	objs   []objInfo
	objOf  map[interface{}]int
	nodes  []nodeInfo
	nodeOf map[interface{}]int

	pts    []map[int]struct{} // node -> object set
	copies [][]int            // node -> copy-target nodes (dst ⊇ src)
	loads  [][]int            // node -> dst nodes with dst ⊇ *node
	stores [][]int            // node -> src nodes with *node ⊇ src
	calls  []*callCons        // indirect calls, re-examined as pts grow
}

// ObjKind classifies abstract memory objects.
type ObjKind int

// Object kinds.
const (
	ObjAlloca ObjKind = iota
	ObjGlobal
	ObjMalloc
	ObjFunc
	ObjExtern
)

type objInfo struct {
	kind   ObjKind
	alloca *ir.Alloca
	global *ir.Global
	malloc *ir.Malloc
	fn     *ir.Func
	ext    *ir.Extern
}

type nodeInfo struct{ name string }

type contentKey struct{ obj int }
type returnKey struct{ fn *ir.Func }
type paramKey struct {
	fn    *ir.Func
	index int
}

type callCons struct {
	call     *ir.Call
	caller   *ir.Func
	callee   int // node of the callee value
	argNodes []int
	resNode  int
	resolved map[int]bool // object ids already wired
}

// ComputePointsTo builds and solves the constraint system.
func ComputePointsTo(prog *ir.Program) *PointsTo {
	pt := &PointsTo{
		prog:   prog,
		objOf:  map[interface{}]int{},
		nodeOf: map[interface{}]int{},
	}
	pt.build()
	pt.solve()
	return pt
}

func (pt *PointsTo) object(key interface{}, info objInfo) int {
	if id, ok := pt.objOf[key]; ok {
		return id
	}
	id := len(pt.objs)
	pt.objs = append(pt.objs, info)
	pt.objOf[key] = id
	return id
}

func (pt *PointsTo) node(key interface{}, name string) int {
	if id, ok := pt.nodeOf[key]; ok {
		return id
	}
	id := len(pt.nodes)
	pt.nodes = append(pt.nodes, nodeInfo{name: name})
	pt.nodeOf[key] = id
	pt.pts = append(pt.pts, map[int]struct{}{})
	pt.copies = append(pt.copies, nil)
	pt.loads = append(pt.loads, nil)
	pt.stores = append(pt.stores, nil)
	return id
}

// contentNode returns the node holding the pointer contents of an object
// (field-insensitive: one cell per object).
func (pt *PointsTo) contentNode(obj int) int {
	return pt.node(contentKey{obj}, "*"+pt.objName(obj))
}

func (pt *PointsTo) objName(obj int) string {
	o := pt.objs[obj]
	switch o.kind {
	case ObjAlloca:
		if o.alloca.Sym != nil {
			return o.alloca.Sym.Name
		}
		return "tmp"
	case ObjGlobal:
		return o.global.Sym.Name
	case ObjMalloc:
		return "malloc@" + o.malloc.Pos.String()
	case ObjFunc:
		return o.fn.Name
	case ObjExtern:
		return o.ext.Name
	}
	return "?"
}

// valueNode returns the constraint node for an IR value, creating address
// constraints for address-yielding values; returns -1 for values that
// cannot hold pointers.
func (pt *PointsTo) valueNode(v ir.Value) int {
	switch x := v.(type) {
	case *ir.Const:
		return -1
	case *ir.Alloca:
		n := pt.node(x, "&"+pt.objName(pt.object(x, objInfo{kind: ObjAlloca, alloca: x})))
		pt.addObj(n, pt.objOf[x])
		return n
	case *ir.GlobalAddr:
		obj := pt.object(x.Global, objInfo{kind: ObjGlobal, global: x.Global})
		n := pt.node(x.Global, "&"+x.Global.Sym.Name)
		pt.addObj(n, obj)
		return n
	case *ir.FuncRef:
		if x.Func != nil {
			obj := pt.object(x.Func, objInfo{kind: ObjFunc, fn: x.Func})
			n := pt.node(x.Func, "&"+x.Func.Name)
			pt.addObj(n, obj)
			return n
		}
		obj := pt.object(x.Extern, objInfo{kind: ObjExtern, ext: x.Extern})
		n := pt.node(x.Extern, "&"+x.Extern.Name)
		pt.addObj(n, obj)
		return n
	case *ir.Param:
		return pt.node(paramKey{fn: pt.fnOfParam(x), index: x.Index}, "param:"+x.Sym.Name)
	case *ir.Malloc:
		obj := pt.object(x, objInfo{kind: ObjMalloc, malloc: x})
		n := pt.node(x, "&malloc")
		pt.addObj(n, obj)
		return n
	case ir.Instr:
		return pt.node(x, "t")
	}
	return -1
}

// fnOfParam finds the function owning a Param (params are created per
// function during lowering).
func (pt *PointsTo) fnOfParam(p *ir.Param) *ir.Func {
	for _, f := range pt.prog.Funcs {
		for _, q := range f.Params {
			if q == p {
				return f
			}
		}
	}
	return nil
}

func (pt *PointsTo) addObj(node, obj int) { pt.pts[node][obj] = struct{}{} }

func (pt *PointsTo) addCopy(src, dst int) {
	if src < 0 || dst < 0 || src == dst {
		return
	}
	pt.copies[src] = append(pt.copies[src], dst)
}

func (pt *PointsTo) build() {
	for _, fn := range pt.prog.Funcs {
		for _, p := range fn.Params {
			pt.node(paramKey{fn: fn, index: p.Index}, "param:"+p.Sym.Name)
		}
		pt.node(returnKey{fn: fn}, "ret:"+fn.Name)
	}
	for _, fn := range pt.prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			switch x := in.(type) {
			case *ir.GEP:
				// Field-insensitive: the GEP result points wherever its
				// base points.
				pt.addCopy(pt.valueNode(x.Base), pt.valueNode(x))
			case *ir.Load:
				addr := pt.valueNode(x.Addr)
				dst := pt.valueNode(x)
				if addr >= 0 && dst >= 0 {
					pt.loads[addr] = append(pt.loads[addr], dst)
				}
			case *ir.Store:
				addr := pt.valueNode(x.Addr)
				src := pt.valueNode(x.Val)
				if addr >= 0 && src >= 0 {
					pt.stores[addr] = append(pt.stores[addr], src)
				}
			case *ir.Call:
				pt.buildCall(fn, x)
			case *ir.Ret:
				if x.Val != nil {
					pt.addCopy(pt.valueNode(x.Val), pt.node(returnKey{fn: fn}, "ret"))
				}
			case *ir.Malloc:
				pt.valueNode(x) // creates the object
			case *ir.Alloca:
				pt.valueNode(x)
			}
			return true
		})
	}
}

func (pt *PointsTo) buildCall(caller *ir.Func, c *ir.Call) {
	res := pt.valueNode(c)
	if fr := c.DirectTarget(); fr != nil {
		if fr.Func != nil {
			pt.wireCall(c, fr.Func, res)
			return
		}
		pt.wireExtern(c, fr.Extern)
		return
	}
	cc := &callCons{call: c, caller: caller, callee: pt.valueNode(c.Callee), resNode: res, resolved: map[int]bool{}}
	for _, a := range c.Args {
		cc.argNodes = append(cc.argNodes, pt.valueNode(a))
	}
	pt.calls = append(pt.calls, cc)
}

func (pt *PointsTo) wireCall(c *ir.Call, callee *ir.Func, res int) {
	for i, a := range c.Args {
		if i >= len(callee.Params) {
			break
		}
		pt.addCopy(pt.valueNode(a), pt.node(paramKey{fn: callee, index: i}, "param"))
	}
	pt.addCopy(pt.node(returnKey{fn: callee}, "ret"), res)
}

// wireExtern models the pointer flow of native functions: memcpy-style
// routines can propagate pointers between the pointee objects of their
// arguments.
func (pt *PointsTo) wireExtern(c *ir.Call, ext *ir.Extern) {
	if ext.Name != "memcpy_cells" || len(c.Args) < 2 {
		return
	}
	dst := pt.valueNode(c.Args[0])
	src := pt.valueNode(c.Args[1])
	if dst < 0 || src < 0 {
		return
	}
	// *(dst) ⊇ *(src): express with a fresh intermediate node.
	mid := pt.node(c, "memcpy")
	pt.loads[src] = append(pt.loads[src], mid)
	pt.stores[dst] = append(pt.stores[dst], mid)
}

func (pt *PointsTo) solve() {
	work := make([]int, 0, len(pt.pts))
	inWork := make([]bool, len(pt.pts))
	push := func(n int) {
		if n < 0 {
			return
		}
		for n >= len(inWork) {
			inWork = append(inWork, false)
		}
		if !inWork[n] {
			inWork[n] = true
			work = append(work, n)
		}
	}
	for n := range pt.pts {
		if len(pt.pts[n]) > 0 {
			push(n)
		}
	}
	propagate := func(src, dst int) bool {
		changed := false
		for o := range pt.pts[src] {
			if _, ok := pt.pts[dst][o]; !ok {
				pt.pts[dst][o] = struct{}{}
				changed = true
			}
		}
		return changed
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false

		// Complex constraints: loads/stores through n.
		for _, dst := range pt.loads[n] {
			for o := range pt.pts[n] {
				cn := pt.contentNode(o)
				pt.growSlices()
				pt.addCopy(cn, dst)
				if propagate(cn, dst) {
					push(dst)
				}
			}
		}
		for _, src := range pt.stores[n] {
			for o := range pt.pts[n] {
				cn := pt.contentNode(o)
				pt.growSlices()
				pt.addCopy(src, cn)
				if propagate(src, cn) {
					push(cn)
				}
			}
		}
		// Indirect calls whose callee node is n.
		for _, cc := range pt.calls {
			if cc.callee != n {
				continue
			}
			for o := range pt.pts[n] {
				if cc.resolved[o] {
					continue
				}
				cc.resolved[o] = true
				oi := pt.objs[o]
				if oi.kind != ObjFunc {
					continue
				}
				for i, an := range cc.argNodes {
					if i >= len(oi.fn.Params) {
						break
					}
					pn := pt.node(paramKey{fn: oi.fn, index: i}, "param")
					pt.growSlices()
					pt.addCopy(an, pn)
					if an >= 0 && propagate(an, pn) {
						push(pn)
					}
				}
				rn := pt.node(returnKey{fn: oi.fn}, "ret")
				pt.growSlices()
				pt.addCopy(rn, cc.resNode)
				if cc.resNode >= 0 && propagate(rn, cc.resNode) {
					push(cc.resNode)
				}
			}
		}
		// Simple copy edges.
		for _, dst := range pt.copies[n] {
			if propagate(n, dst) {
				push(dst)
			}
		}
	}
}

// growSlices keeps the parallel slices sized after node creation during
// solving (content nodes are created lazily).
func (pt *PointsTo) growSlices() {
	for len(pt.copies) < len(pt.pts) {
		pt.copies = append(pt.copies, nil)
	}
	for len(pt.loads) < len(pt.pts) {
		pt.loads = append(pt.loads, nil)
	}
	for len(pt.stores) < len(pt.pts) {
		pt.stores = append(pt.stores, nil)
	}
}

// PointsToObjects returns the abstract objects a value may point to.
func (pt *PointsTo) PointsToObjects(v ir.Value) []objInfo {
	n, ok := pt.lookupNode(v)
	if !ok {
		return nil
	}
	out := make([]objInfo, 0, len(pt.pts[n]))
	for o := range pt.pts[n] {
		out = append(out, pt.objs[o])
	}
	return out
}

func (pt *PointsTo) lookupNode(v ir.Value) (int, bool) {
	switch x := v.(type) {
	case *ir.GlobalAddr:
		n, ok := pt.nodeOf[x.Global]
		return n, ok
	case *ir.FuncRef:
		if x.Func != nil {
			n, ok := pt.nodeOf[x.Func]
			return n, ok
		}
		n, ok := pt.nodeOf[x.Extern]
		return n, ok
	case *ir.Param:
		n, ok := pt.nodeOf[paramKey{fn: pt.fnOfParam(x), index: x.Index}]
		return n, ok
	default:
		n, ok := pt.nodeOf[v]
		return n, ok
	}
}

// objSet returns the raw object-id set for an address value (empty when
// unknown).
func (pt *PointsTo) objSet(v ir.Value) map[int]struct{} {
	n, ok := pt.lookupNode(v)
	if !ok {
		return nil
	}
	return pt.pts[n]
}

// MayAlias reports whether two address values may reference the same
// object. Unknown (empty) points-to sets answer true conservatively.
func (pt *PointsTo) MayAlias(a, b ir.Value) bool {
	sa, sb := pt.objSet(a), pt.objSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		return true
	}
	for o := range sa {
		if _, ok := sb[o]; ok {
			return true
		}
	}
	return false
}

// IndirectCallees returns the functions an indirect call may invoke.
func (pt *PointsTo) IndirectCallees(c *ir.Call) (funcs []*ir.Func, externs []*ir.Extern) {
	n, ok := pt.lookupNode(c.Callee)
	if !ok {
		return nil, nil
	}
	for o := range pt.pts[n] {
		switch pt.objs[o].kind {
		case ObjFunc:
			funcs = append(funcs, pt.objs[o].fn)
		case ObjExtern:
			externs = append(externs, pt.objs[o].ext)
		}
	}
	return funcs, externs
}

// ObjAllocaOf returns the alloca of an object when it is one, else nil.
func (o objInfo) Alloca() *ir.Alloca { return o.alloca }

// Kind returns the object kind.
func (o objInfo) Kind() ObjKind { return o.kind }

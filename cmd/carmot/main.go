// Command carmot compiles a MiniC source file, profiles its regions of
// interest, and prints the PSEC of each ROI together with the requested
// abstraction recommendation — the workflow of §4.3: the programmer
// invokes CARMOT with the abstraction they want to apply.
//
// Usage:
//
//	carmot [flags] file.mc
//
// Examples:
//
//	carmot -use openmp prog.mc          # parallel-for recommendations
//	carmot -use smartptr -whole prog.mc # reference-cycle hunting
//	carmot -use stats -stats-rois prog.mc
//	carmot -naive prog.mc               # profile without optimizations
//	carmot -dump-ir prog.mc             # print the lowered IR
//	carmot -timeout 30s -max-events 50000000 prog.mc  # budgeted run
//
// Exit codes: 0 success, 1 analysis/runtime error, 2 usage error,
// 3 budget/deadline exceeded (partial PSECs and diagnostics are still
// printed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"carmot"
	"carmot/internal/recommend"
	"carmot/internal/wire"
)

// Exit codes.
const (
	exitOK     = 0
	exitError  = 1
	exitUsage  = 2
	exitBudget = 3
)

// cliOptions collects every flag so the run function stays testable.
type cliOptions struct {
	use           string
	naive         bool
	ompROIs       bool
	statsROIs     bool
	whole         bool
	dumpIR        bool
	dumpPSEC      bool
	run           bool
	verify        bool
	annotate      bool
	asJSON        bool
	maxSteps      int64
	timeout       time.Duration
	maxEvents     uint64
	maxCells      int64
	maxCS         int
	diag          bool
	diagJSON      string
	workers       int
	shards        int
	recover       bool
	journalBudget int64
}

func main() {
	var o cliOptions
	flag.StringVar(&o.use, "use", "openmp", "abstraction to recommend: openmp, task, smartptr, stats")
	flag.BoolVar(&o.naive, "naive", false, "profile with the naive baseline (no PSEC-specific optimizations)")
	flag.BoolVar(&o.ompROIs, "omp-rois", true, "treat existing '#pragma omp parallel for'/'task' bodies as ROIs")
	flag.BoolVar(&o.statsROIs, "stats-rois", false, "treat '#pragma stats' regions as ROIs")
	flag.BoolVar(&o.whole, "whole", false, "treat the whole program (main) as one ROI")
	flag.BoolVar(&o.dumpIR, "dump-ir", false, "print the lowered IR and exit")
	flag.BoolVar(&o.dumpPSEC, "psec", true, "print the PSEC of each ROI")
	flag.BoolVar(&o.run, "run", false, "only execute the program (uninstrumented) and print its result")
	flag.BoolVar(&o.verify, "verify", false, "verify existing omp parallel for pragmas against the PSEC (§5.1)")
	flag.BoolVar(&o.annotate, "annotate", false, "print the source with the recommended pragma inserted at each loop ROI")
	flag.BoolVar(&o.asJSON, "json", false, "emit the PSEC of each ROI as JSON")
	flag.Int64Var(&o.maxSteps, "max-steps", 2_000_000_000, "abort after this many interpreted instructions")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-clock budget for the profiling run (0 = none); on breach the partial PSEC is printed and the exit code is 3")
	flag.Uint64Var(&o.maxEvents, "max-events", 0, "cap on profiled access events (0 = unlimited); breaches degrade the profile")
	flag.Int64Var(&o.maxCells, "max-cells", 0, "cap on live shadow cells (0 = unlimited); breaches climb the degradation ladder")
	flag.IntVar(&o.maxCS, "max-callstacks", 0, "cap on interned callstacks (0 = unlimited)")
	flag.BoolVar(&o.diag, "diag", false, "print run diagnostics (events, peak cells, downgrades) as JSON")
	flag.StringVar(&o.diagJSON, "diag-json", "", "write {exit_code, error, diagnostics} JSON to this path on every exit path")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines condensing event batches (0 = GOMAXPROCS)")
	flag.IntVar(&o.shards, "shards", 0, "address-sharded postprocessing goroutines (0 = min(workers, 8))")
	flag.BoolVar(&o.recover, "recover", true, "enable the self-healing pipeline (replay journal + stage supervisors)")
	flag.Int64Var(&o.journalBudget, "journal-budget", 0, "replay-journal retention in bytes (0 = 32 MiB default, negative = retain nothing)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: carmot [flags] file.mc")
		flag.Usage()
		os.Exit(exitUsage)
	}
	code, err := runCLI(os.Stdout, flag.Arg(0), o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carmot:", err)
	}
	os.Exit(code)
}

// runCLI executes one CLI invocation and returns the process exit code.
// Budget/deadline breaches return exitBudget with the partial PSECs and
// diagnostics already printed to out. When -diag-json is set, a machine-
// readable {exit_code, error, diagnostics} summary is written to the
// given path on every exit path — including usage and compile errors,
// where the diagnostics object is null.
func runCLI(out io.Writer, path string, o cliOptions) (int, error) {
	code, res, err := runProfile(out, path, o)
	if o.diagJSON != "" {
		if werr := writeDiagJSON(o.diagJSON, code, err, res); werr != nil {
			if err == nil {
				return exitError, werr
			}
			fmt.Fprintln(os.Stderr, "carmot: diag-json:", werr)
		}
	}
	return code, err
}

// writeDiagJSON writes the -diag-json document — the wire.Summary shared
// with carmotd, so a supervisor process can triage a run without parsing
// human-oriented output or caring how it was launched.
func writeDiagJSON(path string, code int, err error, res *carmot.ProfileResult) error {
	s := wire.Summary{ExitCode: code, Kind: wire.KindForExit(code)}
	if err != nil {
		s.Error = err.Error()
	}
	if res != nil {
		s.Diagnostics = &res.Diagnostics
		s.Attempts = 1
	}
	data, merr := s.Encode()
	if merr != nil {
		return merr
	}
	return os.WriteFile(path, data, 0o644)
}

// runProfile is runCLI's body; it additionally returns the profiling
// result (nil on paths that never profile) so runCLI can serialize the
// diagnostics.
func runProfile(out io.Writer, path string, o cliOptions) (int, *carmot.ProfileResult, error) {
	if o.timeout < 0 {
		return exitUsage, nil, fmt.Errorf("negative -timeout %v", o.timeout)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return exitError, nil, err
	}
	var useCase carmot.UseCase
	switch o.use {
	case "openmp":
		useCase = carmot.UseOpenMP
	case "task":
		useCase = carmot.UseTask
	case "smartptr":
		useCase = carmot.UseSmartPointers
	case "stats":
		useCase = carmot.UseSTATS
	default:
		return exitUsage, nil, fmt.Errorf("unknown use case %q", o.use)
	}
	prog, err := carmot.Compile(path, string(src), carmot.CompileOptions{
		ProfileOmpRegions:   o.ompROIs,
		ProfileStatsRegions: o.statsROIs,
		WholeProgramROI:     o.whole,
	})
	if err != nil {
		return exitError, nil, err
	}
	if o.dumpIR {
		for _, fn := range prog.IR.Funcs {
			fmt.Fprint(out, fn.String())
		}
		return exitOK, nil, nil
	}
	if o.run {
		res, err := prog.Execute(out, o.maxSteps)
		if err != nil {
			return exitError, nil, err
		}
		fmt.Fprintf(out, "exit=%d cycles=%d steps=%d heap=%d cells leaked=%d cells\n",
			res.Exit, res.Cycles, res.Steps, res.HeapCells, res.LeakedCells)
		return exitOK, nil, nil
	}
	if len(prog.ROIs()) == 0 {
		return exitError, nil, fmt.Errorf("%s has no ROI; add '#pragma carmot roi' or use -whole", path)
	}
	res, err := prog.Profile(carmot.ProfileOptions{
		UseCase: useCase, Naive: o.naive, Stdout: out,
		MaxSteps: o.maxSteps, Timeout: o.timeout,
		MaxEvents: o.maxEvents, MaxCells: o.maxCells, MaxCallstacks: o.maxCS,
		Workers: o.workers, Shards: o.shards,
		Recover: o.recover, JournalBudgetBytes: o.journalBudget,
	})
	if err != nil {
		if res != nil {
			printDiagnostics(out, res)
		}
		return exitError, res, err
	}
	if res.Diagnostics.Truncated {
		// Budget exceeded: print the partial PSECs with diagnostics so
		// the run is still useful, then exit 3.
		fmt.Fprintf(out, "carmot: run truncated: %s\n", res.Diagnostics.TruncatedReason)
		printPSECs(out, prog, res, useCase, o)
		printDiagnostics(out, res)
		return exitBudget, res, nil
	}
	if o.verify {
		results := prog.VerifyOmpPragmas(res)
		if len(results) == 0 {
			return exitError, res, fmt.Errorf("no omp parallel for pragmas to verify (compile with -omp-rois)")
		}
		ok := true
		for _, v := range results {
			fmt.Fprint(out, v.Report())
			ok = ok && v.OK()
		}
		if !ok {
			return exitError, res, nil
		}
		return exitOK, res, nil
	}
	if o.annotate {
		text := string(src)
		for _, roi := range prog.ROIs() {
			if roi.Loop == nil {
				continue
			}
			rec := carmot.RecommendParallelFor(res.PSECs[roi.ID], roi)
			annotated, err := recommend.AnnotateSource(text, roi, rec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "carmot: %s: %v\n", roi.Name, err)
				continue
			}
			text = annotated
			// Only the first loop ROI can be annotated against the
			// original text (insertions shift later line numbers).
			break
		}
		fmt.Fprintln(out, text)
		return exitOK, res, nil
	}
	if o.asJSON {
		data, err := carmot.MarshalPSECs(res.PSECs)
		if err != nil {
			return exitError, res, err
		}
		fmt.Fprintln(out, string(data))
		if o.diag {
			printDiagnostics(out, res)
		}
		return exitOK, res, nil
	}
	fmt.Fprintf(out, "%s\n", res.Plan)
	printPSECs(out, prog, res, useCase, o)
	if o.diag {
		printDiagnostics(out, res)
	}
	return exitOK, res, nil
}

// printPSECs renders each ROI's PSEC and recommendation.
func printPSECs(out io.Writer, prog *carmot.Program, res *carmot.ProfileResult, useCase carmot.UseCase, o cliOptions) {
	for _, roi := range prog.ROIs() {
		psec := res.PSECs[roi.ID]
		if psec == nil {
			continue
		}
		if o.dumpPSEC {
			fmt.Fprint(out, psec.Summary())
		}
		switch useCase {
		case carmot.UseOpenMP:
			fmt.Fprint(out, carmot.RecommendParallelFor(psec, roi).Report())
		case carmot.UseTask:
			fmt.Fprintln(out, carmot.RecommendTask(psec).Pragma())
		case carmot.UseSmartPointers:
			fmt.Fprint(out, carmot.RecommendSmartPointers(psec).Report())
		case carmot.UseSTATS:
			fmt.Fprintln(out, carmot.RecommendSTATS(psec).Pragma())
		}
		fmt.Fprintln(out)
	}
}

// printDiagnostics emits the run diagnostics as one JSON object.
func printDiagnostics(out io.Writer, res *carmot.ProfileResult) {
	data, err := json.MarshalIndent(res.Diagnostics, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "carmot: diagnostics: %v\n", err)
		return
	}
	fmt.Fprintf(out, "diagnostics: %s\n", data)
}

package carmot

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"carmot/internal/faultinject"
)

// spinSrc loops forever inside its ROI; only a budget can stop it.
const spinSrc = `int main() {
	int x = 0;
	int y = 0;
	#pragma carmot roi spin
	while (1) {
		x = x + 1;
		y = x * 2;
	}
	return y;
}
`

func compileSpin(t *testing.T) *Program {
	t.Helper()
	prog, err := Compile("spin.mc", spinSrc, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
}

// TestInfiniteLoopStepBudget: the headline robustness guarantee — an
// unbounded program under a step budget terminates and yields a partial,
// truncation-marked PSEC with nil error.
func TestInfiniteLoopStepBudget(t *testing.T) {
	prog := compileSpin(t)
	baseline := runtime.NumGoroutine()
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, MaxSteps: 200_000})
	if err != nil {
		t.Fatalf("budget stop surfaced as error: %v", err)
	}
	if !res.Diagnostics.Truncated {
		t.Fatal("Diagnostics.Truncated not set")
	}
	if !strings.Contains(res.Diagnostics.TruncatedReason, "step limit") {
		t.Errorf("reason = %q", res.Diagnostics.TruncatedReason)
	}
	psec := res.PSECs[0]
	if psec == nil || !psec.Truncated {
		t.Fatalf("partial PSEC not truncation-marked: %+v", psec)
	}
	// The loop body ran, so the partial profile has real content: the
	// loop counters were written inside the ROI.
	if psec.Stats.TotalAccesses == 0 {
		t.Error("partial PSEC is empty — run produced no profile data")
	}
	waitGoroutineBaseline(t, baseline)
}

func TestInfiniteLoopWallDeadline(t *testing.T) {
	prog := compileSpin(t)
	start := time.Now()
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("deadline stop surfaced as error: %v", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("run took %v; deadline not enforced", el)
	}
	if !res.Diagnostics.Truncated || !strings.Contains(res.Diagnostics.TruncatedReason, "deadline") {
		t.Errorf("diagnostics = %+v", res.Diagnostics)
	}
	if res.PSECs[0] == nil || !res.PSECs[0].Truncated {
		t.Error("partial PSEC not truncation-marked")
	}
}

func TestInfiniteLoopContextCancel(t *testing.T) {
	prog := compileSpin(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, Context: ctx})
	if err != nil {
		t.Fatalf("cancellation surfaced as error: %v", err)
	}
	if !res.Diagnostics.Truncated || !strings.Contains(res.Diagnostics.TruncatedReason, "cancelled") {
		t.Errorf("diagnostics = %+v", res.Diagnostics)
	}
}

// TestTruncatedMergePropagates: merging a truncated partial PSEC with a
// complete one keeps the truncation mark (the union is still partial).
func TestTruncatedMergePropagates(t *testing.T) {
	prog := compileSpin(t)
	partial, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, MaxSteps: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	merged := MergePSECs(partial.PSECs[0], partial.PSECs[0])
	if merged == nil || !merged.Truncated {
		t.Error("merge dropped the truncation mark")
	}
}

// TestWorkerPanicSurfacesAsError: a contained pipeline fault comes back
// as a Profile error with the partial result still attached.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(1, "injected fault"))
	baseline := runtime.NumGoroutine()
	prog, err := Compile("demo.mc", figure1, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, MaxSteps: 10_000_000})
	if err == nil {
		t.Fatal("contained pipeline fault did not surface as error")
	}
	if !strings.Contains(err.Error(), "profile degraded") ||
		!strings.Contains(err.Error(), "injected fault") {
		t.Errorf("err = %v", err)
	}
	if res == nil || len(res.PSECs) == 0 || res.PSECs[0] == nil {
		t.Fatal("partial result missing alongside the error")
	}
	if res.Diagnostics.WorkerPanics != 1 {
		t.Errorf("WorkerPanics = %d", res.Diagnostics.WorkerPanics)
	}
	waitGoroutineBaseline(t, baseline)
}

// TestInterpreterPanicContained: a fault on the interpreter's own
// goroutine is recovered and reported as a runtime error with a partial
// result, not a process crash.
func TestInterpreterPanicContained(t *testing.T) {
	defer faultinject.Reset()
	// The interp.step point fires on the periodic budget check
	// (every 8192 steps), squarely inside the dispatch loop.
	faultinject.Set("interp.step", faultinject.CountdownPanic(2, "injected interp fault"))
	baseline := runtime.NumGoroutine()
	prog := compileSpin(t)
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err == nil {
		t.Fatal("interpreter fault did not surface as error")
	}
	if !strings.Contains(err.Error(), "interpreter internal fault") {
		t.Errorf("err = %v", err)
	}
	if res == nil || res.Run == nil {
		t.Fatal("no partial run summary")
	}
	waitGoroutineBaseline(t, baseline)
}

// TestResourceCapsEndToEnd: caps set through ProfileOptions reach the
// runtime and the resulting downgrades reach Diagnostics.
func TestResourceCapsEndToEnd(t *testing.T) {
	prog, err := Compile("demo.mc", figure1, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{
		UseCase:  UseOpenMP,
		MaxSteps: 10_000_000,
		MaxCells: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d.PeakLiveCells > 2 {
		t.Errorf("PeakLiveCells = %d, cap 2", d.PeakLiveCells)
	}
	if !d.Degraded() {
		t.Errorf("2-cell cap produced no downgrades: %+v", d)
	}
	if d.Events == 0 {
		t.Error("diagnostics missing event volume")
	}
}

package analysis

import "carmot/internal/ir"

// ROIRegion is the static extent of an ROI within its function: the set
// of instructions executed between the ROIBegin marker and any matching
// ROIEnd (ROIs are single-entry single-exit source regions, §3.1, but
// early exits lowered from break/return introduce multiple static end
// markers).
type ROIRegion struct {
	ROI   *ir.ROI
	Begin *ir.ROIBegin
	Ends  []*ir.ROIEnd
	// Blocks maps each block that contains ROI instructions to the
	// half-open instruction index range that is inside the ROI.
	Blocks map[*ir.Block][2]int
	inROI  map[ir.Instr]bool
}

// Contains reports whether the instruction executes inside the ROI.
func (r *ROIRegion) Contains(in ir.Instr) bool { return r.inROI[in] }

// Instructions calls fn for every instruction inside the ROI, in block
// order.
func (r *ROIRegion) Instructions(fn func(ir.Instr) bool) {
	for _, b := range r.ROI.Func.Blocks {
		rng, ok := r.Blocks[b]
		if !ok {
			continue
		}
		for i := rng[0]; i < rng[1]; i++ {
			if !fn(b.Instrs[i]) {
				return
			}
		}
	}
}

// ComputeROIRegion determines the instructions belonging to roi inside
// its function by walking the CFG from the ROIBegin marker and stopping
// at ROIEnd markers of the same ROI.
func ComputeROIRegion(roi *ir.ROI) *ROIRegion {
	fn := roi.Func
	r := &ROIRegion{ROI: roi, Blocks: map[*ir.Block][2]int{}, inROI: map[ir.Instr]bool{}}

	// Locate the unique static begin marker.
	var beginBlk *ir.Block
	beginIdx := -1
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if rb, ok := in.(*ir.ROIBegin); ok && rb.ROI == roi {
				r.Begin = rb
				beginBlk = b
				beginIdx = i
			}
		}
	}
	if beginBlk == nil {
		return r
	}

	// scan marks instructions of block b starting at index from until an
	// ROIEnd for this roi or the block end; returns whether successors
	// continue the region.
	type workItem struct {
		b    *ir.Block
		from int
	}
	visited := map[*ir.Block]bool{}
	work := []workItem{{beginBlk, beginIdx + 1}}
	if beginIdx+1 <= len(beginBlk.Instrs) {
		visited[beginBlk] = true
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		end := len(it.b.Instrs)
		continues := true
		for i := it.from; i < len(it.b.Instrs); i++ {
			if re, ok := it.b.Instrs[i].(*ir.ROIEnd); ok && re.ROI == roi {
				r.Ends = append(r.Ends, re)
				end = i
				continues = false
				break
			}
		}
		for i := it.from; i < end; i++ {
			r.inROI[it.b.Instrs[i]] = true
		}
		if rng, ok := r.Blocks[it.b]; ok {
			if it.from < rng[0] {
				rng[0] = it.from
			}
			if end > rng[1] {
				rng[1] = end
			}
			r.Blocks[it.b] = rng
		} else {
			r.Blocks[it.b] = [2]int{it.from, end}
		}
		if !continues {
			continue
		}
		for _, s := range it.b.Succs {
			if !visited[s] {
				visited[s] = true
				work = append(work, workItem{s, 0})
			}
		}
	}
	return r
}

// ComputeROIRegions computes every ROI's region for a program.
func ComputeROIRegions(prog *ir.Program) map[*ir.ROI]*ROIRegion {
	out := map[*ir.ROI]*ROIRegion{}
	for _, roi := range prog.ROIs {
		out[roi] = ComputeROIRegion(roi)
	}
	return out
}

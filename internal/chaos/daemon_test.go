package chaos

import (
	"flag"
	"net/http"
	"testing"

	"carmot/internal/testutil"
	"carmot/internal/wire"
)

var daemonRuns = flag.Int("chaos.daemon-runs", 8, "number of seeded daemon schedules to execute")

// TestDaemonSchedules executes seeded daemon-level chaos runs: fleets
// of concurrent clients against a live serving layer while pipeline
// faults fire underneath, each followed by a drain. Replay a failure
// with:
//
//	go test ./internal/chaos -run TestDaemonSchedules -chaos.seed <seed> -chaos.daemon-runs 1
func TestDaemonSchedules(t *testing.T) {
	baseline := testutil.Goroutines()
	faulted, retried := 0, 0
	for i := 0; i < *daemonRuns; i++ {
		seed := *chaosSeed + 7000 + int64(i)
		s := NewDaemonSchedule(seed)
		res := ExecuteDaemon(s)
		if err := CheckDaemon(res); err != nil {
			t.Errorf("daemon schedule %d: %v", i, err)
			continue
		}
		for _, o := range res.Outcomes {
			if o.Resp.Diagnostics != nil &&
				o.Resp.Diagnostics.WorkerPanics+o.Resp.Diagnostics.PostprocessorPanics > 0 {
				faulted++
			}
			if o.Resp.Attempts > 1 {
				retried++
			}
		}
	}
	t.Logf("%d daemon schedules: %d responses crossed a fault, %d sessions were retried",
		*daemonRuns, faulted, retried)
	if faulted == 0 {
		t.Error("no daemon response crossed a fault — schedule distribution is broken")
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestDaemonScheduleDeterministic pins seed → schedule derivation.
func TestDaemonScheduleDeterministic(t *testing.T) {
	for i := int64(0); i < 20; i++ {
		a, b := NewDaemonSchedule(*chaosSeed+i), NewDaemonSchedule(*chaosSeed+i)
		if a.String() != b.String() {
			t.Fatalf("seed %d: daemon schedules differ:\n%s\n%s", *chaosSeed+i, a, b)
		}
	}
}

// TestDaemonRetryHealsFault scans daemon seeds for a run where a
// session crossed a fault and was retried to a clean, reference-equal
// answer — the end-to-end proof that retry-from-journal works through
// the whole serving stack, not just in the rt unit tests.
func TestDaemonRetryHealsFault(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	for i := 0; i < 24; i++ {
		seed := *chaosSeed + 9000 + int64(i)
		res := ExecuteDaemon(NewDaemonSchedule(seed))
		if err := CheckDaemon(res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, o := range res.Outcomes {
			if o.Status == http.StatusOK && o.Resp.ExitCode == 0 &&
				o.Resp.Kind == wire.KindOK && o.Resp.Attempts > 1 {
				// CheckDaemon already proved its PSECs match the
				// fault-free reference.
				return
			}
		}
	}
	t.Fatal("no scanned daemon seed produced a retried-then-clean session")
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"carmot/internal/wire"
)

const demoSrc = `int N = 16;
float* a;
float total = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		total = total + t;
		a[i] = t;
	}
	return total;
}
`

const spinSrc = `int main() {
	int x = 0;
	#pragma carmot roi spin
	while (1) { x = x + 1; }
	return x;
}
`

func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeDemo(t *testing.T) string { return writeSrc(t, "demo.mc", demoSrc) }

func defaultOpts() cliOptions {
	return cliOptions{use: "openmp", ompROIs: true, dumpPSEC: true, maxSteps: 100_000_000}
}

func TestCLIModes(t *testing.T) {
	path := writeDemo(t)
	cases := []struct {
		name     string
		mutate   func(*cliOptions)
		wantCode int
	}{
		{"recommend-openmp", func(o *cliOptions) {}, exitOK},
		{"recommend-task", func(o *cliOptions) { o.use = "task" }, exitOK},
		{"recommend-stats", func(o *cliOptions) { o.use = "stats" }, exitOK},
		{"smartptr-whole", func(o *cliOptions) { o.use = "smartptr"; o.whole = true }, exitOK},
		{"naive", func(o *cliOptions) { o.naive = true; o.dumpPSEC = false }, exitOK},
		{"dump-ir", func(o *cliOptions) { o.dumpIR = true }, exitOK},
		{"run", func(o *cliOptions) { o.run = true; o.dumpPSEC = false }, exitOK},
		{"annotate", func(o *cliOptions) { o.annotate = true }, exitOK},
		{"json", func(o *cliOptions) { o.asJSON = true }, exitOK},
		{"diag", func(o *cliOptions) { o.diag = true }, exitOK},
		{"budgeted-ok", func(o *cliOptions) { o.timeout = time.Minute; o.maxEvents = 1 << 40 }, exitOK},
		{"bad-use", func(o *cliOptions) { o.use = "frob" }, exitUsage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := defaultOpts()
			c.mutate(&o)
			var out bytes.Buffer
			code, err := runCLI(&out, path, o)
			if code != c.wantCode {
				t.Errorf("exit code = %d (err=%v), want %d", code, err, c.wantCode)
			}
			if (err != nil) != (c.wantCode == exitUsage) {
				t.Errorf("err = %v with code %d", err, code)
			}
		})
	}
}

func TestCLIDiagnosticsPrinted(t *testing.T) {
	path := writeDemo(t)
	o := defaultOpts()
	o.diag = true
	var out bytes.Buffer
	if code, err := runCLI(&out, path, o); code != exitOK || err != nil {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "diagnostics: {") ||
		!strings.Contains(out.String(), `"Events"`) {
		t.Errorf("diagnostics JSON missing from output:\n%s", out.String())
	}
}

// TestCLIBudgetExitCode: an infinite-loop program under -timeout exits 3
// and still prints the partial PSEC plus diagnostics.
func TestCLIBudgetExitCode(t *testing.T) {
	path := writeSrc(t, "spin.mc", spinSrc)
	o := defaultOpts()
	o.maxSteps = 0
	o.timeout = 150 * time.Millisecond
	var out bytes.Buffer
	start := time.Now()
	code, err := runCLI(&out, path, o)
	if code != exitBudget || err != nil {
		t.Fatalf("code=%d err=%v, want %d", code, err, exitBudget)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("budgeted run took %v; deadline not enforced", el)
	}
	got := out.String()
	if !strings.Contains(got, "truncated") || !strings.Contains(got, "diagnostics: {") {
		t.Errorf("partial diagnostics missing on exit 3:\n%s", got)
	}
}

// Step budgets take the same partial-output path as wall deadlines.
func TestCLIStepBudgetExitCode(t *testing.T) {
	path := writeSrc(t, "spin.mc", spinSrc)
	o := defaultOpts()
	o.maxSteps = 50_000
	var out bytes.Buffer
	code, err := runCLI(&out, path, o)
	if code != exitBudget || err != nil {
		t.Fatalf("code=%d err=%v, want %d", code, err, exitBudget)
	}
	if !strings.Contains(out.String(), "step limit") {
		t.Errorf("truncation reason missing:\n%s", out.String())
	}
}

func TestCLIMissingFile(t *testing.T) {
	var out bytes.Buffer
	if code, err := runCLI(&out, "/does/not/exist.mc", defaultOpts()); code != exitError || err == nil {
		t.Errorf("missing file: code=%d err=%v", code, err)
	}
}

func TestCLINoROI(t *testing.T) {
	path := writeSrc(t, "plain.mc", "int main() { return 0; }\n")
	var out bytes.Buffer
	if code, err := runCLI(&out, path, defaultOpts()); code != exitError || err == nil {
		t.Errorf("program without ROIs: code=%d err=%v", code, err)
	}
}

// readDiagJSON decodes a -diag-json file written by runCLI.
func readDiagJSON(t *testing.T, path string) wire.Summary {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("diag-json not written: %v", err)
	}
	var s wire.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("diag-json is not valid JSON: %v\n%s", err, data)
	}
	return s
}

// TestCLIDiagJSON verifies the -diag-json summary on every exit path:
// success (0), analysis error (1), usage error (2), and budget breach
// (3). The file must be valid JSON whose exit_code matches the process
// exit code, with diagnostics populated whenever a profile ran.
func TestCLIDiagJSON(t *testing.T) {
	demo := writeDemo(t)
	noroi := writeSrc(t, "plain.mc", "int main() { return 0; }\n")
	spin := writeSrc(t, "spin.mc", spinSrc)
	cases := []struct {
		name     string
		path     string
		mutate   func(*cliOptions)
		wantCode int
		wantDiag bool // diagnostics object non-null
	}{
		{"ok", demo, func(o *cliOptions) { o.recover = true }, exitOK, true},
		{"error-no-roi", noroi, func(o *cliOptions) {}, exitError, false},
		{"usage-bad-use", demo, func(o *cliOptions) { o.use = "frob" }, exitUsage, false},
		{"budget-timeout", spin, func(o *cliOptions) {
			o.maxSteps = 0
			o.timeout = 150 * time.Millisecond
		}, exitBudget, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := defaultOpts()
			c.mutate(&o)
			o.diagJSON = filepath.Join(t.TempDir(), "diag.json")
			var out bytes.Buffer
			code, err := runCLI(&out, c.path, o)
			if code != c.wantCode {
				t.Fatalf("exit code = %d (err=%v), want %d", code, err, c.wantCode)
			}
			s := readDiagJSON(t, o.diagJSON)
			if s.ExitCode != c.wantCode {
				t.Errorf("diag-json exit_code = %d, want %d", s.ExitCode, c.wantCode)
			}
			if s.Kind != wire.KindForExit(c.wantCode) {
				t.Errorf("diag-json kind = %q, want %q", s.Kind, wire.KindForExit(c.wantCode))
			}
			if (err != nil) != (s.Error != "") {
				t.Errorf("diag-json error %q vs runCLI err %v", s.Error, err)
			}
			if (s.Diagnostics != nil) != c.wantDiag {
				t.Errorf("diag-json diagnostics = %+v, want present=%v", s.Diagnostics, c.wantDiag)
			}
			if c.wantDiag && s.Diagnostics.Events == 0 {
				t.Error("diag-json diagnostics recorded zero events for a run that profiled")
			}
		})
	}
}

// TestCLIDiagJSONUnwritablePath: a bad -diag-json path on an otherwise
// clean run must surface as an error, not vanish.
func TestCLIDiagJSONUnwritablePath(t *testing.T) {
	o := defaultOpts()
	o.diagJSON = filepath.Join(t.TempDir(), "no", "such", "dir", "d.json")
	var out bytes.Buffer
	if code, err := runCLI(&out, writeDemo(t), o); code != exitError || err == nil {
		t.Errorf("unwritable diag-json: code=%d err=%v", code, err)
	}
}

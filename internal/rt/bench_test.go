package rt

import (
	"fmt"
	"testing"

	"carmot/internal/core"
)

// pipelineWorkload is the deterministic event schedule used by the
// throughput benchmarks: a handful of arrays accessed across several ROI
// invocations, with use sites and interned callstacks, plus a sprinkle
// of structural churn (free/realloc) — roughly the shape of an
// instrumented loop nest. The schedule is identical for every (workers,
// shards) configuration so events/sec numbers are comparable.
type pipelineWorkload struct {
	nAllocs int
	cells   uint64
	invs    int
	passes  int
}

var defaultWorkload = pipelineWorkload{nAllocs: 16, cells: 64, invs: 8, passes: 4}

// events returns the number of events one replay emits.
func (w pipelineWorkload) events() int {
	perInv := w.nAllocs * int(w.cells) * w.passes
	return w.nAllocs + w.invs*(perInv+2)
}

// replay drives one full profiling run through the pipeline.
func (w pipelineWorkload) replay(r *Runtime, cs1, cs2 core.CallstackID) {
	base := func(i int) uint64 { return 1 << 20 * uint64(i+1) }
	for i := 0; i < w.nAllocs; i++ {
		r.EmitAlloc(base(i), int64(w.cells), 0,
			&AllocMeta{Kind: core.PSEHeap, Name: fmt.Sprintf("a%d", i), Pos: "b.mc:1:1"})
	}
	for inv := 0; inv < w.invs; inv++ {
		r.BeginROI(0)
		for pass := 0; pass < w.passes; pass++ {
			for i := 0; i < w.nAllocs; i++ {
				b := base(i)
				for c := uint64(0); c < w.cells; c++ {
					cs := cs1
					if c%2 == 0 {
						cs = cs2
					}
					r.EmitAccess(b+c, (int(c)+pass+inv)%3 == 0, int32(int(c)%2), cs)
				}
			}
		}
		r.EndROI(0)
	}
}

func benchPipeline(b *testing.B, workers, shards int) {
	w := defaultWorkload
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New(Config{
			BatchSize: 4096,
			Workers:   workers,
			Shards:    shards,
			Profile:   ProfileFull,
			Sites: []SiteInfo{
				{Pos: "b.mc:5:3", Func: "f", Write: false},
				{Pos: "b.mc:6:3", Func: "f", Write: true},
			},
			ROIs: []ROIMeta{{ID: 0, Name: "bench", Kind: "carmot", Pos: "b.mc:1:1"}},
		})
		cs1 := r.Callstacks().Intern([]core.Frame{{Func: "main", Pos: "b.mc:10:1"}})
		cs2 := r.Callstacks().Intern([]core.Frame{{Func: "kern", Pos: "b.mc:20:1"}})
		w.replay(r, cs1, cs2)
		if p := r.Finish()[0]; p == nil {
			b.Fatal("nil PSEC")
		}
	}
	ev := float64(w.events()) * float64(b.N)
	b.ReportMetric(ev/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/ev, "ns/event")
}

func BenchmarkPipeline(b *testing.B) {
	for _, cfg := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		b.Run(fmt.Sprintf("w%ds%d", cfg[0], cfg[1]), func(b *testing.B) {
			benchPipeline(b, cfg[0], cfg[1])
		})
	}
}

// BenchmarkCondense isolates the worker condense stage.
func BenchmarkCondense(b *testing.B) {
	evs := make([]Event, 0, 4096)
	for i := 0; i < 4096; i++ {
		evs = append(evs, Event{
			Kind: EvAccess, Addr: uint64(100 + i%256), Write: i%3 == 0,
			Phase: 1, Seq: uint64(i), Site: int32(i % 2), CS: core.CallstackID(i % 4),
		})
	}
	c := newCondenser()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := c.condense(evs, nil, false, nil); len(items) == 0 {
			b.Fatal("no items")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*4096), "ns/event")
}

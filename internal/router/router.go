// Package router is the carmot fleet's front door: an HTTP proxy that
// consistent-hashes each profile request onto a fleet of carmotd
// replicas and survives the fleet being hostile. Routing is by
// (tenant, program identity) so a program's compiled form and cached
// PSEC result stay hot on one replica; robustness is layered on top:
//
//   - active health probing of every replica's /v1/healthz with up/down
//     hysteresis, so flapping probes do not flap routing
//   - a per-replica circuit breaker (closed → open → half-open) fed by
//     both probe failures and in-band request errors, so a dead replica
//     stops eating requests after a bounded number of failures and is
//     re-admitted through a single trial
//   - failover along the key's ring walk under a per-request attempt
//     budget with jittered exponential backoff between attempts
//   - optional hedging: a buffered request that has not answered within
//     the hedge delay races a second replica, first response wins —
//     profile requests are pure functions of their body, so duplicated
//     execution is waste, never corruption
//   - drain awareness: a replica announcing draining (via the readiness
//     body or an in-band 503) leaves the rotation without tripping its
//     breaker; its in-flight work finishes
//
// Failover is invisible in the response body — the bytes are whatever
// the winning replica produced — and visible only in the X-Carmot-Route
// header (wire.RouteInfo) and /v1/statz counters. A degraded result
// (500, retries exhausted on the replica) is failed over like a dead
// connection rather than returned: another replica gets the chance to
// produce the full-fidelity answer, and the trail says so.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"carmot/internal/wire"
)

// Config tunes the router. Zero values mean the documented defaults.
type Config struct {
	// Replicas are the carmotd base URLs ("http://host:port"), in a
	// fixed order: replica ids are derived from the position.
	Replicas []string
	// VNodes is the virtual nodes per replica on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval is the health-probe period (default 250ms; negative
	// disables the background prober — tests drive ProbeNow directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// DownAfter / UpAfter are the probe hysteresis: consecutive probe
	// failures before a replica is down, consecutive successes before a
	// down replica is up again (defaults 2 / 2).
	DownAfter int
	UpAfter   int
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's breaker (default 3); BreakerCooldown is how long it
	// stays open before a half-open trial (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxAttempts is the per-request attempt budget across failover and
	// hedging (default: number of replicas + 1, so a hedge never eats
	// the last failover).
	MaxAttempts int
	// RetryBase / RetryCap shape the jittered exponential backoff
	// between sequential failover attempts (defaults 10ms / 250ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Hedge, when positive, races a second replica for buffered
	// (non-streaming) requests that have not answered within this
	// delay. Zero disables hedging.
	Hedge time.Duration
	// AttemptTimeout bounds one buffered attempt end to end, and the
	// time to response headers on a streaming attempt (default 15s) —
	// the hung-replica detector.
	AttemptTimeout time.Duration
	// MaxBodyBytes caps the request body (default 1 MiB, matching the
	// replica's own cap).
	MaxBodyBytes int64
	// Transport overrides the upstream round tripper (tests). When nil
	// the router builds its own with ResponseHeaderTimeout set to
	// AttemptTimeout.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = len(c.Replicas) + 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 250 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Router fronts a fleet of carmotd replicas.
type Router struct {
	cfg      Config
	ring     *ring
	replicas []*replica
	client   *http.Client

	stop    chan struct{}
	probeWG sync.WaitGroup
	closed  sync.Once

	requests  atomic.Uint64
	routedOK  atomic.Uint64
	failovers atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	exhausted atomic.Uint64
	midStream atomic.Uint64 // streams that died after commit
}

// New builds a router over the given replica fleet and starts the
// health probers. Callers own the http.Server wrapping Handler and must
// Close the router on shutdown.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       30 * time.Second,
			ResponseHeaderTimeout: cfg.AttemptTimeout,
		}
	}
	rt := &Router{
		cfg:    cfg,
		ring:   newRing(len(cfg.Replicas), cfg.VNodes),
		client: &http.Client{Transport: transport},
		stop:   make(chan struct{}),
	}
	for i, base := range cfg.Replicas {
		rt.replicas = append(rt.replicas, &replica{
			id: fmt.Sprintf("replica-%d", i), base: base, healthy: true,
		})
	}
	if cfg.ProbeInterval > 0 {
		for _, rp := range rt.replicas {
			rt.probeWG.Add(1)
			go rt.probeLoop(rp)
		}
	}
	return rt, nil
}

// Close stops the health probers and tears down idle upstream
// connections. In-flight requests are unaffected.
func (rt *Router) Close() {
	rt.closed.Do(func() { close(rt.stop) })
	rt.probeWG.Wait()
	if t, ok := rt.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// Handler returns the router's HTTP mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/profile", rt.handleProfile)
	mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	mux.HandleFunc("/v1/statz", rt.handleStatz)
	return mux
}

// ---- health probing ----

func (rt *Router) probeLoop(rp *replica) {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeReplica(rp)
		}
	}
}

// ProbeNow runs one synchronous probe round over every replica — the
// deterministic alternative to waiting out ProbeInterval in tests and
// chaos schedules.
func (rt *Router) ProbeNow() {
	for _, rp := range rt.replicas {
		rt.probeReplica(rp)
	}
}

// probeReplica fetches one replica's readiness document and folds the
// outcome into both the health hysteresis and the breaker. A 503 with a
// draining body is a *successful* probe of a draining replica; any
// other failure counts against the breaker, so a replica that dies
// between requests is already open when traffic arrives.
func (rt *Router) probeReplica(rp *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	h, err := rt.fetchHealth(ctx, rp)
	rp.probeResult(h, err, rt.cfg.DownAfter, rt.cfg.UpAfter)
	now := time.Now()
	if err != nil {
		rp.done(false, false, now, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
		return
	}
	rp.probeOK(now)
}

// probeOK lets a successful probe close a breaker that has served its
// cooldown (open-and-expired, or half-open with no trial in flight). It
// never cuts an active cooldown short: a replica that answers probes
// while failing requests must still sit out the full cooldown.
func (rp *replica) probeOK(now time.Time) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	switch rp.state {
	case breakerOpen:
		if !now.Before(rp.openUntil) {
			rp.state = breakerClosed
			rp.fails = 0
		}
	case breakerHalfOpen:
		if !rp.trialOut {
			rp.state = breakerClosed
			rp.fails = 0
		}
	}
}

func (rt *Router) fetchHealth(ctx context.Context, rp *replica) (*wire.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	var h wire.Health
	if derr := json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&h); derr != nil {
		// Pre-readiness replicas serve a bare text body; fall back to
		// the status code alone.
		h = wire.Health{Status: "ok", Draining: res.StatusCode == http.StatusServiceUnavailable}
	}
	io.Copy(io.Discard, res.Body)
	if res.StatusCode == http.StatusOK {
		return &h, nil
	}
	if res.StatusCode == http.StatusServiceUnavailable && h.Draining {
		return &h, nil // draining is a successful probe, not a failure
	}
	return nil, fmt.Errorf("probe: status %d", res.StatusCode)
}

// ---- request routing ----

// routeKeyFields is the minimal body parse the router needs: program
// identity. Anything else (options, budgets) deliberately stays out of
// the key so one program's variants share a replica's program cache.
type routeKeyFields struct {
	Filename string `json:"filename"`
	Source   string `json:"source"`
}

func routeKey(tenant string, body []byte) string {
	var f routeKeyFields
	if err := json.Unmarshal(body, &f); err != nil || f.Source == "" {
		// Unparseable bodies still get a stable key; the replica will
		// reject them with a structured 400.
		return tenant + "\x00" + string(body)
	}
	return tenant + "\x00" + f.Filename + "\x00" + f.Source
}

// candidates returns the failover ladder for key: the home replica
// first (ring position — cache affinity beats load), then the remaining
// available replicas weighted by last-known readiness (lower shed
// level, then more free slots, ring order as the tiebreak). When
// nothing is available the ladder falls back to non-draining replicas,
// then to everything — a fully-open fleet still gets its half-open
// trials rather than an instant refusal.
func (rt *Router) candidates(key string) []*replica {
	order := rt.ring.order(key)
	now := time.Now()
	var avail, nonDraining, all []*replica
	for _, idx := range order {
		rp := rt.replicas[idx]
		all = append(all, rp)
		if rp.available(now) {
			avail = append(avail, rp)
		}
		rp.mu.Lock()
		draining := rp.draining
		rp.mu.Unlock()
		if !draining {
			nonDraining = append(nonDraining, rp)
		}
	}
	if len(avail) > 0 {
		if len(avail) > 2 {
			tail := avail[1:]
			sort.SliceStable(tail, func(a, b int) bool {
				da, fa := tail[a].weight()
				db, fb := tail[b].weight()
				if da != db {
					return da < db
				}
				return fa > fb
			})
		}
		return avail
	}
	if len(nonDraining) > 0 {
		return nonDraining
	}
	return all
}

func (rt *Router) handleProfile(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	if r.Method != http.MethodPost {
		rt.replySummary(w, http.StatusMethodNotAllowed, &wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: "POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.replySummary(w, http.StatusBadRequest, &wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: "reading request body: " + err.Error()})
		return
	}
	tenant := r.Header.Get("X-Carmot-Tenant")
	key := routeKey(tenant, body)
	streaming := r.URL.Query().Get("stream") == "1" || bytes.Contains(body, []byte(`"stream"`)) && wantsStream(body)

	if streaming {
		rt.routeStreaming(w, r, body, key)
		return
	}
	rt.routeBuffered(w, r, body, key)
}

// wantsStream decides whether the body itself asks for streaming (the
// query parameter is handled separately).
func wantsStream(body []byte) bool {
	var f struct {
		Stream bool `json:"stream"`
	}
	return json.Unmarshal(body, &f) == nil && f.Stream
}

// attemptOutcome is one finished replica attempt on the buffered path.
type attemptOutcome struct {
	rp     *replica
	hedged bool
	status int
	header http.Header
	body   []byte
	reason string // non-empty: failover (the relay fields are invalid)
}

// routeBuffered serves a non-streaming request: each attempt buffers
// the replica's entire response before anything reaches the client, so
// a replica dying mid-body fails over invisibly. Hedging races a
// second replica when the first is slow.
func (rt *Router) routeBuffered(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel() // reap losers once a winner is relayed

	cands := rt.candidates(key)
	budget := rt.cfg.MaxAttempts
	results := make(chan attemptOutcome, budget+1)
	next, inflight, attempts := 0, 0, 0
	var lastReason string

	launch := func(hedge bool) bool {
		now := time.Now()
		for next < len(cands) && attempts < budget {
			rp := cands[next]
			next++
			ok, trial := rp.allow(now)
			if !ok {
				continue
			}
			attempts++
			if attempts > 1 && !hedge {
				rt.failovers.Add(1)
			}
			inflight++
			go rt.attemptBuffered(ctx, rp, r, body, trial, hedge, results)
			return true
		}
		return false
	}

	if !launch(false) {
		rt.refuse(w, attempts, "no replica available")
		return
	}
	var hedgeTimer <-chan time.Time
	if rt.cfg.Hedge > 0 {
		hedgeTimer = time.After(rt.cfg.Hedge)
	}
	for inflight > 0 {
		select {
		case out := <-results:
			inflight--
			if out.reason == "" {
				rt.relayBuffered(w, &out, attempts, lastReason)
				return
			}
			lastReason = out.reason
			if inflight == 0 {
				if !rt.backoff(ctx, attempts) || !launch(false) {
					rt.refuse(w, attempts, lastReason)
					return
				}
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launch(true) {
				rt.hedges.Add(1)
			}
		case <-ctx.Done():
			// Client gone; nothing to write. Losers unwind on ctx.
			return
		}
	}
	rt.refuse(w, attempts, lastReason)
}

// backoff sleeps the jittered exponential failover delay; false means
// the client context expired first.
func (rt *Router) backoff(ctx context.Context, attempts int) bool {
	d := rt.cfg.RetryBase << (attempts - 1)
	if d > rt.cfg.RetryCap {
		d = rt.cfg.RetryCap
	}
	t := time.NewTimer(jitterDur(d))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// jitterDur spreads d uniformly across ±20%.
func jitterDur(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// attemptBuffered runs one full request against one replica and
// reports the outcome. The breaker is settled here, win or lose.
func (rt *Router) attemptBuffered(ctx context.Context, rp *replica, r *http.Request, body []byte, trial, hedged bool, results chan<- attemptOutcome) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	rp.mu.Lock()
	rp.requests++
	rp.mu.Unlock()

	out := attemptOutcome{rp: rp, hedged: hedged}
	res, err := rt.forward(actx, rp, r, body)
	if err != nil {
		out.reason = err.Error()
		rp.done(trial, false, time.Now(), rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
		results <- out
		return
	}
	defer res.Body.Close()
	payload, rerr := io.ReadAll(res.Body)
	verdict, reason := rt.classify(rp, res.StatusCode, payload, rerr)
	rp.done(trial, verdict != verdictFailure, time.Now(), rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
	if verdict != verdictRelay {
		out.reason = reason
		results <- out
		return
	}
	out.status = res.StatusCode
	out.header = res.Header
	out.body = payload
	results <- out
}

// Attempt verdicts: relay hands the response to the client; failure
// fails over and counts against the breaker; drain fails over without
// a breaker strike.
const (
	verdictRelay = iota
	verdictFailure
	verdictDrain
)

// classify sorts one upstream response into relay / failover. Sheds
// (429) and client errors relay as-is — failing a tenant's shed over to
// another replica would multiply the tenant's admission budget by the
// fleet size. Draining 503s and degraded 500s fail over: another
// replica can serve the full-fidelity answer, and the route header
// records that it had to.
func (rt *Router) classify(rp *replica, status int, payload []byte, readErr error) (int, string) {
	if readErr != nil {
		return verdictFailure, "reading upstream body: " + readErr.Error()
	}
	switch status {
	case http.StatusServiceUnavailable:
		var s wire.Summary
		if json.Unmarshal(payload, &s) == nil && s.Kind == wire.KindDraining {
			rp.markDraining()
			return verdictDrain, rp.id + " is draining"
		}
		return verdictFailure, fmt.Sprintf("%s: status 503", rp.id)
	case http.StatusInternalServerError:
		// The replica's session lost data and its retries ran out — a
		// degraded result. Never relay it while other replicas might
		// produce the clean answer; the failover is recorded, not silent.
		return verdictFailure, fmt.Sprintf("%s: degraded result (status 500)", rp.id)
	}
	return verdictRelay, ""
}

// forward issues the upstream request, preserving method, query,
// headers, and body.
func (rt *Router) forward(ctx context.Context, rp *replica, r *http.Request, body []byte) (*http.Response, error) {
	url := rp.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.ContentLength = int64(len(body))
	return rt.client.Do(req)
}

// relayBuffered writes a winning attempt to the client, trailed by the
// route header. The body bytes are exactly what the replica produced.
func (rt *Router) relayBuffered(w http.ResponseWriter, out *attemptOutcome, attempts int, lastReason string) {
	rt.routedOK.Add(1)
	if out.hedged {
		rt.hedgeWins.Add(1)
	}
	ri := wire.RouteInfo{Replica: out.rp.id, Attempts: attempts, Hedged: out.hedged}
	if attempts > 1 {
		ri.Failover = lastReason
	}
	copyHeaders(w.Header(), out.header)
	w.Header().Set(wire.RouteHeader, ri.EncodeHeader())
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// routeStreaming serves a ?stream=1 request: attempts are sequential
// (a hedge would interleave two NDJSON streams), and failover is
// possible until the winning replica's response headers are accepted —
// after the stream commits, an upstream death surfaces as a terminal
// retryable result event rather than a silent retry, because the
// client has already seen partial events.
func (rt *Router) routeStreaming(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	cands := rt.candidates(key)
	attempts := 0
	var lastReason string
	for _, rp := range cands {
		if attempts >= rt.cfg.MaxAttempts {
			break
		}
		ok, trial := rp.allow(time.Now())
		if !ok {
			continue
		}
		if attempts > 0 {
			rt.failovers.Add(1)
			if !rt.backoff(r.Context(), attempts) {
				return
			}
		}
		attempts++
		rp.mu.Lock()
		rp.requests++
		rp.mu.Unlock()
		res, err := rt.forward(r.Context(), rp, r, body)
		if err != nil {
			lastReason = err.Error()
			rp.done(trial, false, time.Now(), rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			continue
		}
		if res.StatusCode == http.StatusServiceUnavailable || res.StatusCode == http.StatusInternalServerError {
			payload, rerr := io.ReadAll(res.Body)
			res.Body.Close()
			verdict, reason := rt.classify(rp, res.StatusCode, payload, rerr)
			rp.done(trial, verdict != verdictFailure, time.Now(), rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			lastReason = reason
			continue
		}
		// Commit: headers first (the route trail must precede the body),
		// then relay with per-chunk flushes so events arrive live.
		ri := wire.RouteInfo{Replica: rp.id, Attempts: attempts}
		if attempts > 1 {
			ri.Failover = lastReason
		}
		copyHeaders(w.Header(), res.Header)
		w.Header().Set(wire.RouteHeader, ri.EncodeHeader())
		w.WriteHeader(res.StatusCode)
		fw := flushWriter{w: w}
		fw.f, _ = w.(http.Flusher)
		_, cerr := io.Copy(fw, res.Body)
		res.Body.Close()
		rp.done(trial, cerr == nil, time.Now(), rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
		if cerr != nil {
			// The replica died mid-stream. The client has partial events;
			// close the stream honestly with a retryable terminal result.
			rt.midStream.Add(1)
			sum := wire.Summary{ExitCode: 2, Kind: wire.KindInternal,
				Error:        fmt.Sprintf("%s failed mid-stream: %v; retry", rp.id, cerr),
				RetryAfterMs: jitterDur(rt.cfg.RetryBase).Milliseconds() + 1}
			if data, merr := json.Marshal(&sum); merr == nil {
				ev := wire.StreamEvent{Event: wire.EventResult, Status: http.StatusBadGateway, Result: data}
				if line, lerr := ev.EncodeLine(); lerr == nil {
					fw.Write(line)
				}
			}
			return
		}
		rt.routedOK.Add(1)
		return
	}
	rt.refuse(w, attempts, lastReason)
}

type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// refuse answers for the router itself when every attempt failed: a
// structured, retryable 502 carrying the attempt trail.
func (rt *Router) refuse(w http.ResponseWriter, attempts int, reason string) {
	rt.exhausted.Add(1)
	if reason == "" {
		reason = "no replica available"
	}
	ri := wire.RouteInfo{Attempts: attempts, Failover: reason}
	w.Header().Set(wire.RouteHeader, ri.EncodeHeader())
	rt.replySummary(w, http.StatusBadGateway, &wire.Summary{
		ExitCode: 2, Kind: wire.KindInternal,
		Error:        "no replica could serve the request: " + reason,
		RetryAfterMs: jitterDur(100 * time.Millisecond).Milliseconds()})
}

func (rt *Router) replySummary(w http.ResponseWriter, status int, s *wire.Summary) {
	data, err := s.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// ---- router health and stats ----

// handleHealthz reports the router's own readiness: 200 while at least
// one replica is routable, 503 otherwise. The body is the per-replica
// state, so one probe of the router reads the whole fleet.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := rt.Snapshot()
	status := http.StatusServiceUnavailable
	now := time.Now()
	for _, rp := range rt.replicas {
		if rp.available(now) {
			status = http.StatusOK
			break
		}
	}
	data, err := json.MarshalIndent(st.Replicas, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// Stats is the router's /v1/statz document.
type Stats struct {
	Requests        uint64         `json:"requests"`
	RoutedOK        uint64         `json:"routed_ok"`
	Failovers       uint64         `json:"failovers"`
	Hedges          uint64         `json:"hedges"`
	HedgeWins       uint64         `json:"hedge_wins"`
	Exhausted       uint64         `json:"exhausted"`
	MidStreamErrors uint64         `json:"mid_stream_errors"`
	Replicas        []ReplicaStats `json:"replicas"`
}

// Snapshot returns the router's current stats.
func (rt *Router) Snapshot() Stats {
	st := Stats{
		Requests:        rt.requests.Load(),
		RoutedOK:        rt.routedOK.Load(),
		Failovers:       rt.failovers.Load(),
		Hedges:          rt.hedges.Load(),
		HedgeWins:       rt.hedgeWins.Load(),
		Exhausted:       rt.exhausted.Load(),
		MidStreamErrors: rt.midStream.Load(),
	}
	for _, rp := range rt.replicas {
		st.Replicas = append(st.Replicas, rp.stats())
	}
	return st
}

func (rt *Router) handleStatz(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(rt.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

package rt

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"carmot/internal/testutil"
)

// TestPoolAcquireRelease: an uncontended acquire gets the full ask, the
// accounting tracks it, and Release is idempotent.
func TestPoolAcquireRelease(t *testing.T) {
	p := NewPool(8)
	g, err := p.Acquire(context.Background(), 4, 1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if g.Workers != 4 || g.Shards != 4 {
		t.Fatalf("grant = %d workers / %d shards, want 4/4", g.Workers, g.Shards)
	}
	if load := p.Load(); load != 0.5 {
		t.Errorf("load = %v, want 0.5", load)
	}
	if p.Sessions() != 1 {
		t.Errorf("sessions = %d, want 1", p.Sessions())
	}
	g.Release()
	g.Release() // idempotent
	if load := p.Load(); load != 0 {
		t.Errorf("load after release = %v, want 0", load)
	}
	if p.Sessions() != 0 {
		t.Errorf("sessions after release = %d, want 0", p.Sessions())
	}
}

// TestPoolShardCap: grants never exceed the runtime's 8-shard default
// even when the worker ask is larger.
func TestPoolShardCap(t *testing.T) {
	p := NewPool(32)
	g, err := p.Acquire(context.Background(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if g.Workers != 16 || g.Shards != 8 {
		t.Fatalf("grant = %d/%d, want 16 workers / 8 shards", g.Workers, g.Shards)
	}
}

// TestPoolPartialGrant: under contention a session takes what is free
// instead of blocking, as long as its minimum is covered.
func TestPoolPartialGrant(t *testing.T) {
	p := NewPool(8)
	hog, err := p.Acquire(context.Background(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Release()
	start := time.Now()
	g, err := p.Acquire(context.Background(), 8, 1)
	if err != nil {
		t.Fatalf("partial acquire: %v", err)
	}
	defer g.Release()
	if g.Workers != 2 {
		t.Fatalf("partial grant = %d workers, want the 2 free slots", g.Workers)
	}
	if time.Since(start) > time.Second {
		t.Error("partial acquire blocked despite free capacity")
	}
}

// TestPoolBlocksUntilRelease: when not even the minimum is free, Acquire
// waits for a release rather than failing.
func TestPoolBlocksUntilRelease(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	p := NewPool(2)
	hog, err := p.Acquire(context.Background(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(released)
		hog.Release()
	}()
	g, err := p.Acquire(context.Background(), 1, 1)
	if err != nil {
		t.Fatalf("blocked acquire: %v", err)
	}
	select {
	case <-released:
	default:
		t.Error("acquire returned before the hog released")
	}
	g.Release()
}

// TestPoolAcquireCancelled: a blocked acquire must honor its context and
// return every slot it had provisionally taken.
func TestPoolAcquireCancelled(t *testing.T) {
	p := NewPool(4)
	hog, err := p.Acquire(context.Background(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// min=2 can't be met (1 free): takes the free slot, then blocks.
	if _, err := p.Acquire(ctx, 2, 2); err == nil {
		t.Fatal("acquire succeeded past its deadline")
	}
	if load := p.Load(); load != 0.75 {
		t.Errorf("load after cancelled acquire = %v, want 0.75 (provisional slot returned)", load)
	}
	if p.Sessions() != 1 {
		t.Errorf("sessions = %d, want 1", p.Sessions())
	}
}

// TestPoolConcurrentStress hammers the pool from many goroutines and
// checks conservation: every slot comes back and no session leaks.
func TestPoolConcurrentStress(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	p := NewPool(6)
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 25; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3))*time.Millisecond)
				g, err := p.Acquire(ctx, 1+rng.Intn(8), 1+rng.Intn(2))
				if err == nil {
					if g.Workers < 1 || g.Workers > p.Total() {
						t.Errorf("grant of %d workers out of range", g.Workers)
					}
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					g.Release()
				}
				cancel()
			}
		}(int64(i))
	}
	wg.Wait()
	if load := p.Load(); load != 0 {
		t.Errorf("load after stress = %v, want 0 (slots leaked)", load)
	}
	if p.Sessions() != 0 {
		t.Errorf("sessions after stress = %d, want 0", p.Sessions())
	}
}

package carmot_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§5). Each benchmark regenerates its experiment
// at a reduced input scale and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` reproduces the evaluation:
//
//	BenchmarkTable1            – the abstraction→PSEC-components table
//	BenchmarkSec23Accesses     – §2.3 access amplification (×, geomean)
//	BenchmarkFig6Speedups      – Figure 6 speedups (original vs CARMOT)
//	BenchmarkFig7OpenMPOverhead– Figure 7 overheads (naive vs CARMOT)
//	BenchmarkFig8Breakdown     – Figure 8 per-optimization attribution
//	BenchmarkFig9NabCycle      – Figure 9 cycle + leak reduction
//	BenchmarkFig10SmartPtr     – Figure 10 overheads
//	BenchmarkFig11STATS        – Figure 11 overheads
//
// Plus microbenchmarks of the substrates (front end, interpreter,
// profiling runtime event path).

import (
	"math"
	"testing"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/core"
	"carmot/internal/harness"
)

var benchCfg = harness.Config{Threads: 24, ScaleDiv: 8}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkSec23Accesses(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		var err error
		_, geo, err = harness.Accesses(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geo, "x-amplification")
}

func BenchmarkFig6Speedups(b *testing.B) {
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomean(rows, func(r harness.Fig6Row) float64 { return r.Original }), "x-original")
	b.ReportMetric(geomean(rows, func(r harness.Fig6Row) float64 { return r.Carmot }), "x-carmot")
}

func geomean[T any](rows []T, f func(T) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rows {
		s += math.Log(f(r))
	}
	return math.Exp(s / float64(len(rows)))
}

func overheadBench(b *testing.B, run func(harness.Config) ([]harness.OverheadRow, error)) {
	var rows []harness.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(geomean(rows, func(r harness.OverheadRow) float64 { return r.Naive }), "x-naive")
	b.ReportMetric(geomean(rows, func(r harness.OverheadRow) float64 { return r.Carmot }), "x-carmot")
}

func BenchmarkFig7OpenMPOverhead(b *testing.B) { overheadBench(b, harness.Fig7) }

func BenchmarkFig10SmartPtrOverhead(b *testing.B) { overheadBench(b, harness.Fig10) }

func BenchmarkFig11STATSOverhead(b *testing.B) { overheadBench(b, harness.Fig11) }

func BenchmarkFig8Breakdown(b *testing.B) {
	var rows []harness.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var red float64
	for _, r := range rows {
		red += r.Redundant
	}
	b.ReportMetric(red/float64(len(rows)), "pct-redundant")
}

func BenchmarkFig9NabCycle(b *testing.B) {
	var res *harness.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = harness.Fig9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ReductionPct, "pct-leak-reduction")
}

// ---- substrate microbenchmarks ----

// BenchmarkCompile measures the front end + lowering + planning on the
// largest benchmark source.
func BenchmarkCompile(b *testing.B) {
	bm, err := bench.ByName("nab")
	if err != nil {
		b.Fatal(err)
	}
	src := bm.Source(bm.DevScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := carmot.Compile("nab.mc", src, carmot.CompileOptions{ProfileOmpRegions: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpret measures raw interpreter throughput.
func BenchmarkInterpret(b *testing.B) {
	bm, err := bench.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := carmot.Compile("cg.mc", bm.Source(500), carmot.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := prog.Execute(nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

// BenchmarkProfiledRun measures the instrumented execution path,
// including the batched runtime pipeline.
func BenchmarkProfiledRun(b *testing.B) {
	bm, err := bench.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	src := bm.Source(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiledRunRecover is BenchmarkProfiledRun with the
// self-healing layer on: the delta against the plain benchmark is the
// fault-free cost of the replay journal (batch retention + refcounting
// + per-shard op logs + epoch acks).
func BenchmarkProfiledRunRecover(b *testing.B) {
	bm, err := bench.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	src := bm.Source(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP, Recover: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFSATransition measures the Figure 3 automaton's hot path.
func BenchmarkFSATransition(b *testing.B) {
	s := core.StateNone
	for i := 0; i < b.N; i++ {
		s = s.Next(i%3 == 0, i%2 == 0)
	}
	if s > 8 {
		b.Fatal("impossible")
	}
}

package wire

import (
	"encoding/json"
	"reflect"
	"testing"

	"carmot/internal/rt"
)

// TestSummaryRoundTrip pins the schema both entry points share: a fully
// populated summary must survive Encode → Unmarshal unchanged, including
// the nested runtime diagnostics.
func TestSummaryRoundTrip(t *testing.T) {
	in := Summary{
		ExitCode:     3,
		Kind:         KindBudget,
		Error:        "deadline exceeded",
		RetryAfterMs: 250,
		Attempts:     2,
		Diagnostics: &rt.Diagnostics{
			Events:        12345,
			DroppedEvents: 7,
			Batches:       11,
			PeakLiveCells: 999,
			Callstacks:    3,
			Downgrades:    []rt.Downgrade{{Reason: "max cells"}},
			Recoveries:    []rt.Recovery{{Stage: "shard", ID: 2, Outcome: rt.RecoveryReplayed, Reason: "fault", Ops: 40}},
			WorkerPanics:  1,
			Errors:        []string{"contained: fault"},
			Truncated:     true,
		},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("encoded summary must end in a newline")
	}
	var out Summary
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the summary\nin:  %+v\nout: %+v", in, out)
	}
}

// TestSummaryWireNames pins the JSON field names — they are the contract
// between carmot/carmotd and external supervisors, so renames must be
// deliberate.
func TestSummaryWireNames(t *testing.T) {
	s := Summary{ExitCode: 1, Kind: KindError, Error: "x", RetryAfterMs: 5, Attempts: 1}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"exit_code", "kind", "error", "retry_after_ms", "attempts", "diagnostics"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled summary is missing %q: %s", key, data)
		}
	}
	if len(m) != 6 {
		t.Errorf("marshalled summary has unexpected fields: %s", data)
	}
}

// TestKindForExit covers the CLI exit-code mapping.
func TestKindForExit(t *testing.T) {
	want := map[int]string{0: KindOK, 1: KindError, 2: KindUsage, 3: KindBudget, 7: KindError}
	for code, kind := range want {
		if got := KindForExit(code); got != kind {
			t.Errorf("KindForExit(%d) = %q, want %q", code, got, kind)
		}
	}
}

package bench

import "fmt"

// btBench is the NAS BT analog: block-tridiagonal row solves with
// privatizable scalar temporaries and write-once output rows.
func btBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
float* lhs;
float* rhs;
float* u;

void init() {
	lhs = malloc(N * 8);
	rhs = malloc(N);
	u = malloc(N);
	rand_seed(42);
	for (int j = 0; j < N * 8; j++) {
		lhs[j] = rand_float() + 0.5;
	}
	for (int j = 0; j < N; j++) {
		rhs[j] = rand_float();
	}
}

void solve() {
	float t1;
	float t2;
	#pragma omp parallel for private(t1, t2)
	for (int i = 0; i < N; i++) {
		t1 = rhs[i];
		t2 = 0.0;
		for (int rep = 0; rep < 6; rep++) {
			for (int k = 0; k < 8; k++) {
				t2 = t2 + lhs[i * 8 + k] * t1;
				t1 = t1 * 0.99 + 0.01;
			}
		}
		u[i] = t2 / (lhs[i * 8] + 1.0);
	}
}

int main() {
	init();
	solve();
	float acc = 0.0;
	for (int i = 0; i < N; i++) {
		acc = acc + u[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "bt", Suite: SuiteNAS, Source: src,
		DevScale: 2000, ProdScale: 60000,
		Notes: "private scalar temporaries, disjoint row writes",
	}
}

// cgBench is the NAS CG analog: banded mat-vec with private row sums and
// a dot-product reduction.
func cgBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
float* a;
float* x;
float* y;

void init() {
	a = malloc(N * 16);
	x = malloc(N);
	y = malloc(N);
	rand_seed(7);
	for (int j = 0; j < N * 16; j++) {
		a[j] = rand_float();
	}
	for (int j = 0; j < N; j++) {
		x[j] = rand_float() - 0.5;
	}
}

void matvec() {
	float sum;
	#pragma omp parallel for private(sum)
	for (int i = 0; i < N; i++) {
		sum = 0.0;
		for (int rep = 0; rep < 4; rep++) {
			for (int k = 0; k < 16; k++) {
				sum = sum + a[i * 16 + k] * x[(i + k) %% N];
			}
		}
		y[i] = sum / 4.0;
	}
}

float dot() {
	float d = 0.0;
	#pragma omp parallel for reduction(+: d)
	for (int i = 0; i < N; i++) {
		d = d + x[i] * y[i];
	}
	return d;
}

int main() {
	init();
	matvec();
	float d = dot();
	return d * 100.0;
}
`, scale)
	}
	return Benchmark{
		Name: "cg", Suite: SuiteNAS, Source: src,
		DevScale: 2000, ProdScale: 50000,
		Notes: "reduction(+:d) recognized from load-add-store pattern",
	}
}

// epBench is the NAS EP analog. Its original parallelism is SPMD-style:
// parallel sections with a barrier and a master combine — abstractions
// CARMOT does not generate (§5.1). The per-worker loop carries the PRNG
// state across iterations (a non-reducible Transfer), so CARMOT cannot
// recover the main parallelism; the Figure 6 ep bar stays low.
func epBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
int N = %d;
float p0;
float p1;
float p2;
float p3;
float total;

float worker(int seed, int n) {
	int s = seed;
	float sum = 0.0;
	float x = 0.0;
	float y = 0.0;
	float t = 0.0;
	#pragma carmot roi epkernel
	for (int i = 0; i < n; i++) {
		s = (s * 1103515 + 12345) %% 2147483647;
		x = s;
		x = x / 2147483647.0;
		s = (s * 1103515 + 12345) %% 2147483647;
		y = s;
		y = y / 2147483647.0;
		t = x * x + y * y;
		if (t <= 1.0) {
			sum = sum + t;
		}
	}
	return sum;
}

int main() {
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			p0 = worker(1, N);
			#pragma omp barrier
			#pragma omp master
			{
				total = p0 + p1 + p2 + p3;
			}
		}
		#pragma omp section
		{
			p1 = worker(2, N);
			#pragma omp barrier
		}
		#pragma omp section
		{
			p2 = worker(3, N);
			#pragma omp barrier
		}
		#pragma omp section
		{
			p3 = worker(4, N);
			#pragma omp barrier
		}
	}
	return total;
}
`, scale)
	}
	return Benchmark{
		Name: "ep", Suite: SuiteNAS, Source: src,
		DevScale: 4000, ProdScale: 150000,
		SectionsOnly: true,
		Notes:        "sequential PRNG chain defeats loop parallelization; sections+barrier+master unsupported",
	}
}

// ftBench is the NAS FT analog: a direct short-window transform, a pure
// gather (inputs Input, outputs Output, scratch private).
func ftBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float sin(float x);
extern float cos(float x);

int N = %d;
float* re;
float* im;
float* outRe;
float* outIm;
float* wRe;
float* wIm;

void init() {
	re = malloc(N);
	im = malloc(N);
	outRe = malloc(N);
	outIm = malloc(N);
	wRe = malloc(32);
	wIm = malloc(32);
	rand_seed(11);
	for (int j = 0; j < N; j++) {
		re[j] = rand_float() - 0.5;
		im[j] = rand_float() - 0.5;
	}
	for (int k = 0; k < 32; k++) {
		wRe[k] = cos(0.19634954 * k);
		wIm[k] = sin(0.19634954 * k);
	}
}

void transform() {
	float sr;
	float si;
	#pragma omp parallel for private(sr, si)
	for (int i = 0; i < N; i++) {
		sr = 0.0;
		si = 0.0;
		for (int k = 0; k < 32; k++) {
			int idx = (i + k) %% N;
			sr = sr + re[idx] * wRe[k] - im[idx] * wIm[k];
			si = si + re[idx] * wIm[k] + im[idx] * wRe[k];
		}
		outRe[i] = sr;
		outIm[i] = si;
	}
}

int main() {
	init();
	transform();
	float acc = 0.0;
	for (int i = 0; i < N; i++) {
		acc = acc + outRe[i] * outRe[i] + outIm[i] * outIm[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "ft", Suite: SuiteNAS, Source: src,
		DevScale: 600, ProdScale: 20000,
		Notes: "pure gather transform; inputs shared, outputs disjoint",
	}
}

// isBench is the NAS IS analog: histogram ranking. The bucket counters
// are Transfer PSEs whose updates match the + reduction pattern, so
// CARMOT recommends an array reduction rather than a critical section.
func isBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern int rand_int(int bound);

int N = %d;
int NB = 512;
int* key;
int* cnt;
int* rank_;

void init() {
	key = malloc(N);
	cnt = malloc(NB);
	rank_ = malloc(N);
	rand_seed(3);
	for (int j = 0; j < N; j++) {
		key[j] = rand_int(512);
	}
}

void count() {
	int k;
	#pragma omp parallel for private(k) reduction(+: cnt)
	for (int i = 0; i < N; i++) {
		k = key[i];
		cnt[k] = cnt[k] + 1;
	}
}

void prefix() {
	int run = 0;
	int c;
	#pragma carmot roi prefix
	for (int b = 0; b < NB; b++) {
		c = cnt[b];
		cnt[b] = run;
		run = run + c;
	}
}

void rankKeys() {
	#pragma omp parallel for
	for (int i = 0; i < N; i++) {
		rank_[i] = cnt[key[i]] + i %% 3;
	}
}

int main() {
	init();
	count();
	prefix();
	rankKeys();
	int acc = 0;
	for (int i = 0; i < N; i = i + 97) {
		acc = acc + rank_[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "is", Suite: SuiteNAS, Source: src,
		DevScale: 20000, ProdScale: 800000,
		Notes: "array reduction on bucket counters; sequential prefix scan correctly left serial",
	}
}

// luBench is the NAS LU analog: a Jacobi-style SSOR sweep (read old,
// write new) plus an L2-norm reduction.
func luBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float fabs(float x);

int N = %d;
float* uo;
float* un;

void init() {
	uo = malloc(N + 2);
	un = malloc(N + 2);
	rand_seed(17);
	for (int j = 0; j < N + 2; j++) {
		uo[j] = rand_float();
	}
}

void sweep() {
	float c;
	#pragma omp parallel for private(c)
	for (int i = 1; i <= N; i++) {
		c = 0.25 * uo[i - 1] + 0.5 * uo[i] + 0.25 * uo[i + 1];
		for (int r = 0; r < 40; r++) {
			c = c * 0.98 + uo[i] * 0.02;
		}
		un[i] = c;
	}
}

float norm() {
	float s = 0.0;
	#pragma omp parallel for reduction(+: s)
	for (int i = 1; i <= N; i++) {
		s = s + fabs(un[i] - uo[i]);
	}
	return s;
}

int main() {
	init();
	sweep();
	float r = norm();
	return r * 10.0;
}
`, scale)
	}
	return Benchmark{
		Name: "lu", Suite: SuiteNAS, Source: src,
		DevScale: 4000, ProdScale: 150000,
		Notes: "stencil sweep with neighbor reads; inclusive loop bounds exercise <=",
	}
}

// mgBench is the NAS MG analog: grid smoothing loops plus the extra task
// parallelism the paper adds to mg (§5.1), expressed as omp tasks with
// depend clauses forming a small DAG.
func mgBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
float* fine;
float* coarse;
float q0;
float q1;
float q2;
float q3;
float r0;

void init() {
	fine = malloc(N);
	coarse = malloc(N / 2 + 1);
	rand_seed(23);
	for (int j = 0; j < N; j++) {
		fine[j] = rand_float();
	}
}

void smooth() {
	float v;
	#pragma omp parallel for private(v)
	for (int i = 1; i < N - 1; i++) {
		v = 0.3 * fine[i - 1] + 0.4 * fine[i] + 0.3 * fine[i + 1];
		for (int r = 0; r < 24; r++) {
			v = v * 0.97 + 0.01;
		}
		coarse[i / 2] = v;
	}
}

float chunkSum(int lo, int hi) {
	float s = 0.0;
	for (int i = lo; i < hi; i++) {
		s = s + fine[i] * fine[i];
		fine[i] = fine[i] * 0.999;
	}
	return s;
}

int main() {
	init();
	smooth();
	int q = N / 4;
	#pragma omp task depend(out: q0)
	{
		q0 = chunkSum(0, q);
	}
	#pragma omp task depend(out: q1)
	{
		q1 = chunkSum(q, 2 * q);
	}
	#pragma omp task depend(out: q2)
	{
		q2 = chunkSum(2 * q, 3 * q);
	}
	#pragma omp task depend(out: q3)
	{
		q3 = chunkSum(3 * q, N);
	}
	#pragma omp task depend(in: q0, q1, q2, q3) depend(out: r0)
	{
		r0 = q0 + q1 + q2 + q3;
	}
	#pragma omp taskwait
	return r0;
}
`, scale)
	}
	return Benchmark{
		Name: "mg", Suite: SuiteNAS, Source: src,
		DevScale: 4000, ProdScale: 200000,
		Notes: "smoothing loop + added omp task DAG (the §5.1 mg extension)",
	}
}

// spBench is the NAS SP analog: row updates plus a non-commutative
// running normalization that needs an ordered section.
func spBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float fabs(float x);

int N = %d;
float* v;
float* w;
float norm = 1.0;

void init() {
	v = malloc(N);
	w = malloc(N);
	rand_seed(31);
	for (int j = 0; j < N; j++) {
		v[j] = rand_float() + 0.1;
	}
}

void relax() {
	float t;
	#pragma omp parallel for private(t) ordered
	for (int i = 0; i < N; i++) {
		t = v[i];
		for (int r = 0; r < 48; r++) {
			t = t * 0.96 + 0.02;
		}
		w[i] = t;
		#pragma omp ordered
		{
			norm = (norm + fabs(t)) / 2.0;
		}
	}
}

int main() {
	init();
	relax();
	float acc = norm * 1000.0;
	for (int i = 0; i < N; i = i + 31) {
		acc = acc + w[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "sp", Suite: SuiteNAS, Source: src,
		DevScale: 3000, ProdScale: 120000,
		Notes: "non-commutative running average forces an ordered section",
	}
}

package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs entry → (then | else) → exit.
func buildDiamond() *Func {
	f := &Func{Name: "diamond", Ret: ClassInt}
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	exit := f.NewBlock("exit")

	cond := &Bin{Op: OpLt, L: ConstInt(1), R: ConstInt(2)}
	entry.Append(cond)
	entry.Append(&CondBr{Cond: cond, True: thenB, False: elseB})
	thenB.Append(&Br{Target: exit})
	elseB.Append(&Br{Target: exit})
	exit.Append(&Ret{Val: ConstInt(0)})
	ComputeCFG(f)
	return f
}

func TestComputeCFG(t *testing.T) {
	f := buildDiamond()
	entry, thenB, elseB, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if len(entry.Succs) != 2 || len(exit.Preds) != 2 {
		t.Errorf("diamond CFG wrong: succs=%d preds=%d", len(entry.Succs), len(exit.Preds))
	}
	if len(thenB.Preds) != 1 || thenB.Preds[0] != entry {
		t.Error("then pred wrong")
	}
	if len(elseB.Succs) != 1 || elseB.Succs[0] != exit {
		t.Error("else succ wrong")
	}
	// Recomputing is idempotent.
	ComputeCFG(f)
	if len(exit.Preds) != 2 {
		t.Error("recompute duplicated edges")
	}
}

func TestVerifyCatchesBrokenBlocks(t *testing.T) {
	f := &Func{Name: "bad"}
	if err := Verify(f); err == nil {
		t.Error("empty function must not verify")
	}
	b := f.NewBlock("entry")
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty block: %v", err)
	}
	b.Append(&Bin{Op: OpAdd, L: ConstInt(1), R: ConstInt(2)})
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("unterminated block: %v", err)
	}
	b.Append(&Ret{})
	if err := Verify(f); err != nil {
		t.Errorf("valid function rejected: %v", err)
	}
	// Terminator mid-block.
	b.Instrs = append([]Instr{&Ret{}}, b.Instrs...)
	if err := Verify(f); err == nil {
		t.Error("terminator before end must not verify")
	}
}

func TestInsertAndRemove(t *testing.T) {
	f := &Func{Name: "f"}
	b := f.NewBlock("entry")
	add := &Bin{Op: OpAdd, L: ConstInt(1), R: ConstInt(2)}
	b.Append(add)
	b.Append(&Ret{Val: add})
	mul := &Bin{Op: OpMul, L: ConstInt(3), R: ConstInt(4)}
	b.InsertAt(mul, 1)
	if b.Instrs[1] != Instr(mul) {
		t.Error("InsertAt position wrong")
	}
	if Base(mul).Temp == Base(add).Temp {
		t.Error("temps must be distinct")
	}
	b.RemoveAt(1)
	if len(b.Instrs) != 2 || b.Instrs[1].Mnemonic() != "ret" {
		t.Error("RemoveAt broke the block")
	}
}

func TestValueClasses(t *testing.T) {
	if ConstInt(3).Class() != ClassInt || ConstFloat(1.5).Class() != ClassFloat {
		t.Error("const classes")
	}
	if (&Bin{Op: OpLt, Float: true}).Class() != ClassInt {
		t.Error("comparisons are int even on floats")
	}
	if (&Bin{Op: OpAdd, Float: true}).Class() != ClassFloat {
		t.Error("float add is float")
	}
	if (&GEP{}).Class() != ClassPtr || (&Malloc{}).Class() != ClassPtr {
		t.Error("address producers are pointers")
	}
	if (&Convert{ToFloat: true}).Class() != ClassFloat || (&Convert{}).Class() != ClassInt {
		t.Error("convert classes")
	}
}

func TestCommutativity(t *testing.T) {
	if !OpAdd.IsCommutative() || !OpMul.IsCommutative() {
		t.Error("+ and * commute")
	}
	for _, op := range []BinOp{OpSub, OpDiv, OpRem, OpLt} {
		if op.IsCommutative() {
			t.Errorf("%s must not be commutative", op)
		}
	}
}

func TestFormatInstr(t *testing.T) {
	f := &Func{Name: "f"}
	b := f.NewBlock("entry")
	a := &Alloca{Cells: 4}
	b.Append(a)
	ld := &Load{Addr: a, Cls: ClassInt}
	ld.Track = TrackOn
	b.Append(ld)
	b.Append(&Ret{Val: ld})
	text := f.String()
	for _, want := range []string{"alloca", "load", "[track=on]", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestDirectTarget(t *testing.T) {
	callee := &Func{Name: "g"}
	direct := &Call{Callee: &FuncRef{Func: callee}}
	if direct.DirectTarget() == nil || direct.DirectTarget().Func != callee {
		t.Error("direct target lost")
	}
	indirect := &Call{Callee: &Param{Index: 0, Cls: ClassFn, Sym: nil}}
	_ = indirect
}

package carmot

import (
	"strings"
	"testing"

	"carmot/internal/core"
)

// TestFigure2PerCellClassification reproduces the paper's Figure 2: the
// loop reads a[i] and writes a[j] with j = {1, 0, 0, 2, 3, ..., N-2}.
// Dependence-graph/memory-footprint tools must conservatively serialize
// the whole loop; PSEC sees that only a[1] carries the cross-invocation
// RAW (Transfer), a[0] is overwritten without reads (Cloneable), and the
// rest is WAR-only (Input+Output), removable by cloning.
func TestFigure2PerCellClassification(t *testing.T) {
	const src = `
int N = 8;
int* a;

void init() {
	a = malloc(N);
	for (int k = 0; k < N; k++) { a[k] = k * 10; }
}

int main() {
	init();
	int v = 0;
	for (int i = 0; i < N; i++) {
		#pragma carmot roi fig2
		{
			int j;
			if (i == 0) {
				j = 1;
			} else {
				if (i <= 2) {
					j = 0;
				} else {
					j = i - 1;
				}
			}
			v = a[i];
			a[j] = v + 1;
		}
	}
	return v;
}
`
	for _, naive := range []bool{false, true} {
		prog, err := Compile("fig2.mc", src, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		var arr *core.Element
		for _, e := range res.PSECs[0].Elements {
			if e.PSE.Kind == core.PSEHeap && e.PSE.Name == "a" {
				arr = e
			}
		}
		if arr == nil {
			t.Fatal("array a missing from PSEC")
		}
		cellSets := make([]core.SetMask, 8)
		for _, r := range arr.Ranges {
			for i := r.Lo; i < r.Hi && i < 8; i++ {
				cellSets[i] = r.Sets
			}
		}
		if cellSets[0] != core.SetCloneable|core.SetInput|core.SetOutput {
			t.Errorf("a[0] = %s, want Cloneable+Input+Output", cellSets[0])
		}
		// a[1] is written in invocation 0 and read in invocation 1: the
		// only cross-invocation RAW (and not Input — its first-ever
		// access was the write).
		if cellSets[1] != core.SetTransfer|core.SetOutput {
			t.Errorf("a[1] = %s, want Transfer+Output (the only RAW cell)", cellSets[1])
		}
		for i := 2; i < 7; i++ {
			if cellSets[i] != core.SetInput|core.SetOutput {
				t.Errorf("a[%d] = %s, want Input+Output", i, cellSets[i])
			}
		}
		if cellSets[7] != core.SetInput {
			t.Errorf("a[7] = %s, want Input (read only)", cellSets[7])
		}
		// Exactly one Transfer cell — the recommendation shrinks the
		// critical section to it.
		rec := RecommendParallelFor(res.PSECs[0], prog.ROIs()[0])
		if len(rec.Criticals) != 1 {
			t.Fatalf("criticals = %+v", rec.Criticals)
		}
		transferCells := 0
		for _, r := range rec.Criticals[0].Ranges {
			transferCells += r.Hi - r.Lo
		}
		if transferCells != 1 {
			t.Errorf("critical covers %d cells, want exactly a[1]", transferCells)
		}
	}
}

// TestMergeAcrossRuns exercises §4.2: PSECs from different inputs merge by
// set union with the Cloneable/Transfer exception.
func TestMergeAcrossRuns(t *testing.T) {
	const tpl = `
int mode = MODE;
int* a;
int main() {
	a = malloc(4);
	a[0] = 1;
	for (int i = 0; i < 4; i++) {
		#pragma carmot roi r
		{
			if (mode == 1) {
				a[0] = a[0] + i;
			} else {
				a[0] = i;
			}
		}
	}
	return a[0];
}
`
	profileWith := func(mode string) *core.PSEC {
		prog, err := Compile("m.mc", strings.Replace(tpl, "MODE", mode, 1), CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
		if err != nil {
			t.Fatal(err)
		}
		return res.PSECs[0]
	}
	heapElem := func(p *core.PSEC) *core.Element {
		for _, e := range p.Elements {
			if e.PSE.Kind == core.PSEHeap && e.PSE.Name == "a" {
				return e
			}
		}
		return nil
	}
	// mode 1: a[0] read then written every invocation → Transfer.
	// mode 0: a[0] overwritten every invocation → Cloneable.
	transferRun := profileWith("1")
	cloneRun := profileWith("0")
	et := heapElem(transferRun)
	ec := heapElem(cloneRun)
	if et == nil || !et.Sets.Has(core.SetTransfer) {
		t.Fatalf("mode-1 run: a = %v, want Transfer", et)
	}
	if ec == nil || !ec.Sets.Has(core.SetCloneable) {
		t.Fatalf("mode-0 run: a = %v, want Cloneable", ec)
	}
	merged := MergePSECs(transferRun, cloneRun)
	em := heapElem(merged)
	if em == nil {
		t.Fatal("merged element missing")
	}
	if !em.Sets.Has(core.SetTransfer) || em.Sets.Has(core.SetCloneable) {
		t.Errorf("merged a = %s; C∪T must resolve to Transfer", em.Sets)
	}
	if merged.Stats.Invocations != transferRun.Stats.Invocations+cloneRun.Stats.Invocations {
		t.Error("merged stats should accumulate")
	}
}

// TestUseCallstackDisambiguation: the same ROI statement invoked from two
// different callers must report both call stacks (§3.1's use-callstacks).
func TestUseCallstackDisambiguation(t *testing.T) {
	const src = `
int total = 0;
void bump(int k) {
	#pragma carmot roi bumploop
	for (int i = 0; i < 3; i++) {
		total = total + k;
	}
}
void alpha() { bump(1); }
void beta() { bump(2); }
int main() {
	alpha();
	beta();
	return total;
}
`
	prog, err := Compile("cs.mc", src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	psec := res.PSECs[0]
	e := psec.ElementByName("total")
	if e == nil {
		t.Fatal("total missing")
	}
	if len(e.UseSites) == 0 {
		t.Fatal("no use sites recorded")
	}
	stacks := map[string]bool{}
	for _, u := range e.UseSites {
		for _, cs := range u.Callstacks {
			stacks[psec.Callstacks.Format(cs)] = true
		}
	}
	var viaAlpha, viaBeta bool
	for s := range stacks {
		if strings.Contains(s, "alpha") {
			viaAlpha = true
		}
		if strings.Contains(s, "beta") {
			viaBeta = true
		}
	}
	if !viaAlpha || !viaBeta {
		t.Errorf("use-callstacks must distinguish the two callers; got %v", stacks)
	}
}

// TestAllocationCallstackContext: the same allocation site (a custom
// allocator) reached from different call paths yields distinct PSEs
// (§3.1: "custom allocators are widely used...").
func TestAllocationCallstackContext(t *testing.T) {
	const src = `
int* myalloc(int n) {
	int* p = malloc(n);
	return p;
}
int useA() {
	int* a = myalloc(2);
	a[0] = 1;
	return a[0];
}
int useB() {
	int* b = myalloc(2);
	b[0] = 2;
	return b[0];
}
int main() {
	int r = 0;
	#pragma carmot roi whole
	{
		r = useA() + useB();
	}
	return r;
}
`
	prog, err := Compile("alloc.mc", src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseFull})
	if err != nil {
		t.Fatal(err)
	}
	psec := res.PSECs[0]
	heapElems := map[core.CallstackID]bool{}
	for _, e := range psec.Elements {
		if e.PSE.Kind == core.PSEHeap {
			heapElems[e.PSE.AllocStack] = true
		}
	}
	if len(heapElems) != 2 {
		t.Errorf("want 2 heap PSEs distinguished by call stack, got %d", len(heapElems))
	}
}

// TestPinPathClassification: memory touched only by precompiled code
// still classifies correctly (the §4.5 completeness requirement).
func TestPinPathClassification(t *testing.T) {
	const src = `
extern int memcpy_cells(int* dst, int* src, int n);
int* src_;
int* dst_;
int N = 8;
void init() {
	src_ = malloc(N);
	dst_ = malloc(N);
	for (int i = 0; i < N; i++) { src_[i] = i; }
}
int main() {
	init();
	for (int it = 0; it < 2; it++) {
		#pragma carmot roi copy
		{
			memcpy_cells(dst_, src_, N);
		}
	}
	return dst_[3];
}
`
	for _, naive := range []bool{false, true} {
		prog, err := Compile("pin.mc", src, CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		psec := res.PSECs[0]
		s := psec.ElementByName("src_")
		var srcHeap, dstHeap *core.Element
		for _, e := range psec.Elements {
			if e.PSE.Kind == core.PSEHeap {
				switch e.PSE.Name {
				case "src_":
					srcHeap = e
				case "dst_":
					dstHeap = e
				}
			}
		}
		_ = s
		if srcHeap == nil || srcHeap.Sets != core.SetInput {
			t.Errorf("naive=%v: src_ = %v, want Input", naive, srcHeap)
		}
		// Written by both ROI invocations, never read in the ROI.
		if dstHeap == nil || dstHeap.Sets != core.SetCloneable|core.SetOutput {
			t.Errorf("naive=%v: dst_ = %v, want Cloneable+Output", naive, dstHeap)
		}
	}
}

// TestTaskRecommendationE2E: §3.2's depend(in/out) mapping from the Sets.
func TestTaskRecommendationE2E(t *testing.T) {
	const src = `
int* in_;
int* out_;
int scale = 3;
int main() {
	in_ = malloc(4);
	out_ = malloc(4);
	in_[0] = 5;
	#pragma carmot roi task
	{
		out_[0] = in_[0] * scale;
	}
	return out_[0];
}
`
	prog, err := Compile("task.mc", src, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseTask})
	if err != nil {
		t.Fatal(err)
	}
	rec := RecommendTask(res.PSECs[0])
	pragma := rec.Pragma()
	if !strings.Contains(pragma, "depend(in:") || !strings.Contains(pragma, "in_") {
		t.Errorf("pragma %q should depend(in: ... in_)", pragma)
	}
	if !strings.Contains(pragma, "depend(out:") || !strings.Contains(pragma, "out_") {
		t.Errorf("pragma %q should depend(out: ... out_)", pragma)
	}
}

// TestROIByNameAndErrors covers small API paths.
func TestROIByNameAndErrors(t *testing.T) {
	prog, err := Compile("x.mc", `
int main() {
	int s = 0;
	#pragma carmot roi named
	{
		s = 1;
	}
	return s;
}`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.ROIByName("named"); err != nil {
		t.Errorf("ROIByName(named): %v", err)
	}
	if _, err := prog.ROIByName("missing"); err == nil {
		t.Error("missing ROI should error")
	}
	if _, err := Compile("bad.mc", "int main() { return }", CompileOptions{}); err == nil {
		t.Error("syntax error must propagate")
	}
	if _, err := Compile("bad.mc", "int f() { return 0; }", CompileOptions{}); err != nil {
		t.Errorf("missing main is a run-time error, not compile: %v", err)
	}
}

// TestProfileErrorPropagation: runtime failures surface from Profile.
func TestProfileErrorPropagation(t *testing.T) {
	prog, err := Compile("crash.mc", `
int main() {
	int z = 0;
	#pragma carmot roi r
	{
		z = 1 / z;
	}
	return z;
}`, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP}); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Errorf("profile error = %v", err)
	}
}

// Package testutil holds small helpers shared by tests across packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// Goroutines snapshots the current goroutine count. Pair with
// WaitGoroutines around a pipeline lifecycle to prove shutdown leaks
// nothing.
func Goroutines() int { return runtime.NumGoroutine() }

// SettleGoroutines reports whether the goroutine count returns to at
// most baseline within timeout. Pipeline goroutines shut down
// asynchronously after Finish, so a plain equality check would flake;
// polling with a deadline is the portable alternative to parsing
// goroutine dumps.
func SettleGoroutines(baseline int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitGoroutines fails t when the goroutine count has not dropped back
// to at most baseline within 5 seconds.
func WaitGoroutines(t testing.TB, baseline int) {
	t.Helper()
	if !SettleGoroutines(baseline, 5*time.Second) {
		t.Errorf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
	}
}

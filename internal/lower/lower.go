// Package lower translates a checked MiniC AST into CARMOT-Go IR. The
// translation mirrors clang -O0 as the paper requires (§4.4): every source
// variable becomes an alloca, every access an explicit load/store, and
// each instruction carries its source position and (for direct variable
// accesses) the source symbol, giving the reversible source↔IR mapping
// PSEC depends on.
package lower

import (
	"fmt"

	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/native"
)

// Options selects which source regions become ROIs.
type Options struct {
	// ProfileOmp makes the body of every `#pragma omp parallel for` and
	// `#pragma omp task` an ROI, the mode §5.1 uses to verify existing
	// pragmas.
	ProfileOmp bool
	// ProfileStats makes every `#pragma stats` region an ROI (§5.3).
	ProfileStats bool
	// WholeProgramROI wraps the body of main in a single ROI, the mode
	// §5.2 uses to find reference cycles anywhere in the program.
	WholeProgramROI bool
	// IgnoreCarmotPragmas skips `#pragma carmot roi` markers so a run can
	// target exactly one ROI (e.g. WholeProgramROI alone).
	IgnoreCarmotPragmas bool
}

// Lower translates the file.
func Lower(file *lang.File, opts Options) (*ir.Program, error) {
	lo := &lowerer{
		file: file,
		opts: opts,
		prog: &ir.Program{Source: file},
	}
	if err := lo.run(); err != nil {
		return nil, err
	}
	return lo.prog, nil
}

type cleanupKind int

const (
	cleanupROIEnd cleanupKind = iota
	cleanupIterEnd
	cleanupCriticalEnd
	cleanupOrderedEnd
	cleanupMasterEnd
	cleanupTaskEnd
	cleanupSectionEnd
)

// cleanup records a closing instruction that must be emitted when control
// leaves its region early (break, continue, return).
type cleanup struct {
	kind   cleanupKind
	roi    *ir.ROI
	region *ir.ParRegion
}

type loopCtx struct {
	breakBlk    *ir.Block
	continueBlk *ir.Block
	cleanupMark int // cleanup-stack depth at loop body entry
}

type lowerer struct {
	file *lang.File
	opts Options
	prog *ir.Program

	fn       *ir.Func
	cur      *ir.Block
	funcIR   map[*lang.FuncDecl]*ir.Func
	allocaOf map[*lang.Symbol]*ir.Alloca
	globalOf map[*lang.Symbol]*ir.Global
	paramOf  map[*lang.Symbol]*ir.Param
	loops    []loopCtx
	cleanups []cleanup
	// loopInfos tracks the enclosing for-loops' induction information so
	// a carmot ROI placed on a block inside a loop (the Figure 1 shape)
	// still knows its governing induction variable.
	loopInfos []*ir.LoopInfo
	pos       lang.Pos
}

func (lo *lowerer) errf(pos lang.Pos, format string, args ...interface{}) error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lo *lowerer) run() error {
	lo.globalOf = map[*lang.Symbol]*ir.Global{}
	for _, g := range lo.file.Globals {
		irg := &ir.Global{ID: len(lo.prog.Globals), Sym: g.Sym, Cells: g.Sym.Type.Cells()}
		if g.Init != nil {
			c, err := constEval(g.Init)
			if err != nil {
				return err
			}
			irg.Init = c
		}
		lo.prog.Globals = append(lo.prog.Globals, irg)
		lo.globalOf[g.Sym] = irg
		lo.prog.TotalCells += irg.Cells
	}
	for _, ext := range lo.file.Externs {
		spec := native.Lookup(ext.Name)
		if spec == nil {
			return lo.errf(ext.Pos, "extern %q has no native implementation", ext.Name)
		}
		lo.prog.Externs = append(lo.prog.Externs, &ir.Extern{
			ID: len(lo.prog.Externs), Name: ext.Name, Ret: classOf(ext.Ret),
			Params: ext.Params, AccessesMemory: spec.AccessesMemory,
		})
	}
	// Pre-create every function shell so direct calls and function
	// pointers can reference forward-declared functions.
	lo.funcIR = map[*lang.FuncDecl]*ir.Func{}
	for _, fn := range lo.file.Funcs {
		f := &ir.Func{Name: fn.Name, Source: fn, Ret: classOf(fn.Ret)}
		lo.funcIR[fn] = f
		lo.prog.Funcs = append(lo.prog.Funcs, f)
	}
	for _, fn := range lo.file.Funcs {
		if err := lo.lowerFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

// constEval folds a constant initializer expression.
func constEval(e lang.Expr) (*ir.Const, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return ir.ConstInt(x.Value), nil
	case *lang.FloatLit:
		return ir.ConstFloat(x.Value), nil
	case *lang.SizeofExpr:
		return ir.ConstInt(int64(x.Of.Cells())), nil
	case *lang.Unary:
		if x.Op == lang.UnaryNeg {
			c, err := constEval(x.X)
			if err != nil {
				return nil, err
			}
			if c.IsFloat {
				return ir.ConstFloat(-c.Float), nil
			}
			return ir.ConstInt(-c.Int), nil
		}
	}
	return nil, &lang.Error{Pos: e.NodePos(), Msg: "global initializer must be a constant literal"}
}

func classOf(t *lang.Type) ir.Class {
	switch t.Kind {
	case lang.KindInt:
		return ir.ClassInt
	case lang.KindFloat:
		return ir.ClassFloat
	case lang.KindPointer, lang.KindArray:
		return ir.ClassPtr
	case lang.KindFnPtr:
		return ir.ClassFn
	case lang.KindVoid:
		return ir.ClassVoid
	}
	return ir.ClassInt
}

func (lo *lowerer) emit(in ir.Instr) {
	ir.Base(in).Pos = lo.pos
	if lo.cur.Terminator() != nil {
		// Dead code after return/break; emit into a fresh unreachable
		// block to keep blocks well formed.
		lo.cur = lo.fn.NewBlock("dead")
	}
	lo.cur.Append(in)
}

func (lo *lowerer) setBlock(b *ir.Block) { lo.cur = b }

// branchTo terminates the current block with a jump if it is still open.
func (lo *lowerer) branchTo(target *ir.Block) {
	if lo.cur.Terminator() == nil {
		lo.cur.Append(&ir.Br{Target: target})
	}
}

func (lo *lowerer) lowerFunc(src *lang.FuncDecl) error {
	fn := lo.funcIR[src]
	lo.fn = fn
	lo.allocaOf = map[*lang.Symbol]*ir.Alloca{}
	lo.paramOf = map[*lang.Symbol]*ir.Param{}
	lo.loops = nil
	lo.cleanups = nil
	lo.pos = src.Pos

	entry := fn.NewBlock("entry")
	lo.cur = entry

	for i, psym := range src.Params {
		p := &ir.Param{Index: i, Sym: psym, Cls: classOf(psym.Type)}
		fn.Params = append(fn.Params, p)
		lo.paramOf[psym] = p
	}
	// clang -O0 shape: allocas for params and all locals at the head of
	// the entry block, params stored into their slots.
	for _, psym := range src.Params {
		lo.newAlloca(psym, psym.Type.Cells(), false)
	}
	for _, lsym := range src.Locals {
		lo.newAlloca(lsym, lsym.Type.Cells(), false)
	}
	for _, psym := range src.Params {
		lo.emit(&ir.Store{Addr: lo.allocaOf[psym], Val: lo.paramOf[psym], Sym: psym,
			PtrStore: classOf(psym.Type) == ir.ClassPtr})
	}

	roiAll := lo.opts.WholeProgramROI && src.Name == "main"
	var mainROI *ir.ROI
	if roiAll {
		mainROI = lo.newROI("main", ir.ROICarmot, nil, src.Pos)
		lo.emit(&ir.ROIBegin{ROI: mainROI})
		lo.cleanups = append(lo.cleanups, cleanup{kind: cleanupROIEnd, roi: mainROI})
	}

	if err := lo.lowerStmt(src.Body); err != nil {
		return err
	}

	if lo.cur.Terminator() == nil {
		if roiAll {
			lo.emit(&ir.ROIEnd{ROI: mainROI})
		}
		var ret ir.Value
		switch fn.Ret {
		case ir.ClassVoid:
		case ir.ClassFloat:
			ret = ir.ConstFloat(0)
		default:
			ret = ir.ConstInt(0)
		}
		lo.emit(&ir.Ret{Val: ret})
	}

	ir.ComputeCFG(fn)
	return ir.Verify(fn)
}

func (lo *lowerer) newAlloca(sym *lang.Symbol, cells int, synthetic bool) *ir.Alloca {
	a := &ir.Alloca{Sym: sym, Cells: cells, Synthetic: synthetic, Index: len(lo.fn.Allocas)}
	a.Pos = lo.pos
	if sym != nil {
		a.Pos = sym.Pos
	}
	lo.fn.InsertAlloca(a, len(lo.fn.Allocas))
	lo.fn.Allocas = append(lo.fn.Allocas, a)
	if sym != nil {
		lo.allocaOf[sym] = a
	}
	return a
}

func (lo *lowerer) newROI(name string, kind ir.ROIKind, prag *lang.Pragma, pos lang.Pos) *ir.ROI {
	roi := &ir.ROI{ID: len(lo.prog.ROIs), Name: name, Kind: kind, Func: lo.fn, Pragma: prag, Pos: pos}
	if roi.Name == "" {
		roi.Name = fmt.Sprintf("roi%d@%s", roi.ID, pos)
	}
	lo.prog.ROIs = append(lo.prog.ROIs, roi)
	return roi
}

func (lo *lowerer) newRegion(kind ir.ParRegionKind, prag *lang.Pragma, pos lang.Pos) *ir.ParRegion {
	r := &ir.ParRegion{ID: len(lo.prog.Regions), Kind: kind, Func: lo.fn, Pragma: prag, Pos: pos}
	lo.prog.Regions = append(lo.prog.Regions, r)
	return r
}

// unwindTo emits the closing instructions for cleanups above mark without
// popping them (the normal path still closes them).
func (lo *lowerer) unwindTo(mark int) {
	for i := len(lo.cleanups) - 1; i >= mark; i-- {
		lo.emitCleanup(lo.cleanups[i])
	}
}

func (lo *lowerer) emitCleanup(c cleanup) {
	switch c.kind {
	case cleanupROIEnd:
		lo.emit(&ir.ROIEnd{ROI: c.roi})
	case cleanupIterEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkIterEnd, Region: c.region})
	case cleanupCriticalEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkCriticalEnd})
	case cleanupOrderedEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkOrderedEnd})
	case cleanupMasterEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkMasterEnd})
	case cleanupTaskEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkTaskEnd})
	case cleanupSectionEnd:
		lo.emit(&ir.Mark{Kind: ir.MarkSectionEnd, Region: c.region})
	}
}

func (lo *lowerer) pushCleanup(c cleanup) int {
	lo.cleanups = append(lo.cleanups, c)
	return len(lo.cleanups) - 1
}

// popCleanup emits the closing instruction on the normal path and pops.
func (lo *lowerer) popCleanup() {
	c := lo.cleanups[len(lo.cleanups)-1]
	lo.cleanups = lo.cleanups[:len(lo.cleanups)-1]
	lo.emitCleanup(c)
}

func (lo *lowerer) lowerStmt(s lang.Stmt) error {
	lo.pos = s.NodePos()
	switch st := s.(type) {
	case *lang.BlockStmt:
		for _, sub := range st.Stmts {
			if err := lo.lowerStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *lang.DeclStmt:
		if st.Init == nil {
			return nil
		}
		v, err := lo.rvalue(st.Init)
		if err != nil {
			return err
		}
		if m, ok := v.(*ir.Malloc); ok {
			m.Hint = st.Sym.Name
		}
		v, err = lo.coerce(v, st.Init, st.Sym.Type)
		if err != nil {
			return err
		}
		a := lo.allocaOf[st.Sym]
		lo.pos = st.Pos
		lo.emit(&ir.Store{Addr: a, Val: v, Sym: st.Sym, PtrStore: classOf(st.Sym.Type) == ir.ClassPtr})
		return nil
	case *lang.ExprStmt:
		_, err := lo.rvalue(st.X)
		return err
	case *lang.IfStmt:
		return lo.lowerIf(st)
	case *lang.WhileStmt:
		return lo.lowerWhile(st)
	case *lang.ForStmt:
		return lo.lowerFor(st, nil, nil)
	case *lang.ReturnStmt:
		var v ir.Value
		if st.Value != nil {
			var err error
			v, err = lo.rvalue(st.Value)
			if err != nil {
				return err
			}
			v, err = lo.coerce(v, st.Value, lo.fn.Source.Ret)
			if err != nil {
				return err
			}
		}
		lo.pos = st.Pos
		lo.unwindTo(0)
		lo.emit(&ir.Ret{Val: v})
		return nil
	case *lang.BreakStmt:
		lc := lo.loops[len(lo.loops)-1]
		lo.unwindTo(lc.cleanupMark)
		lo.emit(&ir.Br{Target: lc.breakBlk})
		return nil
	case *lang.ContinueStmt:
		lc := lo.loops[len(lo.loops)-1]
		lo.unwindTo(lc.cleanupMark)
		lo.emit(&ir.Br{Target: lc.continueBlk})
		return nil
	case *lang.FreeStmt:
		p, err := lo.rvalue(st.Ptr)
		if err != nil {
			return err
		}
		lo.pos = st.Pos
		lo.emit(&ir.Free{Ptr: p})
		return nil
	case *lang.PragmaStmt:
		return lo.lowerPragma(st)
	}
	return lo.errf(s.NodePos(), "lower: unhandled statement %T", s)
}

func (lo *lowerer) lowerIf(st *lang.IfStmt) error {
	cond, err := lo.condValue(st.Cond)
	if err != nil {
		return err
	}
	thenBlk := lo.fn.NewBlock("then")
	doneBlk := lo.fn.NewBlock("endif")
	elseBlk := doneBlk
	if st.Else != nil {
		elseBlk = lo.fn.NewBlock("else")
	}
	lo.emit(&ir.CondBr{Cond: cond, True: thenBlk, False: elseBlk})
	lo.setBlock(thenBlk)
	if err := lo.lowerStmt(st.Then); err != nil {
		return err
	}
	lo.branchTo(doneBlk)
	if st.Else != nil {
		lo.setBlock(elseBlk)
		if err := lo.lowerStmt(st.Else); err != nil {
			return err
		}
		lo.branchTo(doneBlk)
	}
	lo.setBlock(doneBlk)
	return nil
}

func (lo *lowerer) lowerWhile(st *lang.WhileStmt) error {
	condBlk := lo.fn.NewBlock("while.cond")
	bodyBlk := lo.fn.NewBlock("while.body")
	exitBlk := lo.fn.NewBlock("while.exit")
	lo.branchTo(condBlk)
	lo.setBlock(condBlk)
	cond, err := lo.condValue(st.Cond)
	if err != nil {
		return err
	}
	lo.emit(&ir.CondBr{Cond: cond, True: bodyBlk, False: exitBlk})
	lo.setBlock(bodyBlk)
	lo.loops = append(lo.loops, loopCtx{breakBlk: exitBlk, continueBlk: condBlk, cleanupMark: len(lo.cleanups)})
	if err := lo.lowerStmt(st.Body); err != nil {
		return err
	}
	lo.loops = lo.loops[:len(lo.loops)-1]
	lo.branchTo(condBlk)
	lo.setBlock(exitBlk)
	return nil
}

// lowerFor lowers a for loop. When roi is non-nil it wraps the loop body
// (each iteration is one dynamic ROI invocation); when region is non-nil
// iteration markers for the multicore simulator are emitted as well.
func (lo *lowerer) lowerFor(st *lang.ForStmt, roi *ir.ROI, region *ir.ParRegion) error {
	if st.Init != nil {
		if err := lo.lowerStmt(st.Init); err != nil {
			return err
		}
	}
	condBlk := lo.fn.NewBlock("for.cond")
	bodyBlk := lo.fn.NewBlock("for.body")
	postBlk := lo.fn.NewBlock("for.post")
	exitBlk := lo.fn.NewBlock("for.exit")

	if region != nil {
		lo.emit(&ir.Mark{Kind: ir.MarkRegionBegin, Region: region})
	}
	lo.branchTo(condBlk)
	lo.setBlock(condBlk)
	if st.Cond != nil {
		cond, err := lo.condValue(st.Cond)
		if err != nil {
			return err
		}
		lo.emit(&ir.CondBr{Cond: cond, True: bodyBlk, False: exitBlk})
	} else {
		lo.branchTo(bodyBlk)
	}
	lo.setBlock(bodyBlk)

	mark := len(lo.cleanups)
	if region != nil {
		lo.emit(&ir.Mark{Kind: ir.MarkIterBegin, Region: region})
		lo.pushCleanup(cleanup{kind: cleanupIterEnd, region: region})
	}
	if roi != nil {
		lo.emit(&ir.ROIBegin{ROI: roi})
		lo.pushCleanup(cleanup{kind: cleanupROIEnd, roi: roi})
	}
	lo.loops = append(lo.loops, loopCtx{breakBlk: exitBlk, continueBlk: postBlk, cleanupMark: mark})
	lo.loopInfos = append(lo.loopInfos, detectLoopInfo(st))
	if err := lo.lowerStmt(st.Body); err != nil {
		return err
	}
	lo.loopInfos = lo.loopInfos[:len(lo.loopInfos)-1]
	lo.loops = lo.loops[:len(lo.loops)-1]
	if roi != nil {
		lo.popCleanup()
	}
	if region != nil {
		lo.popCleanup()
	}
	lo.branchTo(postBlk)

	lo.setBlock(postBlk)
	if st.Post != nil {
		if err := lo.lowerStmt(st.Post); err != nil {
			return err
		}
	}
	lo.branchTo(condBlk)
	lo.setBlock(exitBlk)
	if region != nil {
		lo.emit(&ir.Mark{Kind: ir.MarkRegionEnd, Region: region})
	}
	return nil
}

// detectLoopInfo recognizes the canonical loop shape (i = start; i cmp
// bound; i += step) and returns the governing induction variable.
func detectLoopInfo(st *lang.ForStmt) *ir.LoopInfo {
	var ind *lang.Symbol
	switch init := st.Init.(type) {
	case *lang.DeclStmt:
		ind = init.Sym
	case *lang.ExprStmt:
		if as, ok := init.X.(*lang.Assign); ok && as.Op == lang.AssignSet {
			if id, ok := as.LHS.(*lang.Ident); ok {
				ind = id.Sym
			}
		}
	}
	if ind == nil || ind.Type.Kind != lang.KindInt {
		return nil
	}
	cond, ok := st.Cond.(*lang.Binary)
	if !ok {
		return nil
	}
	condUsesInd := false
	if id, ok := cond.L.(*lang.Ident); ok && id.Sym == ind {
		condUsesInd = true
	}
	if id, ok := cond.R.(*lang.Ident); ok && id.Sym == ind {
		condUsesInd = true
	}
	if !condUsesInd {
		return nil
	}
	step := int64(0)
	if post, ok := st.Post.(*lang.ExprStmt); ok {
		switch px := post.X.(type) {
		case *lang.IncDec:
			if id, ok := px.X.(*lang.Ident); ok && id.Sym == ind {
				step = 1
				if px.Dec {
					step = -1
				}
			}
		case *lang.Assign:
			if id, ok := px.LHS.(*lang.Ident); ok && id.Sym == ind {
				if lit, ok := px.RHS.(*lang.IntLit); ok {
					switch px.Op {
					case lang.AssignAdd:
						step = lit.Value
					case lang.AssignSub:
						step = -lit.Value
					}
				}
			}
		}
	}
	if step == 0 {
		return nil
	}
	return &ir.LoopInfo{IndVar: ind, Step: step, For: st}
}

func (lo *lowerer) lowerPragma(st *lang.PragmaStmt) error {
	p := st.Pragma
	lo.pos = st.Pos
	switch p.Kind {
	case lang.PragmaCarmotROI:
		if lo.opts.IgnoreCarmotPragmas {
			return lo.lowerStmt(st.Body)
		}
		if forStmt, ok := st.Body.(*lang.ForStmt); ok {
			// A carmot roi on a for loop characterizes the loop body:
			// each iteration is one dynamic invocation (Figure 1), and
			// the loop is a candidate parallel region for Figure 6.
			roi := lo.newROI(p.Name, ir.ROICarmot, p, st.Pos)
			roi.Loop = detectLoopInfo(forStmt)
			region := lo.newRegion(ir.RegionCandidate, p, st.Pos)
			region.ROI = roi
			region.Loop = roi.Loop
			return lo.lowerFor(forStmt, roi, region)
		}
		roi := lo.newROI(p.Name, ir.ROICarmot, p, st.Pos)
		// A block ROI inside a loop inherits the innermost enclosing
		// loop's induction variable (Figure 1 places the pragma on the
		// loop-body block).
		for i := len(lo.loopInfos) - 1; i >= 0; i-- {
			if lo.loopInfos[i] != nil {
				roi.Loop = lo.loopInfos[i]
				break
			}
		}
		lo.emit(&ir.ROIBegin{ROI: roi})
		lo.pushCleanup(cleanup{kind: cleanupROIEnd, roi: roi})
		if err := lo.lowerStmt(st.Body); err != nil {
			return err
		}
		lo.popCleanup()
		return nil
	case lang.PragmaOmpParallelFor:
		forStmt, _ := st.Body.(*lang.ForStmt)
		region := lo.newRegion(ir.RegionFor, p, st.Pos)
		region.Loop = detectLoopInfo(forStmt)
		var roi *ir.ROI
		if lo.opts.ProfileOmp {
			roi = lo.newROI("omp.for@"+st.Pos.String(), ir.ROIOmpFor, p, st.Pos)
			roi.Loop = region.Loop
			region.ROI = roi
		}
		return lo.lowerFor(forStmt, roi, region)
	case lang.PragmaOmpTask:
		lo.emit(&ir.Mark{Kind: ir.MarkTaskBegin, Task: p})
		lo.pushCleanup(cleanup{kind: cleanupTaskEnd})
		var roiCleanup bool
		if lo.opts.ProfileOmp {
			roi := lo.newROI("omp.task@"+st.Pos.String(), ir.ROIOmpTask, p, st.Pos)
			lo.emit(&ir.ROIBegin{ROI: roi})
			lo.pushCleanup(cleanup{kind: cleanupROIEnd, roi: roi})
			roiCleanup = true
		}
		if err := lo.lowerStmt(st.Body); err != nil {
			return err
		}
		if roiCleanup {
			lo.popCleanup()
		}
		lo.popCleanup()
		return nil
	case lang.PragmaOmpCritical:
		lo.emit(&ir.Mark{Kind: ir.MarkCriticalBegin})
		lo.pushCleanup(cleanup{kind: cleanupCriticalEnd})
		if err := lo.lowerStmt(st.Body); err != nil {
			return err
		}
		lo.popCleanup()
		return nil
	case lang.PragmaOmpOrdered:
		lo.emit(&ir.Mark{Kind: ir.MarkOrderedBegin})
		lo.pushCleanup(cleanup{kind: cleanupOrderedEnd})
		if err := lo.lowerStmt(st.Body); err != nil {
			return err
		}
		lo.popCleanup()
		return nil
	case lang.PragmaOmpMaster:
		lo.emit(&ir.Mark{Kind: ir.MarkMasterBegin})
		lo.pushCleanup(cleanup{kind: cleanupMasterEnd})
		if err := lo.lowerStmt(st.Body); err != nil {
			return err
		}
		lo.popCleanup()
		return nil
	case lang.PragmaOmpBarrier, lang.PragmaOmpTaskWait:
		lo.emit(&ir.Mark{Kind: ir.MarkBarrier})
		return nil
	case lang.PragmaOmpParallelSections:
		region := lo.newRegion(ir.RegionSections, p, st.Pos)
		lo.emit(&ir.Mark{Kind: ir.MarkRegionBegin, Region: region})
		blk := st.Body.(*lang.BlockStmt)
		for _, sub := range blk.Stmts {
			sec := sub.(*lang.PragmaStmt)
			lo.pos = sec.Pos
			lo.emit(&ir.Mark{Kind: ir.MarkSectionBegin, Region: region})
			lo.pushCleanup(cleanup{kind: cleanupSectionEnd, region: region})
			if err := lo.lowerStmt(sec.Body); err != nil {
				return err
			}
			lo.popCleanup()
		}
		lo.emit(&ir.Mark{Kind: ir.MarkRegionEnd, Region: region})
		return nil
	case lang.PragmaOmpSection:
		// Handled by the sections case; a stray section is just its body.
		return lo.lowerStmt(st.Body)
	case lang.PragmaStats:
		if lo.opts.ProfileStats {
			roi := lo.newROI("stats@"+st.Pos.String(), ir.ROIStats, p, st.Pos)
			lo.emit(&ir.ROIBegin{ROI: roi})
			lo.pushCleanup(cleanup{kind: cleanupROIEnd, roi: roi})
			if err := lo.lowerStmt(st.Body); err != nil {
				return err
			}
			lo.popCleanup()
			return nil
		}
		return lo.lowerStmt(st.Body)
	}
	return lo.errf(st.Pos, "lower: unhandled pragma %s", p.Kind)
}

package chaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"carmot/internal/router"
	"carmot/internal/serve"
	"carmot/internal/testutil"
	"carmot/internal/wire"
)

// FleetReplica is one carmotd-equivalent member of a chaos fleet: a
// real serve.Server behind a real TCP listener, wrapped in a gate so a
// schedule can hang it, kill it (listener and every established
// connection cut, streams included), drain it like SIGTERM, and bring
// it back on the same address.
type FleetReplica struct {
	Addr string // fixed for the replica's lifetime, across restarts

	scfg    serve.Config
	mu      sync.Mutex
	srv     *serve.Server
	httpSrv *http.Server
	hung    chan struct{} // non-nil while hanging; closed on release
	down    bool
	drained bool
	drainWG sync.WaitGroup
}

func newFleetReplica(scfg serve.Config) (*FleetReplica, error) {
	fr := &FleetReplica{scfg: scfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fr.Addr = ln.Addr().String()
	fr.mu.Lock()
	fr.boot(ln)
	fr.mu.Unlock()
	return fr, nil
}

// boot (re)creates the replica process state: a fresh serve.Server —
// a restarted process loses its caches, which is exactly what the
// router's affinity story must survive. Callers hold fr.mu.
func (fr *FleetReplica) boot(ln net.Listener) {
	fr.srv = serve.New(fr.scfg)
	fr.httpSrv = &http.Server{Handler: fr.gate(fr.srv.Handler())}
	fr.down, fr.drained, fr.hung = false, false, nil
	go fr.httpSrv.Serve(ln)
}

// gate is the hang injection point: while hung, every request — healthz
// probes included — blocks until released or the connection dies, which
// is what a wedged process looks like from the network.
func (fr *FleetReplica) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fr.mu.Lock()
		gate := fr.hung
		fr.mu.Unlock()
		if gate != nil {
			select {
			case <-gate:
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// Kill severs the replica like a crash: no drain, no goodbye — the
// listener closes and every established connection is cut mid-byte.
// The in-flight sessions see their request contexts cancel; Kill waits
// them out so a later Restart starts from a quiet process.
func (fr *FleetReplica) Kill() {
	fr.mu.Lock()
	if fr.down {
		fr.mu.Unlock()
		return
	}
	fr.down = true
	if fr.hung != nil {
		close(fr.hung)
		fr.hung = nil
	}
	hs, srv := fr.httpSrv, fr.srv
	fr.mu.Unlock()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Drain(ctx)
}

// Restart brings the replica back on its original address with empty
// caches. A drained-but-alive replica restarts through a stop first.
func (fr *FleetReplica) Restart() error {
	fr.mu.Lock()
	down := fr.down
	fr.mu.Unlock()
	if !down {
		fr.Kill()
	}
	var ln net.Listener
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err = net.Listen("tcp", fr.Addr)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("restart %s: %w", fr.Addr, err)
	}
	fr.mu.Lock()
	fr.boot(ln)
	fr.mu.Unlock()
	return nil
}

// Hang wedges the replica: established connections stay open, new
// requests block, probes time out. Unhang releases it.
func (fr *FleetReplica) Hang() {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.down || fr.hung != nil {
		return
	}
	fr.hung = make(chan struct{})
}

func (fr *FleetReplica) Unhang() {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.hung != nil {
		close(fr.hung)
		fr.hung = nil
	}
}

// BeginDrain mimics the SIGTERM path: the replica stops admitting
// sessions, finishes in-flight ones (streams complete their terminal
// result), and keeps answering — 503 draining — until killed or
// restarted.
func (fr *FleetReplica) BeginDrain() {
	fr.mu.Lock()
	if fr.down || fr.drained {
		fr.mu.Unlock()
		return
	}
	fr.drained = true
	srv := fr.srv
	fr.drainWG.Add(1)
	fr.mu.Unlock()
	go func() {
		defer fr.drainWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	// Don't return until the flag is externally visible: a SIGTERM'd
	// process refuses admissions before the signal handler returns, and
	// schedules rely on the next request seeing the drain.
	deadline := time.Now().Add(time.Second)
	for !srv.Snapshot().Draining && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
}

// Fleet is N chaos replicas behind a carmot-router, all on real
// listeners, plus the client to reach them.
type Fleet struct {
	Replicas []*FleetReplica
	Router   *router.Router
	URL      string

	httpSrv *http.Server
	client  *http.Client
}

// fleetServeConfig is the replica-side tuning every fleet member runs
// with: admission wide open (fleet chaos is not about sheds), fast
// degraded-retry backoff, progress events at every batch boundary so
// streams spend real time mid-flight.
func fleetServeConfig() serve.Config {
	return serve.Config{
		RetryBase:      time.Millisecond,
		TenantRate:     1000,
		TenantBurst:    100000,
		StreamInterval: -1,
	}
}

// StartFleet stands up n replicas and a router fronting them. rcfg's
// Replicas list is filled in by StartFleet.
func StartFleet(n int, rcfg router.Config) (*Fleet, error) {
	return StartFleetWith(n, rcfg, fleetServeConfig())
}

// StartFleetWith is StartFleet with explicit replica-side serve
// tuning (benchmarks disable the result cache so every request runs).
func StartFleetWith(n int, rcfg router.Config, scfg serve.Config) (*Fleet, error) {
	f := &Fleet{}
	for i := 0; i < n; i++ {
		fr, err := newFleetReplica(scfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Replicas = append(f.Replicas, fr)
		rcfg.Replicas = append(rcfg.Replicas, "http://"+fr.Addr)
	}
	rt, err := router.New(rcfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Router = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.httpSrv = &http.Server{Handler: rt.Handler()}
	go f.httpSrv.Serve(ln)
	f.URL = "http://" + ln.Addr().String()
	f.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 32}}
	return f, nil
}

// Close tears the whole fleet down: router first (stops probers), then
// every replica, hung or not.
func (f *Fleet) Close() {
	if f.httpSrv != nil {
		f.httpSrv.Close()
	}
	if f.Router != nil {
		f.Router.Close()
	}
	for _, fr := range f.Replicas {
		fr.Unhang()
		fr.Kill()
		fr.drainWG.Wait()
	}
	if f.client != nil {
		f.client.CloseIdleConnections()
	}
}

// Fleet schedule actions.
const (
	ActKill    = "kill"
	ActRestart = "restart"
	ActHang    = "hang"
	ActUnhang  = "unhang"
	ActDrain   = "drain"
)

// FleetEvent is one scheduled disruption: once AfterDone client
// requests have completed, Action fires on Replica.
type FleetEvent struct {
	AfterDone int64
	Replica   int
	Action    string
}

// FleetSchedule is a seed-derived chaos run against a 3-replica fleet
// behind the router: concurrent clients (a seeded mix of buffered and
// streaming requests) while replicas are killed, hung, drained, and
// restarted mid-load. The invariants are the serving set, promoted to
// fleet level:
//
//	termination  — every admitted request ultimately completes; clients
//	               retry structured refusals, never raw failures
//	equivalence  — every completed request's PSECs are byte-identical
//	               to the fault-free reference: failover is invisible
//	               in the body and degraded results never slip through
//	visibility   — the X-Carmot-Route trail is present and well-formed
//	               on every completed request
//	honesty      — every intermediate non-answer is structured (a known
//	               wire kind with a retry hint, or a terminal stream
//	               event); a truncated NDJSON stream is a violation
//	containment  — no goroutine outlives the fleet teardown
type FleetSchedule struct {
	Seed      int64
	Clients   int
	PerClient int
	StreamPct int // percentage of requests sent with ?stream=1
	Events    []FleetEvent
}

func (s FleetSchedule) String() string {
	return fmt.Sprintf("fleet seed=%d clients=%d per=%d stream%%=%d events=%v",
		s.Seed, s.Clients, s.PerClient, s.StreamPct, s.Events)
}

// NewFleetSchedule derives a fleet schedule from seed. Disruptions are
// sequential windows — disrupt one replica, recover it, move on — so
// at most one replica is deliberately unavailable at a time and the
// flapping pattern still exercises every breaker transition. Windows
// whose thresholds fall past the end of the load simply never fire;
// teardown cleans up whatever state the run ended in.
func NewFleetSchedule(seed int64) FleetSchedule {
	r := rand.New(rand.NewSource(seed))
	s := FleetSchedule{
		Seed:      seed,
		Clients:   3 + r.Intn(3),
		PerClient: 3 + r.Intn(3),
		StreamPct: 30 + r.Intn(41),
	}
	total := int64(s.Clients * s.PerClient)
	recovery := map[string]string{ActKill: ActRestart, ActHang: ActUnhang, ActDrain: ActRestart}
	at := int64(0)
	for {
		at += 1 + r.Int63n(3)
		if at >= total {
			break
		}
		act := []string{ActKill, ActHang, ActDrain}[r.Intn(3)]
		rp := r.Intn(3)
		s.Events = append(s.Events, FleetEvent{AfterDone: at, Replica: rp, Action: act})
		at += 1 + r.Int63n(3)
		s.Events = append(s.Events, FleetEvent{AfterDone: at, Replica: rp, Action: recovery[act]})
	}
	return s
}

// FleetOutcome is one client request's final state after retries.
type FleetOutcome struct {
	Source    int
	Stream    bool
	Tries     int
	Route     wire.RouteInfo
	PSECs     json.RawMessage
	Violation string // non-empty: an invariant broke mid-request
}

// FleetResult is one executed fleet schedule.
type FleetResult struct {
	Schedule    FleetSchedule
	Outcomes    []FleetOutcome
	Refs        [][]byte // fault-free PSECs per corpus entry
	Stats       router.Stats
	EventsFired int
	Leaked      bool
	Err         error // harness-level failure (fleet did not start)
}

// fleetRouterConfig is the router tuning chaos runs use: tight probe
// and breaker timings so a multi-second test still walks the full
// state machine several times, and a 1s attempt timeout as the
// hung-replica detector.
func fleetRouterConfig() router.Config {
	return router.Config{
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		DownAfter:        1,
		UpAfter:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBase:        5 * time.Millisecond,
		RetryCap:         50 * time.Millisecond,
		AttemptTimeout:   time.Second,
	}
}

// ExecuteFleet runs the schedule: fault-free references first (direct,
// no fleet), then the fleet comes up and the clients run while a
// driver goroutine steps through the disruption events.
func ExecuteFleet(s FleetSchedule) FleetResult {
	baseline := testutil.Goroutines()
	res := FleetResult{Schedule: s}

	ref := serve.New(fleetServeConfig())
	h := ref.Handler()
	for i, src := range daemonCorpus {
		o := postJSON(h, src, true)
		if o.Status != http.StatusOK || o.Resp.ExitCode != 0 {
			res.Err = fmt.Errorf("corpus entry %d reference run: status %d exit %d", i, o.Status, o.Resp.ExitCode)
			return res
		}
		canon, cerr := compactJSON(o.PSECs)
		if cerr != nil {
			res.Err = fmt.Errorf("corpus entry %d reference PSECs: %v", i, cerr)
			return res
		}
		res.Refs = append(res.Refs, canon)
	}
	refCtx, refCancel := context.WithTimeout(context.Background(), 10*time.Second)
	ref.Drain(refCtx)
	refCancel()

	fleet, err := StartFleet(3, fleetRouterConfig())
	if err != nil {
		res.Err = err
		return res
	}

	var done atomic.Int64
	allDone := make(chan struct{})
	var driverWG sync.WaitGroup
	var fired atomic.Int64
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for _, ev := range s.Events {
			for done.Load() < ev.AfterDone {
				select {
				case <-allDone:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			fr := fleet.Replicas[ev.Replica]
			switch ev.Action {
			case ActKill:
				fr.Kill()
			case ActRestart:
				fr.Restart()
			case ActHang:
				fr.Hang()
			case ActUnhang:
				fr.Unhang()
			case ActDrain:
				fr.BeginDrain()
			}
			fired.Add(1)
		}
	}()

	var mu sync.Mutex
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(s.Seed ^ 0xf1ee7))
	for c := 0; c < s.Clients; c++ {
		tenant := fmt.Sprintf("tenant-%d", c)
		picks := make([]int, s.PerClient)
		streams := make([]bool, s.PerClient)
		for i := range picks {
			picks[i] = rng.Intn(len(daemonCorpus))
			streams[i] = rng.Intn(100) < s.StreamPct
		}
		wg.Add(1)
		go func(tenant string, picks []int, streams []bool) {
			defer wg.Done()
			for i := range picks {
				o := fleetRequest(fleet, tenant, picks[i], streams[i])
				done.Add(1)
				mu.Lock()
				res.Outcomes = append(res.Outcomes, o)
				mu.Unlock()
			}
		}(tenant, picks, streams)
	}
	wg.Wait()
	close(allDone)
	driverWG.Wait()

	res.EventsFired = int(fired.Load())
	res.Stats = fleet.Router.Snapshot()
	fleet.Close()
	res.Leaked = !testutil.SettleGoroutines(baseline, 5*time.Second)
	return res
}

// fleetRequest posts one profile request at the router and retries
// structured refusals until a clean result lands or patience runs out.
// Any unstructured non-answer is recorded as a violation and ends the
// request immediately — chaos may delay an answer, never mangle one.
func fleetRequest(f *Fleet, tenant string, srcIdx int, stream bool) FleetOutcome {
	o := FleetOutcome{Source: srcIdx, Stream: stream}
	deadline := time.Now().Add(30 * time.Second)
	backoff := 5 * time.Millisecond
	for {
		if time.Now().After(deadline) {
			o.Violation = "request did not complete within the retry budget"
			return o
		}
		o.Tries++
		route, psecs, viol := f.tryOnce(tenant, srcIdx, stream)
		if viol != "" {
			o.Violation = viol
			return o
		}
		if psecs != nil {
			o.Route = route
			o.PSECs = psecs
			return o
		}
		time.Sleep(jitteredBackoff(backoff))
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}

func jitteredBackoff(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// profileDoc is the replica response document the fleet client cares
// about: the summary plus the raw PSEC payload for byte comparison.
type profileDoc struct {
	wire.Summary
	PSECs json.RawMessage `json:"psecs"`
}

// tryOnce issues one request. Returns non-nil psecs on success, empty
// psecs on a retryable refusal, and a violation string when the
// response breaks an invariant.
func (f *Fleet) tryOnce(tenant string, srcIdx int, stream bool) (route wire.RouteInfo, psecs json.RawMessage, violation string) {
	body, _ := json.Marshal(map[string]any{"source": daemonCorpus[srcIdx], "psecs": true})
	url := f.URL + "/v1/profile"
	if stream {
		url += "?stream=1"
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return route, nil, "building request: " + err.Error()
	}
	req.Header.Set("X-Carmot-Tenant", tenant)
	res, err := f.client.Do(req)
	if err != nil {
		// The router itself is never killed; a transport error here is
		// connection churn under chaos — retryable, not a violation.
		return route, nil, ""
	}
	defer res.Body.Close()

	if stream && res.StatusCode == http.StatusOK {
		return f.readStream(res)
	}
	payload, rerr := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if rerr != nil {
		return route, nil, ""
	}
	return classifyFinal(res.StatusCode, res.Header.Get(wire.RouteHeader), payload)
}

// readStream consumes a committed NDJSON stream. The terminal event
// decides: result/200 is the answer, result/!200 is a structured
// retryable, anything else — a truncated stream most of all — is a
// violation: the router promised an honest terminal event.
func (f *Fleet) readStream(res *http.Response) (route wire.RouteInfo, psecs json.RawMessage, violation string) {
	var last *wire.StreamEvent
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return route, nil, fmt.Sprintf("stream line is not an event: %v: %.200s", err, sc.Bytes())
		}
		last = &ev
	}
	if err := sc.Err(); err != nil {
		// The connection died under the scanner — with the router alive
		// that means our own client machinery, not the fleet; retry.
		return route, nil, ""
	}
	if last == nil || last.Event != wire.EventResult {
		return route, nil, "stream ended without a terminal result event"
	}
	if last.Status != http.StatusOK {
		var sum wire.Summary
		if err := json.Unmarshal(last.Result, &sum); err != nil || !knownKinds[sum.Kind] || sum.RetryAfterMs <= 0 {
			return route, nil, fmt.Sprintf("terminal %d event is not a structured retryable: %.200s", last.Status, last.Result)
		}
		return route, nil, "" // honest mid-stream failure; retry
	}
	return classifyFinal(http.StatusOK, res.Header.Get(wire.RouteHeader), last.Result)
}

// classifyFinal sorts a complete response document into answer /
// retryable / violation.
func classifyFinal(status int, routeHeader string, payload []byte) (route wire.RouteInfo, psecs json.RawMessage, violation string) {
	var doc profileDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return route, nil, fmt.Sprintf("status %d with unparseable body: %.200s", status, payload)
	}
	switch status {
	case http.StatusOK:
		if doc.ExitCode != 0 || doc.Kind != wire.KindOK {
			return route, nil, fmt.Sprintf("degraded result relayed: 200 with exit %d kind %q", doc.ExitCode, doc.Kind)
		}
		if len(doc.PSECs) == 0 {
			return route, nil, "200/exit-0 without PSECs"
		}
		ri, err := wire.ParseRouteInfo(routeHeader)
		if err != nil {
			return route, nil, fmt.Sprintf("completed request carries no route trail: %v", err)
		}
		// Canonical (compact) form: plain bodies are indented, streamed
		// terminal results are compacted, and equivalence must hold
		// across both paths.
		canon, cerr := compactJSON(doc.PSECs)
		if cerr != nil {
			return route, nil, "PSEC payload is not valid JSON: " + cerr.Error()
		}
		return ri, canon, ""
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		if !knownKinds[doc.Kind] || doc.RetryAfterMs <= 0 {
			return route, nil, fmt.Sprintf("status %d without a structured retry hint: %.200s", status, payload)
		}
		return route, nil, "" // retryable
	}
	return route, nil, fmt.Sprintf("unexpected status %d (kind %q: %s)", status, doc.Kind, doc.Error)
}

// compactJSON canonicalizes a JSON document for cross-path byte
// comparison.
func compactJSON(raw json.RawMessage) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CheckFleet verifies the fleet invariants on an executed schedule.
func CheckFleet(res FleetResult) error {
	s := res.Schedule
	if res.Err != nil {
		return fmt.Errorf("%s: %v", s, res.Err)
	}
	if res.Leaked {
		return fmt.Errorf("%s: goroutines leaked past fleet teardown", s)
	}
	want := s.Clients * s.PerClient
	if len(res.Outcomes) != want {
		return fmt.Errorf("%s: %d outcomes for %d requests", s, len(res.Outcomes), want)
	}
	for i, o := range res.Outcomes {
		if o.Violation != "" {
			return fmt.Errorf("%s: request %d (source %d, stream %v, try %d): %s",
				s, i, o.Source, o.Stream, o.Tries, o.Violation)
		}
		if !bytes.Equal(o.PSECs, res.Refs[o.Source]) {
			return fmt.Errorf("%s: request %d: PSECs diverge from the fault-free reference — failover leaked into the body", s, i)
		}
		if o.Route.Replica == "" || o.Route.Attempts < 1 {
			return fmt.Errorf("%s: request %d: route trail missing or empty: %+v", s, i, o.Route)
		}
	}
	if res.Stats.Requests == 0 {
		return fmt.Errorf("%s: router saw no requests", s)
	}
	return nil
}

package interp

import "sort"

// Dispatch counting. The hot loop keeps only a per-pc hit counter on each
// compiled function (one predictable increment, no opcode indexing); the
// per-opcode and pair tables below are derived after the run by walking
// the compiled streams. Pair counts are static derivations: the pc at
// offset n executed hits[n] times, and whenever its opcode falls through
// (everything except jumps, returns, and bad-op traps) the word at n+1
// executed immediately after it — exactly the adjacency population the
// superinstruction pass draws from.

// OpCount is one opcode's dispatch tally.
type OpCount struct {
	Name  string
	Count uint64
}

// PairCount is one fall-through opcode pair's tally.
type PairCount struct {
	First, Second string
	Count         uint64
}

// DispatchStats is the dispatch-counter report: per-opcode and
// fall-through-pair frequencies, each sorted by descending count.
type DispatchStats struct {
	Total int64
	Ops   []OpCount
	Pairs []PairCount
}

// fallsThrough reports whether a word at pc transfers control to pc+1.
// Conditional jumps may fall through dynamically, but their targets are
// always explicit block starts, never the next word implicitly — so for
// pair derivation they are terminators.
func fallsThrough(op bcOp) bool {
	switch op {
	case opJmp, opCondJmp, opRet, opBadOp, opFStoreUJmp:
		return false
	}
	if op >= opFJmpEqI && op <= opFJmpGeF {
		return false
	}
	return true
}

// DispatchStats returns the dispatch-counter report, or nil when the run
// was not counting (Options.CountDispatch off or tree engine).
func (it *Interp) DispatchStats() *DispatchStats {
	if !it.opts.CountDispatch || len(it.compiled) == 0 {
		return nil
	}
	var ops [nOps]uint64
	pairs := map[[2]bcOp]uint64{}
	for _, cf := range it.compiled {
		if cf.hits == nil {
			continue
		}
		for pc, n := range cf.hits {
			if n == 0 {
				continue
			}
			op := cf.code[pc].op
			ops[op] += n
			if pc+1 < len(cf.code) && fallsThrough(op) {
				pairs[[2]bcOp{op, cf.code[pc+1].op}] += n
			}
		}
	}
	st := &DispatchStats{}
	for op, n := range ops {
		if n == 0 {
			continue
		}
		st.Total += int64(n)
		st.Ops = append(st.Ops, OpCount{Name: opNames[op], Count: n})
	}
	for pair, n := range pairs {
		st.Pairs = append(st.Pairs, PairCount{
			First:  opNames[pair[0]],
			Second: opNames[pair[1]],
			Count:  n,
		})
	}
	sort.Slice(st.Ops, func(i, j int) bool {
		if st.Ops[i].Count != st.Ops[j].Count {
			return st.Ops[i].Count > st.Ops[j].Count
		}
		return st.Ops[i].Name < st.Ops[j].Name
	})
	sort.Slice(st.Pairs, func(i, j int) bool {
		if st.Pairs[i].Count != st.Pairs[j].Count {
			return st.Pairs[i].Count > st.Pairs[j].Count
		}
		if st.Pairs[i].First != st.Pairs[j].First {
			return st.Pairs[i].First < st.Pairs[j].First
		}
		return st.Pairs[i].Second < st.Pairs[j].Second
	})
	return st
}

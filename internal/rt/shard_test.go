package rt

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/testutil"
)

// diffOp is one step of a randomized differential workload. It covers
// every event class the pipeline routes: allocations (with address-reuse
// retires), frees, escapes, plain accesses with use sites and interned
// callstacks, ranged events with strides, fixed classifications, and
// nested ROI invocations.
type diffOp struct {
	kind   EventKind
	roi    int32
	addr   uint64
	n      int64
	stride uint64
	target uint64
	site   int32
	cs     int // index into the per-replay interned callstacks
	sets   core.SetMask
	write  bool
}

// randomDiffWorkload builds a reproducible op stream over a pool of base
// addresses chosen so allocations land on different shard residues and
// occasionally collide (exercising the implicit-retire path).
func randomDiffWorkload(r *rand.Rand) []diffOp {
	bases := []uint64{1 << 10, 1<<12 + 3, 1<<16 + 7, 1 << 20, 3<<16 + 1, 5<<12 + 9}
	type live struct {
		base  uint64
		cells int64
	}
	var allocs []live
	open := [2]bool{}
	var ops []diffOp

	emitAlloc := func() {
		b := bases[r.Intn(len(bases))] + uint64(r.Intn(3))*4096
		n := int64(1 + r.Intn(24))
		ops = append(ops, diffOp{kind: EvAlloc, addr: b, n: n})
		allocs = append(allocs, live{b, n})
	}
	// Seed a few allocations and open the outer ROI so most accesses
	// land inside an invocation.
	for i := 0; i < 3; i++ {
		emitAlloc()
	}
	ops = append(ops, diffOp{kind: EvROIBegin, roi: 0})
	open[0] = true

	nOps := 150 + r.Intn(250)
	for i := 0; i < nOps; i++ {
		switch r.Intn(24) {
		case 0, 1:
			emitAlloc()
		case 2:
			if len(allocs) > 0 {
				j := r.Intn(len(allocs))
				ops = append(ops, diffOp{kind: EvFree, addr: allocs[j].base})
				allocs = append(allocs[:j], allocs[j+1:]...)
			}
		case 3:
			if len(allocs) >= 2 {
				a := allocs[r.Intn(len(allocs))]
				b := allocs[r.Intn(len(allocs))]
				ops = append(ops, diffOp{kind: EvEscape, addr: a.base, target: b.base})
			}
		case 4, 5:
			ops = append(ops, diffOp{kind: EvROIBegin, roi: 0}) // toggled below
			if open[0] {
				ops[len(ops)-1].kind = EvROIEnd
			}
			open[0] = !open[0]
		case 6:
			ops = append(ops, diffOp{kind: EvROIBegin, roi: 1})
			if open[1] {
				ops[len(ops)-1].kind = EvROIEnd
			}
			open[1] = !open[1]
		case 7, 8:
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				ops = append(ops, diffOp{
					kind: EvRange, roi: int32(r.Intn(2)), write: r.Intn(2) == 0,
					addr: a.base + uint64(r.Intn(4)), n: int64(1 + r.Intn(40)),
					stride: uint64(1 + r.Intn(5)),
				})
			}
		case 9:
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				ops = append(ops, diffOp{
					kind: EvFixed, roi: int32(r.Intn(2)),
					addr: a.base, n: 1 + int64(r.Intn(int(a.cells))),
					sets: core.SetMask(1 << uint(r.Intn(4))),
				})
			}
		default:
			// Plain access: usually inside a live allocation, sometimes
			// at a stale/untracked address. Half the accesses carry a
			// use site + interned callstack.
			addr := bases[r.Intn(len(bases))] + uint64(r.Intn(28))
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				addr = a.base + uint64(r.Int63n(a.cells))
			}
			op := diffOp{kind: EvAccess, addr: addr, write: r.Intn(2) == 0, site: -1}
			if r.Intn(2) == 0 {
				op.site = int32(r.Intn(2))
				op.cs = r.Intn(3)
			}
			ops = append(ops, op)
		}
	}
	for roi := int32(1); roi >= 0; roi-- {
		if open[roi] {
			ops = append(ops, diffOp{kind: EvROIEnd, roi: roi})
		}
	}
	return ops
}

// diffConfig returns the shared pipeline configuration the differential
// tests use; geometry and recovery knobs are layered on by the caller.
func diffConfig(batch, workers, shards int) Config {
	return Config{
		BatchSize: batch, Workers: workers, Shards: shards, Profile: ProfileFull,
		Sites: []SiteInfo{
			{Pos: "d.mc:5:3", Func: "f", Write: false},
			{Pos: "d.mc:6:3", Func: "g", Write: true},
		},
		ROIs: []ROIMeta{
			{ID: 0, Name: "outer", Kind: "carmot", Pos: "d.mc:1:1"},
			{ID: 1, Name: "inner", Kind: "carmot", Pos: "d.mc:2:2"},
		},
	}
}

// replayDiff runs one op stream through a fresh pipeline with the given
// geometry and renders every ROI's PSEC as text + JSON. Byte-identical
// output across geometries is the correctness contract of the sharded
// postprocessor.
func replayDiff(ops []diffOp, batch, workers, shards int) string {
	report, _ := replayDiffCfg(ops, diffConfig(batch, workers, shards))
	return report
}

// replayDiffCfg is replayDiff with a caller-supplied Config; it also
// returns the finished runtime so recovery tests can inspect
// diagnostics.
func replayDiffCfg(ops []diffOp, cfg Config) (string, *Runtime) {
	r := New(cfg)
	cs := []core.CallstackID{
		0,
		r.Callstacks().Intern([]core.Frame{{Func: "main", Pos: "d.mc:10:1"}}),
		r.Callstacks().Intern([]core.Frame{{Func: "kern", Pos: "d.mc:20:1"}}),
	}
	for i, op := range ops {
		switch op.kind {
		case EvAlloc:
			r.EmitAlloc(op.addr, op.n, cs[1], &AllocMeta{
				Kind: core.PSEHeap, Name: fmt.Sprintf("a%x", op.addr), Pos: "d.mc:3:3"})
		case EvFree:
			r.EmitFree(op.addr)
		case EvEscape:
			r.EmitEscape(op.addr, op.target)
		case EvROIBegin:
			r.BeginROI(int(op.roi))
		case EvROIEnd:
			r.EndROI(int(op.roi))
		case EvRange:
			r.EmitRange(op.roi, op.write, op.addr, op.n, op.stride)
		case EvFixed:
			r.EmitFixed(op.roi, op.addr, op.n, op.sets)
		case EvAccess:
			r.EmitAccess(op.addr, op.write, op.site, cs[op.cs])
		default:
			panic(fmt.Sprintf("op %d: unhandled kind %d", i, op.kind))
		}
	}
	psecs := r.Finish()
	var sb strings.Builder
	for _, p := range psecs {
		if p == nil {
			sb.WriteString("<nil>\n")
			continue
		}
		sb.WriteString(p.Summary())
		data, err := json.Marshal(p)
		if err != nil {
			panic(err)
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	return sb.String(), r
}

// TestShardDifferentialRandomWorkloads is the differential property test
// for the sharded postprocessor: the same event stream replayed through a
// 1-shard/1-worker pipeline and through K-shard/N-worker pipelines (with
// assorted batch sizes) must produce byte-identical PSEC reports. 24
// randomized workloads cover allocs, frees, address reuse, escapes,
// strided ranges, fixed classifications, nested ROIs, and use callstacks.
func TestShardDifferentialRandomWorkloads(t *testing.T) {
	geometries := [][3]int{ // {batch, workers, shards}
		{3, 1, 2},
		{16, 2, 4},
		{64, 3, 3},
		{257, 4, 7},
		{4096, 4, 8},
		{31, 2, 1}, // multi-worker, single shard
		{1, 1, 8},  // single-event batches through many shards
	}
	rng := rand.New(rand.NewSource(4242))
	baseline := testutil.Goroutines()
	for trial := 0; trial < 24; trial++ {
		ops := randomDiffWorkload(rng)
		ref := replayDiff(ops, 1, 1, 1)
		for _, g := range geometries {
			if got := replayDiff(ops, g[0], g[1], g[2]); got != ref {
				t.Fatalf("trial %d: batch=%d workers=%d shards=%d diverges from the sequential reference\n--- got ---\n%s\n--- want ---\n%s",
					trial, g[0], g[1], g[2], got, ref)
			}
			// The fault-free path with recovery enabled must be fully
			// transparent: journaling and epoch stamping change no output.
			cfg := diffConfig(g[0], g[1], g[2])
			cfg.Recover = true
			if got, rt := replayDiffCfg(ops, cfg); got != ref {
				t.Fatalf("trial %d: geometry %v with Recover diverges\n--- got ---\n%s\n--- want ---\n%s",
					trial, g, got, ref)
			} else if err := rt.Err(); err != nil {
				t.Fatalf("trial %d: fault-free Recover run reported %v", trial, err)
			}
		}
	}
	// Every pipeline above must have shut down cleanly across all
	// {batch, workers, shards} geometries.
	testutil.WaitGoroutines(t, baseline)
}

// TestShardFanoutMaskCoversResidues checks the sequencer's routing
// over-approximation: every address a ranged event touches must map to a
// shard whose bit is set in the fanout mask. (Extra bits are harmless —
// shards re-filter by residue — but a missing bit silently drops state.)
func TestShardFanoutMaskCoversResidues(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, k := range []uint64{1, 2, 3, 5, 8, 16, 63, 64} {
		p := &postState{k: k}
		for trial := 0; trial < 200; trial++ {
			base := rng.Uint64()
			n := int64(rng.Intn(200))
			stride := int64(1 + rng.Intn(9))
			mask := p.fanoutMask(base, n, stride)
			addr := base
			for j := int64(0); j < n; j++ {
				if mask&(1<<(addr%k)) == 0 {
					t.Fatalf("k=%d base=%d n=%d stride=%d: addr %d (residue %d) not covered by mask %b",
						k, base, n, stride, addr, addr%k, mask)
				}
				addr += uint64(stride)
			}
		}
	}
}

// TestShardPanicContained injects a panic into a shard goroutine's apply
// loop and checks the run still completes, the fault is counted, and no
// goroutine leaks.
func TestShardPanicContained(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.shard.apply", faultinject.CountdownPanic(3, "injected shard fault"))
	baseline := testutil.Goroutines()
	f := newFeeder(Config{BatchSize: 4, Workers: 2, Shards: 4, Profile: ProfileFull})
	f.alloc(100, 8, core.PSEHeap, "arr")
	f.r.BeginROI(0)
	for i := 0; i < 64; i++ {
		f.access(100+uint64(i%8), i%2 == 0)
	}
	f.r.EndROI(0)
	psecs := f.r.Finish()
	if len(psecs) != 1 || psecs[0] == nil {
		t.Fatalf("Finish under shard fault = %v", psecs)
	}
	if d := f.r.Diagnostics(); d.PostprocessorPanics == 0 {
		t.Errorf("shard panic not counted: %+v", d)
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestCellCapLadderUnderShards re-runs the degradation-ladder scenario
// with a sharded postprocessor: the cell cap must hold globally (shards
// reserve cells through a shared CAS budget), the ladder must stay
// monotone, and access counts must survive to counts-only.
func TestCellCapLadderUnderShards(t *testing.T) {
	f := newFeeder(Config{Shards: 4, Workers: 2, Profile: ProfileFull,
		Limits: Limits{MaxLiveCells: 8}})
	f.r.BeginROI(0)
	for i := 0; i < 6; i++ {
		f.alloc(uint64(1000*(i+1)), 6, core.PSEHeap, fmt.Sprintf("a%d", i))
		for c := 0; c < 6; c++ {
			f.access(uint64(1000*(i+1)+c), true)
		}
	}
	f.r.EndROI(0)
	f.r.Finish()
	d := f.r.Diagnostics()
	if d.PeakLiveCells > 8 {
		t.Errorf("PeakLiveCells = %d, cap 8", d.PeakLiveCells)
	}
	if len(d.Downgrades) == 0 {
		t.Fatal("cell cap produced no downgrades under shards")
	}
	rank := map[string]int{
		"drop-use-callstacks":  1,
		"coarse-cell-tracking": 2,
		"counts-only":          3,
	}
	last := 0
	for _, dg := range d.Downgrades {
		rk, ok := rank[dg.Action]
		if !ok {
			t.Errorf("unknown ladder action %q", dg.Action)
			continue
		}
		if rk <= last {
			t.Errorf("ladder out of order under shards: %v", d.Downgrades)
		}
		last = rk
	}
	if p := f.r.Finish()[0]; p.Stats.TotalAccesses == 0 {
		t.Error("access counts lost under sharded degradation")
	}
}

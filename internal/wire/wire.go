// Package wire defines the machine-readable run summary shared by every
// carmot entry point. The CLI's -diag-json file and carmotd's JSON
// responses carry the same document, so one supervisor-side parser can
// triage a run regardless of how it was launched.
package wire

import (
	"encoding/json"

	"carmot/internal/rt"
)

// Outcome kinds. The CLI derives its kind from the process exit code;
// the daemon additionally distinguishes admission and lifecycle
// failures that a one-shot process cannot hit.
const (
	KindOK       = "ok"       // profile completed, recommendations valid
	KindError    = "error"    // compile/runtime/analysis failure
	KindUsage    = "usage"    // malformed invocation or request
	KindBudget   = "budget"   // budget or deadline breached; partial PSECs
	KindShed     = "shed"     // admission control rejected the request
	KindDraining = "draining" // server is shutting down; retry elsewhere
	KindInternal = "internal" // serving-layer fault, not the profile's
)

// Summary is the triage document: enough for a supervisor process (or a
// carmotd client) to classify a run without parsing human output.
type Summary struct {
	// ExitCode mirrors the CLI exit codes: 0 success, 1 analysis or
	// runtime error, 2 usage error, 3 budget/deadline exceeded. Daemon
	// responses reuse the same numbering for completed profiles.
	ExitCode int `json:"exit_code"`
	// Kind classifies the outcome (one of the Kind* constants).
	Kind string `json:"kind"`
	// Error is the failure text, empty on success.
	Error string `json:"error,omitempty"`
	// RetryAfterMs is a client backoff hint, set only on shed and
	// draining responses.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Attempts is how many profile attempts the serving layer made
	// (journal-replay retries included); zero when no profile started.
	Attempts int `json:"attempts,omitempty"`
	// Diagnostics is the runtime's account of the run; nil on paths
	// that never profiled (usage/compile errors, shed requests).
	Diagnostics *rt.Diagnostics `json:"diagnostics"`
}

// Streaming event names: the `event` discriminator of each NDJSON line
// a streaming profile request (POST /v1/profile?stream=1) receives.
// Events arrive in order: one compile, interleaved progress/degrade
// (and attempt, when the serving layer retries a degraded session),
// and exactly one terminal result.
const (
	EventCompile  = "compile"  // the program is compiled; the session is about to run
	EventProgress = "progress" // periodic pipeline-volume snapshot
	EventDegrade  = "degrade"  // a degradation-ladder step or supervisor intervention happened
	EventAttempt  = "attempt"  // a degraded attempt is being retried
	EventResult   = "result"   // terminal: the full response document
)

// StreamEvent is one line of a streaming profile response. Fields are a
// union over the event kinds; unused fields are omitted on the wire.
type StreamEvent struct {
	// Event is one of the Event* constants.
	Event string `json:"event"`
	// Compile: whether the compiled program came from the program cache,
	// and how many ROIs it carries.
	CacheHit bool `json:"cache_hit,omitempty"`
	ROIs     int  `json:"rois,omitempty"`
	// Progress / degrade: the pipeline-volume snapshot (events accepted,
	// events shed by caps, batches pushed, degradation-ladder steps,
	// supervisor interventions so far).
	Events     uint64 `json:"events,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Batches    int    `json:"batches,omitempty"`
	Downgrades int    `json:"downgrades,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
	// Attempt: the 1-based attempt number about to run.
	Attempt int `json:"attempt,omitempty"`
	// Result: the HTTP status the non-streaming path would have used,
	// and the full response document (compact-encoded so the line
	// framing holds).
	Status int             `json:"status,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// EncodeLine renders the event as one compact NDJSON line.
func (e *StreamEvent) EncodeLine() ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Health is the /v1/healthz readiness document a carmotd replica
// serves. The status code keeps the original bare contract — 200 ready,
// 503 draining — so old clients that only look at the code still work;
// the body lets a router weight replicas instead of treating health as
// binary: a replica at shed-ladder level 2 with no free slots is alive
// but a poor failover target.
type Health struct {
	// Status is "ok" or "draining", mirroring the status code.
	Status string `json:"status"`
	// Draining is set once SIGTERM drain began: the replica finishes
	// in-flight sessions but admits nothing new. A router must remove a
	// draining replica from rotation without counting it as failed.
	Draining bool `json:"draining"`
	// DegradeLevel is the load-shed ladder rung new sessions would run
	// at (0 full fidelity, 1 soft, 2 hard).
	DegradeLevel int `json:"degrade_level"`
	// FreeSlots / PoolSlots describe the shared worker pool: how many
	// pipeline slots are unleased right now out of the machine budget.
	FreeSlots int `json:"free_slots"`
	PoolSlots int `json:"pool_slots"`
}

// RouteHeader names the response header carrying the RouteInfo document
// on requests that passed through carmot-router. It is a header, not a
// body field, so routed response bodies stay byte-identical to the ones
// the replica produced — failover is visible here and nowhere else.
const RouteHeader = "X-Carmot-Route"

// RouteInfo is the routing trail carmot-router attaches to every
// response: which replica ultimately answered, how many attempts that
// took, and why earlier attempts failed over.
type RouteInfo struct {
	// Replica is the id of the replica whose response this is (empty
	// when every attempt failed and the router answered itself).
	Replica string `json:"replica,omitempty"`
	// Attempts is the number of replica attempts made, hedges included.
	Attempts int `json:"attempts"`
	// Failover is the reason the previous attempt was abandoned, empty
	// on a first-try success. With several failovers it reports the
	// last one; the full ladder is in the router's /v1/statz counters.
	Failover string `json:"failover,omitempty"`
	// Hedged is set when this response was won by a hedge request
	// racing a slow primary.
	Hedged bool `json:"hedged,omitempty"`
}

// EncodeHeader renders the route info as the compact single-line JSON
// the X-Carmot-Route header carries.
func (ri *RouteInfo) EncodeHeader() string {
	data, err := json.Marshal(ri)
	if err != nil {
		return ""
	}
	return string(data)
}

// ParseRouteInfo decodes an X-Carmot-Route header value.
func ParseRouteInfo(h string) (RouteInfo, error) {
	var ri RouteInfo
	err := json.Unmarshal([]byte(h), &ri)
	return ri, err
}

// KindForExit maps a CLI exit code onto its outcome kind.
func KindForExit(code int) string {
	switch code {
	case 0:
		return KindOK
	case 2:
		return KindUsage
	case 3:
		return KindBudget
	default:
		return KindError
	}
}

// Encode renders the summary as indented JSON with a trailing newline,
// the format both the -diag-json file and the daemon body use.
func (s *Summary) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

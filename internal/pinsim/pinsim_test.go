package pinsim_test

import (
	"testing"

	"carmot/internal/core"
	"carmot/internal/native"
	"carmot/internal/pinsim"
	"carmot/internal/rt"
)

type memEnv struct {
	mem  map[uint64]uint64
	rand uint64
}

func (m *memEnv) LoadCell(addr uint64) uint64       { return m.mem[addr] }
func (m *memEnv) StoreCell(addr uint64, val uint64) { m.mem[addr] = val }
func (m *memEnv) Print(string)                      {}
func (m *memEnv) RandState() *uint64                { return &m.rand }

// TestTracerReportsAccesses checks that precompiled-code accesses reach
// the runtime with binary-level attribution (site -1) and classify PSEs.
func TestTracerReportsAccesses(t *testing.T) {
	r := rt.New(rt.Config{
		Profile: rt.ProfileFull,
		ROIs:    []rt.ROIMeta{{ID: 0, Name: "z"}},
	})
	inner := &memEnv{mem: map[uint64]uint64{100: 7, 101: 8}}
	r.EmitAlloc(100, 2, 0, &rt.AllocMeta{Kind: core.PSEHeap, Name: "src", Pos: "lib"})
	r.EmitAlloc(200, 2, 0, &rt.AllocMeta{Kind: core.PSEHeap, Name: "dst", Pos: "lib"})
	r.BeginROI(0)
	tr := pinsim.NewTracer(inner, r, 0)
	native.Lookup("memcpy_cells").Impl(tr, []uint64{200, 100, 2})
	r.EndROI(0)
	reads, writes := tr.Counts()
	if reads != 2 || writes != 2 {
		t.Errorf("counts = %d reads, %d writes", reads, writes)
	}
	if inner.mem[200] != 7 || inner.mem[201] != 8 {
		t.Error("tracer must forward the copy")
	}
	psec := r.Finish()[0]
	src := psec.ElementByName("src")
	dst := psec.ElementByName("dst")
	if src == nil || src.Sets != core.SetInput {
		t.Errorf("src = %v, want Input", src)
	}
	if dst == nil || dst.Sets != core.SetOutput {
		t.Errorf("dst = %v, want Output", dst)
	}
}

// TestTracerForwardsEnvServices: print and PRNG state pass through.
func TestTracerForwardsEnvServices(t *testing.T) {
	r := rt.New(rt.Config{ROIs: []rt.ROIMeta{{ID: 0}}})
	inner := &memEnv{mem: map[uint64]uint64{}, rand: 5}
	tr := pinsim.NewTracer(inner, r, 0)
	if tr.RandState() != &inner.rand {
		t.Error("RandState must forward to the inner env")
	}
	tr.Print("x")
	r.Finish()
}

package router

import (
	"sync"
	"time"

	"carmot/internal/wire"
)

// breaker states. The transitions:
//
//	closed    --(threshold consecutive failures)--> open
//	open      --(cooldown elapsed)-->                half-open
//	half-open --(one trial succeeds)-->              closed
//	half-open --(the trial fails)-->                 open (fresh cooldown)
//
// Failures are fed from both sides: in-band request errors (transport
// failures, 5xx) and active-probe failures count the same, so a replica
// that dies between requests is already open by the time traffic
// arrives, and a probe success can close a half-open breaker without
// risking a live request on the trial.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerNames = map[int]string{
	breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
}

// replica is the router's view of one carmotd instance: its breaker,
// the prober's up/down hysteresis, the drain flag, the last readiness
// document, and counters.
type replica struct {
	id   string // stable short id, e.g. "replica-0"
	base string // http://host:port

	mu        sync.Mutex
	state     int
	fails     int       // consecutive failures while closed
	openUntil time.Time // when an open breaker may half-open
	trialOut  bool      // a half-open trial is in flight

	healthy   bool // prober hysteresis; starts true (innocent until probed)
	draining  bool
	probeUp   int // consecutive probe successes while down
	probeDown int // consecutive probe failures while up
	readiness wire.Health

	// Counters for /v1/statz (guarded by mu; the handler path takes the
	// lock anyway for the breaker).
	requests     uint64
	failures     uint64
	breakerTrips uint64
}

// allow reports whether a request may be sent to this replica right
// now. trial is set when the grant is a half-open probe: its outcome
// must be reported via done(trial, ok) so the breaker can settle.
func (rp *replica) allow(now time.Time) (ok, trial bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	switch rp.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Before(rp.openUntil) {
			return false, false
		}
		rp.state = breakerHalfOpen
		rp.trialOut = true
		return true, true
	default: // half-open: one trial at a time
		if rp.trialOut {
			return false, false
		}
		rp.trialOut = true
		return true, true
	}
}

// available reports whether the replica is a routing candidate at all:
// breaker not open (or due for a trial), prober says up, not draining.
func (rp *replica) available(now time.Time) bool {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if !rp.healthy || rp.draining {
		return false
	}
	return rp.state != breakerOpen || !now.Before(rp.openUntil)
}

// done settles one request or probe outcome into the breaker.
func (rp *replica) done(trial, ok bool, now time.Time, threshold int, cooldown time.Duration) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if trial {
		rp.trialOut = false
	}
	if ok {
		rp.fails = 0
		if rp.state != breakerClosed {
			rp.state = breakerClosed
		}
		return
	}
	rp.failures++
	switch rp.state {
	case breakerClosed:
		if rp.fails++; rp.fails >= threshold {
			rp.trip(now, cooldown)
		}
	case breakerHalfOpen:
		rp.trip(now, cooldown) // the trial failed; back to open
	case breakerOpen:
		rp.openUntil = now.Add(cooldown) // still failing; extend
	}
}

// trip opens the breaker. Caller holds mu.
func (rp *replica) trip(now time.Time, cooldown time.Duration) {
	rp.state = breakerOpen
	rp.openUntil = now.Add(cooldown)
	rp.fails = 0
	rp.trialOut = false
	rp.breakerTrips++
}

// probeResult folds one health-probe outcome into the up/down
// hysteresis and the drain flag. A draining replica is *not* a failed
// replica: it answers probes, finishes its in-flight sessions, and must
// leave the rotation without tripping the breaker — err is nil there.
func (rp *replica) probeResult(h *wire.Health, err error, downAfter, upAfter int) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if err != nil {
		rp.probeUp = 0
		if rp.probeDown++; rp.probeDown >= downAfter {
			rp.healthy = false
		}
		return
	}
	rp.readiness = *h
	rp.draining = h.Draining
	rp.probeDown = 0
	if rp.probeUp++; rp.probeUp >= upAfter || rp.healthy {
		rp.healthy = true
	}
}

// markDraining records an in-band draining signal (a 503 KindDraining
// response) without waiting for the next probe round.
func (rp *replica) markDraining() {
	rp.mu.Lock()
	rp.draining = true
	rp.readiness.Draining = true
	rp.mu.Unlock()
}

// weight returns the last-known readiness for failover ordering: lower
// degrade level first, then more free slots. Unprobed replicas report
// neutral (level 0, slots 0) and keep their ring position.
func (rp *replica) weight() (degradeLevel, freeSlots int) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.readiness.DegradeLevel, rp.readiness.FreeSlots
}

// ReplicaStats is one replica's row in the router's /v1/statz document.
type ReplicaStats struct {
	ID           string `json:"id"`
	Base         string `json:"base"`
	Breaker      string `json:"breaker"`
	Healthy      bool   `json:"healthy"`
	Draining     bool   `json:"draining"`
	DegradeLevel int    `json:"degrade_level"`
	FreeSlots    int    `json:"free_slots"`
	Requests     uint64 `json:"requests"`
	Failures     uint64 `json:"failures"`
	BreakerTrips uint64 `json:"breaker_trips"`
}

func (rp *replica) stats() ReplicaStats {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return ReplicaStats{
		ID:           rp.id,
		Base:         rp.base,
		Breaker:      breakerNames[rp.state],
		Healthy:      rp.healthy,
		Draining:     rp.draining,
		DegradeLevel: rp.readiness.DegradeLevel,
		FreeSlots:    rp.readiness.FreeSlots,
		Requests:     rp.requests,
		Failures:     rp.failures,
		BreakerTrips: rp.breakerTrips,
	}
}

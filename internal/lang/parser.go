package lang

import "fmt"

// Parser builds a MiniC AST from a token stream. Parse does not resolve
// names or types; Check (check.go) performs semantic analysis.
type Parser struct {
	toks  []Token
	pos   int
	file  *File
	depth int
}

// maxParseDepth bounds statement/expression nesting so pathological
// inputs (e.g. thousands of nested parentheses) are rejected with a
// diagnostic instead of overflowing the stack.
const maxParseDepth = 256

func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("nesting too deep (limit %d)", maxParseDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse lexes and parses src into an unchecked File.
func Parse(filename, src string) (*File, error) {
	toks, err := NewLexer(filename, src).Tokenize()
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, file: &File{
		Name:          filename,
		structsByName: map[string]*StructType{},
		funcsByName:   map[string]*FuncDecl{},
		externsByName: map[string]*ExternDecl{},
	}}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

// ParseAndCheck parses src and runs semantic checking.
func ParseAndCheck(filename, src string) (*File, error) {
	f, err := Parse(filename, src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

// peekKind looks n tokens ahead, reading TokEOF past the end of the
// stream (the stream's final token is EOF, but lookahead may step past
// it on truncated inputs).
func (p *Parser) peekKind(n int) TokenKind {
	if p.pos+n >= len(p.toks) {
		return TokEOF
	}
	return p.toks[p.pos+n].Kind
}
func (p *Parser) curPos() Pos         { return p.toks[p.pos].Pos }
func (p *Parser) at(k TokenKind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.curPos(), Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseFile() error {
	for !p.at(TokEOF) {
		if err := p.parseTopDecl(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) atTypeStart() bool {
	switch p.cur().Kind {
	case TokKwInt, TokKwFloat, TokKwVoid, TokKwFnPtr, TokKwStruct:
		return true
	}
	return false
}

// parseBaseType parses a type prefix: base type plus any '*' suffixes.
func (p *Parser) parseBaseType() (*Type, error) {
	var t *Type
	switch p.cur().Kind {
	case TokKwInt:
		p.next()
		t = TypeInt
	case TokKwFloat:
		p.next()
		t = TypeFloat
	case TokKwVoid:
		p.next()
		t = TypeVoid
	case TokKwFnPtr:
		p.next()
		t = TypeFnPtr
	case TokKwStruct:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st := p.file.structsByName[name.Text]
		if st == nil {
			// Forward reference: create the shell; fields filled at defn.
			st = &StructType{Name: name.Text, Pos: name.Pos}
			p.file.structsByName[name.Text] = st
		}
		t = &Type{Kind: KindStruct, Struct: st}
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.accept(TokStar) {
		t = PointerTo(t)
	}
	return t, nil
}

// parseArraySuffix wraps t with [N] suffixes (outermost first in source).
func (p *Parser) parseArraySuffix(t *Type) (*Type, error) {
	var dims []int
	for p.accept(TokLBracket) {
		n, err := p.expect(TokIntLit)
		if err != nil {
			return nil, err
		}
		if n.Int <= 0 {
			return nil, &Error{Pos: n.Pos, Msg: "array length must be positive"}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		dims = append(dims, int(n.Int))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = ArrayOf(t, dims[i])
	}
	return t, nil
}

func (p *Parser) parseTopDecl() error {
	if p.at(TokKwExtern) {
		return p.parseExtern()
	}
	if p.at(TokKwStruct) && p.peekKind(2) == TokLBrace {
		return p.parseStructDef()
	}
	startPos := p.curPos()
	t, err := p.parseBaseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.at(TokLParen) {
		return p.parseFuncRest(t, name, startPos)
	}
	// Global variable.
	vt, err := p.parseArraySuffix(t)
	if err != nil {
		return err
	}
	g := &GlobalDecl{
		Sym: &Symbol{Name: name.Text, Type: vt, Storage: StorageGlobal, Pos: name.Pos},
		Pos: startPos,
	}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return err
		}
		g.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	p.file.Globals = append(p.file.Globals, g)
	return nil
}

func (p *Parser) parseStructDef() error {
	start := p.curPos()
	p.next() // struct
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	st := p.file.structsByName[name.Text]
	if st == nil {
		st = &StructType{Name: name.Text, Pos: start}
		p.file.structsByName[name.Text] = st
	} else if len(st.Fields) > 0 {
		return &Error{Pos: start, Msg: fmt.Sprintf("struct %s redefined", name.Text)}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for !p.at(TokRBrace) {
		ft, err := p.parseBaseType()
		if err != nil {
			return err
		}
		fname, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		ft, err = p.parseArraySuffix(ft)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return err
		}
		st.Fields = append(st.Fields, Field{Name: fname.Text, Type: ft, Pos: fname.Pos})
	}
	p.next() // }
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	st.layout()
	p.file.Structs = append(p.file.Structs, st)
	return nil
}

func (p *Parser) parseParams() ([]*Symbol, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []*Symbol
	if p.accept(TokKwVoid) && p.at(TokRParen) {
		p.next()
		return params, nil
	}
	for !p.at(TokRParen) {
		t, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		// Array parameters decay to pointers, as in C.
		if p.accept(TokLBracket) {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			t = PointerTo(t)
		}
		params = append(params, &Symbol{Name: name.Text, Type: t, Storage: StorageParam, Pos: name.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *Parser) parseFuncRest(ret *Type, name Token, startPos Pos) error {
	// Rewind: parseParams expects '('; we are at it already.
	params, err := p.parseParams()
	if err != nil {
		return err
	}
	fn := &FuncDecl{Name: name.Text, Ret: ret, Params: params, Pos: startPos}
	for _, prm := range params {
		prm.Func = fn
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fn.Body = body
	if p.file.funcsByName[fn.Name] != nil {
		return &Error{Pos: startPos, Msg: fmt.Sprintf("function %s redefined", fn.Name)}
	}
	p.file.Funcs = append(p.file.Funcs, fn)
	p.file.funcsByName[fn.Name] = fn
	return nil
}

func (p *Parser) parseExtern() error {
	start := p.curPos()
	p.next() // extern
	ret, err := p.parseBaseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	params, err := p.parseParams()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	ext := &ExternDecl{Name: name.Text, Ret: ret, Params: params, Pos: start}
	if p.file.externsByName[ext.Name] != nil {
		return &Error{Pos: start, Msg: fmt.Sprintf("extern %s redeclared", ext.Name)}
	}
	p.file.Externs = append(p.file.Externs, ext)
	p.file.externsByName[ext.Name] = ext
	return nil
}

// ---- Statements ----

func (p *Parser) parseBlock() (*BlockStmt, error) {
	tok, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{Pos: tok.Pos}}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case TokPragma:
		tok := p.next()
		prag, err := ParsePragma(tok.Text, tok.Pos)
		if err != nil {
			return nil, err
		}
		// Barrier/taskwait pragmas are standalone statements.
		if prag.Kind == PragmaOmpBarrier || prag.Kind == PragmaOmpTaskWait {
			return &PragmaStmt{stmtBase: stmtBase{Pos: tok.Pos}, Pragma: prag}, nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &PragmaStmt{stmtBase: stmtBase{Pos: tok.Pos}, Pragma: prag, Body: body}, nil
	case TokLBrace:
		return p.parseBlock()
	case TokKwIf:
		return p.parseIf()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwFor:
		return p.parseFor()
	case TokKwReturn:
		tok := p.next()
		ret := &ReturnStmt{stmtBase: stmtBase{Pos: tok.Pos}}
		if !p.at(TokSemi) {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ret.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return ret, nil
	case TokKwBreak:
		tok := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{Pos: tok.Pos}}, nil
	case TokKwContinue:
		tok := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{Pos: tok.Pos}}, nil
	case TokIdent:
		if p.cur().Text == "free" && p.toks[p.pos+1].Kind == TokLParen {
			tok := p.next()
			p.next() // (
			ptr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return &FreeStmt{stmtBase: stmtBase{Pos: tok.Pos}, Ptr: ptr}, nil
		}
	}
	if p.atTypeStart() {
		return p.parseDeclStmt()
	}
	// Expression statement.
	pos := p.curPos()
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}, nil
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	pos := p.curPos()
	t, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	vt, err := p.parseArraySuffix(t)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{
		stmtBase: stmtBase{Pos: pos},
		Sym:      &Symbol{Name: name.Text, Type: vt, Storage: StorageLocal, Pos: name.Pos},
	}
	if p.accept(TokAssign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{stmtBase: stmtBase{Pos: tok.Pos}, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{Pos: tok.Pos}, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{stmtBase: stmtBase{Pos: tok.Pos}}
	if !p.at(TokSemi) {
		if p.atTypeStart() {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			pos := p.curPos()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}
		}
	} else {
		p.next()
	}
	if !p.at(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		pos := p.curPos()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseAssign()
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	var op AssignOp
	switch p.cur().Kind {
	case TokAssign:
		op = AssignSet
	case TokPlusAssign:
		op = AssignAdd
	case TokMinusAssign:
		op = AssignSub
	case TokStarAssign:
		op = AssignMul
	case TokSlashAssign:
		op = AssignDiv
	default:
		return lhs, nil
	}
	tok := p.next()
	rhs, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &Assign{exprBase: exprBase{Pos: tok.Pos}, Op: op, LHS: lhs, RHS: rhs}, nil
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		tok := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: BinOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		tok := p.next()
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: BinAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseEquality() (Expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.at(TokEq) || p.at(TokNe) {
		op := BinEq
		if p.at(TokNe) {
			op = BinNe
		}
		tok := p.next()
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseRelational() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.cur().Kind {
		case TokLt:
			op = BinLt
		case TokLe:
			op = BinLe
		case TokGt:
			op = BinGt
		case TokGe:
			op = BinGe
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := BinAdd
		if p.at(TokMinus) {
			op = BinSub
		}
		tok := p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.cur().Kind {
		case TokStar:
			op = BinMul
		case TokSlash:
			op = BinDiv
		case TokPercent:
			op = BinRem
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: tok.Pos}, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch p.cur().Kind {
	case TokMinus:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: tok.Pos}, Op: UnaryNeg, X: x}, nil
	case TokNot:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: tok.Pos}, Op: UnaryNot, X: x}, nil
	case TokStar:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: tok.Pos}, Op: UnaryDeref, X: x}, nil
	case TokAmp:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: tok.Pos}, Op: UnaryAddr, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			tok := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Pos: tok.Pos}, Base: x, Idx: idx}
		case TokDot, TokArrow:
			arrow := p.at(TokArrow)
			tok := p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &Member{exprBase: exprBase{Pos: tok.Pos}, Base: x, Name: name.Text, Arrow: arrow}
		case TokLParen:
			tok := p.next()
			var args []Expr
			for !p.at(TokRParen) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x = &Call{exprBase: exprBase{Pos: tok.Pos}, Callee: x, Args: args}
		case TokPlusPlus, TokMinusMinus:
			dec := p.at(TokMinusMinus)
			tok := p.next()
			x = &IncDec{exprBase: exprBase{Pos: tok.Pos}, X: x, Dec: dec}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokIntLit:
		tok := p.next()
		return &IntLit{exprBase: exprBase{Pos: tok.Pos}, Value: tok.Int}, nil
	case TokFloatLit:
		tok := p.next()
		return &FloatLit{exprBase: exprBase{Pos: tok.Pos}, Value: tok.Float}, nil
	case TokKwSizeof:
		tok := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		t, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &SizeofExpr{exprBase: exprBase{Pos: tok.Pos}, Of: t}, nil
	case TokIdent:
		if p.cur().Text == "malloc" && p.toks[p.pos+1].Kind == TokLParen {
			tok := p.next()
			p.next() // (
			count, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &MallocExpr{exprBase: exprBase{Pos: tok.Pos}, Count: count}, nil
		}
		tok := p.next()
		return &Ident{exprBase: exprBase{Pos: tok.Pos}, Name: tok.Text}, nil
	case TokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}

// Serving-layer benchmark (the BENCH_serve.json experiment): drives a
// burst of concurrent profile requests through a live serve.Server —
// full HTTP handler path, admission control, program cache, shared
// worker pool — and reports end-to-end request latency percentiles
// next to throughput and the serving counters. This is the experiment
// behind carmotd's headline claim: N tenants multiplexed over one
// machine's worth of pipeline goroutines with bounded, observable
// latency.
//
// Three sections:
//
//   - burst: the steady-state mixed-key burst (result cache disabled so
//     every request runs a real session — comparable across revisions)
//   - hot_key: one key requested repeatedly with the result cache on,
//     against the same requests forced to re-run; the gap is the cache's
//     headline win
//   - saturation: offered load stepped past the shed point on a small
//     fixed pool, latency and shed rate per step
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"carmot/internal/serve"
)

// serveBenchSources is the request mix: three small programs with
// distinct PSEC shapes, so the burst exercises cache hits and private
// compiles rather than one degenerate key.
var serveBenchSources = []string{
	`int a[64];
int main() { int s = 0; #pragma carmot roi sum
for (int i = 0; i < 64; i++) { a[i] = i; s = s + a[i]; } return s % 251; }`,
	`int fib[32];
int main() { fib[0] = 0; fib[1] = 1; #pragma carmot roi fib
for (int i = 2; i < 32; i++) { fib[i] = fib[i-1] + fib[i-2]; } return fib[31] % 97; }`,
	`int m[48]; int o[48];
int main() { for (int i = 0; i < 48; i++) { m[i] = i * 3; }
#pragma carmot roi scale
for (int i = 0; i < 48; i++) { o[i] = m[i] * 2 + 1; } return o[7]; }`,
}

// ServeHotKeyReport is the hot-key repeat section: the same request
// served from the result cache vs forced to re-run.
type ServeHotKeyReport struct {
	Repeats    int     `json:"repeats"`
	ColdP50Ms  float64 `json:"cold_p50_ms"` // forced re-runs (no_result_cache)
	HotP50Ms   float64 `json:"hot_p50_ms"`  // result-cache hits
	Speedup    float64 `json:"speedup"`     // cold p50 / hot p50
	ResultHits uint64  `json:"result_hits"`
}

// ServeSaturationPoint is one offered-load step of the saturation sweep.
type ServeSaturationPoint struct {
	Clients        int     `json:"clients"`
	Requests       int     `json:"requests"`
	OK             int     `json:"ok"`
	Shed           int     `json:"shed"`
	Errors         int     `json:"errors"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// ServeBenchReport is the machine-readable experiment output.
type ServeBenchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	PoolSlots  int    `json:"pool_slots"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	// Outcomes.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Latency percentiles over successful requests, in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Throughput over the whole burst.
	WallMs        float64 `json:"wall_ms"`
	RequestsPerSs float64 `json:"requests_per_sec"`
	// Serving counters after the burst.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Retries     uint64 `json:"retries"`

	HotKey     *ServeHotKeyReport     `json:"hot_key,omitempty"`
	Saturation []ServeSaturationPoint `json:"saturation,omitempty"`
	// Fleet is filled in by the separate -exp fleet experiment (three
	// routed replicas under failure); MergeFleetSection grafts it onto
	// an existing report so both experiments share BENCH_serve.json.
	Fleet *FleetBenchReport `json:"fleet,omitempty"`
}

// fire posts one request body at the handler and reports status and
// latency.
func fire(h http.Handler, body []byte, tenant string) (int, time.Duration) {
	req := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	w := httptest.NewRecorder()
	t0 := time.Now()
	h.ServeHTTP(w, req)
	return w.Code, time.Since(t0)
}

// percentile reads the p-th percentile (0..1) off a sorted slice, in ms.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// ServeBench runs the burst: clients concurrent workers issue requests
// round-robin over the source mix until total requests have been sent,
// then the hot-key and saturation sections run on fresh servers.
// Latencies are measured around the whole handler (admission, cache,
// pool wait, profile, marshalling).
func ServeBench(clients, total int) (ServeBenchReport, error) {
	if clients <= 0 {
		clients = 32
	}
	if total <= 0 {
		total = 1000
	}
	srv := serve.New(serve.Config{
		TenantBurst:    total * 2,
		TenantRate:     float64(total), // admission never the bottleneck here
		DefaultTimeout: 2 * time.Minute,
		// Every burst request must run a real session; with the result
		// cache on, everything after warm-up would be a replay and the
		// numbers would stop being comparable across revisions.
		ResultCacheBytes: -1,
	})
	h := srv.Handler()
	rep := ServeBenchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PoolSlots:  srv.Pool().Total(),
		Clients:    clients,
		Requests:   total,
	}

	bodies := make([][]byte, len(serveBenchSources))
	for i, src := range serveBenchSources {
		b, err := json.Marshal(map[string]any{"source": src})
		if err != nil {
			return rep, err
		}
		bodies[i] = b
	}
	// Warm the cache so the measured burst reflects steady-state serving.
	for i := range bodies {
		if code, _ := fire(h, bodies[i], ""); code != http.StatusOK {
			return rep, fmt.Errorf("warm-up request %d: status %d", i, code)
		}
	}

	latencies := make([]time.Duration, total)
	outcomes := make([]int, total)
	var wg sync.WaitGroup
	next := make(chan int, total)
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i], latencies[i] = fire(h, bodies[i%len(bodies)], fmt.Sprintf("bench-%d", i%8))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var okLat []time.Duration
	for i, code := range outcomes {
		switch code {
		case http.StatusOK:
			rep.OK++
			okLat = append(okLat, latencies[i])
		case http.StatusTooManyRequests:
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	if len(okLat) == 0 {
		return rep, fmt.Errorf("no request succeeded (%d shed, %d errors)", rep.Shed, rep.Errors)
	}
	sort.Slice(okLat, func(a, b int) bool { return okLat[a] < okLat[b] })
	rep.P50Ms, rep.P95Ms, rep.P99Ms = percentile(okLat, 0.50), percentile(okLat, 0.95), percentile(okLat, 0.99)
	rep.MaxMs = float64(okLat[len(okLat)-1].Nanoseconds()) / 1e6
	var sum time.Duration
	for _, l := range okLat {
		sum += l
	}
	rep.MeanMs = float64(sum.Nanoseconds()) / 1e6 / float64(len(okLat))
	rep.WallMs = float64(wall.Nanoseconds()) / 1e6
	rep.RequestsPerSs = float64(total) / wall.Seconds()

	st := srv.Snapshot()
	rep.CacheHits, rep.CacheMisses, rep.Retries = st.CacheHits, st.CacheMisses, st.Retries

	hot, err := serveHotKey(total / 4)
	if err != nil {
		return rep, err
	}
	rep.HotKey = hot
	rep.Saturation, err = serveSaturation()
	return rep, err
}

// serveHotKey measures the result cache's repeat-request win: the same
// request issued sequentially, once forced to re-run every time
// (no_result_cache) and once served from the cache after a single warm
// run. Sequential issue keeps contention out of the comparison.
func serveHotKey(repeats int) (*ServeHotKeyReport, error) {
	if repeats < 50 {
		repeats = 50
	}
	srv := serve.New(serve.Config{
		TenantBurst:    repeats * 4,
		TenantRate:     float64(repeats * 4),
		DefaultTimeout: 2 * time.Minute,
	})
	h := srv.Handler()
	cold, err := json.Marshal(map[string]any{"source": serveBenchSources[0], "psecs": true, "no_result_cache": true})
	if err != nil {
		return nil, err
	}
	hot, err := json.Marshal(map[string]any{"source": serveBenchSources[0], "psecs": true})
	if err != nil {
		return nil, err
	}

	measure := func(body []byte) ([]time.Duration, error) {
		lat := make([]time.Duration, repeats)
		for i := range lat {
			code, d := fire(h, body, "hot")
			if code != http.StatusOK {
				return nil, fmt.Errorf("hot-key request: status %d", code)
			}
			lat[i] = d
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat, nil
	}

	coldLat, err := measure(cold)
	if err != nil {
		return nil, err
	}
	// One warm run stores the result; the hot loop then replays it.
	if code, _ := fire(h, hot, "hot"); code != http.StatusOK {
		return nil, fmt.Errorf("hot-key warm run failed")
	}
	hotLat, err := measure(hot)
	if err != nil {
		return nil, err
	}

	rep := &ServeHotKeyReport{
		Repeats:    repeats,
		ColdP50Ms:  percentile(coldLat, 0.50),
		HotP50Ms:   percentile(hotLat, 0.50),
		ResultHits: srv.Snapshot().ResultHits,
	}
	if rep.HotP50Ms > 0 {
		rep.Speedup = rep.ColdP50Ms / rep.HotP50Ms
	}
	return rep, nil
}

// saturationSteps are the offered-load levels of the sweep.
var saturationSteps = []int{1, 2, 4, 8, 16, 32, 64}

// saturationDeadline bounds each sweep request. Sessions themselves run
// ~1ms, so the deadline is effectively a cap on pool queueing: once
// offered load drives the expected wait past it, requests shed instead
// of queueing — the behavior the sweep exists to show.
const saturationDeadline = 25 * time.Millisecond

// serveSaturation steps concurrent offered load past the shed point of
// a deliberately small fixed pool: a short request deadline turns pool
// queueing into sheds, so the sweep shows where latency degrades and
// admission starts refusing instead of queueing without bound.
func serveSaturation() ([]ServeSaturationPoint, error) {
	var points []ServeSaturationPoint
	body, err := json.Marshal(map[string]any{"source": serveBenchSources[0]})
	if err != nil {
		return nil, err
	}
	for _, clients := range saturationSteps {
		srv := serve.New(serve.Config{
			PoolSlots:        4,
			DefaultTimeout:   saturationDeadline,
			TenantBurst:      1 << 20,
			TenantRate:       1 << 20,
			ResultCacheBytes: -1, // every request must contend for the pool
		})
		h := srv.Handler()
		if code, _ := fire(h, body, ""); code != http.StatusOK {
			return nil, fmt.Errorf("saturation warm-up: status %d", code)
		}

		total := 40 * clients
		latencies := make([]time.Duration, total)
		outcomes := make([]int, total)
		next := make(chan int, total)
		for i := 0; i < total; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					outcomes[i], latencies[i] = fire(h, body, fmt.Sprintf("sat-%d", i%8))
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)

		pt := ServeSaturationPoint{Clients: clients, Requests: total}
		var okLat []time.Duration
		for i, code := range outcomes {
			switch code {
			case http.StatusOK:
				pt.OK++
				okLat = append(okLat, latencies[i])
			case http.StatusTooManyRequests:
				pt.Shed++
			default:
				pt.Errors++
			}
		}
		sort.Slice(okLat, func(a, b int) bool { return okLat[a] < okLat[b] })
		pt.P50Ms, pt.P95Ms = percentile(okLat, 0.50), percentile(okLat, 0.95)
		pt.RequestsPerSec = float64(total) / wall.Seconds()
		points = append(points, pt)
	}
	return points, nil
}

// RenderServeBench formats the report as a text table.
func RenderServeBench(rep ServeBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving-layer latency (%d requests, %d clients, %d pool slots)\n",
		rep.Requests, rep.Clients, rep.PoolSlots)
	fmt.Fprintf(&sb, "%-12s %10s\n", "metric", "value")
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p50", rep.P50Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p95", rep.P95Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p99", rep.P99Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "max", rep.MaxMs)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "mean", rep.MeanMs)
	fmt.Fprintf(&sb, "%-12s %10.0f req/s\n", "throughput", rep.RequestsPerSs)
	fmt.Fprintf(&sb, "ok=%d shed=%d errors=%d cache=%d/%d retries=%d\n",
		rep.OK, rep.Shed, rep.Errors, rep.CacheHits, rep.CacheHits+rep.CacheMisses, rep.Retries)
	if rep.HotKey != nil {
		hk := rep.HotKey
		fmt.Fprintf(&sb, "\nHot-key repeats (result cache, %d repeats)\n", hk.Repeats)
		fmt.Fprintf(&sb, "%-12s %10.3f ms\n", "cold p50", hk.ColdP50Ms)
		fmt.Fprintf(&sb, "%-12s %10.3f ms\n", "hot p50", hk.HotP50Ms)
		fmt.Fprintf(&sb, "%-12s %9.1fx (result hits %d)\n", "speedup", hk.Speedup, hk.ResultHits)
	}
	if len(rep.Saturation) > 0 {
		fmt.Fprintf(&sb, "\nSaturation sweep (4 pool slots, %v deadline)\n", saturationDeadline)
		fmt.Fprintf(&sb, "%8s %8s %6s %6s %10s %10s %10s\n",
			"clients", "requests", "ok", "shed", "p50 ms", "p95 ms", "req/s")
		for _, pt := range rep.Saturation {
			fmt.Fprintf(&sb, "%8d %8d %6d %6d %10.2f %10.2f %10.0f\n",
				pt.Clients, pt.Requests, pt.OK, pt.Shed, pt.P50Ms, pt.P95Ms, pt.RequestsPerSec)
		}
	}
	return sb.String()
}

// MarshalServeBench encodes the report as indented JSON
// (BENCH_serve.json).
func MarshalServeBench(rep ServeBenchReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

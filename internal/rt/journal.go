package rt

// The replay journal is the memory the self-healing layer trades for
// recovery. It retains two kinds of pipeline input:
//
//   - each worker's raw event batch, until the sequencer has applied the
//     batch's condensed items and the derived shard ops are journaled
//     (the batch is then "acked" and its buffer recycled);
//   - every op flush routed to each shard since the start of the run,
//     stamped with a per-shard epoch.
//
// A worker panic re-condenses the retained raw batch with fresh scratch
// state; a shard panic respawns the shard with fresh FSA/accumulator
// state and replays its partition's journal from epoch one, then skips
// channel batches the replay already covered by comparing epochs.
//
// Retention is byte-budgeted, split evenly between the two halves: the
// batch half refuses batches beyond its share (a panic on an unretained
// batch takes the degrade rung), and a shard log that must evict its
// oldest entries to fit is marked incomplete — replay from a hole would
// silently fabricate state, so recovery for that shard degrades instead.
// The recover rung of the recover → degrade → truncate ladder only holds
// while the journal does.

import (
	"sync"
	"unsafe"
)

// defaultJournalBudget is the retention budget when Config.Recover is
// set and no explicit JournalBudgetBytes is given.
const defaultJournalBudget = 32 << 20

type journal struct {
	mu          sync.Mutex
	batchBudget int64 // budget for raw batches (half the total)
	shardBudget int64 // budget per shard log (the other half, split k ways)
	batchUsed   int64
	batches     map[int]*batchEntry
	shards      []shardLog
}

type batchEntry struct {
	buf   *eventBuf
	bytes int64
}

type shardLog struct {
	entries []shardEntry
	used    int64
	evicted bool // the log no longer reaches back to the start of the run
}

// shardEntry is one journaled op flush. epoch is the per-shard flush
// sequence number, also stamped on the channel batch, so a respawned
// shard can tell which in-flight batches its replay already covered.
type shardEntry struct {
	epoch uint64
	ops   []shardOp
	bytes int64
}

func newJournal(budget int64, k int) *journal {
	if k < 1 {
		k = 1
	}
	return &journal{
		batchBudget: budget / 2,
		shardBudget: budget / 2 / int64(k),
		batches:     map[int]*batchEntry{},
		shards:      make([]shardLog, k),
	}
}

// addBatch retains buf for batch idx if it fits the batch share; it
// reports whether the batch is journaled. The caller owns the refcount:
// a journaled buffer must carry one extra reference for the journal.
func (j *journal) addBatch(idx int, buf *eventBuf) bool {
	n := batchBytes(buf)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.batchUsed+n > j.batchBudget {
		return false
	}
	j.batchUsed += n
	j.batches[idx] = &batchEntry{buf: buf, bytes: n}
	return true
}

// batchRetained reports whether batch idx is still journaled.
func (j *journal) batchRetained(idx int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.batches[idx]
	return ok
}

// ackBatch drops batch idx from the journal and returns its buffer so
// the caller can release the journal's reference (nil when idx was never
// retained).
func (j *journal) ackBatch(idx int) *eventBuf {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := j.batches[idx]
	if e == nil {
		return nil
	}
	delete(j.batches, idx)
	j.batchUsed -= e.bytes
	return e.buf
}

// appendShard journals one op flush for shard sid at the given epoch,
// evicting from the front of the log while it exceeds the per-shard
// share. Eviction permanently marks the log incomplete.
func (j *journal) appendShard(sid int, epoch uint64, ops []shardOp) {
	n := opsBytes(ops)
	j.mu.Lock()
	defer j.mu.Unlock()
	log := &j.shards[sid]
	log.entries = append(log.entries, shardEntry{epoch: epoch, ops: ops, bytes: n})
	log.used += n
	for log.used > j.shardBudget && len(log.entries) > 0 {
		log.used -= log.entries[0].bytes
		log.entries[0] = shardEntry{} // release the evicted ops
		log.entries = log.entries[1:]
		log.evicted = true
	}
}

// shardEntries snapshots shard sid's log. complete reports whether the
// log still reaches back to the start of the run; an incomplete log must
// not be replayed.
func (j *journal) shardEntries(sid int) (entries []shardEntry, complete bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	log := &j.shards[sid]
	if log.evicted {
		return nil, false
	}
	entries = make([]shardEntry, len(log.entries))
	copy(entries, log.entries)
	return entries, true
}

// batchBytes and opsBytes approximate retained sizes from the struct
// footprints plus the out-of-line summary slices that dominate. Exact
// heap accounting is not worth the cycles on the fault-free path.
func batchBytes(buf *eventBuf) int64 {
	return int64(len(buf.evs))*int64(unsafe.Sizeof(Event{})) +
		int64(len(buf.cold))*int64(unsafe.Sizeof(EventCold{}))
}

func opsBytes(ops []shardOp) int64 {
	n := int64(len(ops)) * int64(unsafe.Sizeof(shardOp{}))
	for i := range ops {
		op := &ops[i]
		n += int64(len(op.sums)) * int64(unsafe.Sizeof(accSummary{}))
		n += int64(len(op.uses)) * int64(unsafe.Sizeof(useRec{}))
	}
	return n
}

// Command carmot-bench regenerates the tables and figures of the paper's
// evaluation (§5) as text, mirroring the artifact's carmot_experiments
// script.
//
// Usage:
//
//	carmot-bench [-exp all|table1|accesses|fig6|fig7|fig8|fig9|fig10|fig11|stats|rt] [-threads N] [-scalediv D]
//
// The rt experiment benchmarks the event pipeline itself across
// (workers, shards) geometries and, with -rt-out, writes the
// machine-readable BENCH_rt.json regression report.
package main

import (
	"flag"
	"fmt"
	"os"

	"carmot/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table1, accesses, fig6, fig7, fig8, fig9, fig10, fig11, stats, rt")
		threads  = flag.Int("threads", 24, "simulated thread count for Figure 6")
		scaleDiv = flag.Int("scalediv", 1, "divide benchmark input scales by this factor (faster runs)")
		rtIters  = flag.Int("rt-iters", 20, "timed pipeline runs per geometry for -exp rt")
		rtOut    = flag.String("rt-out", "", "write the -exp rt report as JSON to this file (e.g. BENCH_rt.json)")
	)
	flag.Parse()
	cfg := harness.Config{Threads: *threads, ScaleDiv: *scaleDiv}
	if err := run(*exp, cfg, *rtIters, *rtOut); err != nil {
		fmt.Fprintln(os.Stderr, "carmot-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg harness.Config, rtIters int, rtOut string) error {
	all := exp == "all"
	ran := false
	if exp == "rt" { // pipeline microbenchmark; deliberately not part of "all"
		rep, err := harness.RTBench(rtIters)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderRTBench(rep))
		if rtOut != "" {
			data, err := harness.MarshalRTBench(rep)
			if err != nil {
				return err
			}
			if err := os.WriteFile(rtOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", rtOut)
		}
		return nil
	}
	if all || exp == "table1" {
		ran = true
		fmt.Println(harness.Table1())
	}
	if all || exp == "accesses" {
		ran = true
		rows, geo, err := harness.Accesses(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderAccesses(rows, geo))
	}
	if all || exp == "fig6" {
		ran = true
		rows, err := harness.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig6(rows, cfg.Threads))
	}
	if all || exp == "fig7" {
		ran = true
		rows, err := harness.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 7: OpenMP use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "fig8" {
		ran = true
		rows, err := harness.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig8(rows))
	}
	if all || exp == "fig9" {
		ran = true
		res, err := harness.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig9(res))
	}
	if all || exp == "fig10" {
		ran = true
		rows, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 10: smart-pointer use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "fig11" {
		ran = true
		rows, err := harness.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 11: STATS use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "stats" {
		ran = true
		cmps, err := harness.CompareStats(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderStats(cmps))
	}
	if all || exp == "verify" {
		ran = true
		rows, err := harness.VerifyAll(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderVerify(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// Command carmot compiles a MiniC source file, profiles its regions of
// interest, and prints the PSEC of each ROI together with the requested
// abstraction recommendation — the workflow of §4.3: the programmer
// invokes CARMOT with the abstraction they want to apply.
//
// Usage:
//
//	carmot [flags] file.mc
//
// Examples:
//
//	carmot -use openmp prog.mc          # parallel-for recommendations
//	carmot -use smartptr -whole prog.mc # reference-cycle hunting
//	carmot -use stats -stats-rois prog.mc
//	carmot -naive prog.mc               # profile without optimizations
//	carmot -dump-ir prog.mc             # print the lowered IR
package main

import (
	"flag"
	"fmt"
	"os"

	"carmot"
	"carmot/internal/recommend"
)

func main() {
	var (
		use       = flag.String("use", "openmp", "abstraction to recommend: openmp, task, smartptr, stats")
		naive     = flag.Bool("naive", false, "profile with the naive baseline (no PSEC-specific optimizations)")
		ompROIs   = flag.Bool("omp-rois", true, "treat existing '#pragma omp parallel for'/'task' bodies as ROIs")
		statsROIs = flag.Bool("stats-rois", false, "treat '#pragma stats' regions as ROIs")
		whole     = flag.Bool("whole", false, "treat the whole program (main) as one ROI")
		dumpIR    = flag.Bool("dump-ir", false, "print the lowered IR and exit")
		dumpPSEC  = flag.Bool("psec", true, "print the PSEC of each ROI")
		run       = flag.Bool("run", false, "only execute the program (uninstrumented) and print its result")
		verify    = flag.Bool("verify", false, "verify existing omp parallel for pragmas against the PSEC (§5.1)")
		annotate  = flag.Bool("annotate", false, "print the source with the recommended pragma inserted at each loop ROI")
		asJSON    = flag.Bool("json", false, "emit the PSEC of each ROI as JSON")
		maxSteps  = flag.Int64("max-steps", 2_000_000_000, "abort after this many interpreted instructions")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: carmot [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	if err := mainErr(flag.Arg(0), *use, *naive, *ompROIs, *statsROIs, *whole, *dumpIR, *dumpPSEC, *run, *verify, *annotate, *asJSON, *maxSteps); err != nil {
		fmt.Fprintln(os.Stderr, "carmot:", err)
		os.Exit(1)
	}
}

func mainErr(path, use string, naive, ompROIs, statsROIs, whole, dumpIR, dumpPSEC, run, verify, annotate, asJSON bool, maxSteps int64) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var useCase carmot.UseCase
	switch use {
	case "openmp":
		useCase = carmot.UseOpenMP
	case "task":
		useCase = carmot.UseTask
	case "smartptr":
		useCase = carmot.UseSmartPointers
	case "stats":
		useCase = carmot.UseSTATS
	default:
		return fmt.Errorf("unknown use case %q", use)
	}
	prog, err := carmot.Compile(path, string(src), carmot.CompileOptions{
		ProfileOmpRegions:   ompROIs,
		ProfileStatsRegions: statsROIs,
		WholeProgramROI:     whole,
	})
	if err != nil {
		return err
	}
	if dumpIR {
		for _, fn := range prog.IR.Funcs {
			fmt.Print(fn.String())
		}
		return nil
	}
	if run {
		res, err := prog.Execute(os.Stdout, maxSteps)
		if err != nil {
			return err
		}
		fmt.Printf("exit=%d cycles=%d steps=%d heap=%d cells leaked=%d cells\n",
			res.Exit, res.Cycles, res.Steps, res.HeapCells, res.LeakedCells)
		return nil
	}
	if len(prog.ROIs()) == 0 {
		return fmt.Errorf("%s has no ROI; add '#pragma carmot roi' or use -whole", path)
	}
	res, err := prog.Profile(carmot.ProfileOptions{
		UseCase: useCase, Naive: naive, Stdout: os.Stdout, MaxSteps: maxSteps,
	})
	if err != nil {
		return err
	}
	if verify {
		results := prog.VerifyOmpPragmas(res)
		if len(results) == 0 {
			return fmt.Errorf("no omp parallel for pragmas to verify (compile with -omp-rois)")
		}
		ok := true
		for _, v := range results {
			fmt.Print(v.Report())
			ok = ok && v.OK()
		}
		if !ok {
			os.Exit(1)
		}
		return nil
	}
	if annotate {
		text := string(src)
		for _, roi := range prog.ROIs() {
			if roi.Loop == nil {
				continue
			}
			rec := carmot.RecommendParallelFor(res.PSECs[roi.ID], roi)
			annotated, err := recommend.AnnotateSource(text, roi, rec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "carmot: %s: %v\n", roi.Name, err)
				continue
			}
			text = annotated
			// Only the first loop ROI can be annotated against the
			// original text (insertions shift later line numbers).
			break
		}
		fmt.Println(text)
		return nil
	}
	if asJSON {
		data, err := carmot.MarshalPSECs(res.PSECs)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("%s\n", res.Plan)
	for _, roi := range prog.ROIs() {
		psec := res.PSECs[roi.ID]
		if dumpPSEC {
			fmt.Print(psec.Summary())
		}
		switch useCase {
		case carmot.UseOpenMP:
			fmt.Print(carmot.RecommendParallelFor(psec, roi).Report())
		case carmot.UseTask:
			fmt.Println(carmot.RecommendTask(psec).Pragma())
		case carmot.UseSmartPointers:
			fmt.Print(carmot.RecommendSmartPointers(psec).Report())
		case carmot.UseSTATS:
			fmt.Println(carmot.RecommendSTATS(psec).Pragma())
		}
		fmt.Println()
	}
	return nil
}

// Package faultinject provides deterministic fault-injection hooks for
// robustness tests. Production code marks interesting points with
// Fire("name"); tests install hooks at those points to force worker
// panics, slow batches, or cap exhaustion at exactly reproducible
// moments. With no hooks installed, Fire is a single atomic load, so the
// hooks cost nothing on hot paths in normal operation.
//
// Points currently wired:
//
//	rt.worker.batch  — before a worker condenses one batch
//	rt.post.apply    — before the sequencer applies one ordered item
//	rt.shard.apply   — before a shard goroutine applies one op
//	rt.post.finish   — before the postprocessor builds the PSECs
//	interp.step      — on the interpreter's periodic budget check
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	installed atomic.Int32
	mu        sync.Mutex
	hooks     = map[string]func(){}
)

// Fire invokes the hook installed at point, if any. A hook that panics
// does so on the caller's goroutine — exactly what the containment tests
// need.
func Fire(point string) {
	if installed.Load() == 0 {
		return
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Set installs fn as the hook at point; a nil fn removes the hook.
func Set(point string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	_, had := hooks[point]
	if fn == nil {
		if had {
			delete(hooks, point)
			installed.Add(-1)
		}
		return
	}
	hooks[point] = fn
	if !had {
		installed.Add(1)
	}
}

// Reset removes every installed hook. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for k := range hooks {
		delete(hooks, k)
	}
	installed.Store(0)
}

// CountdownPanic returns a hook that panics with msg on its nth
// invocation (1-based) and is a no-op on every other call.
func CountdownPanic(n int64, msg string) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == n {
			panic(msg)
		}
	}
}

// Sleep returns a hook that sleeps d on every invocation (slow-stage
// injection).
func Sleep(d time.Duration) func() {
	return func() { time.Sleep(d) }
}

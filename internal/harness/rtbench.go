// Runtime-pipeline microbenchmark (the BENCH_rt.json experiment): drives
// the §4.6 event pipeline directly — no interpreter — with the same
// deterministic workload as BenchmarkPipeline, across several
// (workers, shards) geometries, and reports machine-readable throughput,
// allocation, and shadow-state numbers for regression tracking.
package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"carmot/internal/core"
	"carmot/internal/rt"
)

// RTBenchRow is one measured pipeline geometry.
type RTBenchRow struct {
	Workers        int     `json:"workers"`
	Shards         int     `json:"shards"`
	Iterations     int     `json:"iterations"`
	EventsPerRun   int     `json:"events_per_run"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	PeakLiveCells  int64   `json:"peak_live_cells"`
}

// RTBenchReport is the full machine-readable experiment output.
type RTBenchReport struct {
	Workload   string       `json:"workload"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Rows       []RTBenchRow `json:"rows"`
}

// rtWorkload mirrors the BenchmarkPipeline schedule: nAllocs arrays of
// cells cells each, accessed in passes full sweeps per ROI invocation,
// with two access sites and two interned callstacks. Bases sit 1 MiB
// apart so the run also exercises sparse-address ownership.
type rtWorkload struct {
	nAllocs int
	cells   uint64
	invs    int
	passes  int
}

func (w rtWorkload) events() int {
	perInv := w.nAllocs * int(w.cells) * w.passes
	return w.nAllocs + w.invs*(perInv+2)
}

func (w rtWorkload) run(workers, shards int) (*core.PSEC, rt.Diagnostics) {
	r := rt.New(rt.Config{
		BatchSize: 4096,
		Workers:   workers,
		Shards:    shards,
		Profile:   rt.ProfileFull,
		Sites: []rt.SiteInfo{
			{Pos: "b.mc:5:3", Func: "f", Write: false},
			{Pos: "b.mc:6:3", Func: "f", Write: true},
		},
		ROIs: []rt.ROIMeta{{ID: 0, Name: "bench", Kind: "carmot", Pos: "b.mc:1:1"}},
	})
	cs1 := r.Callstacks().Intern([]core.Frame{{Func: "main", Pos: "b.mc:10:1"}})
	cs2 := r.Callstacks().Intern([]core.Frame{{Func: "kern", Pos: "b.mc:20:1"}})
	base := func(i int) uint64 { return 1 << 20 * uint64(i+1) }
	for i := 0; i < w.nAllocs; i++ {
		r.EmitAlloc(base(i), int64(w.cells), 0,
			&rt.AllocMeta{Kind: core.PSEHeap, Name: fmt.Sprintf("a%d", i), Pos: "b.mc:1:1"})
	}
	for inv := 0; inv < w.invs; inv++ {
		r.BeginROI(0)
		for pass := 0; pass < w.passes; pass++ {
			for i := 0; i < w.nAllocs; i++ {
				b := base(i)
				for c := uint64(0); c < w.cells; c++ {
					cs := cs1
					if c%2 == 0 {
						cs = cs2
					}
					r.EmitAccess(b+c, (int(c)+pass+inv)%3 == 0, int32(int(c)%2), cs)
				}
			}
		}
		r.EndROI(0)
	}
	psec := r.Finish()[0]
	return psec, r.Diagnostics()
}

// RTBench measures the pipeline across worker/shard geometries. iters
// runs are timed per geometry (after one warm-up run).
func RTBench(iters int) (RTBenchReport, error) {
	if iters <= 0 {
		iters = 20
	}
	w := rtWorkload{nAllocs: 16, cells: 64, invs: 8, passes: 4}
	rep := RTBenchReport{
		Workload: fmt.Sprintf("%d allocs x %d cells, %d invocations x %d passes (%d events/run), bases 1MiB apart",
			w.nAllocs, w.cells, w.invs, w.passes, w.events()),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, g := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		if _, diag := w.run(g[0], g[1]); diag.WorkerPanics+diag.PostprocessorPanics != 0 {
			return rep, fmt.Errorf("w%ds%d warm-up run recorded contained faults: %+v", g[0], g[1], diag)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		var peak int64
		for it := 0; it < iters; it++ {
			psec, diag := w.run(g[0], g[1])
			if psec == nil {
				return rep, fmt.Errorf("w%ds%d: nil PSEC", g[0], g[1])
			}
			if diag.PeakLiveCells > peak {
				peak = diag.PeakLiveCells
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ev := float64(w.events()) * float64(iters)
		rep.Rows = append(rep.Rows, RTBenchRow{
			Workers:        g[0],
			Shards:         g[1],
			Iterations:     iters,
			EventsPerRun:   w.events(),
			NsPerEvent:     float64(elapsed.Nanoseconds()) / ev,
			EventsPerSec:   ev / elapsed.Seconds(),
			AllocsPerEvent: float64(after.Mallocs-before.Mallocs) / ev,
			BytesPerEvent:  float64(after.TotalAlloc-before.TotalAlloc) / ev,
			PeakLiveCells:  peak,
		})
	}
	return rep, nil
}

// RenderRTBench formats the report as a text table.
func RenderRTBench(rep RTBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Runtime pipeline throughput (%s)\n", rep.Workload)
	fmt.Fprintf(&sb, "%-10s %12s %12s %14s %14s %10s\n",
		"geometry", "ns/event", "events/sec", "allocs/event", "bytes/event", "peakcells")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "w%d s%d%4s %12.1f %12.0f %14.4f %14.1f %10d\n",
			r.Workers, r.Shards, "", r.NsPerEvent, r.EventsPerSec,
			r.AllocsPerEvent, r.BytesPerEvent, r.PeakLiveCells)
	}
	return sb.String()
}

// MarshalRTBench encodes the report as indented JSON (BENCH_rt.json).
func MarshalRTBench(rep RTBenchReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

package carmot

import (
	"io"

	"carmot/internal/core"
	"carmot/internal/interp"
	"carmot/internal/ir"
	"carmot/internal/parexec"
	"carmot/internal/recommend"
)

// Re-exported recommendation types (§3.2).
type (
	// ParallelForRec recommends an OpenMP parallel for with attributes,
	// clone advice, and critical/ordered statements.
	ParallelForRec = recommend.ParallelFor
	// TaskRec recommends depend(in/out) clauses for an OpenMP task.
	TaskRec = recommend.Task
	// SmartPointersRec reports reference cycles and weak-pointer breaks.
	SmartPointersRec = recommend.SmartPointers
	// STATSRec classifies PSEs into the STATS Input-Output-State classes.
	STATSRec = recommend.STATSClasses
)

// RecommendParallelFor generates the parallel-for recommendation for the
// ROI the PSEC characterizes.
func RecommendParallelFor(psec *core.PSEC, roi *ir.ROI) *ParallelForRec {
	return recommend.RecommendParallelFor(psec, roi)
}

// RecommendTask generates the omp task depend clauses.
func RecommendTask(psec *core.PSEC) *TaskRec { return recommend.RecommendTask(psec) }

// RecommendSmartPointers reports reference cycles with weak-pointer
// suggestions.
func RecommendSmartPointers(psec *core.PSEC) *SmartPointersRec {
	return recommend.RecommendSmartPointers(psec)
}

// RecommendSTATS classifies PSEs into STATS classes.
func RecommendSTATS(psec *core.PSEC) *STATSRec { return recommend.RecommendSTATS(psec) }

// VerifyResult reports discrepancies between a hand-written pragma and
// the PSEC-derived recommendation (§5.1's verification mode).
type VerifyResult = recommend.VerifyResult

// VerifyOmpPragmas checks every profiled `#pragma omp parallel for`
// against its PSEC-derived recommendation. The program must have been
// compiled with ProfileOmpRegions and profiled with UseOpenMP.
func (p *Program) VerifyOmpPragmas(res *ProfileResult) map[*ir.ROI]*VerifyResult {
	out := map[*ir.ROI]*VerifyResult{}
	for _, roi := range p.IR.ROIs {
		if roi.Kind != ir.ROIOmpFor || roi.Pragma == nil {
			continue
		}
		rec := recommend.RecommendParallelFor(res.PSECs[roi.ID], roi)
		ctx := recommend.VerifyContext{}
		if roi.Loop != nil {
			ctx.DeclaredInLoop = recommend.DeclaredInLoop(roi.Loop.For)
			ctx.HasCriticalInside = recommend.HasCriticalInside(roi.Loop.For)
		}
		out[roi] = recommend.VerifyParallelFor(rec, roi.Pragma, ctx)
	}
	return out
}

// SimResult is a simulated multicore execution.
type SimResult = parexec.Result

// SimulateSerial measures the uninstrumented serial execution (the
// Figure 6 baseline).
func (p *Program) SimulateSerial(stdout io.Writer, maxSteps int64) (*SimResult, error) {
	plan := &parexec.Plan{Threads: 1}
	return p.simulate(plan, stdout, maxSteps)
}

// SimulateOriginal models the benchmark's own parallelism (its omp
// pragmas, or the pthread-style sections) on the given thread count.
func (p *Program) SimulateOriginal(threads int, stdout io.Writer, maxSteps int64) (*SimResult, error) {
	return p.simulate(parexec.OriginalPlan(p.IR, threads), stdout, maxSteps)
}

// SimulateCarmot models the parallelism CARMOT's recommendations induce:
// each recommended loop runs parallel with its recommended critical
// statements serialized; abstractions CARMOT does not generate (parallel
// sections with barriers/master) stay serial.
func (p *Program) SimulateCarmot(threads int, recs map[*ir.ROI]*ParallelForRec, stdout io.Writer, maxSteps int64) (*SimResult, error) {
	return p.simulate(parexec.CarmotPlan(p.IR, threads, recs), stdout, maxSteps)
}

func (p *Program) simulate(plan *parexec.Plan, stdout io.Writer, maxSteps int64) (*SimResult, error) {
	// Simulation runs uninstrumented: production inputs, no profiling.
	if _, err := instrumentOff(p); err != nil {
		return nil, err
	}
	return parexec.Simulate(p.IR, plan, interp.Options{Stdout: stdout, MaxSteps: maxSteps})
}

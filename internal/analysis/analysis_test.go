package analysis_test

import (
	"testing"

	"carmot/internal/analysis"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
)

func compile(t *testing.T, src string, opts lower.Options) *ir.Program {
	t.Helper()
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	prog, err := lower.Lower(f, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func TestDominators(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 4; i++) {
		if (i % 2 == 0) {
			s += i;
		} else {
			s -= 1;
		}
	}
	return s;
}`, lower.Options{})
	fn := prog.FuncByName("main")
	ir.ComputeCFG(fn)
	dom := analysis.ComputeDominators(fn)
	entry := fn.Entry()
	for _, b := range fn.Blocks {
		if len(b.Preds) == 0 && b != entry {
			continue // unreachable
		}
		if !dom.Dominates(entry, b) {
			t.Errorf("entry must dominate %s", b.Label)
		}
	}
	// The loop condition block dominates the body blocks.
	var cond, then *ir.Block
	for _, b := range fn.Blocks {
		switch {
		case b.Label[:3] == "for" && b.Label[4] == 'c':
			cond = b
		case len(b.Label) >= 4 && b.Label[:4] == "then":
			then = b
		}
	}
	if cond == nil || then == nil {
		t.Fatalf("blocks not found: %v %v", cond, then)
	}
	if !dom.Dominates(cond, then) {
		t.Error("loop condition should dominate the then branch")
	}
	if dom.Dominates(then, cond) {
		t.Error("then branch must not dominate the loop condition")
	}
	if dom.Idom(entry) != nil {
		t.Error("entry has no immediate dominator")
	}
}

const roiSrc = `
int main() {
	int s = 0;
	int t = 0;
	for (int i = 0; i < 8; i++) {
		#pragma carmot roi body
		{
			s = s + i;
			if (i > 4) {
				t = t + 2;
			}
		}
	}
	return s + t;
}`

func TestROIRegion(t *testing.T) {
	prog := compile(t, roiSrc, lower.Options{})
	if len(prog.ROIs) != 1 {
		t.Fatalf("want 1 ROI, got %d", len(prog.ROIs))
	}
	region := analysis.ComputeROIRegion(prog.ROIs[0])
	if region.Begin == nil {
		t.Fatal("no begin marker")
	}
	if len(region.Ends) == 0 {
		t.Fatal("no end markers")
	}
	// Every in-region instruction's membership agrees with Contains.
	count := 0
	region.Instructions(func(in ir.Instr) bool {
		if !region.Contains(in) {
			t.Errorf("iterated instruction %s not Contains()", in.Mnemonic())
		}
		count++
		return true
	})
	if count == 0 {
		t.Fatal("empty region")
	}
	// Statements outside the pragma (the loop post i++) are not inside.
	fn := prog.FuncByName("main")
	fn.Instructions(func(in ir.Instr) bool {
		if st, ok := in.(*ir.Store); ok && st.Sym != nil && st.Sym.Name == "i" && region.Contains(in) {
			t.Error("the loop post-increment is outside the ROI")
		}
		return true
	})
}

func TestROIRegionWithEarlyExit(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		#pragma carmot roi body
		{
			s = s + i;
			if (s > 6) { break; }
			s = s + 1;
		}
	}
	return s;
}`, lower.Options{})
	region := analysis.ComputeROIRegion(prog.ROIs[0])
	if len(region.Ends) < 2 {
		t.Errorf("break path should add a second static ROI end, got %d", len(region.Ends))
	}
}

func TestPointsToIndirectCalls(t *testing.T) {
	prog := compile(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(fnptr f, int v) { return f(v); }
int main() {
	fnptr g = inc;
	int a = apply(g, 1);
	int b = apply(dec, 2);
	return a + b;
}`, lower.Options{})
	pt := analysis.ComputePointsTo(prog)
	var indirect *ir.Call
	prog.FuncByName("apply").Instructions(func(in ir.Instr) bool {
		if c, ok := in.(*ir.Call); ok && c.DirectTarget() == nil {
			indirect = c
		}
		return true
	})
	if indirect == nil {
		t.Fatal("no indirect call found in apply")
	}
	funcs, _ := pt.IndirectCallees(indirect)
	names := map[string]bool{}
	for _, f := range funcs {
		names[f.Name] = true
	}
	if !names["inc"] || !names["dec"] {
		t.Errorf("indirect callees = %v, want inc and dec", names)
	}
	if names["apply"] || names["main"] {
		t.Errorf("over-approximated callees: %v", names)
	}
}

func TestPointsToMayAlias(t *testing.T) {
	prog := compile(t, `
int main() {
	int* a = malloc(4);
	int* b = malloc(4);
	int* c = a;
	a[0] = 1;
	b[0] = 2;
	c[1] = 3;
	return a[1];
}`, lower.Options{})
	pt := analysis.ComputePointsTo(prog)
	var geps []*ir.GEP
	prog.FuncByName("main").Instructions(func(in ir.Instr) bool {
		if g, ok := in.(*ir.GEP); ok {
			geps = append(geps, g)
		}
		return true
	})
	if len(geps) < 4 {
		t.Fatalf("want >=4 GEPs, got %d", len(geps))
	}
	aGep, bGep, cGep := geps[0], geps[1], geps[2]
	if pt.MayAlias(aGep, bGep) {
		t.Error("distinct mallocs should not alias")
	}
	if !pt.MayAlias(aGep, cGep) {
		t.Error("c copies a: their element addresses may alias")
	}
}

const cgSrc = `
extern int memcpy_cells(int* dst, int* src, int n);
extern float sqrt(float x);
int helper(int* p) { memcpy_cells(p, p, 1); return p[0]; }
float pure(float x) { return sqrt(x) + 1.0; }
int untouched() { return 3; }
int main() {
	int* buf = malloc(4);
	int s = 0;
	#pragma carmot roi hot
	for (int i = 0; i < 4; i++) {
		s = s + helper(buf);
	}
	float unused = pure(2.0);
	return s + unused + untouched();
}`

func TestCallGraph(t *testing.T) {
	prog := compile(t, cgSrc, lower.Options{})
	pt := analysis.ComputePointsTo(prog)
	cg := analysis.ComputeCallGraph(prog, pt)

	onStack := cg.OnStackAtROIStart()
	if !onStack[prog.FuncByName("main")] {
		t.Error("main is on the stack when the ROI starts")
	}
	if onStack[prog.FuncByName("helper")] || onStack[prog.FuncByName("pure")] {
		t.Error("helper/pure cannot be on the stack at ROI start")
	}

	reach := cg.ReachableWithinROI(analysis.ComputeROIRegions(prog))
	if !reach[prog.FuncByName("main")] || !reach[prog.FuncByName("helper")] {
		t.Error("main and helper execute within the ROI")
	}
	if reach[prog.FuncByName("pure")] || reach[prog.FuncByName("untouched")] {
		t.Error("pure/untouched never run inside the ROI")
	}

	mayPin := cg.MayReachPrecompiled()
	if !mayPin[prog.FuncByName("helper")] || !mayPin[prog.FuncByName("main")] {
		t.Error("helper (and transitively main) reach memcpy_cells")
	}
	if mayPin[prog.FuncByName("pure")] {
		t.Error("sqrt does not access memory; pure needs no Pin")
	}

	// Per-call gating.
	prog.FuncByName("main").Instructions(func(in ir.Instr) bool {
		c, ok := in.(*ir.Call)
		if !ok {
			return true
		}
		target := c.DirectTarget()
		if target == nil || target.Func == nil {
			return true
		}
		needs := cg.CallNeedsPin(c, mayPin)
		switch target.Func.Name {
		case "helper":
			if !needs {
				t.Error("call to helper needs Pin")
			}
		case "pure", "untouched":
			if needs {
				t.Errorf("call to %s should not need Pin", target.Func.Name)
			}
		}
		return true
	})

	if callers := cg.Callers(prog.FuncByName("helper")); len(callers) != 1 || callers[0].Name != "main" {
		t.Errorf("helper callers = %v", callers)
	}
}

func TestMustAccessDataflow(t *testing.T) {
	prog := compile(t, `
int main() {
	int a = 1;
	int b = 2;
	int s = 0;
	for (int i = 0; i < 4; i++) {
		#pragma carmot roi body
		{
			s = a + b;     // first loads of a and b; first store of s
			s = s + a;     // redundant load of a, load of s (first), redundant store of s
			if (i > 1) {
				b = b + 1; // load b redundant, store b first (write after read-only)
			}
		}
	}
	return s;
}`, lower.Options{})
	region := analysis.ComputeROIRegion(prog.ROIs[0])
	ma := analysis.ComputeMustAccess(region)

	type key struct {
		name  string
		write bool
	}
	redundant := map[key]int{}
	total := map[key]int{}
	region.Instructions(func(in ir.Instr) bool {
		switch x := in.(type) {
		case *ir.Load:
			if x.Sym != nil {
				total[key{x.Sym.Name, false}]++
				if ma.Redundant[in] {
					redundant[key{x.Sym.Name, false}]++
				}
			}
		case *ir.Store:
			if x.Sym != nil {
				total[key{x.Sym.Name, true}]++
				if ma.Redundant[in] {
					redundant[key{x.Sym.Name, true}]++
				}
			}
		}
		return true
	})
	if redundant[key{"a", false}] != 1 {
		t.Errorf("second load of a should be redundant: %v of %v", redundant[key{"a", false}], total[key{"a", false}])
	}
	if redundant[key{"s", true}] != 1 {
		t.Errorf("second store of s should be redundant: %v", redundant[key{"s", true}])
	}
	if redundant[key{"b", true}] != 0 {
		t.Errorf("store to b after read-only history must stay instrumented (I→IO)")
	}
	if redundant[key{"b", false}] != 1 {
		t.Errorf("conditioned load of b follows a guaranteed earlier load: %v", redundant[key{"b", false}])
	}
	if redundant[key{"s", false}] != 1 {
		t.Errorf("the load of s follows a guaranteed store of s; redundant (reads after the first access never change the FSA)")
	}
}

func TestMustAccessBranchIntersection(t *testing.T) {
	// An access that happened on only one path must not be treated as
	// already-seen after the join.
	prog := compile(t, `
int main() {
	int a = 1;
	int s = 0;
	for (int i = 0; i < 4; i++) {
		#pragma carmot roi body
		{
			if (i % 2 == 0) {
				s = a;
			}
			s = s + a;
		}
	}
	return s;
}`, lower.Options{})
	region := analysis.ComputeROIRegion(prog.ROIs[0])
	ma := analysis.ComputeMustAccess(region)
	loads := 0
	redundantLoads := 0
	region.Instructions(func(in ir.Instr) bool {
		if ld, ok := in.(*ir.Load); ok && ld.Sym != nil && ld.Sym.Name == "a" {
			loads++
			if ma.Redundant[in] {
				redundantLoads++
			}
		}
		return true
	})
	if loads != 2 {
		t.Fatalf("want 2 loads of a, got %d", loads)
	}
	if redundantLoads != 0 {
		t.Error("the post-join load of a is only redundant on one path; must-analysis must keep it")
	}
}

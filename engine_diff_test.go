package carmot

import (
	"bytes"
	"reflect"
	"testing"

	"carmot/internal/bench"
	"carmot/internal/interp"
)

// engineConfigs is every execution-engine configuration a profiling run
// can select: both engines, with and without producer-side coalescing.
// The first entry is the differential oracle — the tree-walker with the
// combining buffer off, i.e. the simplest possible execution path.
var engineConfigs = []struct {
	name     string
	engine   interp.Engine
	coalesce bool
	nofuse   bool
}{
	{"tree", EngineTree, false, false},
	{"tree+coalesce", EngineTree, true, false},
	{"bytecode", EngineBytecode, false, false},
	{"bytecode-nofuse", EngineBytecode, false, true},
	{"bytecode+coalesce", EngineBytecode, true, false},
}

// profileWith runs one configuration and flattens the result into
// comparable pieces: marshalled PSEC bytes, the run summary, the
// diagnostics, and the error text ("" when nil).
func profileWith(t *testing.T, prog *Program, opts ProfileOptions,
	engine interp.Engine, coalesce, nofuse bool) ([]byte, *interp.Result, Diagnostics, string) {
	t.Helper()
	opts.Engine = engine
	opts.NoCoalesce = !coalesce
	opts.NoFuse = nofuse
	res, err := prog.Profile(opts)
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	if res == nil {
		return nil, nil, Diagnostics{}, errText
	}
	psecs, merr := MarshalPSECs(res.PSECs)
	if merr != nil {
		t.Fatalf("marshal: %v", merr)
	}
	return psecs, res.Run, res.Diagnostics, errText
}

// assertConfigsAgree profiles prog under every engine configuration and
// requires byte-identical PSECs plus identical run summaries (cycles,
// tool cycles, steps, accesses — the full Result), diagnostics, and
// error text. This is the engine-equivalence contract: the bytecode
// engine and the combining buffer are pure performance artifacts.
func assertConfigsAgree(t *testing.T, prog *Program, opts ProfileOptions) {
	t.Helper()
	refPSEC, refRun, refDiag, refErr := profileWith(t, prog, opts, EngineTree, false, false)
	for _, cfg := range engineConfigs[1:] {
		psecs, run, diag, errText := profileWith(t, prog, opts, cfg.engine, cfg.coalesce, cfg.nofuse)
		if errText != refErr {
			t.Fatalf("%s: error %q, oracle %q", cfg.name, errText, refErr)
		}
		if !bytes.Equal(psecs, refPSEC) {
			t.Fatalf("%s: PSECs differ from tree-walking oracle\noracle:\n%s\ngot:\n%s",
				cfg.name, refPSEC, psecs)
		}
		if (run == nil) != (refRun == nil) || (run != nil && !reflect.DeepEqual(*run, *refRun)) {
			t.Fatalf("%s: run summary differs\noracle: %+v\ngot:    %+v", cfg.name, refRun, run)
		}
		if !reflect.DeepEqual(diag, refDiag) {
			t.Fatalf("%s: diagnostics differ\noracle: %+v\ngot:    %+v", cfg.name, refDiag, diag)
		}
	}
}

// TestEngineDifferentialBenchCorpus runs every §5 benchmark program
// through all four engine configurations under the OpenMP use case and
// requires complete agreement with the tree-walking oracle.
func TestEngineDifferentialBenchCorpus(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Name+".mc", b.Source(b.DevScale/4+8), CompileOptions{ProfileOmpRegions: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP})
		})
	}
}

// TestEngineDifferentialUseCases pins engine equivalence across every
// tracking profile (Table 1 decides what the runtime records, so each
// use case exercises a different mix of emit paths), plus the naive
// cost model.
func TestEngineDifferentialUseCases(t *testing.T) {
	b, err := bench.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile("cg.mc", b.Source(40), CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, uc := range []UseCase{UseOpenMP, UseTask, UseSmartPointers, UseSTATS, UseFull} {
		assertConfigsAgree(t, prog, ProfileOptions{UseCase: uc})
	}
	assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP, Naive: true})
}

// TestEngineDifferentialStatsWorkloads covers the #pragma stats corpus,
// whose fixed/ranged event mix differs from the OpenMP benchmarks.
func TestEngineDifferentialStatsWorkloads(t *testing.T) {
	for _, b := range bench.StatsWorkloads() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Name+".mc", b.Source(b.DevScale), CompileOptions{ProfileStatsRegions: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseSTATS})
		})
	}
}

// TestEngineDifferentialBudgets checks that truncation behaves
// identically: a step budget must cut both engines at the same step with
// the same partial PSECs and the same diagnostics.
func TestEngineDifferentialBudgets(t *testing.T) {
	b, err := bench.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile("cg.mc", b.Source(40), CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP, MaxSteps: 20_000})
	assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP, MaxEvents: 500})
}

// TestEngineDifferentialCoalesceGate crosses the combining buffer's
// adaptive gate in both directions: a site-alternating program whose
// tracked accesses never merge (the gate switches the buffer off
// mid-run) and a sweep-heavy program that merges throughout (the gate
// stays on). Both must agree with the oracle byte for byte — the gate
// decision may change the wire format, never the PSECs.
func TestEngineDifferentialCoalesceGate(t *testing.T) {
	srcs := map[string]string{
		// Three distinct tracked array sites per iteration, so no run ever
		// extends; > 8192 tracked accesses, so the probe window closes and
		// the gate fires while the run is still going.
		"alternating": `int a[64];
int b[64];
int main() {
	int s = 0;
	#pragma carmot roi alt
	for (int i = 0; i < 4000; i++) {
		a[i % 64] = a[i % 64] + b[(i * 7) % 64];
		s = s + a[(i * 3) % 64];
	}
	return s % 256;
}`,
		// One store site sweeping stride-1 through a large array, repeated
		// past the probe window: runs merge for the whole execution.
		"sweeping": `int a[4096];
int main() {
	int s = 0;
	#pragma carmot roi sweep
	for (int pass = 0; pass < 5; pass++) {
		for (int i = 0; i < 4096; i++) {
			a[i] = pass + i;
		}
		s = s + a[pass];
	}
	return s % 256;
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := Compile("gate.mc", src, CompileOptions{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP})
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseFull})
		})
	}
}

// TestEngineDifferentialRuntimeFaults pins identical runtime-error text:
// the bytecode engine must reproduce the tree-walker's diagnostics for
// faulting programs, not just for clean ones.
func TestEngineDifferentialRuntimeFaults(t *testing.T) {
	srcs := map[string]string{
		"null deref": `int main() { int* p; return p[0]; }`,
		"bad store":  `int main() { int* p; p[3] = 1; return 0; }`,
		"stack overflow": `int f(int n) { int buf[4096]; buf[0] = n; return f(n + 1); }
int main() { return f(0); }`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := Compile("fault.mc", src, CompileOptions{WholeProgramROI: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP})
		})
	}
}

// TestEngineDifferentialInlineCacheFlips drives an indirect call site
// through alternating callees — the worst case for the monomorphic
// inline cache, which must invalidate and re-resolve on every flip — and
// through a long monomorphic stretch followed by a late flip. Both must
// agree with the oracle exactly; a stale cache would call the wrong
// function and diverge immediately.
func TestEngineDifferentialInlineCacheFlips(t *testing.T) {
	srcs := map[string]string{
		"alternating callees": `int inc(int x) { return x + 1; }
int dbl(int x) { return x + x; }
int main() {
	fnptr f = inc;
	int s = 0;
	for (int i = 0; i < 32; i++) {
		if (i - (i / 2) * 2 == 0) { f = inc; } else { f = dbl; }
		s = s + f(i);
	}
	return s;
}`,
		"late flip after monomorphic stretch": `int inc(int x) { return x + 1; }
int dbl(int x) { return x + x; }
int main() {
	fnptr f = inc;
	int s = 0;
	for (int i = 0; i < 64; i++) {
		if (i == 60) { f = dbl; }
		s = s + f(i);
	}
	return s;
}`,
		"flip to faulting null": `int inc(int x) { return x + 1; }
int main() {
	fnptr f = inc;
	int s = 0;
	for (int i = 0; i < 8; i++) {
		if (i == 5) { f = 0; }
		s = s + f(i);
	}
	return s;
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := Compile("ic.mc", src, CompileOptions{WholeProgramROI: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP})
		})
	}
}

// TestEngineDifferentialSuperinstructionShapes covers the program shapes
// the peephole pass rewrites most aggressively — compare+branch chains,
// dense index+load loops, untracked-region loop bodies with store+jmp
// bottoms — across every engine configuration including the unfused
// bytecode stream.
func TestEngineDifferentialSuperinstructionShapes(t *testing.T) {
	srcs := map[string]string{
		"compare chains": `int main() {
	int a = 3; int b = 7; int n = 0;
	while (a < b) {
		if (a == n) { n = n + 2; }
		if (a != b) { a = a + 1; }
		if (n <= a) { n = n + 1; }
	}
	return n;
}`,
		"dense index loads": `int N = 64;
int* idx;
int* data;
int main() {
	idx = malloc(N);
	data = malloc(N);
	for (int i = 0; i < N; i++) { idx[i] = (i * 7) % 64; data[i] = i; }
	int s = 0;
	#pragma carmot roi gather
	for (int i = 0; i < N; i++) { s = s + data[idx[i]]; }
	return s;
}`,
		"untracked loop body": `int main() {
	int acc = 0;
	int i = 0;
	while (i < 500) {
		acc = acc + i * 3;
		i = i + 1;
	}
	return acc;
}`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			prog, err := Compile("fuse.mc", src, CompileOptions{WholeProgramROI: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			assertConfigsAgree(t, prog, ProfileOptions{UseCase: UseOpenMP})
		})
	}
}

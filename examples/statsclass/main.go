// Statsclass: the §5.3 STATS use case. The program's state-dependence
// region carries a manual Input-Output-State annotation; CARMOT derives
// the same classes automatically from the PSEC and flags the manual
// misclassification (a read-only value annotated as state, which would
// cost an unnecessary copy per invocation).
//
// Run with: go run ./examples/statsclass
package main

import (
	"fmt"
	"log"

	"carmot"
)

const source = `
extern int rand_seed(int s);
extern float rand_float();

int N = 256;
float* data;
float threshold = 0.5;
float level = 1.0;
int hits = 0;

void init() {
	data = malloc(N);
	rand_seed(9);
	for (int j = 0; j < N; j++) {
		data[j] = rand_float();
	}
}

void step() {
	// The "authors" annotated threshold as state, but it is only read.
	#pragma stats input(data) output(hits) state(level, threshold)
	{
		int h = 0;
		for (int i = 0; i < N; i++) {
			if (data[i] * level > threshold) {
				h = h + 1;
			}
		}
		hits = h;
		level = level * 0.97;
	}
}

int main() {
	init();
	for (int it = 0; it < 5; it++) {
		step();
	}
	return hits;
}
`

func main() {
	prog, err := carmot.Compile("stats.mc", source, carmot.CompileOptions{ProfileStatsRegions: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseSTATS})
	if err != nil {
		log.Fatal(err)
	}
	roi := prog.ROIs()[0]
	psec := res.PSECs[roi.ID]
	auto := carmot.RecommendSTATS(psec)

	fmt.Println("manual annotation:", "#pragma stats input(data) output(hits) state(level, threshold)")
	fmt.Println("CARMOT derives:   ", auto.Pragma())
	fmt.Println()
	inState := false
	for _, n := range auto.State {
		if n == "threshold" {
			inState = true
		}
	}
	if !inState {
		fmt.Println("misclassification found: 'threshold' is only read (Input), not State —")
		fmt.Println("the manual annotation costs an unnecessary per-invocation copy (§5.3).")
	}
}

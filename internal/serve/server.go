// Package serve is carmotd's serving layer: a multi-tenant
// profiling-as-a-service front end over the carmot library. It
// multiplexes N concurrent profile sessions over one shared rt.Pool,
// reuses compiled programs through a content-addressed cache, bounds
// every request with a deadline propagated into the interpreter and
// runtime, sheds excess per-tenant load with token buckets, retries
// sessions that lost data to pipeline faults, and degrades fidelity —
// coalesce harder, shrink the replay journal, then truncate — as pool
// load climbs.
//
// Failure model, mirroring the CLI's exit codes on the wire:
//
//	200 — the profile completed; body exit_code 0 (clean), 1 (program
//	      fault), or 3 (budget/deadline truncation, partial PSECs)
//	400 — malformed request (bad JSON, unknown use case)
//	422 — the source does not compile, or has no ROI
//	429 — admission control shed the request (token bucket or pool
//	      deadline); retry_after_ms hints the backoff
//	503 — the server is draining
//	500 — the profile lost data and retries ran out
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"carmot"
	"carmot/internal/rt"
	"carmot/internal/wire"
)

// TenantHeader names the header carrying the tenant identity; absent
// means the shared "anonymous" bucket.
const TenantHeader = "X-Carmot-Tenant"

// Config tunes the serving layer. Zero values mean the documented
// defaults.
type Config struct {
	// PoolSlots is the machine-wide pipeline slot budget shared by all
	// sessions (default 4×GOMAXPROCS).
	PoolSlots int
	// SessionWorkers is how many workers each session asks the pool for
	// (default 2); under contention a session may be granted as little
	// as one.
	SessionWorkers int
	// TenantRate / TenantBurst shape each tenant's token bucket
	// (default 50 requests/second, burst 100).
	TenantRate  float64
	TenantBurst int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout applies when a request carries no timeout_ms;
	// MaxTimeout caps what a request may ask for (defaults 10s / 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRetries bounds re-runs of sessions that came back degraded
	// (default 2, i.e. up to 3 attempts). RetryBase/RetryCap shape the
	// exponential backoff between attempts (defaults 25ms / 500ms).
	MaxRetries int
	RetryBase  time.Duration
	RetryCap   time.Duration
	// LoadSoft / LoadHard are the pool-load thresholds of the
	// degradation ladder (defaults 0.5 / 0.85): at soft, sessions run
	// with forced coalescing and a shrunken replay journal; at hard,
	// journal retention stops and an event cap truncates runaway runs.
	LoadSoft float64
	LoadHard float64
	// JournalSoft is the shrunken replay-journal budget at the soft
	// rung (default 4 MiB). HardMaxEvents is the event cap imposed at
	// the hard rung (default 2M).
	JournalSoft   int64
	HardMaxEvents uint64
	// CacheCapacity bounds the compiled-program cache (default 64).
	CacheCapacity int
	// ResultCacheBytes is the byte budget of the PSEC result cache —
	// wire-encoded response bodies keyed by (program hash, compile- and
	// profile-option fingerprints) — replayed verbatim for identical
	// repeated requests. 0 means the 64 MiB default; negative disables
	// the cache entirely (every request runs, as does the per-request
	// no_result_cache knob).
	ResultCacheBytes int64
	// StreamInterval is the minimum gap between progress events on a
	// streaming response (0 = 100ms default; negative emits every batch
	// boundary — tests). Degradation transitions bypass the throttle.
	StreamInterval time.Duration
	// Now overrides the clock for admission-control tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.PoolSlots <= 0 {
		c.PoolSlots = 4 * runtime.GOMAXPROCS(0)
	}
	if c.SessionWorkers <= 0 {
		c.SessionWorkers = 2
	}
	if c.TenantRate <= 0 {
		c.TenantRate = 50
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 100
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Minute
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 500 * time.Millisecond
	}
	if c.LoadSoft <= 0 {
		c.LoadSoft = 0.5
	}
	if c.LoadHard <= 0 {
		c.LoadHard = 0.85
	}
	if c.JournalSoft == 0 {
		c.JournalSoft = 4 << 20
	}
	if c.HardMaxEvents == 0 {
		c.HardMaxEvents = 2_000_000
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	return c
}

// Server is one carmotd instance.
type Server struct {
	cfg     Config
	pool    *rt.Pool
	cache   *programCache
	results *resultCache // nil when ResultCacheBytes < 0
	adm     *admission

	// drainMu guards the draining flag against racing session starts:
	// request paths hold it shared while registering with inflight, so
	// Drain's exclusive section is a clean cut — every session is either
	// registered (and will be waited for) or sees draining set.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	requests     atomic.Uint64
	completed    atomic.Uint64
	shed         atomic.Uint64
	retries      atomic.Uint64
	degraded     atomic.Uint64 // responses that exhausted retries
	resultBypass atomic.Uint64 // requests that opted out of the result cache
	uncacheable  atomic.Uint64 // completed sessions whose result could not be cached
}

// New creates a server; callers own the http.Server wrapping Handler.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		pool:  rt.NewPool(cfg.PoolSlots),
		cache: newProgramCache(cfg.CacheCapacity),
		adm:   newAdmission(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
	}
	if cfg.ResultCacheBytes > 0 {
		s.results = newResultCache(cfg.ResultCacheBytes)
	}
	return s
}

// Pool exposes the shared slot pool (load tests and stats).
func (s *Server) Pool() *rt.Pool { return s.pool }

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/profile", s.handleProfile)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	return mux
}

// Drain stops admitting new sessions and waits for in-flight ones.
// Safe to call once; pair with http.Server.Shutdown for a full
// graceful stop (Shutdown stops the listener, Drain stops admissions
// for connections that are already established).
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// beginSession registers one in-flight session unless the server is
// draining. The returned release must be called exactly once.
func (s *Server) beginSession() (release func(), ok bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, true
}

// profileRequest is the /v1/profile body.
type profileRequest struct {
	Filename string `json:"filename"`
	Source   string `json:"source"`
	// Use selects the recommendation target: openmp (default), task,
	// smartptr, stats.
	Use string `json:"use"`
	// ROI selection, mirroring the CLI flags. omp_rois defaults true.
	OmpROIs   *bool `json:"omp_rois"`
	StatsROIs bool  `json:"stats_rois"`
	Whole     bool  `json:"whole"`
	Naive     bool  `json:"naive"`
	// TimeoutMs bounds the session (0 = server default, capped at the
	// server max). The deadline propagates into the interpreter and
	// runtime; breaching it truncates the profile (exit_code 3).
	TimeoutMs int64 `json:"timeout_ms"`
	// Budgets, 0 = unlimited (the load-shed ladder may tighten them).
	MaxSteps  int64  `json:"max_steps"`
	MaxEvents uint64 `json:"max_events"`
	MaxCells  int64  `json:"max_cells"`
	// PSECs includes the per-ROI characterizations in the response;
	// Reports includes the human-readable recommendation per ROI.
	PSECs   bool `json:"psecs"`
	Reports bool `json:"reports"`
	// Stream switches the response to chunked NDJSON progress events
	// (equivalent to the ?stream=1 query parameter): compile done,
	// periodic pipeline volume, degradation transitions, retry attempts,
	// then one terminal result event. See wire.StreamEvent.
	Stream bool `json:"stream"`
	// NoResultCache bypasses the PSEC result cache for this request:
	// the session always runs, and its result is not stored.
	NoResultCache bool `json:"no_result_cache"`
}

// profileResponse is the /v1/profile body: the shared wire.Summary
// triage document plus serving-layer context.
type profileResponse struct {
	wire.Summary
	// CacheHit reports whether the compiled program was reused.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Workers is the granted session geometry (may be below the ask
	// under load). DegradeLevel is the ladder rung the session ran at.
	Workers      int `json:"workers,omitempty"`
	DegradeLevel int `json:"degrade_level,omitempty"`
	// Stdout is the program's output, capped at 64 KiB.
	Stdout  string          `json:"stdout,omitempty"`
	PSECs   json.RawMessage `json:"psecs,omitempty"`
	Reports []string        `json:"reports,omitempty"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.reply(w, http.StatusMethodNotAllowed, &profileResponse{Summary: wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: "POST required"}})
		return
	}
	release, ok := s.beginSession()
	if !ok {
		s.reply(w, http.StatusServiceUnavailable, &profileResponse{Summary: wire.Summary{
			ExitCode: 2, Kind: wire.KindDraining, Error: "server is draining",
			RetryAfterMs: 1000}})
		return
	}
	defer release()

	var req profileRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.reply(w, http.StatusBadRequest, &profileResponse{Summary: wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: "bad request body: " + err.Error()}})
		return
	}
	useCase, err := parseUseCase(req.Use)
	if err != nil {
		s.reply(w, http.StatusBadRequest, &profileResponse{Summary: wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: err.Error()}})
		return
	}
	if req.Source == "" {
		s.reply(w, http.StatusBadRequest, &profileResponse{Summary: wire.Summary{
			ExitCode: 2, Kind: wire.KindUsage, Error: "empty source"}})
		return
	}

	// Per-tenant admission: one token per request, shed on empty.
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	if ok, retryAfter := s.adm.admit(tenant); !ok {
		s.shed.Add(1)
		s.shedReply(w, retryAfter, fmt.Sprintf("tenant %q over admission rate", tenant))
		return
	}

	streaming := req.Stream || r.URL.Query().Get("stream") == "1"
	filename := req.Filename
	if filename == "" {
		filename = "request.mc"
	}
	copts := carmot.CompileOptions{
		ProfileOmpRegions:   req.OmpROIs == nil || *req.OmpROIs,
		ProfileStatsRegions: req.StatsROIs,
		WholeProgramROI:     req.Whole,
	}
	progKey := cacheKey(filename, req.Source, copts)

	// Deadline: the whole session — result-flight wait, compile, pool
	// wait, every attempt, backoff — runs under one context derived from
	// the client connection.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// PSEC result cache: an identical completed request replays the
	// stored wire bytes instead of running anything, and N identical
	// concurrent requests run once (singleflight). Responses carry the
	// lookup outcome in the X-Carmot-Result-Cache header — never in the
	// body, which stays byte-identical to the originally computed one.
	var flight *resultFlight
	var rkey string
	var cachedBody []byte // settled into the flight on every exit path
	switch {
	case s.results == nil || req.NoResultCache:
		s.resultBypass.Add(1)
		w.Header().Set(ResultCacheHeader, "bypass")
	default:
		rkey = resultKey(progKey, useCase, &req)
		if body, ok := s.results.lookup(rkey); ok {
			s.replyCached(w, body, streaming, "hit")
			return
		}
		fl, leader := s.results.flight(rkey)
		if !leader {
			select {
			case <-fl.done:
				if fl.body != nil {
					s.replyCached(w, fl.body, streaming, "join")
					return
				}
				// The leader's result was not cacheable (degraded, faulted,
				// or truncated); run our own session.
			case <-ctx.Done():
				s.shed.Add(1)
				s.shedReply(w, s.cfg.RetryBase, "deadline expired joining an identical in-flight request")
				return
			}
		} else {
			flight = fl
			defer func() { s.results.settle(rkey, flight, cachedBody) }()
		}
		w.Header().Set(ResultCacheHeader, "miss")
	}

	// Compile through the content-addressed cache.
	entry, hit := s.cache.get(progKey, func() (*carmot.Program, error) {
		return carmot.Compile(filename, req.Source, copts)
	})
	if entry.err != nil {
		s.reply(w, http.StatusUnprocessableEntity, &profileResponse{Summary: wire.Summary{
			ExitCode: 1, Kind: wire.KindError, Error: entry.err.Error()}, CacheHit: hit})
		return
	}
	// Profiling instruments the program's IR in place, so the shared
	// cached program admits one session at a time. Take its run token if
	// free; otherwise compile a private copy — compile cost is small
	// next to a profile run, and sessions must not queue behind an
	// unrelated tenant's deadline.
	prog := entry.prog
	release, exclusive := entry.tryRun()
	if !exclusive {
		private, cerr := carmot.Compile(filename, req.Source, copts)
		if cerr != nil {
			s.reply(w, http.StatusUnprocessableEntity, &profileResponse{Summary: wire.Summary{
				ExitCode: 1, Kind: wire.KindError, Error: cerr.Error()}, CacheHit: hit})
			return
		}
		prog = private
		release = func() {}
	}
	defer release()
	if len(prog.ROIs()) == 0 {
		s.reply(w, http.StatusUnprocessableEntity, &profileResponse{Summary: wire.Summary{
			ExitCode: 1, Kind: wire.KindError,
			Error: "program has no ROI; add '#pragma carmot roi' or set whole=true"}, CacheHit: hit})
		return
	}

	// Snapshot the ladder rung before taking our own slots: degradation
	// reacts to load from *other* sessions, not to the grant this
	// session is about to hold.
	level := s.degradeLevel()

	// Lease session geometry from the shared pool; a partial grant
	// shrinks the pipeline rather than queueing, and an exhausted pool
	// sheds when the deadline expires first.
	grant, err := s.pool.Acquire(ctx, s.cfg.SessionWorkers, 1)
	if err != nil {
		s.shed.Add(1)
		s.shedReply(w, s.cfg.RetryBase, "worker pool exhausted: "+err.Error())
		return
	}
	defer grant.Release()

	// Everything that can refuse the request has passed; from here a
	// streaming response may commit its 200 and start emitting events.
	var sw *streamWriter
	if streaming {
		sw = newStreamWriter(w, s.cfg.StreamInterval)
		sw.compile(hit, len(prog.ROIs()))
	}

	resp := s.runSession(ctx, prog, &req, useCase, grant, level, sw)
	resp.CacheHit = hit
	status := http.StatusOK
	if resp.Kind == wire.KindInternal {
		status = http.StatusInternalServerError
	}
	respBody, merr := json.MarshalIndent(resp, "", "  ")
	if merr != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"exit_code":1,"kind":%q,"error":%q}`, wire.KindInternal, merr.Error())
		return
	}
	respBody = append(respBody, '\n')
	// Store only clean results: anything degraded, truncated, or run on
	// a shed-ladder rung reflects this run's pressure, not the program.
	if flight != nil {
		if cacheableResult(status, resp) {
			cachedBody = respBody
		} else {
			s.uncacheable.Add(1)
		}
	}
	if sw != nil {
		sw.result(status, respBody)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
}

// ResultCacheHeader names the response header reporting the result-cache
// outcome for a profile request: "hit" (stored body replayed), "join"
// (identical in-flight request's body replayed), "miss" (ran, eligible
// to be stored), or "bypass" (cache disabled or opted out). It is a
// header, not a body field, so cached responses stay byte-identical to
// the originally computed ones.
const ResultCacheHeader = "X-Carmot-Result-Cache"

// cacheableResult decides whether a completed session's response may
// enter the result cache: only a clean, full-fidelity run qualifies. A
// truncated run (budget/deadline), a run the governor downgraded, a run
// a supervisor had to touch (even successfully), or a run on any
// load-shed ladder rung is never cached — re-running such a request may
// well produce a better result, and a cache must not pin degradation.
// Retried-then-clean sessions qualify: the cached attempt itself ran
// clean, and Diagnostics reflect only that attempt.
func cacheableResult(status int, resp *profileResponse) bool {
	if status != http.StatusOK || resp.ExitCode != 0 || resp.Kind != wire.KindOK || resp.DegradeLevel != 0 {
		return false
	}
	d := resp.Diagnostics
	return d != nil && !d.Truncated && len(d.Downgrades) == 0 && len(d.Recoveries) == 0
}

// replyCached replays a stored response body verbatim (or, on a
// streaming request, as the terminal result event).
func (s *Server) replyCached(w http.ResponseWriter, body []byte, streaming bool, outcome string) {
	w.Header().Set(ResultCacheHeader, outcome)
	if streaming {
		sw := newStreamWriter(w, s.cfg.StreamInterval)
		sw.result(http.StatusOK, body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// degradeLevel maps current pool load onto the ladder rung new sessions
// run at: 0 full fidelity, 1 forced coalescing + shrunken journal, 2 no
// journal retention + event cap.
func (s *Server) degradeLevel() int {
	load := s.pool.Load()
	switch {
	case load >= s.cfg.LoadHard:
		return 2
	case load >= s.cfg.LoadSoft:
		return 1
	}
	return 0
}

// runSession executes the profile with retry-on-degraded: a session
// whose pipeline lost data (journal evicted, replay failed) is re-run
// from the cached program with capped exponential backoff, as long as
// the deadline allows. The runtime's own journal replay handles faults
// in-process; this loop is the outer rung for the runs replay could not
// make whole.
func (s *Server) runSession(ctx context.Context, prog *carmot.Program, req *profileRequest,
	useCase carmot.UseCase, grant *rt.Grant, level int, sw *streamWriter) *profileResponse {

	opts := carmot.ProfileOptions{
		UseCase:   useCase,
		Naive:     req.Naive,
		Workers:   grant.Workers,
		Shards:    grant.Shards,
		Context:   ctx,
		MaxSteps:  req.MaxSteps,
		MaxEvents: req.MaxEvents,
		MaxCells:  req.MaxCells,
		Recover:   true,
	}
	if sw != nil {
		// Profile runs on this goroutine, so the hook writes the response
		// stream without crossing a thread boundary.
		opts.Progress = sw.progress
	}
	switch {
	case level >= 2:
		opts.ForceCoalesce = true
		opts.JournalBudgetBytes = -1 // retain nothing; degrade instead of replay
		if opts.MaxEvents == 0 || opts.MaxEvents > s.cfg.HardMaxEvents {
			opts.MaxEvents = s.cfg.HardMaxEvents
		}
	case level == 1:
		opts.ForceCoalesce = true
		opts.JournalBudgetBytes = s.cfg.JournalSoft
	}

	var stdout capWriter
	opts.Stdout = &stdout

	resp := &profileResponse{Workers: grant.Workers, DegradeLevel: level}
	var res *carmot.ProfileResult
	var rerr error
	for attempt := 0; ; attempt++ {
		if sw != nil && attempt > 0 {
			sw.attempt(attempt + 1)
		}
		stdout.Reset()
		res, rerr = prog.Profile(opts)
		resp.Attempts = attempt + 1
		if rerr == nil || !carmot.IsDegraded(rerr) || attempt >= s.cfg.MaxRetries {
			break
		}
		// Degraded: the pipeline dropped data but the program is fine —
		// the retryable class. Back off and re-run from the cached
		// program, unless the deadline will expire first. The backoff is
		// jittered ±20%: sessions degraded by the same load spike would
		// otherwise re-arrive at the pool in lockstep and spike it again.
		backoff := s.cfg.RetryBase << attempt
		if backoff > s.cfg.RetryCap {
			backoff = s.cfg.RetryCap
		}
		timer := time.NewTimer(jitter(backoff))
		select {
		case <-timer.C:
			s.retries.Add(1)
		case <-ctx.Done():
			timer.Stop()
			attempt = s.cfg.MaxRetries // deadline first; keep this result
		}
	}
	resp.Stdout = stdout.String()
	if res != nil {
		resp.Diagnostics = &res.Diagnostics
	}

	switch {
	case rerr == nil && res.Diagnostics.Truncated:
		resp.ExitCode = 3
		resp.Kind = wire.KindBudget
		resp.Error = "run truncated: " + res.Diagnostics.TruncatedReason
	case rerr == nil:
		resp.ExitCode = 0
		resp.Kind = wire.KindOK
		s.completed.Add(1)
	case carmot.IsDegraded(rerr):
		s.degraded.Add(1)
		resp.ExitCode = 1
		resp.Kind = wire.KindInternal
		resp.Error = rerr.Error()
		return resp
	default:
		// Program fault: the session completed, the program is broken.
		resp.ExitCode = 1
		resp.Kind = wire.KindError
		resp.Error = rerr.Error()
	}

	if req.PSECs && res != nil && res.PSECs != nil {
		if data, err := carmot.MarshalPSECs(res.PSECs); err == nil {
			resp.PSECs = data
		}
	}
	if req.Reports && res != nil {
		resp.Reports = renderReports(prog, res, useCase)
	}
	return resp
}

// renderReports produces one recommendation report per profiled ROI.
func renderReports(prog *carmot.Program, res *carmot.ProfileResult, useCase carmot.UseCase) []string {
	var out []string
	for _, roi := range prog.ROIs() {
		if roi.ID >= len(res.PSECs) || res.PSECs[roi.ID] == nil {
			continue
		}
		psec := res.PSECs[roi.ID]
		switch useCase {
		case carmot.UseOpenMP:
			out = append(out, carmot.RecommendParallelFor(psec, roi).Report())
		case carmot.UseTask:
			out = append(out, carmot.RecommendTask(psec).Pragma())
		case carmot.UseSmartPointers:
			out = append(out, carmot.RecommendSmartPointers(psec).Report())
		case carmot.UseSTATS:
			out = append(out, carmot.RecommendSTATS(psec).Pragma())
		}
	}
	return out
}

// handleHealthz serves the readiness document. The status code keeps
// the original bare contract — 200 ready, 503 draining — for clients
// that only probe liveness; the JSON body (wire.Health) adds the
// shed-ladder level, free pool slots, and the draining flag so a router
// can weight replicas instead of treating health as binary.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	h := wire.Health{
		Status:       "ok",
		Draining:     draining,
		DegradeLevel: s.degradeLevel(),
		FreeSlots:    s.pool.Free(),
		PoolSlots:    s.pool.Total(),
	}
	status := http.StatusOK
	if draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	data, err := json.Marshal(&h)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// Stats is the /v1/statz document.
type Stats struct {
	Requests     uint64  `json:"requests"`
	Completed    uint64  `json:"completed"`
	Shed         uint64  `json:"shed"`
	Retries      uint64  `json:"retries"`
	Degraded     uint64  `json:"degraded"`
	Sessions     int     `json:"sessions"`
	PoolSlots    int     `json:"pool_slots"`
	Load         float64 `json:"load"`
	DegradeLevel int     `json:"degrade_level"`
	Draining     bool    `json:"draining"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheSize    int     `json:"cache_size"`
	// Result-cache counters; all zero when the cache is disabled except
	// ResultBypass, which also counts per-request opt-outs.
	ResultHits        uint64 `json:"result_hits"`
	ResultMisses      uint64 `json:"result_misses"`
	ResultJoins       uint64 `json:"result_joins"`
	ResultStores      uint64 `json:"result_stores"`
	ResultEvictions   uint64 `json:"result_evictions"`
	ResultEntries     int    `json:"result_entries"`
	ResultBytes       int64  `json:"result_bytes"`
	ResultBypass      uint64 `json:"result_bypass"`
	ResultUncacheable uint64 `json:"result_uncacheable"`
}

// Snapshot returns the server's current stats.
func (s *Server) Snapshot() Stats {
	hits, misses, size := s.cache.stats()
	var rs resultCacheStats
	if s.results != nil {
		rs = s.results.stats()
	}
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	return Stats{
		Requests:     s.requests.Load(),
		Completed:    s.completed.Load(),
		Shed:         s.shed.Load(),
		Retries:      s.retries.Load(),
		Degraded:     s.degraded.Load(),
		Sessions:     s.pool.Sessions(),
		PoolSlots:    s.pool.Total(),
		Load:         s.pool.Load(),
		DegradeLevel: s.degradeLevel(),
		Draining:     draining,
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheSize:    size,

		ResultHits:        rs.Hits,
		ResultMisses:      rs.Misses,
		ResultJoins:       rs.Joins,
		ResultStores:      rs.Stores,
		ResultEvictions:   rs.Evictions,
		ResultEntries:     rs.Entries,
		ResultBytes:       rs.Bytes,
		ResultBypass:      s.resultBypass.Load(),
		ResultUncacheable: s.uncacheable.Load(),
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(s.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

// jitter spreads d uniformly across ±20% so a cohort of synchronized
// clients (or a retry loop re-arming on the same hint) fans out instead
// of re-arriving in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
}

// shedReply writes a structured 429 with the Retry-After hint in both
// the header (whole seconds, rounded up) and the body (milliseconds).
// The hint is jittered ±20% once, and the body carries that jittered
// value exactly: the coarse header rounding alone would re-synchronize
// every shed client onto the same second.
func (s *Server) shedReply(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	retryAfter = jitter(retryAfter)
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.reply(w, http.StatusTooManyRequests, &profileResponse{Summary: wire.Summary{
		ExitCode: 2, Kind: wire.KindShed, Error: msg,
		RetryAfterMs: ms}})
}

func (s *Server) reply(w http.ResponseWriter, status int, resp *profileResponse) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"exit_code":1,"kind":%q,"error":%q}`, wire.KindInternal, err.Error())
		return
	}
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func parseUseCase(use string) (carmot.UseCase, error) {
	switch use {
	case "", "openmp":
		return carmot.UseOpenMP, nil
	case "task":
		return carmot.UseTask, nil
	case "smartptr":
		return carmot.UseSmartPointers, nil
	case "stats":
		return carmot.UseSTATS, nil
	}
	return 0, fmt.Errorf("unknown use case %q", use)
}

// capWriter buffers program stdout up to a fixed cap; overflow is
// dropped with a marker so responses stay bounded.
type capWriter struct {
	buf       []byte
	truncated bool
}

const stdoutCap = 64 << 10

func (c *capWriter) Write(p []byte) (int, error) {
	if room := stdoutCap - len(c.buf); room > 0 {
		if len(p) <= room {
			c.buf = append(c.buf, p...)
		} else {
			c.buf = append(c.buf, p[:room]...)
			c.truncated = true
		}
	} else if len(p) > 0 {
		c.truncated = true
	}
	return len(p), nil
}

func (c *capWriter) Reset() { c.buf = c.buf[:0]; c.truncated = false }

func (c *capWriter) String() string {
	if c.truncated {
		return string(c.buf) + "\n[stdout truncated]\n"
	}
	return string(c.buf)
}

var _ io.Writer = (*capWriter)(nil)

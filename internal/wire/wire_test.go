package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"carmot/internal/rt"
)

// TestSummaryRoundTrip pins the schema both entry points share: a fully
// populated summary must survive Encode → Unmarshal unchanged, including
// the nested runtime diagnostics.
func TestSummaryRoundTrip(t *testing.T) {
	in := Summary{
		ExitCode:     3,
		Kind:         KindBudget,
		Error:        "deadline exceeded",
		RetryAfterMs: 250,
		Attempts:     2,
		Diagnostics: &rt.Diagnostics{
			Events:        12345,
			DroppedEvents: 7,
			Batches:       11,
			PeakLiveCells: 999,
			Callstacks:    3,
			Downgrades:    []rt.Downgrade{{Reason: "max cells"}},
			Recoveries:    []rt.Recovery{{Stage: "shard", ID: 2, Outcome: rt.RecoveryReplayed, Reason: "fault", Ops: 40}},
			WorkerPanics:  1,
			Errors:        []string{"contained: fault"},
			Truncated:     true,
		},
	}
	data, err := in.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("encoded summary must end in a newline")
	}
	var out Summary
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the summary\nin:  %+v\nout: %+v", in, out)
	}
}

// TestSummaryWireNames pins the JSON field names — they are the contract
// between carmot/carmotd and external supervisors, so renames must be
// deliberate.
func TestSummaryWireNames(t *testing.T) {
	s := Summary{ExitCode: 1, Kind: KindError, Error: "x", RetryAfterMs: 5, Attempts: 1}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"exit_code", "kind", "error", "retry_after_ms", "attempts", "diagnostics"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled summary is missing %q: %s", key, data)
		}
	}
	if len(m) != 6 {
		t.Errorf("marshalled summary has unexpected fields: %s", data)
	}
}

// TestRouteInfoRoundTrip pins the X-Carmot-Route header codec: a fully
// populated route trail must survive EncodeHeader → ParseRouteInfo
// unchanged, and the encoding must be a single line (header values may
// not contain newlines).
func TestRouteInfoRoundTrip(t *testing.T) {
	in := RouteInfo{Replica: "replica-2", Attempts: 3, Failover: "connect: connection refused", Hedged: true}
	h := in.EncodeHeader()
	if h == "" || strings.ContainsAny(h, "\r\n") {
		t.Fatalf("EncodeHeader produced an invalid header value: %q", h)
	}
	out, err := ParseRouteInfo(h)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the route info\nin:  %+v\nout: %+v", in, out)
	}
}

// TestRouteInfoWireNames pins the header document's field names — the
// contract between carmot-router and anything reading its trail.
func TestRouteInfoWireNames(t *testing.T) {
	ri := RouteInfo{Replica: "r", Attempts: 2, Failover: "x", Hedged: true}
	var m map[string]any
	if err := json.Unmarshal([]byte(ri.EncodeHeader()), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"replica", "attempts", "failover", "hedged"} {
		if _, ok := m[key]; !ok {
			t.Errorf("encoded route info is missing %q: %s", key, ri.EncodeHeader())
		}
	}
	if len(m) != 4 {
		t.Errorf("encoded route info has unexpected fields: %s", ri.EncodeHeader())
	}
	// A clean first-try route omits everything but the attempt count.
	lean := RouteInfo{Replica: "r", Attempts: 1}
	var lm map[string]any
	if err := json.Unmarshal([]byte(lean.EncodeHeader()), &lm); err != nil {
		t.Fatal(err)
	}
	if len(lm) != 2 {
		t.Errorf("lean route info should carry replica+attempts only: %s", lean.EncodeHeader())
	}
}

// TestHealthWireNames pins the /v1/healthz readiness document.
func TestHealthWireNames(t *testing.T) {
	h := Health{Status: "ok", DegradeLevel: 1, FreeSlots: 3, PoolSlots: 8}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "draining", "degrade_level", "free_slots", "pool_slots"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshalled health is missing %q: %s", key, data)
		}
	}
	if len(m) != 5 {
		t.Errorf("marshalled health has unexpected fields: %s", data)
	}
}

// TestKindForExit covers the CLI exit-code mapping.
func TestKindForExit(t *testing.T) {
	want := map[int]string{0: KindOK, 1: KindError, 2: KindUsage, 3: KindBudget, 7: KindError}
	for code, kind := range want {
		if got := KindForExit(code); got != kind {
			t.Errorf("KindForExit(%d) = %q, want %q", code, got, kind)
		}
	}
}

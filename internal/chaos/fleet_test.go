package chaos

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"carmot/internal/router"
	"carmot/internal/testutil"
)

// TestFleetChaosSeeds runs seeded kill/hang/drain/restart schedules
// against a live 3-replica fleet behind the router. Every invariant —
// termination, byte-identical non-degraded PSECs, route-trail
// visibility, structured intermediate failures, containment — is
// enforced by CheckFleet. Sequential on purpose: each run compares the
// goroutine count against its own baseline.
func TestFleetChaosSeeds(t *testing.T) {
	for _, seed := range []int64{7, 23, 1009} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := NewFleetSchedule(seed)
			res := ExecuteFleet(s)
			if err := CheckFleet(res); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: events fired=%d routed_ok=%d failovers=%d exhausted=%d mid_stream=%d",
				s, res.EventsFired, res.Stats.RoutedOK, res.Stats.Failovers,
				res.Stats.Exhausted, res.Stats.MidStreamErrors)
		})
	}
}

// replicaIndex extracts N from "replica-N".
func replicaIndex(t *testing.T, id string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimPrefix(id, "replica-"))
	if err != nil {
		t.Fatalf("route replica id %q: %v", id, err)
	}
	return n
}

// scriptedFleet starts a probe-less fleet so tests control fault
// observation deterministically through in-band errors.
func scriptedFleet(t *testing.T) *Fleet {
	t.Helper()
	baseline := testutil.Goroutines()
	t.Cleanup(func() {
		if !testutil.SettleGoroutines(baseline, 5*time.Second) {
			t.Error("goroutines leaked past fleet teardown")
		}
	})
	f, err := StartFleet(3, router.Config{
		ProbeInterval:    -1,
		DownAfter:        1,
		UpAfter:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		RetryBase:        time.Millisecond,
		RetryCap:         10 * time.Millisecond,
		AttemptTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestFleetScriptedKillFailover pins the acceptance story end to end:
// learn a key's home replica from the route trail, crash that exact
// replica, and re-issue the request. The answer must come back
// byte-identical — failover invisible in the body — with the detour
// recorded in X-Carmot-Route. The same holds for the streaming path.
func TestFleetScriptedKillFailover(t *testing.T) {
	f := scriptedFleet(t)

	warm := fleetRequest(f, "alice", 0, false)
	if warm.Violation != "" {
		t.Fatal(warm.Violation)
	}
	home := replicaIndex(t, warm.Route.Replica)

	f.Replicas[home].Kill()

	over := fleetRequest(f, "alice", 0, false)
	if over.Violation != "" {
		t.Fatal(over.Violation)
	}
	if !bytes.Equal(over.PSECs, warm.PSECs) {
		t.Fatalf("failover leaked into the body:\nbefore: %.120s\nafter:  %.120s", warm.PSECs, over.PSECs)
	}
	if got := replicaIndex(t, over.Route.Replica); got == home {
		t.Fatalf("request routed to the killed replica-%d", home)
	}
	if over.Route.Attempts < 2 || over.Route.Failover == "" {
		t.Fatalf("failover not visible in the route trail: %+v", over.Route)
	}

	stream := fleetRequest(f, "alice", 0, true)
	if stream.Violation != "" {
		t.Fatal(stream.Violation)
	}
	if !bytes.Equal(stream.PSECs, warm.PSECs) {
		t.Fatal("streamed failover answer diverges from the buffered one")
	}
	if got := replicaIndex(t, stream.Route.Replica); got == home {
		t.Fatalf("stream routed to the killed replica-%d", home)
	}
}

// TestFleetHangFailoverAndRecovery: a wedged replica must not wedge its
// keys — the attempt timeout fires and the request lands elsewhere.
// Releasing the hang (plus the breaker cooldown) brings the replica
// back for its keyspace.
func TestFleetHangFailoverAndRecovery(t *testing.T) {
	f := scriptedFleet(t)

	warm := fleetRequest(f, "bob", 1, false)
	if warm.Violation != "" {
		t.Fatal(warm.Violation)
	}
	home := replicaIndex(t, warm.Route.Replica)

	f.Replicas[home].Hang()
	start := time.Now()
	over := fleetRequest(f, "bob", 1, false)
	if over.Violation != "" {
		t.Fatal(over.Violation)
	}
	if got := replicaIndex(t, over.Route.Replica); got == home {
		t.Fatalf("request landed on the hung replica-%d", home)
	}
	if !bytes.Equal(over.PSECs, warm.PSECs) {
		t.Fatal("hang failover leaked into the body")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hang failover took %v — attempt timeout not bounding hung replicas", elapsed)
	}

	f.Replicas[home].Unhang()
	// One strike is on the breaker; after cooldown the home replica must
	// win its keys back (half-open trial succeeds on the next request).
	deadline := time.Now().Add(5 * time.Second)
	for {
		back := fleetRequest(f, "bob", 1, false)
		if back.Violation != "" {
			t.Fatal(back.Violation)
		}
		if replicaIndex(t, back.Route.Replica) == home {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home replica-%d never recovered its keyspace after unhang", home)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetDrainHandoff: a draining replica hands its keyspace over
// without a single failed answer and without tripping its breaker —
// drain is cooperative, not a fault.
func TestFleetDrainHandoff(t *testing.T) {
	f := scriptedFleet(t)

	warm := fleetRequest(f, "carol", 2, false)
	if warm.Violation != "" {
		t.Fatal(warm.Violation)
	}
	home := replicaIndex(t, warm.Route.Replica)

	f.Replicas[home].BeginDrain()

	over := fleetRequest(f, "carol", 2, false)
	if over.Violation != "" {
		t.Fatal(over.Violation)
	}
	if got := replicaIndex(t, over.Route.Replica); got == home {
		t.Fatalf("request routed to the draining replica-%d", home)
	}
	if !bytes.Equal(over.PSECs, warm.PSECs) {
		t.Fatal("drain handoff leaked into the body")
	}
	st := f.Router.Snapshot()
	if st.Replicas[home].BreakerTrips != 0 {
		t.Fatalf("drain tripped the breaker: %+v", st.Replicas[home])
	}
	// A restart un-drains: the replica returns with fresh caches and the
	// keyspace comes home.
	if err := f.Replicas[home].Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Probing is manual in scripted fleets, and only a probe can
		// clear the router's drain flag for the restarted replica.
		f.Router.ProbeNow()
		back := fleetRequest(f, "carol", 2, false)
		if back.Violation != "" {
			t.Fatal(back.Violation)
		}
		if replicaIndex(t, back.Route.Replica) == home {
			if !bytes.Equal(back.PSECs, warm.PSECs) {
				t.Fatal("restarted replica answers differently")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("home replica-%d never recovered its keyspace after restart", home)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

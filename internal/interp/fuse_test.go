package interp

// Fallback parity for the superinstruction pass: every fused opcode has
// an almost-matching adjacent pair here that violates exactly one
// legality constraint, and the pass must leave such shapes as generic
// opcodes. The end-to-end tests then prove the bail on real programs by
// scanning the compiled streams, and that execution results are
// identical with the peephole on and off.

import (
	"reflect"
	"testing"

	"carmot/internal/instrument"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
	"carmot/internal/rt"
)

func TestFuseOfAcceptsCanonicalShapes(t *testing.T) {
	// Sanity anchors: the canonical shape for each family must fuse, so
	// the rejection cases below fail for the right reason.
	cases := []struct {
		name string
		a, b bcInstr
		want bcOp
	}{
		{"cmp+condjmp", bcInstr{op: opLtI, dst: 3}, bcInstr{op: opCondJmp, amode: opdTemp, a: 3}, opFJmpLtI},
		{"gep+load.u", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opLoadU, amode: opdTemp, a: 3}, opFGEPLoadU},
		{"gep+load.t", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opLoadT, amode: opdTemp, a: 3}, opFGEPLoadT},
		{"gep+store.u", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opStoreU, amode: opdTemp, a: 3}, opFGEPStoreU},
		{"gep+store.t", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opStoreT, amode: opdTemp, a: 3}, opFGEPStoreT},
		{"load+load.u", bcInstr{op: opLoadU, dst: 3}, bcInstr{op: opLoadU, dst: 4}, opFLoadLoadU},
		{"load+bin", bcInstr{op: opLoadU, dst: 3}, bcInstr{op: opAddI, amode: opdTemp, a: 3}, opFLoadBin},
		{"bin+store.u", bcInstr{op: opAddI, dst: 3}, bcInstr{op: opStoreU, bmode: opdTemp, b: 3}, opFBinStoreU},
		{"store.u+jmp", bcInstr{op: opStoreU}, bcInstr{op: opJmp}, opFStoreUJmp},
	}
	for _, c := range cases {
		if got := fuseOf(&c.a, &c.b); got != c.want {
			t.Errorf("%s: fuseOf = %s, want %s", c.name, opNames[got], opNames[c.want])
		}
	}
}

func TestFuseOfRejectsUntranslatableShapes(t *testing.T) {
	// One violated constraint per case; every family must bail to the
	// generic pair (fuseOf returns opBadOp, meaning "do not fuse").
	cases := []struct {
		name string
		a, b bcInstr
	}{
		{"condjmp reads a different temp", bcInstr{op: opLtI, dst: 3}, bcInstr{op: opCondJmp, amode: opdTemp, a: 4}},
		{"condjmp reads a frame slot", bcInstr{op: opLtI, dst: 3}, bcInstr{op: opCondJmp, amode: opdFrame, a: 3}},
		{"non-compare bin before condjmp", bcInstr{op: opAddI, dst: 3}, bcInstr{op: opCondJmp, amode: opdTemp, a: 3}},
		{"gep+load through a different temp", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opLoadU, amode: opdTemp, a: 4}},
		{"gep+load through an immediate", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opLoadU, amode: opdImm, a: 3}},
		{"gep+store addressed off a different temp", bcInstr{op: opGEP, dst: 3}, bcInstr{op: opStoreT, amode: opdTemp, a: 4}},
		{"tracked load heading a load pair", bcInstr{op: opLoadT, dst: 3}, bcInstr{op: opLoadU, dst: 4}},
		{"tracked load trailing a load pair", bcInstr{op: opLoadU, dst: 3}, bcInstr{op: opLoadT, amode: opdTemp, a: 3}},
		{"tracked load before bin", bcInstr{op: opLoadT, dst: 3}, bcInstr{op: opAddI, amode: opdTemp, a: 3}},
		{"bin result is not the stored value", bcInstr{op: opAddI, dst: 3}, bcInstr{op: opStoreU, bmode: opdTemp, b: 4}},
		{"bin result stored tracked", bcInstr{op: opAddI, dst: 3}, bcInstr{op: opStoreT, bmode: opdTemp, b: 3}},
		{"tracked store before jmp", bcInstr{op: opStoreT}, bcInstr{op: opJmp}},
		{"store before condjmp", bcInstr{op: opStoreU}, bcInstr{op: opCondJmp, amode: opdTemp, a: 3}},
	}
	for _, c := range cases {
		if got := fuseOf(&c.a, &c.b); got != opBadOp {
			t.Errorf("%s: fused as %s, want generic fallback", c.name, opNames[got])
		}
	}
}

func TestFuseStopsAtBlockBoundaries(t *testing.T) {
	// A fusable pair straddling a block boundary must stay unfused: the
	// second word is a branch target, and fusing it away would hide the
	// target pc.
	mkCF := func() *compiledFunc {
		return &compiledFunc{
			code: []bcInstr{
				{op: opLtI, dst: 3},
				{op: opCondJmp, amode: opdTemp, a: 3},
				{op: opRet},
			},
			poss: make([]lang.Pos, 3),
		}
	}
	it := &Interp{}

	cf := mkCF()
	boundary := map[*ir.Block]int{new(ir.Block): 0, new(ir.Block): 1}
	it.fuse(cf, boundary)
	if len(cf.code) != 3 || cf.code[0].op != opLtI || cf.code[1].op != opCondJmp {
		t.Fatalf("pair across a block boundary was rewritten: %v", opsOf(cf))
	}

	// Control: the same stream with no boundary at pc 1 fuses.
	cf = mkCF()
	it.fuse(cf, map[*ir.Block]int{new(ir.Block): 0})
	if len(cf.code) != 2 || cf.code[0].op != opFJmpLtI {
		t.Fatalf("control pair did not fuse: %v", opsOf(cf))
	}
}

func opsOf(cf *compiledFunc) []string {
	names := make([]string, len(cf.code))
	for i, in := range cf.code {
		names[i] = opNames[in.op]
	}
	return names
}

// compileSrc lowers and instruments src, returning a fresh interpreter
// (no execution yet). A nil runtime compiles the untracked specialization
// of every access; a live one enables the tracked variants.
func compileSrc(t *testing.T, src string, o Options) *Interp {
	t.Helper()
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.Lower(f, lower.Options{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	io_ := instrument.Options{}
	if o.Runtime != nil {
		io_.Profile = o.Runtime.Profile()
	}
	if _, err := instrument.Apply(prog, io_); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	o.Engine = EngineBytecode
	if o.MaxSteps == 0 {
		o.MaxSteps = 1_000_000
	}
	return New(prog, o)
}

// streams compiles every function and returns the opcode-name streams.
func streams(it *Interp) map[string][]string {
	out := map[string][]string{}
	for _, fn := range it.prog.Funcs {
		out[fn.Name] = opsOf(it.compiledOf(fn))
	}
	return out
}

func hasOp(streams map[string][]string, name string) bool {
	for _, ops := range streams {
		for _, op := range ops {
			if op == name {
				return true
			}
		}
	}
	return false
}

func TestUntranslatableCompareBailsToGeneric(t *testing.T) {
	// The compare's operands are call results and its consumer is a call
	// argument, so neither load+bin nor cmp+branch fusion can grab it:
	// the generic compare must survive in the stream, and execution must
	// agree exactly with the unfused stream.
	src := `int one() { return 1; }
int two() { return 2; }
int use(int c) { return c; }
int main() {
	int s = 0;
	for (int i = 0; i < 4; i++) { s = s + use(one() < two()); }
	return s;
}`
	it := compileSrc(t, src, Options{})
	st := streams(it)
	// The loop counter's own compare may fuse (that shape is legal); the
	// call-fed compare cannot, so a generic lt.i must survive somewhere.
	if !hasOp(st, "lt.i") {
		t.Errorf("generic lt.i missing from compiled stream: %v", st)
	}
	fusedRes, err := it.Run()
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	plainRes, err := compileSrc(t, src, Options{NoFuse: true}).Run()
	if err != nil {
		t.Fatalf("unfused run: %v", err)
	}
	if !reflect.DeepEqual(fusedRes, plainRes) {
		t.Errorf("fused and unfused results differ:\nfused:   %+v\nunfused: %+v", fusedRes, plainRes)
	}
}

func TestTrackedShapesBailToGenericOpcodes(t *testing.T) {
	// Under full tracking every access in this program is tracked, and no
	// untracked-specialized fusion may fire: the loop body's load, add,
	// and store plus the loop-bottom jump must all stay generic (only the
	// legal gep+load.t / gep+store.t tracked fusions are allowed).
	src := `int* p;
int main() {
	p = malloc(1);
	#pragma carmot roi w
	for (int i = 0; i < 8; i++) { p[0] = p[0] + 1; }
	return p[0];
}`
	r := rt.New(rt.Config{Profile: rt.ProfileFull})
	defer r.Finish()
	st := streams(compileSrc(t, src, Options{Runtime: r}))
	for _, want := range []string{"store.t", "load.t", "add.i"} {
		if !hasOp(st, want) {
			t.Errorf("generic opcode %q missing from tracked stream: %v", want, st)
		}
	}
	for _, banned := range []string{
		"store.u+jmp", "bin+store.u", "load+bin", "load+load.u",
		"gep+load.u", "gep+store.u", "store.u",
	} {
		if hasOp(st, banned) {
			t.Errorf("untracked-specialized opcode %q appeared under full tracking: %v", banned, st)
		}
	}
}

func TestFusedAndUnfusedResultsAgree(t *testing.T) {
	// The positive complement: a program whose stream exercises the fused
	// families must produce a byte-for-byte identical Result with the
	// peephole disabled.
	src := `int N = 32;
int* a;
int main() {
	a = malloc(N);
	int s = 0;
	for (int i = 0; i < N; i++) { a[i] = i * 3; }
	for (int i = 0; i < N; i++) { s = s + a[i]; }
	int lo = 0;
	while (lo < s) { lo = lo + 7; }
	return lo - s;
}`
	it := compileSrc(t, src, Options{})
	st := streams(it)
	for _, want := range []string{"jmp.lt.i", "gep+load.u", "bin+store.u", "store.u+jmp", "load+bin"} {
		if !hasOp(st, want) {
			t.Errorf("expected fused opcode %q in stream: %v", want, st)
		}
	}
	fusedRes, err := it.Run()
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	plainRes, err := compileSrc(t, src, Options{NoFuse: true}).Run()
	if err != nil {
		t.Fatalf("unfused run: %v", err)
	}
	if !reflect.DeepEqual(fusedRes, plainRes) {
		t.Errorf("fused and unfused results differ:\nfused:   %+v\nunfused: %+v", fusedRes, plainRes)
	}
}

// Package interp executes CARMOT-Go IR. It stands in for the compiled
// binary of the paper: the instrumentation the planner left on the IR
// fires exactly where the compiler placed it, feeding the profiling
// runtime; an instruction-cycle counter provides the deterministic time
// base the multicore simulator (internal/parexec) schedules with.
package interp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/rt"
)

// Engine selects the execution engine.
type Engine uint8

// Engines. The bytecode engine is the default: each function is compiled
// once into a flat instruction stream dispatched by a switch-on-opcode
// loop. The tree-walker executes the IR directly and survives as the
// differential oracle — simple enough to audit, and every run through it
// must produce byte-identical PSECs and identical cycle accounting.
const (
	EngineBytecode Engine = iota
	EngineTree
)

// Options configures a run.
type Options struct {
	// Runtime receives profiling events; nil runs uninstrumented.
	Runtime *rt.Runtime
	// Engine selects the execution engine (default bytecode).
	Engine Engine
	// Ctx cancels the run when done; nil means never.
	Ctx context.Context
	// Deadline aborts the run at the given wall-clock time (zero = none).
	Deadline time.Time
	// Clustering enables callstack clustering (§4.4 opt 7): the call
	// stack is captured once per function entry instead of once per
	// allocation event.
	Clustering bool
	// NaiveEventCosts prices events at the naive baseline's cost: inline
	// processing on the program thread without the batched parallel
	// runtime, under whole-binary Pin shadowing.
	NaiveEventCosts bool
	// Sink receives timeline marks for the multicore simulator.
	Sink TimelineSink
	// Stdout receives program output (io.Discard by default).
	Stdout io.Writer
	// MaxSteps aborts runaway programs (0 = no limit).
	MaxSteps int64
	// StackCells sizes the stack region (default 1<<18 cells).
	StackCells uint64
	// NoFuse disables the superinstruction peephole (bytecode engine
	// only); used by the benchmark harness to attribute the fusion win
	// and by differential tests to compare fused vs unfused streams.
	NoFuse bool
	// CountDispatch tallies per-opcode dispatch and fall-through pair
	// frequencies (bytecode engine only); read via DispatchStats. The
	// counters ride the dispatch loop, so leave this off when measuring.
	CountDispatch bool
}

// TimelineSink observes execution markers with the current cycle counts;
// the multicore simulator reconstructs parallel makespans from them.
type TimelineSink interface {
	Mark(kind ir.MarkKind, region *ir.ParRegion, task *lang.Pragma, cycles, serialCycles int64)
	ROIBoundary(begin bool, roi *ir.ROI, cycles, serialCycles int64)
}

// RuntimeError is an execution failure with a source position.
type RuntimeError struct {
	Pos lang.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// BudgetError reports a run stopped by an execution budget — step limit,
// wall deadline, or context cancellation — rather than a program fault.
// Run returns it together with a partial Result, so callers can keep the
// truncated profile instead of hanging on runaway programs.
type BudgetError struct {
	Reason string
}

func (e *BudgetError) Error() string { return "interp: " + e.Reason }

// Result summarizes a completed run.
type Result struct {
	Exit         int64
	Cycles       int64
	SerialCycles int64
	// ToolCycles is the simulated cost of the instrumentation and
	// profiling work performed during the run (zero when
	// uninstrumented); overhead = (Cycles+ToolCycles)/Cycles.
	ToolCycles int64
	Steps      int64
	HeapCells  uint64
	// Accesses counts every executed load/store (instrumented or not);
	// the §2.3 amplification study reads these.
	VarAccesses int64
	MemAccesses int64
	LeakedCells uint64 // heap cells never freed
	// LeakedAllocs details the never-freed heap allocations by site.
	LeakedAllocs []LeakedAlloc
	Output       string
}

// LeakedAlloc is one never-freed heap allocation.
type LeakedAlloc struct {
	Pos   string
	Cells int64
}

type heapRec struct {
	cells int64
	pos   string
}

type frame struct {
	fn     *ir.Func
	cf     *compiledFunc // bytecode engine only
	args   []uint64
	temps  []uint64
	base   uint64 // first cell of the frame's alloca area
	cs     core.CallstackID
	csDone bool
	// callPos is the source position of the call that created the frame.
	callPos lang.Pos
}

type funcLayout struct {
	offsets []uint64
	cells   uint64
	tracked []*ir.Alloca // allocas needing free events on return
}

// Interp executes one program.
type Interp struct {
	prog *ir.Program
	opts Options

	mem        []uint64
	globalBase uint64
	globalOff  map[*ir.Global]uint64
	stackBase  uint64
	stackTop   uint64
	stackLimit uint64
	heapTop    uint64

	layouts   map[*ir.Func]*funcLayout
	funcIDs   []*ir.Func
	externIDs []*ir.Extern
	compiled  map[*ir.Func]*compiledFunc // bytecode cache, built on demand

	frames []*frame
	// framePool recycles frame records by depth: calls are strictly LIFO,
	// so the frame (and its temps buffer, grown to a power-of-two size
	// class) at each depth is reused across the run and the steady-state
	// call path allocates nothing.
	framePool []*frame
	// argScratch backs call-argument evaluation: each call borrows a LIFO
	// window, so one grown array serves every call in the run.
	argScratch []uint64
	prof rt.TrackingProfile
	rng  uint64

	cycles       int64
	serialCycles int64
	toolCycles   int64
	eventCost    int64
	steps        int64
	// stepStop is the next steps value at which the bytecode dispatch
	// loop must take its cold path (budget probe boundary or step limit);
	// see stepSlow. The zero value forces initialization on the first
	// step.
	stepStop int64
	liveHeap     map[uint64]heapRec
	leaked       uint64
	varAccesses  int64
	memAccesses  int64

	out io.Writer
	buf []byte
}

// New prepares an interpreter for the program.
func New(prog *ir.Program, opts Options) *Interp {
	if opts.StackCells == 0 {
		// 256Ki cells (2 MiB): ample under the 4096-frame depth limit, and
		// small enough that zeroing the initial memory image stays cheap.
		opts.StackCells = 1 << 18
	}
	if opts.Stdout == nil {
		opts.Stdout = io.Discard
	}
	it := &Interp{
		prog:      prog,
		opts:      opts,
		globalOff: map[*ir.Global]uint64{},
		layouts:   map[*ir.Func]*funcLayout{},
		liveHeap:  map[uint64]heapRec{},
		out:       opts.Stdout,
		rng:       0x9E3779B97F4A7C15,
		eventCost: costEventEmit,
	}
	if opts.NaiveEventCosts {
		it.eventCost = costEventNaive
	}
	if opts.Engine == EngineBytecode {
		it.compiled = map[*ir.Func]*compiledFunc{}
	}
	if r := opts.Runtime; r != nil {
		it.prof = r.Profile()
	}
	// Memory layout: cell 0 is the null cell; globals; stack; heap.
	it.globalBase = 1
	off := it.globalBase
	for _, g := range prog.Globals {
		it.globalOff[g] = off
		off += uint64(g.Cells)
	}
	it.stackBase = off
	it.stackTop = off
	it.stackLimit = off + opts.StackCells
	it.heapTop = it.stackLimit
	// Length is semantic (address validity checks compare against it);
	// capacity is not, so reserve heap headroom up front: ensure() then
	// extends in place and zeroes only the newly exposed cells instead of
	// copying the whole memory image on the first heap growth.
	memLen := it.heapTop + 1024
	it.mem = newMemImage(memLen, memLen+(1<<16))

	for _, g := range prog.Globals {
		if g.Init != nil {
			it.mem[it.globalOff[g]] = constBits(g.Init)
		}
	}
	for _, f := range prog.Funcs {
		lay := &funcLayout{offsets: make([]uint64, len(f.Allocas))}
		for i, a := range f.Allocas {
			lay.offsets[i] = lay.cells
			lay.cells += uint64(a.Cells)
			if a.Track == ir.TrackOn {
				lay.tracked = append(lay.tracked, a)
			}
		}
		it.layouts[f] = lay
		it.funcIDs = append(it.funcIDs, f)
	}
	it.externIDs = append(it.externIDs, prog.Externs...)
	return it
}

func constBits(c *ir.Const) uint64 {
	if c.IsFloat {
		return math.Float64bits(c.Float)
	}
	return uint64(c.Int)
}

// fnptrOf encodes a function reference as a callable value.
func (it *Interp) fnptrOf(fr *ir.FuncRef) uint64 {
	if fr.Func != nil {
		for i, f := range it.funcIDs {
			if f == fr.Func {
				return uint64(i + 1)
			}
		}
	}
	if fr.Extern != nil {
		for i, e := range it.externIDs {
			if e == fr.Extern {
				return uint64(len(it.funcIDs) + i + 1)
			}
		}
	}
	return 0
}

// memPool recycles memory-image slabs across interpreter runs. A reused
// slab is cleared to its semantic length before use, which is
// observationally identical to a fresh allocation: cells beyond the
// length are never exposed without ensure() zeroing them first.
var memPool sync.Pool

// newMemImage returns a zeroed slab of the given length with at least
// the given capacity, reusing a pooled slab when one fits. Slabs more
// than 4x oversized are left for the collector — clearing them would
// cost more than the allocation they save.
func newMemImage(memLen, memCap uint64) []uint64 {
	if v := memPool.Get(); v != nil {
		slab := v.([]uint64)
		if c := uint64(cap(slab)); c >= memCap && c <= 4*memCap {
			slab = slab[:memLen]
			clear(slab)
			return slab
		}
	}
	return make([]uint64, memLen, memCap)
}

// Run registers globals with the runtime and executes main. On failure —
// program fault, budget exhaustion (*BudgetError), or a contained
// internal panic — the returned Result still summarizes the partial
// execution, so callers can salvage a truncated profile.
func (it *Interp) Run() (res *Result, err error) {
	defer func() {
		// The memory image dies with the run; recycle its slab. Results
		// only carry counters and interned state, never cell storage.
		if it.mem != nil {
			memPool.Put(it.mem)
			it.mem = nil
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			err = &RuntimeError{Msg: fmt.Sprintf("interpreter internal fault: %v", p)}
			res = it.summary(0)
		}
	}()
	main := it.prog.FuncByName("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program has no main function")
	}
	if r := it.opts.Runtime; r != nil {
		for _, g := range it.prog.Globals {
			kind := core.PSEGlobal
			if g.Sym.Type.IsScalar() {
				kind = core.PSEVariable
			}
			r.EmitAlloc(it.globalOff[g], int64(g.Cells), 0,
				&rt.AllocMeta{Kind: kind, Name: g.Sym.Name, Pos: g.Sym.Pos.String()})
		}
	}
	exit, err := it.call(main, nil, lang.Pos{Line: 0})
	if err != nil {
		return it.summary(0), err
	}
	var leaks []LeakedAlloc
	for _, rec := range it.liveHeap {
		it.leaked += uint64(rec.cells)
		leaks = append(leaks, LeakedAlloc{Pos: rec.pos, Cells: rec.cells})
	}
	sort.Slice(leaks, func(i, j int) bool {
		if leaks[i].Pos != leaks[j].Pos {
			return leaks[i].Pos < leaks[j].Pos
		}
		return leaks[i].Cells < leaks[j].Cells
	})
	res = it.summary(int64(exit))
	res.LeakedCells = it.leaked
	res.LeakedAllocs = leaks
	return res, nil
}

// summary snapshots the execution counters into a Result (leak census
// excluded; only a completed run reports leaks).
func (it *Interp) summary(exit int64) *Result {
	return &Result{
		Exit: exit, Cycles: it.cycles, SerialCycles: it.serialCycles,
		ToolCycles: it.toolCycles,
		Steps:      it.steps, HeapCells: it.heapTop - it.stackLimit,
		VarAccesses: it.varAccesses, MemAccesses: it.memAccesses,
		Output: string(it.buf),
	}
}

// Print implements native.Env.
func (it *Interp) Print(s string) {
	it.buf = append(it.buf, s...)
	if it.out != io.Discard {
		io.WriteString(it.out, s)
	}
}

// RandState implements native.Env.
func (it *Interp) RandState() *uint64 { return &it.rng }

// LoadCell implements native.Env (untraced native memory access).
func (it *Interp) LoadCell(addr uint64) uint64 {
	if addr == 0 || addr >= uint64(len(it.mem)) {
		return 0
	}
	return it.mem[addr]
}

// StoreCell implements native.Env.
func (it *Interp) StoreCell(addr uint64, val uint64) {
	if addr == 0 {
		return
	}
	it.ensure(addr + 1)
	it.mem[addr] = val
}

// ensure grows memory so that len(it.mem) >= n, in one step. The length
// schedule is load-bearing — address validity checks compare against
// len(it.mem) — and matches the historical behavior exactly: a grow sets
// len to n+4096. Capacity at least doubles, so a sparse StoreCell sweep
// costs O(final size) total instead of one copy per 4KiB step.
func (it *Interp) ensure(n uint64) {
	old := uint64(len(it.mem))
	if old >= n {
		return
	}
	newLen := n + 4096
	if newLen <= uint64(cap(it.mem)) {
		// Reslicing within capacity exposes cells append never zeroed.
		it.mem = it.mem[:newLen]
		for i := old; i < newLen; i++ {
			it.mem[i] = 0
		}
		return
	}
	newCap := 2 * uint64(cap(it.mem))
	if newCap < newLen {
		newCap = newLen
	}
	grown := make([]uint64, newLen, newCap)
	copy(grown, it.mem)
	it.mem = grown
}

// callstack builds the current call stack (outermost first) and interns
// it. With clustering it is invoked once per frame; without, once per
// allocation event — the §4.4 opt 7 cost difference.
func (it *Interp) callstack() core.CallstackID {
	if it.opts.Runtime == nil {
		return 0
	}
	frames := make([]core.Frame, 0, len(it.frames))
	for _, f := range it.frames {
		frames = append(frames, core.Frame{Func: f.fn.Name, Pos: f.callPos.String()})
	}
	return it.opts.Runtime.Callstacks().Intern(frames)
}

// curCS returns the callstack ID for an allocation event, honoring the
// clustering option (§4.4 opt 7): with clustering the stack is captured
// once per frame; without it every allocation recomputes it.
func (it *Interp) curCS() core.CallstackID {
	fr := it.frames[len(it.frames)-1]
	if it.opts.Clustering {
		if !fr.csDone {
			fr.cs = it.callstack()
			fr.csDone = true
			it.toolCycles += costClusterEntry
		}
		return fr.cs
	}
	it.toolCycles += costStackBase + costStackFrame*int64(len(it.frames))
	return it.callstack()
}

// useCS returns the callstack for use events; captured lazily per frame
// in every mode (the clustering optimization concerns allocations).
func (it *Interp) useCS() core.CallstackID {
	return it.frameCS(it.frames[len(it.frames)-1])
}

// frameCS is useCS for a caller that already holds the executing frame,
// sparing the hot access path the top-of-stack load.
func (it *Interp) frameCS(fr *frame) core.CallstackID {
	if !fr.csDone {
		fr.cs = it.callstack()
		fr.csDone = true
		it.toolCycles += costStackBase + costStackFrame*int64(len(it.frames))
	}
	return fr.cs
}

// pushFrame activates the pooled frame for the next call depth, sizing
// and zeroing its temps for fn; the caller owns stack-cell zeroing.
func (it *Interp) pushFrame(fn *ir.Func, args []uint64, callPos lang.Pos) *frame {
	depth := len(it.frames)
	var fr *frame
	if depth < len(it.framePool) {
		fr = it.framePool[depth]
	} else {
		fr = &frame{}
		it.framePool = append(it.framePool, fr)
	}
	nt := fn.NumTemps()
	if cap(fr.temps) < nt {
		fr.temps = make([]uint64, nt, tempsSizeClass(nt))
	} else {
		fr.temps = fr.temps[:nt]
		// Fresh temps read as zero, exactly like the per-call allocation
		// they replace (a branch-dependent read of a never-written temp
		// must not see a previous call's value).
		for i := range fr.temps {
			fr.temps[i] = 0
		}
	}
	fr.fn = fn
	fr.cf = nil
	fr.args = args
	fr.base = it.stackTop
	fr.cs = 0
	fr.csDone = false
	fr.callPos = callPos
	it.frames = append(it.frames, fr)
	return fr
}

// tempsSizeClass rounds a temps length up to a power of two, so frames at
// the same depth are reused across callees of different sizes without
// reallocating for every alternation.
func tempsSizeClass(n int) int {
	c := 16
	for c < n {
		c *= 2
	}
	return c
}

func (it *Interp) errf(pos lang.Pos, format string, args ...interface{}) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// budgetCheckMask throttles the wall-clock/cancellation probe: the check
// runs once every 8192 interpreted instructions, keeping hot-loop cost
// negligible while bounding reaction latency.
const budgetCheckMask = 1<<13 - 1

// checkBudget enforces the wall deadline and context cancellation; it is
// also the interpreter's fault-injection point.
func (it *Interp) checkBudget() error {
	faultinject.Fire("interp.step")
	if !it.opts.Deadline.IsZero() && time.Now().After(it.opts.Deadline) {
		return &BudgetError{Reason: "wall deadline exceeded"}
	}
	if ctx := it.opts.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			return &BudgetError{Reason: "cancelled: " + ctx.Err().Error()}
		default:
		}
	}
	return nil
}

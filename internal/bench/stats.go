package bench

import "fmt"

// StatsWorkloads returns the §5.3 programs: nondeterministic-app analogs
// whose state-dependence region carries a manual STATS classification
// (the authors' labor-intensive annotation) that CARMOT re-derives
// automatically. The kmeans workload includes a deliberate
// misclassification of the kind the paper reports CARMOT catching: a
// read-only value annotated as state, which costs an unnecessary copy.
func StatsWorkloads() []Benchmark {
	return []Benchmark{
		statsKmeans(), statsAnneal(), statsMonteCarlo(), statsPagerank(), statsSGD(),
	}
}

func statsKmeans() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
int K = 8;
float* points;
float* centers;
int* assign_;
float scale_ = 1.0;

void init() {
	points = malloc(N);
	centers = malloc(8);
	assign_ = malloc(N);
	rand_seed(5);
	for (int j = 0; j < N; j++) {
		points[j] = rand_float() * 8.0;
	}
	for (int k = 0; k < K; k++) {
		centers[k] = k;
	}
}

void step() {
	// Authors' manual classification; scale_ is misclassified as state
	// (it is only read), costing an unnecessary per-invocation copy.
	#pragma stats input(points) output(assign_) state(centers, scale_)
	{
		float d;
		float best;
		int bi;
		for (int i = 0; i < N; i++) {
			best = 1000000.0;
			bi = 0;
			for (int k = 0; k < K; k++) {
				d = (points[i] - centers[k]) * (points[i] - centers[k]) * scale_;
				if (d < best) {
					best = d;
					bi = k;
				}
			}
			assign_[i] = bi;
		}
		for (int k = 0; k < K; k++) {
			centers[k] = centers[k] * 0.9 + 0.05 * k;
		}
	}
}

int main() {
	init();
	for (int it = 0; it < 6; it++) {
		step();
	}
	int acc = 0;
	for (int i = 0; i < N; i = i + 13) {
		acc = acc + assign_[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "kmeans", Suite: "STATS", Source: src,
		DevScale: 1500, ProdScale: 20000,
		Notes: "state(centers); scale_ deliberately misclassified by the 'authors'",
	}
}

func statsAnneal() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float exp(float x);

int N = %d;
float* weights;
float temp = 10.0;
float best = 1000000.0;

void init() {
	weights = malloc(N);
	rand_seed(29);
	for (int j = 0; j < N; j++) {
		weights[j] = rand_float();
	}
}

void sweep() {
	#pragma stats input(weights) output(best) state(temp)
	{
		float cur = 0.0;
		for (int i = 0; i < N; i++) {
			cur = cur + weights[i] * exp(0.0 - temp / 10.0);
		}
		if (cur < best) {
			best = cur;
		}
		temp = temp * 0.95;
	}
}

int main() {
	init();
	for (int it = 0; it < 8; it++) {
		sweep();
	}
	return best;
}
`, scale)
	}
	return Benchmark{
		Name: "sa", Suite: "STATS", Source: src,
		DevScale: 2000, ProdScale: 30000,
		Notes: "temperature schedule is the state dependence",
	}
}

func statsMonteCarlo() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
int N = %d;
int seed = 12345;
float estimate = 0.0;
int rounds = 0;

void round_() {
	#pragma stats output(estimate) state(seed, rounds)
	{
		int s = seed;
		float hit = 0.0;
		float x;
		float y;
		for (int i = 0; i < N; i++) {
			s = (s * 1103515 + 12345) %% 2147483647;
			x = s;
			x = x / 2147483647.0;
			s = (s * 1103515 + 12345) %% 2147483647;
			y = s;
			y = y / 2147483647.0;
			if (x * x + y * y <= 1.0) {
				hit = hit + 1.0;
			}
		}
		seed = s;
		rounds = rounds + 1;
		estimate = 4.0 * hit / N;
	}
}

int main() {
	for (int it = 0; it < 6; it++) {
		round_();
	}
	return estimate * 1000.0 + rounds;
}
`, scale)
	}
	return Benchmark{
		Name: "montecarlo", Suite: "STATS", Source: src,
		DevScale: 3000, ProdScale: 50000,
		Notes: "PRNG seed chain is the state dependence",
	}
}

func statsPagerank() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern int rand_int(int bound);

int N = %d;
int* links;
float* rank_;
float delta = 0.0;

void init() {
	links = malloc(N * 4);
	rank_ = malloc(N);
	rand_seed(41);
	for (int j = 0; j < N * 4; j++) {
		links[j] = rand_int(N);
	}
	for (int j = 0; j < N; j++) {
		rank_[j] = 1.0 / N;
	}
}

void iterate() {
	#pragma stats input(links) output(delta) state(rank_)
	{
		float d = 0.0;
		float nr;
		for (int i = 0; i < N; i++) {
			nr = 0.15 / N;
			for (int l = 0; l < 4; l++) {
				nr = nr + 0.2125 * rank_[links[i * 4 + l]];
			}
			d = d + nr - rank_[i];
			rank_[i] = nr;
		}
		delta = d;
	}
}

int main() {
	init();
	for (int it = 0; it < 5; it++) {
		iterate();
	}
	return delta * 100000.0;
}
`, scale)
	}
	return Benchmark{
		Name: "pagerank", Suite: "STATS", Source: src,
		DevScale: 1500, ProdScale: 20000,
		Notes: "rank vector carries the state dependence across iterations",
	}
}

func statsSGD() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
int D = 6;
float* samples;
float* labels;
float* w;
float loss = 0.0;

void init() {
	samples = malloc(N * 6);
	labels = malloc(N);
	w = malloc(6);
	rand_seed(61);
	for (int j = 0; j < N * 6; j++) {
		samples[j] = rand_float() - 0.5;
	}
	for (int j = 0; j < N; j++) {
		labels[j] = rand_float();
	}
}

void epoch() {
	#pragma stats input(samples, labels) output(loss) state(w)
	{
		float acc = 0.0;
		float pred;
		float err;
		for (int i = 0; i < N; i++) {
			pred = 0.0;
			for (int j = 0; j < D; j++) {
				pred = pred + w[j] * samples[i * D + j];
			}
			err = pred - labels[i];
			acc = acc + err * err;
			for (int j = 0; j < D; j++) {
				w[j] = w[j] - 0.01 * err * samples[i * D + j];
			}
		}
		loss = acc / N;
	}
}

int main() {
	init();
	for (int it = 0; it < 4; it++) {
		epoch();
	}
	return loss * 1000.0;
}
`, scale)
	}
	return Benchmark{
		Name: "sgd", Suite: "STATS", Source: src,
		DevScale: 1200, ProdScale: 15000,
		Notes: "weight vector updated every sample is the state dependence",
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"time"

	"carmot"
	"carmot/internal/wire"
)

// streamWriter turns one profile session into a chunked NDJSON event
// stream (POST /v1/profile?stream=1): compile done, periodic progress,
// immediate degradation transitions, retry attempts, and the terminal
// result document. It is driven from the handler goroutine only — the
// runtime's Progress hook fires on the program thread, which *is* the
// handler goroutine for a synchronous profile call — so no locking is
// needed, and a write failure (client gone) simply stops the output
// while the session winds down under its request context.
type streamWriter struct {
	w        http.ResponseWriter
	flusher  http.Flusher
	interval time.Duration // min gap between progress events; <0 = every snapshot
	started  bool

	last     time.Time
	lastDown int
	lastRec  int
}

// defaultStreamInterval throttles progress events so a hot emit loop
// does not turn the response into a firehose.
const defaultStreamInterval = 100 * time.Millisecond

func newStreamWriter(w http.ResponseWriter, interval time.Duration) *streamWriter {
	if interval == 0 {
		interval = defaultStreamInterval
	}
	sw := &streamWriter{w: w, interval: interval}
	sw.flusher, _ = w.(http.Flusher)
	return sw
}

// emit writes one event line, flushing the chunk so the client sees it
// now rather than at the end of the body. The first emit commits the
// 200 header: every pre-session refusal must happen before it.
func (sw *streamWriter) emit(ev *wire.StreamEvent) {
	if !sw.started {
		sw.started = true
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
		sw.w.WriteHeader(http.StatusOK)
	}
	line, err := ev.EncodeLine()
	if err != nil {
		return
	}
	sw.w.Write(line)
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// progress is the carmot.ProfileOptions.Progress hook: degradation
// transitions go out immediately, plain volume snapshots are throttled
// to the configured interval, and the Final snapshot is skipped — the
// result event carries the totals.
func (sw *streamWriter) progress(u carmot.ProgressUpdate) {
	event := wire.EventProgress
	switch {
	case u.Downgrades > sw.lastDown || u.Recoveries > sw.lastRec:
		event = wire.EventDegrade
		sw.lastDown, sw.lastRec = u.Downgrades, u.Recoveries
	case u.Final:
		return
	case sw.interval >= 0 && time.Since(sw.last) < sw.interval:
		return
	}
	sw.last = time.Now()
	sw.emit(&wire.StreamEvent{
		Event:      event,
		Events:     u.Events,
		Dropped:    u.Dropped,
		Batches:    u.Batches,
		Downgrades: u.Downgrades,
		Recoveries: u.Recoveries,
	})
}

// compile announces the compiled program.
func (sw *streamWriter) compile(cacheHit bool, rois int) {
	sw.emit(&wire.StreamEvent{Event: wire.EventCompile, CacheHit: cacheHit, ROIs: rois})
}

// attempt announces a retry of a degraded session.
func (sw *streamWriter) attempt(n int) {
	sw.emit(&wire.StreamEvent{Event: wire.EventAttempt, Attempt: n})
}

// result terminates the stream with the full response document. body is
// the indented non-streaming response body; it is compacted so the
// NDJSON line framing holds.
func (sw *streamWriter) result(status int, body []byte) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, body); err != nil {
		return
	}
	sw.emit(&wire.StreamEvent{Event: wire.EventResult, Status: status, Result: compact.Bytes()})
}

package core

import (
	"fmt"
	"sort"
	"strings"
)

// PSEKind says what kind of Program State Element an element is.
type PSEKind int

// PSE kinds. Variables are the function-scope scalars whose accesses
// memory-only tools ignore (§2.3); Globals, StackMem, and Heap cover the
// memory locations (per cell) of globals, stack aggregates, and heap
// allocations respectively.
const (
	PSEVariable PSEKind = iota
	PSEGlobal
	PSEStackMem
	PSEHeap
)

var pseKindNames = [...]string{"variable", "global", "stack-memory", "heap"}

// String returns the kind name.
func (k PSEKind) String() string { return pseKindNames[k] }

// PSEDesc identifies a Program State Element at the source level: where
// it was allocated and under which call stack (custom allocators make the
// stack essential, §3.1).
type PSEDesc struct {
	Kind       PSEKind
	Name       string // variable name, or a description of the allocation
	AllocPos   string // source position of the declaration/allocation site
	AllocStack CallstackID
	Cells      int
}

// Key returns the cross-run identity of the PSE, used when merging PSECs.
func (d PSEDesc) Key() string {
	return fmt.Sprintf("%d|%s|%s|%d", d.Kind, d.Name, d.AllocPos, d.AllocStack)
}

// CellRange classifies a contiguous run of cells of a memory PSE. A heap
// array can have a[1] in Transfer while the rest is Cloneable (Figure 2);
// ranges express exactly that.
type CellRange struct {
	Lo, Hi int // half-open cell interval [Lo, Hi) within the allocation
	Sets   SetMask
}

// UseSite is one static program statement in the ROI that accessed the
// element, together with every call stack under which it executed — the
// Use-callstacks component of PSEC (§3.1).
type UseSite struct {
	Pos        string
	IsWrite    bool
	Callstacks []CallstackID
}

// Element is the characterization of one PSE with respect to one ROI.
type Element struct {
	PSE  PSEDesc
	Sets SetMask
	// Ranges is non-empty for memory PSEs whose cells classify
	// differently; Sets is then the union over ranges.
	Ranges []CellRange
	// UseSites lists the ROI statements that touched this element.
	UseSites []UseSite
	// FirstAccess/LastAccess are event sequence numbers, used by the
	// weak-pointer suggestion (§3.2: the node with the oldest access).
	FirstAccess uint64
	LastAccess  uint64
	// Reducible is set when every in-ROI computation on the element uses
	// a single commutative OpenMP-supported reduction operator; Reduction
	// then names it ("+" or "*").
	Reducible bool
	Reduction string
}

// Stats aggregates profiling volume, including the variable-access
// amplification the paper measures in §2.3.
type Stats struct {
	TotalAccesses uint64 // all PSE accesses observed in ROIs
	VarAccesses   uint64 // accesses to function variables
	MemAccesses   uint64 // accesses to memory locations
	Invocations   uint64 // dynamic ROI invocations
	Events        uint64 // runtime events actually processed
}

// ROIInfo describes the characterized region.
type ROIInfo struct {
	ID   int
	Name string
	Kind string
	Pos  string
}

// PSEC is the Program State Element Characterization of one ROI: the
// classified elements, their use-callstacks, and the reachability graph.
type PSEC struct {
	ROI        ROIInfo
	Elements   []*Element
	Reach      *ReachGraph
	Callstacks *CallstackTable
	Stats      Stats
	// Truncated marks a characterization cut short by an execution
	// budget (step limit, wall deadline, or cancellation): the sets are
	// a sound under-approximation of the full run, not the full PSEC.
	Truncated bool `json:",omitempty"`
}

// ElementsIn returns the elements whose Sets include all bits of q,
// ordered by name for stable output.
func (p *PSEC) ElementsIn(q SetMask) []*Element {
	var out []*Element
	for _, e := range p.Elements {
		if e.Sets.Has(q) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PSE.Name < out[j].PSE.Name })
	return out
}

// ElementByName returns the first element with the given source name.
func (p *PSEC) ElementByName(name string) *Element {
	for _, e := range p.Elements {
		if e.PSE.Name == name {
			return e
		}
	}
	return nil
}

// Merge combines PSECs of the same ROI from different profiling runs into
// a new PSEC, per §4.2: Sets union with the Cloneable/Transfer exception,
// use-callstacks and reachability edges accumulated. (The paper leaves
// this to users "for engineering reasons"; we implement it.)
func Merge(runs ...*PSEC) *PSEC {
	if len(runs) == 0 {
		return nil
	}
	out := &PSEC{
		ROI:        runs[0].ROI,
		Reach:      NewReachGraph(),
		Callstacks: runs[0].Callstacks,
	}
	byKey := map[string]*Element{}
	edgeSeen := map[[2]string]*ReachEdge{}
	for _, run := range runs {
		out.Truncated = out.Truncated || run.Truncated
		out.Stats.TotalAccesses += run.Stats.TotalAccesses
		out.Stats.VarAccesses += run.Stats.VarAccesses
		out.Stats.MemAccesses += run.Stats.MemAccesses
		out.Stats.Invocations += run.Stats.Invocations
		out.Stats.Events += run.Stats.Events
		for _, e := range run.Elements {
			key := e.PSE.Key()
			got, ok := byKey[key]
			if !ok {
				cp := *e
				cp.Ranges = append([]CellRange(nil), e.Ranges...)
				cp.UseSites = append([]UseSite(nil), e.UseSites...)
				byKey[key] = &cp
				out.Elements = append(out.Elements, &cp)
				continue
			}
			got.Sets = MergeSets(got.Sets, e.Sets)
			got.Ranges = mergeRanges(got.Ranges, e.Ranges)
			got.UseSites = mergeUseSites(got.UseSites, e.UseSites)
			if e.FirstAccess < got.FirstAccess {
				got.FirstAccess = e.FirstAccess
			}
			if e.LastAccess > got.LastAccess {
				got.LastAccess = e.LastAccess
			}
			got.Reducible = got.Reducible && e.Reducible && got.Reduction == e.Reduction
			if !got.Reducible {
				got.Reduction = ""
			}
		}
		if run.Reach != nil {
			for _, edge := range run.Reach.Edges() {
				k := [2]string{edge.From.Key(), edge.To.Key()}
				if prev, ok := edgeSeen[k]; ok {
					if edge.FirstTime < prev.FirstTime {
						prev.FirstTime = edge.FirstTime
					}
					if edge.LastTime > prev.LastTime {
						prev.LastTime = edge.LastTime
					}
					continue
				}
				ne := out.Reach.AddEdge(edge.From, edge.To, edge.FirstTime)
				ne.LastTime = edge.LastTime
				edgeSeen[k] = ne
			}
		}
	}
	sort.Slice(out.Elements, func(i, j int) bool { return out.Elements[i].PSE.Key() < out.Elements[j].PSE.Key() })
	return out
}

func mergeRanges(a, b []CellRange) []CellRange {
	if len(a) == 0 {
		return append([]CellRange(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	// Merge per cell, then re-aggregate; ranges are small in practice.
	hi := 0
	for _, r := range a {
		if r.Hi > hi {
			hi = r.Hi
		}
	}
	for _, r := range b {
		if r.Hi > hi {
			hi = r.Hi
		}
	}
	cells := make([]SetMask, hi)
	for _, r := range a {
		for i := r.Lo; i < r.Hi; i++ {
			cells[i] = MergeSets(cells[i], r.Sets)
		}
	}
	for _, r := range b {
		for i := r.Lo; i < r.Hi; i++ {
			cells[i] = MergeSets(cells[i], r.Sets)
		}
	}
	return AggregateRanges(cells)
}

// AggregateRanges compresses a per-cell classification array into maximal
// contiguous runs, skipping unaccessed (zero) cells.
func AggregateRanges(cells []SetMask) []CellRange {
	var out []CellRange
	i := 0
	for i < len(cells) {
		if cells[i] == 0 {
			i++
			continue
		}
		j := i + 1
		for j < len(cells) && cells[j] == cells[i] {
			j++
		}
		out = append(out, CellRange{Lo: i, Hi: j, Sets: cells[i]})
		i = j
	}
	return out
}

func mergeUseSites(a, b []UseSite) []UseSite {
	type key struct {
		pos   string
		write bool
	}
	idx := map[key]int{}
	for i, u := range a {
		idx[key{u.Pos, u.IsWrite}] = i
	}
	for _, u := range b {
		k := key{u.Pos, u.IsWrite}
		if i, ok := idx[k]; ok {
			seen := map[CallstackID]bool{}
			for _, cs := range a[i].Callstacks {
				seen[cs] = true
			}
			for _, cs := range u.Callstacks {
				if !seen[cs] {
					a[i].Callstacks = append(a[i].Callstacks, cs)
				}
			}
			continue
		}
		idx[k] = len(a)
		a = append(a, u)
	}
	return a
}

// Summary renders a human-readable report of the PSEC.
func (p *PSEC) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PSEC of ROI %q (%s) at %s\n", p.ROI.Name, p.ROI.Kind, p.ROI.Pos)
	fmt.Fprintf(&b, "  invocations: %d, accesses: %d (variables %d, memory %d)\n",
		p.Stats.Invocations, p.Stats.TotalAccesses, p.Stats.VarAccesses, p.Stats.MemAccesses)
	for _, e := range p.Elements {
		fmt.Fprintf(&b, "  %-10s %-20s %-24s %s\n", e.PSE.Kind, e.PSE.Name, e.Sets, e.PSE.AllocPos)
		for _, r := range e.Ranges {
			if len(e.Ranges) > 1 || r.Sets != e.Sets {
				fmt.Fprintf(&b, "             cells [%d,%d): %s\n", r.Lo, r.Hi, r.Sets)
			}
		}
	}
	if p.Reach != nil && len(p.Reach.Edges()) > 0 {
		fmt.Fprintf(&b, "  reachability: %d edges, %d cycles\n", len(p.Reach.Edges()), len(p.Reach.Cycles()))
	}
	return b.String()
}

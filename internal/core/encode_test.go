package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func samplePSEC() *PSEC {
	cs := NewCallstackTable()
	main := cs.Intern([]Frame{{Func: "main", Pos: "t.mc:1:1"}})
	deep := cs.Intern([]Frame{{Func: "main", Pos: "t.mc:1:1"}, {Func: "f", Pos: "t.mc:8:2"}})
	p := &PSEC{
		ROI:        ROIInfo{ID: 2, Name: "hot", Kind: "carmot", Pos: "t.mc:5:1"},
		Callstacks: cs,
		Reach:      NewReachGraph(),
		Stats:      Stats{TotalAccesses: 12, VarAccesses: 8, MemAccesses: 4, Invocations: 3, Events: 9},
	}
	p.Elements = []*Element{
		{
			PSE:    PSEDesc{Kind: PSEVariable, Name: "sum", AllocPos: "t.mc:2:2", AllocStack: main, Cells: 1},
			Sets:   SetTransfer | SetInput | SetOutput,
			Ranges: []CellRange{{Lo: 0, Hi: 1, Sets: SetTransfer | SetInput | SetOutput}},
			UseSites: []UseSite{
				{Pos: "t.mc:6:3", IsWrite: true, Callstacks: []CallstackID{main, deep}},
			},
			FirstAccess: 5, LastAccess: 40,
			Reducible: true, Reduction: "+",
		},
		{
			PSE:  PSEDesc{Kind: PSEHeap, Name: "buf", AllocPos: "t.mc:3:3", AllocStack: deep, Cells: 4},
			Sets: SetInput | SetOutput,
			Ranges: []CellRange{
				{Lo: 0, Hi: 2, Sets: SetInput},
				{Lo: 2, Hi: 4, Sets: SetOutput},
			},
		},
	}
	p.Reach.AddEdge(p.Elements[0].PSE, p.Elements[1].PSE, 7)
	return p
}

func TestPSECJSONRoundTrip(t *testing.T) {
	orig := samplePSEC()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"transfer"`, `"reduction":"+"`, `"hot"`, `"buf"`, `"callstacks"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded JSON missing %s:\n%s", want, data)
		}
	}
	var back PSEC
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.ROI != orig.ROI || back.Stats != orig.Stats {
		t.Errorf("roi/stats changed: %+v %+v", back.ROI, back.Stats)
	}
	if len(back.Elements) != 2 {
		t.Fatalf("elements = %d", len(back.Elements))
	}
	sum := back.ElementByName("sum")
	if sum == nil || sum.Sets != orig.Elements[0].Sets || !sum.Reducible || sum.Reduction != "+" {
		t.Errorf("sum round-trip = %+v", sum)
	}
	if len(sum.UseSites) != 1 || len(sum.UseSites[0].Callstacks) != 2 {
		t.Errorf("use sites = %+v", sum.UseSites)
	}
	if got := back.Callstacks.Format(sum.UseSites[0].Callstacks[1]); !strings.Contains(got, "f (t.mc:8:2)") {
		t.Errorf("deep stack lost: %q", got)
	}
	buf := back.ElementByName("buf")
	if buf == nil || len(buf.Ranges) != 2 || buf.Ranges[1].Sets != SetOutput {
		t.Errorf("buf ranges = %+v", buf)
	}
	if len(back.Reach.Edges()) != 1 {
		t.Fatalf("edges = %d", len(back.Reach.Edges()))
	}
	if e := back.Reach.Edges()[0]; e.From.Name != "sum" || e.To.Name != "buf" || e.FirstTime != 7 {
		t.Errorf("edge = %+v", e)
	}
	// A second round trip is stable.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	var back2 PSEC
	if err := json.Unmarshal(data2, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.Summary() != back.Summary() {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", back2.Summary(), back.Summary())
	}
}

func TestPSECJSONRejectsGarbage(t *testing.T) {
	var p PSEC
	if err := json.Unmarshal([]byte(`{"elements":[{"kind":"alien","sets":[]}]}`), &p); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := json.Unmarshal([]byte(`{"elements":[{"kind":"heap","sets":["sideways"]}]}`), &p); err == nil {
		t.Error("unknown set should fail")
	}
	if err := json.Unmarshal([]byte(`{nonsense`), &p); err == nil {
		t.Error("bad JSON should fail")
	}
}

// TestMergeAfterRoundTrip: the §4.2 merge workflow over serialized runs.
func TestMergeAfterRoundTrip(t *testing.T) {
	a := samplePSEC()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b PSEC
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	m := Merge(a, &b)
	if len(m.Elements) != 2 {
		t.Errorf("merging a PSEC with its round-tripped copy should be idempotent, got %d elements", len(m.Elements))
	}
}

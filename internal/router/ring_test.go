package router

import (
	"fmt"
	"testing"
)

// TestRingOrderCoversAllReplicas: every key's walk visits each replica
// exactly once, starting from the key's home.
func TestRingOrderCoversAllReplicas(t *testing.T) {
	r := newRing(5, 64)
	for i := 0; i < 100; i++ {
		order := r.order(fmt.Sprintf("tenant\x00key-%d", i))
		if len(order) != 5 {
			t.Fatalf("key %d: order %v has %d entries, want 5", i, order, len(order))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("key %d: order %v repeats replica %d", i, order, idx)
			}
			seen[idx] = true
		}
	}
}

// TestRingOrderStable: the walk is a pure function of the key.
func TestRingOrderStable(t *testing.T) {
	a, b := newRing(4, 64), newRing(4, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		oa, ob := a.order(key), b.order(key)
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: orders differ: %v vs %v", key, oa, ob)
			}
		}
	}
}

// TestRingBalance: with enough vnodes, no replica of three owns a
// wildly disproportionate share of the keyspace.
func TestRingBalance(t *testing.T) {
	r := newRing(3, 64)
	counts := make([]int, 3)
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("tenant-%d\x00source-%d", i%7, i))[0]]++
	}
	for idx, c := range counts {
		if c < keys/6 || c > keys/2+keys/10 {
			t.Errorf("replica %d owns %d/%d keys — ring badly unbalanced (%v)", idx, c, keys, counts)
		}
	}
}

package core

import "strings"

// SetMask is a bitset over the four PSEC classification Sets (§3.1).
type SetMask uint8

// The four Sets. For a dynamically invoked ROI Z:
//
//	Input:     read by an invocation of Z before being written by any
//	           invocation of Z.
//	Output:    written by an invocation of Z (conservatively assumed read
//	           outside Z, §4.1).
//	Cloneable: written by more than one invocation with no intervening
//	           cross-invocation read — reusing storage without a RAW.
//	Transfer:  written by one invocation and read by a later one before
//	           any overwrite — a cross-invocation RAW dependence.
const (
	SetInput SetMask = 1 << iota
	SetOutput
	SetCloneable
	SetTransfer
)

// Has reports whether all bits of q are present.
func (m SetMask) Has(q SetMask) bool { return m&q == q }

// String renders like "{Input, Output}".
func (m SetMask) String() string {
	if m == 0 {
		return "{}"
	}
	var parts []string
	if m.Has(SetInput) {
		parts = append(parts, "Input")
	}
	if m.Has(SetOutput) {
		parts = append(parts, "Output")
	}
	if m.Has(SetCloneable) {
		parts = append(parts, "Cloneable")
	}
	if m.Has(SetTransfer) {
		parts = append(parts, "Transfer")
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MergeSets combines classifications of the same PSE from different runs
// (§4.2): set union, except that Cloneable from one run combined with
// Transfer from another conservatively yields Transfer (C ∩ T = ∅).
func MergeSets(a, b SetMask) SetMask {
	m := a | b
	if m.Has(SetCloneable) && m.Has(SetTransfer) {
		m &^= SetCloneable
	}
	return m
}

// Valid reports whether the mask is a possible terminal classification:
// Cloneable and Transfer are mutually exclusive, and both imply Output.
func (m SetMask) Valid() bool {
	if m.Has(SetCloneable) && m.Has(SetTransfer) {
		return false
	}
	if m.Has(SetCloneable) && !m.Has(SetOutput) {
		return false
	}
	if m.Has(SetTransfer) && !m.Has(SetOutput) {
		return false
	}
	return true
}

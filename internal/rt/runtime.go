package rt

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"carmot/internal/core"
	"carmot/internal/faultinject"
)

// Config configures the runtime.
type Config struct {
	BatchSize int // events per batch (default 4096)
	Workers   int // worker goroutines (default GOMAXPROCS)
	Profile   TrackingProfile
	Sites     []SiteInfo
	ROIs      []ROIMeta
	// StaticVarUses supplies compiler-known use sites (accesses whose
	// instrumentation optimization 1 removed), keyed by the variable's
	// declaration position.
	StaticVarUses map[string][]int32
	// ReducibleVars supplies the statically decided reduction operators,
	// keyed by the variable's declaration position.
	ReducibleVars map[string]string
	// Limits bounds shadow state; zero values are unlimited.
	Limits Limits
}

// Runtime is the profiling runtime. The program thread calls the Emit*
// methods and Finish; everything else runs on the pipeline goroutines.
type Runtime struct {
	cfg Config
	cs  *core.CallstackTable

	cur   []Event
	seq   uint64
	phase uint32

	nextBatch int
	filled    chan batchMsg
	done      chan []*core.PSEC
	workerWG  sync.WaitGroup
	toPost    chan processedMsg
	post      *postState

	// Lifecycle guard: Finish is idempotent; Emit after Finish is a
	// counted no-op instead of a send on a closed channel.
	finished   atomic.Bool
	finishOnce sync.Once
	result     []*core.PSEC

	// Governor state. gLevel is the degradation-ladder level, escalated
	// by the postprocessor and read by every stage.
	gLevel      atomic.Int32
	accepted    atomic.Uint64
	dropped     atomic.Uint64
	eventCapHit bool // program thread only

	diagMu sync.Mutex
	diag   Diagnostics
}

type batchMsg struct {
	idx int
	evs []Event
}

type processedMsg struct {
	idx   int
	items []postItem
}

// postItem is either a passthrough event or a block of condensed access
// summaries; items preserve intra-batch ordering across the two forms.
type postItem struct {
	ev   *Event
	sums []accSummary
	uses []useRec
}

// accSummary condenses every access to one cell within one phase of one
// batch; the FSA needs only the kind of the first access and whether any
// write followed (§4.1).
type accSummary struct {
	addr         uint64
	firstIsWrite bool
	hasWrite     bool
	count        uint64
	firstSeq     uint64
	lastSeq      uint64
}

// useRec aggregates use-callstack samples per (site, callstack).
type useRec struct {
	site    int32
	cs      core.CallstackID
	count   uint64
	samples []uint64 // representative accessed addresses (capped)
}

const maxUseSamples = 8

// New creates and starts a runtime.
func New(cfg Config) *Runtime {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	queue := 4 * cfg.Workers
	if cfg.Limits.MaxBatchQueue > 0 && cfg.Limits.MaxBatchQueue < queue {
		queue = cfg.Limits.MaxBatchQueue
	}
	r := &Runtime{
		cfg:    cfg,
		cs:     core.NewCallstackTable(),
		cur:    make([]Event, 0, cfg.BatchSize),
		filled: make(chan batchMsg, queue),
		toPost: make(chan processedMsg, queue),
		done:   make(chan []*core.PSEC, 1),
	}
	if cfg.Limits.MaxCallstacks > 0 {
		r.cs.SetCap(cfg.Limits.MaxCallstacks)
	}
	r.post = newPostState(r)
	// Worker threads: condense batches (the "Process Batch" stage).
	for i := 0; i < cfg.Workers; i++ {
		r.workerWG.Add(1)
		go r.worker()
	}
	// Post-processing stage: reorder and apply (the "Postprocess Batch"
	// stage; ordering preserves FSA and ASMT semantics).
	go r.postprocessor()
	go func() {
		r.workerWG.Wait()
		close(r.toPost)
	}()
	return r
}

// Callstacks exposes the interning table; the interpreter interns one
// stack per function entry (callstack clustering, §4.4 opt 7).
func (r *Runtime) Callstacks() *core.CallstackTable { return r.cs }

// Profile returns the tracking profile the runtime was configured with.
func (r *Runtime) Profile() TrackingProfile { return r.cfg.Profile }

// droppable reports whether the governor may shed the event under the
// MaxEvents cap. Structural events must pass: dropping an alloc/free or
// ROI boundary would corrupt the ASMT and phase accounting.
func droppable(k EventKind) bool {
	switch k {
	case EvAccess, EvRange, EvEscape, EvFixed:
		return true
	}
	return false
}

// Emit queues an event. The caller is the single program thread. It
// reports whether the event was accepted: false after Finish, or when
// the MaxEvents cap sheds it.
func (r *Runtime) Emit(ev Event) bool {
	if r.finished.Load() {
		r.dropped.Add(1)
		return false
	}
	if limit := r.cfg.Limits.MaxEvents; limit > 0 && r.accepted.Load() >= limit && droppable(ev.Kind) {
		if !r.eventCapHit {
			r.eventCapHit = true
			r.recordDowngrade(fmt.Sprintf("max-events=%d", limit), "drop-access-events")
		}
		r.dropped.Add(1)
		return false
	}
	r.accepted.Add(1)
	ev.Phase = r.phase
	ev.Seq = r.seq
	r.seq++
	r.cur = append(r.cur, ev)
	if len(r.cur) == cap(r.cur) {
		r.flush()
	}
	return true
}

// EmitAccess is the hot-path helper for single-cell accesses.
func (r *Runtime) EmitAccess(addr uint64, write bool, site int32, cs core.CallstackID) bool {
	return r.Emit(Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs})
}

// BeginROI marks the start of a dynamic ROI invocation.
func (r *Runtime) BeginROI(roi int) {
	r.Emit(Event{Kind: EvROIBegin, ROI: int32(roi)})
	r.phase++
}

// EndROI marks the end of a dynamic ROI invocation.
func (r *Runtime) EndROI(roi int) {
	r.Emit(Event{Kind: EvROIEnd, ROI: int32(roi)})
	r.phase++
}

func (r *Runtime) flush() {
	if len(r.cur) == 0 {
		return
	}
	r.filled <- batchMsg{idx: r.nextBatch, evs: r.cur}
	r.nextBatch++
	r.cur = make([]Event, 0, r.cfg.BatchSize)
}

// Finish flushes pending events, drains the pipeline, and returns the
// PSEC of every ROI (indexed by ROI ID). It is idempotent: repeated
// calls return the cached result instead of re-closing channels.
func (r *Runtime) Finish() []*core.PSEC {
	r.finishOnce.Do(func() {
		r.finished.Store(true)
		r.flush()
		close(r.filled)
		r.result = <-r.done
		r.assembleDiagnostics()
	})
	return r.result
}

// Diagnostics returns the run's resource/fault summary; valid after
// Finish has returned.
func (r *Runtime) Diagnostics() Diagnostics {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	d := r.diag
	d.Downgrades = append([]Downgrade(nil), r.diag.Downgrades...)
	d.Errors = append([]string(nil), r.diag.Errors...)
	// The drop counter keeps moving after Finish (post-Finish Emits are
	// counted no-ops), so read it live rather than from the snapshot.
	d.DroppedEvents = r.dropped.Load()
	return d
}

// Err summarizes contained pipeline faults as one error (nil when the
// pipeline ran clean). Valid after Finish.
func (r *Runtime) Err() error {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	if len(r.diag.Errors) == 0 {
		return nil
	}
	return errors.New("rt: pipeline faults contained: " + strings.Join(r.diag.Errors, "; "))
}

// assembleDiagnostics snapshots counters once the pipeline has fully
// drained (the postprocessor goroutine exited before done delivered, so
// reading postState here is race-free).
func (r *Runtime) assembleDiagnostics() {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Events = r.accepted.Load()
	r.diag.DroppedEvents = r.dropped.Load()
	r.diag.Batches = r.nextBatch
	r.diag.PeakLiveCells = r.post.peakCells
	r.diag.Callstacks = r.cs.Len()
	if r.cs.Capped() {
		r.diag.Downgrades = append(r.diag.Downgrades, Downgrade{
			Reason:  fmt.Sprintf("max-callstacks=%d", r.cfg.Limits.MaxCallstacks),
			Action:  "collapse-new-callstacks",
			AtEvent: r.diag.Events,
		})
	}
}

func (r *Runtime) recordDowngrade(reason, action string) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Downgrades = append(r.diag.Downgrades, Downgrade{
		Reason: reason, Action: action, AtEvent: r.accepted.Load(),
	})
}

// escalate climbs one degradation-ladder rung. Only the postprocessor
// goroutine escalates, so a plain store after Load is safe; other stages
// read gLevel atomically.
func (r *Runtime) escalate(reason string) bool {
	lvl := r.gLevel.Load()
	if lvl >= degradeCountsOnly {
		return false
	}
	lvl++
	r.gLevel.Store(lvl)
	r.recordDowngrade(reason, degradeName(lvl))
	return true
}

func (r *Runtime) recordPanic(stage string, v interface{}) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	switch stage {
	case "worker":
		r.diag.WorkerPanics++
	default:
		r.diag.PostprocessorPanics++
	}
	r.diag.Errors = append(r.diag.Errors, fmt.Sprintf("%s panic: %v", stage, v))
}

func (r *Runtime) worker() {
	defer r.workerWG.Done()
	for b := range r.filled {
		// A panicking batch is contained and forwarded empty so the
		// ordered postprocessor never stalls waiting for its index.
		r.toPost <- processedMsg{idx: b.idx, items: r.condenseSafe(b)}
	}
}

func (r *Runtime) condenseSafe(b batchMsg) (items []postItem) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("worker", p)
			items = nil
		}
	}()
	faultinject.Fire("rt.worker.batch")
	return condense(b.evs, r.gLevel.Load() >= degradeNoUseCS)
}

// condense is the worker stage: it folds runs of access events into
// per-cell summaries while passing structural events through in order.
// With dropUses the per-site use-callstack aggregation is skipped (the
// governor's first ladder rung).
func condense(evs []Event, dropUses bool) []postItem {
	var items []postItem
	type key struct {
		phase uint32
		addr  uint64
	}
	var sums map[key]*accSummary
	type useKey struct {
		site int32
		cs   core.CallstackID
	}
	var uses map[useKey]*useRec
	var order []key
	var useOrder []useKey

	flushBlock := func() {
		if len(sums) == 0 && len(uses) == 0 {
			return
		}
		it := postItem{}
		it.sums = make([]accSummary, 0, len(sums))
		for _, k := range order {
			it.sums = append(it.sums, *sums[k])
		}
		it.uses = make([]useRec, 0, len(uses))
		for _, k := range useOrder {
			it.uses = append(it.uses, *uses[k])
		}
		items = append(items, it)
		sums, uses, order, useOrder = nil, nil, nil, nil
	}

	for i := range evs {
		ev := &evs[i]
		if ev.Kind == EvAccess {
			if sums == nil {
				sums = map[key]*accSummary{}
				uses = map[useKey]*useRec{}
			}
			k := key{ev.Phase, ev.Addr}
			s := sums[k]
			if s == nil {
				s = &accSummary{addr: ev.Addr, firstIsWrite: ev.Write, firstSeq: ev.Seq}
				sums[k] = s
				order = append(order, k)
			}
			s.count++
			s.lastSeq = ev.Seq
			if ev.Write {
				s.hasWrite = true
			}
			if ev.Site >= 0 && !dropUses {
				uk := useKey{ev.Site, ev.CS}
				u := uses[uk]
				if u == nil {
					u = &useRec{site: ev.Site, cs: ev.CS}
					uses[uk] = u
					useOrder = append(useOrder, uk)
				}
				u.count++
				if len(u.samples) < maxUseSamples && !containsU64(u.samples, ev.Addr) {
					u.samples = append(u.samples, ev.Addr)
				}
			}
			continue
		}
		// Structural event: close the open summary block first so that
		// alloc/free/ROI boundaries interleave correctly.
		flushBlock()
		items = append(items, postItem{ev: ev})
	}
	flushBlock()
	return items
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (r *Runtime) postprocessor() {
	pending := map[int]processedMsg{}
	next := 0
	for msg := range r.toPost {
		pending[msg.idx] = msg
		for {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for i := range m.items {
				r.applySafe(&m.items[i])
			}
			next++
		}
	}
	// Drain any stragglers deterministically (should be empty).
	if len(pending) > 0 {
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			m := pending[i]
			for j := range m.items {
				r.applySafe(&m.items[j])
			}
		}
	}
	r.done <- r.finishSafe()
}

// applySafe contains a panic in one item's application: the item is
// lost and recorded, the pipeline keeps draining (so Emit never blocks
// on a full queue behind a dead postprocessor).
func (r *Runtime) applySafe(item *postItem) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("postprocessor", p)
		}
	}()
	faultinject.Fire("rt.post.apply")
	r.post.apply(item)
}

// finishSafe builds the PSECs, substituting empty (but non-nil) PSECs if
// report building itself faults, so Finish always returns len(ROIs)
// usable entries.
func (r *Runtime) finishSafe() (out []*core.PSEC) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("postprocessor.finish", p)
			out = r.emptyPSECs()
		}
	}()
	faultinject.Fire("rt.post.finish")
	return r.post.finish()
}

func (r *Runtime) emptyPSECs() []*core.PSEC {
	out := make([]*core.PSEC, len(r.cfg.ROIs))
	for i, meta := range r.cfg.ROIs {
		out[i] = &core.PSEC{
			ROI:        core.ROIInfo{ID: meta.ID, Name: meta.Name, Kind: meta.Kind, Pos: meta.Pos},
			Callstacks: r.cs,
		}
	}
	return out
}

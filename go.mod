module carmot

go 1.22

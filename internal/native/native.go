// Package native implements the "precompiled" functions MiniC programs
// declare with extern. In the paper these are the binary-only libraries
// whose PSE activity the compiler cannot see and the Pintool must trace
// (§4.5). Implementations operate directly on interpreter memory through
// the Env interface; when a call site is Pin-gated and executes inside an
// ROI, the interpreter hands the implementation a tracing Env so every
// cell access is reported to the runtime at binary-instrumentation cost.
package native

import (
	"fmt"
	"math"
)

// Env is the execution environment a native function runs against. Cell
// values are raw 64-bit words; floats are IEEE-754 bit patterns.
type Env interface {
	LoadCell(addr uint64) uint64
	StoreCell(addr uint64, val uint64)
	// Print receives program output (print_* functions).
	Print(s string)
	// RandState returns the program's deterministic PRNG state.
	RandState() *uint64
}

// Spec describes one native function.
type Spec struct {
	Name string
	// AccessesMemory is true when the implementation dereferences pointer
	// arguments; such calls need Pin tracing inside ROIs.
	AccessesMemory bool
	// ArgCount is the expected argument count (-1 for unchecked).
	ArgCount int
	Impl     func(env Env, args []uint64) uint64
	// Cost is the simulated cycle cost per call (plus per-cell work for
	// memory functions), used by the multicore cost model.
	Cost int64
}

var registry = map[string]*Spec{}

// Lookup returns the named spec, or nil.
func Lookup(name string) *Spec { return registry[name] }

// Names returns all registered native function names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("native: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// lcg advances a 64-bit linear congruential generator (MMIX constants);
// deterministic so profile runs are reproducible.
func lcg(state *uint64) uint64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return *state
}

func init() {
	register(&Spec{Name: "print_int", ArgCount: 1, Cost: 20,
		Impl: func(env Env, a []uint64) uint64 {
			env.Print(fmt.Sprintf("%d\n", int64(a[0])))
			return 0
		}})
	register(&Spec{Name: "print_float", ArgCount: 1, Cost: 20,
		Impl: func(env Env, a []uint64) uint64 {
			env.Print(fmt.Sprintf("%g\n", b2f(a[0])))
			return 0
		}})
	register(&Spec{Name: "sqrt", ArgCount: 1, Cost: 8,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Sqrt(b2f(a[0]))) }})
	register(&Spec{Name: "exp", ArgCount: 1, Cost: 12,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Exp(b2f(a[0]))) }})
	register(&Spec{Name: "log", ArgCount: 1, Cost: 12,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Log(b2f(a[0]))) }})
	register(&Spec{Name: "pow", ArgCount: 2, Cost: 16,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Pow(b2f(a[0]), b2f(a[1]))) }})
	register(&Spec{Name: "sin", ArgCount: 1, Cost: 12,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Sin(b2f(a[0]))) }})
	register(&Spec{Name: "cos", ArgCount: 1, Cost: 12,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Cos(b2f(a[0]))) }})
	register(&Spec{Name: "fabs", ArgCount: 1, Cost: 4,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Abs(b2f(a[0]))) }})
	register(&Spec{Name: "floor", ArgCount: 1, Cost: 4,
		Impl: func(env Env, a []uint64) uint64 { return f2b(math.Floor(b2f(a[0]))) }})
	register(&Spec{Name: "rand_seed", ArgCount: 1, Cost: 4,
		Impl: func(env Env, a []uint64) uint64 {
			*env.RandState() = a[0]
			return 0
		}})
	register(&Spec{Name: "rand_int", ArgCount: 1, Cost: 6,
		Impl: func(env Env, a []uint64) uint64 {
			r := lcg(env.RandState()) >> 11
			if a[0] == 0 {
				return r
			}
			return r % a[0]
		}})
	register(&Spec{Name: "rand_float", ArgCount: 0, Cost: 6,
		Impl: func(env Env, a []uint64) uint64 {
			r := lcg(env.RandState()) >> 11
			return f2b(float64(r) / float64(1<<53))
		}})

	// Memory functions: the precompiled code Pin exists for.
	register(&Spec{Name: "memcpy_cells", ArgCount: 3, AccessesMemory: true, Cost: 10,
		Impl: func(env Env, a []uint64) uint64 {
			dst, src, n := a[0], a[1], int64(a[2])
			for i := int64(0); i < n; i++ {
				env.StoreCell(dst+uint64(i), env.LoadCell(src+uint64(i)))
			}
			return dst
		}})
	register(&Spec{Name: "memset_cells", ArgCount: 3, AccessesMemory: true, Cost: 10,
		Impl: func(env Env, a []uint64) uint64 {
			dst, val, n := a[0], a[1], int64(a[2])
			for i := int64(0); i < n; i++ {
				env.StoreCell(dst+uint64(i), val)
			}
			return dst
		}})
	register(&Spec{Name: "sum_cells", ArgCount: 2, AccessesMemory: true, Cost: 10,
		Impl: func(env Env, a []uint64) uint64 {
			src, n := a[0], int64(a[1])
			var sum int64
			for i := int64(0); i < n; i++ {
				sum += int64(env.LoadCell(src + uint64(i)))
			}
			return uint64(sum)
		}})
	register(&Spec{Name: "fsum_cells", ArgCount: 2, AccessesMemory: true, Cost: 10,
		Impl: func(env Env, a []uint64) uint64 {
			src, n := a[0], int64(a[1])
			var sum float64
			for i := int64(0); i < n; i++ {
				sum += b2f(env.LoadCell(src + uint64(i)))
			}
			return f2b(sum)
		}})
}

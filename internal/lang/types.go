package lang

import (
	"fmt"
	"strings"
)

// TypeKind enumerates MiniC type kinds.
type TypeKind int

// Type kinds. All scalars (int, float, fnptr, pointers) occupy exactly one
// memory cell (the interpreter's 8-byte word); arrays and structs occupy
// the sum of their element/field cells.
const (
	KindVoid TypeKind = iota
	KindInt
	KindFloat
	KindFnPtr
	KindPointer
	KindArray
	KindStruct
)

// Type describes a MiniC type.
type Type struct {
	Kind   TypeKind
	Elem   *Type       // pointee for KindPointer, element for KindArray
	Len    int         // array length for KindArray
	Struct *StructType // for KindStruct
}

// Canonical scalar types, shared across the front end.
var (
	TypeVoid  = &Type{Kind: KindVoid}
	TypeInt   = &Type{Kind: KindInt}
	TypeFloat = &Type{Kind: KindFloat}
	TypeFnPtr = &Type{Kind: KindFnPtr}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: KindPointer, Elem: elem} }

// ArrayOf returns the array type [n]elem.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: KindArray, Elem: elem, Len: n} }

// Cells returns the size of the type in memory cells.
func (t *Type) Cells() int {
	switch t.Kind {
	case KindVoid:
		return 0
	case KindInt, KindFloat, KindFnPtr, KindPointer:
		return 1
	case KindArray:
		return t.Len * t.Elem.Cells()
	case KindStruct:
		return t.Struct.Cells()
	}
	panic("lang: unknown type kind")
}

// IsScalar reports whether the type is a one-cell value type.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case KindInt, KindFloat, KindFnPtr, KindPointer:
		return true
	}
	return false
}

// IsNumeric reports whether arithmetic is defined on the type.
func (t *Type) IsNumeric() bool { return t.Kind == KindInt || t.Kind == KindFloat }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindPointer:
		return t.Elem.Equal(o.Elem)
	case KindArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case KindStruct:
		return t.Struct == o.Struct
	}
	return true
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindFnPtr:
		return "fnptr"
	case KindPointer:
		return t.Elem.String() + "*"
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case KindStruct:
		return "struct " + t.Struct.Name
	}
	return "<bad type>"
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int // cell offset within the struct
	Pos    Pos
}

// StructType is a named aggregate. Field offsets are assigned in
// declaration order with no padding (every scalar is one cell).
type StructType struct {
	Name   string
	Fields []Field
	size   int
	Pos    Pos
}

// Cells returns the struct size in cells.
func (s *StructType) Cells() int { return s.size }

// FieldByName returns the field with the given name, or nil.
func (s *StructType) FieldByName(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

func (s *StructType) layout() {
	off := 0
	for i := range s.Fields {
		s.Fields[i].Offset = off
		off += s.Fields[i].Type.Cells()
	}
	s.size = off
}

func (s *StructType) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { ", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, "%s %s; ", f.Type, f.Name)
	}
	b.WriteString("}")
	return b.String()
}

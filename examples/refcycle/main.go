// Refcycle: the §5.2 smart-pointer use case. A program builds a linked
// structure whose back-pointers form a reference-counting cycle across
// several functions; with the whole program as the ROI, CARMOT's
// reachability graph finds the cycle and suggests which reference should
// become a weak pointer.
//
// Run with: go run ./examples/refcycle
package main

import (
	"fmt"
	"log"

	"carmot"
)

// A document/paragraph structure: each paragraph keeps a back-pointer to
// its document — the classic shared_ptr cycle that leaks.
const source = `
struct para_t {
	struct doc_t* p_doc;
	int p_len;
};

struct doc_t {
	struct para_t* d_paras;
	int d_nparas;
};

struct doc_t* newdoc(int nparas) {
	struct doc_t* d = malloc(1);
	d->d_paras = malloc(nparas);
	d->d_nparas = nparas;
	return d;
}

void link_paras(struct doc_t* d) {
	for (int i = 0; i < d->d_nparas; i++) {
		d->d_paras[i].p_doc = d;
		d->d_paras[i].p_len = 10 * i;
	}
}

int total_len(struct doc_t* d) {
	int t = 0;
	for (int i = 0; i < d->d_nparas; i++) {
		t = t + d->d_paras[i].p_len;
	}
	return t;
}

int main() {
	struct doc_t* d = newdoc(6);
	link_paras(d);
	int t = total_len(d);
	// d is never freed: the cycle d -> d_paras -> d keeps it alive.
	return t;
}
`

func main() {
	prog, err := carmot.Compile("doc.mc", source, carmot.CompileOptions{WholeProgramROI: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseSmartPointers})
	if err != nil {
		log.Fatal(err)
	}
	psec := res.PSECs[0]
	rec := carmot.RecommendSmartPointers(psec)
	fmt.Print(rec.Report())
	fmt.Printf("\nleaked heap cells at exit: %d\n", res.Run.LeakedCells)
	if len(rec.Cycles) > 0 && rec.Cycles[0].WeakSuggestion != nil {
		w := rec.Cycles[0].WeakSuggestion
		fmt.Printf("porting advice: declare the %s -> %s reference as weak_ptr\n", w.From, w.To)
	}
}

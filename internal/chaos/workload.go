package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"carmot/internal/core"
	"carmot/internal/rt"
)

// op is one step of a chaos workload, mirroring the event classes the
// pipeline routes (see internal/rt's differential tests): allocations
// with address reuse, frees, escapes, sited accesses with interned
// callstacks, strided ranges, fixed classifications, and nested ROIs.
type op struct {
	kind   rt.EventKind
	roi    int32
	addr   uint64
	n      int64
	stride uint64
	target uint64
	site   int32
	cs     int
	sets   core.SetMask
	write  bool
}

// genOps builds the reproducible op stream for a seed. Both the
// reference run and the faulted run replay the same stream, so report
// divergence can only come from the faults.
func genOps(r *rand.Rand) []op {
	bases := []uint64{1 << 10, 1<<12 + 3, 1<<16 + 7, 1 << 20, 3<<16 + 1, 5<<12 + 9}
	type live struct {
		base  uint64
		cells int64
	}
	var allocs []live
	open := [2]bool{}
	var ops []op

	emitAlloc := func() {
		b := bases[r.Intn(len(bases))] + uint64(r.Intn(3))*4096
		n := int64(1 + r.Intn(24))
		ops = append(ops, op{kind: rt.EvAlloc, addr: b, n: n})
		allocs = append(allocs, live{b, n})
	}
	for i := 0; i < 3; i++ {
		emitAlloc()
	}
	ops = append(ops, op{kind: rt.EvROIBegin, roi: 0})
	open[0] = true

	nOps := 200 + r.Intn(400)
	for i := 0; i < nOps; i++ {
		switch r.Intn(24) {
		case 0, 1:
			emitAlloc()
		case 2:
			if len(allocs) > 0 {
				j := r.Intn(len(allocs))
				ops = append(ops, op{kind: rt.EvFree, addr: allocs[j].base})
				allocs = append(allocs[:j], allocs[j+1:]...)
			}
		case 3:
			if len(allocs) >= 2 {
				a := allocs[r.Intn(len(allocs))]
				b := allocs[r.Intn(len(allocs))]
				ops = append(ops, op{kind: rt.EvEscape, addr: a.base, target: b.base})
			}
		case 4, 5:
			ops = append(ops, op{kind: rt.EvROIBegin, roi: 0})
			if open[0] {
				ops[len(ops)-1].kind = rt.EvROIEnd
			}
			open[0] = !open[0]
		case 6:
			ops = append(ops, op{kind: rt.EvROIBegin, roi: 1})
			if open[1] {
				ops[len(ops)-1].kind = rt.EvROIEnd
			}
			open[1] = !open[1]
		case 7, 8:
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				ops = append(ops, op{
					kind: rt.EvRange, roi: int32(r.Intn(2)), write: r.Intn(2) == 0,
					addr: a.base + uint64(r.Intn(4)), n: int64(1 + r.Intn(40)),
					stride: uint64(1 + r.Intn(5)),
				})
			}
		case 9:
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				ops = append(ops, op{
					kind: rt.EvFixed, roi: int32(r.Intn(2)),
					addr: a.base, n: 1 + int64(r.Intn(int(a.cells))),
					sets: core.SetMask(1 << uint(r.Intn(4))),
				})
			}
		case 10, 11:
			// Producer-coalesced access runs: same-cell (stride 0) and
			// strided, with and without use-site attribution, so faults and
			// journal replays cover the EvAccessRun wire format too.
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				o := op{
					kind: rt.EvAccessRun, addr: a.base + uint64(r.Intn(4)),
					n: int64(2 + r.Intn(16)), stride: uint64(r.Intn(3)),
					write: r.Intn(2) == 0, site: -1,
				}
				if r.Intn(2) == 0 {
					o.site = int32(r.Intn(2))
					o.cs = r.Intn(3)
				}
				ops = append(ops, o)
			}
		default:
			addr := bases[r.Intn(len(bases))] + uint64(r.Intn(28))
			if len(allocs) > 0 {
				a := allocs[r.Intn(len(allocs))]
				addr = a.base + uint64(r.Int63n(a.cells))
			}
			o := op{kind: rt.EvAccess, addr: addr, write: r.Intn(2) == 0, site: -1}
			if r.Intn(2) == 0 {
				o.site = int32(r.Intn(2))
				o.cs = r.Intn(3)
			}
			ops = append(ops, o)
		}
	}
	for roi := int32(1); roi >= 0; roi-- {
		if open[roi] {
			ops = append(ops, op{kind: rt.EvROIEnd, roi: roi})
		}
	}
	return ops
}

// run replays an op stream through a fresh pipeline and renders every
// ROI's PSEC as text + JSON — the byte-equivalence currency of the
// harness.
func run(cfg rt.Config, ops []op) (string, rt.Diagnostics, error) {
	r := rt.New(cfg)
	cs := []core.CallstackID{
		0,
		r.Callstacks().Intern([]core.Frame{{Func: "main", Pos: "c.mc:10:1"}}),
		r.Callstacks().Intern([]core.Frame{{Func: "kern", Pos: "c.mc:20:1"}}),
	}
	for i, o := range ops {
		switch o.kind {
		case rt.EvAlloc:
			r.EmitAlloc(o.addr, o.n, cs[1], &rt.AllocMeta{
				Kind: core.PSEHeap, Name: fmt.Sprintf("a%x", o.addr), Pos: "c.mc:3:3"})
		case rt.EvFree:
			r.EmitFree(o.addr)
		case rt.EvEscape:
			r.EmitEscape(o.addr, o.target)
		case rt.EvROIBegin:
			r.BeginROI(int(o.roi))
		case rt.EvROIEnd:
			r.EndROI(int(o.roi))
		case rt.EvRange:
			r.EmitRange(o.roi, o.write, o.addr, o.n, o.stride)
		case rt.EvFixed:
			r.EmitFixed(o.roi, o.addr, o.n, o.sets)
		case rt.EvAccess:
			r.EmitAccess(o.addr, o.write, o.site, cs[o.cs])
		case rt.EvAccessRun:
			r.EmitAccessRun(o.addr, o.stride, o.n, o.write, o.site, cs[o.cs])
		default:
			panic(fmt.Sprintf("op %d: unhandled kind %d", i, o.kind))
		}
	}
	psecs := r.Finish()
	var sb strings.Builder
	for _, p := range psecs {
		if p == nil {
			sb.WriteString("<nil>\n")
			continue
		}
		sb.WriteString(p.Summary())
		data, err := json.Marshal(p)
		if err != nil {
			panic(err)
		}
		sb.Write(data)
		sb.WriteByte('\n')
	}
	return sb.String(), r.Diagnostics(), r.Err()
}

package rt

import "fmt"

// Limits bounds the runtime's shadow state. A zero value means
// "unlimited" for that resource, which preserves the historical
// behaviour; production runs set them so a runaway ROI degrades the
// profile instead of exhausting memory.
type Limits struct {
	// MaxEvents caps the droppable events (accesses, ranges, escapes,
	// fixed classifications) accepted from the program thread; structural
	// events (alloc/free/ROI boundaries) always pass so the ASMT stays
	// consistent.
	MaxEvents uint64
	// MaxLiveCells caps the live per-(ROI, cell) FSA tracking slots. On
	// breach the governor climbs the degradation ladder (see Diagnostics).
	MaxLiveCells int64
	// MaxCallstacks caps the interned callstack-table entries; new stacks
	// beyond the cap collapse to the empty stack.
	MaxCallstacks int
	// MaxBatchQueue caps the filled-batch queue depth (backpressure on
	// the program thread). Zero keeps the default of 4×Workers.
	MaxBatchQueue int
}

// Degradation-ladder levels, in escalation order. Each rung gives up a
// cheaper-to-lose PSEC component so profiling can continue under the
// configured caps instead of aborting.
const (
	degradeNone        int32 = iota
	degradeNoUseCS           // stop collecting per-site use-callstack samples
	degradeCoarseCells       // track new allocations as one coarse cell
	degradeCountsOnly        // stop per-cell FSA tracking; keep access counts
)

func degradeName(level int32) string {
	switch level {
	case degradeNoUseCS:
		return "drop-use-callstacks"
	case degradeCoarseCells:
		return "coarse-cell-tracking"
	case degradeCountsOnly:
		return "counts-only"
	}
	return "none"
}

// Downgrade records one degradation-ladder step taken during a run.
type Downgrade struct {
	// Reason names the breached cap (e.g. "max-live-cells=4096").
	Reason string
	// Action names the ladder rung ("drop-use-callstacks", ...).
	Action string
	// AtEvent is the accepted-event count when the downgrade happened.
	AtEvent uint64
}

func (d Downgrade) String() string {
	return fmt.Sprintf("%s: %s (at event %d)", d.Reason, d.Action, d.AtEvent)
}

// Recovery outcomes.
const (
	// RecoveryReplayed: the failed stage was respawned and its journal
	// partition replayed; the report is unaffected by the fault.
	RecoveryReplayed = "replayed"
	// RecoveryDegraded: the journal was unavailable (budget refused or
	// evicted the partition, or attempts ran out) and the supervisor fell
	// back to the degradation rung; data was lost and the report says so.
	RecoveryDegraded = "degraded"
)

// Recovery records one supervisor intervention after a contained
// pipeline fault — the first rung of the recover → degrade → truncate
// failure ladder.
type Recovery struct {
	// Stage is the pipeline stage that faulted: "worker", "sequencer",
	// or "shard".
	Stage string
	// ID identifies the failed partition: the batch index for a worker,
	// the shard id for a shard, 0 for the sequencer.
	ID int
	// Outcome is RecoveryReplayed or RecoveryDegraded.
	Outcome string
	// Reason carries the contained panic message.
	Reason string
	// Ops counts the replayed units: raw events for a worker batch,
	// journaled ops for a shard replay.
	Ops int
}

func (r Recovery) String() string {
	return fmt.Sprintf("%s %d: %s (%s)", r.Stage, r.ID, r.Outcome, r.Reason)
}

// Diagnostics summarizes a profiling run's runtime behaviour: volume,
// peak shadow state, every degradation taken, and every contained fault.
// It is valid after Finish returns.
type Diagnostics struct {
	// Events is the number of events accepted from the program thread.
	Events uint64
	// DroppedEvents counts events rejected by the MaxEvents cap or
	// emitted after Finish.
	DroppedEvents uint64
	// Batches is the number of batches pushed through the pipeline.
	Batches int
	// PeakLiveCells is the high-water mark of live FSA tracking slots.
	PeakLiveCells int64
	// Callstacks is the size of the interned callstack table.
	Callstacks int
	// Downgrades lists every degradation-ladder step, in order.
	Downgrades []Downgrade
	// Recoveries lists every supervisor intervention (successful replays
	// and degraded fallbacks), in order. Only populated when the runtime
	// runs with Config.Recover.
	Recoveries []Recovery
	// WorkerPanics / PostprocessorPanics count contained pipeline panics,
	// including ones the supervisor subsequently recovered.
	WorkerPanics        int
	PostprocessorPanics int
	// Errors carries the messages of every contained fault.
	Errors []string
	// Truncated marks a run stopped by a step budget, wall deadline, or
	// cancellation; TruncatedReason says which. Set by the caller that
	// owns the execution budget (carmot.Profile), not by the runtime.
	Truncated       bool
	TruncatedReason string
}

// Degraded reports whether any cap forced a downgrade.
func (d *Diagnostics) Degraded() bool { return len(d.Downgrades) > 0 }

// RecoveryFailed reports whether any supervisor intervention fell back
// to the degradation rung instead of replaying.
func (d *Diagnostics) RecoveryFailed() bool {
	for _, r := range d.Recoveries {
		if r.Outcome == RecoveryDegraded {
			return true
		}
	}
	return false
}

// Command carmotd is the CARMOT profiling daemon: a long-lived HTTP
// service that accepts MiniC sources, compiles them through a
// content-addressed program cache, and multiplexes concurrent profile
// sessions over one shared worker pool with per-tenant admission
// control, request deadlines, retry-from-journal, and load-shed
// degradation.
//
// Usage:
//
//	carmotd [flags]
//
// Endpoints:
//
//	POST /v1/profile — profile a source; see internal/serve for the
//	                   request/response schema. Identical repeated
//	                   requests replay from the PSEC result cache
//	                   (X-Carmot-Result-Cache header reports the
//	                   outcome); ?stream=1 switches the response to
//	                   NDJSON progress events
//	GET  /v1/healthz — liveness (503 while draining)
//	GET  /v1/statz   — serving-layer counters as JSON
//
// Example:
//
//	carmotd -addr :8458 &
//	curl -s -X POST -H 'X-Carmot-Tenant: alice' \
//	  -d '{"source":"int main(){int a[8]; #pragma carmot roi r\nfor(int i=0;i<8;i++){a[i]=i;} return 0;}","reports":true}' \
//	  http://localhost:8458/v1/profile
//
// SIGTERM/SIGINT drains gracefully: the listener closes, in-flight
// sessions run to completion (bounded by -drain-timeout), and new
// requests on kept-alive connections get structured 503s.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carmot/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8458", "listen address")
		poolSlots    = flag.Int("pool-slots", 0, "machine-wide pipeline slot budget shared by all sessions (0 = 4×GOMAXPROCS)")
		sessWorkers  = flag.Int("session-workers", 0, "worker slots each session asks for (0 = default 2)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant admission rate, requests/second (0 = default 50)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = default 100)")
		maxTimeout   = flag.Duration("max-timeout", 0, "cap on per-request deadlines (0 = default 60s)")
		defTimeout   = flag.Duration("default-timeout", 0, "deadline when a request carries none (0 = default 10s)")
		maxRetries   = flag.Int("max-retries", 0, "re-runs of sessions that came back degraded (0 = default 2)")
		resultBytes  = flag.Int64("result-cache-bytes", 0, "byte budget of the PSEC result cache (0 = default 64 MiB)")
		noResults    = flag.Bool("no-result-cache", false, "disable the PSEC result cache; every request runs a session")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for in-flight sessions")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: carmotd [flags]")
		flag.Usage()
		os.Exit(2)
	}
	resultCacheBytes := *resultBytes
	if *noResults {
		resultCacheBytes = -1
	}
	if err := run(*addr, serve.Config{
		PoolSlots:        *poolSlots,
		SessionWorkers:   *sessWorkers,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		MaxTimeout:       *maxTimeout,
		DefaultTimeout:   *defTimeout,
		MaxRetries:       *maxRetries,
		ResultCacheBytes: resultCacheBytes,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "carmotd:", err)
		os.Exit(1)
	}
}

// run serves until SIGTERM/SIGINT, then drains.
func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("carmotd: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("carmotd: draining")

	// Stop admissions first so kept-alive connections get structured
	// 503s, then close the listener and wait for in-flight requests.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-drainDone; err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("carmotd: drained, bye")
	return nil
}

// Package harness regenerates every table and figure of the paper's
// evaluation (§5) from the CARMOT-Go implementation: Table 1, the §2.3
// access-amplification study, Figure 6 (speedups of original vs
// CARMOT-induced parallelism), Figure 7 (OpenMP-use-case overhead, naive
// vs CARMOT), Figure 8 (per-optimization overhead-reduction breakdown),
// Figure 9 (the nab reference cycle and its leak reduction), Figure 10
// (smart-pointer overhead), and Figure 11 (STATS overhead).
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/core"
	"carmot/internal/instrument"
	"carmot/internal/ir"
	"carmot/internal/recommend"
	"carmot/internal/rt"
)

// Config tunes the experiment runs.
type Config struct {
	// Threads is the simulated core count for Figure 6 (default 24, the
	// paper's dual-socket 12-core machine).
	Threads int
	// ScaleDiv divides benchmark input scales for faster runs (default 1).
	ScaleDiv int
	// MaxSteps bounds each program execution.
	MaxSteps int64
	// Timeout bounds each profiling run's wall-clock time (0 = none).
	// Experiments need complete data, so a truncated run is reported as
	// an error rather than silently plotted.
	Timeout time.Duration
}

// profile runs prog.Profile with the harness budget applied and rejects
// truncated runs: every figure assumes complete executions.
func (c Config) profile(prog *carmot.Program, opts carmot.ProfileOptions) (*carmot.ProfileResult, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = c.MaxSteps
	}
	opts.Timeout = c.Timeout
	res, err := prog.Profile(opts)
	if err != nil {
		return res, err
	}
	if res.Diagnostics.Truncated {
		return res, fmt.Errorf("harness: run truncated (%s); raise MaxSteps/Timeout", res.Diagnostics.TruncatedReason)
	}
	return res, nil
}

func (c Config) norm() Config {
	if c.Threads <= 0 {
		c.Threads = 24
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 1
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 4_000_000_000
	}
	return c
}

func (c Config) dev(b bench.Benchmark) int  { return max(8, b.DevScale/c.ScaleDiv) }
func (c Config) prod(b bench.Benchmark) int { return max(8, b.ProdScale/c.ScaleDiv) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Table 1 ----

// Table1 renders the abstraction→PSEC-components table.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Different abstractions need different parts of PSEC.\n")
	fmt.Fprintf(&b, "%-42s %-14s %-15s %s\n", "Abstraction", "Sets (I,O,C,T)", "Use-callstacks", "Reachability Graph")
	keys := make([]string, 0)
	t1 := recommend.Table1()
	for k := range t1 {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, k := range keys {
		n := t1[k]
		fmt.Fprintf(&b, "%-42s %-14s %-15s %s\n", k, mark(n.Sets), mark(n.UseCallstacks), mark(n.Reachability))
	}
	return b.String()
}

// ---- §2.3: access amplification ----

// AccessRow is one benchmark's in-ROI access census.
type AccessRow struct {
	Bench  string
	VarAcc uint64
	MemAcc uint64
	Factor float64 // (var+mem)/mem — the §2.3 amplification
}

// Accesses measures, per benchmark, how many more accesses PSEC must
// track compared to a memory-only tool (§2.3 reports 8× on average).
func Accesses(cfg Config) ([]AccessRow, float64, error) {
	cfg = cfg.norm()
	var rows []AccessRow
	logsum, n := 0.0, 0
	for _, b := range bench.All() {
		prog, err := carmot.Compile(b.Name+".mc", b.Source(cfg.dev(b)), carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
		}
		res, err := cfg.profile(prog, carmot.ProfileOptions{UseCase: carmot.UseFull, Naive: true})
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", b.Name, err)
		}
		var va, ma uint64
		for _, p := range res.PSECs {
			va += p.Stats.VarAccesses
			ma += p.Stats.MemAccesses
		}
		if ma == 0 {
			ma = 1
		}
		f := float64(va+ma) / float64(ma)
		rows = append(rows, AccessRow{Bench: b.Name, VarAcc: va, MemAcc: ma, Factor: f})
		// Benchmarks whose ROI touches essentially no memory (ep's kernel
		// is pure scalar arithmetic) make the ratio degenerate; they are
		// reported but excluded from the average.
		if ma > 1 {
			logsum += math.Log(f)
			n++
		}
	}
	return rows, math.Exp(logsum / float64(n)), nil
}

// RenderAccesses formats the access census.
func RenderAccesses(rows []AccessRow, geomean float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.3: PSE accesses PSEC must track vs memory-only tools (in-ROI)\n")
	fmt.Fprintf(&b, "%-15s %14s %14s %10s\n", "benchmark", "variable", "memory", "factor")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %14d %14d %9.2fx\n", r.Bench, r.VarAcc, r.MemAcc, r.Factor)
	}
	fmt.Fprintf(&b, "%-15s %40.2fx (geomean; paper reports ~8x)\n", "average", geomean)
	return b.String()
}

// ---- Figure 6: speedups ----

// Fig6Row is one benchmark's speedups.
type Fig6Row struct {
	Bench    string
	Original float64
	Carmot   float64
}

// Fig6 profiles each benchmark at development scale, generates CARMOT's
// recommendations, and simulates production-scale execution under the
// benchmark's original parallelism and under the CARMOT-induced one.
func Fig6(cfg Config) ([]Fig6Row, error) {
	cfg = cfg.norm()
	var rows []Fig6Row
	for _, b := range bench.All() {
		row, err := Fig6One(cfg, b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6One computes one benchmark's Figure 6 entry.
func Fig6One(cfg Config, b bench.Benchmark) (Fig6Row, error) {
	cfg = cfg.norm()
	copts := carmot.CompileOptions{ProfileOmpRegions: true}
	devProg, err := carmot.Compile(b.Name+".mc", b.Source(cfg.dev(b)), copts)
	if err != nil {
		return Fig6Row{}, err
	}
	devRes, err := cfg.profile(devProg, carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
	if err != nil {
		return Fig6Row{}, err
	}
	recsByID := RecommendAll(devProg, devRes)

	prodProg, err := carmot.Compile(b.Name+".mc", b.Source(cfg.prod(b)), copts)
	if err != nil {
		return Fig6Row{}, err
	}
	recs := MapRecommendations(prodProg, recsByID)

	orig, err := prodProg.SimulateOriginal(cfg.Threads, nil, cfg.MaxSteps)
	if err != nil {
		return Fig6Row{}, err
	}
	cm, err := prodProg.SimulateCarmot(cfg.Threads, recs, nil, cfg.MaxSteps)
	if err != nil {
		return Fig6Row{}, err
	}
	return Fig6Row{Bench: b.Name, Original: orig.Speedup(), Carmot: cm.Speedup()}, nil
}

// RecommendAll builds a parallel-for recommendation for every loop-shaped
// ROI, keyed by ROI ID.
func RecommendAll(prog *carmot.Program, res *carmot.ProfileResult) map[int]*recommend.ParallelFor {
	out := map[int]*recommend.ParallelFor{}
	for _, roi := range prog.ROIs() {
		if roi.Loop == nil {
			continue
		}
		out[roi.ID] = carmot.RecommendParallelFor(res.PSECs[roi.ID], roi)
	}
	return out
}

// MapRecommendations re-keys dev-profile recommendations onto the ROIs of
// a production-scale compilation of the same source (ROI IDs are stable
// across scales: the source structure is identical).
func MapRecommendations(prog *carmot.Program, byID map[int]*recommend.ParallelFor) map[*ir.ROI]*recommend.ParallelFor {
	out := map[*ir.ROI]*recommend.ParallelFor{}
	for _, roi := range prog.ROIs() {
		if rec, ok := byID[roi.ID]; ok {
			out[roi] = rec
		}
	}
	return out
}

// RenderFig6 formats the speedup chart.
func RenderFig6(rows []Fig6Row, threads int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: speedup over serial (%d simulated threads)\n", threads)
	fmt.Fprintf(&b, "%-15s %10s %10s\n", "benchmark", "original", "CARMOT")
	lo, lc, n := 0.0, 0.0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %9.2fx %9.2fx\n", r.Bench, r.Original, r.Carmot)
		lo += math.Log(r.Original)
		lc += math.Log(r.Carmot)
		n++
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-15s %9.2fx %9.2fx (geomean)\n", "average",
			math.Exp(lo/float64(n)), math.Exp(lc/float64(n)))
	}
	return b.String()
}

// ---- Overhead figures (7, 10, 11) ----

// OverheadRow is one benchmark's profiling overhead under the naive
// baseline and under CARMOT.
type OverheadRow struct {
	Bench  string
	Naive  float64 // slowdown factor vs uninstrumented
	Carmot float64
	// Wall-clock factors are reported alongside (secondary; the
	// interpreter's own slowness compresses them).
	NaiveWall  float64
	CarmotWall float64
}

// overheadOne measures one benchmark's overhead for a use case.
func overheadOne(cfg Config, b bench.Benchmark, copts carmot.CompileOptions, use carmot.UseCase) (OverheadRow, error) {
	scale := cfg.dev(b)
	baseProg, err := carmot.Compile(b.Name+".mc", b.Source(scale), copts)
	if err != nil {
		return OverheadRow{}, err
	}
	t0 := time.Now()
	base, err := baseProg.Execute(nil, cfg.MaxSteps)
	if err != nil {
		return OverheadRow{}, err
	}
	baseWall := time.Since(t0)

	measure := func(naive bool) (float64, float64, error) {
		prog, err := carmot.Compile(b.Name+".mc", b.Source(scale), copts)
		if err != nil {
			return 0, 0, err
		}
		t := time.Now()
		res, err := cfg.profile(prog, carmot.ProfileOptions{UseCase: use, Naive: naive})
		if err != nil {
			return 0, 0, err
		}
		wall := time.Since(t)
		over := float64(res.Run.Cycles+res.Run.ToolCycles) / float64(base.Cycles)
		return over, float64(wall) / float64(baseWall), nil
	}
	naive, naiveWall, err := measure(true)
	if err != nil {
		return OverheadRow{}, err
	}
	cm, cmWall, err := measure(false)
	if err != nil {
		return OverheadRow{}, err
	}
	return OverheadRow{Bench: b.Name, Naive: naive, Carmot: cm, NaiveWall: naiveWall, CarmotWall: cmWall}, nil
}

// Fig7 measures the OpenMP-use-case overhead (naive vs CARMOT) for every
// benchmark.
func Fig7(cfg Config) ([]OverheadRow, error) {
	cfg = cfg.norm()
	var rows []OverheadRow
	for _, b := range bench.All() {
		row, err := overheadOne(cfg, b, carmot.CompileOptions{ProfileOmpRegions: true}, carmot.UseOpenMP)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10 measures the smart-pointer use-case overhead: the ROI is the
// whole program and only allocations plus the reachability graph are
// tracked by CARMOT (§5.2).
func Fig10(cfg Config) ([]OverheadRow, error) {
	cfg = cfg.norm()
	var rows []OverheadRow
	for _, b := range bench.All() {
		row, err := overheadOne(cfg, b,
			carmot.CompileOptions{WholeProgramROI: true, IgnoreCarmotPragmas: true},
			carmot.UseSmartPointers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig11 measures the STATS use-case overhead on the §5.3 workloads.
func Fig11(cfg Config) ([]OverheadRow, error) {
	cfg = cfg.norm()
	var rows []OverheadRow
	for _, b := range bench.StatsWorkloads() {
		row, err := overheadOne(cfg, b,
			carmot.CompileOptions{ProfileStatsRegions: true, IgnoreCarmotPragmas: true},
			carmot.UseSTATS)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderOverhead formats an overhead figure.
func RenderOverhead(title string, rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-15s %12s %12s %10s %14s\n", "benchmark", "naive", "CARMOT", "ratio", "(wall n/c)")
	ln, lc, n := 0.0, 0.0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %11.1fx %11.1fx %9.1fx %6.1fx/%.1fx\n",
			r.Bench, r.Naive, r.Carmot, r.Naive/r.Carmot, r.NaiveWall, r.CarmotWall)
		ln += math.Log(r.Naive)
		lc += math.Log(r.Carmot)
		n++
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-15s %11.1fx %11.1fx %9.1fx (geomean)\n", "average",
			math.Exp(ln/float64(n)), math.Exp(lc/float64(n)),
			math.Exp(ln/float64(n))/math.Exp(lc/float64(n)))
	}
	return b.String()
}

// ---- Figure 8: per-optimization breakdown ----

// Fig8Row is one benchmark's overhead-reduction attribution.
type Fig8Row struct {
	Bench string
	// Percent of the naive→CARMOT overhead reduction attributable to each
	// optimization group (leave-one-out attribution, normalized).
	Pin        float64
	Clustering float64
	Callgraph  float64
	Redundant  float64
}

// Fig8 attributes the naive→CARMOT overhead reduction of Figure 7 to the
// optimization groups of the paper: Pin gating, callstack clustering, the
// call-graph -O3 optimization, and redundant-instrumentation removal
// (opts 1–4 together, as in the paper).
func Fig8(cfg Config) ([]Fig8Row, error) {
	cfg = cfg.norm()
	var rows []Fig8Row
	for _, b := range bench.All() {
		row, err := fig8One(cfg, b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig8One(cfg Config, b bench.Benchmark) (Fig8Row, error) {
	scale := cfg.dev(b)
	copts := carmot.CompileOptions{ProfileOmpRegions: true}

	run := func(o instrument.Options) (float64, error) {
		prog, err := carmot.Compile(b.Name+".mc", b.Source(scale), copts)
		if err != nil {
			return 0, err
		}
		res, err := cfg.profile(prog, carmot.ProfileOptions{Optimizations: &o})
		if err != nil {
			return 0, err
		}
		return float64(res.Run.Cycles + res.Run.ToolCycles), nil
	}

	full := instrument.Carmot(rt.ProfileOpenMP)
	all, err := run(full)
	if err != nil {
		return Fig8Row{}, err
	}
	without := func(mod func(*instrument.Options)) (float64, error) {
		o := full
		mod(&o)
		return run(o)
	}
	dPin, err := without(func(o *instrument.Options) { o.PinGating = false })
	if err != nil {
		return Fig8Row{}, err
	}
	dClu, err := without(func(o *instrument.Options) { o.CallstackClustering = false })
	if err != nil {
		return Fig8Row{}, err
	}
	dCG, err := without(func(o *instrument.Options) { o.CallgraphO3 = false })
	if err != nil {
		return Fig8Row{}, err
	}
	dRed, err := without(func(o *instrument.Options) {
		o.SubsequentAccess, o.Aggregation, o.FixedState, o.Mem2Reg = false, false, false, false
	})
	if err != nil {
		return Fig8Row{}, err
	}
	deltas := []float64{dPin - all, dClu - all, dCG - all, dRed - all}
	total := 0.0
	for i, d := range deltas {
		if d < 0 {
			deltas[i] = 0
		}
		total += deltas[i]
	}
	row := Fig8Row{Bench: b.Name}
	if total > 0 {
		row.Pin = 100 * deltas[0] / total
		row.Clustering = 100 * deltas[1] / total
		row.Callgraph = 100 * deltas[2] / total
		row.Redundant = 100 * deltas[3] / total
	}
	return row, nil
}

// RenderFig8 formats the breakdown.
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: overhead reduction attributed per CARMOT optimization [%%]\n")
	fmt.Fprintf(&b, "%-15s %8s %12s %12s %12s\n", "benchmark", "pin", "clustering", "callgraph", "redundant")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %7.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			r.Bench, r.Pin, r.Clustering, r.Callgraph, r.Redundant)
	}
	return b.String()
}

// ---- Figure 9: the nab reference cycle ----

// Fig9Result carries the nab cycle findings.
type Fig9Result struct {
	Report         string
	Cycles         int
	LeakedCells    uint64
	RecoveredCells uint64
	ReductionPct   float64
}

// Fig9 profiles the nab analog with the whole program as the ROI, finds
// the molecule→strand→molecule reference cycle, and estimates the leak
// reduction from applying the weak-pointer suggestion (the paper measures
// 230,537 → 127,633 bytes, a 44.6%% reduction).
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.norm()
	b, err := bench.ByName("nab")
	if err != nil {
		return nil, err
	}
	prog, err := carmot.Compile("nab.mc", b.Source(cfg.dev(b)),
		carmot.CompileOptions{WholeProgramROI: true, IgnoreCarmotPragmas: true})
	if err != nil {
		return nil, err
	}
	res, err := cfg.profile(prog, carmot.ProfileOptions{UseCase: carmot.UseSmartPointers})
	if err != nil {
		return nil, err
	}
	psec := res.PSECs[0]
	rec := carmot.RecommendSmartPointers(psec)

	// Breaking the cycle lets the reference-counted structure collapse:
	// every leaked allocation reachable from a cycle node gets freed.
	recoverable := map[string]bool{}
	for _, cyc := range psec.Reach.Cycles() {
		var work []string
		for _, n := range cyc.Nodes {
			if !recoverable[n.AllocPos] {
				recoverable[n.AllocPos] = true
				work = append(work, n.AllocPos)
			}
		}
		for len(work) > 0 {
			pos := work[len(work)-1]
			work = work[:len(work)-1]
			for _, e := range psec.Reach.Edges() {
				if e.From.AllocPos == pos && !recoverable[e.To.AllocPos] {
					recoverable[e.To.AllocPos] = true
					work = append(work, e.To.AllocPos)
				}
			}
		}
	}
	var recovered uint64
	for _, leak := range res.Run.LeakedAllocs {
		if recoverable[leak.Pos] {
			recovered += uint64(leak.Cells)
		}
	}
	out := &Fig9Result{
		Report:         rec.Report(),
		Cycles:         len(rec.Cycles),
		LeakedCells:    res.Run.LeakedCells,
		RecoveredCells: recovered,
	}
	if out.LeakedCells > 0 {
		out.ReductionPct = 100 * float64(recovered) / float64(out.LeakedCells)
	}
	return out, nil
}

// RenderFig9 formats the cycle findings.
func RenderFig9(r *Fig9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: reference cycle in nab (whole-program ROI)\n")
	b.WriteString(r.Report)
	fmt.Fprintf(&b, "leaked: %d cells; recoverable by breaking the cycle: %d cells (%.1f%% reduction; paper: 44.6%%)\n",
		r.LeakedCells, r.RecoveredCells, r.ReductionPct)
	return b.String()
}

// ---- §5.3: STATS classification comparison ----

// StatsComparison compares CARMOT's automatic STATS classes against the
// manual annotation for one workload.
type StatsComparison struct {
	Bench      string
	Auto       *recommend.STATSClasses
	Manual     ManualStats
	Mismatches []string
}

// ManualStats is the authors' manual classification from the pragma.
type ManualStats struct {
	Input, Output, State []string
}

// CompareStats profiles each STATS workload and diffs CARMOT's classes
// against the manual annotation (§5.3: CARMOT matched the authors and
// exposed misclassifications costing unnecessary copies).
func CompareStats(cfg Config) ([]StatsComparison, error) {
	cfg = cfg.norm()
	var out []StatsComparison
	for _, b := range bench.StatsWorkloads() {
		prog, err := carmot.Compile(b.Name+".mc", b.Source(cfg.dev(b)),
			carmot.CompileOptions{ProfileStatsRegions: true, IgnoreCarmotPragmas: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		res, err := cfg.profile(prog, carmot.ProfileOptions{UseCase: carmot.UseSTATS})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if len(prog.ROIs()) == 0 {
			return nil, fmt.Errorf("%s: no stats region", b.Name)
		}
		roi := prog.ROIs()[0]
		auto := carmot.RecommendSTATS(res.PSECs[roi.ID])
		manual := ManualStats{}
		if roi.Pragma != nil {
			manual.Input = roi.Pragma.StatsInput
			manual.Output = roi.Pragma.StatsOutput
			manual.State = roi.Pragma.StatsState
		}
		cmp := StatsComparison{Bench: b.Name, Auto: auto, Manual: manual}
		inClass := func(list []string, name string) bool {
			for _, n := range list {
				if n == name {
					return true
				}
			}
			return false
		}
		for _, name := range manual.State {
			if !inClass(auto.State, name) {
				cmp.Mismatches = append(cmp.Mismatches,
					fmt.Sprintf("%s: manually State, CARMOT says it is not (unnecessary copy)", name))
			}
		}
		for _, name := range manual.Input {
			if !inClass(auto.Input, name) {
				cmp.Mismatches = append(cmp.Mismatches,
					fmt.Sprintf("%s: manually Input, CARMOT disagrees", name))
			}
		}
		out = append(out, cmp)
	}
	return out, nil
}

// RenderStats formats the comparison.
func RenderStats(cmps []StatsComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.3: CARMOT vs manual STATS classification\n")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-12s auto: %s\n", c.Bench, c.Auto.Pragma())
		if len(c.Mismatches) == 0 {
			fmt.Fprintf(&b, "%-12s matches the manual classification\n", "")
		}
		for _, m := range c.Mismatches {
			fmt.Fprintf(&b, "%-12s misclassification found: %s\n", "", m)
		}
	}
	return b.String()
}

// Elements is a convenience for dumping one PSEC as text.
func Elements(p *core.PSEC) string { return p.Summary() }

// ---- §5.1: pragma verification across the suite ----

// VerifyRow is one benchmark's pragma-verification outcome.
type VerifyRow struct {
	Bench    string
	Pragmas  int
	OK       int
	Warnings int
	Errors   int
	Reports  []string
}

// VerifyAll re-establishes the §5.1 claim: every hand-written
// `#pragma omp parallel for` in the suite is checked against its
// PSEC-derived recommendation.
func VerifyAll(cfg Config) ([]VerifyRow, error) {
	cfg = cfg.norm()
	var rows []VerifyRow
	for _, b := range bench.All() {
		prog, err := carmot.Compile(b.Name+".mc", b.Source(cfg.dev(b)), carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		res, err := cfg.profile(prog, carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		row := VerifyRow{Bench: b.Name}
		for _, v := range prog.VerifyOmpPragmas(res) {
			row.Pragmas++
			if v.OK() {
				row.OK++
			}
			for _, f := range v.Findings {
				if f.Severity == recommend.VerifyError {
					row.Errors++
				} else {
					row.Warnings++
				}
			}
			if len(v.Findings) > 0 {
				row.Reports = append(row.Reports, v.Report())
			}
		}
		sort.Strings(row.Reports)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderVerify formats the verification sweep.
func RenderVerify(rows []VerifyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.1: verification of the benchmarks' own omp pragmas\n")
	fmt.Fprintf(&b, "%-15s %8s %8s %9s %8s\n", "benchmark", "pragmas", "verified", "warnings", "errors")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %8d %8d %9d %8d\n", r.Bench, r.Pragmas, r.OK, r.Warnings, r.Errors)
	}
	for _, r := range rows {
		for _, rep := range r.Reports {
			b.WriteString(rep)
		}
	}
	return b.String()
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"carmot"
	"carmot/internal/faultinject"
	"carmot/internal/testutil"
	"carmot/internal/wire"
)

const demoSrc = `int N = 64;
int a[64];
int main() {
	int s = 0;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		a[i] = i * 2;
		s = s + a[i];
	}
	return s % 251;
}
`

// spinSrc runs long enough for deadline/cancellation tests to hit it
// mid-flight on any machine.
const spinSrc = `int main() {
	int s = 0;
	#pragma carmot roi spin
	for (int i = 0; i < 200000000; i++) { s = s + i; }
	return s;
}
`

func postProfile(t *testing.T, h http.Handler, req profileRequest, hdr map[string]string) (*httptest.ResponseRecorder, profileResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var resp profileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, w.Body.Bytes())
	}
	return w, resp
}

// TestServeProfile is the happy path: compile, profile, respond 200
// with exit_code 0, diagnostics, PSECs, and a recommendation report;
// the second request for the same source must hit the program cache.
func TestServeProfile(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()

	w, resp := postProfile(t, h, profileRequest{Source: demoSrc, PSECs: true, Reports: true}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.Bytes())
	}
	if resp.ExitCode != 0 || resp.Kind != wire.KindOK {
		t.Fatalf("exit=%d kind=%q err=%q, want clean run", resp.ExitCode, resp.Kind, resp.Error)
	}
	if resp.Diagnostics == nil || resp.Diagnostics.Events == 0 {
		t.Errorf("diagnostics missing or empty: %+v", resp.Diagnostics)
	}
	if resp.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", resp.Attempts)
	}
	if resp.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if len(resp.PSECs) == 0 {
		t.Error("psecs requested but absent")
	}
	if len(resp.Reports) == 0 || !strings.Contains(resp.Reports[0], "pragma") {
		t.Errorf("reports requested but absent/empty: %q", resp.Reports)
	}
	if resp.Workers < 1 {
		t.Errorf("granted workers = %d", resp.Workers)
	}

	_, resp2 := postProfile(t, h, profileRequest{Source: demoSrc}, nil)
	if !resp2.CacheHit {
		t.Error("second request missed the program cache")
	}
	st := s.Snapshot()
	if st.Requests != 2 || st.Completed != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeRequestErrors covers the 4xx ladder: malformed body, unknown
// use case, empty source, compile error, ROI-less program, bad method.
func TestServeRequestErrors(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()

	cases := []struct {
		name     string
		body     string
		method   string
		wantCode int
		wantKind string
	}{
		{"bad json", "{", http.MethodPost, http.StatusBadRequest, wire.KindUsage},
		{"unknown use", `{"source":"int main(){return 0;}","use":"mpi"}`, http.MethodPost, http.StatusBadRequest, wire.KindUsage},
		{"empty source", `{}`, http.MethodPost, http.StatusBadRequest, wire.KindUsage},
		{"compile error", `{"source":"int main() { return x; }"}`, http.MethodPost, http.StatusUnprocessableEntity, wire.KindError},
		{"no roi", `{"source":"int main() { return 0; }"}`, http.MethodPost, http.StatusUnprocessableEntity, wire.KindError},
		{"bad method", "", http.MethodGet, http.StatusMethodNotAllowed, wire.KindUsage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := httptest.NewRequest(c.method, "/v1/profile", strings.NewReader(c.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code != c.wantCode {
				t.Fatalf("status = %d, want %d; body %s", w.Code, c.wantCode, w.Body.Bytes())
			}
			var resp profileResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("error response is not JSON: %v", err)
			}
			if resp.Kind != c.wantKind || resp.Error == "" {
				t.Errorf("kind=%q error=%q, want kind %q with message", resp.Kind, resp.Error, c.wantKind)
			}
		})
	}
}

// TestServeProgramFault: a program that crashes still completes the
// session — 200 with exit_code 1 and the fault text, mirroring the CLI.
func TestServeProgramFault(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	w, resp := postProfile(t, s.Handler(), profileRequest{
		Source: "int main() { int* p; #pragma carmot roi r\nfor (int i = 0; i < 2; i++) { p[i] = 1; }\nreturn 0; }",
	}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (completed session)", w.Code)
	}
	if resp.ExitCode != 1 || resp.Kind != wire.KindError || resp.Error == "" {
		t.Fatalf("exit=%d kind=%q err=%q, want program-fault error", resp.ExitCode, resp.Kind, resp.Error)
	}
}

// TestServeDeadline: a request deadline must truncate the session, not
// hang it — 200 with exit_code 3 and the truncation reason.
func TestServeDeadline(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	start := time.Now()
	w, resp := postProfile(t, s.Handler(), profileRequest{Source: spinSrc, TimeoutMs: 150}, nil)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline did not cut the run: took %v", elapsed)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.Bytes())
	}
	if resp.ExitCode != 3 || resp.Kind != wire.KindBudget {
		t.Fatalf("exit=%d kind=%q err=%q, want budget truncation", resp.ExitCode, resp.Kind, resp.Error)
	}
	if resp.Diagnostics == nil || !resp.Diagnostics.Truncated {
		t.Errorf("diagnostics not marked truncated: %+v", resp.Diagnostics)
	}
}

// TestServeCancelMidSession: the client going away cancels the session
// through the request context; the session must wind down without
// leaking pipeline goroutines.
func TestServeCancelMidSession(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	body, _ := json.Marshal(profileRequest{Source: spinSrc, TimeoutMs: 30_000})
	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	s.Handler().ServeHTTP(w, r)
	var resp profileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	if resp.ExitCode != 3 || resp.Kind != wire.KindBudget {
		t.Fatalf("exit=%d kind=%q, want truncation from cancellation", resp.ExitCode, resp.Kind)
	}
}

// TestServeAdmissionShed: a tenant over its token bucket gets a
// structured 429 with a Retry-After hint, and does not consume a
// session; other tenants are unaffected.
func TestServeAdmissionShed(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{TenantRate: 0.001, TenantBurst: 1})
	h := s.Handler()

	if w, _ := postProfile(t, h, profileRequest{Source: demoSrc}, map[string]string{TenantHeader: "alice"}); w.Code != http.StatusOK {
		t.Fatalf("first request: status %d", w.Code)
	}
	w, resp := postProfile(t, h, profileRequest{Source: demoSrc}, map[string]string{TenantHeader: "alice"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", w.Code)
	}
	if resp.Kind != wire.KindShed || resp.RetryAfterMs <= 0 {
		t.Fatalf("shed response = kind %q retry_after_ms %d", resp.Kind, resp.RetryAfterMs)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	if w, _ := postProfile(t, h, profileRequest{Source: demoSrc}, map[string]string{TenantHeader: "bob"}); w.Code != http.StatusOK {
		t.Errorf("other tenant was shed too: status %d", w.Code)
	}
	if st := s.Snapshot(); st.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", st.Shed)
	}
}

// TestServeRetryFromJournal is the recovery contract end to end: a
// pipeline fault that defeats the in-process journal replay surfaces as
// a degraded first attempt; the serving layer re-runs the session from
// the cached program and the final response must be clean — with PSECs
// byte-identical to a fault-free run.
func TestServeRetryFromJournal(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()

	// Fault-free reference first (also warms the program cache).
	_, ref := postProfile(t, h, profileRequest{Source: demoSrc, PSECs: true}, nil)
	if ref.ExitCode != 0 {
		t.Fatalf("reference run failed: %+v", ref)
	}

	// Shot 1 panics the first shard op; the replay shot panics the
	// rebuild, so the in-process supervisor has to degrade — the class
	// of failure only a session re-run can heal.
	defer faultinject.Reset()
	faultinject.Set("rt.shard.apply", faultinject.PanicOnShots("injected shard fault", 1))
	faultinject.Set("rt.shard.replay", faultinject.PanicOnShots("injected replay fault", 1))

	// The reference run stored its result; bypass the result cache so
	// this request actually runs into the injected faults.
	w, resp := postProfile(t, h, profileRequest{Source: demoSrc, PSECs: true, NoResultCache: true}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.Bytes())
	}
	if resp.ExitCode != 0 || resp.Kind != wire.KindOK {
		t.Fatalf("exit=%d kind=%q err=%q, want retried clean run", resp.ExitCode, resp.Kind, resp.Error)
	}
	if resp.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one degraded, one clean)", resp.Attempts)
	}
	if !resp.CacheHit {
		t.Error("retry path should run from the cached program")
	}
	if !bytes.Equal(resp.PSECs, ref.PSECs) {
		t.Fatalf("retried PSECs differ from fault-free reference\nref:\n%s\ngot:\n%s", ref.PSECs, resp.PSECs)
	}
	if st := s.Snapshot(); st.Retries != 1 || st.Degraded != 0 {
		t.Errorf("stats = %+v, want retries=1 degraded=0", st)
	}
}

// TestServeRetriesExhausted: when every attempt comes back degraded the
// daemon stops retrying and answers 500 with the internal kind — the
// honest signal that the profile, not the program, is at fault.
func TestServeRetriesExhausted(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{MaxRetries: 1, RetryBase: time.Millisecond})
	defer faultinject.Reset()
	// Panic on every shard op and every replay: no attempt can finish
	// clean, whatever the op count — the deterministic-fault worst case
	// the respawn cap exists for.
	faultinject.Set("rt.shard.apply", func() { panic("injected") })
	faultinject.Set("rt.shard.replay", func() { panic("injected replay") })

	w, resp := postProfile(t, s.Handler(), profileRequest{Source: demoSrc}, nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", w.Code, w.Body.Bytes())
	}
	if resp.Kind != wire.KindInternal || resp.Attempts != 2 {
		t.Fatalf("kind=%q attempts=%d, want internal after 2 attempts", resp.Kind, resp.Attempts)
	}
	if resp.Diagnostics == nil || len(resp.Diagnostics.Recoveries) == 0 {
		t.Errorf("degraded response carries no recovery trail: %+v", resp.Diagnostics)
	}
	if st := s.Snapshot(); st.Degraded != 1 {
		t.Errorf("degraded counter = %d, want 1", st.Degraded)
	}
}

// TestServeHealthzReadiness: /v1/healthz keeps the bare 200/503 status
// contract but now carries a wire.Health readiness body — shed-ladder
// level, pool occupancy, draining flag — so a router can weight
// replicas instead of treating health as binary.
func TestServeHealthzReadiness(t *testing.T) {
	s := New(Config{PoolSlots: 4})
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("healthz content-type = %q", ct)
	}
	var hb wire.Health
	if err := json.Unmarshal(w.Body.Bytes(), &hb); err != nil {
		t.Fatalf("healthz body is not wire.Health: %v\n%s", err, w.Body.Bytes())
	}
	if hb.Status != "ok" || hb.Draining || hb.DegradeLevel != 0 {
		t.Errorf("idle readiness = %+v, want ok/not-draining/level 0", hb)
	}
	if hb.PoolSlots != 4 || hb.FreeSlots != 4 {
		t.Errorf("idle pool = %d free of %d, want 4 of 4", hb.FreeSlots, hb.PoolSlots)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "draining" || !hb.Draining {
		t.Errorf("draining readiness = %+v, want status=draining + flag", hb)
	}
}

// TestServeDrain: draining refuses new sessions with structured 503s,
// healthz flips, and in-flight sessions complete first.
func TestServeDrain(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()

	// An in-flight session started before the drain...
	started := make(chan struct{})
	finished := make(chan profileResponse, 1)
	go func() {
		close(started)
		_, resp := postProfile(t, h, profileRequest{Source: demoSrc}, nil)
		finished <- resp
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// ...must have completed by the time Drain returns.
	select {
	case resp := <-finished:
		if resp.ExitCode != 0 {
			t.Errorf("in-flight session during drain: %+v", resp)
		}
	default:
		t.Error("Drain returned with a session still in flight")
	}

	w, resp := postProfile(t, h, profileRequest{Source: demoSrc}, nil)
	if w.Code != http.StatusServiceUnavailable || resp.Kind != wire.KindDraining {
		t.Fatalf("post-drain request: status %d kind %q, want 503 draining", w.Code, resp.Kind)
	}
	hw := httptest.NewRecorder()
	h.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hw.Code)
	}
}

// TestServeDegradeLadder pins the load → fidelity mapping without
// standing up real load: levels derive from pool occupancy.
func TestServeDegradeLadder(t *testing.T) {
	s := New(Config{PoolSlots: 4})
	if lvl := s.degradeLevel(); lvl != 0 {
		t.Fatalf("idle level = %d", lvl)
	}
	g1, err := s.pool.Acquire(context.Background(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := s.degradeLevel(); lvl != 1 {
		t.Fatalf("level at load 0.5 = %d, want 1 (soft)", lvl)
	}
	g2, err := s.pool.Acquire(context.Background(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lvl := s.degradeLevel(); lvl != 2 {
		t.Fatalf("level at load 1.0 = %d, want 2 (hard)", lvl)
	}
	g2.Release()
	g1.Release()

	// A session admitted at the hard rung runs truncation-capped but
	// still completes with valid PSECs. The rung is snapshotted before
	// the session takes its own slots, so the pre-existing load alone
	// must cross the hard threshold: 7 of 8 slots out is 0.875 ≥ 0.85.
	s = New(Config{PoolSlots: 8})
	hogs := make([]interface{ Release() }, 0, 7)
	for i := 0; i < 7; i++ {
		g, err := s.pool.Acquire(context.Background(), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		hogs = append(hogs, g)
	}
	defer func() {
		for _, g := range hogs {
			g.Release()
		}
	}()
	w, resp := postProfile(t, s.Handler(), profileRequest{Source: demoSrc}, nil)
	if w.Code != http.StatusOK || resp.ExitCode != 0 {
		t.Fatalf("hard-rung session: status %d exit %d err %q", w.Code, resp.ExitCode, resp.Error)
	}
	if resp.DegradeLevel != 2 {
		t.Errorf("degrade_level = %d, want 2", resp.DegradeLevel)
	}
	if resp.Workers != 1 {
		t.Errorf("workers = %d, want the single remaining slot", resp.Workers)
	}
}

// TestServeStatz exercises the endpoint shape.
func TestServeStatz(t *testing.T) {
	s := New(Config{})
	postProfile(t, s.Handler(), profileRequest{Source: demoSrc}, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/statz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statz = %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statz not JSON: %v", err)
	}
	if st.Requests != 1 || st.PoolSlots < 1 {
		t.Errorf("statz = %+v", st)
	}
}

// TestServeCacheSingleflight: concurrent requests for one uncached
// source must share a single compile.
func TestServeCacheSingleflight(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	c := newProgramCache(8)
	key := cacheKey("x.mc", demoSrc, carmot.CompileOptions{ProfileOmpRegions: true})
	compiles := make(chan struct{}, 16)
	done := make(chan error, 16)
	for i := 0; i < 8; i++ {
		go func() {
			entry, _ := c.get(key, func() (*carmot.Program, error) {
				compiles <- struct{}{}
				time.Sleep(10 * time.Millisecond)
				return carmot.Compile("x.mc", demoSrc, carmot.CompileOptions{ProfileOmpRegions: true})
			})
			done <- entry.err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("cached compile: %v", err)
		}
	}
	if n := len(compiles); n != 1 {
		t.Fatalf("%d compiles for one key, want 1", n)
	}
}

// TestServeCacheEviction: the LRU must bound residency and keep the
// hottest entries.
func TestServeCacheEviction(t *testing.T) {
	c := newProgramCache(2)
	compile := func(src string) func() (*carmot.Program, error) {
		return func() (*carmot.Program, error) {
			return carmot.Compile("x.mc", src, carmot.CompileOptions{WholeProgramROI: true})
		}
	}
	srcs := make([]string, 3)
	keys := make([]string, 3)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("int main() { return %d; }", i)
		keys[i] = cacheKey("x.mc", srcs[i], carmot.CompileOptions{WholeProgramROI: true})
	}
	for i, src := range srcs {
		if entry, _ := c.get(keys[i], compile(src)); entry.err != nil {
			t.Fatal(entry.err)
		}
	}
	// 0 is the LRU victim; 1 and 2 resident.
	if _, hit := c.get(keys[2], compile(srcs[2])); !hit {
		t.Error("hottest entry was evicted")
	}
	if _, hit := c.get(keys[0], compile(srcs[0])); hit {
		t.Error("oldest entry survived past capacity")
	}
	if _, _, size := c.stats(); size != 2 {
		t.Errorf("cache size = %d, want 2", size)
	}
}

// TestServeCacheErrorNotRetained: compile failures must not poison the
// cache.
func TestServeCacheErrorNotRetained(t *testing.T) {
	c := newProgramCache(4)
	key := cacheKey("x.mc", "int main() { return y; }", carmot.CompileOptions{})
	if entry, _ := c.get(key, func() (*carmot.Program, error) {
		return carmot.Compile("x.mc", "int main() { return y; }", carmot.CompileOptions{})
	}); entry.err == nil {
		t.Fatal("bad program compiled")
	}
	// The follow-up must re-run the compile (miss, not a cached error).
	ran := false
	if entry, hit := c.get(key, func() (*carmot.Program, error) {
		ran = true
		return carmot.Compile("x.mc", demoSrc, carmot.CompileOptions{})
	}); entry.err != nil || hit || !ran {
		t.Fatalf("error was retained: err=%v hit=%v ran=%v", entry.err, hit, ran)
	}
}

// TestServeAdmissionRefill pins the token-bucket arithmetic with a fake
// clock.
func TestServeAdmissionRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(2, 2, func() time.Time { return now })
	for i := 0; i < 2; i++ {
		if ok, _ := a.admit("t"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := a.admit("t")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint = %v, want (0, 500ms]-ish", retry)
	}
	now = now.Add(600 * time.Millisecond) // refills 1.2 tokens
	if ok, _ := a.admit("t"); !ok {
		t.Fatal("refilled bucket refused")
	}
	if ok, _ := a.admit("t"); ok {
		t.Fatal("bucket over-refilled")
	}
}

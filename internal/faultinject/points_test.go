package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// pointsTableRE matches one entry of the package-doc points table, e.g.
// "//	rt.worker.batch  — before a worker condenses one batch".
var pointsTableRE = regexp.MustCompile(`(?m)^//\t([a-zA-Z0-9_.]+)\s+—`)

// TestPointsTableMatchesFireSites walks every non-test Go file in the
// module and checks set equality between the string-literal arguments of
// faultinject.Fire(...) call sites and the package-doc points table: a
// new Fire site must be documented, and a documented point must still
// exist in the code. It also rejects non-literal Fire arguments, which
// would make the table unverifiable.
func TestPointsTableMatchesFireSites(t *testing.T) {
	root := "../.."
	sites := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." && name != ".." {
				return fs.SkipDir
			}
			if name == "testdata" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Fire" {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "faultinject" {
				return true
			}
			if len(call.Args) != 1 {
				t.Errorf("%s: faultinject.Fire with %d args", fset.Position(call.Pos()), len(call.Args))
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				t.Errorf("%s: faultinject.Fire argument is not a string literal", fset.Position(call.Pos()))
				return true
			}
			point, uerr := strconv.Unquote(lit.Value)
			if uerr != nil {
				t.Errorf("%s: unquoting Fire argument %s: %v", fset.Position(call.Pos()), lit.Value, uerr)
				return true
			}
			sites[point] = append(sites[point], fset.Position(call.Pos()).String())
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
	if len(sites) == 0 {
		t.Fatal("found no faultinject.Fire call sites — is the walk rooted at the module?")
	}

	src, err := os.ReadFile("faultinject.go")
	if err != nil {
		t.Fatalf("reading faultinject.go: %v", err)
	}
	table := map[string]bool{}
	for _, m := range pointsTableRE.FindAllStringSubmatch(string(src), -1) {
		table[m[1]] = true
	}
	if len(table) == 0 {
		t.Fatal("points table not found in the package doc comment")
	}

	for point, where := range sites {
		if !table[point] {
			t.Errorf("Fire(%q) at %s is missing from the package-doc points table", point, where[0])
		}
	}
	for point := range table {
		if _, ok := sites[point]; !ok {
			t.Errorf("points table documents %q but no Fire(%q) call site exists", point, point)
		}
	}
}

package harness

import (
	"testing"

	"carmot"
	"carmot/internal/bench"
)

// TestDumpRecommendations logs the parallel-for recommendations of two
// representative benchmarks (one with an array reduction, one with the
// Newton's-third-law critical pattern); run with -v to inspect them.
func TestDumpRecommendations(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, name := range []string{"is", "nab"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := quick.norm()
		prog, err := carmot.Compile(b.Name+".mc", b.Source(cfg.dev(b)), carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP, MaxSteps: cfg.MaxSteps})
		if err != nil {
			t.Fatal(err)
		}
		for _, roi := range prog.ROIs() {
			if roi.Loop == nil {
				continue
			}
			rec := carmot.RecommendParallelFor(res.PSECs[roi.ID], roi)
			t.Logf("%s %s:\n%s", name, roi.Name, rec.Report())
		}
	}
}

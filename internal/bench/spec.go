package bench

import "fmt"

// lbmBench is the SPEC lbm analog: a lattice sweep reading the source
// grid and writing the destination grid disjointly, then an in-place
// collision update.
func lbmBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();

int N = %d;
float* srcg;
float* dstg;

void init() {
	srcg = malloc(N + 2);
	dstg = malloc(N + 2);
	rand_seed(77);
	for (int j = 0; j < N + 2; j++) {
		srcg[j] = rand_float();
	}
}

void stream() {
	float rho;
	float ux;
	#pragma omp parallel for private(rho, ux)
	for (int i = 1; i <= N; i++) {
		rho = srcg[i - 1] + srcg[i] + srcg[i + 1];
		ux = (srcg[i + 1] - srcg[i - 1]) / (rho + 0.001);
		for (int r = 0; r < 32; r++) {
			ux = ux * 0.95 + rho * 0.01;
		}
		dstg[i] = rho / 3.0 + ux;
	}
}

void collide() {
	float v;
	#pragma omp parallel for private(v)
	for (int i = 1; i <= N; i++) {
		v = dstg[i];
		v = v - 0.6 * (v - 1.0);
		dstg[i] = v;
	}
}

int main() {
	init();
	stream();
	collide();
	float acc = 0.0;
	for (int i = 1; i <= N; i++) {
		acc = acc + dstg[i];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "lbm", Suite: SuiteSPEC, Source: src,
		DevScale: 4000, ProdScale: 150000,
		Notes: "stencil stream + in-place collide; per-cell IO stays parallel",
	}
}

// nabBench is the SPEC nab analog. It carries two roles: (a) its heap
// data structures contain the molecule→strand→molecule reference cycle of
// Figure 9, spanning several functions; (b) its main parallelism is SPMD
// sections with barrier/master, which CARMOT cannot generate, plus a
// sequential integration chain, so the CARMOT-induced speedup stays low
// (Figure 6).
func nabBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern float rand_float();
extern float sqrt(float x);

struct atom_t {
	float a_x;
	float a_charge;
};

struct residue_t {
	struct atom_t* r_atoms;
	int r_natoms;
};

struct strand_t {
	struct molecule_t* s_molecule;
	struct residue_t* s_residues;
	int s_nresidues;
};

struct molecule_t {
	struct strand_t* m_strands;
	int m_nstrands;
	float m_energy;
};

int N = %d;
float* pos;
float* frc;
float* workspace;
float e0;
float e1;
float e2;
float e3;
float etot;
struct molecule_t* mol;

struct molecule_t* newmolecule() {
	struct molecule_t* mp = malloc(1);
	mp->m_nstrands = 0;
	mp->m_energy = 0.0;
	mp->m_strands = malloc(4);
	return mp;
}

int addstrand(struct molecule_t* mp) {
	int i = mp->m_nstrands;
	mp->m_strands[i].s_molecule = mp;
	mp->m_strands[i].s_nresidues = 3;
	mp->m_strands[i].s_residues = malloc(3);
	mp->m_nstrands = i + 1;
	return i;
}

void addresidues(struct molecule_t* mp, int s) {
	for (int r = 0; r < 3; r++) {
		mp->m_strands[s].s_residues[r].r_natoms = 4;
		mp->m_strands[s].s_residues[r].r_atoms = malloc(4);
		for (int a = 0; a < 4; a++) {
			mp->m_strands[s].s_residues[r].r_atoms[a].a_x = r + a;
			mp->m_strands[s].s_residues[r].r_atoms[a].a_charge = 0.1;
		}
	}
}

void getpdb() {
	mol = newmolecule();
	int s1 = addstrand(mol);
	addresidues(mol, s1);
	int s2 = addstrand(mol);
	addresidues(mol, s2);
}

void init() {
	pos = malloc(N);
	frc = malloc(N);
	// An over-allocation the original nab code also had (§5.2 mentions
	// correcting a naiveness that over-allocates); it leaks but is not
	// part of the reference cycle.
	workspace = malloc(33);
	rand_seed(13);
	for (int j = 0; j < N; j++) {
		pos[j] = rand_float() * 10.0;
	}
}

float forceRange(int lo, int hi) {
	float e = 0.0;
	float f;
	float d;
	int j;
	#pragma carmot roi forces
	for (int i = lo; i < hi; i++) {
		for (int k = 1; k < 9; k++) {
			j = (i + k) %% N;
			d = pos[i] - pos[j] + 0.5;
			f = 1.0 / (d * d + 0.1);
			frc[i] = frc[i] + f;
			frc[j] = frc[j] - f;
			e = e + f;
		}
	}
	return e;
}

void integrate() {
	float carry = 0.0;
	for (int i = 0; i < N; i++) {
		carry = carry * 0.5 + frc[i] * 0.01;
		pos[i] = pos[i] + carry;
	}
}

int main() {
	getpdb();
	init();
	int q = N / 4;
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			e0 = forceRange(0, q);
			#pragma omp barrier
			#pragma omp master
			{
				etot = e0 + e1 + e2 + e3;
			}
		}
		#pragma omp section
		{
			e1 = forceRange(q, 2 * q);
			#pragma omp barrier
		}
		#pragma omp section
		{
			e2 = forceRange(2 * q, 3 * q);
			#pragma omp barrier
		}
		#pragma omp section
		{
			e3 = forceRange(3 * q, N);
			#pragma omp barrier
		}
	}
	integrate();
	for (int s = 0; s < mol->m_nstrands; s++) {
		for (int r = 0; r < 3; r++) {
			free(mol->m_strands[s].s_residues[r].r_atoms);
		}
	}
	int check = mol->m_strands[0].s_residues[0].r_natoms;
	free(pos);
	free(frc);
	// mol and its strand/residue tables stay alive: the reference cycle
	// keeps them from being collected (the Figure 9 leak).
	return etot + check;
}
`, scale)
	}
	return Benchmark{
		Name: "nab", Suite: SuiteSPEC, Source: src,
		DevScale: 2000, ProdScale: 60000,
		SectionsOnly: true,
		Notes:        "Figure 9 reference cycle (molecule->strand->molecule) + sections/barrier/master parallelism",
	}
}

// xzBench is the SPEC xz analog: blocks compressed independently; each
// block is staged into a shared scratch buffer through precompiled
// memcpy (the Pin path) and then matched against a per-block dictionary.
// The scratch buffer is Cloneable — CARMOT's clone advice — while blocks
// parallelize.
func xzBench() Benchmark {
	src := func(scale int) string {
		return fmt.Sprintf(`
extern int rand_seed(int s);
extern int rand_int(int bound);
extern int memcpy_cells(int* dst, int* src, int n);

int NB = %d;
int B = 64;
int* data;
int* scratch;
int* outLen;

void init() {
	data = malloc(NB * 64);
	scratch = malloc(64);
	outLen = malloc(NB);
	rand_seed(99);
	for (int j = 0; j < NB * 64; j++) {
		data[j] = rand_int(24);
	}
}

void compress() {
	int matches;
	int run;
	#pragma omp parallel for private(matches, run)
	for (int b = 0; b < NB; b++) {
		memcpy_cells(scratch, data + b * B, B);
		matches = 0;
		for (int pass = 0; pass < 6; pass++) {
			run = 1;
			for (int i = 1; i < B; i++) {
				if (scratch[i] == scratch[i - 1 + pass %% 2] + pass %% 2) {
					run = run + 1;
					matches = matches + run;
				} else {
					run = 1;
				}
			}
		}
		outLen[b] = B - matches %% B;
	}
}

int main() {
	init();
	compress();
	int acc = 0;
	for (int b = 0; b < NB; b++) {
		acc = acc + outLen[b];
	}
	return acc;
}
`, scale)
	}
	return Benchmark{
		Name: "xz", Suite: SuiteSPEC, Source: src,
		DevScale: 60, ProdScale: 3000,
		Notes: "block parallelism; shared scratch buffer triggers clone advice; memcpy exercises the Pin path",
	}
}

package interp

import (
	"fmt"
	"math"

	"carmot/internal/core"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/native"
	"carmot/internal/pinsim"
	"carmot/internal/rt"
)

// Simulated cycle costs per instruction kind. They only need relative
// plausibility: the multicore simulator divides them, so any consistent
// scale works.
// Tool-cost model: simulated cycles charged for instrumentation work, on
// the same scale as the program costs below. The paper's binary runs at
// roughly one instruction per cycle while tracking an access costs on the
// order of hundreds of cycles (event construction, batching, runtime
// processing, memory pressure); these constants put the overhead figures
// (7/8/10/11) on that hardware scale. Wall-clock time is also measured by
// the harness, but the interpreter's own slowness would compress ratios.
const (
	costEventEmit = 250 // one access event through the batched pipeline
	// costEventNaive prices one access event for the naive baseline,
	// which lacks CARMOT's co-designed runtime (Figure 5): the event is
	// processed inline on the program thread (FSA + ASMT lookups, cache
	// misses) under whole-binary Pin shadowing, and the access context is
	// recomputed rather than clustered.
	costEventNaive   = 3000
	costRangedEmit   = 90  // one aggregated (ranged) event
	costFixedEmit    = 60  // one compile-time classification event
	costAllocEvent   = 150 // one allocation/free registration
	costEscapeEvent  = 120 // one reachability escape record
	costStackBase    = 90  // callstack capture: fixed part
	costStackFrame   = 45  // callstack capture: per frame
	costPinAccess    = 420 // one binary-instrumented (Pin) access
	costPinCall      = 180 // entering a Pin-shadowed call
	costClusterEntry = 110 // clustering: one capture per function entry
)

const (
	costLoad    = 2
	costStore   = 2
	costBin     = 1
	costDivBin  = 8
	costGEP     = 1
	costBr      = 1
	costCall    = 8
	costRet     = 2
	costMalloc  = 24
	costFree    = 8
	costAlloca  = 1
	costConvert = 1
	costPerCell = 2 // native memory functions, per cell touched
)

// call pushes a frame, executes fn on the selected engine, and returns
// its result bits.
func (it *Interp) call(fn *ir.Func, args []uint64, callPos lang.Pos) (uint64, error) {
	lay := it.layouts[fn]
	if it.stackTop+lay.cells > it.stackLimit {
		return 0, it.errf(callPos, "stack overflow calling %s", fn.Name)
	}
	if len(it.frames) > 4096 {
		return 0, it.errf(callPos, "call depth limit exceeded in %s", fn.Name)
	}
	fr := it.pushFrame(fn, args, callPos)
	it.stackTop += lay.cells
	// Fresh stack storage is zeroed (frames recycle cells); clear
	// compiles to a memclr, unlike the element loop.
	clear(it.mem[fr.base:it.stackTop])

	var ret uint64
	var err error
	if it.opts.Engine == EngineBytecode {
		fr.cf = it.compiledOf(fn)
		ret, err = it.execBC(fr)
	} else {
		ret, err = it.exec(fr)
	}

	// Retire this frame's tracked stack PSEs.
	if r := it.opts.Runtime; r != nil && err == nil && len(lay.tracked) > 0 {
		for _, a := range lay.tracked {
			r.EmitFree(fr.base + lay.offsets[a.Index])
			it.toolCycles += costAllocEvent
		}
	}
	it.frames = it.frames[:len(it.frames)-1]
	it.stackTop = fr.base
	return ret, err
}

func (it *Interp) exec(fr *frame) (uint64, error) {
	blk := fr.fn.Entry()
	idx := 0
	r := it.opts.Runtime
	for {
		in := blk.Instrs[idx]
		idx++
		base := ir.Base(in)
		it.steps++
		if it.opts.MaxSteps > 0 && it.steps > it.opts.MaxSteps {
			return 0, &BudgetError{Reason: fmt.Sprintf("step limit exceeded (%d)", it.opts.MaxSteps)}
		}
		if it.steps&budgetCheckMask == 0 {
			if berr := it.checkBudget(); berr != nil {
				return 0, berr
			}
		}

		switch x := in.(type) {
		case *ir.Alloca:
			addr := fr.base + it.layouts[fr.fn].offsets[x.Index]
			fr.temps[base.Temp] = addr
			it.addCost(base, costAlloca)
			if r != nil && x.Track == ir.TrackOn {
				kind := core.PSEStackMem
				if x.Sym != nil && x.Sym.Type.IsScalar() {
					kind = core.PSEVariable
				}
				name := "<tmp>"
				pos := base.Pos
				if x.Sym != nil {
					name = x.Sym.Name
					pos = x.Sym.Pos
				}
				r.EmitAlloc(addr, int64(x.Cells), it.curCS(),
					&rt.AllocMeta{Kind: kind, Name: name, Pos: pos.String()})
				it.toolCycles += costAllocEvent
			}

		case *ir.Load:
			addr := it.eval(x.Addr, fr)
			if addr == 0 || addr >= uint64(len(it.mem)) {
				return 0, it.errf(base.Pos, "invalid load address %d", addr)
			}
			fr.temps[base.Temp] = it.mem[addr]
			it.addCost(base, costLoad)
			if x.Sym != nil {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if r != nil && x.Track == ir.TrackOn {
				r.EmitAccess(addr, false, base.Site, it.frameCS(fr))
				it.toolCycles += it.eventCost
			}

		case *ir.Store:
			addr := it.eval(x.Addr, fr)
			if addr == 0 || addr >= uint64(len(it.mem)) {
				return 0, it.errf(base.Pos, "invalid store address %d", addr)
			}
			val := it.eval(x.Val, fr)
			it.mem[addr] = val
			it.addCost(base, costStore)
			if x.Sym != nil {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if r != nil && x.Track == ir.TrackOn {
				if it.prof.Sets {
					r.EmitAccess(addr, true, base.Site, it.frameCS(fr))
					it.toolCycles += it.eventCost
				}
				if it.prof.Reach && x.PtrStore && val != 0 && val < uint64(len(it.mem)) {
					r.EmitEscape(addr, val)
					it.toolCycles += costEscapeEvent
				}
			}

		case *ir.Bin:
			res, err := it.execBin(x, fr)
			if err != nil {
				return 0, err
			}
			fr.temps[base.Temp] = res
			if x.Op == ir.OpDiv || x.Op == ir.OpRem {
				it.addCost(base, costDivBin)
			} else {
				it.addCost(base, costBin)
			}

		case *ir.Convert:
			v := it.eval(x.X, fr)
			if x.ToFloat {
				fr.temps[base.Temp] = math.Float64bits(float64(int64(v)))
			} else {
				fr.temps[base.Temp] = uint64(int64(math.Float64frombits(v)))
			}
			it.addCost(base, costConvert)

		case *ir.GEP:
			b := int64(it.eval(x.Base, fr))
			if x.Index != nil {
				b += int64(it.eval(x.Index, fr)) * x.Scale
			}
			b += x.Offset
			fr.temps[base.Temp] = uint64(b)
			it.addCost(base, costGEP)

		case *ir.Malloc:
			count := int64(it.eval(x.Count, fr))
			if count < 0 {
				return 0, it.errf(base.Pos, "malloc with negative count %d", count)
			}
			cells := count * x.ElemCells
			if cells == 0 {
				cells = 1
			}
			addr := it.heapTop
			it.heapTop += uint64(cells)
			it.ensure(it.heapTop)
			it.liveHeap[addr] = heapRec{cells: cells, pos: base.Pos.String()}
			fr.temps[base.Temp] = addr
			it.addCost(base, costMalloc)
			if r != nil && x.Track == ir.TrackOn {
				name := x.Hint
				if name == "" {
					name = "heap<" + x.TypeName + ">"
				}
				r.EmitAlloc(addr, cells, it.curCS(),
					&rt.AllocMeta{Kind: core.PSEHeap, Name: name, Pos: base.Pos.String()})
				it.toolCycles += costAllocEvent
			}

		case *ir.Free:
			addr := it.eval(x.Ptr, fr)
			if _, ok := it.liveHeap[addr]; !ok {
				return 0, it.errf(base.Pos, "free of invalid pointer %d", addr)
			}
			delete(it.liveHeap, addr)
			it.addCost(base, costFree)
			if r != nil && x.Track == ir.TrackOn {
				r.EmitFree(addr)
				it.toolCycles += costAllocEvent
			}

		case *ir.Call:
			res, err := it.execCall(x, fr)
			if err != nil {
				return 0, err
			}
			if x.Cls != ir.ClassVoid {
				fr.temps[base.Temp] = res
			}
			it.addCost(base, costCall)

		case *ir.Ret:
			it.addCost(base, costRet)
			if x.Val != nil {
				return it.eval(x.Val, fr), nil
			}
			return 0, nil

		case *ir.Br:
			it.addCost(base, costBr)
			blk = x.Target
			idx = 0

		case *ir.CondBr:
			it.addCost(base, costBr)
			if it.eval(x.Cond, fr) != 0 {
				blk = x.True
			} else {
				blk = x.False
			}
			idx = 0

		case *ir.ROIBegin:
			if r != nil {
				r.BeginROI(x.ROI.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(true, x.ROI, it.cycles, it.serialCycles)
			}

		case *ir.ROIEnd:
			if r != nil {
				r.EndROI(x.ROI.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(false, x.ROI, it.cycles, it.serialCycles)
			}

		case *ir.Mark:
			if it.opts.Sink != nil {
				it.opts.Sink.Mark(x.Kind, x.Region, x.Task, it.cycles, it.serialCycles)
			}

		case *ir.RangedEvent:
			if r != nil {
				addr := it.eval(x.Base, fr)
				count := int64(it.eval(x.Count, fr))
				if count > 0 {
					r.EmitRange(int32(x.ROI.ID), x.IsWrite, addr, count, uint64(x.Stride))
					it.toolCycles += costRangedEmit
				}
			}

		case *ir.FixedClass:
			if r != nil {
				addr := it.eval(x.Base, fr)
				r.EmitFixed(int32(x.ROI.ID), addr, x.Cells, core.SetMask(x.Sets))
				it.toolCycles += costFixedEmit
			}

		default:
			return 0, it.errf(base.Pos, "interp: unhandled instruction %s", in.Mnemonic())
		}
	}
}

func (it *Interp) addCost(base *ir.InstrBase, c int64) {
	it.cycles += c
	if base.Serial {
		it.serialCycles += c
	}
}

func (it *Interp) execBin(x *ir.Bin, fr *frame) (uint64, error) {
	l := it.eval(x.L, fr)
	rv := it.eval(x.R, fr)
	if x.Float {
		a, b := math.Float64frombits(l), math.Float64frombits(rv)
		switch x.Op {
		case ir.OpAdd:
			return math.Float64bits(a + b), nil
		case ir.OpSub:
			return math.Float64bits(a - b), nil
		case ir.OpMul:
			return math.Float64bits(a * b), nil
		case ir.OpDiv:
			return math.Float64bits(a / b), nil
		case ir.OpEq:
			return b2i(a == b), nil
		case ir.OpNe:
			return b2i(a != b), nil
		case ir.OpLt:
			return b2i(a < b), nil
		case ir.OpLe:
			return b2i(a <= b), nil
		case ir.OpGt:
			return b2i(a > b), nil
		case ir.OpGe:
			return b2i(a >= b), nil
		}
		return 0, it.errf(ir.Base(x).Pos, "bad float op")
	}
	a, b := int64(l), int64(rv)
	switch x.Op {
	case ir.OpAdd:
		return uint64(a + b), nil
	case ir.OpSub:
		return uint64(a - b), nil
	case ir.OpMul:
		return uint64(a * b), nil
	case ir.OpDiv:
		if b == 0 {
			return 0, it.errf(ir.Base(x).Pos, "integer division by zero")
		}
		return uint64(a / b), nil
	case ir.OpRem:
		if b == 0 {
			return 0, it.errf(ir.Base(x).Pos, "integer remainder by zero")
		}
		return uint64(a % b), nil
	case ir.OpEq:
		return b2i(a == b), nil
	case ir.OpNe:
		return b2i(a != b), nil
	case ir.OpLt:
		return b2i(a < b), nil
	case ir.OpLe:
		return b2i(a <= b), nil
	case ir.OpGt:
		return b2i(a > b), nil
	case ir.OpGe:
		return b2i(a >= b), nil
	}
	return 0, it.errf(ir.Base(x).Pos, "bad int op")
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (it *Interp) execCall(x *ir.Call, fr *frame) (uint64, error) {
	// Arguments are evaluated into a LIFO window of the shared scratch;
	// the window stays readable for the callee's lifetime even if a nested
	// call regrows the scratch (the old array backs it until then).
	mark := len(it.argScratch)
	for _, a := range x.Args {
		it.argScratch = append(it.argScratch, it.eval(a, fr))
	}
	args := it.argScratch[mark:]
	res, err := it.dispatchCall(x, fr, args)
	it.argScratch = it.argScratch[:mark]
	return res, err
}

func (it *Interp) dispatchCall(x *ir.Call, fr *frame, args []uint64) (uint64, error) {
	pos := ir.Base(x).Pos

	var fn *ir.Func
	var ext *ir.Extern
	if fref := x.DirectTarget(); fref != nil {
		fn, ext = fref.Func, fref.Extern
	} else {
		id := it.eval(x.Callee, fr)
		switch {
		case id == 0:
			return 0, it.errf(pos, "call through null function pointer")
		case id <= uint64(len(it.funcIDs)):
			fn = it.funcIDs[id-1]
		case id <= uint64(len(it.funcIDs)+len(it.externIDs)):
			ext = it.externIDs[id-uint64(len(it.funcIDs))-1]
		default:
			return 0, it.errf(pos, "call through invalid function pointer %d", id)
		}
	}
	if fn != nil {
		if len(args) != len(fn.Params) {
			return 0, it.errf(pos, "call to %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
		}
		if x.PinGated && it.opts.Runtime != nil {
			// The Pintool probes this site because it cannot rule out a
			// jump into precompiled code.
			it.toolCycles += costPinCall
		}
		return it.call(fn, args, pos)
	}
	return it.callExtern(x, ext, args, pos)
}

func (it *Interp) callExtern(x *ir.Call, ext *ir.Extern, args []uint64, pos lang.Pos) (uint64, error) {
	spec := native.Lookup(ext.Name)
	if spec == nil {
		return 0, it.errf(pos, "extern %s has no native implementation", ext.Name)
	}
	if spec.ArgCount >= 0 && spec.ArgCount != len(args) {
		return 0, it.errf(pos, "extern %s called with %d args, want %d", ext.Name, len(args), spec.ArgCount)
	}
	var env native.Env = it
	// The Pin-analog tracer shadows this call when the planner could not
	// prove the site never reaches precompiled code; the probe itself
	// costs even when the callee turns out not to touch memory (§4.4
	// opt 6 exists to avoid exactly this).
	var tracer *pinsim.Tracer
	if x.PinGated && it.opts.Runtime != nil {
		it.toolCycles += costPinCall
		if spec.AccessesMemory {
			tracer = pinsim.NewTracer(it, it.opts.Runtime, it.useCS())
			env = tracer
		}
	}
	res := spec.Impl(env, args)
	if tracer != nil {
		reads, writes := tracer.Counts()
		it.toolCycles += int64(reads+writes) * costPinAccess
	}
	cost := spec.Cost
	if spec.AccessesMemory && len(args) > 0 {
		// Charge per-cell work using the count argument by convention
		// (the last integer argument of the memory natives).
		n := int64(args[len(args)-1])
		if n > 0 {
			cost += n * costPerCell
		}
	}
	it.addCost(ir.Base(x), cost)
	return res, nil
}

func (it *Interp) eval(v ir.Value, fr *frame) uint64 {
	switch x := v.(type) {
	case *ir.Const:
		return constBits(x)
	case *ir.Alloca:
		return fr.base + it.layouts[fr.fn].offsets[x.Index]
	case *ir.GlobalAddr:
		return it.globalOff[x.Global]
	case *ir.Param:
		return fr.args[x.Index]
	case *ir.FuncRef:
		return it.fnptrOf(x)
	}
	if in, ok := v.(ir.Instr); ok {
		return fr.temps[ir.Base(in).Temp]
	}
	panic("interp: unknown value kind")
}

// Package analysis provides the compiler analyses CARMOT's PSEC-specific
// optimizations are built on (§4.4): dominators, ROI region membership,
// Andersen-style points-to, the complete call graph (the NOELLE-provided
// ingredient of the paper), may-alias queries for PDG memory dependences,
// and the must-access forward data-flow analysis of optimization 1.
package analysis

import "carmot/internal/ir"

// Dominators holds the immediate-dominator tree of a function, computed
// with the Cooper–Harvey–Kennedy iterative algorithm.
type Dominators struct {
	fn   *ir.Func
	idom []int // block index -> immediate dominator block index (-1 for entry)
	rpo  []int // block index -> reverse-postorder number
}

// ComputeDominators builds the dominator tree. ir.ComputeCFG must have run.
func ComputeDominators(fn *ir.Func) *Dominators {
	n := len(fn.Blocks)
	d := &Dominators{fn: fn, idom: make([]int, n), rpo: make([]int, n)}

	// Reverse postorder over the CFG.
	order := make([]*ir.Block, 0, n)
	seen := make([]bool, n)
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(fn.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i, b := range order {
		d.rpo[b.Index] = i
	}
	for i := range d.idom {
		d.idom[i] = -1
	}
	d.idom[fn.Entry().Index] = fn.Entry().Index

	intersect := func(a, b int) int {
		for a != b {
			for d.rpo[a] > d.rpo[b] {
				a = d.idom[a]
			}
			for d.rpo[b] > d.rpo[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == fn.Entry() {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if !seen[p.Index] || d.idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(p.Index, newIdom)
				}
			}
			if newIdom != -1 && d.idom[b.Index] != newIdom {
				d.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Idom returns the immediate dominator of b (nil for the entry block or
// unreachable blocks).
func (d *Dominators) Idom(b *ir.Block) *ir.Block {
	i := d.idom[b.Index]
	if i == -1 || i == b.Index {
		return nil
	}
	return d.fn.Blocks[i]
}

// Dominates reports whether a dominates b (reflexively).
func (d *Dominators) Dominates(a, b *ir.Block) bool {
	if a == b {
		return true
	}
	x := b.Index
	for {
		i := d.idom[x]
		if i == -1 || i == x {
			return false
		}
		if i == a.Index {
			return true
		}
		x = i
	}
}

package recommend

import (
	"fmt"
	"sort"
	"strings"

	"carmot/internal/ir"
)

// AnnotateSource rewrites a MiniC source file with the recommended
// abstraction inserted at its ROI (§3.2: CARMOT "automatically generates
// new source code with the requested abstraction in it"). For a
// parallel-for recommendation the pragma line is inserted (or replaces an
// existing `#pragma omp parallel for`) above the ROI's loop, and advisory
// comments are attached to the statements that must move into a
// critical/ordered section and to the allocations that should be cloned
// per thread. The result is a recommendation starting point, exactly as
// the paper argues (§4.2): the programmer reviews and tunes it.
func AnnotateSource(src string, roi *ir.ROI, rec *ParallelFor) (string, error) {
	if roi == nil || roi.Loop == nil || roi.Loop.For == nil {
		return "", fmt.Errorf("recommend: ROI %q does not wrap a loop", rec.ROI)
	}
	lines := strings.Split(src, "\n")
	forLine := roi.Loop.For.NodePos().Line
	if forLine < 1 || forLine > len(lines) {
		return "", fmt.Errorf("recommend: loop line %d out of range", forLine)
	}

	type insertion struct {
		line int // 1-based source line the text goes above
		text []string
	}
	var inserts []insertion
	indentOf := func(line int) string {
		if line < 1 || line > len(lines) {
			return ""
		}
		s := lines[line-1]
		return s[:len(s)-len(strings.TrimLeft(s, " \t"))]
	}

	// The pragma goes above the for statement.
	pragmaText := []string{indentOf(forLine) + rec.Pragma()}
	inserts = append(inserts, insertion{line: forLine, text: pragmaText})

	// Advisory comments at critical statements and clone allocations.
	seen := map[int]bool{}
	for _, c := range rec.Criticals {
		for _, st := range c.Statements {
			line := lineNumber(st.Pos)
			if line <= 0 || seen[line] {
				continue
			}
			seen[line] = true
			inserts = append(inserts, insertion{line: line, text: []string{
				indentOf(line) + fmt.Sprintf("// CARMOT: wrap in '#pragma omp critical' or 'ordered' (%s carries a cross-iteration RAW)", c.PSE),
			}})
		}
	}
	for _, cl := range rec.Clones {
		line := lineNumber(cl.AllocPos)
		if line <= 0 || seen[line] {
			continue
		}
		seen[line] = true
		inserts = append(inserts, insertion{line: line, text: []string{
			indentOf(line) + fmt.Sprintf("// CARMOT: clone %s per thread (%d cells) and index clones with omp_get_thread_num()", cl.Name, cl.Cells),
		}})
	}

	// Apply from the bottom up so earlier line numbers stay valid; if a
	// pragma already sits above the loop, replace it.
	sort.Slice(inserts, func(i, j int) bool { return inserts[i].line > inserts[j].line })
	for _, ins := range inserts {
		at := ins.line - 1
		if ins.line == forLine && at > 0 && strings.Contains(lines[at-1], "#pragma omp parallel for") {
			lines[at-1] = ins.text[0]
			continue
		}
		if ins.line == forLine && at > 0 && strings.Contains(lines[at-1], "#pragma carmot roi") {
			// Keep the ROI marker; insert the pragma between it and the loop.
			lines = spliceLines(lines, at, ins.text)
			continue
		}
		lines = spliceLines(lines, at, ins.text)
	}
	return strings.Join(lines, "\n"), nil
}

func spliceLines(lines []string, at int, text []string) []string {
	out := make([]string, 0, len(lines)+len(text))
	out = append(out, lines[:at]...)
	out = append(out, text...)
	out = append(out, lines[at:]...)
	return out
}

// lineNumber extracts the line from "file:line:col".
func lineNumber(pos string) int {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return 0
	}
	n := 0
	for _, ch := range parts[len(parts)-2] {
		if ch < '0' || ch > '9' {
			return 0
		}
		n = n*10 + int(ch-'0')
	}
	return n
}

package rt

import (
	"fmt"
	"sort"

	"carmot/internal/core"
)

// cellTrack is the per-(ROI, cell) FSA instance. lastInv==0 means the
// cell has not been accessed in the ROI yet (invocations start at 1).
type cellTrack struct {
	state    core.FSAState
	lastInv  uint64
	firstSeq uint64
	lastSeq  uint64
}

// allocRec is one Active State Member Table entry: a live PSE allocation
// with its source identity, extent, and per-ROI cell tracking.
type allocRec struct {
	id      int32
	desc    core.PSEDesc
	base    uint64
	cells   int64
	roiMask uint64 // ROIs active when allocated ("allocated within")
	live    bool
	track   [][]cellTrack // indexed by ROI ID, allocated lazily
	// trackCells is the per-ROI tracking granularity decided at the first
	// allocation: cells normally, 1 when the governor coarsened this PSE.
	trackCells int64
}

// elemAcc accumulates the report for one source-identified PSE within one
// ROI (dynamic instances of the same static PSE fold together here).
type elemAcc struct {
	desc     core.PSEDesc
	cellSets []core.SetMask
	firstSeq uint64
	lastSeq  uint64
	seen     bool
	useSites map[int32]map[core.CallstackID]struct{}
}

func (e *elemAcc) fold(off int, sets core.SetMask, firstSeq, lastSeq uint64) {
	for off >= len(e.cellSets) {
		e.cellSets = append(e.cellSets, 0)
	}
	e.cellSets[off] = core.MergeSets(e.cellSets[off], sets)
	if !e.seen || firstSeq < e.firstSeq {
		e.firstSeq = firstSeq
	}
	if lastSeq > e.lastSeq {
		e.lastSeq = lastSeq
	}
	e.seen = true
}

// postState is the ordered post-processing stage (Figure 5): it owns the
// ASMT, the per-ROI FSA cells, use-callstacks, and reachability graphs.
type postState struct {
	rt  *Runtime
	cfg *Config
	cs  *core.CallstackTable

	cellOwner []int32 // addr -> allocID+1 (0 = untracked)
	allocs    []*allocRec
	baseIndex map[uint64]int32 // base addr -> allocID for EvFree

	active []bool
	roiInv []uint64
	acc    []map[string]*elemAcc
	reach  []*core.ReachGraph
	stats  []core.Stats

	// Cell budget accounting for the resource governor.
	liveCells int64
	peakCells int64
}

func newPostState(r *Runtime) *postState {
	cfg := &r.cfg
	n := len(cfg.ROIs)
	p := &postState{
		rt:        r,
		cfg:       cfg,
		cs:        r.cs,
		baseIndex: map[uint64]int32{},
		active:    make([]bool, n),
		roiInv:    make([]uint64, n),
		acc:       make([]map[string]*elemAcc, n),
		reach:     make([]*core.ReachGraph, n),
		stats:     make([]core.Stats, n),
	}
	for i := range p.acc {
		p.acc[i] = map[string]*elemAcc{}
		p.reach[i] = core.NewReachGraph()
	}
	return p
}

func (p *postState) owner(addr uint64) *allocRec {
	if addr >= uint64(len(p.cellOwner)) {
		return nil
	}
	id := p.cellOwner[addr]
	if id == 0 {
		return nil
	}
	return p.allocs[id-1]
}

func (p *postState) ensureOwnerLen(hi uint64) {
	for uint64(len(p.cellOwner)) < hi {
		p.cellOwner = append(p.cellOwner, make([]int32, hi-uint64(len(p.cellOwner)))...)
	}
}

// trackFor returns the per-cell FSA slots for rec in roi, allocating
// them under the governor's cell budget. On a cap breach it climbs the
// degradation ladder: first use-callstack collection is dropped, then
// new allocations are tracked as one coarse cell, and finally per-cell
// tracking stops entirely (nil return; access counts still accumulate).
func (p *postState) trackFor(rec *allocRec, roi int) []cellTrack {
	if rec.track != nil && rec.track[roi] != nil {
		return rec.track[roi]
	}
	if p.rt.gLevel.Load() >= degradeCountsOnly {
		return nil
	}
	if rec.trackCells == 0 {
		rec.trackCells = rec.cells
		if p.rt.gLevel.Load() >= degradeCoarseCells {
			rec.trackCells = 1
		}
	}
	limit := p.cfg.Limits.MaxLiveCells
	for limit > 0 && p.liveCells+rec.trackCells > limit {
		if !p.rt.escalate(fmt.Sprintf("max-live-cells=%d", limit)) {
			break
		}
		lvl := p.rt.gLevel.Load()
		if lvl >= degradeCountsOnly {
			return nil
		}
		if lvl >= degradeCoarseCells && rec.track == nil {
			// This PSE is not yet tracked in any ROI: coarsen it.
			rec.trackCells = 1
		}
	}
	if limit > 0 && p.liveCells+rec.trackCells > limit {
		// Still over budget below the counts-only rung (a grandfathered
		// fine-grained PSE under a tiny cap): skip this ROI's tracking.
		return nil
	}
	if rec.track == nil {
		rec.track = make([][]cellTrack, len(p.cfg.ROIs))
	}
	rec.track[roi] = make([]cellTrack, rec.trackCells)
	p.liveCells += rec.trackCells
	if p.liveCells > p.peakCells {
		p.peakCells = p.liveCells
	}
	return rec.track[roi]
}

// trackOff maps a cell address to its slot in a (possibly coarse)
// tracking slice: coarse PSEs fold every cell into slot 0.
func trackOff(cells []cellTrack, rec *allocRec, addr uint64) int {
	off := int(addr - rec.base)
	if off >= len(cells) {
		return 0
	}
	return off
}

func (p *postState) elemFor(roi int, desc core.PSEDesc) *elemAcc {
	key := desc.Key()
	e := p.acc[roi][key]
	if e == nil {
		e = &elemAcc{desc: desc, useSites: map[int32]map[core.CallstackID]struct{}{}}
		p.acc[roi][key] = e
	}
	return e
}

func (p *postState) apply(item *postItem) {
	if item.ev == nil {
		p.applySummaries(item)
		return
	}
	ev := item.ev
	switch ev.Kind {
	case EvROIBegin:
		roi := int(ev.ROI)
		p.roiInv[roi]++
		p.active[roi] = true
		p.stats[roi].Invocations++
	case EvROIEnd:
		p.active[int(ev.ROI)] = false
	case EvAlloc:
		p.applyAlloc(ev)
	case EvFree:
		if id, ok := p.baseIndex[ev.Addr]; ok {
			p.finalizeAlloc(p.allocs[id])
		}
	case EvEscape:
		p.applyEscape(ev)
	case EvFixed:
		p.applyFixed(ev)
	case EvRange:
		p.applyRange(ev)
	}
}

func (p *postState) applyAlloc(ev *Event) {
	rec := &allocRec{
		id:    int32(len(p.allocs)),
		base:  ev.Addr,
		cells: ev.N,
		live:  true,
	}
	rec.desc = core.PSEDesc{
		Kind: ev.Meta.Kind, Name: ev.Meta.Name, AllocPos: ev.Meta.Pos,
		AllocStack: ev.CS, Cells: int(ev.N),
	}
	for roi := range p.active {
		if p.active[roi] {
			rec.roiMask |= 1 << uint(roi)
			if p.cfg.Profile.Reach {
				p.reach[roi].Touch(rec.desc, ev.Seq)
			}
		}
	}
	// Reuse of an address range (stack frames, freed heap) retires the
	// previous owner implicitly.
	p.ensureOwnerLen(ev.Addr + uint64(ev.N))
	for i := uint64(0); i < uint64(ev.N); i++ {
		if prev := p.cellOwner[ev.Addr+i]; prev != 0 && p.allocs[prev-1].live {
			p.finalizeAlloc(p.allocs[prev-1])
		}
		p.cellOwner[ev.Addr+i] = rec.id + 1
	}
	p.allocs = append(p.allocs, rec)
	p.baseIndex[ev.Addr] = rec.id
}

// finalizeAlloc folds a dying allocation's per-ROI FSA states into the
// per-source-PSE accumulators and releases its tracking storage.
func (p *postState) finalizeAlloc(rec *allocRec) {
	if !rec.live {
		return
	}
	rec.live = false
	delete(p.baseIndex, rec.base)
	for i := uint64(0); i < uint64(rec.cells); i++ {
		if p.cellOwner[rec.base+i] == rec.id+1 {
			p.cellOwner[rec.base+i] = 0
		}
	}
	if rec.track == nil {
		return
	}
	for roi, cells := range rec.track {
		if cells == nil {
			continue
		}
		p.liveCells -= int64(len(cells))
		var e *elemAcc
		for off := range cells {
			ct := &cells[off]
			if ct.state == core.StateNone {
				continue
			}
			if e == nil {
				e = p.elemFor(roi, rec.desc)
			}
			e.fold(off, ct.state.Sets(), ct.firstSeq, ct.lastSeq)
		}
	}
	rec.track = nil
}

func (p *postState) applySummaries(item *postItem) {
	numROIs := len(p.cfg.ROIs)
	for si := range item.sums {
		s := &item.sums[si]
		rec := p.owner(s.addr)
		if rec == nil {
			continue
		}
		for roi := 0; roi < numROIs; roi++ {
			if !p.active[roi] {
				continue
			}
			st := &p.stats[roi]
			st.TotalAccesses += s.count
			st.Events++
			if rec.desc.Kind == core.PSEVariable {
				st.VarAccesses += s.count
			} else {
				st.MemAccesses += s.count
			}
			if !p.cfg.Profile.Sets && !p.cfg.Profile.Reach {
				continue
			}
			cells := p.trackFor(rec, roi)
			if cells == nil {
				continue // governor: counts-only mode
			}
			ct := &cells[trackOff(cells, rec, s.addr)]
			inv := p.roiInv[roi]
			if ct.lastInv == 0 {
				ct.firstSeq = s.firstSeq
				if p.cfg.Profile.Reach && rec.roiMask&(1<<uint(roi)) != 0 {
					p.reach[roi].Touch(rec.desc, s.firstSeq)
				}
			}
			ct.lastSeq = s.lastSeq
			if ct.lastInv != inv {
				ct.state = ct.state.Next(true, s.firstIsWrite)
				if s.hasWrite {
					ct.state = ct.state.Next(false, true)
				}
				ct.lastInv = inv
			} else if s.hasWrite {
				ct.state = ct.state.Next(false, true)
			}
		}
	}
	if p.cfg.Profile.UseCallstacks && p.rt.gLevel.Load() < degradeNoUseCS {
		for ui := range item.uses {
			u := &item.uses[ui]
			for _, addr := range u.samples {
				rec := p.owner(addr)
				if rec == nil {
					continue
				}
				for roi := 0; roi < numROIs; roi++ {
					if !p.active[roi] {
						continue
					}
					e := p.elemFor(roi, rec.desc)
					set := e.useSites[u.site]
					if set == nil {
						set = map[core.CallstackID]struct{}{}
						e.useSites[u.site] = set
					}
					set[u.cs] = struct{}{}
				}
			}
		}
	}
}

func (p *postState) applyEscape(ev *Event) {
	if !p.cfg.Profile.Reach {
		return
	}
	from := p.owner(ev.Addr)
	to := p.owner(ev.Aux)
	if from == nil || to == nil {
		return
	}
	for roi := range p.active {
		if !p.active[roi] {
			continue
		}
		bit := uint64(1) << uint(roi)
		if from.roiMask&bit == 0 || to.roiMask&bit == 0 {
			continue
		}
		p.reach[roi].AddEdge(from.desc, to.desc, ev.Seq)
	}
}

// applyFixed applies a compile-time classification (§4.4 opt 3).
func (p *postState) applyFixed(ev *Event) {
	roi := int(ev.ROI)
	if !p.cfg.Profile.Sets {
		return
	}
	for i := uint64(0); i < uint64(ev.N); i++ {
		rec := p.owner(ev.Addr + i)
		if rec == nil {
			continue
		}
		e := p.elemFor(roi, rec.desc)
		e.fold(int(ev.Addr+i-rec.base), ev.Sets, ev.Seq, ev.Seq)
	}
}

// applyRange applies an aggregated access event (§4.4 opt 2): each
// covered cell behaves as first-accessed in its own ROI invocation.
func (p *postState) applyRange(ev *Event) {
	roi := int(ev.ROI)
	stride := int64(ev.Aux)
	if stride == 0 {
		stride = 1
	}
	st := &p.stats[roi]
	st.Events++
	for i := int64(0); i < ev.N; i++ {
		addr := ev.Addr + uint64(i*stride)
		rec := p.owner(addr)
		if rec == nil {
			continue
		}
		st.TotalAccesses++
		if rec.desc.Kind == core.PSEVariable {
			st.VarAccesses++
		} else {
			st.MemAccesses++
		}
		if !p.cfg.Profile.Sets {
			continue
		}
		cells := p.trackFor(rec, roi)
		if cells == nil {
			continue // governor: counts-only mode
		}
		ct := &cells[trackOff(cells, rec, addr)]
		if ct.lastInv == 0 {
			ct.firstSeq = ev.Seq
		}
		ct.lastSeq = ev.Seq
		ct.state = ct.state.Next(true, ev.Write)
	}
}

// finish finalizes live allocations and builds the per-ROI PSECs.
func (p *postState) finish() []*core.PSEC {
	for _, rec := range p.allocs {
		if rec.live {
			p.finalizeAlloc(rec)
		}
	}
	out := make([]*core.PSEC, len(p.cfg.ROIs))
	for roi := range p.cfg.ROIs {
		meta := p.cfg.ROIs[roi]
		psec := &core.PSEC{
			ROI:        core.ROIInfo{ID: meta.ID, Name: meta.Name, Kind: meta.Kind, Pos: meta.Pos},
			Reach:      p.reach[roi],
			Callstacks: p.cs,
			Stats:      p.stats[roi],
		}
		keys := make([]string, 0, len(p.acc[roi]))
		for k := range p.acc[roi] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := p.acc[roi][k]
			elem := &core.Element{
				PSE:         e.desc,
				Ranges:      core.AggregateRanges(e.cellSets),
				FirstAccess: e.firstSeq,
				LastAccess:  e.lastSeq,
			}
			for _, r := range elem.Ranges {
				elem.Sets = core.MergeSets(elem.Sets, r.Sets)
			}
			if e.desc.Kind == core.PSEVariable {
				p.mergeStaticUses(e)
			}
			elem.UseSites = p.buildUseSites(e)
			elem.Reducible, elem.Reduction = p.reduction(e)
			if e.desc.Kind == core.PSEVariable {
				// Reducibility of variables is decided statically (§4.4
				// opt 1 may have removed some instrumentation).
				op, ok := p.cfg.ReducibleVars[e.desc.AllocPos]
				elem.Reducible, elem.Reduction = ok, op
			}
			if elem.Sets == 0 && len(elem.UseSites) == 0 {
				continue
			}
			psec.Elements = append(psec.Elements, elem)
		}
		out[roi] = psec
	}
	return out
}

// mergeStaticUses adds compiler-contributed use sites for a variable.
func (p *postState) mergeStaticUses(e *elemAcc) {
	for _, site := range p.cfg.StaticVarUses[e.desc.AllocPos] {
		if _, ok := e.useSites[site]; !ok {
			e.useSites[site] = map[core.CallstackID]struct{}{}
		}
	}
}

func (p *postState) buildUseSites(e *elemAcc) []core.UseSite {
	if len(e.useSites) == 0 {
		return nil
	}
	sites := make([]int32, 0, len(e.useSites))
	for s := range e.useSites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := make([]core.UseSite, 0, len(sites))
	for _, s := range sites {
		info := p.cfg.Sites[s]
		u := core.UseSite{Pos: info.Pos, IsWrite: info.Write}
		css := make([]core.CallstackID, 0, len(e.useSites[s]))
		for cs := range e.useSites[s] {
			css = append(css, cs)
		}
		sort.Slice(css, func(i, j int) bool { return css[i] < css[j] })
		u.Callstacks = css
		out = append(out, u)
	}
	return out
}

// reduction decides whether every in-ROI computation on the element is a
// single commutative reduction (load e; op; store e), the §3.2 check that
// admits a reduction(op:var) clause.
func (p *postState) reduction(e *elemAcc) (bool, string) {
	if len(e.useSites) == 0 {
		return false, ""
	}
	op := ""
	for s := range e.useSites {
		info := p.cfg.Sites[s]
		if info.ReduceOp == "" {
			return false, ""
		}
		if op == "" {
			op = info.ReduceOp
		} else if op != info.ReduceOp {
			return false, ""
		}
	}
	return true, op
}

// DumpASMT renders the live-allocation table; useful in tests/debugging.
func (p *postState) DumpASMT() string {
	s := ""
	for _, a := range p.allocs {
		if a.live {
			s += fmt.Sprintf("alloc %d %s base=%d cells=%d\n", a.id, a.desc.Key(), a.base, a.cells)
		}
	}
	return s
}

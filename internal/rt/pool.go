package rt

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a machine-wide budget of pipeline slots shared by concurrent
// profiling sessions. One slot stands for one condensing worker
// goroutine's worth of capacity; a session leases slots before
// constructing its Runtime and sizes Config.Workers/Config.Shards from
// the grant, so N concurrent sessions multiplex over one machine's
// worth of goroutines instead of each spawning its own full pipeline.
//
// Acquire hands out partial grants under contention: a session that
// asked for 8 workers may be granted 2 and run with degraded geometry
// rather than queue behind the peak. Only when not even the caller's
// minimum is free does Acquire block, and then it respects the caller's
// context — the admission deadline bounds the wait.
type Pool struct {
	slots chan struct{} // buffered; len(slots) = free capacity
	total int

	mu       sync.Mutex
	sessions int
}

// NewPool creates a pool with the given slot budget (minimum 1).
func NewPool(total int) *Pool {
	if total < 1 {
		total = 1
	}
	p := &Pool{slots: make(chan struct{}, total), total: total}
	for i := 0; i < total; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Grant is a leased pipeline geometry. Workers/Shards are ready to drop
// into a Config; Release returns the slots to the pool (idempotent).
type Grant struct {
	Workers int
	Shards  int

	pool    *Pool
	release sync.Once
}

// Release returns the grant's slots to the pool. Safe to call more than
// once; call it after Runtime.Finish so the slots stay leased for the
// session's whole lifetime.
func (g *Grant) Release() {
	g.release.Do(func() {
		if g.pool == nil {
			return
		}
		for i := 0; i < g.Workers; i++ {
			g.pool.slots <- struct{}{}
		}
		g.pool.mu.Lock()
		g.pool.sessions--
		g.pool.mu.Unlock()
	})
}

// Acquire leases between min and want slots. It first takes whatever is
// immediately free; if that covers min, the (possibly partial) grant is
// returned without blocking. Otherwise it blocks until the remainder of
// min frees up or ctx is done — on cancellation every slot taken so far
// is returned and ctx.Err() is reported. want and min are clamped to
// [1, total], and min to want.
func (p *Pool) Acquire(ctx context.Context, want, min int) (*Grant, error) {
	want = clamp(want, 1, p.total)
	min = clamp(min, 1, want)

	got := 0
	for got < want {
		select {
		case <-p.slots:
			got++
		default:
			want = got // nothing free; stop topping up
		}
	}
	for got < min {
		select {
		case <-p.slots:
			got++
		case <-ctx.Done():
			for i := 0; i < got; i++ {
				p.slots <- struct{}{}
			}
			return nil, fmt.Errorf("rt: pool acquire: %w", ctx.Err())
		}
	}
	p.mu.Lock()
	p.sessions++
	p.mu.Unlock()
	shards := got
	if shards > 8 {
		shards = 8
	}
	return &Grant{Workers: got, Shards: shards, pool: p}, nil
}

// Load reports the fraction of the slot budget currently leased, in
// [0, 1]. The serving layer's degradation ladder keys off this.
func (p *Pool) Load() float64 {
	return float64(p.total-len(p.slots)) / float64(p.total)
}

// Free reports how many slots are unleased right now. The serving
// layer's readiness document exposes this so a router can weight
// replicas by spare capacity.
func (p *Pool) Free() int { return len(p.slots) }

// Sessions reports how many grants are outstanding.
func (p *Pool) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions
}

// Total reports the pool's slot budget.
func (p *Pool) Total() int { return p.total }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package interp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestWhileLoopWithROI(t *testing.T) {
	expectExit(t, `
int main() {
	int n = 1;
	int steps = 0;
	while (n < 50) {
		#pragma carmot roi collatzish
		{
			if (n % 2 == 0) {
				n = n / 2;
			} else {
				n = 3 * n + 1;
			}
			steps = steps + 1;
			if (steps > 40) { break; }
		}
	}
	return n;
}`, 2) // 1→4→2→1→... the cycle breaks at steps=41, where n=2 (see TestCollatzOracle)
}

func TestFnPtrInStruct(t *testing.T) {
	expectExit(t, `
struct op_t {
	fnptr apply;
	int bias;
};
int dbl(int x) { return 2 * x; }
int neg(int x) { return -x; }
int main() {
	struct op_t ops[2];
	ops[0].apply = dbl;
	ops[0].bias = 1;
	ops[1].apply = neg;
	ops[1].bias = 10;
	int acc = 0;
	for (int i = 0; i < 2; i++) {
		fnptr f = ops[i].apply;
		acc = acc + f(5) + ops[i].bias;
	}
	return acc;
}`, 10+1+(-5)+10)
}

func TestArrayOfStructs(t *testing.T) {
	expectExit(t, `
struct pt_t { int x; int y; };
int main() {
	struct pt_t* pts = malloc(4);
	for (int i = 0; i < 4; i++) {
		pts[i].x = i;
		pts[i].y = i * i;
	}
	int s = 0;
	for (int i = 0; i < 4; i++) {
		s = s + pts[i].x + pts[i].y;
	}
	free(pts);
	return s;
}`, (0+1+2+3)+(0+1+4+9))
}

func TestNestedStructArrays(t *testing.T) {
	expectExit(t, `
struct row_t { int cells[3]; };
struct grid_t { struct row_t rows[2]; };
int main() {
	struct grid_t g;
	for (int r = 0; r < 2; r++) {
		for (int c = 0; c < 3; c++) {
			g.rows[r].cells[c] = r * 10 + c;
		}
	}
	return g.rows[1].cells[2] + g.rows[0].cells[1];
}`, 12+1)
}

func TestSizeofInExpressions(t *testing.T) {
	expectExit(t, `
struct big_t { int a[5]; float b; };
int main() {
	return sizeof(struct big_t) * 10 + sizeof(int) + sizeof(float*);
}`, 62)
}

func TestGlobalStructAndPointers(t *testing.T) {
	expectExit(t, `
struct cfg_t { int depth; int width; };
struct cfg_t gcfg;
struct cfg_t* pick() { return &gcfg; }
int main() {
	gcfg.depth = 3;
	pick()->width = 7;
	return gcfg.depth * 10 + gcfg.width;
}`, 37)
}

// TestRandomStraightLinePrograms is a differential test: random
// straight-line integer programs are executed by the interpreter and by a
// direct Go oracle; results must agree.
func TestRandomStraightLinePrograms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const nVars = 6
	for trial := 0; trial < 150; trial++ {
		vals := make([]int64, nVars)
		var body strings.Builder
		for v := 0; v < nVars; v++ {
			init := int64(r.Intn(21) - 10)
			vals[v] = init
			fmt.Fprintf(&body, "\tint v%d = %d;\n", v, init)
		}
		nStmts := 5 + r.Intn(25)
		for s := 0; s < nStmts; s++ {
			dst := r.Intn(nVars)
			a, b := r.Intn(nVars), r.Intn(nVars)
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(&body, "\tv%d = v%d + v%d;\n", dst, a, b)
				vals[dst] = vals[a] + vals[b]
			case 1:
				fmt.Fprintf(&body, "\tv%d = v%d - v%d;\n", dst, a, b)
				vals[dst] = vals[a] - vals[b]
			case 2:
				// Keep magnitudes bounded: scale down after multiply.
				fmt.Fprintf(&body, "\tv%d = v%d * v%d %% 1000003;\n", dst, a, b)
				vals[dst] = vals[a] * vals[b] % 1000003
			case 3:
				c := int64(r.Intn(9) + 1)
				fmt.Fprintf(&body, "\tv%d = v%d / %d;\n", dst, a, c)
				vals[dst] = vals[a] / c
			}
		}
		var want int64
		var retExpr []string
		for v := 0; v < nVars; v++ {
			want += vals[v]
			retExpr = append(retExpr, fmt.Sprintf("v%d", v))
		}
		src := fmt.Sprintf("int main() {\n%s\treturn %s;\n}\n",
			body.String(), strings.Join(retExpr, " + "))
		res, err := tryRun(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if res.Exit != want {
			t.Fatalf("trial %d: interpreter %d, oracle %d\n%s", trial, res.Exit, want, src)
		}
	}
}

// TestRandomFloatPrograms: the same differential idea on float chains.
func TestRandomFloatPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		x := 1.0 + r.Float64()
		var body strings.Builder
		fmt.Fprintf(&body, "\tfloat x = %v;\n", x)
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			c := 0.5 + r.Float64()
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&body, "\tx = x * %v;\n", c)
				x = x * c
			case 1:
				fmt.Fprintf(&body, "\tx = x + %v;\n", c)
				x = x + c
			case 2:
				fmt.Fprintf(&body, "\tx = x / %v;\n", c)
				x = x / c
			}
		}
		want := int64(x * 1000)
		src := fmt.Sprintf("int main() {\n%s\treturn x * 1000.0;\n}\n", body.String())
		res, err := tryRun(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if res.Exit != want {
			t.Fatalf("trial %d: interpreter %d, oracle %d\n%s", trial, res.Exit, want, src)
		}
	}
}

// TestCollatzOracle pins the expected value used by TestWhileLoopWithROI.
func TestCollatzOracle(t *testing.T) {
	n, steps := 1, 0
	for n < 50 {
		if n%2 == 0 {
			n = n / 2
		} else {
			n = 3*n + 1
		}
		steps++
		if steps > 40 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("oracle says %d; update TestWhileLoopWithROI", n)
	}
}

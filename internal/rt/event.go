// Package rt implements CARMOT-Go's profiling runtime (§4.6, Figure 5).
// The instrumented program (the interpreter's main thread) pushes events
// into fixed-size batches; filled batches flow through a parallel pipeline
// of worker goroutines that condense them into per-cell access summaries;
// an ordered sequencing stage then maintains the Active State Member
// Table (ASMT) and fans work out to address-sharded shard goroutines that
// drive the Figure 3 FSA per (ROI, cell), collect use-callstacks, and
// feed the reachability graph — producing one PSEC per ROI.
package rt

import "carmot/internal/core"

// EventKind enumerates runtime events.
type EventKind uint8

// Event kinds.
const (
	// EvAccess is a single-cell read or write at Addr.
	EvAccess EventKind = iota
	// EvRange reports a uniform access over [Addr, Addr+N*Stride), one
	// per covered ROI execution (aggregation optimization, §4.4 opt 2);
	// every covered cell behaves as first-accessed in its own invocation.
	EvRange
	// EvFixed reports a compile-time classification (§4.4 opt 3) of
	// [Addr, Addr+N) as Sets for ROI.
	EvFixed
	// EvROIBegin / EvROIEnd delimit a dynamic ROI invocation.
	EvROIBegin
	EvROIEnd
	// EvAlloc announces a new PSE allocation at [Addr, Addr+N) with Meta.
	EvAlloc
	// EvFree retires the allocation based at Addr.
	EvFree
	// EvEscape records that a pointer to cell Aux was stored into cell
	// Addr (a reachability-graph reference, §3.1).
	EvEscape
	// EvAccessRun is N single-cell accesses sharing one site and
	// callstack at Addr, Addr+stride, ... (producer-side coalescing).
	// It is pure wire compression: the condense stage expands it into
	// exactly the per-access summaries the equivalent EvAccess stream
	// would have produced, with one sequence number per covered access.
	EvAccessRun
)

var eventKindNames = [...]string{
	"access", "range", "fixed", "roi.begin", "roi.end", "alloc", "free", "escape",
	"access.run",
}

// String returns the event kind name.
func (k EventKind) String() string { return eventKindNames[k] }

// AllocMeta carries the source identity of an allocation. It is attached
// to EvAlloc events only, so the hot access path stays pointer-free.
type AllocMeta struct {
	Kind core.PSEKind
	Name string
	Pos  string
}

// Event is one runtime event. The main thread fills these into batches;
// size matters more than elegance here: accesses dominate every workload,
// so the struct carries only what EvAccess needs (40 bytes). Fields used
// by the rarer structural/aggregate kinds (cell counts, strides, set
// masks, allocation metadata) live in a per-batch EventCold side table
// reached through the unexported cold index; use the Emit* helpers to
// attach them.
type Event struct {
	Addr  uint64
	Seq   uint64
	Phase uint32
	ROI   int32 // EvROIBegin/End, EvRange, EvFixed
	Site  int32
	CS    core.CallstackID
	cold  int32 // 1-based index into the batch's cold table; 0 = none
	Kind  EventKind
	Write bool
}

// EventCold carries the event fields that only structural and aggregate
// kinds use, keyed off Event.cold so the access fast path never touches
// them.
type EventCold struct {
	N    int64  // cells (EvAlloc, EvRange, EvFixed) or run length (EvAccessRun)
	Aux  uint64 // escape target (EvEscape), stride (EvRange, EvAccessRun)
	Sets core.SetMask
	Meta *AllocMeta
}

// coldOf resolves an event's cold record against its batch's side table;
// events emitted without one (plain Emit of a structural kind) resolve to
// the zero record.
func coldOf(ev *Event, cold []EventCold) EventCold {
	if ev.cold == 0 {
		return EventCold{}
	}
	return cold[ev.cold-1]
}

// SiteInfo describes one static instrumented access site (an ROI use).
type SiteInfo struct {
	Pos   string
	Func  string
	Write bool
	// ReduceOp is "+" or "*" when the site is part of a recognized
	// reduction pattern on a single PSE (load e; op; store e); empty
	// otherwise. The recommendation engine uses it for reduction clauses.
	ReduceOp string
}

// ROIMeta mirrors the static ROI table for report building.
type ROIMeta struct {
	ID   int
	Name string
	Kind string
	Pos  string
}

// TrackingProfile selects which PSEC components the runtime must build,
// per Table 1: the OpenMP use case needs Sets and Use-callstacks, omp task
// and STATS only Sets, smart pointers Sets and the Reachability Graph
// (and §5.2's CARMOT configuration tracks only allocations + reachability).
type TrackingProfile struct {
	Sets          bool
	UseCallstacks bool
	Reach         bool
}

// Profiles for the paper's use cases.
var (
	ProfileOpenMP   = TrackingProfile{Sets: true, UseCallstacks: true}
	ProfileTask     = TrackingProfile{Sets: true}
	ProfileSmartPtr = TrackingProfile{Reach: true}
	ProfileStats    = TrackingProfile{Sets: true}
	ProfileFull     = TrackingProfile{Sets: true, UseCallstacks: true, Reach: true}
)

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carmot/internal/testutil"
	"carmot/internal/wire"
)

// loadSources is a small mix of fast programs so the load test
// exercises cache hits, private compiles, and distinct PSEC shapes.
var loadSources = []string{
	`int a[8];
int main() { int s = 0; #pragma carmot roi r
for (int i = 0; i < 8; i++) { a[i] = i; s = s + a[i]; } return s; }`,
	`int b[16];
int main() { #pragma carmot roi w
for (int i = 0; i < 16; i++) { b[i] = i * 3; } return b[5]; }`,
	`int x = 0;
int main() { #pragma carmot roi acc
for (int i = 0; i < 12; i++) { x = x + i; } return x; }`,
	`int m[4]; int o[4];
int main() { m[0]=1; m[1]=2; m[2]=3; m[3]=4; #pragma carmot roi cp
for (int i = 0; i < 4; i++) { o[i] = m[i]; } return o[3]; }`,
}

// TestServeLoad1000 drives ≥1000 concurrent profile requests through
// the serving layer — every one launched before any is awaited — plus a
// deliberately over-admitted tenant, and requires: every well-admitted
// request completes cleanly, every shed is structured, and no goroutine
// survives the final drain. Run it under -race to make the concurrency
// claims meaningful (verify.sh does).
func TestServeLoad1000(t *testing.T) {
	baseline := testutil.Goroutines()
	const good = 1000 // well-admitted requests
	const noisy = 50  // over-budget tenant requests
	s := New(Config{
		PoolSlots:      8,
		TenantRate:     100000, // the load tenant is never rate-shed
		TenantBurst:    good * 2,
		MaxTimeout:     2 * time.Minute,
		DefaultTimeout: 2 * time.Minute,
	})
	// The noisy tenant gets its own tight bucket by going through the
	// same admission map: burst 10 at ~0 refill means ~40 of its 50
	// requests must shed.
	s.adm.tenants["noisy"] = &bucket{tokens: 10, last: time.Now()}
	s.adm.rate = 0.0001 // refill is negligible across the test
	h := s.Handler()

	var ok200, shed429, other atomic.Uint64
	var firstOther atomic.Value
	var wg sync.WaitGroup
	post := func(tenant string, src string) {
		defer wg.Done()
		body, _ := json.Marshal(profileRequest{Source: src, TimeoutMs: 110_000})
		r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
		r.Header.Set(TenantHeader, tenant)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		var resp profileResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			other.Add(1)
			firstOther.CompareAndSwap(nil, fmt.Sprintf("non-JSON response: %s", w.Body.Bytes()))
			return
		}
		switch {
		case w.Code == http.StatusOK && resp.ExitCode == 0:
			ok200.Add(1)
		case w.Code == http.StatusTooManyRequests && resp.Kind == wire.KindShed && resp.RetryAfterMs > 0:
			shed429.Add(1)
		default:
			other.Add(1)
			firstOther.CompareAndSwap(nil, fmt.Sprintf("status %d kind %q exit %d: %s",
				w.Code, resp.Kind, resp.ExitCode, resp.Error))
		}
	}

	wg.Add(good + noisy)
	for i := 0; i < good; i++ {
		go post("load", loadSources[i%len(loadSources)])
	}
	for i := 0; i < noisy; i++ {
		go post("noisy", loadSources[0])
	}
	wg.Wait()

	if n := ok200.Load(); n < good {
		t.Errorf("clean completions = %d, want ≥ %d", n, good)
	}
	if n := shed429.Load(); n < noisy/2 {
		t.Errorf("structured sheds = %d, want ≥ %d (noisy tenant barely throttled)", n, noisy/2)
	}
	if n := other.Load(); n != 0 {
		t.Errorf("%d unexpected responses; first: %v", n, firstOther.Load())
	}
	st := s.Snapshot()
	if st.Requests != good+noisy {
		t.Errorf("requests counter = %d, want %d", st.Requests, good+noisy)
	}
	if st.Sessions != 0 {
		t.Errorf("%d sessions still registered after the burst", st.Sessions)
	}
	t.Logf("load: %d ok, %d shed, cache hits=%d misses=%d, retries=%d",
		ok200.Load(), shed429.Load(), st.CacheHits, st.CacheMisses, st.Retries)

	// The fleet must leave nothing behind.
	testutil.WaitGoroutines(t, baseline)
}

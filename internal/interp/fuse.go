package interp

// Superinstruction fusion: a peephole pass over the freshly generated
// bytecode that rewrites the dominant adjacent pairs into single fused
// words with pre-resolved operands. The pair table is data-driven — it
// was chosen from the dispatch-counter profile of the compiled benchmark
// corpus (carmot-bench -exp interp -interp-counters), where
// compare+branch and gep+load/gep+store dominate dynamic fall-through
// pairs by an order of magnitude. Const+arith pairs need no fusion at
// all: constants fold into immediate operands during generation, so they
// never exist as separate words.
//
// Legality is purely structural, decided per adjacent word pair:
//
//   - The second word must not start a basic block. Branch targets only
//     ever name block starts (blockPC), so fusing a pair that straddles
//     a block boundary would hide a jump target; everything strictly
//     inside a block is unreachable except by fall-through.
//   - The second word must consume the first word's destination temp via
//     a temp-mode operand (the def-use edge the superinstruction
//     collapses).
//
// Any shape the pass cannot prove stays as generic opcodes — the
// fallback is never wrong code, just the unfused pair. Fusion is greedy
// left-to-right, so a word absorbed as a second half never heads another
// pair, which keeps the rewrite deterministic.
//
// Observational identity: a fused word still performs the second half's
// step increment, budget probe, cost accrual, and (for gep pairs) the
// first half's temp write, so steps, cycles, serial cycles, truncation
// points, and frame state match the unfused stream exactly.

import "carmot/internal/ir"

// isBin reports whether op is a two-operand arithmetic/compare opcode
// (the contiguous opAddI..opGeF block).
func isBin(op bcOp) bool { return op >= opAddI && op <= opGeF }

// isCmp reports whether op is a comparison (fusable into a condjmp).
func isCmp(op bcOp) bool {
	return (op >= opEqI && op <= opGeI) || (op >= opEqF && op <= opGeF)
}

// fuseOf returns the superinstruction opcode for the adjacent pair
// (a, b), or opBadOp when the pair does not fuse.
func fuseOf(a, b *bcInstr) bcOp {
	switch {
	case b.op == opCondJmp && isCmp(a.op) &&
		b.amode == opdTemp && b.a == uint64(a.dst):
		if a.op >= opEqF {
			return opFJmpEqF + bcOp(a.op-opEqF)
		}
		return opFJmpEqI + bcOp(a.op-opEqI)
	case a.op == opGEP && (b.op == opLoadU || b.op == opLoadT) &&
		b.amode == opdTemp && b.a == uint64(a.dst):
		if b.op == opLoadT {
			return opFGEPLoadT
		}
		return opFGEPLoadU
	case a.op == opGEP && (b.op == opStoreU || b.op == opStoreT) &&
		b.amode == opdTemp && b.a == uint64(a.dst):
		if b.op == opStoreT {
			return opFGEPStoreT
		}
		return opFGEPStoreU
	case a.op == opLoadU && b.op == opLoadU:
		// No operand constraint: the fused word performs the first load
		// before fetching the second's address, so a dependent second
		// load reads the just-written temp exactly as the unfused pair.
		return opFLoadLoadU
	case a.op == opLoadU && isBin(b.op):
		return opFLoadBin
	case isBin(a.op) && b.op == opStoreU &&
		b.bmode == opdTemp && b.b == uint64(a.dst):
		// Only when the stored value is the bin result: the store's value
		// operand becomes implicit, freeing the word's third operand slot
		// for the store address.
		return opFBinStoreU
	case a.op == opStoreU && b.op == opJmp:
		// No operand constraint (jumps take none); the branch target
		// patches into imm after the rewrite like any other jump.
		return opFStoreUJmp
	}
	return opBadOp
}

// fuse rewrites cf.code in place, returning the old-pc → new-pc map the
// caller uses to resolve branch patches and block starts. With
// Options.NoFuse the stream is left untouched and the map is the
// identity.
func (it *Interp) fuse(cf *compiledFunc, blockPC map[*ir.Block]int) []int {
	oldToNew := make([]int, len(cf.code))
	if it.opts.NoFuse {
		for i := range oldToNew {
			oldToNew[i] = i
		}
		return oldToNew
	}
	isBlockStart := make([]bool, len(cf.code)+1)
	for _, pc := range blockPC {
		isBlockStart[pc] = true
	}

	newCode := cf.code[:0]
	newPoss := cf.poss[:0]
	for pc := 0; pc < len(cf.code); pc++ {
		a := cf.code[pc]
		posA := cf.poss[pc]
		oldToNew[pc] = len(newCode)
		if pc+1 < len(cf.code) && !isBlockStart[pc+1] {
			b := &cf.code[pc+1]
			if fop := fuseOf(&a, b); fop != opBadOp {
				w := fuseWords(&a, b, fop)
				w.ext = int32(len(cf.fused))
				cf.fused = append(cf.fused, fuseInfo{posB: cf.poss[pc+1], dstA: a.dst})
				oldToNew[pc+1] = len(newCode)
				newCode = append(newCode, w)
				newPoss = append(newPoss, posA)
				pc++
				continue
			}
		}
		newCode = append(newCode, a)
		newPoss = append(newPoss, posA)
	}
	cf.code = newCode
	cf.poss = newPoss
	return oldToNew
}

// fuseWords builds the fused word for pair (a, b) under opcode fop.
func fuseWords(a, b *bcInstr, fop bcOp) bcInstr {
	w := bcInstr{op: fop, ext: -1}
	if a.flags&bfSerial != 0 {
		w.flags |= bfSerial
	}
	if b.flags&bfSerial != 0 {
		w.flags |= bfSerialB
	}
	switch {
	case fop >= opFJmpEqI && fop <= opFJmpGeF:
		// Compare operands from a; branch targets patch into imm/imm2
		// later (the patch records the condjmp's old pc, which remaps to
		// this word). The compare's temp is still written.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = a.b, a.bmode
		w.dst = a.dst
	case fop == opFGEPLoadU || fop == opFGEPLoadT:
		// Address computation from a (base, index, scale, offset); the
		// load's destination, site, and tallies from b.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = a.b, a.bmode
		w.imm, w.imm2 = a.imm, a.imm2
		w.flags |= a.flags & bfHasB
		w.dst = b.dst
		w.site = b.site
		w.flags |= b.flags & bfSym
	case fop == opFGEPStoreU || fop == opFGEPStoreT:
		// Address computation from a; the store's value operand moves to
		// the third operand slot, its emit profile rides the flags.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = a.b, a.bmode
		w.imm, w.imm2 = a.imm, a.imm2
		w.flags |= a.flags & bfHasB
		w.c, w.cmode = b.b, b.bmode
		w.dst = a.dst // the gep temp; stores produce no value
		w.site = b.site
		w.flags |= b.flags & (bfSym | bfPtrStore | bfSets | bfEscape)
	case fop == opFLoadLoadU:
		// Two untracked loads back to back; the second destination rides
		// in imm (both dst slots are taken by the operand encodings).
		w.a, w.amode = a.a, a.amode
		w.dst = a.dst
		w.b, w.bmode = b.a, b.amode
		w.imm = int64(b.dst)
		w.flags |= a.flags & bfSym
		if b.flags&bfSym != 0 {
			w.flags |= bfSymB
		}
	case fop == opFLoadBin:
		// Untracked load feeding (usually) a binary op. The load's
		// destination temp is still written (later words may re-read it);
		// it rides in the fuseInfo. The bin opcode and its cost pack into
		// imm: op in the low byte, cost above.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = b.a, b.amode
		w.c, w.cmode = b.b, b.bmode
		w.dst = b.dst
		w.imm = int64(b.op) | int64(b.cost)<<8
		w.flags |= a.flags & bfSym
	case fop == opFBinStoreU:
		// Binary op whose result is immediately stored untracked. The
		// store's value operand is implicit (the bin result), so the third
		// operand slot carries the store address. The bin temp is still
		// written.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = a.b, a.bmode
		w.c, w.cmode = b.a, b.amode
		w.dst = a.dst
		w.imm = int64(a.op) | int64(a.cost)<<8
		if b.flags&bfSym != 0 {
			w.flags |= bfSymB
		}
	case fop == opFStoreUJmp:
		// Store operands from a (addr, value); the jump target lands in imm
		// via the branch-patch pass, which remaps the jmp's old pc to this
		// word.
		w.a, w.amode = a.a, a.amode
		w.b, w.bmode = a.b, a.bmode
		w.site = a.site
		w.flags |= a.flags & bfSym
	}
	return w
}

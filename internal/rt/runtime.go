package rt

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"carmot/internal/core"
	"carmot/internal/faultinject"
)

// Config configures the runtime.
type Config struct {
	BatchSize int // events per batch (default 4096)
	Workers   int // worker goroutines (default GOMAXPROCS)
	// Shards is the number of address-sharded postprocessing goroutines
	// that own the FSA shadow state (default min(Workers, 8); hard cap
	// maxShards). Shard s owns every cell address with addr%Shards == s.
	Shards  int
	Profile TrackingProfile
	Sites   []SiteInfo
	ROIs    []ROIMeta
	// StaticVarUses supplies compiler-known use sites (accesses whose
	// instrumentation optimization 1 removed), keyed by the variable's
	// declaration position.
	StaticVarUses map[string][]int32
	// ReducibleVars supplies the statically decided reduction operators,
	// keyed by the variable's declaration position.
	ReducibleVars map[string]string
	// Limits bounds shadow state; zero values are unlimited.
	Limits Limits
	// Recover enables the self-healing layer: a byte-budgeted replay
	// journal plus supervisors that respawn a panicked worker batch or
	// shard goroutine and replay its journal partition, producing a
	// byte-identical PSEC instead of a degraded one. Off by default: the
	// historical containment behaviour (degrade and record) is the
	// fallback rung either way.
	Recover bool
	// JournalBudgetBytes bounds the replay journal's retention when
	// Recover is set: 0 means the default (32 MiB), a negative value
	// retains nothing (every recovery falls back to degradation — useful
	// for forcing the ladder in tests).
	JournalBudgetBytes int64
	// Coalesce enables producer-side access coalescing in the emit path
	// (see coalesce.go): consecutive same-site/same-kind accesses on a
	// constant stride collapse into one EvAccessRun batch slot. The
	// condensed stream — and therefore every PSEC — is byte-identical
	// either way. Off by default so direct Emit* users keep the exact
	// historical wire format; carmot.Profile turns it on.
	Coalesce bool
	// CoalesceForce pins the combining buffer on, skipping the adaptive
	// gate that would switch it off on non-merging streams. An overloaded
	// serving layer sets it to trade producer CPU for pipeline volume:
	// merged runs occupy fewer batch slots, which is what matters when N
	// sessions contend for the shared worker pool. Implies Coalesce.
	CoalesceForce bool
	// Progress, when non-nil, is invoked from the program thread at every
	// batch boundary (and once more inside Finish) with a monotonic
	// snapshot of pipeline volume. The callback runs on the Emit hot path
	// between batches, so it must be fast and must not call back into the
	// runtime; downgrade/recovery counts may lag the pipeline goroutines
	// that record them by a batch.
	Progress func(ProgressUpdate)
}

// ProgressUpdate is one pipeline-volume snapshot handed to the
// Config.Progress hook: how far the run has come, and whether the
// degradation ladder or the supervisors have intervened so far.
type ProgressUpdate struct {
	// Events is the number of events accepted so far; Dropped counts
	// events shed by the MaxEvents cap.
	Events  uint64
	Dropped uint64
	// Batches is the number of batches pushed into the pipeline.
	Batches int
	// Downgrades / Recoveries count degradation-ladder steps and
	// supervisor interventions recorded so far; a consumer that sees
	// either grow mid-run is watching a fidelity transition happen.
	Downgrades int
	Recoveries int
	// Final marks the snapshot Finish fires after the pipeline drained.
	Final bool
}

// Runtime is the profiling runtime. The program thread calls the Emit*
// methods and Finish; everything else runs on the pipeline goroutines.
type Runtime struct {
	cfg Config
	cs  *core.CallstackTable

	// Program-thread state. Emit is documented single-threaded, so the
	// counters on its fast path are plain fields; acceptedLoc is synced
	// to the atomic mirror at batch boundaries for cross-goroutine
	// diagnostic reads.
	cur     []Event
	curCold []EventCold
	seq     uint64
	// flushSeq is the sequence number at which the current batch closes.
	// Batches are delimited in logical-event space, not slot space: a
	// coalesced run occupies one slot but spans many sequence numbers, and
	// cutting batches by seq keeps the condensed block structure (and the
	// per-block use-sample caps) byte-identical to the uncoalesced stream.
	flushSeq    uint64
	phase       uint32
	finished    bool
	acceptedLoc uint64
	eventCapHit bool
	// pend is the producer-side combining buffer (coalesce.go); only used
	// when cfg.Coalesce is set. coOn starts as cfg.Coalesce and is cleared
	// by the adaptive gate when merging isn't paying for itself (unless
	// coForce pins it on); coAccesses/coRuns are the buffer's statistics.
	pend       pendingRun
	coOn       bool
	coForce    bool
	coProbed   bool
	coAccesses uint64
	coRuns     uint64

	nextBatch int
	filled    chan batchMsg
	done      chan []*core.PSEC
	workerWG  sync.WaitGroup
	toPost    chan processedMsg
	post      *postState
	// bufFree and itemsFree recycle the pipeline's two per-batch buffers
	// (raw event batches; condensed item slices). Bounded free-list
	// channels instead of sync.Pool: the pipeline allocates several MB per
	// profiled millisecond, so pool contents rarely survive to the next
	// GC cycle — a deterministic free list keeps the steady state at zero
	// allocations regardless of GC timing.
	bufFree   chan *eventBuf
	itemsFree chan []postItem
	journal   *journal // nil unless Config.Recover with a usable budget

	// Lifecycle guard: Finish is idempotent; Emit after Finish is a
	// counted no-op instead of a send on a closed channel.
	finishOnce sync.Once
	result     []*core.PSEC

	// Governor state. gLevel is the degradation-ladder level, escalated
	// under diagMu by the sequencer and the shards and read atomically
	// by every stage. liveCells/peakCells account FSA tracking slots
	// across all shards.
	gLevel    atomic.Int32
	accepted  atomic.Uint64 // mirror of acceptedLoc, synced at flush/Finish
	dropped   atomic.Uint64
	liveCells atomic.Int64
	peakCells atomic.Int64
	// Atomic mirrors of len(diag.Downgrades)/len(diag.Recoveries) so the
	// Progress hook can read them from the program thread without taking
	// diagMu on the emit path.
	nDowngrades atomic.Int32
	nRecoveries atomic.Int32

	diagMu sync.Mutex
	diag   Diagnostics
}

// eventBuf is one recyclable event batch: the hot event array plus the
// cold side table the Emit* helpers fill for structural kinds. refs
// counts its owners — the condensing worker plus, for journaled batches,
// the replay journal — so it only returns to the pool once both are done.
type eventBuf struct {
	evs  []Event
	cold []EventCold
	refs atomic.Int32
}

type batchMsg struct {
	idx       int
	buf       *eventBuf
	journaled bool // the journal retained buf; a worker panic may replay it
}

type processedMsg struct {
	idx   int
	items []postItem
}

// postItem is either a passthrough event or a block of condensed access
// summaries; items preserve intra-batch ordering across the two forms.
// Events are carried by value so the batch buffers they came from can be
// recycled as soon as condense returns.
type postItem struct {
	sums  []accSummary
	uses  []useRec
	ev    Event
	cold  EventCold
	hasEv bool
}

// accSummary condenses every access to one cell within one phase of one
// batch; the FSA needs only the kind of the first access and whether any
// write followed (§4.1).
type accSummary struct {
	addr         uint64
	firstIsWrite bool
	hasWrite     bool
	count        uint64
	firstSeq     uint64
	lastSeq      uint64
}

// useRec aggregates use-callstack samples per (site, callstack). The
// sample cap is small, so the samples live inline: records copy by value
// with no per-record heap slice, and the condenser's use slabs stay
// pointer-free (the GC never scans their contents).
type useRec struct {
	site    int32
	cs      core.CallstackID
	count   uint64
	nsamp   int32
	samples [maxUseSamples]uint64 // representative accessed addresses
}

func (u *useRec) sampleSet() []uint64 { return u.samples[:u.nsamp] }

// addSample records addr unless it is already sampled or the cap is hit.
func (u *useRec) addSample(addr uint64) {
	if int(u.nsamp) < maxUseSamples && !containsU64(u.samples[:u.nsamp], addr) {
		u.samples[u.nsamp] = addr
		u.nsamp++
	}
}

const maxUseSamples = 8

// New creates and starts a runtime.
func New(cfg Config) *Runtime {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.Shards > maxShards {
		cfg.Shards = maxShards
	}
	queue := 4 * cfg.Workers
	if cfg.Limits.MaxBatchQueue > 0 && cfg.Limits.MaxBatchQueue < queue {
		queue = cfg.Limits.MaxBatchQueue
	}
	r := &Runtime{
		cfg:       cfg,
		cs:        core.NewCallstackTable(),
		cur:       make([]Event, 0, cfg.BatchSize),
		curCold:   make([]EventCold, 0, 8),
		flushSeq:  uint64(cfg.BatchSize),
		filled:    make(chan batchMsg, queue),
		toPost:    make(chan processedMsg, queue),
		done:      make(chan []*core.PSEC, 1),
		bufFree:   make(chan *eventBuf, queue+2),
		itemsFree: make(chan []postItem, queue+2),
	}
	r.coOn = cfg.Coalesce || cfg.CoalesceForce
	r.coForce = cfg.CoalesceForce
	if cfg.Limits.MaxCallstacks > 0 {
		r.cs.SetCap(cfg.Limits.MaxCallstacks)
	}
	if cfg.Recover && cfg.JournalBudgetBytes >= 0 {
		budget := cfg.JournalBudgetBytes
		if budget == 0 {
			budget = defaultJournalBudget
		}
		r.journal = newJournal(budget, cfg.Shards)
	}
	r.post = newPostState(r)
	// Shard threads: per-address-range FSA shadow state.
	for _, s := range r.post.shards {
		r.post.wg.Add(1)
		go s.run()
	}
	// Worker threads: condense batches (the "Process Batch" stage).
	for i := 0; i < cfg.Workers; i++ {
		r.workerWG.Add(1)
		go r.worker()
	}
	// Sequencing stage: reorder batches and fan items out to the shards
	// (ordering preserves FSA and ASMT semantics).
	go r.postprocessor()
	go func() {
		r.workerWG.Wait()
		close(r.toPost)
	}()
	return r
}

// Callstacks exposes the interning table; the interpreter interns one
// stack per function entry (callstack clustering, §4.4 opt 7).
func (r *Runtime) Callstacks() *core.CallstackTable { return r.cs }

// Profile returns the tracking profile the runtime was configured with.
func (r *Runtime) Profile() TrackingProfile { return r.cfg.Profile }

// droppable reports whether the governor may shed the event under the
// MaxEvents cap. Structural events must pass: dropping an alloc/free or
// ROI boundary would corrupt the ASMT and phase accounting.
func droppable(k EventKind) bool {
	switch k {
	case EvAccess, EvAccessRun, EvRange, EvEscape, EvFixed:
		return true
	}
	return false
}

// Emit queues an event. The caller is the single program thread. It
// reports whether the event was accepted: false after Finish, or when
// the MaxEvents cap sheds it. Kinds that carry cold payloads (alloc,
// range, fixed, escape) should go through their Emit* helpers; a bare
// Emit of those kinds sends a zero cold record.
func (r *Runtime) Emit(ev Event) bool {
	r.flushPending()
	ev.cold = 0
	return r.emit(ev)
}

func (r *Runtime) emit(ev Event) bool {
	if r.finished {
		r.dropped.Add(1)
		return false
	}
	if limit := r.cfg.Limits.MaxEvents; limit > 0 && r.acceptedLoc >= limit && droppable(ev.Kind) {
		if !r.eventCapHit {
			r.eventCapHit = true
			r.recordDowngrade(fmt.Sprintf("max-events=%d", limit), "drop-access-events", r.acceptedLoc)
		}
		r.dropped.Add(1)
		return false
	}
	r.acceptedLoc++
	ev.Phase = r.phase
	ev.Seq = r.seq
	r.seq++
	r.cur = append(r.cur, ev)
	if r.seq >= r.flushSeq {
		r.flush()
	}
	return true
}

// emitCold attaches a cold record to ev and queues it; the record is
// detached again if the event is shed. The pending run must flush before
// the cold record is appended: flushing may rotate the batch (and its
// cold table), and ev's cold index has to land in the same batch as ev.
func (r *Runtime) emitCold(ev Event, cold EventCold) bool {
	r.flushPending()
	r.curCold = append(r.curCold, cold)
	ev.cold = int32(len(r.curCold))
	if !r.emit(ev) {
		r.curCold = r.curCold[:len(r.curCold)-1]
		return false
	}
	return true
}

// EmitAccess is the hot-path helper for single-cell accesses. With
// Config.Coalesce the access may be absorbed into the pending run instead
// of reaching a batch immediately; an absorbed access reports accepted,
// with any MaxEvents shedding accounted when the run flushes.
func (r *Runtime) EmitAccess(addr uint64, write bool, site int32, cs core.CallstackID) bool {
	p := &r.pend
	if p.active && write == p.write && site == p.site && cs == p.cs {
		// Run-extend fast path: the second access of a run fixes the
		// stride (wraparound arithmetic, so descending sweeps coalesce
		// too); later accesses must continue it exactly.
		if !p.haveStride {
			p.stride = addr - p.lastAddr
			p.haveStride = true
			p.lastAddr = addr
			p.count++
			r.coAccesses++
			return true
		}
		if addr == p.lastAddr+p.stride {
			p.lastAddr = addr
			p.count++
			r.coAccesses++
			return true
		}
	}
	if r.coOn && !r.finished {
		return r.coalesceStart(addr, write, site, cs)
	}
	return r.emit(Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs})
}

// EmitAccessRun reports count accesses sharing one site/callstack/kind at
// addr, addr+stride, addr+2*stride, ... (producer-side coalescing). It is
// semantically exactly count EmitAccess calls: each covered access gets
// its own sequence number, counts against the MaxEvents cap, and lands in
// the batch it would have landed in uncoalesced — the run is split at
// batch (and cap) boundaries so the condensed block structure downstream
// is byte-identical. Reports whether any prefix was accepted.
func (r *Runtime) EmitAccessRun(addr, stride uint64, count int64, write bool, site int32, cs core.CallstackID) bool {
	r.flushPending()
	return r.emitRun(addr, stride, count, write, site, cs)
}

// emitRun is EmitAccessRun's body; it must be entered with no pending run
// buffered (flushPending itself lands here for merged runs).
func (r *Runtime) emitRun(addr, stride uint64, count int64, write bool, site int32, cs core.CallstackID) bool {
	if count <= 0 {
		return false
	}
	if count == 1 {
		return r.emit(Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs})
	}
	if r.finished {
		r.dropped.Add(uint64(count))
		return false
	}
	accepted := false
	for count > 0 {
		if limit := r.cfg.Limits.MaxEvents; limit > 0 {
			if r.acceptedLoc >= limit {
				if !r.eventCapHit {
					r.eventCapHit = true
					r.recordDowngrade(fmt.Sprintf("max-events=%d", limit), "drop-access-events", r.acceptedLoc)
				}
				r.dropped.Add(uint64(count))
				return accepted
			}
			if room := limit - r.acceptedLoc; uint64(count) > room {
				// Accept the in-budget prefix; the loop drops the rest.
				count, addr = r.emitRunChunk(addr, stride, int64(room), count, write, site, cs)
				accepted = true
				continue
			}
		}
		count, addr = r.emitRunChunk(addr, stride, count, count, write, site, cs)
		accepted = true
	}
	return accepted
}

// emitRunChunk emits up to want accesses of the run as one slot, clipped
// to the current batch window, and returns the remaining count and the
// next uncovered address.
func (r *Runtime) emitRunChunk(addr, stride uint64, want, count int64, write bool, site int32, cs core.CallstackID) (int64, uint64) {
	n := want
	if room := r.flushSeq - r.seq; uint64(n) > room {
		n = int64(room)
	}
	ev := Event{Kind: EvAccess, Write: write, Addr: addr, Site: site, CS: cs, Phase: r.phase, Seq: r.seq}
	if n > 1 {
		r.curCold = append(r.curCold, EventCold{N: n, Aux: stride})
		ev.Kind = EvAccessRun
		ev.cold = int32(len(r.curCold))
	}
	r.cur = append(r.cur, ev)
	r.acceptedLoc += uint64(n)
	r.seq += uint64(n)
	if r.seq >= r.flushSeq {
		r.flush()
	}
	return count - n, addr + uint64(n)*stride
}

// EmitAlloc announces a new PSE allocation of cells cells at addr.
func (r *Runtime) EmitAlloc(addr uint64, cells int64, cs core.CallstackID, meta *AllocMeta) bool {
	return r.emitCold(Event{Kind: EvAlloc, Addr: addr, CS: cs}, EventCold{N: cells, Meta: meta})
}

// EmitFree retires the allocation based at addr.
func (r *Runtime) EmitFree(addr uint64) bool {
	r.flushPending()
	return r.emit(Event{Kind: EvFree, Addr: addr})
}

// EmitEscape records that a pointer to cell target was stored into addr.
func (r *Runtime) EmitEscape(addr, target uint64) bool {
	return r.emitCold(Event{Kind: EvEscape, Addr: addr}, EventCold{Aux: target})
}

// EmitRange reports a uniform access over n cells from addr with the
// given stride (§4.4 opt 2).
func (r *Runtime) EmitRange(roi int32, write bool, addr uint64, n int64, stride uint64) bool {
	return r.emitCold(Event{Kind: EvRange, Write: write, ROI: roi, Addr: addr},
		EventCold{N: n, Aux: stride})
}

// EmitFixed reports a compile-time classification of [addr, addr+n) as
// sets for roi (§4.4 opt 3).
func (r *Runtime) EmitFixed(roi int32, addr uint64, n int64, sets core.SetMask) bool {
	return r.emitCold(Event{Kind: EvFixed, ROI: roi, Addr: addr},
		EventCold{N: n, Sets: sets})
}

// BeginROI marks the start of a dynamic ROI invocation.
func (r *Runtime) BeginROI(roi int) {
	r.flushPending()
	r.emit(Event{Kind: EvROIBegin, ROI: int32(roi)})
	r.phase++
}

// EndROI marks the end of a dynamic ROI invocation.
func (r *Runtime) EndROI(roi int) {
	r.flushPending()
	r.emit(Event{Kind: EvROIEnd, ROI: int32(roi)})
	r.phase++
}

func (r *Runtime) flush() {
	r.flushSeq = r.seq + uint64(r.cfg.BatchSize)
	if len(r.cur) == 0 {
		return
	}
	r.accepted.Store(r.acceptedLoc)
	var buf *eventBuf
	select {
	case buf = <-r.bufFree:
	default:
		buf = &eventBuf{
			evs:  make([]Event, 0, r.cfg.BatchSize),
			cold: make([]EventCold, 0, 8),
		}
	}
	buf.evs, r.cur = r.cur, buf.evs[:0]
	buf.cold, r.curCold = r.curCold, buf.cold[:0]
	buf.refs.Store(1)
	journaled := false
	if r.journal != nil && r.journal.addBatch(r.nextBatch, buf) {
		journaled = true
		buf.refs.Store(2) // worker + journal; ack releases the second ref
	}
	r.filled <- batchMsg{idx: r.nextBatch, buf: buf, journaled: journaled}
	r.nextBatch++
	r.fireProgress(false)
}

// fireProgress hands the Progress hook a volume snapshot. Called only
// from the program thread (flush and Finish), so consumers see a
// single-threaded, monotonic stream.
func (r *Runtime) fireProgress(final bool) {
	if r.cfg.Progress == nil {
		return
	}
	r.cfg.Progress(ProgressUpdate{
		Events:     r.acceptedLoc,
		Dropped:    r.dropped.Load(),
		Batches:    r.nextBatch,
		Downgrades: int(r.nDowngrades.Load()),
		Recoveries: int(r.nRecoveries.Load()),
		Final:      final,
	})
}

// releaseBuf drops one reference on buf and recycles it once the last
// owner (worker or journal) lets go.
func (r *Runtime) releaseBuf(buf *eventBuf) {
	if buf.refs.Add(-1) > 0 {
		return
	}
	buf.evs = buf.evs[:0]
	buf.cold = buf.cold[:0]
	select {
	case r.bufFree <- buf:
	default:
	}
}

// Finish flushes pending events, drains the pipeline, and returns the
// PSEC of every ROI (indexed by ROI ID). It is idempotent: repeated
// calls return the cached result instead of re-closing channels.
func (r *Runtime) Finish() []*core.PSEC {
	r.finishOnce.Do(func() {
		r.flushPending()
		r.finished = true
		r.accepted.Store(r.acceptedLoc)
		r.flush()
		close(r.filled)
		r.result = <-r.done
		r.assembleDiagnostics()
		r.fireProgress(true)
	})
	return r.result
}

// Diagnostics returns the run's resource/fault summary; valid after
// Finish has returned.
func (r *Runtime) Diagnostics() Diagnostics {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	d := r.diag
	d.Downgrades = append([]Downgrade(nil), r.diag.Downgrades...)
	d.Recoveries = append([]Recovery(nil), r.diag.Recoveries...)
	d.Errors = append([]string(nil), r.diag.Errors...)
	// The drop counter keeps moving after Finish (post-Finish Emits are
	// counted no-ops), so read it live rather than from the snapshot.
	d.DroppedEvents = r.dropped.Load()
	return d
}

// Err summarizes contained pipeline faults as one error (nil when the
// pipeline ran clean). Valid after Finish.
func (r *Runtime) Err() error {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	if len(r.diag.Errors) == 0 {
		return nil
	}
	return errors.New("rt: pipeline faults contained: " + strings.Join(r.diag.Errors, "; "))
}

// assembleDiagnostics snapshots counters once the pipeline has fully
// drained (the sequencer and every shard goroutine exited before done
// delivered, so reading their state here is race-free).
func (r *Runtime) assembleDiagnostics() {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Events = r.accepted.Load()
	r.diag.DroppedEvents = r.dropped.Load()
	r.diag.Batches = r.nextBatch
	r.diag.PeakLiveCells = r.peakCells.Load()
	r.diag.Callstacks = r.cs.Len()
	if r.cs.Capped() {
		r.diag.Downgrades = append(r.diag.Downgrades, Downgrade{
			Reason:  fmt.Sprintf("max-callstacks=%d", r.cfg.Limits.MaxCallstacks),
			Action:  "collapse-new-callstacks",
			AtEvent: r.diag.Events,
		})
	}
}

func (r *Runtime) recordDowngrade(reason, action string, atEvent uint64) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Downgrades = append(r.diag.Downgrades, Downgrade{
		Reason: reason, Action: action, AtEvent: atEvent,
	})
	r.nDowngrades.Store(int32(len(r.diag.Downgrades)))
}

// escalate climbs one degradation-ladder rung. The sequencer and any
// shard may escalate concurrently, so the load/store/record triple holds
// diagMu: recorded rungs stay strictly increasing and are never skipped.
func (r *Runtime) escalate(reason string) bool {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	lvl := r.gLevel.Load()
	if lvl >= degradeCountsOnly {
		return false
	}
	lvl++
	r.gLevel.Store(lvl)
	r.diag.Downgrades = append(r.diag.Downgrades, Downgrade{
		Reason: reason, Action: degradeName(lvl), AtEvent: r.accepted.Load(),
	})
	r.nDowngrades.Store(int32(len(r.diag.Downgrades)))
	return true
}

// reserveCells charges n FSA tracking slots against MaxLiveCells with a
// CAS loop, so concurrent shards can never overshoot the cap together.
// It reports false when the reservation does not fit.
func (r *Runtime) reserveCells(n int64) bool {
	limit := r.cfg.Limits.MaxLiveCells
	for {
		cur := r.liveCells.Load()
		if limit > 0 && cur+n > limit {
			return false
		}
		if r.liveCells.CompareAndSwap(cur, cur+n) {
			r.notePeakCells()
			return true
		}
	}
}

func (r *Runtime) releaseCells(n int64) { r.liveCells.Add(-n) }

func (r *Runtime) notePeakCells() {
	cur := r.liveCells.Load()
	for {
		peak := r.peakCells.Load()
		if cur <= peak || r.peakCells.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// countPanic bumps the contained-panic counter for a stage. Counting is
// separate from recording an error: a panic the supervisor fully
// recovers from is still counted, but leaves Err() nil — the report it
// produced is byte-identical to a clean run's.
func (r *Runtime) countPanic(stage string) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	if stage == "worker" {
		r.diag.WorkerPanics++
	} else {
		r.diag.PostprocessorPanics++
	}
}

func (r *Runtime) recordError(msg string) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Errors = append(r.diag.Errors, msg)
}

func (r *Runtime) recordRecovery(rec Recovery) {
	r.diagMu.Lock()
	defer r.diagMu.Unlock()
	r.diag.Recoveries = append(r.diag.Recoveries, rec)
	r.nRecoveries.Store(int32(len(r.diag.Recoveries)))
}

// recordPanic is the historical degrade-rung bookkeeping: count the
// panic and fold its message into Err().
func (r *Runtime) recordPanic(stage string, v interface{}) {
	r.countPanic(stage)
	r.recordError(fmt.Sprintf("%s panic: %v", stage, v))
}

func (r *Runtime) worker() {
	defer r.workerWG.Done()
	c := newCondenser()
	for b := range r.filled {
		var scratch []postItem
		select {
		case scratch = <-r.itemsFree:
		default:
		}
		items, pan := r.condenseAttempt(c, b, scratch)
		if pan != nil {
			// The panic may have left a partial block in the scratch
			// state; respawn the condense stage with a fresh condenser.
			c = newCondenser()
			items = r.recoverBatch(c, b, pan)
		}
		// Condensed items never alias the batch buffer (events are copied
		// by value, summaries are built fresh), so the worker's reference
		// can be released before forwarding — even after a contained fault.
		r.releaseBuf(b.buf)
		// A degraded batch is forwarded empty so the ordered sequencer
		// never stalls waiting for its index.
		r.toPost <- processedMsg{idx: b.idx, items: items}
	}
}

func (r *Runtime) condenseAttempt(c *condenser, b batchMsg, scratch []postItem) (items []postItem, pan interface{}) {
	defer func() { pan = recover() }()
	faultinject.Fire("rt.worker.batch")
	return c.condense(b.buf.evs, b.buf.cold, r.gLevel.Load() >= degradeNoUseCS, scratch), nil
}

// recoverBatch is the worker's supervisor. After a contained condense
// panic it replays the batch from the journaled raw events against the
// fresh condenser c; a second panic (persistent fault) or an unjournaled
// batch falls back to the degrade rung: the batch's condensed output is
// lost, recorded, and the empty result keeps the sequencer moving.
func (r *Runtime) recoverBatch(c *condenser, b batchMsg, pan interface{}) []postItem {
	r.countPanic("worker")
	reason := fmt.Sprintf("worker panic: %v", pan)
	if r.cfg.Recover && b.journaled && r.journal.batchRetained(b.idx) {
		items, pan2 := r.condenseAttempt(c, b, nil)
		if pan2 == nil {
			r.recordRecovery(Recovery{Stage: "worker", ID: b.idx,
				Outcome: RecoveryReplayed, Reason: reason, Ops: len(b.buf.evs)})
			return items
		}
		r.countPanic("worker")
		reason = fmt.Sprintf("worker replay panic: %v", pan2)
	}
	r.recordError(reason)
	if r.cfg.Recover {
		r.recordRecovery(Recovery{Stage: "worker", ID: b.idx,
			Outcome: RecoveryDegraded, Reason: reason})
		r.recordDowngrade(reason, "drop-batch", r.accepted.Load())
	}
	return nil
}

func (r *Runtime) postprocessor() {
	pending := map[int]processedMsg{}
	next := 0
	for msg := range r.toPost {
		pending[msg.idx] = msg
		first := next
		for {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for i := range m.items {
				r.applySafe(&m.items[i])
			}
			r.recycleItems(m.items)
			next++
		}
		r.post.flushShards()
		// Ack raw batches only after their condensed ops were flushed
		// (and journaled): from here on a shard replay no longer needs
		// the raw events, so the journal's buffer references can go.
		for idx := first; idx < next; idx++ {
			r.ackBatch(idx)
		}
	}
	// Drain any stragglers deterministically (should be empty).
	if len(pending) > 0 {
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			m := pending[i]
			for j := range m.items {
				r.applySafe(&m.items[j])
			}
			r.recycleItems(m.items)
		}
		r.post.flushShards()
		for _, i := range idxs {
			r.ackBatch(i)
		}
	}
	r.finalizeLiveSafe()
	// Shard shutdown happens outside any recover scope: even if final
	// report building panics, the shard goroutines must not leak.
	r.post.shutdownShards()
	r.done <- r.finishSafe()
}

// recycleItems hands a fully applied item slice back to the workers.
// Cleared first: the headers reference condensed summary blocks that the
// shards are still consuming, and the free list must not pin them.
func (r *Runtime) recycleItems(items []postItem) {
	if cap(items) == 0 {
		return
	}
	clear(items)
	select {
	case r.itemsFree <- items[:0]:
	default:
	}
}

// ackBatch releases the journal's reference on batch idx (no-op without
// a journal or for a batch the budget refused).
func (r *Runtime) ackBatch(idx int) {
	if r.journal == nil {
		return
	}
	if buf := r.journal.ackBatch(idx); buf != nil {
		r.releaseBuf(buf)
	}
}

// applySafe contains a panic in one item's application. Without Recover,
// the item is lost and recorded, and the pipeline keeps draining (so
// Emit never blocks on a full queue behind a dead sequencer). With
// Recover, the injection probe runs in its own recover scope before the
// mutation: a fault at the stage boundary is absorbed and the item is
// applied afresh — nothing was mutated yet, so resuming is exact. A
// panic inside the mutation itself cannot be replayed (the ASMT may be
// partially updated, and re-applying would double-count), so it takes
// the degrade rung with an honest record.
func (r *Runtime) applySafe(item *postItem) {
	if r.cfg.Recover {
		if pan := firePostApplyGuard(); pan != nil {
			r.countPanic("postprocessor")
			r.recordRecovery(Recovery{Stage: "sequencer",
				Outcome: RecoveryReplayed, Reason: fmt.Sprintf("sequencer boundary panic: %v", pan)})
		}
		defer func() {
			if p := recover(); p != nil {
				r.recordPanic("postprocessor", p)
				r.recordRecovery(Recovery{Stage: "sequencer",
					Outcome: RecoveryDegraded, Reason: fmt.Sprintf("postprocessor panic: %v", p)})
				r.recordDowngrade(fmt.Sprintf("postprocessor panic: %v", p), "drop-item", r.accepted.Load())
			}
		}()
		r.post.apply(item)
		return
	}
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("postprocessor", p)
		}
	}()
	faultinject.Fire("rt.post.apply")
	r.post.apply(item)
}

// firePostApplyGuard fires the sequencer's injection point inside its
// own recover scope — before any mutation — and returns the contained
// panic value, if any.
func firePostApplyGuard() (pan interface{}) {
	defer func() { pan = recover() }()
	faultinject.Fire("rt.post.apply")
	return nil
}

// finalizeLiveSafe retires every still-live allocation at end of run.
func (r *Runtime) finalizeLiveSafe() {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("postprocessor", p)
		}
	}()
	r.post.finalizeLive()
}

// finishSafe merges the shard states and builds the PSECs, substituting
// empty (but non-nil) PSECs if report building itself faults, so Finish
// always returns len(ROIs) usable entries.
func (r *Runtime) finishSafe() (out []*core.PSEC) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic("postprocessor.finish", p)
			out = r.emptyPSECs()
		}
	}()
	faultinject.Fire("rt.post.finish")
	return r.post.finish()
}

func (r *Runtime) emptyPSECs() []*core.PSEC {
	out := make([]*core.PSEC, len(r.cfg.ROIs))
	for i, meta := range r.cfg.ROIs {
		out[i] = &core.PSEC{
			ROI:        core.ROIInfo{ID: meta.ID, Name: meta.Name, Kind: meta.Kind, Pos: meta.Pos},
			Callstacks: r.cs,
		}
	}
	return out
}

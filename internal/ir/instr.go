package ir

import (
	"fmt"

	"carmot/internal/lang"
)

// Instr is an IR instruction. Value-producing instructions also implement
// Value; their result is referenced directly (def-use, LLVM-style).
type Instr interface {
	instrBase() *InstrBase
	IsTerminator() bool
	// Operands returns the instruction's value operands (for printing and
	// generic traversal).
	Operands() []Value
	Mnemonic() string
}

// InstrBase carries bookkeeping common to all instructions, including the
// source mapping (position + accessed symbol) PSEC depends on.
type InstrBase struct {
	Blk  *Block
	ID   int // dense per-function instruction ID
	Temp int // virtual register number if value-producing
	Pos  lang.Pos

	// Track reflects the instrumentation planner's decision for this
	// instruction (see internal/instrument). The interpreter consults it.
	Track TrackMode
	// Site is the instruction's index in the plan's use-site table, or -1
	// when the instruction is not an instrumented access.
	Site int32
	// Serial marks instructions that the multicore simulator must account
	// as serialized (inside a recommended critical/ordered section); set
	// by internal/parexec before a cost-model run.
	Serial bool
	// Planner marks instructions inserted by the instrumentation planner
	// (ranged/fixed events and the preheader arithmetic feeding them);
	// they are stripped before re-planning.
	Planner bool
}

// TrackMode says how the runtime observes an instruction.
type TrackMode uint8

// Track modes.
const (
	// TrackOff: not instrumented (outside ROIs, or proven redundant).
	TrackOff TrackMode = iota
	// TrackOn: the access is reported to the runtime.
	TrackOn
	// TrackFixed: the access was pre-classified at compile time (§4.4
	// opt 3); the runtime receives one fixed-state event per ROI
	// execution rather than per-access events.
	TrackFixed
	// TrackAggregated: covered by a ranged event at loop entry (§4.4
	// opt 2); the per-access event is suppressed.
	TrackAggregated
)

var trackNames = [...]string{"off", "on", "fixed", "agg"}

// String returns the mode name.
func (m TrackMode) String() string { return trackNames[m] }

func (ib *InstrBase) instrBase() *InstrBase { return ib }

// Base returns the instruction's shared bookkeeping record.
func Base(in Instr) *InstrBase { return in.instrBase() }

// Name renders the instruction's result register.
func (ib *InstrBase) Name() string { return fmt.Sprintf("%%t%d", ib.Temp) }

// Position returns the source position.
func (ib *InstrBase) Position() lang.Pos { return ib.Pos }

// Alloca reserves Cells cells of stack storage and yields its address.
// Each dynamic execution of the enclosing function creates a fresh PSE.
type Alloca struct {
	InstrBase
	Sym   *lang.Symbol // source variable; nil for synthetic slots
	Cells int
	// Synthetic allocas are compiler temporaries (e.g. short-circuit
	// results); they are not source PSEs and are never instrumented.
	Synthetic bool
	// Promoted is set by selective mem2reg (§4.4 opt 4): the variable is
	// proven unobservable by any ROI, so its PSE bookkeeping is elided.
	Promoted bool
	// Index is the alloca's position in Func.Allocas.
	Index int
}

// IsTerminator reports false.
func (*Alloca) IsTerminator() bool { return false }

// Operands returns no operands.
func (*Alloca) Operands() []Value { return nil }

// Mnemonic returns "alloca".
func (*Alloca) Mnemonic() string { return "alloca" }

// Class returns ClassPtr.
func (*Alloca) Class() Class { return ClassPtr }

// Load reads one cell from Addr.
type Load struct {
	InstrBase
	Addr Value
	Cls  Class
	// Sym is the source variable when Addr is a direct alloca/global
	// reference (a variable PSE access, the accesses §2.3 says memory
	// tools ignore); nil for computed addresses.
	Sym *lang.Symbol
}

// IsTerminator reports false.
func (*Load) IsTerminator() bool { return false }

// Operands returns the address.
func (l *Load) Operands() []Value { return []Value{l.Addr} }

// Mnemonic returns "load".
func (*Load) Mnemonic() string { return "load" }

// Class returns the loaded class.
func (l *Load) Class() Class { return l.Cls }

// Store writes Val (one cell) to Addr.
type Store struct {
	InstrBase
	Addr Value
	Val  Value
	Sym  *lang.Symbol // as in Load
	// PtrStore marks stores of pointer values; the runtime records them
	// as reachability-graph escapes (§3.1).
	PtrStore bool
}

// IsTerminator reports false.
func (*Store) IsTerminator() bool { return false }

// Operands returns address and value.
func (s *Store) Operands() []Value { return []Value{s.Addr, s.Val} }

// Mnemonic returns "store".
func (*Store) Mnemonic() string { return "store" }

// BinOp enumerates arithmetic/comparison operations.
type BinOp int

// Binary operations. Comparisons yield int 0/1.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var binOpNames = [...]string{"add", "sub", "mul", "div", "rem", "eq", "ne", "lt", "le", "gt", "ge"}

// String returns the op mnemonic.
func (op BinOp) String() string { return binOpNames[op] }

// IsCommutative reports whether the operation commutes — the property the
// reduction-recommendation check needs (§3.2).
func (op BinOp) IsCommutative() bool { return op == OpAdd || op == OpMul }

// Bin computes L op R.
type Bin struct {
	InstrBase
	Op    BinOp
	Float bool // operate on floats
	L, R  Value
}

// IsTerminator reports false.
func (*Bin) IsTerminator() bool { return false }

// Operands returns both operands.
func (b *Bin) Operands() []Value { return []Value{b.L, b.R} }

// Mnemonic returns the op name.
func (b *Bin) Mnemonic() string {
	if b.Float {
		return "f" + b.Op.String()
	}
	return b.Op.String()
}

// Class returns the result class.
func (b *Bin) Class() Class {
	if b.Op >= OpEq {
		return ClassInt
	}
	if b.Float {
		return ClassFloat
	}
	return ClassInt
}

// Convert changes int<->float.
type Convert struct {
	InstrBase
	X       Value
	ToFloat bool
}

// IsTerminator reports false.
func (*Convert) IsTerminator() bool { return false }

// Operands returns the operand.
func (c *Convert) Operands() []Value { return []Value{c.X} }

// Mnemonic returns the conversion direction.
func (c *Convert) Mnemonic() string {
	if c.ToFloat {
		return "itof"
	}
	return "ftoi"
}

// Class returns the result class.
func (c *Convert) Class() Class {
	if c.ToFloat {
		return ClassFloat
	}
	return ClassInt
}

// GEP computes Base + Index*Scale + Offset (all in cells): array indexing,
// struct field access, and pointer arithmetic.
type GEP struct {
	InstrBase
	Base   Value
	Index  Value // nil when only Offset applies
	Scale  int64
	Offset int64
	// BaseSym is the source variable when Base directly names an
	// alloca/global (used by the aggregation optimization).
	BaseSym *lang.Symbol
}

// IsTerminator reports false.
func (*GEP) IsTerminator() bool { return false }

// Operands returns base (and index when present).
func (g *GEP) Operands() []Value {
	if g.Index == nil {
		return []Value{g.Base}
	}
	return []Value{g.Base, g.Index}
}

// Mnemonic returns "gep".
func (*GEP) Mnemonic() string { return "gep" }

// Class returns ClassPtr.
func (*GEP) Class() Class { return ClassPtr }

// Malloc allocates Count*ElemCells heap cells and yields the base address.
type Malloc struct {
	InstrBase
	Count     Value
	ElemCells int64
	// TypeName is the source element type (e.g. "struct strand_t"), kept
	// so heap PSEs report readably (the Figure 9 cycle report).
	TypeName string
	// Hint is the destination variable name when the allocation is
	// directly assigned (`cnt = malloc(n)` reports as "cnt").
	Hint string
}

// IsTerminator reports false.
func (*Malloc) IsTerminator() bool { return false }

// Operands returns the count.
func (m *Malloc) Operands() []Value { return []Value{m.Count} }

// Mnemonic returns "malloc".
func (*Malloc) Mnemonic() string { return "malloc" }

// Class returns ClassPtr.
func (*Malloc) Class() Class { return ClassPtr }

// Free releases a heap allocation.
type Free struct {
	InstrBase
	Ptr Value
}

// IsTerminator reports false.
func (*Free) IsTerminator() bool { return false }

// Operands returns the pointer.
func (f *Free) Operands() []Value { return []Value{f.Ptr} }

// Mnemonic returns "free".
func (*Free) Mnemonic() string { return "free" }

// Call invokes Callee with Args. Direct calls have a FuncRef callee.
type Call struct {
	InstrBase
	Callee Value
	Args   []Value
	Cls    Class
	// PinGated marks call sites that may reach precompiled code inside an
	// ROI; the Pin-analog hooks fire only for these (§4.4 opt 6).
	PinGated bool
}

// IsTerminator reports false.
func (*Call) IsTerminator() bool { return false }

// Operands returns callee and arguments.
func (c *Call) Operands() []Value { return append([]Value{c.Callee}, c.Args...) }

// Mnemonic returns "call".
func (*Call) Mnemonic() string { return "call" }

// Class returns the return class.
func (c *Call) Class() Class { return c.Cls }

// DirectTarget returns the statically known callee, or nil for indirect
// calls.
func (c *Call) DirectTarget() *FuncRef {
	if fr, ok := c.Callee.(*FuncRef); ok {
		return fr
	}
	return nil
}

// Ret returns from the function.
type Ret struct {
	InstrBase
	Val Value // nil for void
}

// IsTerminator reports true.
func (*Ret) IsTerminator() bool { return true }

// Operands returns the value when present.
func (r *Ret) Operands() []Value {
	if r.Val == nil {
		return nil
	}
	return []Value{r.Val}
}

// Mnemonic returns "ret".
func (*Ret) Mnemonic() string { return "ret" }

// Br jumps unconditionally.
type Br struct {
	InstrBase
	Target *Block
}

// IsTerminator reports true.
func (*Br) IsTerminator() bool { return true }

// Operands returns nothing.
func (*Br) Operands() []Value { return nil }

// Mnemonic returns "br".
func (*Br) Mnemonic() string { return "br" }

// CondBr branches on Cond != 0.
type CondBr struct {
	InstrBase
	Cond        Value
	True, False *Block
}

// IsTerminator reports true.
func (*CondBr) IsTerminator() bool { return true }

// Operands returns the condition.
func (c *CondBr) Operands() []Value { return []Value{c.Cond} }

// Mnemonic returns "condbr".
func (*CondBr) Mnemonic() string { return "condbr" }

// ROIBegin marks the start of a dynamic invocation of an ROI.
type ROIBegin struct {
	InstrBase
	ROI *ROI
}

// IsTerminator reports false.
func (*ROIBegin) IsTerminator() bool { return false }

// Operands returns nothing.
func (*ROIBegin) Operands() []Value { return nil }

// Mnemonic returns "roi.begin".
func (*ROIBegin) Mnemonic() string { return "roi.begin" }

// ROIEnd marks the end of a dynamic invocation of an ROI.
type ROIEnd struct {
	InstrBase
	ROI *ROI
}

// IsTerminator reports false.
func (*ROIEnd) IsTerminator() bool { return false }

// Operands returns nothing.
func (*ROIEnd) Operands() []Value { return nil }

// Mnemonic returns "roi.end".
func (*ROIEnd) Mnemonic() string { return "roi.end" }

// FixedClass is the fixed FSA setting of §4.4 opt 3: the compiler proved
// the classification of [Base, Base+Cells) for ROI at compile time, so one
// event per loop execution replaces per-access instrumentation. Sets holds
// a core.SetMask value (kept as uint8 to avoid an import cycle).
type FixedClass struct {
	InstrBase
	ROI   *ROI
	Base  Value
	Cells int64
	Sets  uint8
}

// IsTerminator reports false.
func (*FixedClass) IsTerminator() bool { return false }

// Operands returns the base address.
func (f *FixedClass) Operands() []Value { return []Value{f.Base} }

// Mnemonic returns "fixed.class".
func (*FixedClass) Mnemonic() string { return "fixed.class" }

// RangedEvent is the aggregated instrumentation of §4.4 opt 2: at each ROI
// invocation it reports a uniform access over [Base, Base+Count*Stride).
type RangedEvent struct {
	InstrBase
	ROI     *ROI
	Base    Value // address of the first element
	Count   Value // element count
	Stride  int64 // cells between elements
	IsWrite bool
}

// IsTerminator reports false.
func (*RangedEvent) IsTerminator() bool { return false }

// Operands returns base and count.
func (r *RangedEvent) Operands() []Value { return []Value{r.Base, r.Count} }

// Mnemonic returns "range.event".
func (*RangedEvent) Mnemonic() string { return "range.event" }

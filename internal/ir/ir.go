// Package ir defines CARMOT-Go's intermediate representation. It mirrors
// the shape of clang -O0 LLVM IR that the paper's compiler operates on:
// every source variable is an Alloca, every access an explicit Load or
// Store, and each instruction keeps a reversible mapping to the source
// (position and, for direct variable accesses, the source symbol). This
// mapping is what lets PSEC report results at the source level (§4.4).
package ir

import (
	"fmt"

	"carmot/internal/lang"
)

// Class is the value class of an IR value. The profiler needs to know when
// a store writes a pointer (reachability-graph edges, §3.1); everything
// else is bookkeeping for the interpreter.
type Class int

// Value classes.
const (
	ClassInt Class = iota
	ClassFloat
	ClassPtr
	ClassFn
	ClassVoid
)

var classNames = [...]string{"int", "float", "ptr", "fn", "void"}

// String returns the class name.
func (c Class) String() string { return classNames[c] }

// Value is an IR operand: a constant, a parameter, or the result of a
// value-producing instruction.
type Value interface {
	Class() Class
	Name() string
}

// Const is an integer or floating constant.
type Const struct {
	IsFloat bool
	Int     int64
	Float   float64
}

// ConstInt returns an integer constant value.
func ConstInt(v int64) *Const { return &Const{Int: v} }

// ConstFloat returns a floating constant value.
func ConstFloat(v float64) *Const { return &Const{IsFloat: true, Float: v} }

// Class returns the constant's class.
func (c *Const) Class() Class {
	if c.IsFloat {
		return ClassFloat
	}
	return ClassInt
}

// Name renders the constant.
func (c *Const) Name() string {
	if c.IsFloat {
		return fmt.Sprintf("%g", c.Float)
	}
	return fmt.Sprintf("%d", c.Int)
}

// FuncRef is a constant reference to a function or extern, used for
// function-pointer values and direct call targets.
type FuncRef struct {
	Func   *Func
	Extern *Extern
}

// Class returns ClassFn.
func (f *FuncRef) Class() Class { return ClassFn }

// Name renders the reference.
func (f *FuncRef) Name() string {
	if f.Func != nil {
		return "@" + f.Func.Name
	}
	return "@" + f.Extern.Name
}

// TargetName returns the referenced function's name.
func (f *FuncRef) TargetName() string {
	if f.Func != nil {
		return f.Func.Name
	}
	return f.Extern.Name
}

// Param is an incoming function argument value.
type Param struct {
	Index int
	Sym   *lang.Symbol
	Cls   Class
}

// Class returns the parameter's class.
func (p *Param) Class() Class { return p.Cls }

// Name renders the parameter.
func (p *Param) Name() string { return "%arg." + p.Sym.Name }

// GlobalAddr is the address of a global variable (a constant at run time).
type GlobalAddr struct{ Global *Global }

// Class returns ClassPtr.
func (g *GlobalAddr) Class() Class { return ClassPtr }

// Name renders the address.
func (g *GlobalAddr) Name() string { return "@" + g.Global.Sym.Name }

// Global is a file-scope variable: a Program State Element with static
// storage.
type Global struct {
	ID    int
	Sym   *lang.Symbol
	Cells int
	// Init is the constant scalar initializer (nil when zero-initialized).
	Init *Const
}

// Extern declares a precompiled native function — code without sources
// that the Pin-analog tracer must cover (§4.5).
type Extern struct {
	ID     int
	Name   string
	Ret    Class
	Params []*lang.Symbol
	// Accesses reports whether the native implementation reads or writes
	// program memory through pointer arguments; such calls need the Pin
	// tracer when they occur inside an ROI.
	AccessesMemory bool
}

// Program is a lowered translation unit.
type Program struct {
	Source  *lang.File
	Funcs   []*Func
	Globals []*Global
	Externs []*Extern
	ROIs    []*ROI
	Regions []*ParRegion

	funcsByName map[string]*Func
	// TotalCells is the number of cells of static (global) storage.
	TotalCells int
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	if p.funcsByName == nil {
		p.funcsByName = make(map[string]*Func, len(p.Funcs))
		for _, f := range p.Funcs {
			p.funcsByName[f.Name] = f
		}
	}
	return p.funcsByName[name]
}

// ROIKind says which abstraction the ROI was declared for.
type ROIKind int

// ROI kinds.
const (
	ROICarmot  ROIKind = iota // #pragma carmot roi
	ROIOmpFor                 // profiling an existing omp parallel for body
	ROIOmpTask                // profiling an existing omp task body
	ROIStats                  // profiling a STATS state-dependence region
)

var roiKindNames = [...]string{"carmot", "omp-for", "omp-task", "stats"}

// String returns the ROI kind name.
func (k ROIKind) String() string { return roiKindNames[k] }

// ROI is a static region of interest: a single-entry single-exit source
// region whose PSEC will be built. Dynamic invocations are delimited by
// the ROIBegin/ROIEnd instructions lowered at its boundaries.
type ROI struct {
	ID     int
	Name   string
	Kind   ROIKind
	Func   *Func
	Pragma *lang.Pragma // the originating pragma (may be nil for ROIStats helpers)
	Pos    lang.Pos

	// Loop is set when the ROI wraps exactly the body of a for loop; the
	// aggregation and fixed-FSA-state optimizations (§4.4, opts 2–3)
	// require this along with the loop-governing induction variable.
	Loop *LoopInfo
}

// LoopInfo describes the source loop whose body an ROI wraps.
type LoopInfo struct {
	IndVar *lang.Symbol // loop-governing induction variable
	// Step is the constant induction step (0 when unknown).
	Step int64
	For  *lang.ForStmt
}

// Func is a lowered function.
type Func struct {
	Name   string
	Source *lang.FuncDecl
	Ret    Class
	Params []*Param
	Blocks []*Block
	// Allocas lists all stack allocations (hoisted to entry, clang-style).
	Allocas []*Alloca

	nextTemp  int
	nextInstr int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NumInstrs returns the number of instruction IDs allocated in the
// function (dense, usable as bitset width).
func (f *Func) NumInstrs() int { return f.nextInstr }

// NumTemps returns the number of virtual registers in the function.
func (f *Func) NumTemps() int { return f.nextTemp }

// NewBlock appends a new basic block.
func (f *Func) NewBlock(label string) *Block {
	b := &Block{Func: f, Label: fmt.Sprintf("%s%d", label, len(f.Blocks))}
	f.Blocks = append(f.Blocks, b)
	return b
}

// InsertAlloca places a at position pos in the entry block (allocas are
// kept together at the head of the entry block, clang -O0 style, so they
// execute before any use even when created mid-lowering).
func (f *Func) InsertAlloca(a *Alloca, pos int) {
	entry := f.Blocks[0]
	a.Blk = entry
	a.ID = f.nextInstr
	f.nextInstr++
	a.Temp = f.nextTemp
	f.nextTemp++
	entry.Instrs = append(entry.Instrs, nil)
	copy(entry.Instrs[pos+1:], entry.Instrs[pos:])
	entry.Instrs[pos] = a
}

// Block is a basic block: straight-line instructions ending in a
// terminator (Br, CondBr, or Ret).
type Block struct {
	Func   *Func
	Label  string
	Instrs []Instr

	// Preds/Succs are filled by ComputeCFG.
	Preds []*Block
	Succs []*Block
	// Index is the block's position in Func.Blocks (set by ComputeCFG).
	Index int
}

// Terminator returns the block's final instruction, or nil when the block
// is still open.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// InsertAt places an instruction at position pos, assigning its dense ID.
func (b *Block) InsertAt(in Instr, pos int) {
	base := in.instrBase()
	base.Blk = b
	base.ID = b.Func.nextInstr
	b.Func.nextInstr++
	if v, ok := in.(Value); ok && v.Class() != ClassVoid {
		base.Temp = b.Func.nextTemp
		b.Func.nextTemp++
	}
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = in
}

// RemoveAt deletes the instruction at position pos.
func (b *Block) RemoveAt(pos int) {
	copy(b.Instrs[pos:], b.Instrs[pos+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
}

// Append adds an instruction, assigning its dense ID.
func (b *Block) Append(in Instr) {
	base := in.instrBase()
	base.Blk = b
	base.ID = b.Func.nextInstr
	b.Func.nextInstr++
	if v, ok := in.(Value); ok && v.Class() != ClassVoid {
		base.Temp = b.Func.nextTemp
		b.Func.nextTemp++
	}
	b.Instrs = append(b.Instrs, in)
}

package core

import (
	"encoding/json"
	"fmt"
)

// This file gives PSECs a stable JSON form so profiles can be stored,
// diffed, and merged across runs (§4.2 envisions combining the PSECs of
// multiple program inputs; serializing them is the natural workflow).

type jsonPSEC struct {
	ROI      ROIInfo       `json:"roi"`
	Stats    Stats         `json:"stats"`
	Elements []jsonElement `json:"elements"`
	Edges    []jsonEdge    `json:"reachability,omitempty"`
}

type jsonElement struct {
	Kind        string        `json:"kind"`
	Name        string        `json:"name"`
	AllocPos    string        `json:"allocPos"`
	AllocStack  []Frame       `json:"allocStack,omitempty"`
	Cells       int           `json:"cells"`
	Sets        []string      `json:"sets"`
	Ranges      []jsonRange   `json:"ranges,omitempty"`
	UseSites    []jsonUseSite `json:"useSites,omitempty"`
	FirstAccess uint64        `json:"firstAccess"`
	LastAccess  uint64        `json:"lastAccess"`
	Reduction   string        `json:"reduction,omitempty"`
}

type jsonRange struct {
	Lo   int      `json:"lo"`
	Hi   int      `json:"hi"`
	Sets []string `json:"sets"`
}

type jsonUseSite struct {
	Pos        string    `json:"pos"`
	Write      bool      `json:"write"`
	Callstacks [][]Frame `json:"callstacks,omitempty"`
}

type jsonEdge struct {
	From      string `json:"from"`
	To        string `json:"to"`
	FirstTime uint64 `json:"firstTime"`
	LastTime  uint64 `json:"lastTime"`
}

var setNames = []struct {
	bit  SetMask
	name string
}{
	{SetInput, "input"},
	{SetOutput, "output"},
	{SetCloneable, "cloneable"},
	{SetTransfer, "transfer"},
}

func setsToJSON(m SetMask) []string {
	var out []string
	for _, s := range setNames {
		if m.Has(s.bit) {
			out = append(out, s.name)
		}
	}
	return out
}

func setsFromJSON(names []string) (SetMask, error) {
	var m SetMask
	for _, n := range names {
		found := false
		for _, s := range setNames {
			if s.name == n {
				m |= s.bit
				found = true
			}
		}
		if !found {
			return 0, fmt.Errorf("core: unknown set %q", n)
		}
	}
	return m, nil
}

var pseKindJSON = map[PSEKind]string{
	PSEVariable: "variable", PSEGlobal: "global",
	PSEStackMem: "stack-memory", PSEHeap: "heap",
}

func kindFromJSON(s string) (PSEKind, error) {
	for k, n := range pseKindJSON {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown PSE kind %q", s)
}

// MarshalJSON encodes the PSEC with call stacks expanded inline (the
// interning table is an implementation detail).
func (p *PSEC) MarshalJSON() ([]byte, error) {
	frames := func(id CallstackID) []Frame {
		if p.Callstacks == nil {
			return nil
		}
		return p.Callstacks.Frames(id)
	}
	out := jsonPSEC{ROI: p.ROI, Stats: p.Stats}
	for _, e := range p.Elements {
		je := jsonElement{
			Kind:        pseKindJSON[e.PSE.Kind],
			Name:        e.PSE.Name,
			AllocPos:    e.PSE.AllocPos,
			AllocStack:  frames(e.PSE.AllocStack),
			Cells:       e.PSE.Cells,
			Sets:        setsToJSON(e.Sets),
			FirstAccess: e.FirstAccess,
			LastAccess:  e.LastAccess,
		}
		if e.Reducible {
			je.Reduction = e.Reduction
		}
		for _, r := range e.Ranges {
			je.Ranges = append(je.Ranges, jsonRange{Lo: r.Lo, Hi: r.Hi, Sets: setsToJSON(r.Sets)})
		}
		for _, u := range e.UseSites {
			ju := jsonUseSite{Pos: u.Pos, Write: u.IsWrite}
			for _, cs := range u.Callstacks {
				ju.Callstacks = append(ju.Callstacks, frames(cs))
			}
			je.UseSites = append(je.UseSites, ju)
		}
		out.Elements = append(out.Elements, je)
	}
	if p.Reach != nil {
		for _, e := range p.Reach.Edges() {
			out.Edges = append(out.Edges, jsonEdge{
				From: e.From.Key(), To: e.To.Key(),
				FirstTime: e.FirstTime, LastTime: e.LastTime,
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a PSEC previously produced by MarshalJSON. Call
// stacks are re-interned into a fresh table; reachability edges are
// restored with their node identity keys' name/pos portions.
func (p *PSEC) UnmarshalJSON(data []byte) error {
	var in jsonPSEC
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	p.ROI = in.ROI
	p.Stats = in.Stats
	p.Callstacks = NewCallstackTable()
	p.Reach = NewReachGraph()
	p.Elements = nil
	descByKey := map[string]PSEDesc{}
	for _, je := range in.Elements {
		kind, err := kindFromJSON(je.Kind)
		if err != nil {
			return err
		}
		sets, err := setsFromJSON(je.Sets)
		if err != nil {
			return err
		}
		e := &Element{
			PSE: PSEDesc{
				Kind: kind, Name: je.Name, AllocPos: je.AllocPos,
				AllocStack: p.Callstacks.Intern(je.AllocStack), Cells: je.Cells,
			},
			Sets:        sets,
			FirstAccess: je.FirstAccess,
			LastAccess:  je.LastAccess,
			Reducible:   je.Reduction != "",
			Reduction:   je.Reduction,
		}
		for _, r := range je.Ranges {
			rs, err := setsFromJSON(r.Sets)
			if err != nil {
				return err
			}
			e.Ranges = append(e.Ranges, CellRange{Lo: r.Lo, Hi: r.Hi, Sets: rs})
		}
		for _, u := range je.UseSites {
			us := UseSite{Pos: u.Pos, IsWrite: u.Write}
			for _, frames := range u.Callstacks {
				us.Callstacks = append(us.Callstacks, p.Callstacks.Intern(frames))
			}
			e.UseSites = append(e.UseSites, us)
		}
		p.Elements = append(p.Elements, e)
		descByKey[e.PSE.Key()] = e.PSE
	}
	for _, edge := range in.Edges {
		from, okF := descByKey[edge.From]
		to, okT := descByKey[edge.To]
		if !okF || !okT {
			// Edges between PSEs that did not classify into the element
			// list (possible for nodes touched but never accessed) are
			// reconstructed from the key's raw form.
			if !okF {
				from = PSEDesc{Name: edge.From}
			}
			if !okT {
				to = PSEDesc{Name: edge.To}
			}
		}
		e := p.Reach.AddEdge(from, to, edge.FirstTime)
		e.LastTime = edge.LastTime
	}
	return nil
}

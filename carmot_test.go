package carmot

import (
	"testing"

	"carmot/internal/core"
)

// figure1 is the motivating example of the paper (Figure 1): inside the
// loop, a and b are only read, x and i are written-before-read / loop
// bookkeeping, and y carries a RAW dependence across iterations through a
// non-commutative division.
const figure1 = `
int work(int a, int b) {
	int i;
	int x;
	int y;
	y = 42;
	for (i = 0; i < 10; i++) {
		#pragma carmot roi figure1
		{
			x = i / (a + b);
			y = y / (a * x + b);
		}
	}
	return y;
}

int main() {
	return work(2, 3);
}
`

func compileFigure1(t *testing.T, naive bool) *ProfileResult {
	t.Helper()
	prog, err := Compile("figure1.mc", figure1, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(prog.ROIs()) != 1 {
		t.Fatalf("want 1 ROI, got %d", len(prog.ROIs()))
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, Naive: naive})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return res
}

func checkFigure1Sets(t *testing.T, psec *core.PSEC, mode string) {
	t.Helper()
	want := map[string]core.SetMask{
		"a": core.SetInput,
		"b": core.SetInput,
		"i": core.SetInput,
		"x": core.SetCloneable | core.SetOutput,
		"y": core.SetTransfer | core.SetInput | core.SetOutput,
	}
	for name, wantSets := range want {
		e := psec.ElementByName(name)
		if e == nil {
			t.Errorf("%s: PSE %q missing from PSEC", mode, name)
			continue
		}
		if e.Sets != wantSets {
			t.Errorf("%s: PSE %q classified %s, want %s", mode, name, e.Sets, wantSets)
		}
	}
}

func TestFigure1CarmotClassification(t *testing.T) {
	res := compileFigure1(t, false)
	checkFigure1Sets(t, res.PSECs[0], "carmot")
	if res.PSECs[0].Stats.Invocations != 10 {
		t.Errorf("want 10 ROI invocations, got %d", res.PSECs[0].Stats.Invocations)
	}
}

func TestFigure1NaiveClassification(t *testing.T) {
	res := compileFigure1(t, true)
	checkFigure1Sets(t, res.PSECs[0], "naive")
}

func TestFigure1NaiveAndCarmotAgree(t *testing.T) {
	carmotRes := compileFigure1(t, false)
	naiveRes := compileFigure1(t, true)
	for _, ce := range carmotRes.PSECs[0].Elements {
		ne := naiveRes.PSECs[0].ElementByName(ce.PSE.Name)
		if ne == nil {
			t.Errorf("naive PSEC lacks element %q", ce.PSE.Name)
			continue
		}
		if ne.Sets != ce.Sets {
			t.Errorf("element %q: carmot=%s naive=%s", ce.PSE.Name, ce.Sets, ne.Sets)
		}
	}
}

func TestFigure1ProgramResult(t *testing.T) {
	prog, err := Compile("figure1.mc", figure1, CompileOptions{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := prog.Execute(nil, 0)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// y: 42 -> /3 -> 14 -> /3 -> 4 -> /3 -> 1 -> /3 -> 0, then stays 0
	// (denominator becomes 5 when x reaches 1).
	if res.Exit != 0 {
		t.Errorf("exit = %d, want 0", res.Exit)
	}
}

func TestFigure1CarmotEmitsFewerEvents(t *testing.T) {
	carmotRes := compileFigure1(t, false)
	naiveRes := compileFigure1(t, true)
	if c, n := carmotRes.Plan.Stats.Instrumented, naiveRes.Plan.Stats.Instrumented; c >= n {
		t.Errorf("carmot should instrument fewer sites than naive: %d >= %d", c, n)
	}
	if c, n := carmotRes.PSECs[0].Stats.TotalAccesses, naiveRes.PSECs[0].Stats.TotalAccesses; c >= n {
		t.Errorf("carmot should observe fewer accesses than naive: %d >= %d", c, n)
	}
}

#!/bin/sh
# verify.sh — the checks a change must pass before it lands:
# vet, full build, full test suite, and a race-detector pass over the
# concurrent packages (the profiling pipeline and the simulator).
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race -count=1 ./internal/rt/ ./internal/parexec/
go test -race -count=1 -run 'Infinite|Panic|Budget|Deadline|Cancel' .

echo "== go test -race (sharded postprocessing) =="
go test -race -count=1 -run 'Shard|CellCapLadderUnderShards' ./internal/rt/

echo "== go test -race (recovery + seeded chaos smoke) =="
# Deterministic: schedules derive from the fixed base seed, and any
# failure prints the exact seed to replay. The chaos package includes
# the daemon schedules (concurrent faulted clients against a live
# serve.Server, checked for retry-healed byte-identical PSECs).
go test -race -count=1 -run 'Recovered|Recovery|Respawn|Eviction|Drained' ./internal/rt/
go test -race -count=1 ./internal/chaos/

echo "== go test -race (daemon smoke) =="
# The serving layer under contention: ≥1000 concurrent requests plus an
# over-budget tenant (sheds must be structured 429s), fault-injected
# sessions healed by retry-from-journal, and a drain that leaves no
# goroutine behind.
go test -race -count=1 -run 'ServeLoad1000|ServeRetry|ServeDrain|ServeAdmission|ServeDegrade|ServeHealthz' ./internal/serve/

echo "== go test -race (router + fleet failover smoke) =="
# The fleet front door: consistent-hash routing, breaker transitions,
# drain awareness, hedging, mid-stream death honesty — then the seeded
# fleet chaos schedules (3 live replicas killed/hung/drained/restarted
# under concurrent load, byte-identical PSECs, zero goroutine leaks).
go test -race -count=1 ./internal/router/
go test -race -count=1 -run 'Fleet' ./internal/chaos/

echo "== go test -race (result cache + streaming smoke) =="
# The PSEC result cache (byte-identical replays, singleflight, the
# never-cache-degraded rule, in-flight compile pinning) and the NDJSON
# streaming path, including the client-disconnect goroutine-leak check.
go test -race -count=1 -run 'ServeResultCache|ResultCacheEviction|ServeCacheInflight|ServeStream|ResultKey|CacheKeyCovers' ./internal/serve/

echo "== go test -race (engine differential) =="
# Tree-walker vs bytecode engine, coalescing off/on: byte-identical
# PSECs, identical run summaries and diagnostics, on the benchmark
# corpus and on faulting/budget-truncated programs.
go test -race -count=1 -run 'EngineDifferential|EngineFuzzSeed' .

echo "== differential fuzz (engines, short) =="
go test -run NONE -fuzz FuzzEngineDifferential -fuzztime 10s .

echo "== benchmark smoke =="
go test -run NONE -bench 'BenchmarkProfiledRun' -benchtime 1x .
go test -run NONE -bench 'BenchmarkPipeline|BenchmarkCondense' -benchtime 1x ./internal/rt/
go run ./cmd/carmot-bench -exp serve -serve-clients 4 -serve-requests 24
go run ./cmd/carmot-bench -exp fleet -fleet-clients 4 -fleet-requests 24

echo "== perf smoke (engine speedup floor) =="
# The interp bench asserts the producer's perf contract: coalescing never
# regresses its engine >5%, and the best bytecode configuration stays
# ≥2.0x over the tree-walker (paired per-iteration ratios, so machine-
# wide drift cancels). One retry absorbs a transient event — a stolen
# CPU, a GC storm in a neighbor — on shared hardware; two consecutive
# failures mean the producer actually regressed.
go run ./cmd/carmot-bench -exp interp -interp-iters 10 -interp-assert ||
	{
		echo "perf smoke failed once; retrying to rule out machine noise"
		go run ./cmd/carmot-bench -exp interp -interp-iters 10 -interp-assert
	}

echo "verify: OK"

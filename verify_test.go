package carmot

import (
	"strings"
	"testing"

	"carmot/internal/bench"
)

// TestVerifyAllBenchmarkPragmas reproduces the §5.1 verification result:
// every hand-written `#pragma omp parallel for` in the benchmark suite is
// confirmed correct against its PSEC-derived recommendation.
func TestVerifyAllBenchmarkPragmas(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Compile(b.Name+".mc", b.Source(b.DevScale/4+8), CompileOptions{ProfileOmpRegions: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP, MaxSteps: 500_000_000})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			for roi, v := range prog.VerifyOmpPragmas(res) {
				if !v.OK() {
					t.Errorf("pragma at %s fails verification:\n%s", roi.Pos, v.Report())
				}
			}
		})
	}
}

// TestVerifyCatchesMissingReduction: dropping a required reduction clause
// is a data race the verifier must flag.
func TestVerifyCatchesMissingReduction(t *testing.T) {
	const src = `
float* a;
int N = 32;
float total = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	#pragma omp parallel for
	for (int i = 0; i < N; i++) {
		total = total + a[i];
	}
	return total;
}`
	v := verifyOne(t, src)
	if v.OK() {
		t.Fatalf("missing reduction must fail verification:\n%s", v.Report())
	}
	if !strings.Contains(v.Report(), "reduction") || !strings.Contains(v.Report(), "total") {
		t.Errorf("report should call out the reduction on total:\n%s", v.Report())
	}
}

// TestVerifyCatchesSharedScratch: a written-before-read scratch variable
// declared outside the loop and not privatized is a race.
func TestVerifyCatchesSharedScratch(t *testing.T) {
	const src = `
float* a;
int N = 32;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma omp parallel for
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		a[i] = t;
	}
	return a[3];
}`
	v := verifyOne(t, src)
	if v.OK() {
		t.Fatalf("shared scratch must fail verification:\n%s", v.Report())
	}
	if !strings.Contains(v.Report(), "t") || !strings.Contains(v.Report(), "private") {
		t.Errorf("report should privatize t:\n%s", v.Report())
	}
}

// TestVerifyCatchesUnprotectedDependence: a non-reducible cross-iteration
// dependence without critical/ordered is flagged.
func TestVerifyCatchesUnprotectedDependence(t *testing.T) {
	const src = `
float* a;
int N = 32;
float run = 1.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j + 1.0; }
}
int main() {
	init();
	#pragma omp parallel for
	for (int i = 0; i < N; i++) {
		run = run / (a[i] + 1.0);
	}
	return run * 1000000.0;
}`
	v := verifyOne(t, src)
	if v.OK() {
		t.Fatalf("unprotected RAW must fail verification:\n%s", v.Report())
	}
	if !strings.Contains(v.Report(), "critical") {
		t.Errorf("report should demand a critical/ordered section:\n%s", v.Report())
	}
}

// TestVerifyAcceptsProtectedDependence: the same dependence under an
// ordered section passes (with at most warnings).
func TestVerifyAcceptsProtectedDependence(t *testing.T) {
	const src = `
float* a;
int N = 32;
float run = 1.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j + 1.0; }
}
int main() {
	init();
	#pragma omp parallel for ordered
	for (int i = 0; i < N; i++) {
		#pragma omp ordered
		{
			run = run / (a[i] + 1.0);
		}
	}
	return run * 1000000.0;
}`
	v := verifyOne(t, src)
	if !v.OK() {
		t.Errorf("ordered-protected dependence should verify:\n%s", v.Report())
	}
}

// TestVerifyWarnsUnnecessaryReduction: a declared reduction with no
// actual dependence is wasteful but not wrong.
func TestVerifyWarnsUnnecessaryReduction(t *testing.T) {
	const src = `
float* a;
float* out;
int N = 32;
float ghost = 0.0;
void init() {
	a = malloc(N);
	out = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	#pragma omp parallel for reduction(+: ghost)
	for (int i = 0; i < N; i++) {
		out[i] = a[i] * 2.0;
	}
	return out[3];
}`
	v := verifyOne(t, src)
	if !v.OK() {
		t.Fatalf("unused reduction is a warning, not an error:\n%s", v.Report())
	}
	if !strings.Contains(v.Report(), "ghost") {
		t.Errorf("report should mention the spurious reduction:\n%s", v.Report())
	}
}

func verifyOne(t *testing.T, src string) *VerifyResult {
	t.Helper()
	prog, err := Compile("v.mc", src, CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Profile(ProfileOptions{UseCase: UseOpenMP})
	if err != nil {
		t.Fatal(err)
	}
	vs := prog.VerifyOmpPragmas(res)
	if len(vs) != 1 {
		t.Fatalf("want 1 verified pragma, got %d", len(vs))
	}
	for _, v := range vs {
		return v
	}
	return nil
}

// Interpreter microbenchmark (the BENCH_interp.json experiment): profiles
// one full benchmark program under every engine x coalescing combination
// and reports end-to-end throughput. The bytecode engine plus the
// producer-side combining buffer is the shipping default; the tree-walker
// with coalescing off is the differential oracle and the speedup
// baseline. Every timed run's PSECs are checked byte-identical against
// the oracle's, so the experiment doubles as an engine-equivalence test.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/interp"
)

// InterpBenchRow is one measured engine configuration.
type InterpBenchRow struct {
	Engine       string  `json:"engine"`
	Coalesce     bool    `json:"coalesce"`
	Iterations   int     `json:"iterations"`
	InstrsPerOp  int64   `json:"instrs_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerInstr   float64 `json:"ns_per_instr"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	// Speedup is this row's throughput relative to the tree-walker
	// without coalescing (the pre-bytecode behavior).
	Speedup float64 `json:"speedup_vs_tree"`
}

// InterpBenchReport is the full machine-readable experiment output.
type InterpBenchReport struct {
	Workload   string           `json:"workload"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Rows       []InterpBenchRow `json:"rows"`
}

type interpBenchCfg struct {
	name     string
	engine   interp.Engine
	coalesce bool
}

var interpBenchCfgs = []interpBenchCfg{
	{"tree", carmot.EngineTree, false},
	{"tree", carmot.EngineTree, true},
	{"bytecode", carmot.EngineBytecode, false},
	{"bytecode", carmot.EngineBytecode, true},
}

// InterpBench profiles the cg benchmark (scale 500, the
// BenchmarkProfiledRun workload) under all four engine x coalescing
// combinations, iters timed runs each after one warm-up, verifying every
// run's PSECs byte-identical against the tree-walking oracle.
func InterpBench(iters int) (InterpBenchReport, error) {
	if iters <= 0 {
		iters = 20
	}
	bm, err := bench.ByName("cg")
	if err != nil {
		return InterpBenchReport{}, err
	}
	src := bm.Source(500)
	rep := InterpBenchReport{
		Workload:   "cg scale 500, UseOpenMP, ProfileOmpRegions (the BenchmarkProfiledRun workload)",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	oracle, _, err := interpBenchRun(src, interpBenchCfgs[0])
	if err != nil {
		return rep, err
	}
	var baseline float64
	for _, cfg := range interpBenchCfgs {
		// Warm-up doubles as the equivalence check for this configuration.
		psecs, _, err := interpBenchRun(src, cfg)
		if err != nil {
			return rep, err
		}
		if !bytes.Equal(psecs, oracle) {
			return rep, fmt.Errorf("%s coalesce=%v: PSECs differ from the tree-walking oracle", cfg.name, cfg.coalesce)
		}
		start := time.Now()
		var instrs int64
		for i := 0; i < iters; i++ {
			_, steps, err := interpBenchRun(src, cfg)
			if err != nil {
				return rep, err
			}
			instrs = steps
		}
		elapsed := time.Since(start)
		nsOp := float64(elapsed.Nanoseconds()) / float64(iters)
		row := InterpBenchRow{
			Engine:       cfg.name,
			Coalesce:     cfg.coalesce,
			Iterations:   iters,
			InstrsPerOp:  instrs,
			NsPerOp:      nsOp,
			NsPerInstr:   nsOp / float64(instrs),
			InstrsPerSec: float64(instrs) / (nsOp / 1e9),
		}
		if baseline == 0 {
			baseline = nsOp
		}
		row.Speedup = baseline / nsOp
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// interpBenchRun compiles and profiles the source once under the given
// configuration, returning the marshalled PSECs and the step count.
func interpBenchRun(src string, cfg interpBenchCfg) ([]byte, int64, error) {
	prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		return nil, 0, err
	}
	res, err := prog.Profile(carmot.ProfileOptions{
		UseCase: carmot.UseOpenMP, Engine: cfg.engine, NoCoalesce: !cfg.coalesce,
	})
	if err != nil {
		return nil, 0, err
	}
	psecs, err := carmot.MarshalPSECs(res.PSECs)
	if err != nil {
		return nil, 0, err
	}
	return psecs, res.Run.Steps, nil
}

// RenderInterpBench formats the report as a text table.
func RenderInterpBench(rep InterpBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Interpreter throughput (%s)\n", rep.Workload)
	fmt.Fprintf(&sb, "%-20s %12s %12s %14s %10s\n",
		"configuration", "ms/op", "ns/instr", "instrs/sec", "speedup")
	for _, r := range rep.Rows {
		name := r.Engine
		if r.Coalesce {
			name += "+coalesce"
		}
		fmt.Fprintf(&sb, "%-20s %12.2f %12.2f %14.0f %9.2fx\n",
			name, r.NsPerOp/1e6, r.NsPerInstr, r.InstrsPerSec, r.Speedup)
	}
	return sb.String()
}

// MarshalInterpBench encodes the report as indented JSON
// (BENCH_interp.json).
func MarshalInterpBench(rep InterpBenchReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

package analysis

import "carmot/internal/ir"

// MustAccess implements the intra-procedural forward data-flow analysis of
// §4.4 optimization 1. For every point inside an ROI it computes the set
// of PSEs that must already have been accessed (and the subset that must
// already have been written) since the ROI invocation began, along every
// path from the ROI entry. An access whose PSE is already in the
// must-accessed set cannot change the Figure 3 FSA state — except a write
// upon a read-only history (I → IO), which is why reads and writes are
// tracked separately:
//
//   - a load is redundant if its PSE was already accessed;
//   - a store is redundant if its PSE was already written.
//
// PSEs are identified by location keys: a direct variable (its alloca or
// global) or a specific computed address (a GEP result — the same virtual
// register always holds the same address within one execution). GEP-based
// keys are invalidated at calls and frees, which may recycle memory.
type MustAccess struct {
	Region *ROIRegion
	// Redundant maps each in-ROI load/store to whether its
	// instrumentation can be removed.
	Redundant map[ir.Instr]bool
}

type mustState struct {
	accessed bitset
	written  bitset
}

// ComputeMustAccess runs the analysis for one ROI region.
func ComputeMustAccess(region *ROIRegion) *MustAccess {
	ma := &MustAccess{Region: region, Redundant: map[ir.Instr]bool{}}

	// Assign dense IDs to location keys and find GEP-derived keys.
	keyID := map[interface{}]int{}
	var gepKeys []int
	keyOf := func(addr ir.Value) int {
		var norm interface{}
		isGEP := false
		switch x := addr.(type) {
		case *ir.Alloca:
			norm = x
		case *ir.GlobalAddr:
			norm = x.Global
		case *ir.GEP:
			norm = x
			isGEP = true
		default:
			return -1
		}
		if id, ok := keyID[norm]; ok {
			return id
		}
		id := len(keyID)
		keyID[norm] = id
		if isGEP {
			gepKeys = append(gepKeys, id)
		}
		return id
	}
	region.Instructions(func(in ir.Instr) bool {
		switch x := in.(type) {
		case *ir.Load:
			keyOf(x.Addr)
		case *ir.Store:
			keyOf(x.Addr)
		}
		return true
	})
	n := len(keyID)
	if n == 0 {
		return ma
	}

	// Order the region blocks; identify the entry portion.
	type portion struct {
		blk    *ir.Block
		lo, hi int
	}
	var portions []portion
	indexOf := map[*ir.Block]int{}
	for _, b := range region.ROI.Func.Blocks {
		if rng, ok := region.Blocks[b]; ok {
			indexOf[b] = len(portions)
			portions = append(portions, portion{b, rng[0], rng[1]})
		}
	}

	full := newBitset(n)
	full.setAll(n)

	in := make([]mustState, len(portions))
	out := make([]mustState, len(portions))
	for i := range portions {
		in[i] = mustState{full.clone(), full.clone()}
		out[i] = mustState{full.clone(), full.clone()}
	}
	entryIdx := indexOf[region.Begin.Blk]
	in[entryIdx] = mustState{newBitset(n), newBitset(n)}

	transfer := func(p portion, st mustState) mustState {
		acc := st.accessed.clone()
		wr := st.written.clone()
		for i := p.lo; i < p.hi; i++ {
			switch x := p.blk.Instrs[i].(type) {
			case *ir.Load:
				if k := keyOf(x.Addr); k >= 0 {
					acc.set(k)
				}
			case *ir.Store:
				if k := keyOf(x.Addr); k >= 0 {
					acc.set(k)
					wr.set(k)
				}
			case *ir.Call, *ir.Free:
				for _, k := range gepKeys {
					acc.clear(k)
					wr.clear(k)
				}
			}
		}
		return mustState{acc, wr}
	}

	changed := true
	for changed {
		changed = false
		for i, p := range portions {
			if i != entryIdx {
				st := mustState{full.clone(), full.clone()}
				hasPred := false
				for _, pred := range p.blk.Preds {
					pi, ok := indexOf[pred]
					if !ok {
						continue
					}
					// Only predecessors whose in-ROI portion flows through
					// their terminator stay inside the ROI.
					if portions[pi].hi != len(pred.Instrs) {
						continue
					}
					hasPred = true
					st.accessed.intersect(out[pi].accessed)
					st.written.intersect(out[pi].written)
				}
				if !hasPred {
					st = mustState{newBitset(n), newBitset(n)}
				}
				if !st.accessed.equal(in[i].accessed) || !st.written.equal(in[i].written) {
					in[i] = st
					changed = true
				}
			}
			no := transfer(p, in[i])
			if !no.accessed.equal(out[i].accessed) || !no.written.equal(out[i].written) {
				out[i] = no
				changed = true
			}
		}
	}

	// Final pass: decide redundancy per instruction.
	for i, p := range portions {
		st := mustState{in[i].accessed.clone(), in[i].written.clone()}
		for idx := p.lo; idx < p.hi; idx++ {
			switch x := p.blk.Instrs[idx].(type) {
			case *ir.Load:
				if k := keyOf(x.Addr); k >= 0 {
					if st.accessed.has(k) {
						ma.Redundant[x] = true
					}
					st.accessed.set(k)
				}
			case *ir.Store:
				if k := keyOf(x.Addr); k >= 0 {
					if st.written.has(k) {
						ma.Redundant[x] = true
					}
					st.accessed.set(k)
					st.written.set(k)
				}
			case *ir.Call, *ir.Free:
				for _, k := range gepKeys {
					st.accessed.clear(k)
					st.written.clear(k)
				}
			}
		}
	}
	return ma
}

// bitset is a simple fixed-width bitset.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

func (b bitset) setAll(n int) {
	for i := 0; i < n; i++ {
		b.set(i)
	}
}

func (b bitset) intersect(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

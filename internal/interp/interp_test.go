package interp_test

import (
	"strings"
	"testing"

	"carmot/internal/instrument"
	"carmot/internal/interp"
	"carmot/internal/lang"
	"carmot/internal/lower"
)

// run compiles and executes src uninstrumented, returning the result.
func run(t *testing.T, src string) *interp.Result {
	t.Helper()
	res, err := tryRun(src)
	if err != nil {
		t.Fatalf("run failed: %v\nsource:\n%s", err, src)
	}
	return res
}

func tryRun(src string) (*interp.Result, error) {
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		return nil, err
	}
	prog, err := lower.Lower(f, lower.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := instrument.Apply(prog, instrument.Options{}); err != nil {
		return nil, err
	}
	it := interp.New(prog, interp.Options{MaxSteps: 50_000_000})
	return it.Run()
}

func expectExit(t *testing.T, src string, want int64) {
	t.Helper()
	if res := run(t, src); res.Exit != want {
		t.Errorf("exit = %d, want %d\nsource:\n%s", res.Exit, want, src)
	}
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `int main() { return 2 + 3 * 4; }`, 14)
	expectExit(t, `int main() { return (2 + 3) * 4; }`, 20)
	expectExit(t, `int main() { return 17 / 5; }`, 3)
	expectExit(t, `int main() { return 17 % 5; }`, 2)
	expectExit(t, `int main() { return -7 + 3; }`, -4)
	expectExit(t, `int main() { float f = 7.5; return f * 2.0; }`, 15)
	expectExit(t, `int main() { return 2.9; }`, 2) // float->int truncates
	expectExit(t, `int main() { float f = 3; return f / 2.0 * 10.0; }`, 15)
}

func TestComparisonsAndLogic(t *testing.T) {
	expectExit(t, `int main() { return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (1 == 1) + (1 != 1); }`, 4)
	expectExit(t, `int main() { return (1 && 0) + (1 && 2) + (0 || 0) + (0 || 3); }`, 2)
	expectExit(t, `int main() { return !0 + !5; }`, 1)
	expectExit(t, `int main() { float a = 1.5; return (a > 1.0) && (a < 2.0); }`, 1)
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right side of && must not run when the left is false.
	expectExit(t, `
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
	int a = 0 && bump();
	int b = 1 || bump();
	a = 1 && bump();
	b = 0 || bump();
	return calls;
}`, 2)
}

func TestControlFlow(t *testing.T) {
	expectExit(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		s += i;
	}
	return s;
}`, 0+1+2+4+5+6)
	expectExit(t, `
int main() {
	int n = 0;
	while (n < 100) { n = n * 2 + 1; }
	return n;
}`, 127)
}

func TestRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`, 610)
}

func TestPointersAndHeap(t *testing.T) {
	expectExit(t, `
int main() {
	int* a = malloc(5);
	for (int i = 0; i < 5; i++) { a[i] = i * i; }
	int* p = a + 2;
	int v = *p + p[1];
	free(a);
	return v;
}`, 4+9)
	expectExit(t, `
int swap(int* x, int* y) {
	int t = *x;
	*x = *y;
	*y = t;
	return 0;
}
int main() {
	int a = 3;
	int b = 9;
	swap(&a, &b);
	return a * 10 + b;
}`, 93)
}

func TestPointerDifference(t *testing.T) {
	expectExit(t, `
int main() {
	float* a = malloc(10);
	float* p = a + 7;
	return p - a;
}`, 7)
}

func TestStructsAndNesting(t *testing.T) {
	expectExit(t, `
struct inner_t { int v; int w; };
struct outer_t { struct inner_t in; struct inner_t* ptr; };
int main() {
	struct outer_t o;
	o.in.v = 5;
	o.in.w = 6;
	o.ptr = &o.in;
	o.ptr->v = o.ptr->v + 100;
	return o.in.v + o.in.w;
}`, 111)
}

func TestGlobalsInitAndArrays(t *testing.T) {
	expectExit(t, `
int base = 40;
float ratio = 0.5;
int grid[4];
int main() {
	grid[0] = base;
	grid[3] = grid[0] + 2;
	return grid[3] * ratio * 2.0;
}`, 42)
}

func TestFunctionPointerDispatch(t *testing.T) {
	expectExit(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
fnptr pick(int which) {
	if (which) { return inc; }
	return dec;
}
int main() {
	fnptr f = pick(1);
	fnptr g = pick(0);
	return f(10) * 100 + g(10);
}`, 1109)
}

func TestNativeCalls(t *testing.T) {
	expectExit(t, `
extern float sqrt(float x);
extern int memcpy_cells(int* dst, int* src, int n);
extern int sum_cells(int* src, int n);
int main() {
	int* a = malloc(4);
	int* b = malloc(4);
	for (int i = 0; i < 4; i++) { a[i] = i + 1; }
	memcpy_cells(b, a, 4);
	float r = sqrt(16.0);
	return sum_cells(b, 4) * 10 + r;
}`, 104)
}

func TestDeterministicRand(t *testing.T) {
	src := `
extern int rand_seed(int s);
extern int rand_int(int bound);
int main() {
	rand_seed(7);
	int s = 0;
	for (int i = 0; i < 10; i++) { s = s + rand_int(100); }
	return s;
}`
	a := run(t, src)
	b := run(t, src)
	if a.Exit != b.Exit {
		t.Errorf("PRNG not deterministic: %d vs %d", a.Exit, b.Exit)
	}
}

func TestProgramOutput(t *testing.T) {
	res := run(t, `
extern int print_int(int x);
int main() {
	print_int(42);
	print_int(-1);
	return 0;
}`)
	if res.Output != "42\n-1\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestLeakAccounting(t *testing.T) {
	res := run(t, `
int main() {
	int* kept = malloc(10);
	int* dropped = malloc(7);
	free(kept);
	return 0;
}`)
	if res.LeakedCells != 7 {
		t.Errorf("leaked = %d cells, want 7", res.LeakedCells)
	}
	if len(res.LeakedAllocs) != 1 || res.LeakedAllocs[0].Cells != 7 {
		t.Errorf("leak detail = %+v", res.LeakedAllocs)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { int z = 0; return 5 / z; }`, "division by zero"},
		{`int main() { int z = 0; return 5 % z; }`, "remainder by zero"},
		{`int main() { int* p = 0; return *p; }`, "invalid load"},
		{`int main() { int* p = 0; *p = 1; return 0; }`, "invalid store"},
		{`int main() { int a = 1; free(&a); return 0; }`, "free of invalid pointer"},
		{`int main() { int* p = malloc(2); free(p); free(p); return 0; }`, "free of invalid pointer"},
		{`int boom(int n) { return boom(n + 1); } int main() { return boom(0); }`, "limit"},
		{`int main() { fnptr f = 0; return f(1); }`, "null function pointer"},
		{`int main() { int n = -1; int* p = malloc(n); return 0; }`, "negative count"},
		{`int main() { while (1) { } return 0; }`, "step limit"},
	}
	for _, c := range cases {
		_, err := tryRun(c.src)
		if err == nil {
			t.Errorf("%q should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not contain %q", err.Error(), c.want)
		}
	}
}

func TestStackFramesAreZeroed(t *testing.T) {
	// A fresh frame must not see the previous call's locals.
	expectExit(t, `
int leave(int mark) {
	int slot;
	if (mark) { slot = 99; }
	return slot;
}
int main() {
	leave(1);
	return leave(0);
}`, 0)
}

func TestCyclesMonotonic(t *testing.T) {
	small := run(t, `int main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }`)
	big := run(t, `int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return s %256; }`)
	if big.Cycles <= small.Cycles || big.Steps <= small.Steps {
		t.Errorf("more work should cost more: %d vs %d cycles", big.Cycles, small.Cycles)
	}
	if small.ToolCycles != 0 {
		t.Errorf("uninstrumented run charged %d tool cycles", small.ToolCycles)
	}
}

func TestAccessCounters(t *testing.T) {
	res := run(t, `
int main() {
	int x = 1;
	int* a = malloc(3);
	a[0] = x;
	a[1] = a[0] + 1;
	return a[1];
}`)
	if res.VarAccesses == 0 || res.MemAccesses == 0 {
		t.Errorf("access counters: var=%d mem=%d", res.VarAccesses, res.MemAccesses)
	}
}

// Package lang implements the MiniC front end: lexer, parser, AST, pragma
// parsing, and semantic checking. MiniC is the C-like source language that
// CARMOT-Go characterizes; it provides the full Program State Element
// surface of the paper (globals, stack variables, heap objects, pointers,
// arrays, structs, and function pointers) plus the #pragma directives that
// mark regions of interest and express OpenMP-style parallelism.
package lang

import "fmt"

// TokenKind enumerates MiniC token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStringLit
	TokPragma // a full "#pragma ..." line; Text holds the payload

	// Keywords.
	TokKwInt
	TokKwFloat
	TokKwVoid
	TokKwFnPtr
	TokKwStruct
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwBreak
	TokKwContinue
	TokKwExtern
	TokKwSizeof

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
	TokArrow // ->
	TokAssign
	TokPlusAssign
	TokMinusAssign
	TokStarAssign
	TokSlashAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokNot
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokPlusPlus
	TokMinusMinus
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal", TokStringLit: "string literal", TokPragma: "#pragma",
	TokKwInt: "int", TokKwFloat: "float", TokKwVoid: "void", TokKwFnPtr: "fnptr",
	TokKwStruct: "struct", TokKwIf: "if", TokKwElse: "else", TokKwWhile: "while",
	TokKwFor: "for", TokKwReturn: "return", TokKwBreak: "break",
	TokKwContinue: "continue", TokKwExtern: "extern", TokKwSizeof: "sizeof",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokSemi: ";", TokComma: ",",
	TokDot: ".", TokArrow: "->", TokAssign: "=", TokPlusAssign: "+=",
	TokMinusAssign: "-=", TokStarAssign: "*=", TokSlashAssign: "/=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokNot: "!", TokEq: "==", TokNe: "!=", TokLt: "<",
	TokLe: "<=", TokGt: ">", TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||",
	TokPlusPlus: "++", TokMinusMinus: "--",
}

// String returns a human-readable token-kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"int": TokKwInt, "float": TokKwFloat, "void": TokKwVoid,
	"fnptr": TokKwFnPtr, "struct": TokKwStruct, "if": TokKwIf,
	"else": TokKwElse, "while": TokKwWhile, "for": TokKwFor,
	"return": TokKwReturn, "break": TokKwBreak, "continue": TokKwContinue,
	"extern": TokKwExtern, "sizeof": TokKwSizeof,
}

// Pos is a source position (1-based line and column) within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its source position.
type Token struct {
	Kind  TokenKind
	Text  string // identifier name, literal text, or pragma payload
	Int   int64  // value for TokIntLit
	Float float64
	Pos   Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokPragma:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

package instrument_test

import (
	"testing"

	"carmot/internal/instrument"
	"carmot/internal/ir"
	"carmot/internal/lower"
	"carmot/internal/rt"
)

// TestAggregationRefusedWhenArraysMayAlias: two pointer parameters that
// may reference the same buffer cannot be aggregated (a ranged read and a
// ranged write over aliasing memory would mis-classify).
func TestAggregationRefusedWhenArraysMayAlias(t *testing.T) {
	prog := compile(t, `
int N = 32;
void move(float* dst, float* src) {
	#pragma carmot roi mv
	for (int i = 0; i < N; i++) {
		dst[i] = src[i];
	}
}
int main() {
	float* buf = malloc(32);
	move(buf, buf); // aliased!
	return buf[0];
}`, lower.Options{})
	plan, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.RangedEvents != 0 {
		t.Errorf("aliasing arrays must not aggregate, got %d ranged events", plan.Stats.RangedEvents)
	}
}

// TestAggregationAllowedForDistinctArrays: with provably distinct
// allocations the same loop aggregates both arrays.
func TestAggregationAllowedForDistinctArrays(t *testing.T) {
	prog := compile(t, `
int N = 32;
float* a;
float* b;
void init() {
	a = malloc(32);
	b = malloc(32);
}
void move() {
	#pragma carmot roi mv
	for (int i = 0; i < N; i++) {
		b[i] = a[i];
	}
}
int main() {
	init();
	move();
	return b[0];
}`, lower.Options{})
	plan, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.RangedEvents != 2 {
		t.Errorf("want 2 ranged events (read a, write b), got %d", plan.Stats.RangedEvents)
	}
}

// TestAggregationRequiresUnitStep: strided loops fall back to per-access
// instrumentation.
func TestAggregationRequiresUnitStep(t *testing.T) {
	prog := compile(t, `
int N = 32;
float* a;
void init() { a = malloc(32); }
int main() {
	init();
	float s = 0.0;
	#pragma carmot roi strided
	for (int i = 0; i < N; i = i + 2) {
		s = s + a[i];
	}
	return s;
}`, lower.Options{})
	plan, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.RangedEvents != 0 {
		t.Errorf("step-2 loop must not aggregate, got %d ranged events", plan.Stats.RangedEvents)
	}
}

// TestAggregationRefusedForNonInductionIndex: a[i] qualifies, a[j] with a
// data-dependent j does not — and one disqualifies the whole array.
func TestAggregationRefusedForNonInductionIndex(t *testing.T) {
	prog := compile(t, `
int N = 32;
int* a;
int* idx;
void init() {
	a = malloc(32);
	idx = malloc(32);
}
int main() {
	init();
	int s = 0;
	#pragma carmot roi gather
	for (int i = 0; i < N; i++) {
		s = s + a[idx[i]];
	}
	return s;
}`, lower.Options{})
	plan, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP))
	if err != nil {
		t.Fatal(err)
	}
	// idx[i] itself is induction-indexed and may aggregate; a[idx[i]]
	// must not.
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			re, ok := in.(*ir.RangedEvent)
			if !ok {
				return true
			}
			base, isGEP := re.Base.(*ir.GEP)
			_ = base
			_ = isGEP
			return true
		})
	}
	if plan.Stats.RangedEvents > 1 {
		t.Errorf("only idx may aggregate, got %d ranged events", plan.Stats.RangedEvents)
	}
}

// TestFixedStateRespectsCallsForGlobals: a global read in the ROI cannot
// be fixed-classified Input when the region calls a function that writes
// it.
func TestFixedStateRespectsCallsForGlobals(t *testing.T) {
	prog := compile(t, `
int N = 16;
float g = 1.0;
float* out;
void bump() { g = g + 1.0; }
void init() { out = malloc(16); }
int main() {
	init();
	#pragma carmot roi r
	for (int i = 0; i < N; i++) {
		bump();
		out[i] = g;
	}
	return g;
}`, lower.Options{})
	if _, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP)); err != nil {
		t.Fatal(err)
	}
	// g's load in the loop must remain dynamically tracked (TrackOn or
	// removed by dataflow, but never TrackFixed).
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			if ld, ok := in.(*ir.Load); ok && ld.Sym != nil && ld.Sym.Name == "g" {
				if ld.Track == ir.TrackFixed {
					t.Error("global g is written by a callee inside the ROI; fixed Input is unsound")
				}
			}
			return true
		})
	}
}

// TestFixedStateClassificationMatchesDynamic: with and without the fixed
// optimization, the PSEC classifications agree (checked end-to-end in the
// bench agreement test; here we pin the planner's event choice).
func TestFixedStateEmitsForReadOnlyScalars(t *testing.T) {
	prog := compile(t, `
int N = 16;
float alpha = 0.25;
float beta = 2.0;
float* out;
void init() { out = malloc(16); }
int main() {
	init();
	#pragma carmot roi r
	for (int i = 0; i < N; i++) {
		out[i] = alpha * i + beta;
	}
	return out[3];
}`, lower.Options{})
	plan, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP))
	if err != nil {
		t.Fatal(err)
	}
	// alpha, beta, N-is-outside... alpha and beta (and the out pointer)
	// are loop-invariant reads: at least 3 fixed events.
	if plan.Stats.FixedEvents < 3 {
		t.Errorf("want >=3 fixed Input events, got %d", plan.Stats.FixedEvents)
	}
}

// TestAddressTakenScalarNotFixed: a scalar whose address escapes can be
// written through pointers; it must stay dynamically tracked.
func TestAddressTakenScalarNotFixed(t *testing.T) {
	prog := compile(t, `
int N = 8;
float* out;
void init() { out = malloc(8); }
void sneak(float* p) { *p = 99.0; }
int main() {
	init();
	float a = 1.0;
	sneak(&a);
	#pragma carmot roi r
	for (int i = 0; i < N; i++) {
		out[i] = a;
	}
	return out[0];
}`, lower.Options{})
	if _, err := instrument.Apply(prog, instrument.Carmot(rt.ProfileOpenMP)); err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			if ld, ok := in.(*ir.Load); ok && ld.Sym != nil && ld.Sym.Name == "a" && ld.Track == ir.TrackFixed {
				t.Error("address-taken scalar must not be fixed-classified")
			}
			return true
		})
	}
}

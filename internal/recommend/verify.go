package recommend

import (
	"fmt"
	"strings"

	"carmot/internal/lang"
)

// VerifySeverity grades a verification finding.
type VerifySeverity int

// Severities. Errors mean the pragma is wrong for the profiled execution
// (a race or a lost reduction); warnings mean the pragma is safe but
// imprecise (an unnecessary clause, or clone advice the programmer must
// weigh).
const (
	VerifyError VerifySeverity = iota
	VerifyWarning
)

func (s VerifySeverity) String() string {
	if s == VerifyError {
		return "error"
	}
	return "warning"
}

// VerifyFinding is one discrepancy between a hand-written pragma and the
// PSEC-derived recommendation.
type VerifyFinding struct {
	Severity VerifySeverity
	Var      string
	Detail   string
}

// VerifyResult is the outcome of checking one pragma (§5.1: CARMOT "can
// be used by developers to verify the correctness ... of existing pragmas
// for a specific program execution").
type VerifyResult struct {
	ROI      string
	Findings []VerifyFinding
}

// OK reports whether the pragma is correct for the profiled execution
// (warnings allowed).
func (v *VerifyResult) OK() bool {
	for _, f := range v.Findings {
		if f.Severity == VerifyError {
			return false
		}
	}
	return true
}

// Report renders the verification outcome.
func (v *VerifyResult) Report() string {
	var b strings.Builder
	if len(v.Findings) == 0 {
		fmt.Fprintf(&b, "ROI %q: pragma matches the PSEC-derived recommendation\n", v.ROI)
		return b.String()
	}
	fmt.Fprintf(&b, "ROI %q:\n", v.ROI)
	for _, f := range v.Findings {
		fmt.Fprintf(&b, "  %s: %s: %s\n", f.Severity, f.Var, f.Detail)
	}
	return b.String()
}

// VerifyContext carries the static facts verification needs beyond the
// PSEC: which variables are declared inside the loop (implicitly private
// in OpenMP) and whether the loop body already contains a critical or
// ordered construct.
type VerifyContext struct {
	DeclaredInLoop    map[string]bool
	HasCriticalInside bool
}

// VerifyParallelFor diffs a hand-written `#pragma omp parallel for`
// against the recommendation derived from the PSEC of its loop body.
func VerifyParallelFor(rec *ParallelFor, pragma *lang.Pragma, ctx VerifyContext) *VerifyResult {
	out := &VerifyResult{ROI: rec.ROI}
	if pragma == nil || pragma.Kind != lang.PragmaOmpParallelFor {
		out.Findings = append(out.Findings, VerifyFinding{
			Severity: VerifyError, Var: "<pragma>", Detail: "not an omp parallel for pragma",
		})
		return out
	}
	add := func(sev VerifySeverity, v, detail string) {
		out.Findings = append(out.Findings, VerifyFinding{Severity: sev, Var: v, Detail: detail})
	}
	inList := func(list []string, name string) bool {
		for _, n := range list {
			if n == name {
				return true
			}
		}
		return false
	}
	privatized := func(name string) bool {
		return inList(pragma.Private, name) || inList(pragma.FirstPrivate, name) ||
			inList(pragma.LastPrivate, name) || ctx.DeclaredInLoop[name] ||
			name == rec.InductionVar
	}
	clauseVars := func(rec []VarClause) []string {
		names := make([]string, len(rec))
		for i, v := range rec {
			names[i] = v.Name
		}
		return names
	}

	// 1. Variables the recommendation privatizes must not run shared.
	for _, name := range clauseVars(rec.Private) {
		if privatized(name) {
			continue
		}
		if inList(pragma.Shared, name) {
			add(VerifyError, name, "declared shared but written before read by every iteration (privatize it)")
		} else {
			add(VerifyError, name, "defaults to shared but must be private")
		}
	}
	for _, name := range clauseVars(rec.FirstPrivate) {
		if !inList(pragma.FirstPrivate, name) && !privatized(name) {
			add(VerifyError, name, "carries its pre-loop value into iterations; needs firstprivate")
		}
	}
	for _, name := range clauseVars(rec.LastPrivate) {
		switch {
		case inList(pragma.LastPrivate, name):
		case inList(pragma.Private, name) || ctx.DeclaredInLoop[name]:
			add(VerifyWarning, name, "private in the pragma, but its final value is read after the loop (lastprivate keeps it)")
		default:
			add(VerifyError, name, "written by iterations and read after the loop; needs lastprivate")
		}
	}

	// 2. Reductions must match operator and variable.
	pragmaReds := map[string]string{}
	for _, r := range pragma.Reductions {
		pragmaReds[r.Var] = r.Op
	}
	for _, r := range rec.Reductions {
		op, ok := pragmaReds[r.Name]
		switch {
		case !ok && ctx.HasCriticalInside:
			add(VerifyWarning, r.Name, fmt.Sprintf("updated under a critical/ordered section, but the computation is a %s reduction (a reduction clause is faster)", r.Op))
		case !ok:
			add(VerifyError, r.Name, fmt.Sprintf("cross-iteration %s reduction not declared (reduction(%s:%s)) — data race", r.Op, r.Op, r.Name))
		case op != r.Op:
			add(VerifyError, r.Name, fmt.Sprintf("reduction operator mismatch: pragma says %s, accesses use %s", op, r.Op))
		}
		delete(pragmaReds, r.Name)
	}
	for v, op := range pragmaReds {
		add(VerifyWarning, v, fmt.Sprintf("declared reduction(%s:%s) but the profile shows no cross-iteration dependence on it", op, v))
	}

	// 3. Non-reducible Transfer PSEs need a critical/ordered section.
	for _, c := range rec.Criticals {
		if !ctx.HasCriticalInside && !pragma.Ordered {
			add(VerifyError, c.PSE, "carries a cross-iteration RAW dependence; its statements need '#pragma omp critical' or 'ordered'")
		}
	}

	// 4. Cloneable memory is advice the pragma cannot express; surface it.
	for _, cl := range rec.Clones {
		add(VerifyWarning, cl.Name, fmt.Sprintf("memory PSE is overwritten by iterations (allocated at %s); clone it per thread and index clones with omp_get_thread_num()", cl.AllocPos))
	}

	// 5. Shared-only PSEs listed in privatization clauses cost copies.
	for _, name := range clauseVars(rec.Shared) {
		if inList(pragma.Private, name) || inList(pragma.FirstPrivate, name) {
			add(VerifyWarning, name, "only read by the loop; privatizing it costs an unnecessary copy per thread")
		}
	}
	return out
}

// DeclaredInLoop walks a for statement's init and body collecting the
// names declared inside it (implicitly private in OpenMP).
func DeclaredInLoop(loop *lang.ForStmt) map[string]bool {
	out := map[string]bool{}
	if loop == nil {
		return out
	}
	if d, ok := loop.Init.(*lang.DeclStmt); ok {
		out[d.Sym.Name] = true
	}
	var walk func(lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.DeclStmt:
			out[st.Sym.Name] = true
		case *lang.BlockStmt:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			if st.Init != nil {
				walk(st.Init)
			}
			walk(st.Body)
		case *lang.PragmaStmt:
			if st.Body != nil {
				walk(st.Body)
			}
		}
	}
	walk(loop.Body)
	return out
}

// HasCriticalInside reports whether the loop body lexically contains an
// omp critical or ordered construct.
func HasCriticalInside(loop *lang.ForStmt) bool {
	if loop == nil {
		return false
	}
	found := false
	var walk func(lang.Stmt)
	walk = func(s lang.Stmt) {
		switch st := s.(type) {
		case *lang.BlockStmt:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *lang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *lang.WhileStmt:
			walk(st.Body)
		case *lang.ForStmt:
			walk(st.Body)
		case *lang.PragmaStmt:
			if st.Pragma.Kind == lang.PragmaOmpCritical || st.Pragma.Kind == lang.PragmaOmpOrdered {
				found = true
			}
			if st.Body != nil {
				walk(st.Body)
			}
		}
	}
	walk(loop.Body)
	return found
}

package rt

import (
	"fmt"
	"testing"

	"carmot/internal/core"
	"carmot/internal/testutil"
)

// feeder drives the runtime with synthetic events the way the
// interpreter's instrumentation would.
type feeder struct {
	r *Runtime
}

func newFeeder(cfg Config) *feeder {
	if len(cfg.ROIs) == 0 {
		cfg.ROIs = []ROIMeta{{ID: 0, Name: "z", Kind: "carmot", Pos: "t.mc:1:1"}}
	}
	return &feeder{r: New(cfg)}
}

func (f *feeder) alloc(addr uint64, n int64, kind core.PSEKind, name string) {
	f.r.EmitAlloc(addr, n, 0, &AllocMeta{Kind: kind, Name: name, Pos: "t.mc:9:9"})
}

func (f *feeder) access(addr uint64, write bool) {
	f.r.EmitAccess(addr, write, -1, 0)
}

func TestPipelineBasicClassification(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	for _, batch := range []int{1, 2, 3, 4096} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			f := newFeeder(Config{BatchSize: batch, Workers: 2, Profile: ProfileFull})
			f.alloc(100, 4, core.PSEHeap, "arr")
			// inv 1: cell 100 read, cell 101 written, cell 102 read+written.
			f.r.BeginROI(0)
			f.access(100, false)
			f.access(101, true)
			f.access(102, false)
			f.access(102, true)
			f.r.EndROI(0)
			// inv 2: cell 100 read again (still Input), 101 overwritten
			// (Cloneable), 102 read first (Transfer).
			f.r.BeginROI(0)
			f.access(100, false)
			f.access(101, true)
			f.access(102, false)
			f.r.EndROI(0)
			psecs := f.r.Finish()
			p := psecs[0]
			e := p.ElementByName("arr")
			if e == nil {
				t.Fatal("arr missing from PSEC")
			}
			wantRanges := []core.CellRange{
				{Lo: 0, Hi: 1, Sets: core.SetInput},
				{Lo: 1, Hi: 2, Sets: core.SetCloneable | core.SetOutput},
				{Lo: 2, Hi: 3, Sets: core.SetTransfer | core.SetInput | core.SetOutput},
			}
			if len(e.Ranges) != len(wantRanges) {
				t.Fatalf("ranges = %v", e.Ranges)
			}
			for i, w := range wantRanges {
				if e.Ranges[i] != w {
					t.Errorf("range %d = %v, want %v", i, e.Ranges[i], w)
				}
			}
			if p.Stats.Invocations != 2 {
				t.Errorf("invocations = %d", p.Stats.Invocations)
			}
			if p.Stats.TotalAccesses != 7 {
				t.Errorf("accesses = %d", p.Stats.TotalAccesses)
			}
		})
	}
}

func TestAccessesOutsideROIDropped(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileFull})
	f.alloc(50, 1, core.PSEVariable, "x")
	f.access(50, true) // outside any invocation
	f.r.BeginROI(0)
	f.access(50, false)
	f.r.EndROI(0)
	f.access(50, true) // outside again
	p := f.r.Finish()[0]
	e := p.ElementByName("x")
	if e == nil || e.Sets != core.SetInput {
		t.Errorf("x = %v; outside-ROI writes must not classify", e)
	}
}

func TestFreeSplitsPSEInstances(t *testing.T) {
	// The same address reused by two allocations is two distinct PSEs;
	// the report folds them by source identity.
	f := newFeeder(Config{Profile: ProfileFull})
	f.r.BeginROI(0)
	f.alloc(200, 1, core.PSEHeap, "buf")
	f.access(200, true)
	f.r.EmitFree(200)
	f.alloc(200, 1, core.PSEHeap, "buf")
	f.access(200, true)
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	e := p.ElementByName("buf")
	if e == nil {
		t.Fatal("buf missing")
	}
	// Each instance was written once in one invocation: Output only —
	// NOT Cloneable (that would need one PSE written by two invocations).
	if e.Sets != core.SetOutput {
		t.Errorf("buf = %s, want {Output}", e.Sets)
	}
}

func TestImplicitRetireOnAddressReuse(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileFull})
	f.r.BeginROI(0)
	f.alloc(300, 2, core.PSEStackMem, "frameA")
	f.access(300, true)
	// A new allocation over the same cells (stack frame reuse) retires
	// the old one even without an explicit free event.
	f.alloc(300, 2, core.PSEStackMem, "frameB")
	f.access(300, false)
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	a, b := p.ElementByName("frameA"), p.ElementByName("frameB")
	if a == nil || a.Sets != core.SetOutput {
		t.Errorf("frameA = %v", a)
	}
	if b == nil || b.Sets != core.SetInput {
		t.Errorf("frameB = %v", b)
	}
}

func TestRangedEvents(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileOpenMP})
	f.alloc(1000, 10, core.PSEHeap, "vec")
	// Two loop executions, each reporting a uniform write over the
	// vector: cells become Cloneable+Output (overwritten, never read).
	f.r.EmitRange(0, true, 1000, 10, 1)
	f.r.EmitRange(0, true, 1000, 10, 1)
	p := f.r.Finish()[0]
	e := p.ElementByName("vec")
	if e == nil || e.Sets != core.SetCloneable|core.SetOutput {
		t.Errorf("vec = %v, want Cloneable|Output", e)
	}
	// A single read-ranged event yields Input.
	f2 := newFeeder(Config{Profile: ProfileOpenMP})
	f2.alloc(1000, 10, core.PSEHeap, "vec")
	f2.r.EmitRange(0, false, 1000, 10, 1)
	if e := f2.r.Finish()[0].ElementByName("vec"); e == nil || e.Sets != core.SetInput {
		t.Errorf("read-ranged vec = %v", e)
	}
}

func TestRangedEventStride(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileOpenMP})
	f.alloc(0x800, 8, core.PSEHeap, "mat")
	// Stride 2: only even cells accessed.
	f.r.EmitRange(0, false, 0x800, 4, 2)
	p := f.r.Finish()[0]
	e := p.ElementByName("mat")
	if e == nil || len(e.Ranges) != 4 {
		t.Fatalf("strided ranges = %+v", e)
	}
	for _, r := range e.Ranges {
		if r.Hi-r.Lo != 1 || r.Lo%2 != 0 {
			t.Errorf("bad strided range %v", r)
		}
	}
}

func TestFixedClassification(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileOpenMP})
	f.alloc(77, 1, core.PSEVariable, "alpha")
	f.r.EmitFixed(0, 77, 1, core.SetInput)
	p := f.r.Finish()[0]
	if e := p.ElementByName("alpha"); e == nil || e.Sets != core.SetInput {
		t.Errorf("alpha = %v", e)
	}
}

func TestEscapesBuildReachGraph(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileSmartPtr})
	f.r.BeginROI(0)
	f.alloc(10, 2, core.PSEHeap, "a")
	f.alloc(20, 2, core.PSEHeap, "b")
	f.r.EmitEscape(10, 20) // a -> b
	f.r.EmitEscape(21, 10) // b -> a
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	cycles := p.Reach.Cycles()
	if len(cycles) != 1 {
		t.Fatalf("want 1 cycle, got %d", len(cycles))
	}
	if len(cycles[0].Nodes) != 2 {
		t.Errorf("cycle nodes = %v", cycles[0].Nodes)
	}
}

func TestEscapeOutsideROINotRecorded(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileSmartPtr})
	// Allocations before the ROI begins are not "allocated within".
	f.alloc(10, 1, core.PSEHeap, "pre")
	f.r.BeginROI(0)
	f.alloc(20, 1, core.PSEHeap, "in")
	f.r.EmitEscape(10, 20)
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	if n := len(p.Reach.Edges()); n != 0 {
		t.Errorf("edge involving a pre-ROI allocation recorded (%d)", n)
	}
}

func TestUseCallstacksCollected(t *testing.T) {
	cfg := Config{
		Profile: ProfileOpenMP,
		Sites: []SiteInfo{
			{Pos: "t.mc:5:3", Func: "f", Write: false},
			{Pos: "t.mc:6:3", Func: "f", Write: true},
		},
	}
	f := newFeeder(cfg)
	cs1 := f.r.Callstacks().Intern([]core.Frame{{Func: "main", Pos: "t.mc:10:1"}})
	cs2 := f.r.Callstacks().Intern([]core.Frame{{Func: "other", Pos: "t.mc:20:1"}})
	f.alloc(40, 1, core.PSEVariable, "v")
	f.r.BeginROI(0)
	f.r.EmitAccess(40, false, 0, cs1)
	f.r.EmitAccess(40, false, 0, cs2)
	f.r.EmitAccess(40, true, 1, cs1)
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	e := p.ElementByName("v")
	if e == nil || len(e.UseSites) != 2 {
		t.Fatalf("use sites = %+v", e)
	}
	if e.UseSites[0].IsWrite || len(e.UseSites[0].Callstacks) != 2 {
		t.Errorf("read site = %+v", e.UseSites[0])
	}
	if !e.UseSites[1].IsWrite || len(e.UseSites[1].Callstacks) != 1 {
		t.Errorf("write site = %+v", e.UseSites[1])
	}
}

func TestStaticUsesAndReducibleVars(t *testing.T) {
	cfg := Config{
		Profile: ProfileOpenMP,
		Sites: []SiteInfo{
			{Pos: "t.mc:5:3", Func: "f", Write: true, ReduceOp: "+"},
		},
		StaticVarUses: map[string][]int32{"t.mc:2:2": {0}},
		ReducibleVars: map[string]string{"t.mc:2:2": "+"},
	}
	f := newFeeder(cfg)
	f.r.EmitAlloc(60, 1, 0, &AllocMeta{Kind: core.PSEVariable, Name: "sum", Pos: "t.mc:2:2"})
	f.r.BeginROI(0)
	f.r.EmitAccess(60, true, 0, 0)
	f.r.EndROI(0)
	p := f.r.Finish()[0]
	e := p.ElementByName("sum")
	if e == nil {
		t.Fatal("sum missing")
	}
	if !e.Reducible || e.Reduction != "+" {
		t.Errorf("sum should be statically reducible: %+v", e)
	}
	if len(e.UseSites) != 1 {
		t.Errorf("static use sites merged wrong: %+v", e.UseSites)
	}
}

func TestMultipleROIs(t *testing.T) {
	cfg := Config{Profile: ProfileFull, ROIs: []ROIMeta{
		{ID: 0, Name: "first"}, {ID: 1, Name: "second"},
	}}
	f := newFeeder(cfg)
	f.alloc(500, 1, core.PSEVariable, "x")
	f.r.BeginROI(0)
	f.access(500, true)
	f.r.EndROI(0)
	f.r.BeginROI(1)
	f.access(500, false)
	f.r.EndROI(1)
	psecs := f.r.Finish()
	if e := psecs[0].ElementByName("x"); e == nil || e.Sets != core.SetOutput {
		t.Errorf("roi0 x = %v", e)
	}
	if e := psecs[1].ElementByName("x"); e == nil || e.Sets != core.SetInput {
		t.Errorf("roi1 x = %v", e)
	}
}

func TestNestedROIs(t *testing.T) {
	cfg := Config{Profile: ProfileFull, ROIs: []ROIMeta{
		{ID: 0, Name: "outer"}, {ID: 1, Name: "inner"},
	}}
	f := newFeeder(cfg)
	f.alloc(600, 1, core.PSEVariable, "y")
	f.r.BeginROI(0)
	f.access(600, true)
	f.r.BeginROI(1)
	f.access(600, false) // read inside both
	f.r.EndROI(1)
	f.r.EndROI(0)
	psecs := f.r.Finish()
	// Outer saw write-then-read within ONE invocation: the read is a
	// subsequent access (Rn) and does not add Input — y stays Output.
	// The inner ROI saw only the read: Input.
	if e := psecs[0].ElementByName("y"); e == nil || e.Sets != core.SetOutput {
		t.Errorf("outer y = %v", e)
	}
	if e := psecs[1].ElementByName("y"); e == nil || e.Sets != core.SetInput {
		t.Errorf("inner y = %v", e)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	build := func() string {
		f := newFeeder(Config{BatchSize: 3, Workers: 4, Profile: ProfileFull})
		f.alloc(100, 8, core.PSEHeap, "arr")
		for inv := 0; inv < 5; inv++ {
			f.r.BeginROI(0)
			for c := uint64(0); c < 8; c++ {
				f.access(100+c, (int(c)+inv)%3 == 0)
				f.access(100+c, false)
			}
			f.r.EndROI(0)
		}
		return f.r.Finish()[0].Summary()
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("pipeline output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestSummaryInvariantToBatchBoundaries(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	// The same event stream must classify identically whatever the batch
	// size (an invocation may span batches).
	results := map[int]string{}
	for _, batch := range []int{1, 2, 5, 1000} {
		f := newFeeder(Config{BatchSize: batch, Workers: 3, Profile: ProfileFull})
		f.alloc(100, 2, core.PSEHeap, "arr")
		for inv := 0; inv < 4; inv++ {
			f.r.BeginROI(0)
			f.access(100, inv%2 == 0)
			f.access(101, false)
			f.access(100, false)
			f.r.EndROI(0)
		}
		results[batch] = f.r.Finish()[0].Summary()
	}
	base := results[1]
	for batch, got := range results {
		if got != base {
			t.Errorf("batch size %d changes the PSEC:\n%s\nvs\n%s", batch, got, base)
		}
	}
}

// TestProgressHook pins the Config.Progress contract: snapshots arrive
// on the program thread at batch boundaries, counts are monotonic, the
// last snapshot is Final with the full event count, and a MaxEvents
// downgrade becomes visible through the Downgrades counter.
func TestProgressHook(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	var ups []ProgressUpdate
	f := newFeeder(Config{
		BatchSize: 8,
		Workers:   2,
		Profile:   ProfileFull,
		Limits:    Limits{MaxEvents: 40},
		Progress:  func(u ProgressUpdate) { ups = append(ups, u) },
	})
	f.alloc(100, 4, core.PSEHeap, "arr")
	f.r.BeginROI(0)
	for i := 0; i < 64; i++ {
		f.access(100+uint64(i%4), i%2 == 0)
	}
	f.r.EndROI(0)
	f.r.Finish()

	if len(ups) < 3 {
		t.Fatalf("progress snapshots = %d, want several (batch=8, 64 accesses)", len(ups))
	}
	var prev ProgressUpdate
	for i, u := range ups {
		if u.Events < prev.Events || u.Batches < prev.Batches ||
			u.Downgrades < prev.Downgrades || u.Recoveries < prev.Recoveries {
			t.Fatalf("snapshot %d went backwards: %+v after %+v", i, u, prev)
		}
		if u.Final && i != len(ups)-1 {
			t.Fatalf("snapshot %d marked Final before the end", i)
		}
		prev = u
	}
	last := ups[len(ups)-1]
	if !last.Final {
		t.Fatalf("last snapshot not Final: %+v", last)
	}
	diag := f.r.Diagnostics()
	if last.Events != diag.Events {
		t.Errorf("final Events = %d, diagnostics say %d", last.Events, diag.Events)
	}
	if last.Downgrades == 0 || last.Dropped == 0 {
		t.Errorf("MaxEvents cap invisible to progress: %+v (diag %+v)", last, diag)
	}
}

// Package carmot is the public API of CARMOT-Go, a from-scratch Go
// implementation of "Program State Element Characterization" (CGO 2023).
//
// CARMOT characterizes how a region of interest (ROI) of a MiniC program
// interacts with every Program State Element (PSE) — variables and memory
// locations — and turns that characterization (the PSEC) into abstraction
// recommendations: OpenMP parallel for/critical/ordered, OpenMP task,
// C++-style smart pointers (reference-cycle detection), and the STATS
// Input-Output-State classification.
//
// Typical use:
//
//	prog, err := carmot.Compile("prog.mc", source, carmot.CompileOptions{})
//	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
//	rec := carmot.RecommendParallelFor(res.PSECs[0], prog.ROIs()[0])
//	fmt.Println(rec.Pragma())
package carmot

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"carmot/internal/core"
	"carmot/internal/instrument"
	"carmot/internal/interp"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
	"carmot/internal/rt"
)

// Re-exported PSEC types: the characterization a Profile run produces.
type (
	// PSEC is the Program State Element Characterization of one ROI.
	PSEC = core.PSEC
	// Element is one characterized PSE.
	Element = core.Element
	// SetMask is a set of PSEC classification Sets.
	SetMask = core.SetMask
)

// Classification sets (§3.1).
const (
	SetInput     = core.SetInput
	SetOutput    = core.SetOutput
	SetCloneable = core.SetCloneable
	SetTransfer  = core.SetTransfer
)

// UseCase selects the abstraction being targeted; per Table 1 it decides
// which PSEC components the runtime tracks.
type UseCase int

// Use cases.
const (
	UseOpenMP        UseCase = iota // omp parallel for + critical/ordered
	UseTask                         // omp task
	UseSmartPointers                // reference-cycle detection
	UseSTATS                        // Input-Output-State classes
	UseFull                         // track everything (the naive baseline does)
)

// Execution engines for ProfileOptions.Engine: the default bytecode
// engine and the tree-walking differential oracle.
const (
	EngineBytecode = interp.EngineBytecode
	EngineTree     = interp.EngineTree
)

func (u UseCase) trackingProfile() rt.TrackingProfile {
	switch u {
	case UseOpenMP:
		return rt.ProfileOpenMP
	case UseTask:
		return rt.ProfileTask
	case UseSmartPointers:
		return rt.ProfileSmartPtr
	case UseSTATS:
		return rt.ProfileStats
	}
	return rt.ProfileFull
}

// CompileOptions configures front-end and lowering behavior.
type CompileOptions struct {
	// ProfileOmpRegions makes each existing `#pragma omp parallel
	// for`/`task` body an ROI (§5.1's pragma-verification mode).
	ProfileOmpRegions bool
	// ProfileStatsRegions makes each `#pragma stats` region an ROI (§5.3).
	ProfileStatsRegions bool
	// WholeProgramROI wraps main in one ROI (§5.2's cycle hunting mode).
	WholeProgramROI bool
	// IgnoreCarmotPragmas skips `#pragma carmot roi` markers, leaving the
	// programmatically requested ROIs (e.g. WholeProgramROI) as the only
	// ones.
	IgnoreCarmotPragmas bool
}

// Program is a compiled MiniC translation unit.
type Program struct {
	File *lang.File
	IR   *ir.Program
}

// Compile parses, checks, and lowers a MiniC source file.
func Compile(filename, source string, opts CompileOptions) (*Program, error) {
	f, err := lang.ParseAndCheck(filename, source)
	if err != nil {
		return nil, err
	}
	p, err := lower.Lower(f, lower.Options{
		ProfileOmp:          opts.ProfileOmpRegions,
		ProfileStats:        opts.ProfileStatsRegions,
		WholeProgramROI:     opts.WholeProgramROI,
		IgnoreCarmotPragmas: opts.IgnoreCarmotPragmas,
	})
	if err != nil {
		return nil, err
	}
	return &Program{File: f, IR: p}, nil
}

// ROIs returns the program's regions of interest.
func (p *Program) ROIs() []*ir.ROI { return p.IR.ROIs }

// Diagnostics re-exports the runtime's run summary: event volume, peak
// shadow state, degradation-ladder downgrades, contained faults, and
// truncation status.
type Diagnostics = rt.Diagnostics

// Downgrade is one recorded degradation-ladder step.
type Downgrade = rt.Downgrade

// Recovery is one recorded supervisor intervention (a successful
// journal replay or a degraded fallback).
type Recovery = rt.Recovery

// ProfileOptions configures a profiling run.
type ProfileOptions struct {
	UseCase UseCase
	// Naive disables every PSEC-specific optimization (the baseline of
	// Figures 7/10/11) while still producing a correct PSEC.
	Naive bool
	// Optimizations overrides the planner toggles when non-nil (for
	// ablation studies, Figure 8).
	Optimizations *instrument.Options
	// Stdin-like knobs for the run.
	Stdout   io.Writer
	MaxSteps int64
	// Engine selects the execution engine: the default bytecode engine,
	// or interp.EngineTree — the tree-walking oracle kept for
	// differential testing. Both produce byte-identical PSECs.
	Engine interp.Engine
	// NoCoalesce disables producer-side access coalescing (the combining
	// buffer inside the runtime's emit path that merges same-cell and
	// constant-stride access runs into one batch slot). PSECs are
	// identical either way; the knob exists for differential tests and
	// emit-path benchmarks.
	NoCoalesce bool
	// ForceCoalesce pins the combining buffer on, skipping the adaptive
	// gate that normally switches it off on non-merging access streams.
	// An overloaded serving layer sets it to trade producer CPU for
	// pipeline volume when many sessions share one worker pool.
	ForceCoalesce bool
	// NoFuse disables the bytecode compiler's superinstruction peephole.
	// PSECs are identical either way; the knob exists so benchmarks can
	// attribute the fusion win and differential tests can compare fused
	// vs unfused streams.
	NoFuse bool
	// CountDispatch tallies per-opcode dispatch and fall-through-pair
	// frequencies in the bytecode engine; the report lands on
	// ProfileResult.Dispatch. The counters ride the dispatch loop, so
	// leave this off when measuring throughput.
	CountDispatch bool
	// Workers sizes the runtime's worker pool (default GOMAXPROCS).
	Workers int
	// Shards sizes the runtime's address-sharded postprocessing pool
	// (default min(Workers, 8), capped at 64).
	Shards int
	// BatchSize sizes event batches (default 4096).
	BatchSize int

	// Context cancels the run early; a cancelled run returns a partial,
	// truncation-marked result instead of an error.
	Context context.Context
	// Timeout bounds the run's wall-clock time (0 = none); like MaxSteps
	// and Context it truncates rather than fails.
	Timeout time.Duration
	// MaxEvents / MaxCells / MaxCallstacks bound the runtime's shadow
	// state (0 = unlimited); breaches degrade the profile per the
	// documented ladder and are recorded in Diagnostics.Downgrades.
	MaxEvents     uint64
	MaxCells      int64
	MaxCallstacks int

	// Recover enables the runtime's self-healing layer: a byte-budgeted
	// replay journal plus supervisors that respawn a panicked pipeline
	// stage and replay its journal partition, producing a byte-identical
	// PSEC where the containment-only failure model would degrade.
	// Interventions are recorded in Diagnostics.Recoveries either way.
	Recover bool
	// JournalBudgetBytes bounds the replay journal's retention when
	// Recover is set (0 = 32 MiB default, negative = retain nothing).
	JournalBudgetBytes int64

	// Progress, when non-nil, receives pipeline-volume snapshots from the
	// program thread at batch boundaries and once more when the pipeline
	// drains (Final set). It is how long sessions become observable
	// mid-flight — carmotd's streaming responses are fed by it. The hook
	// runs on the event hot path between batches: keep it fast, and do
	// not call back into the profiling run.
	Progress func(ProgressUpdate)
}

// ProgressUpdate re-exports the runtime's mid-run volume snapshot (see
// ProfileOptions.Progress).
type ProgressUpdate = rt.ProgressUpdate

// DegradedError reports a run whose program executed but whose profile
// lost data to contained pipeline faults (the runtime's recover → degrade
// ladder bottomed out). It is the retryable failure class: the program
// itself is fine, so re-running the session — from a cached Program —
// can produce a clean profile. Program faults (RuntimeError) and budget
// stops are NOT wrapped in it.
type DegradedError struct {
	Err error
}

func (e *DegradedError) Error() string { return "carmot: profile degraded: " + e.Err.Error() }

// Unwrap exposes the underlying pipeline fault summary.
func (e *DegradedError) Unwrap() error { return e.Err }

// IsDegraded reports whether err (anywhere in its chain) is a
// DegradedError — the class of failures a serving layer should retry.
func IsDegraded(err error) bool {
	var de *DegradedError
	return errors.As(err, &de)
}

// ProfileResult carries the outcome of a profiling run.
type ProfileResult struct {
	// PSECs holds one characterization per ROI, indexed by ROI ID.
	PSECs []*core.PSEC
	// Run is the program-execution summary.
	Run *interp.Result
	// Plan reports the instrumentation decisions taken.
	Plan *instrument.Plan
	// Diagnostics reports the runtime's resource/fault summary; check
	// Truncated to see whether a budget cut the run short.
	Diagnostics Diagnostics
	// Dispatch is the bytecode engine's opcode-frequency report, non-nil
	// only when ProfileOptions.CountDispatch was set.
	Dispatch *interp.DispatchStats
}

// Profile instruments the program per the options, executes it, and
// returns the PSEC of every ROI.
//
// Profile rewrites the program's IR in place (instrumentation is
// applied, and stripped on the next call), so concurrent Profile calls
// on one Program must be externally serialized; callers that want
// concurrent sessions of the same source compile separate Program
// values.
//
// Failure model: a budget stop (MaxSteps, Timeout, or Context) is not an
// error — the partial PSECs come back marked Truncated, with the reason
// in Diagnostics. A program fault or a contained pipeline fault returns
// a non-nil error together with whatever partial result was salvaged.
func (p *Program) Profile(opts ProfileOptions) (*ProfileResult, error) {
	var io_ instrument.Options
	switch {
	case opts.Optimizations != nil:
		io_ = *opts.Optimizations
	case opts.Naive:
		io_ = instrument.Naive()
	default:
		io_ = instrument.Carmot(opts.UseCase.trackingProfile())
	}
	plan, err := instrument.Apply(p.IR, io_)
	if err != nil {
		return nil, err
	}
	runtime := rt.New(rt.Config{
		BatchSize:     opts.BatchSize,
		Workers:       opts.Workers,
		Shards:        opts.Shards,
		Profile:       io_.Profile,
		Sites:         plan.Sites,
		ROIs:          plan.ROIs,
		StaticVarUses: plan.StaticVarUses,
		ReducibleVars: plan.ReducibleVars,
		Limits: rt.Limits{
			MaxEvents:     opts.MaxEvents,
			MaxLiveCells:  opts.MaxCells,
			MaxCallstacks: opts.MaxCallstacks,
		},
		Recover:            opts.Recover,
		JournalBudgetBytes: opts.JournalBudgetBytes,
		Coalesce:           !opts.NoCoalesce,
		CoalesceForce:      opts.ForceCoalesce,
		Progress:           opts.Progress,
	})
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	it := interp.New(p.IR, interp.Options{
		Runtime:         runtime,
		Engine:          opts.Engine,
		Clustering:      io_.CallstackClustering,
		NaiveEventCosts: opts.Naive,
		Stdout:          opts.Stdout,
		MaxSteps:        opts.MaxSteps,
		Ctx:             opts.Context,
		Deadline:        deadline,
		NoFuse:          opts.NoFuse,
		CountDispatch:   opts.CountDispatch,
	})
	run, rerr := it.Run()
	// Always drain the pipeline, whatever the run's outcome: Finish is
	// the only way to stop the worker/postprocessor goroutines, and it
	// also salvages the partial PSECs of a truncated or faulted run.
	psecs := runtime.Finish()
	diag := runtime.Diagnostics()
	var berr *interp.BudgetError
	if errors.As(rerr, &berr) {
		diag.Truncated = true
		diag.TruncatedReason = berr.Reason
		rerr = nil
		for _, psec := range psecs {
			if psec != nil {
				psec.Truncated = true
			}
		}
	}
	res := &ProfileResult{PSECs: psecs, Run: run, Plan: plan, Diagnostics: diag, Dispatch: it.DispatchStats()}
	if rerr != nil {
		return res, rerr
	}
	if perr := runtime.Err(); perr != nil {
		return res, &DegradedError{Err: perr}
	}
	return res, nil
}

// Execute runs the program without instrumentation and returns the run
// summary (the overhead baseline).
func (p *Program) Execute(stdout io.Writer, maxSteps int64) (*interp.Result, error) {
	if _, err := instrumentOff(p); err != nil {
		return nil, err
	}
	it := interp.New(p.IR, interp.Options{Stdout: stdout, MaxSteps: maxSteps})
	return it.Run()
}

// instrumentOff strips all instrumentation from the program's IR.
func instrumentOff(p *Program) (*instrument.Plan, error) {
	return instrument.Apply(p.IR, instrument.Options{})
}

// MergePSECs combines the PSECs of the same ROI from multiple profiling
// runs per the §4.2 union rule.
func MergePSECs(runs ...*core.PSEC) *core.PSEC { return core.Merge(runs...) }

// MarshalPSECs encodes profiling results as JSON (one entry per ROI), the
// storage format for combining PSECs across program inputs.
func MarshalPSECs(psecs []*core.PSEC) ([]byte, error) {
	return json.MarshalIndent(psecs, "", "  ")
}

// UnmarshalPSECs decodes PSECs produced by MarshalPSECs.
func UnmarshalPSECs(data []byte) ([]*core.PSEC, error) {
	var out []*core.PSEC
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ROIByName returns the ROI with the given name.
func (p *Program) ROIByName(name string) (*ir.ROI, error) {
	for _, roi := range p.IR.ROIs {
		if roi.Name == name {
			return roi, nil
		}
	}
	return nil, fmt.Errorf("carmot: no ROI named %q", name)
}

package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"carmot/internal/faultinject"
	"carmot/internal/serve"
	"carmot/internal/testutil"
	"carmot/internal/wire"
)

// DaemonSchedule is a seed-derived chaos run against the serving layer:
// a fleet of concurrent clients posts profile requests at carmotd while
// pipeline faults fire underneath, one tenant deliberately exceeds its
// admission budget, and the server drains at the end. The invariants
// extend the pipeline set one level up:
//
//	termination  — every request gets a response; the drain completes
//	containment  — no goroutine outlives the drain
//	equivalence  — every 200/exit-0 response carries PSECs
//	               byte-identical to the fault-free reference for its
//	               source
//	honesty      — every non-OK response is structured: a known wire
//	               kind, an error message, and a retry hint on sheds
type DaemonSchedule struct {
	Seed    int64
	Clients int // concurrent clients
	PerClie int // requests per client
	Slots   int // server pool slots
	Faults  []Fault
}

func (s DaemonSchedule) String() string {
	return fmt.Sprintf("daemon seed=%d clients=%d per=%d slots=%d faults=%v",
		s.Seed, s.Clients, s.PerClie, s.Slots, s.Faults)
}

// daemonCorpus is the source mix clients draw from; every entry must
// profile cleanly so equivalence has a reference.
var daemonCorpus = []string{
	`int a[32];
int main() {
	int s = 0;
	#pragma carmot roi sum
	for (int i = 0; i < 32; i++) { a[i] = i; s = s + a[i]; }
	return s % 101;
}`,
	`int n = 24;
int fib[24];
int main() {
	fib[0] = 0; fib[1] = 1;
	#pragma carmot roi fib
	for (int i = 2; i < n; i++) { fib[i] = fib[i-1] + fib[i-2]; }
	return fib[n-1] % 97;
}`,
	`int m[16];
int out[16];
int main() {
	for (int i = 0; i < 16; i++) { m[i] = i * 3; }
	#pragma carmot roi scale
	for (int i = 0; i < 16; i++) { out[i] = m[i] * 2 + 1; }
	return out[7];
}`,
}

// NewDaemonSchedule derives a daemon schedule from seed. Faults stay on
// the panic/replay points — delays would only slow the (deadline-free)
// test — and shot numbers spread across the whole burst so some
// sessions fault mid-flight and others run clean.
func NewDaemonSchedule(seed int64) DaemonSchedule {
	r := rand.New(rand.NewSource(seed))
	s := DaemonSchedule{
		Seed:    seed,
		Clients: 4 + r.Intn(5),
		PerClie: 2 + r.Intn(3),
		Slots:   2 + r.Intn(6),
	}
	points := []string{"rt.worker.batch", "rt.post.apply", "rt.shard.apply", "rt.shard.replay"}
	nf := 1 + r.Intn(3)
	for i := 0; i < nf; i++ {
		f := Fault{Point: points[r.Intn(len(points))], Kind: KindPanic}
		ns := 1 + r.Intn(4)
		for j := 0; j < ns; j++ {
			f.Shots = append(f.Shots, int64(1+r.Intn(200)))
		}
		s.Faults = append(s.Faults, f)
	}
	return s
}

// DaemonOutcome is one request's classified response.
type DaemonOutcome struct {
	Source int // corpus index
	Status int
	Resp   wire.Summary
	PSECs  json.RawMessage
}

// DaemonResult is one executed daemon schedule.
type DaemonResult struct {
	Schedule DaemonSchedule
	Outcomes []DaemonOutcome
	Refs     [][]byte // fault-free PSECs per corpus entry
	Stats    serve.Stats
	DrainErr error
	Leaked   bool
}

// ExecuteDaemon runs the schedule: fault-free references first, then
// the concurrent burst with hooks armed, then a drain with the leak
// check.
func ExecuteDaemon(s DaemonSchedule) DaemonResult {
	baseline := testutil.Goroutines()
	srv := serve.New(serve.Config{
		PoolSlots:  s.Slots,
		RetryBase:  time.Millisecond,
		TenantRate: 1000, TenantBurst: 10000, // per-tenant shed tested separately
		// The reference pass would warm the result cache and the burst
		// would replay bodies without running — the faults would never
		// fire. Chaos wants every request to execute.
		ResultCacheBytes: -1,
	})
	h := srv.Handler()
	res := DaemonResult{Schedule: s}

	// Fault-free references (also warm the program cache, so the burst
	// exercises the hit path).
	for i, src := range daemonCorpus {
		o := postJSON(h, src, true)
		res.Refs = append(res.Refs, o.PSECs)
		if o.Status != http.StatusOK || o.Resp.ExitCode != 0 {
			res.Outcomes = append(res.Outcomes, o)
			res.Outcomes[len(res.Outcomes)-1].Source = i
			return res // corpus must be clean; Check will flag it
		}
	}

	defer faultinject.Reset()
	for _, f := range s.Faults {
		faultinject.Set(f.Point, faultinject.PanicOnShots(
			fmt.Sprintf("daemon chaos %s seed %d", f.Point, s.Seed), f.Shots...))
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))
	for c := 0; c < s.Clients; c++ {
		picks := make([]int, s.PerClie)
		for i := range picks {
			picks[i] = rng.Intn(len(daemonCorpus))
		}
		wg.Add(1)
		go func(picks []int) {
			defer wg.Done()
			for _, idx := range picks {
				o := postJSON(h, daemonCorpus[idx], true)
				o.Source = idx
				mu.Lock()
				res.Outcomes = append(res.Outcomes, o)
				mu.Unlock()
			}
		}(picks)
	}
	wg.Wait()
	faultinject.Reset()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res.DrainErr = srv.Drain(ctx)
	res.Stats = srv.Snapshot()
	res.Leaked = !testutil.SettleGoroutines(baseline, 5*time.Second)
	return res
}

// postJSON posts one profile request directly at the handler.
func postJSON(h http.Handler, src string, wantPSECs bool) DaemonOutcome {
	body, _ := json.Marshal(map[string]any{"source": src, "psecs": wantPSECs})
	req, _ := http.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	w := &memResponse{header: make(http.Header)}
	h.ServeHTTP(w, req)
	var parsed struct {
		wire.Summary
		PSECs json.RawMessage `json:"psecs"`
	}
	o := DaemonOutcome{Status: w.status}
	if err := json.Unmarshal(w.body.Bytes(), &parsed); err == nil {
		o.Resp = parsed.Summary
		o.PSECs = parsed.PSECs
	}
	return o
}

// memResponse is a minimal concurrent-safe ResponseWriter (httptest's
// recorder is fine too, but this avoids importing httptest outside
// _test files).
type memResponse struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (m *memResponse) Header() http.Header { return m.header }
func (m *memResponse) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return m.body.Write(p)
}
func (m *memResponse) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}

// knownKinds is the closed set of response kinds a daemon may emit.
var knownKinds = map[string]bool{
	wire.KindOK: true, wire.KindError: true, wire.KindUsage: true,
	wire.KindBudget: true, wire.KindShed: true, wire.KindDraining: true,
	wire.KindInternal: true,
}

// CheckDaemon verifies the daemon invariants on an executed schedule.
func CheckDaemon(res DaemonResult) error {
	s := res.Schedule
	if res.DrainErr != nil {
		return fmt.Errorf("%s: drain failed: %v", s, res.DrainErr)
	}
	if res.Leaked {
		return fmt.Errorf("%s: goroutines leaked past drain", s)
	}
	if len(res.Refs) != len(daemonCorpus) {
		return fmt.Errorf("%s: corpus reference run failed: %+v", s, res.Outcomes)
	}
	want := s.Clients * s.PerClie
	if len(res.Outcomes) != want {
		return fmt.Errorf("%s: %d responses for %d requests", s, len(res.Outcomes), want)
	}
	for i, o := range res.Outcomes {
		if !knownKinds[o.Resp.Kind] {
			return fmt.Errorf("%s: request %d: unknown kind %q (status %d)", s, i, o.Resp.Kind, o.Status)
		}
		switch o.Status {
		case http.StatusOK:
			switch o.Resp.ExitCode {
			case 0:
				if !bytes.Equal(o.PSECs, res.Refs[o.Source]) {
					return fmt.Errorf("%s: request %d: 200/exit-0 PSECs diverge from fault-free reference", s, i)
				}
			case 3:
				if o.Resp.Kind != wire.KindBudget {
					return fmt.Errorf("%s: request %d: exit 3 with kind %q", s, i, o.Resp.Kind)
				}
			default:
				return fmt.Errorf("%s: request %d: 200 with exit %d on a clean corpus", s, i, o.Resp.ExitCode)
			}
			if o.Resp.Attempts < 1 {
				return fmt.Errorf("%s: request %d: completed with %d attempts", s, i, o.Resp.Attempts)
			}
		case http.StatusInternalServerError:
			// Retries exhausted: must say so and carry the trail.
			if o.Resp.Kind != wire.KindInternal || o.Resp.Error == "" {
				return fmt.Errorf("%s: request %d: 500 without internal kind/error", s, i)
			}
		case http.StatusTooManyRequests:
			if o.Resp.Kind != wire.KindShed || o.Resp.RetryAfterMs <= 0 {
				return fmt.Errorf("%s: request %d: shed without structured hint", s, i)
			}
		default:
			return fmt.Errorf("%s: request %d: unexpected status %d (kind %q: %s)",
				s, i, o.Status, o.Resp.Kind, o.Resp.Error)
		}
	}
	if res.Stats.Sessions != 0 {
		return fmt.Errorf("%s: %d sessions still registered after drain", s, res.Stats.Sessions)
	}
	return nil
}

package rt

import "carmot/internal/core"

// The condense stage folds runs of access events into per-cell summaries
// while passing structural events through in order. Each worker owns one
// condenser whose scratch state is reused across batches: open-addressed
// index tables plus value slices, so the steady-state cost per condensed
// block is two exact-size output copies and zero map traffic. Table
// entries are epoch-stamped — advancing the epoch empties the table
// without touching memory, which is what makes per-block reuse free.

// tabEntry is one open-addressed slot: it maps key to an index into the
// condenser's scratch slice, and is live only while its epoch matches.
type tabEntry struct {
	key   uint64
	epoch uint32
	idx   int32
}

type condenser struct {
	epoch  uint32
	sumTab []tabEntry // keyed by cell address
	useTab []tabEntry // keyed by site<<32 | callstack
	sums   []accSummary
	uses   []useRec
	// Slab remainders for flushBlock's output copies: blocks are often
	// tiny (any structural event closes one), so carving exact-size
	// output slices out of chunked slabs replaces two mallocs per block
	// with two per few thousand summaries. Downstream stages only read
	// the handed-off slices, and the full-slice expressions below keep
	// neighboring carves unreachable even via append.
	sumSlab []accSummary
	useSlab []useRec
	// useCache short-circuits the use-table hash probe: loop bodies cycle
	// a handful of (site, callstack) keys, so a direct-mapped cache
	// indexed by site bits absorbs most lookups. Entries are epoch-
	// stamped like the tables, so reset() invalidates them for free.
	useCache [useCacheSize]useCacheSlot
}

const (
	useCacheSize = 16
	useCacheMask = useCacheSize - 1
)

type useCacheSlot struct {
	key   uint64
	epoch uint32
	idx   int32
}

func newCondenser() *condenser {
	return &condenser{
		epoch:  1, // 0 marks empty table slots
		sumTab: make([]tabEntry, 1024),
		useTab: make([]tabEntry, 256),
	}
}

// hash64 is a 64-bit finalizer (splitmix64-style) — cheap and good
// enough to keep linear probing short at <=50% load.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// condense runs one batch through the condenser. Within a block (the
// events between two structural events) every access shares one phase —
// the program thread only advances the phase at ROI boundaries, which
// are themselves structural events — so summaries key by address alone.
// items is an optional recycled output slice (len 0) to append into.
func (c *condenser) condense(evs []Event, cold []EventCold, dropUses bool, items []postItem) []postItem {
	if len(c.sums) > 0 || len(c.uses) > 0 {
		// A contained panic in a previous batch left a dirty block.
		c.reset()
	}
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case EvAccess:
			c.noteAccess(ev.Addr, ev.Seq, ev.Write, ev.Site, ev.CS, dropUses)
			continue
		case EvAccessRun:
			c.noteAccessRun(ev, coldOf(ev, cold), dropUses)
			continue
		}
		// Structural event: close the open summary block first so that
		// alloc/free/ROI boundaries interleave correctly.
		items = c.flushBlock(items)
		items = append(items, postItem{ev: *ev, cold: coldOf(ev, cold), hasEv: true})
	}
	return c.flushBlock(items)
}

func (c *condenser) noteAccess(addr, seq uint64, write bool, site int32, cs core.CallstackID, dropUses bool) {
	idx, hit := c.findSum(addr)
	if !hit {
		idx = int32(len(c.sums))
		c.sums = append(c.sums, accSummary{addr: addr, firstIsWrite: write, firstSeq: seq})
		c.insertSum(addr, idx)
	}
	s := &c.sums[idx]
	s.count++
	s.lastSeq = seq
	if write {
		s.hasWrite = true
	}
	if site >= 0 && !dropUses {
		c.noteUse(site, cs, addr, 1)
	}
}

// noteAccessRun expands a producer-coalesced run into the summaries its
// per-access stream would have produced. A same-cell run (stride 0) folds
// in O(1): the per-access update is associative over count/lastSeq/
// hasWrite, and a same-address use sample can only be added once.
func (c *condenser) noteAccessRun(ev *Event, cr EventCold, dropUses bool) {
	if cr.Aux == 0 {
		idx, hit := c.findSum(ev.Addr)
		if !hit {
			idx = int32(len(c.sums))
			c.sums = append(c.sums, accSummary{addr: ev.Addr, firstIsWrite: ev.Write, firstSeq: ev.Seq})
			c.insertSum(ev.Addr, idx)
		}
		s := &c.sums[idx]
		s.count += uint64(cr.N)
		s.lastSeq = ev.Seq + uint64(cr.N) - 1
		if ev.Write {
			s.hasWrite = true
		}
		if ev.Site >= 0 && !dropUses {
			c.noteUse(ev.Site, ev.CS, ev.Addr, uint64(cr.N))
		}
		return
	}
	addr, seq := ev.Addr, ev.Seq
	for i := int64(0); i < cr.N; i++ {
		idx, hit := c.findSum(addr)
		if !hit {
			idx = int32(len(c.sums))
			c.sums = append(c.sums, accSummary{addr: addr, firstIsWrite: ev.Write, firstSeq: seq})
			c.insertSum(addr, idx)
		}
		s := &c.sums[idx]
		s.count++
		s.lastSeq = seq
		if ev.Write {
			s.hasWrite = true
		}
		addr += cr.Aux
		seq++
	}
	if ev.Site < 0 || dropUses {
		return
	}
	// One use record covers the whole run — every access shares (site, cs),
	// so a single lookup plus a count bump and in-order sample appends
	// produce exactly the bytes the per-access path would have.
	u := &c.uses[c.lookupUse(ev.Site, ev.CS)]
	u.count += uint64(cr.N)
	addr = ev.Addr
	for i := int64(0); i < cr.N && int(u.nsamp) < maxUseSamples; i++ {
		u.addSample(addr)
		addr += cr.Aux
	}
}

func (c *condenser) noteUse(site int32, cs core.CallstackID, addr uint64, n uint64) {
	u := &c.uses[c.lookupUse(site, cs)]
	u.count += n
	u.addSample(addr)
}

// lookupUse resolves (site, cs) to a use-record index, creating the
// record on first sight. The direct-mapped cache in front of the hash
// table is indexed by site bits — within a loop body sites differ while
// the callstack repeats, so distinct keys land in distinct slots.
func (c *condenser) lookupUse(site int32, cs core.CallstackID) int32 {
	key := uint64(uint32(site))<<32 | uint64(uint32(cs))
	sl := &c.useCache[uint32(site)&useCacheMask]
	if sl.epoch == c.epoch && sl.key == key {
		return sl.idx
	}
	uidx, hit := c.findUse(key)
	if !hit {
		uidx = int32(len(c.uses))
		c.uses = append(c.uses, useRec{site: site, cs: cs})
		c.insertUse(key, uidx)
	}
	*sl = useCacheSlot{key: key, epoch: c.epoch, idx: uidx}
	return uidx
}

func (c *condenser) findSum(key uint64) (int32, bool) {
	mask := uint64(len(c.sumTab) - 1)
	for h := hash64(key) & mask; ; h = (h + 1) & mask {
		e := &c.sumTab[h]
		if e.epoch != c.epoch {
			return 0, false
		}
		if e.key == key {
			return e.idx, true
		}
	}
}

func (c *condenser) insertSum(key uint64, idx int32) {
	if len(c.sums)*2 > len(c.sumTab) {
		c.sumTab = growTab(c.sumTab, c.epoch)
	}
	insertTab(c.sumTab, c.epoch, key, idx)
}

func (c *condenser) findUse(key uint64) (int32, bool) {
	mask := uint64(len(c.useTab) - 1)
	for h := hash64(key) & mask; ; h = (h + 1) & mask {
		e := &c.useTab[h]
		if e.epoch != c.epoch {
			return 0, false
		}
		if e.key == key {
			return e.idx, true
		}
	}
}

func (c *condenser) insertUse(key uint64, idx int32) {
	if len(c.uses)*2 > len(c.useTab) {
		c.useTab = growTab(c.useTab, c.epoch)
	}
	insertTab(c.useTab, c.epoch, key, idx)
}

func insertTab(tab []tabEntry, epoch uint32, key uint64, idx int32) {
	mask := uint64(len(tab) - 1)
	h := hash64(key) & mask
	for tab[h].epoch == epoch {
		h = (h + 1) & mask
	}
	tab[h] = tabEntry{key: key, epoch: epoch, idx: idx}
}

func growTab(old []tabEntry, epoch uint32) []tabEntry {
	tab := make([]tabEntry, len(old)*2)
	for _, e := range old {
		if e.epoch == epoch {
			insertTab(tab, epoch, e.key, e.idx)
		}
	}
	return tab
}

// flushBlock copies the accumulated block into exact-size output slices
// and resets the scratch for the next block. Records copy by plain value
// (samples are inline), so the handed-off slices share nothing with the
// scratch.
func (c *condenser) flushBlock(items []postItem) []postItem {
	if len(c.sums) == 0 && len(c.uses) == 0 {
		return items
	}
	it := postItem{}
	if n := len(c.sums); n > 0 {
		if len(c.sumSlab) < n {
			c.sumSlab = make([]accSummary, max(4096, n))
		}
		it.sums = c.sumSlab[:n:n]
		c.sumSlab = c.sumSlab[n:]
		copy(it.sums, c.sums)
	}
	if n := len(c.uses); n > 0 {
		if len(c.useSlab) < n {
			c.useSlab = make([]useRec, max(512, n))
		}
		it.uses = c.useSlab[:n:n]
		c.useSlab = c.useSlab[n:]
		copy(it.uses, c.uses)
	}
	c.reset()
	return append(items, it)
}

func (c *condenser) reset() {
	c.sums = c.sums[:0]
	c.uses = c.uses[:0]
	c.epoch++
	if c.epoch == 0 { // epoch wrapped: physically clear the tables once
		for i := range c.sumTab {
			c.sumTab[i] = tabEntry{}
		}
		for i := range c.useTab {
			c.useTab[i] = tabEntry{}
		}
		c.useCache = [useCacheSize]useCacheSlot{}
		c.epoch = 1
	}
}

func containsU64(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Command carmot-bench regenerates the tables and figures of the paper's
// evaluation (§5) as text, mirroring the artifact's carmot_experiments
// script.
//
// Usage:
//
//	carmot-bench [-exp all|table1|accesses|fig6|fig7|fig8|fig9|fig10|fig11|stats|rt|interp|serve|fleet] [-threads N] [-scalediv D]
//
// The rt experiment benchmarks the event pipeline itself across
// (workers, shards) geometries and, with -rt-out, writes the
// machine-readable BENCH_rt.json regression report. The interp
// experiment benchmarks the execution engines (tree-walker vs bytecode,
// coalescing off/on) end to end and, with -interp-out, writes
// BENCH_interp.json. The serve experiment drives a concurrent request
// burst through the carmotd serving layer and, with -serve-out, writes
// the latency-percentile report BENCH_serve.json. The fleet experiment
// drives the same kind of burst through carmot-router fronting three
// live replicas — healthy, one dead, and one flapping — and merges a
// "fleet" section into the same BENCH_serve.json. The
// -cpuprofile/-memprofile flags wrap any experiment in a pprof capture
// ("profiling the profiler", see README.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"carmot/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, table1, accesses, fig6, fig7, fig8, fig9, fig10, fig11, stats, rt, interp, serve")
		threads    = flag.Int("threads", 24, "simulated thread count for Figure 6")
		scaleDiv   = flag.Int("scalediv", 1, "divide benchmark input scales by this factor (faster runs)")
		rtIters    = flag.Int("rt-iters", 20, "timed pipeline runs per geometry for -exp rt")
		rtOut      = flag.String("rt-out", "", "write the -exp rt report as JSON to this file (e.g. BENCH_rt.json)")
		interpIt   = flag.Int("interp-iters", 20, "timed runs per engine configuration for -exp interp")
		interpOut  = flag.String("interp-out", "", "write the -exp interp report as JSON to this file (e.g. BENCH_interp.json)")
		interpAst  = flag.Bool("interp-assert", false, "fail -exp interp if coalescing regresses >5% or the bytecode engine drops below 2.0x vs tree (the verify.sh perf smoke)")
		interpCnt  = flag.Bool("interp-counters", false, "with -exp interp, also print per-opcode dispatch and fall-through-pair tables (superinstruction candidates)")
		interpNoF  = flag.Bool("interp-nofuse", false, "with -interp-counters, count the unfused stream (shows the raw pair population)")
		serveReqs  = flag.Int("serve-requests", 1000, "request count for -exp serve")
		serveCli   = flag.Int("serve-clients", 32, "concurrent clients for -exp serve")
		serveOut   = flag.String("serve-out", "", "write the -exp serve report as JSON to this file (e.g. BENCH_serve.json)")
		fleetReqs  = flag.Int("fleet-requests", 400, "requests per scenario for -exp fleet")
		fleetCli   = flag.Int("fleet-clients", 16, "concurrent clients for -exp fleet")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the experiment to this file")
	)
	flag.Parse()
	cfg := harness.Config{Threads: *threads, ScaleDiv: *scaleDiv}
	iopts := interpOpts{iters: *interpIt, out: *interpOut, assert: *interpAst, counters: *interpCnt, nofuse: *interpNoF}
	err := profiled(*cpuProfile, *memProfile, func() error {
		return run(*exp, cfg, *rtIters, *rtOut, iopts, *serveCli, *serveReqs, *serveOut, *fleetCli, *fleetReqs)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carmot-bench:", err)
		os.Exit(1)
	}
}

// profiled runs fn wrapped in the requested pprof captures, making sure
// the CPU profile is stopped and flushed before the process exits.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := fn()
	if memPath != "" {
		f, merr := os.Create(memPath)
		if merr != nil {
			return merr
		}
		runtime.GC() // settle the heap so the profile shows live data
		merr = pprof.WriteHeapProfile(f)
		f.Close()
		if merr != nil {
			return merr
		}
	}
	return err
}

// interpOpts bundles the -exp interp flags.
type interpOpts struct {
	iters    int
	out      string
	assert   bool
	counters bool
	nofuse   bool
}

func run(exp string, cfg harness.Config, rtIters int, rtOut string, iopts interpOpts, serveClients, serveReqs int, serveOut string, fleetClients, fleetReqs int) error {
	all := exp == "all"
	ran := false
	if exp == "rt" { // pipeline microbenchmark; deliberately not part of "all"
		rep, err := harness.RTBench(rtIters)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderRTBench(rep))
		if rtOut != "" {
			data, err := harness.MarshalRTBench(rep)
			if err != nil {
				return err
			}
			if err := os.WriteFile(rtOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", rtOut)
		}
		return nil
	}
	if exp == "interp" { // engine microbenchmark; deliberately not part of "all"
		if iopts.counters {
			tables, err := harness.InterpCounters(iopts.nofuse)
			if err != nil {
				return err
			}
			fmt.Println(tables)
		}
		rep, err := harness.InterpBench(iopts.iters)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderInterpBench(rep))
		if iopts.out != "" {
			data, err := harness.MarshalInterpBench(rep)
			if err != nil {
				return err
			}
			if err := os.WriteFile(iopts.out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", iopts.out)
		}
		if iopts.assert {
			if err := harness.AssertInterpBench(rep); err != nil {
				return err
			}
			fmt.Println("interp bench assertions passed (coalesce ≤5% of base, bytecode ≥2.0x)")
		}
		return nil
	}
	if exp == "serve" { // serving-layer latency burst; deliberately not part of "all"
		rep, err := harness.ServeBench(serveClients, serveReqs)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderServeBench(rep))
		if serveOut != "" {
			data, err := harness.MarshalServeBench(rep)
			if err != nil {
				return err
			}
			if err := os.WriteFile(serveOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", serveOut)
		}
		return nil
	}
	if exp == "fleet" { // routed-fleet failure latency; deliberately not part of "all"
		rep, err := harness.FleetBench(fleetClients, fleetReqs)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFleetBench(rep))
		if serveOut != "" {
			prev, _ := os.ReadFile(serveOut) // absent file = fresh report
			data, err := harness.MergeFleetSection(prev, rep)
			if err != nil {
				return err
			}
			if err := os.WriteFile(serveOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (fleet section)\n", serveOut)
		}
		return nil
	}
	if all || exp == "table1" {
		ran = true
		fmt.Println(harness.Table1())
	}
	if all || exp == "accesses" {
		ran = true
		rows, geo, err := harness.Accesses(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderAccesses(rows, geo))
	}
	if all || exp == "fig6" {
		ran = true
		rows, err := harness.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig6(rows, cfg.Threads))
	}
	if all || exp == "fig7" {
		ran = true
		rows, err := harness.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 7: OpenMP use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "fig8" {
		ran = true
		rows, err := harness.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig8(rows))
	}
	if all || exp == "fig9" {
		ran = true
		res, err := harness.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFig9(res))
	}
	if all || exp == "fig10" {
		ran = true
		rows, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 10: smart-pointer use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "fig11" {
		ran = true
		rows, err := harness.Fig11(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderOverhead("Figure 11: STATS use-case overhead (naive vs CARMOT)", rows))
	}
	if all || exp == "stats" {
		ran = true
		cmps, err := harness.CompareStats(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderStats(cmps))
	}
	if all || exp == "verify" {
		ran = true
		rows, err := harness.VerifyAll(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderVerify(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// Package pinsim is CARMOT-Go's Pin analog (§4.5). Precompiled native
// functions (internal/native) have no IR the compiler could instrument,
// yet their PSE activity must reach the runtime for the PSEC to be
// complete. When a call site may transfer control into memory-accessing
// precompiled code, the interpreter wraps the native environment in a
// Tracer: every cell the native code touches is reported to the runtime,
// at a much higher per-access cost than compiler instrumentation — the
// "costly but necessary" path the paper describes, and the reason the
// Pin-gating optimization (§4.4 opt 6) pays off.
package pinsim

import (
	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/native"
	"carmot/internal/rt"
)

// Tracer is a native.Env that shadows another Env, reporting every memory
// access to the profiling runtime the way the paper's Pintool (built on
// Pinatrace) communicates with the CARMOT runtime.
type Tracer struct {
	inner native.Env
	rt    *rt.Runtime
	cs    core.CallstackID

	reads  uint64
	writes uint64
}

// NewTracer wraps inner so accesses flow to the runtime under the given
// call stack.
func NewTracer(inner native.Env, r *rt.Runtime, cs core.CallstackID) *Tracer {
	return &Tracer{inner: inner, rt: r, cs: cs}
}

// LoadCell traces and forwards a read. Binary-level tracing has no source
// mapping, so the site is -1 ("precompiled code").
func (t *Tracer) LoadCell(addr uint64) uint64 {
	faultinject.Fire("pinsim.trace")
	t.reads++
	t.rt.EmitAccess(addr, false, -1, t.cs)
	return t.inner.LoadCell(addr)
}

// StoreCell traces and forwards a write.
func (t *Tracer) StoreCell(addr uint64, val uint64) {
	faultinject.Fire("pinsim.trace")
	t.writes++
	t.rt.EmitAccess(addr, true, -1, t.cs)
	t.inner.StoreCell(addr, val)
}

// Print forwards program output.
func (t *Tracer) Print(s string) { t.inner.Print(s) }

// RandState forwards the PRNG state.
func (t *Tracer) RandState() *uint64 { return t.inner.RandState() }

// Counts returns the number of traced reads and writes.
func (t *Tracer) Counts() (reads, writes uint64) { return t.reads, t.writes }

// Parallelize: the full §5.1 workflow on a PARSEC-style pricing workload.
// CARMOT profiles the development-size input, generates the parallel-for
// recommendation, and the multicore simulator compares the serial run,
// the hand-written pragma, and the CARMOT-induced parallelism on the
// production-size input.
//
// Run with: go run ./examples/parallelize
package main

import (
	"fmt"
	"log"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/harness"
)

func main() {
	b, err := bench.ByName("blackscholes")
	if err != nil {
		log.Fatal(err)
	}
	copts := carmot.CompileOptions{ProfileOmpRegions: true}

	// 1. Profile at development scale (the paper uses test/class A/
	//    simsmall inputs for PSEC).
	dev, err := carmot.Compile("blackscholes.mc", b.Source(b.DevScale), copts)
	if err != nil {
		log.Fatal(err)
	}
	devRes, err := dev.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Recommendations from the development-input profile ===")
	recsByID := harness.RecommendAll(dev, devRes)
	for _, roi := range dev.ROIs() {
		if rec, ok := recsByID[roi.ID]; ok {
			fmt.Print(rec.Report())
		}
	}

	// 2. Simulate production-scale execution (reference inputs) under the
	//    original and the CARMOT-induced parallelism.
	prod, err := carmot.Compile("blackscholes.mc", b.Source(b.ProdScale/4), copts)
	if err != nil {
		log.Fatal(err)
	}
	const threads = 24
	orig, err := prod.SimulateOriginal(threads, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := prod.SimulateCarmot(threads, harness.MapRecommendations(prod, recsByID), nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Simulated speedup on %d threads (production input) ===\n", threads)
	fmt.Printf("original (hand-written pragma): %.2fx\n", orig.Speedup())
	fmt.Printf("CARMOT-induced parallelism:     %.2fx\n", cm.Speedup())
}

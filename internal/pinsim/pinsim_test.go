package pinsim_test

import (
	"strings"
	"testing"

	"carmot"
	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/native"
	"carmot/internal/pinsim"
	"carmot/internal/rt"
	"carmot/internal/testutil"
)

type memEnv struct {
	mem  map[uint64]uint64
	rand uint64
}

func (m *memEnv) LoadCell(addr uint64) uint64       { return m.mem[addr] }
func (m *memEnv) StoreCell(addr uint64, val uint64) { m.mem[addr] = val }
func (m *memEnv) Print(string)                      {}
func (m *memEnv) RandState() *uint64                { return &m.rand }

// TestTracerReportsAccesses checks that precompiled-code accesses reach
// the runtime with binary-level attribution (site -1) and classify PSEs.
func TestTracerReportsAccesses(t *testing.T) {
	r := rt.New(rt.Config{
		Profile: rt.ProfileFull,
		ROIs:    []rt.ROIMeta{{ID: 0, Name: "z"}},
	})
	inner := &memEnv{mem: map[uint64]uint64{100: 7, 101: 8}}
	r.EmitAlloc(100, 2, 0, &rt.AllocMeta{Kind: core.PSEHeap, Name: "src", Pos: "lib"})
	r.EmitAlloc(200, 2, 0, &rt.AllocMeta{Kind: core.PSEHeap, Name: "dst", Pos: "lib"})
	r.BeginROI(0)
	tr := pinsim.NewTracer(inner, r, 0)
	native.Lookup("memcpy_cells").Impl(tr, []uint64{200, 100, 2})
	r.EndROI(0)
	reads, writes := tr.Counts()
	if reads != 2 || writes != 2 {
		t.Errorf("counts = %d reads, %d writes", reads, writes)
	}
	if inner.mem[200] != 7 || inner.mem[201] != 8 {
		t.Error("tracer must forward the copy")
	}
	psec := r.Finish()[0]
	src := psec.ElementByName("src")
	dst := psec.ElementByName("dst")
	if src == nil || src.Sets != core.SetInput {
		t.Errorf("src = %v, want Input", src)
	}
	if dst == nil || dst.Sets != core.SetOutput {
		t.Errorf("dst = %v, want Output", dst)
	}
}

// TestTracerFaultDegradesRun: a fault inside the native-code tracer
// (the Pin analog) must degrade the profiling run — an error plus a
// salvaged partial result and a cleanly drained pipeline — never crash
// the process. The tracer runs on the program thread, so containment
// here comes from the interpreter's top-level recovery, not the
// pipeline supervisors.
func TestTracerFaultDegradesRun(t *testing.T) {
	const src = `
extern int memcpy_cells(int* dst, int* src, int n);
int* src_;
int* dst_;
int N = 8;
int main() {
	src_ = malloc(N);
	dst_ = malloc(N);
	for (int i = 0; i < N; i++) { src_[i] = i; }
	#pragma carmot roi copy
	{
		memcpy_cells(dst_, src_, N);
	}
	return dst_[3];
}
`
	prog, err := carmot.Compile("pinfault.mc", src, carmot.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := testutil.Goroutines()
	defer faultinject.Reset()
	faultinject.Set("pinsim.trace", faultinject.CountdownPanic(3, "injected tracer fault"))
	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP, Recover: true})
	if err == nil {
		t.Fatal("tracer fault produced no error")
	}
	if !strings.Contains(err.Error(), "interpreter internal fault") {
		t.Errorf("err = %v, want an interpreter internal fault", err)
	}
	if res == nil || res.Run == nil {
		t.Fatal("no partial result salvaged from the faulted run")
	}
	if len(res.PSECs) == 0 {
		t.Error("faulted run returned no PSEC slots")
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestTracerForwardsEnvServices: print and PRNG state pass through.
func TestTracerForwardsEnvServices(t *testing.T) {
	r := rt.New(rt.Config{ROIs: []rt.ROIMeta{{ID: 0}}})
	inner := &memEnv{mem: map[uint64]uint64{}, rand: 5}
	tr := pinsim.NewTracer(inner, r, 0)
	if tr.RandState() != &inner.rand {
		t.Error("RandState must forward to the inner env")
	}
	tr.Print("x")
	r.Finish()
}

// Cache keys. Both serving-layer caches are content-addressed, and both
// keys are built from exhaustive reflection-based fingerprints instead
// of hand-listed fields: a hand-written list silently excludes any field
// the fingerprinted struct gains later, which makes distinct programs
// (or distinct profile configurations) share a cache slot. The
// reflection walk covers every exported field and panics on kinds it
// cannot canonicalize, and key_test.go fails the build the moment a
// fingerprinted struct grows a field the walk (or the serving layer's
// covered/exempt classification) does not account for.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"

	"carmot"
)

// cacheKey derives the program-cache key: the hash of the filename, the
// full CompileOptions fingerprint, and the source text. Requests for
// the same source under different compile options are distinct programs
// and must not share a cache slot.
func cacheKey(filename, source string, opts carmot.CompileOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "prog\x00%s\x00", filename)
	fingerprint(h, reflect.ValueOf(opts))
	io.WriteString(h, "\x00")
	io.WriteString(h, source)
	return hex.EncodeToString(h.Sum(nil))
}

// resultKeyParts is the exhaustive set of profile-shaping request
// fields folded into the result-cache key on top of the program key
// (which already covers filename, source, and every compile option).
// Every field here changes the wire-encoded result; request fields that
// cannot change a *cacheable* result are exempted — and enumerated — in
// key_test.go, so adding a profileRequest field without classifying it
// breaks the test.
type resultKeyParts struct {
	Use       carmot.UseCase
	Naive     bool
	MaxSteps  int64
	MaxEvents uint64
	MaxCells  int64
	PSECs     bool
	Reports   bool
}

// resultKey derives the result-cache key: program key (program hash,
// compile-option fingerprint) + profile-option fingerprint. The input
// fingerprint is the source text itself — MiniC programs take no
// external input — which the program key already covers.
func resultKey(progKey string, use carmot.UseCase, req *profileRequest) string {
	h := sha256.New()
	fmt.Fprintf(h, "result\x00%s\x00", progKey)
	fingerprint(h, reflect.ValueOf(resultKeyParts{
		Use:       use,
		Naive:     req.Naive,
		MaxSteps:  req.MaxSteps,
		MaxEvents: req.MaxEvents,
		MaxCells:  req.MaxCells,
		PSECs:     req.PSECs,
		Reports:   req.Reports,
	}))
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprint writes a canonical encoding of v — field names, kinds,
// and values, recursively for nested structs — to h. It panics on field
// kinds it cannot canonicalize (funcs, channels, maps, interfaces):
// failing loudly at first use beats silently excluding a field from a
// cache key.
func fingerprint(h io.Writer, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(h, "struct %s{", t.Name())
		for i := 0; i < t.NumField(); i++ {
			fmt.Fprintf(h, "%s=", t.Field(i).Name)
			fingerprint(h, v.Field(i))
			io.WriteString(h, ";")
		}
		io.WriteString(h, "}")
	case reflect.Pointer:
		if v.IsNil() {
			io.WriteString(h, "nil")
			return
		}
		io.WriteString(h, "&")
		fingerprint(h, v.Elem())
	case reflect.Bool:
		fmt.Fprintf(h, "%t", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(h, "%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(h, "%d", v.Uint())
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(h, "%g", v.Float())
	case reflect.String:
		fmt.Fprintf(h, "%q", v.String())
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(h, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			fingerprint(h, v.Index(i))
			io.WriteString(h, ",")
		}
		io.WriteString(h, "]")
	default:
		panic(fmt.Sprintf("serve: fingerprint: unsupported kind %s (field of %s)", v.Kind(), v.Type()))
	}
}

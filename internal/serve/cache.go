package serve

import (
	"container/list"
	"sync"

	"carmot"
)

// cacheEntry is one compiled program, or one compile in flight. Waiters
// block on ready; prog/err are immutable once ready is closed.
//
// run is a capacity-1 token granting the exclusive right to Profile the
// shared program: carmot.Profile instruments the program's IR in place,
// so two sessions may never run one Program concurrently. A session
// that loses the token race compiles a private copy instead of queueing
// (see Server.leaseProgram) — the cache trades compile work for
// concurrency, never correctness.
type cacheEntry struct {
	ready chan struct{}
	prog  *carmot.Program
	err   error
	run   chan struct{}
}

// tryRun claims the entry's exclusive run token without blocking.
func (e *cacheEntry) tryRun() (release func(), ok bool) {
	select {
	case e.run <- struct{}{}:
		return func() { <-e.run }, true
	default:
		return nil, false
	}
}

// programCache is an LRU of compiled programs with singleflight
// semantics: concurrent requests for the same key share one compile
// instead of racing N frontend passes. Compile failures are not
// retained — the next request retries, so a transient failure (or a
// corrected source under the same key, which cannot happen with content
// hashing but costs nothing to handle) does not stick.
type programCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // key → *cacheSlot element
	order   *list.List               // front = most recent

	hits, misses uint64
}

type cacheSlot struct {
	key   string
	entry *cacheEntry
	// settled flips once the slot's compile finished. Unsettled slots are
	// pinned: evicting one would drop the key from the map while its
	// compile is still in flight, so a concurrent getter for the same hot
	// key would start a duplicate compile instead of joining — the LRU may
	// temporarily exceed cap rather than unpin them.
	settled bool
}

func newProgramCache(capacity int) *programCache {
	if capacity < 1 {
		capacity = 1
	}
	return &programCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the (settled) cache entry for key, compiling at most once
// per key across concurrent callers. hit reports whether a previous
// compile was reused (in-flight compiles joined by this caller count as
// hits). The returned entry's prog/err are ready to read.
func (c *programCache) get(key string, compile func() (*carmot.Program, error)) (_ *cacheEntry, hit bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheSlot).entry
		c.hits++
		c.mu.Unlock()
		<-entry.ready
		return entry, true
	}
	entry := &cacheEntry{ready: make(chan struct{}), run: make(chan struct{}, 1)}
	slot := &cacheSlot{key: key, entry: entry}
	el := c.order.PushFront(slot)
	c.entries[key] = el
	c.misses++
	c.trimLocked()
	c.mu.Unlock()

	entry.prog, entry.err = compile()
	close(entry.ready)
	// Settle the slot: it becomes evictable, failures are dropped, and
	// any residency deferred while compiles were pinned is trimmed now.
	c.mu.Lock()
	slot.settled = true
	if cur, ok := c.entries[key]; ok && cur == el {
		if entry.err != nil {
			// Do not retain failures; the next request retries.
			c.order.Remove(el)
			delete(c.entries, key)
		}
	}
	c.trimLocked()
	c.mu.Unlock()
	return entry, false
}

// trimLocked evicts settled LRU victims until residency is back under
// cap, skipping pinned (in-flight) slots. When every over-cap slot is
// in flight the cache rides above cap until those compiles settle.
func (c *programCache) trimLocked() {
	for c.order.Len() > c.cap {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*cacheSlot).settled {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		c.order.Remove(victim)
		delete(c.entries, victim.Value.(*cacheSlot).key)
	}
}

// stats returns hit/miss counts and the current resident size.
func (c *programCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

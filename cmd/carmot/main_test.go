package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const demoSrc = `int N = 16;
float* a;
float total = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		total = total + t;
		a[i] = t;
	}
	return total;
}
`

const spinSrc = `int main() {
	int x = 0;
	#pragma carmot roi spin
	while (1) { x = x + 1; }
	return x;
}
`

func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeDemo(t *testing.T) string { return writeSrc(t, "demo.mc", demoSrc) }

func defaultOpts() cliOptions {
	return cliOptions{use: "openmp", ompROIs: true, dumpPSEC: true, maxSteps: 100_000_000}
}

func TestCLIModes(t *testing.T) {
	path := writeDemo(t)
	cases := []struct {
		name     string
		mutate   func(*cliOptions)
		wantCode int
	}{
		{"recommend-openmp", func(o *cliOptions) {}, exitOK},
		{"recommend-task", func(o *cliOptions) { o.use = "task" }, exitOK},
		{"recommend-stats", func(o *cliOptions) { o.use = "stats" }, exitOK},
		{"smartptr-whole", func(o *cliOptions) { o.use = "smartptr"; o.whole = true }, exitOK},
		{"naive", func(o *cliOptions) { o.naive = true; o.dumpPSEC = false }, exitOK},
		{"dump-ir", func(o *cliOptions) { o.dumpIR = true }, exitOK},
		{"run", func(o *cliOptions) { o.run = true; o.dumpPSEC = false }, exitOK},
		{"annotate", func(o *cliOptions) { o.annotate = true }, exitOK},
		{"json", func(o *cliOptions) { o.asJSON = true }, exitOK},
		{"diag", func(o *cliOptions) { o.diag = true }, exitOK},
		{"budgeted-ok", func(o *cliOptions) { o.timeout = time.Minute; o.maxEvents = 1 << 40 }, exitOK},
		{"bad-use", func(o *cliOptions) { o.use = "frob" }, exitUsage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := defaultOpts()
			c.mutate(&o)
			var out bytes.Buffer
			code, err := runCLI(&out, path, o)
			if code != c.wantCode {
				t.Errorf("exit code = %d (err=%v), want %d", code, err, c.wantCode)
			}
			if (err != nil) != (c.wantCode == exitUsage) {
				t.Errorf("err = %v with code %d", err, code)
			}
		})
	}
}

func TestCLIDiagnosticsPrinted(t *testing.T) {
	path := writeDemo(t)
	o := defaultOpts()
	o.diag = true
	var out bytes.Buffer
	if code, err := runCLI(&out, path, o); code != exitOK || err != nil {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "diagnostics: {") ||
		!strings.Contains(out.String(), `"Events"`) {
		t.Errorf("diagnostics JSON missing from output:\n%s", out.String())
	}
}

// TestCLIBudgetExitCode: an infinite-loop program under -timeout exits 3
// and still prints the partial PSEC plus diagnostics.
func TestCLIBudgetExitCode(t *testing.T) {
	path := writeSrc(t, "spin.mc", spinSrc)
	o := defaultOpts()
	o.maxSteps = 0
	o.timeout = 150 * time.Millisecond
	var out bytes.Buffer
	start := time.Now()
	code, err := runCLI(&out, path, o)
	if code != exitBudget || err != nil {
		t.Fatalf("code=%d err=%v, want %d", code, err, exitBudget)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("budgeted run took %v; deadline not enforced", el)
	}
	got := out.String()
	if !strings.Contains(got, "truncated") || !strings.Contains(got, "diagnostics: {") {
		t.Errorf("partial diagnostics missing on exit 3:\n%s", got)
	}
}

// Step budgets take the same partial-output path as wall deadlines.
func TestCLIStepBudgetExitCode(t *testing.T) {
	path := writeSrc(t, "spin.mc", spinSrc)
	o := defaultOpts()
	o.maxSteps = 50_000
	var out bytes.Buffer
	code, err := runCLI(&out, path, o)
	if code != exitBudget || err != nil {
		t.Fatalf("code=%d err=%v, want %d", code, err, exitBudget)
	}
	if !strings.Contains(out.String(), "step limit") {
		t.Errorf("truncation reason missing:\n%s", out.String())
	}
}

func TestCLIMissingFile(t *testing.T) {
	var out bytes.Buffer
	if code, err := runCLI(&out, "/does/not/exist.mc", defaultOpts()); code != exitError || err == nil {
		t.Errorf("missing file: code=%d err=%v", code, err)
	}
}

func TestCLINoROI(t *testing.T) {
	path := writeSrc(t, "plain.mc", "int main() { return 0; }\n")
	var out bytes.Buffer
	if code, err := runCLI(&out, path, defaultOpts()); code != exitError || err == nil {
		t.Errorf("program without ROIs: code=%d err=%v", code, err)
	}
}

package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"carmot/internal/serve"
	"carmot/internal/testutil"
	"carmot/internal/wire"
)

const demoSrc = `int N = 64;
int a[64];
int main() {
	int s = 0;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		a[i] = i * 2;
		s = s + a[i];
	}
	return s % 251;
}
`

// fleet is a test fleet: n real serve.Servers behind httptest
// listeners plus a router with probing disabled (tests drive ProbeNow).
type fleet struct {
	servers []*serve.Server
	tss     []*httptest.Server
	rt      *Router
}

func newFleet(t *testing.T, n int, rcfg Config) *fleet {
	t.Helper()
	// Registered before the teardown cleanup below, so it runs last —
	// after the router and every replica are gone.
	baseline := testutil.Goroutines()
	t.Cleanup(func() { testutil.WaitGoroutines(t, baseline) })
	f := &fleet{}
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{TenantRate: 10000, TenantBurst: 10000})
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.tss = append(f.tss, ts)
		rcfg.Replicas = append(rcfg.Replicas, ts.URL)
	}
	if rcfg.ProbeInterval == 0 {
		rcfg.ProbeInterval = -1
	}
	rt, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	t.Cleanup(func() {
		rt.Close()
		for i, ts := range f.tss {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			f.servers[i].Drain(ctx)
			cancel()
		}
	})
	return f
}

// post sends one profile request through the router handler.
func (f *fleet) post(t *testing.T, src, tenant string, query string) (*httptest.ResponseRecorder, wire.RouteInfo) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"source": src, "psecs": true})
	r := httptest.NewRequest(http.MethodPost, "/v1/profile"+query, bytes.NewReader(body))
	if tenant != "" {
		r.Header.Set("X-Carmot-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	f.rt.Handler().ServeHTTP(w, r)
	ri, err := wire.ParseRouteInfo(w.Header().Get(wire.RouteHeader))
	if err != nil {
		t.Fatalf("bad %s header %q: %v", wire.RouteHeader, w.Header().Get(wire.RouteHeader), err)
	}
	return w, ri
}

// TestRouterAffinity: the same (tenant, program) lands on the same
// replica every time, first try, and the body is exactly what a direct
// replica request produces.
func TestRouterAffinity(t *testing.T) {
	f := newFleet(t, 3, Config{})

	w0, ri0 := f.post(t, demoSrc, "alice", "")
	if w0.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w0.Code, w0.Body.Bytes())
	}
	if ri0.Attempts != 1 || ri0.Replica == "" || ri0.Failover != "" {
		t.Fatalf("first route = %+v, want 1 clean attempt", ri0)
	}
	for i := 0; i < 5; i++ {
		w, ri := f.post(t, demoSrc, "alice", "")
		if w.Code != http.StatusOK || ri.Replica != ri0.Replica || ri.Attempts != 1 {
			t.Fatalf("repeat %d: status %d route %+v, want same replica %s first-try", i, w.Code, ri, ri0.Replica)
		}
	}
	// The home replica served all 6 requests; the others saw none.
	st := f.rt.Snapshot()
	var total uint64
	for _, rs := range st.Replicas {
		total += rs.Requests
		if rs.ID != ri0.Replica && rs.Requests != 0 {
			t.Errorf("replica %s saw %d requests for a single hot key", rs.ID, rs.Requests)
		}
	}
	if total != 6 || st.Failovers != 0 {
		t.Errorf("stats = %+v, want 6 requests all on the home replica", st)
	}
}

// TestRouterFailover: with the home replica dead, the request fails
// over along the ring and the response body is byte-identical to one
// computed by the surviving replica directly — failover is visible
// only in the route header.
func TestRouterFailover(t *testing.T) {
	f := newFleet(t, 3, Config{RetryBase: time.Millisecond, BreakerThreshold: 2})

	_, ri0 := f.post(t, demoSrc, "alice", "")
	home := ri0.Replica
	// Kill the home replica's listener.
	for i, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home {
			f.tss[i].Close()
		}
	}
	w, ri := f.post(t, demoSrc, "alice", "")
	if w.Code != http.StatusOK {
		t.Fatalf("failover request: status %d body %s", w.Code, w.Body.Bytes())
	}
	if ri.Replica == home || ri.Attempts < 2 || ri.Failover == "" {
		t.Fatalf("route = %+v, want a recorded failover off %s", ri, home)
	}
	// Byte-identity: the routed body equals a direct request to the
	// winning replica (program cache makes the rerun deterministic).
	var direct *httptest.ResponseRecorder
	for i, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == ri.Replica {
			body, _ := json.Marshal(map[string]any{"source": demoSrc, "psecs": true})
			r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
			r.Header.Set("X-Carmot-Tenant", "alice")
			direct = httptest.NewRecorder()
			f.servers[i].Handler().ServeHTTP(direct, r)
		}
	}
	if direct == nil || !bytes.Equal(w.Body.Bytes(), direct.Body.Bytes()) {
		t.Error("routed body diverges from the winning replica's direct body")
	}

	// Repeats trip the dead replica's breaker; once open, requests skip
	// it without an attempt (first-try routing to the new home).
	for i := 0; i < 3; i++ {
		f.post(t, demoSrc, "alice", "")
	}
	w2, ri2 := f.post(t, demoSrc, "alice", "")
	if w2.Code != http.StatusOK || ri2.Attempts != 1 {
		t.Errorf("post-breaker route = %+v (status %d), want first-try on the failover target", ri2, w2.Code)
	}
	var sawTrip bool
	for _, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home && rs.BreakerTrips > 0 {
			sawTrip = true
		}
	}
	if !sawTrip {
		t.Error("dead home replica never tripped its breaker")
	}
}

// TestRouterDrainAwareness: a draining replica leaves the rotation on
// the next probe without a breaker strike, and comes back when the
// probe sees it healthy again.
func TestRouterDrainAwareness(t *testing.T) {
	f := newFleet(t, 3, Config{})

	_, ri0 := f.post(t, demoSrc, "bob", "")
	home := ri0.Replica
	var homeIdx int
	for i, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home {
			homeIdx = i
		}
	}
	// Drain the home replica and let the prober notice.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.servers[homeIdx].Drain(ctx); err != nil {
		t.Fatal(err)
	}
	f.rt.ProbeNow()

	w, ri := f.post(t, demoSrc, "bob", "")
	if w.Code != http.StatusOK || ri.Replica == home {
		t.Fatalf("drain route = %+v (status %d), want a different replica", ri, w.Code)
	}
	if ri.Attempts != 1 {
		t.Errorf("draining replica was attempted (route %+v); probes should have removed it", ri)
	}
	for _, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home {
			if !rs.Draining {
				t.Error("home replica not marked draining")
			}
			if rs.BreakerTrips != 0 || rs.Breaker != "closed" {
				t.Errorf("draining tripped the breaker: %+v", rs)
			}
		}
	}
}

// TestRouterInBandDrainFailover: without any probe round, a 503
// draining response fails over in-band, marks the replica draining,
// and leaves its breaker alone.
func TestRouterInBandDrainFailover(t *testing.T) {
	f := newFleet(t, 3, Config{RetryBase: time.Millisecond})

	_, ri0 := f.post(t, demoSrc, "carol", "")
	home := ri0.Replica
	for i, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := f.servers[i].Drain(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, ri := f.post(t, demoSrc, "carol", "")
	if w.Code != http.StatusOK || ri.Replica == home || ri.Attempts < 2 {
		t.Fatalf("in-band drain route = %+v (status %d), want failover off %s", ri, w.Code, home)
	}
	if !strings.Contains(ri.Failover, "draining") {
		t.Errorf("failover reason %q does not mention draining", ri.Failover)
	}
	for _, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home && (rs.BreakerTrips != 0 || !rs.Draining) {
			t.Errorf("in-band drain mishandled: %+v", rs)
		}
	}
}

// TestRouterShedPassthrough: a tenant's 429 from its home replica is
// relayed, not failed over — otherwise a fleet of N replicas would
// multiply every tenant's admission budget by N.
func TestRouterShedPassthrough(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	// Tiny admission budget: 1 req/s, burst 1.
	f := &fleet{}
	var cfg Config
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{TenantRate: 1, TenantBurst: 1})
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.tss = append(f.tss, ts)
		cfg.Replicas = append(cfg.Replicas, ts.URL)
	}
	cfg.ProbeInterval = -1
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	defer func() {
		rt.Close()
		for i, ts := range f.tss {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			f.servers[i].Drain(ctx)
			cancel()
		}
	}()

	w0, _ := f.post(t, demoSrc, "dave", "")
	if w0.Code != http.StatusOK {
		t.Fatalf("first request: status %d", w0.Code)
	}
	w1, ri := f.post(t, demoSrc, "dave", "")
	if w1.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", w1.Code)
	}
	if ri.Attempts != 1 {
		t.Errorf("shed was failed over: route %+v", ri)
	}
	var resp wire.Summary
	if err := json.Unmarshal(w1.Body.Bytes(), &resp); err != nil || resp.Kind != wire.KindShed || resp.RetryAfterMs <= 0 {
		t.Errorf("shed body lost structure through the router: %s", w1.Body.Bytes())
	}
}

// TestRouterHedge: when the home replica sits on a request past the
// hedge delay, a second replica races it and wins; the route header
// says so.
func TestRouterHedge(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)

	release := make(chan struct{})
	var slowHits atomic.Int32
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer slow.Close()
	defer close(release)
	fast := serve.New(serve.Config{TenantRate: 10000, TenantBurst: 10000})
	fastTS := httptest.NewServer(fast.Handler())
	defer func() {
		fastTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		fast.Drain(ctx)
		cancel()
	}()

	// Try tenant keys until one homes on the slow replica, so the hedge
	// is what saves the request.
	rt, err := New(Config{
		Replicas:      []string{slow.URL, fastTS.URL},
		ProbeInterval: -1,
		Hedge:         20 * time.Millisecond,
		RetryBase:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var hedgedRoute *wire.RouteInfo
	for i := 0; i < 16 && hedgedRoute == nil; i++ {
		tenant := fmt.Sprintf("hedge-%d", i)
		before := slowHits.Load()
		body, _ := json.Marshal(map[string]any{"source": demoSrc})
		r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
		r.Header.Set("X-Carmot-Tenant", tenant)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, r)
		if slowHits.Load() == before {
			continue // this key homed on the fast replica; not a hedge case
		}
		if w.Code != http.StatusOK {
			t.Fatalf("hedged request: status %d body %s", w.Code, w.Body.Bytes())
		}
		ri, err := wire.ParseRouteInfo(w.Header().Get(wire.RouteHeader))
		if err != nil {
			t.Fatal(err)
		}
		hedgedRoute = &ri
	}
	if hedgedRoute == nil {
		t.Fatal("no tenant key homed on the slow replica in 16 tries")
	}
	if !hedgedRoute.Hedged || hedgedRoute.Replica != "replica-1" {
		t.Errorf("route = %+v, want a hedged win on replica-1", hedgedRoute)
	}
	if st := rt.Snapshot(); st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("hedge counters not advanced: %+v", st)
	}
}

// TestRouterStreamingFailover: a streaming request whose home replica
// is dead fails over before the stream commits; the relayed NDJSON is
// a complete well-formed event sequence.
func TestRouterStreamingFailover(t *testing.T) {
	f := newFleet(t, 3, Config{RetryBase: time.Millisecond})

	_, ri0 := f.post(t, demoSrc, "eve", "")
	home := ri0.Replica
	for i, rs := range f.rt.Snapshot().Replicas {
		if rs.ID == home {
			f.tss[i].Close()
		}
	}
	w, ri := f.post(t, demoSrc, "eve", "?stream=1")
	if w.Code != http.StatusOK {
		t.Fatalf("streaming failover: status %d body %s", w.Code, w.Body.Bytes())
	}
	if ri.Replica == home || ri.Attempts < 2 {
		t.Fatalf("streaming route = %+v, want failover off %s", ri, home)
	}
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var last wire.StreamEvent
	lines := 0
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d is not an event: %v\n%s", lines, err, sc.Bytes())
		}
	}
	if lines == 0 || last.Event != wire.EventResult || last.Status != http.StatusOK {
		t.Fatalf("relayed stream malformed: %d lines, last %+v", lines, last)
	}
}

// TestRouterMidStreamDeath: a replica that dies after committing its
// NDJSON stream cannot be retried silently (the client saw events);
// the router must close the stream with a retryable terminal result.
func TestRouterMidStreamDeath(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		line, _ := (&wire.StreamEvent{Event: wire.EventCompile, ROIs: 1}).EncodeLine()
		w.Write(line)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // die mid-stream
	}))
	defer evil.Close()
	rt, err := New(Config{Replicas: []string{evil.URL}, ProbeInterval: -1, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	body, _ := json.Marshal(map[string]any{"source": demoSrc, "stream": true})
	r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, r)

	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	var events []wire.StreamEvent
	for sc.Scan() {
		var ev wire.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line not an event: %v\n%s", err, sc.Bytes())
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want compile + terminal error result:\n%s", len(events), w.Body.Bytes())
	}
	last := events[1]
	if last.Event != wire.EventResult || last.Status != http.StatusBadGateway {
		t.Fatalf("terminal event = %+v, want a 502 result", last)
	}
	var sum wire.Summary
	if err := json.Unmarshal(last.Result, &sum); err != nil || sum.Kind != wire.KindInternal || sum.RetryAfterMs <= 0 {
		t.Errorf("terminal result not structured/retryable: %s", last.Result)
	}
	if rt.Snapshot().MidStreamErrors == 0 {
		t.Error("mid-stream error counter not advanced")
	}
}

// TestRouterExhausted: with every replica dead, the router answers
// itself — a structured retryable 502 with the attempt trail.
func TestRouterExhausted(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // immediately: connection refused
	rt, err := New(Config{Replicas: []string{dead.URL}, ProbeInterval: -1, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	body, _ := json.Marshal(map[string]any{"source": demoSrc})
	r := httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", w.Code)
	}
	var sum wire.Summary
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil || sum.Kind != wire.KindInternal || sum.RetryAfterMs <= 0 {
		t.Fatalf("refusal not structured/retryable: %s", w.Body.Bytes())
	}
	ri, err := wire.ParseRouteInfo(w.Header().Get(wire.RouteHeader))
	if err != nil || ri.Attempts == 0 || ri.Failover == "" {
		t.Errorf("refusal route trail missing: %+v (err %v)", ri, err)
	}
	if rt.Snapshot().Exhausted == 0 {
		t.Error("exhausted counter not advanced")
	}
}

// TestRouterHealthz: 200 with at least one routable replica, 503 once
// the whole fleet is gone (after probes notice).
func TestRouterHealthz(t *testing.T) {
	f := newFleet(t, 2, Config{DownAfter: 1})

	get := func() int {
		w := httptest.NewRecorder()
		f.rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		return w.Code
	}
	f.rt.ProbeNow()
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthy fleet: router healthz = %d", code)
	}
	for _, ts := range f.tss {
		ts.Close()
	}
	f.rt.ProbeNow()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet: router healthz = %d, want 503", code)
	}
}

// TestRouterProbeRecovery: a replica that dies and comes back is
// re-admitted by probe hysteresis and the breaker's half-open trial,
// and its keys snap back home.
func TestRouterProbeRecovery(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)

	var down atomic.Bool
	inner := serve.New(serve.Config{TenantRate: 10000, TenantBurst: 10000})
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			panic(http.ErrAbortHandler)
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	defer func() {
		gate.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		inner.Drain(ctx)
		cancel()
	}()
	other := serve.New(serve.Config{TenantRate: 10000, TenantBurst: 10000})
	otherTS := httptest.NewServer(other.Handler())
	defer func() {
		otherTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		other.Drain(ctx)
		cancel()
	}()

	rt, err := New(Config{
		Replicas:         []string{gate.URL, otherTS.URL},
		ProbeInterval:    -1,
		DownAfter:        1,
		UpAfter:          1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
		RetryBase:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	f := &fleet{rt: rt}

	// Find a tenant whose home is the gated replica.
	var tenant string
	for i := 0; i < 16; i++ {
		cand := fmt.Sprintf("rec-%d", i)
		w, ri := f.post(t, demoSrc, cand, "")
		if w.Code == http.StatusOK && ri.Replica == "replica-0" {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant homed on replica-0")
	}

	down.Store(true)
	rt.ProbeNow() // DownAfter=1: replica-0 is now down
	w, ri := f.post(t, demoSrc, tenant, "")
	if w.Code != http.StatusOK || ri.Replica != "replica-1" {
		t.Fatalf("down route = %+v (status %d), want replica-1", ri, w.Code)
	}

	down.Store(false)
	time.Sleep(2 * time.Millisecond) // let the breaker cooldown lapse
	rt.ProbeNow()                    // UpAfter=1: healthy again, breaker closes
	w2, ri2 := f.post(t, demoSrc, tenant, "")
	if w2.Code != http.StatusOK || ri2.Replica != "replica-0" || ri2.Attempts != 1 {
		t.Fatalf("recovered route = %+v (status %d), want keys snapped back to replica-0", ri2, w2.Code)
	}
}

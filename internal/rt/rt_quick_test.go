package rt

import (
	"math/rand"
	"testing"

	"carmot/internal/core"
)

// randomStream generates a reproducible event stream over a handful of
// allocations and invocations.
type streamOp struct {
	kind  EventKind
	addr  uint64
	write bool
}

func randomStream(r *rand.Rand, nOps int) []streamOp {
	ops := []streamOp{
		{kind: EvAlloc, addr: 100},
		{kind: EvAlloc, addr: 200},
		{kind: EvROIBegin},
	}
	open := true
	for i := 0; i < nOps; i++ {
		switch r.Intn(10) {
		case 0:
			if open {
				ops = append(ops, streamOp{kind: EvROIEnd})
			} else {
				ops = append(ops, streamOp{kind: EvROIBegin})
			}
			open = !open
		default:
			base := uint64(100)
			if r.Intn(2) == 0 {
				base = 200
			}
			ops = append(ops, streamOp{
				kind:  EvAccess,
				addr:  base + uint64(r.Intn(8)),
				write: r.Intn(2) == 0,
			})
		}
	}
	if open {
		ops = append(ops, streamOp{kind: EvROIEnd})
	}
	return ops
}

func replay(ops []streamOp, batchSize, workers int) string {
	r := New(Config{
		BatchSize: batchSize, Workers: workers, Profile: ProfileFull,
		ROIs: []ROIMeta{{ID: 0, Name: "z"}},
	})
	for _, op := range ops {
		switch op.kind {
		case EvAlloc:
			r.EmitAlloc(op.addr, 8, 0, &AllocMeta{Kind: core.PSEHeap, Name: "arr", Pos: "p"})
		case EvROIBegin:
			r.BeginROI(0)
		case EvROIEnd:
			r.EndROI(0)
		case EvAccess:
			r.EmitAccess(op.addr, op.write, -1, 0)
		}
	}
	return r.Finish()[0].Summary()
}

// TestPipelinePropertyBatchInvariance: for random event streams, the PSEC
// must not depend on batch size or worker count — the Figure 5 pipeline
// is an implementation detail of throughput, never of semantics.
func TestPipelinePropertyBatchInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		ops := randomStream(r, 30+r.Intn(120))
		ref := replay(ops, 1, 1)
		for _, cfg := range [][2]int{{2, 1}, {7, 3}, {64, 4}, {4096, 8}} {
			if got := replay(ops, cfg[0], cfg[1]); got != ref {
				t.Fatalf("trial %d: batch=%d workers=%d changes the PSEC:\n%s\nvs reference\n%s",
					trial, cfg[0], cfg[1], got, ref)
			}
		}
	}
}

// TestPipelinePropertyAgainstOracle replays random single-cell streams
// against a direct FSA oracle.
func TestPipelinePropertyAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		nInv := 1 + r.Intn(5)
		type acc struct {
			inv   int
			write bool
		}
		var trace []acc
		for inv := 0; inv < nInv; inv++ {
			for k := 0; k < r.Intn(4); k++ {
				trace = append(trace, acc{inv: inv, write: r.Intn(2) == 0})
			}
		}
		// Oracle.
		st := core.StateNone
		last := -1
		for _, a := range trace {
			st = st.Next(a.inv != last, a.write)
			last = a.inv
		}
		want := st.Sets()

		// Pipeline.
		rt0 := New(Config{BatchSize: 3, Workers: 2, Profile: ProfileFull,
			ROIs: []ROIMeta{{ID: 0, Name: "z"}}})
		rt0.EmitAlloc(50, 1, 0, &AllocMeta{Kind: core.PSEVariable, Name: "x", Pos: "p"})
		cur := -1
		for _, a := range trace {
			for cur < a.inv {
				if cur >= 0 {
					rt0.EndROI(0)
				}
				rt0.BeginROI(0)
				cur++
			}
			rt0.EmitAccess(50, a.write, -1, 0)
		}
		if cur >= 0 {
			rt0.EndROI(0)
		}
		p := rt0.Finish()[0]
		var got core.SetMask
		if e := p.ElementByName("x"); e != nil {
			got = e.Sets
		}
		if got != want {
			t.Fatalf("trial %d trace %v: pipeline says %s, oracle %s", trial, trace, got, want)
		}
	}
}

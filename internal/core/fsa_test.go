package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// access is one step of a reference execution of an ROI over a single
// PSE: which invocation it happens in and whether it writes.
type access struct {
	inv   int
	write bool
}

// referenceSets classifies an access trace directly from the §3.1 set
// definitions, independent of the FSA — the oracle for property tests.
func referenceSets(trace []access) SetMask {
	if len(trace) == 0 {
		return 0
	}
	var m SetMask
	// Input: read before being written by any invocation.
	if !trace[0].write {
		m |= SetInput
	}
	// Output: written by some invocation (conservatively read outside).
	written := false
	for _, a := range trace {
		if a.write {
			written = true
		}
	}
	if written {
		m |= SetOutput
	}
	// Transfer: written by an invocation, then read by a LATER invocation
	// before any overwrite.
	transfer := false
	lastWriteInv := -1
	for _, a := range trace {
		if a.write {
			lastWriteInv = a.inv
		} else if lastWriteInv >= 0 && a.inv > lastWriteInv {
			transfer = true
		}
	}
	if transfer {
		m |= SetTransfer
	}
	// Cloneable: written by more than one invocation, no cross-invocation
	// read-before-overwrite (i.e., not Transfer).
	writeInvs := map[int]bool{}
	for _, a := range trace {
		if a.write {
			writeInvs[a.inv] = true
		}
	}
	if len(writeInvs) > 1 && !transfer {
		m |= SetCloneable
	}
	return m
}

// runFSA drives the automaton over a trace the way the runtime does.
func runFSA(trace []access) SetMask {
	st := StateNone
	lastInv := -1
	for _, a := range trace {
		first := a.inv != lastInv
		st = st.Next(first, a.write)
		lastInv = a.inv
	}
	return st.Sets()
}

// genTrace produces a random access trace with non-decreasing invocation
// numbers.
func genTrace(r *rand.Rand) []access {
	n := 1 + r.Intn(12)
	trace := make([]access, 0, n)
	inv := 0
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			inv++ // next dynamic invocation
		}
		trace = append(trace, access{inv: inv, write: r.Intn(2) == 0})
	}
	return trace
}

// TestFSAMatchesDefinitions checks, for random traces, that the Figure 3
// automaton computes exactly the §3.1 set definitions.
func TestFSAMatchesDefinitions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		trace := genTrace(r)
		got, want := runFSA(trace), referenceSets(trace)
		if got != want {
			t.Fatalf("trace %v: FSA says %s, definitions say %s", trace, got, want)
		}
	}
}

// TestFSAExclusivity: a PSE can never be both Cloneable and Transfer.
func TestFSAExclusivity(t *testing.T) {
	if err := quick.Check(func(steps []bool, invBumps []bool) bool {
		st := StateNone
		inv, lastInv := 0, -1
		for i, w := range steps {
			if i < len(invBumps) && invBumps[i] {
				inv++
			}
			st = st.Next(inv != lastInv, w)
			lastInv = inv
		}
		m := st.Sets()
		return !(m.Has(SetCloneable) && m.Has(SetTransfer)) && m.Valid()
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestFSASinks: TO and TIO are sinks.
func TestFSASinks(t *testing.T) {
	for _, s := range []FSAState{StateTO, StateTIO} {
		for _, first := range []bool{false, true} {
			for _, write := range []bool{false, true} {
				if next := s.Next(first, write); next != s {
					t.Errorf("%s is not a sink: Next(%v,%v)=%s", s, first, write, next)
				}
			}
		}
	}
}

// TestFSAKnownTransitions spot-checks the Figure 3 edges described in the
// paper's §4.1 walkthrough of the Figure 1 variable y.
func TestFSAKnownTransitions(t *testing.T) {
	// y: first invocation reads then writes; second invocation reads.
	s := StateNone
	s = s.Next(true, false) // Rf
	if s != StateI {
		t.Fatalf("ε --R--> %s, want I", s)
	}
	s = s.Next(false, true) // Wn
	if s != StateIO {
		t.Fatalf("I --Wn--> %s, want IO", s)
	}
	s = s.Next(true, false) // Rf of next invocation
	if s != StateTIO {
		t.Fatalf("IO --Rf--> %s, want TIO", s)
	}
	// x: written first every invocation.
	s = StateNone
	s = s.Next(true, true)
	if s != StateO {
		t.Fatalf("ε --W--> %s, want O", s)
	}
	s = s.Next(true, true)
	if s != StateCO {
		t.Fatalf("O --Wf--> %s, want CO", s)
	}
	// CO degrades to TO on a fresh-invocation read.
	if got := StateCO.Next(true, false); got != StateTO {
		t.Fatalf("CO --Rf--> %s, want TO", got)
	}
}

// TestStateForSets is the inverse mapping used by FixedClass events.
func TestStateForSets(t *testing.T) {
	for s := StateI; s < numStates; s++ {
		if got := StateForSets(s.Sets()); got.Sets() != s.Sets() {
			t.Errorf("StateForSets(%s.Sets()) = %s with different sets", s, got)
		}
	}
	if StateForSets(0) != StateNone {
		t.Error("empty mask should map to ε")
	}
}

// TestFSAStateNames keeps the debug output stable.
func TestFSAStateNames(t *testing.T) {
	want := map[FSAState]string{
		StateNone: "ε", StateI: "I", StateO: "O", StateIO: "IO",
		StateCO: "CO", StateCIO: "CIO", StateTO: "TO", StateTIO: "TIO",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("state %d named %q, want %q", s, s.String(), name)
		}
	}
}

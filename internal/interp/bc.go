package interp

// The bytecode engine's execution loop: a flat program counter over the
// compiled instruction stream, dispatched by a switch on a dense uint8
// opcode. It must stay observationally identical to exec.go's tree-walker
// — same counters, same events in the same order, same error text — so
// every case mirrors its tree-walker counterpart statement for statement;
// the only differences are pre-resolved operands and the absence of
// per-instruction interface dispatch.

import (
	"fmt"
	"math"

	"carmot/internal/core"
)

// fetch resolves a pre-compiled operand against the frame.
func fetch(fr *frame, mode uint8, payload uint64) uint64 {
	switch mode {
	case opdImm:
		return payload
	case opdTemp:
		return fr.temps[payload]
	case opdArg:
		return fr.args[payload]
	default: // opdFrame
		return fr.base + payload
	}
}

// costBC mirrors addCost for a pre-costed bytecode word.
func (it *Interp) costBC(in *bcInstr) {
	c := int64(in.cost)
	it.cycles += c
	if in.flags&bfSerial != 0 {
		it.serialCycles += c
	}
}

func (it *Interp) execBC(fr *frame) (uint64, error) {
	cf := fr.cf
	code := cf.code
	r := it.opts.Runtime
	maxSteps := it.opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = math.MaxInt64 // no limit: one compare instead of two
	}
	pc := 0
	for {
		in := &code[pc]
		cur := pc
		pc++
		it.steps++
		if it.steps > maxSteps {
			return 0, &BudgetError{Reason: fmt.Sprintf("step limit exceeded (%d)", it.opts.MaxSteps)}
		}
		if it.steps&budgetCheckMask == 0 {
			if berr := it.checkBudget(); berr != nil {
				return 0, berr
			}
		}

		switch in.op {
		case opAlloca:
			addr := fr.base + in.a
			fr.temps[in.dst] = addr
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitAlloc(addr, in.imm, it.curCS(), cf.allocas[in.ext])
				it.toolCycles += costAllocEvent
			}

		case opLoad:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(it.mem)) {
				return 0, it.errf(cf.poss[cur], "invalid load address %d", addr)
			}
			fr.temps[in.dst] = it.mem[addr]
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitAccess(addr, false, in.site, it.frameCS(fr))
				it.toolCycles += it.eventCost
			}

		case opStore:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(it.mem)) {
				return 0, it.errf(cf.poss[cur], "invalid store address %d", addr)
			}
			val := fetch(fr, in.bmode, in.b)
			it.mem[addr] = val
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if r != nil && in.flags&bfTrack != 0 {
				if it.prof.Sets {
					r.EmitAccess(addr, true, in.site, it.frameCS(fr))
					it.toolCycles += it.eventCost
				}
				if it.prof.Reach && in.flags&bfPtrStore != 0 && val != 0 && val < uint64(len(it.mem)) {
					r.EmitEscape(addr, val)
					it.toolCycles += costEscapeEvent
				}
			}

		case opAddI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) + fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opSubI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) - fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opMulI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) * fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opDivI:
			b := int64(fetch(fr, in.bmode, in.b))
			if b == 0 {
				return 0, it.errf(cf.poss[cur], "integer division by zero")
			}
			fr.temps[in.dst] = uint64(int64(fetch(fr, in.amode, in.a)) / b)
			it.costBC(in)
		case opRemI:
			b := int64(fetch(fr, in.bmode, in.b))
			if b == 0 {
				return 0, it.errf(cf.poss[cur], "integer remainder by zero")
			}
			fr.temps[in.dst] = uint64(int64(fetch(fr, in.amode, in.a)) % b)
			it.costBC(in)
		case opEqI:
			fr.temps[in.dst] = b2i(fetch(fr, in.amode, in.a) == fetch(fr, in.bmode, in.b))
			it.costBC(in)
		case opNeI:
			fr.temps[in.dst] = b2i(fetch(fr, in.amode, in.a) != fetch(fr, in.bmode, in.b))
			it.costBC(in)
		case opLtI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) < int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opLeI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) <= int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opGtI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) > int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opGeI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) >= int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)

		case opAddF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a + b)
			it.costBC(in)
		case opSubF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a - b)
			it.costBC(in)
		case opMulF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a * b)
			it.costBC(in)
		case opDivF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a / b)
			it.costBC(in)
		case opEqF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a == b)
			it.costBC(in)
		case opNeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a != b)
			it.costBC(in)
		case opLtF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a < b)
			it.costBC(in)
		case opLeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a <= b)
			it.costBC(in)
		case opGtF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a > b)
			it.costBC(in)
		case opGeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a >= b)
			it.costBC(in)

		case opConvItoF:
			fr.temps[in.dst] = math.Float64bits(float64(int64(fetch(fr, in.amode, in.a))))
			it.costBC(in)
		case opConvFtoI:
			fr.temps[in.dst] = uint64(int64(math.Float64frombits(fetch(fr, in.amode, in.a))))
			it.costBC(in)

		case opGEP:
			b := int64(fetch(fr, in.amode, in.a))
			if in.flags&bfHasB != 0 {
				b += int64(fetch(fr, in.bmode, in.b)) * in.imm
			}
			b += in.imm2
			fr.temps[in.dst] = uint64(b)
			it.costBC(in)

		case opMalloc:
			count := int64(fetch(fr, in.amode, in.a))
			if count < 0 {
				return 0, it.errf(cf.poss[cur], "malloc with negative count %d", count)
			}
			cells := count * in.imm
			if cells == 0 {
				cells = 1
			}
			ms := &cf.mallocs[in.ext]
			addr := it.heapTop
			it.heapTop += uint64(cells)
			it.ensure(it.heapTop)
			it.liveHeap[addr] = heapRec{cells: cells, pos: ms.pos}
			fr.temps[in.dst] = addr
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitAlloc(addr, cells, it.curCS(), ms.meta)
				it.toolCycles += costAllocEvent
			}

		case opFree:
			addr := fetch(fr, in.amode, in.a)
			if _, ok := it.liveHeap[addr]; !ok {
				return 0, it.errf(cf.poss[cur], "free of invalid pointer %d", addr)
			}
			delete(it.liveHeap, addr)
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitFree(addr)
				it.toolCycles += costAllocEvent
			}

		case opCall:
			res, err := it.bcCall(&cf.calls[in.ext], fr)
			if err != nil {
				return 0, err
			}
			spec := &cf.calls[in.ext]
			if !spec.void {
				fr.temps[in.dst] = res
			}
			it.costBC(in)

		case opRet:
			it.costBC(in)
			if in.flags&bfHasB != 0 {
				return fetch(fr, in.amode, in.a), nil
			}
			return 0, nil

		case opJmp:
			it.costBC(in)
			pc = int(in.imm)

		case opCondJmp:
			it.costBC(in)
			if fetch(fr, in.amode, in.a) != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.imm2)
			}

		case opROIBegin:
			roi := cf.rois[in.ext]
			if r != nil {
				r.BeginROI(roi.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(true, roi, it.cycles, it.serialCycles)
			}

		case opROIEnd:
			roi := cf.rois[in.ext]
			if r != nil {
				r.EndROI(roi.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(false, roi, it.cycles, it.serialCycles)
			}

		case opMark:
			if it.opts.Sink != nil {
				m := cf.marks[in.ext]
				it.opts.Sink.Mark(m.Kind, m.Region, m.Task, it.cycles, it.serialCycles)
			}

		case opRanged:
			if r != nil {
				addr := fetch(fr, in.amode, in.a)
				count := int64(fetch(fr, in.bmode, in.b))
				if count > 0 {
					r.EmitRange(in.dst, in.flags&bfWrite != 0, addr, count, uint64(in.imm))
					it.toolCycles += costRangedEmit
				}
			}

		case opFixed:
			if r != nil {
				addr := fetch(fr, in.amode, in.a)
				r.EmitFixed(in.dst, addr, in.imm, core.SetMask(in.imm2))
				it.toolCycles += costFixedEmit
			}

		default: // opBadOp
			return 0, it.errf(cf.poss[cur], "%s", cf.msgs[in.ext])
		}
	}
}

// f2 fetches both operands as floats.
func f2(fr *frame, in *bcInstr) (float64, float64) {
	return math.Float64frombits(fetch(fr, in.amode, in.a)),
		math.Float64frombits(fetch(fr, in.bmode, in.b))
}

// bcCall evaluates a pre-bound call site's arguments into the shared
// scratch and dispatches, mirroring execCall.
func (it *Interp) bcCall(spec *callSpec, fr *frame) (uint64, error) {
	mark := len(it.argScratch)
	for i := range spec.args {
		it.argScratch = append(it.argScratch, fetch(fr, spec.args[i].mode, spec.args[i].val))
	}
	args := it.argScratch[mark:]

	fn, ext := spec.target, spec.extern
	if spec.indirect {
		id := fetch(fr, spec.callee.mode, spec.callee.val)
		switch {
		case id == 0:
			it.argScratch = it.argScratch[:mark]
			return 0, it.errf(spec.pos, "call through null function pointer")
		case id <= uint64(len(it.funcIDs)):
			fn = it.funcIDs[id-1]
		case id <= uint64(len(it.funcIDs)+len(it.externIDs)):
			ext = it.externIDs[id-uint64(len(it.funcIDs))-1]
		default:
			it.argScratch = it.argScratch[:mark]
			return 0, it.errf(spec.pos, "call through invalid function pointer %d", id)
		}
	}
	var res uint64
	var err error
	if fn != nil {
		if len(args) != len(fn.Params) {
			it.argScratch = it.argScratch[:mark]
			return 0, it.errf(spec.pos, "call to %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
		}
		if spec.pinGated && it.opts.Runtime != nil {
			// The Pintool probes this site because it cannot rule out a
			// jump into precompiled code.
			it.toolCycles += costPinCall
		}
		res, err = it.call(fn, args, spec.pos)
	} else {
		res, err = it.callExtern(spec.x, ext, args, spec.pos)
	}
	it.argScratch = it.argScratch[:mark]
	return res, err
}

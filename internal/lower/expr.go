package lower

import (
	"carmot/internal/ir"
	"carmot/internal/lang"
)

// lvalue lowers an expression that designates storage, returning the
// address value and, when the address directly names a source variable,
// that variable's symbol (the source mapping PSEC reports come from).
func (lo *lowerer) lvalue(e lang.Expr) (ir.Value, *lang.Symbol, error) {
	switch x := e.(type) {
	case *lang.Ident:
		if x.Sym == nil {
			return nil, nil, lo.errf(x.Pos, "%s is not assignable", x.Name)
		}
		if a, ok := lo.allocaOf[x.Sym]; ok {
			return a, x.Sym, nil
		}
		if g, ok := lo.globalOf[x.Sym]; ok {
			return &ir.GlobalAddr{Global: g}, x.Sym, nil
		}
		return nil, nil, lo.errf(x.Pos, "lower: no storage for %s", x.Name)
	case *lang.Unary:
		if x.Op != lang.UnaryDeref {
			return nil, nil, lo.errf(x.Pos, "expression is not an lvalue")
		}
		p, err := lo.rvalue(x.X)
		if err != nil {
			return nil, nil, err
		}
		return p, nil, nil
	case *lang.Index:
		bt := x.Base.ExprType()
		var base ir.Value
		var baseSym *lang.Symbol
		var err error
		if bt.Kind == lang.KindArray {
			base, baseSym, err = lo.lvalue(x.Base)
		} else { // pointer
			base, err = lo.rvalue(x.Base)
			if id, ok := x.Base.(*lang.Ident); ok {
				baseSym = id.Sym
			}
		}
		if err != nil {
			return nil, nil, err
		}
		idx, err := lo.rvalue(x.Idx)
		if err != nil {
			return nil, nil, err
		}
		lo.pos = x.Pos
		gep := &ir.GEP{Base: base, Index: idx, Scale: int64(bt.Elem.Cells()), BaseSym: baseSym}
		lo.emit(gep)
		return gep, nil, nil
	case *lang.Member:
		var base ir.Value
		var baseSym *lang.Symbol
		var err error
		if x.Arrow {
			base, err = lo.rvalue(x.Base)
			if id, ok := x.Base.(*lang.Ident); ok {
				baseSym = id.Sym
			}
		} else {
			base, baseSym, err = lo.lvalue(x.Base)
		}
		if err != nil {
			return nil, nil, err
		}
		lo.pos = x.Pos
		if x.Field.Offset == 0 {
			// Zero-offset fields alias the base address; reuse it, which
			// also keeps the direct-variable symbol for non-arrow access.
			if !x.Arrow {
				return base, baseSym, nil
			}
			return base, nil, nil
		}
		gep := &ir.GEP{Base: base, Offset: int64(x.Field.Offset), BaseSym: baseSym}
		lo.emit(gep)
		return gep, nil, nil
	}
	return nil, nil, lo.errf(e.NodePos(), "expression is not an lvalue")
}

// loadFrom emits a load of a scalar lvalue.
func (lo *lowerer) loadFrom(addr ir.Value, sym *lang.Symbol, t *lang.Type, pos lang.Pos) ir.Value {
	lo.pos = pos
	ld := &ir.Load{Addr: addr, Cls: classOf(t), Sym: directScalarSym(addr, sym)}
	lo.emit(ld)
	return ld
}

// directScalarSym keeps the symbol only for direct scalar-variable
// accesses (an alloca or global address used as-is). Accesses through
// GEPs are memory PSE accesses, attributed to memory locations instead.
func directScalarSym(addr ir.Value, sym *lang.Symbol) *lang.Symbol {
	switch addr.(type) {
	case *ir.Alloca, *ir.GlobalAddr:
		return sym
	}
	return nil
}

// storeTo emits a store of val to a scalar lvalue.
func (lo *lowerer) storeTo(addr ir.Value, sym *lang.Symbol, val ir.Value, pos lang.Pos) {
	lo.pos = pos
	lo.emit(&ir.Store{
		Addr: addr, Val: val, Sym: directScalarSym(addr, sym),
		PtrStore: val.Class() == ir.ClassPtr,
	})
}

// coerce converts v (produced by expr) to the class of dst.
func (lo *lowerer) coerce(v ir.Value, expr lang.Expr, dst *lang.Type) (ir.Value, error) {
	want := classOf(dst)
	have := v.Class()
	if have == want {
		return v, nil
	}
	switch {
	case want == ir.ClassFloat && have == ir.ClassInt:
		cv := &ir.Convert{X: v, ToFloat: true}
		lo.emit(cv)
		return cv, nil
	case want == ir.ClassInt && have == ir.ClassFloat:
		cv := &ir.Convert{X: v, ToFloat: false}
		lo.emit(cv)
		return cv, nil
	case want == ir.ClassPtr && have == ir.ClassInt:
		// Null pointer constant (checker admits only literal 0).
		return v, nil
	case want == ir.ClassFn && have == ir.ClassInt:
		return v, nil
	case want == ir.ClassInt && have == ir.ClassPtr, want == ir.ClassInt && have == ir.ClassFn:
		return v, nil
	}
	return nil, lo.errf(expr.NodePos(), "lower: cannot coerce %s to %s", have, want)
}

// condValue lowers a branch condition; the result is branch-ready (any
// non-zero scalar is true).
func (lo *lowerer) condValue(e lang.Expr) (ir.Value, error) {
	v, err := lo.rvalue(e)
	if err != nil {
		return nil, err
	}
	if v.Class() == ir.ClassFloat {
		cmp := &ir.Bin{Op: ir.OpNe, Float: true, L: v, R: ir.ConstFloat(0)}
		lo.emit(cmp)
		return cmp, nil
	}
	return v, nil
}

// normalize01 converts a scalar to int 0/1.
func (lo *lowerer) normalize01(v ir.Value) ir.Value {
	cmp := &ir.Bin{Op: ir.OpNe, Float: v.Class() == ir.ClassFloat, L: v, R: zeroOf(v.Class())}
	lo.emit(cmp)
	return cmp
}

func zeroOf(c ir.Class) ir.Value {
	if c == ir.ClassFloat {
		return ir.ConstFloat(0)
	}
	return ir.ConstInt(0)
}

func (lo *lowerer) rvalue(e lang.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return ir.ConstInt(x.Value), nil
	case *lang.FloatLit:
		return ir.ConstFloat(x.Value), nil
	case *lang.SizeofExpr:
		return ir.ConstInt(int64(x.Of.Cells())), nil
	case *lang.Ident:
		if x.FuncRef != nil {
			return &ir.FuncRef{Func: lo.funcIR[x.FuncRef]}, nil
		}
		if x.ExternRef != nil {
			return &ir.FuncRef{Extern: lo.externByName(x.ExternRef.Name)}, nil
		}
		addr, sym, err := lo.lvalue(x)
		if err != nil {
			return nil, err
		}
		if x.Sym.Type.Kind == lang.KindArray || x.Sym.Type.Kind == lang.KindStruct {
			// Aggregates decay to their address.
			return addr, nil
		}
		return lo.loadFrom(addr, sym, x.Sym.Type, x.Pos), nil
	case *lang.Unary:
		return lo.rvalueUnary(x)
	case *lang.Binary:
		return lo.rvalueBinary(x)
	case *lang.Assign:
		return lo.rvalueAssign(x)
	case *lang.IncDec:
		return lo.rvalueIncDec(x)
	case *lang.Call:
		return lo.rvalueCall(x)
	case *lang.Index, *lang.Member:
		addr, sym, err := lo.lvalue(x.(lang.Expr))
		if err != nil {
			return nil, err
		}
		t := x.(lang.Expr).ExprType()
		if t.Kind == lang.KindArray || t.Kind == lang.KindStruct {
			return addr, nil
		}
		return lo.loadFrom(addr, sym, t, x.NodePos()), nil
	case *lang.MallocExpr:
		count, err := lo.rvalue(x.Count)
		if err != nil {
			return nil, err
		}
		if count.Class() == ir.ClassFloat {
			cv := &ir.Convert{X: count}
			lo.emit(cv)
			count = cv
		}
		lo.pos = x.Pos
		m := &ir.Malloc{Count: count, ElemCells: int64(x.Elem.Cells()), TypeName: x.Elem.String()}
		lo.emit(m)
		return m, nil
	}
	return nil, lo.errf(e.NodePos(), "lower: unhandled expression %T", e)
}

func (lo *lowerer) externByName(name string) *ir.Extern {
	for _, e := range lo.prog.Externs {
		if e.Name == name {
			return e
		}
	}
	return nil
}

func (lo *lowerer) rvalueUnary(x *lang.Unary) (ir.Value, error) {
	switch x.Op {
	case lang.UnaryAddr:
		addr, _, err := lo.lvalue(x.X)
		return addr, err
	case lang.UnaryDeref:
		p, err := lo.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		t := x.ExprType()
		if t.Kind == lang.KindArray || t.Kind == lang.KindStruct {
			return p, nil
		}
		return lo.loadFrom(p, nil, t, x.Pos), nil
	case lang.UnaryNeg:
		v, err := lo.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		lo.pos = x.Pos
		b := &ir.Bin{Op: ir.OpSub, Float: v.Class() == ir.ClassFloat, L: zeroOf(v.Class()), R: v}
		lo.emit(b)
		return b, nil
	case lang.UnaryNot:
		v, err := lo.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		lo.pos = x.Pos
		b := &ir.Bin{Op: ir.OpEq, Float: v.Class() == ir.ClassFloat, L: v, R: zeroOf(v.Class())}
		lo.emit(b)
		return b, nil
	}
	return nil, lo.errf(x.Pos, "lower: unhandled unary op")
}

func (lo *lowerer) rvalueBinary(x *lang.Binary) (ir.Value, error) {
	if x.Op == lang.BinAnd || x.Op == lang.BinOr {
		return lo.rvalueShortCircuit(x)
	}
	l, err := lo.rvalue(x.L)
	if err != nil {
		return nil, err
	}
	r, err := lo.rvalue(x.R)
	if err != nil {
		return nil, err
	}
	lo.pos = x.Pos

	lt, rt := x.L.ExprType(), x.R.ExprType()
	// Pointer arithmetic lowers to GEPs so element scaling is explicit.
	if lt.Kind == lang.KindPointer && rt.Kind == lang.KindInt &&
		(x.Op == lang.BinAdd || x.Op == lang.BinSub) {
		scale := int64(lt.Elem.Cells())
		if x.Op == lang.BinSub {
			scale = -scale
		}
		g := &ir.GEP{Base: l, Index: r, Scale: scale}
		lo.emit(g)
		return g, nil
	}
	if rt.Kind == lang.KindPointer && lt.Kind == lang.KindInt && x.Op == lang.BinAdd {
		g := &ir.GEP{Base: r, Index: l, Scale: int64(rt.Elem.Cells())}
		lo.emit(g)
		return g, nil
	}
	if lt.Kind == lang.KindPointer && rt.Kind == lang.KindPointer && x.Op == lang.BinSub {
		diff := &ir.Bin{Op: ir.OpSub, L: l, R: r}
		lo.emit(diff)
		res := &ir.Bin{Op: ir.OpDiv, L: diff, R: ir.ConstInt(int64(lt.Elem.Cells()))}
		lo.emit(res)
		return res, nil
	}

	var op ir.BinOp
	switch x.Op {
	case lang.BinAdd:
		op = ir.OpAdd
	case lang.BinSub:
		op = ir.OpSub
	case lang.BinMul:
		op = ir.OpMul
	case lang.BinDiv:
		op = ir.OpDiv
	case lang.BinRem:
		op = ir.OpRem
	case lang.BinEq:
		op = ir.OpEq
	case lang.BinNe:
		op = ir.OpNe
	case lang.BinLt:
		op = ir.OpLt
	case lang.BinLe:
		op = ir.OpLe
	case lang.BinGt:
		op = ir.OpGt
	case lang.BinGe:
		op = ir.OpGe
	default:
		return nil, lo.errf(x.Pos, "lower: unhandled binary op %s", x.Op)
	}

	float := l.Class() == ir.ClassFloat || r.Class() == ir.ClassFloat
	if float {
		l = lo.toFloat(l)
		r = lo.toFloat(r)
	}
	b := &ir.Bin{Op: op, Float: float, L: l, R: r}
	lo.emit(b)
	return b, nil
}

func (lo *lowerer) toFloat(v ir.Value) ir.Value {
	if v.Class() == ir.ClassFloat {
		return v
	}
	if c, ok := v.(*ir.Const); ok && !c.IsFloat {
		return ir.ConstFloat(float64(c.Int))
	}
	cv := &ir.Convert{X: v, ToFloat: true}
	lo.emit(cv)
	return cv
}

func (lo *lowerer) rvalueShortCircuit(x *lang.Binary) (ir.Value, error) {
	tmp := lo.newAlloca(nil, 1, true)
	l, err := lo.rvalue(x.L)
	if err != nil {
		return nil, err
	}
	lo.pos = x.Pos
	if l.Class() == ir.ClassFloat {
		l = lo.normalize01(l)
	}
	rhsBlk := lo.fn.NewBlock("sc.rhs")
	shortBlk := lo.fn.NewBlock("sc.short")
	doneBlk := lo.fn.NewBlock("sc.done")
	if x.Op == lang.BinAnd {
		lo.emit(&ir.CondBr{Cond: l, True: rhsBlk, False: shortBlk})
	} else {
		lo.emit(&ir.CondBr{Cond: l, True: shortBlk, False: rhsBlk})
	}
	lo.setBlock(rhsBlk)
	r, err := lo.rvalue(x.R)
	if err != nil {
		return nil, err
	}
	lo.pos = x.Pos
	r = lo.normalize01(r)
	lo.emit(&ir.Store{Addr: tmp, Val: r})
	lo.branchTo(doneBlk)

	lo.setBlock(shortBlk)
	shortVal := ir.ConstInt(0)
	if x.Op == lang.BinOr {
		shortVal = ir.ConstInt(1)
	}
	lo.emit(&ir.Store{Addr: tmp, Val: shortVal})
	lo.branchTo(doneBlk)

	lo.setBlock(doneBlk)
	ld := &ir.Load{Addr: tmp, Cls: ir.ClassInt}
	lo.emit(ld)
	return ld, nil
}

func (lo *lowerer) rvalueAssign(x *lang.Assign) (ir.Value, error) {
	addr, sym, err := lo.lvalue(x.LHS)
	if err != nil {
		return nil, err
	}
	lt := x.LHS.ExprType()
	rhs, err := lo.rvalue(x.RHS)
	if err != nil {
		return nil, err
	}
	lo.pos = x.Pos

	if x.Op == lang.AssignSet {
		rhs, err = lo.coerce(rhs, x.RHS, lt)
		if err != nil {
			return nil, err
		}
		if m, ok := rhs.(*ir.Malloc); ok && sym != nil {
			m.Hint = sym.Name
		}
		lo.storeTo(addr, sym, rhs, x.Pos)
		return rhs, nil
	}

	old := lo.loadFrom(addr, sym, lt, x.Pos)
	var res ir.Value
	if lt.Kind == lang.KindPointer {
		scale := int64(lt.Elem.Cells())
		if x.Op == lang.AssignSub {
			scale = -scale
		}
		g := &ir.GEP{Base: old, Index: rhs, Scale: scale}
		lo.emit(g)
		res = g
	} else {
		var op ir.BinOp
		switch x.Op {
		case lang.AssignAdd:
			op = ir.OpAdd
		case lang.AssignSub:
			op = ir.OpSub
		case lang.AssignMul:
			op = ir.OpMul
		case lang.AssignDiv:
			op = ir.OpDiv
		}
		float := lt.Kind == lang.KindFloat
		r := rhs
		if float {
			r = lo.toFloat(r)
		} else if r.Class() == ir.ClassFloat {
			cv := &ir.Convert{X: r}
			lo.emit(cv)
			r = cv
		}
		b := &ir.Bin{Op: op, Float: float, L: old, R: r}
		lo.emit(b)
		res = b
	}
	lo.storeTo(addr, sym, res, x.Pos)
	return res, nil
}

func (lo *lowerer) rvalueIncDec(x *lang.IncDec) (ir.Value, error) {
	addr, sym, err := lo.lvalue(x.X)
	if err != nil {
		return nil, err
	}
	t := x.X.ExprType()
	old := lo.loadFrom(addr, sym, t, x.Pos)
	lo.pos = x.Pos
	var res ir.Value
	if t.Kind == lang.KindPointer {
		off := int64(t.Elem.Cells())
		if x.Dec {
			off = -off
		}
		g := &ir.GEP{Base: old, Offset: off}
		lo.emit(g)
		res = g
	} else {
		op := ir.OpAdd
		if x.Dec {
			op = ir.OpSub
		}
		b := &ir.Bin{Op: op, L: old, R: ir.ConstInt(1)}
		lo.emit(b)
		res = b
	}
	lo.storeTo(addr, sym, res, x.Pos)
	// Post-fix semantics: the expression value is the original value.
	return old, nil
}

func (lo *lowerer) rvalueCall(x *lang.Call) (ir.Value, error) {
	// Direct call to a function or extern.
	if x.Func != nil || x.Extern != nil {
		var callee ir.Value
		var paramSyms []*lang.Symbol
		var cls ir.Class
		if x.Func != nil {
			callee = &ir.FuncRef{Func: lo.funcIR[x.Func]}
			paramSyms = x.Func.Params
			cls = classOf(x.Func.Ret)
		} else {
			ext := lo.externByName(x.Extern.Name)
			if ext == nil {
				return nil, lo.errf(x.Pos, "lower: extern %s not declared", x.Extern.Name)
			}
			callee = &ir.FuncRef{Extern: ext}
			paramSyms = x.Extern.Params
			cls = classOf(x.Extern.Ret)
		}
		args := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := lo.rvalue(a)
			if err != nil {
				return nil, err
			}
			v, err = lo.coerce(v, a, paramSyms[i].Type)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		lo.pos = x.Pos
		c := &ir.Call{Callee: callee, Args: args, Cls: cls}
		lo.emit(c)
		return c, nil
	}
	// Indirect call through an fnptr value.
	callee, err := lo.rvalue(x.Callee)
	if err != nil {
		return nil, err
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := lo.rvalue(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	lo.pos = x.Pos
	c := &ir.Call{Callee: callee, Args: args, Cls: ir.ClassInt}
	lo.emit(c)
	return c, nil
}

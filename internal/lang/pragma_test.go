package lang

import (
	"reflect"
	"testing"
)

func parsePragma(t *testing.T, payload string) *Pragma {
	t.Helper()
	p, err := ParsePragma(payload, Pos{File: "t.mc", Line: 1, Col: 1})
	if err != nil {
		t.Fatalf("ParsePragma(%q): %v", payload, err)
	}
	return p
}

func TestParsePragmaCarmotROI(t *testing.T) {
	p := parsePragma(t, "carmot roi hotloop")
	if p.Kind != PragmaCarmotROI || p.Name != "hotloop" {
		t.Errorf("got %+v", p)
	}
	p = parsePragma(t, "carmot roi")
	if p.Kind != PragmaCarmotROI || p.Name != "" {
		t.Errorf("unnamed roi: %+v", p)
	}
}

func TestParsePragmaParallelFor(t *testing.T) {
	p := parsePragma(t, "omp parallel for private(a, b) firstprivate(c) lastprivate(d) shared(e) reduction(+: s1, s2) reduction(*: prod) ordered")
	if p.Kind != PragmaOmpParallelFor {
		t.Fatalf("kind = %v", p.Kind)
	}
	if !reflect.DeepEqual(p.Private, []string{"a", "b"}) {
		t.Errorf("private = %v", p.Private)
	}
	if !reflect.DeepEqual(p.FirstPrivate, []string{"c"}) || !reflect.DeepEqual(p.LastPrivate, []string{"d"}) {
		t.Errorf("first/last = %v %v", p.FirstPrivate, p.LastPrivate)
	}
	if !reflect.DeepEqual(p.Shared, []string{"e"}) {
		t.Errorf("shared = %v", p.Shared)
	}
	want := []Reduction{{Op: "+", Var: "s1"}, {Op: "+", Var: "s2"}, {Op: "*", Var: "prod"}}
	if !reflect.DeepEqual(p.Reductions, want) {
		t.Errorf("reductions = %v", p.Reductions)
	}
	if !p.Ordered {
		t.Error("ordered flag lost")
	}
}

func TestParsePragmaTask(t *testing.T) {
	p := parsePragma(t, "omp task depend(in: a, b) depend(out: c)")
	if p.Kind != PragmaOmpTask {
		t.Fatalf("kind = %v", p.Kind)
	}
	if !reflect.DeepEqual(p.DependIn, []string{"a", "b"}) || !reflect.DeepEqual(p.DependOut, []string{"c"}) {
		t.Errorf("depend = in%v out%v", p.DependIn, p.DependOut)
	}
}

func TestParsePragmaSimpleDirectives(t *testing.T) {
	cases := map[string]PragmaKind{
		"omp critical":          PragmaOmpCritical,
		"omp ordered":           PragmaOmpOrdered,
		"omp barrier":           PragmaOmpBarrier,
		"omp master":            PragmaOmpMaster,
		"omp section":           PragmaOmpSection,
		"omp taskwait":          PragmaOmpTaskWait,
		"omp parallel sections": PragmaOmpParallelSections,
	}
	for payload, kind := range cases {
		if p := parsePragma(t, payload); p.Kind != kind {
			t.Errorf("%q -> %v, want %v", payload, p.Kind, kind)
		}
	}
}

func TestParsePragmaStats(t *testing.T) {
	p := parsePragma(t, "stats input(a, b) output(c) state(d, e)")
	if p.Kind != PragmaStats {
		t.Fatalf("kind = %v", p.Kind)
	}
	if !reflect.DeepEqual(p.StatsInput, []string{"a", "b"}) ||
		!reflect.DeepEqual(p.StatsOutput, []string{"c"}) ||
		!reflect.DeepEqual(p.StatsState, []string{"d", "e"}) {
		t.Errorf("classes = %v %v %v", p.StatsInput, p.StatsOutput, p.StatsState)
	}
}

func TestParsePragmaErrors(t *testing.T) {
	cases := []string{
		"carmot",
		"omp parallel while",
		"omp frobnicate",
		"omp parallel for reduction(^: s)",
		"omp parallel for private",
		"omp parallel for bogus(a)",
		"omp task depend(sideways: a)",
		"omp task nonsense(a)",
		"stats wrongclass(a)",
		"wholly unknown",
		"omp parallel for private(a",
	}
	for _, payload := range cases {
		if _, err := ParsePragma(payload, Pos{}); err == nil {
			t.Errorf("ParsePragma(%q) should fail", payload)
		}
	}
}

func TestPragmaKindString(t *testing.T) {
	if PragmaOmpParallelFor.String() != "omp parallel for" {
		t.Errorf("got %q", PragmaOmpParallelFor.String())
	}
	if PragmaCarmotROI.String() != "carmot roi" {
		t.Errorf("got %q", PragmaCarmotROI.String())
	}
}

func TestTypeCells(t *testing.T) {
	st := &StructType{Name: "s", Fields: []Field{
		{Name: "a", Type: TypeInt},
		{Name: "b", Type: ArrayOf(TypeFloat, 4)},
		{Name: "c", Type: PointerTo(TypeInt)},
	}}
	st.layout()
	if st.Cells() != 6 {
		t.Errorf("struct cells = %d, want 6", st.Cells())
	}
	if st.Fields[2].Offset != 5 {
		t.Errorf("field c offset = %d, want 5", st.Fields[2].Offset)
	}
	if ArrayOf(TypeInt, 3).Cells() != 3 || TypeVoid.Cells() != 0 {
		t.Error("scalar/array cells wrong")
	}
	if !PointerTo(TypeInt).IsScalar() || ArrayOf(TypeInt, 2).IsScalar() {
		t.Error("IsScalar wrong")
	}
}

func TestTypeEqualAndString(t *testing.T) {
	a := PointerTo(ArrayOf(TypeFloat, 2))
	b := PointerTo(ArrayOf(TypeFloat, 2))
	if !a.Equal(b) {
		t.Error("structurally equal types should be Equal")
	}
	if a.Equal(PointerTo(ArrayOf(TypeFloat, 3))) {
		t.Error("different lengths should differ")
	}
	if a.String() != "float[2]*" {
		t.Errorf("String = %q", a.String())
	}
	if TypeFnPtr.Equal(TypeInt) {
		t.Error("fnptr != int")
	}
}

package rt

import (
	"fmt"
	"testing"
	"time"

	"carmot/internal/core"
	"carmot/internal/faultinject"
	"carmot/internal/testutil"
)

func TestFinishIdempotent(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileFull})
	f.alloc(100, 2, core.PSEHeap, "a")
	f.r.BeginROI(0)
	f.access(100, true)
	f.r.EndROI(0)
	first := f.r.Finish()
	second := f.r.Finish()
	if len(first) != 1 || first[0] == nil {
		t.Fatalf("first Finish = %v", first)
	}
	if &first[0] != &second[0] {
		t.Error("repeated Finish did not return the cached result")
	}
	if f.r.Emit(Event{Kind: EvAccess, Addr: 100, Write: true}) {
		t.Error("Emit after Finish reported accepted")
	}
	if d := f.r.Diagnostics(); d.DroppedEvents != 1 {
		t.Errorf("post-Finish emit not counted as dropped: %+v", d)
	}
}

func TestWorkerPanicContained(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(1, "injected worker fault"))
	baseline := testutil.Goroutines()
	f := newFeeder(Config{BatchSize: 4, Workers: 2, Profile: ProfileFull})
	f.alloc(100, 4, core.PSEHeap, "arr")
	f.r.BeginROI(0)
	for i := 0; i < 64; i++ {
		f.access(100+uint64(i%4), i%2 == 0)
	}
	f.r.EndROI(0)
	psecs := f.r.Finish()
	if len(psecs) != 1 || psecs[0] == nil {
		t.Fatalf("no usable PSEC after worker panic: %v", psecs)
	}
	d := f.r.Diagnostics()
	if d.WorkerPanics != 1 {
		t.Errorf("WorkerPanics = %d, want 1 (%+v)", d.WorkerPanics, d)
	}
	if err := f.r.Err(); err == nil {
		t.Error("Err() nil after contained worker panic")
	}
	testutil.WaitGoroutines(t, baseline)
}

func TestPostprocessorPanicContained(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.post.apply", faultinject.CountdownPanic(2, "injected post fault"))
	baseline := testutil.Goroutines()
	f := newFeeder(Config{BatchSize: 4, Workers: 2, Profile: ProfileFull})
	f.alloc(100, 4, core.PSEHeap, "arr")
	f.r.BeginROI(0)
	for i := 0; i < 64; i++ {
		f.access(100+uint64(i%4), true)
	}
	f.r.EndROI(0)
	psecs := f.r.Finish()
	if len(psecs) != 1 || psecs[0] == nil {
		t.Fatalf("no usable PSEC after postprocessor panic: %v", psecs)
	}
	d := f.r.Diagnostics()
	if d.PostprocessorPanics != 1 {
		t.Errorf("PostprocessorPanics = %d, want 1 (%+v)", d.PostprocessorPanics, d)
	}
	if err := f.r.Err(); err == nil {
		t.Error("Err() nil after contained postprocessor panic")
	}
	testutil.WaitGoroutines(t, baseline)
}

func TestFinishStagePanicYieldsEmptyPSECs(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.post.finish", faultinject.CountdownPanic(1, "injected finish fault"))
	f := newFeeder(Config{Profile: ProfileFull})
	f.alloc(100, 1, core.PSEHeap, "a")
	f.r.BeginROI(0)
	f.access(100, true)
	f.r.EndROI(0)
	psecs := f.r.Finish()
	if len(psecs) != 1 || psecs[0] == nil {
		t.Fatalf("finishSafe fallback did not produce per-ROI PSECs: %v", psecs)
	}
	if psecs[0].ROI.Name != "z" {
		t.Errorf("fallback PSEC lost ROI metadata: %+v", psecs[0].ROI)
	}
	if f.r.Err() == nil {
		t.Error("Err() nil after finish-stage panic")
	}
}

// TestEveryInjectionPointUnderRace drives all pipeline injection points
// in one run; under -race this doubles as the deadlock/race check.
func TestEveryInjectionPointUnderRace(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("rt.worker.batch", faultinject.CountdownPanic(2, "worker"))
	faultinject.Set("rt.post.apply", faultinject.CountdownPanic(3, "post"))
	baseline := testutil.Goroutines()
	f := newFeeder(Config{BatchSize: 2, Workers: 4, Profile: ProfileFull})
	f.alloc(100, 8, core.PSEHeap, "arr")
	for inv := 0; inv < 8; inv++ {
		f.r.BeginROI(0)
		for i := 0; i < 32; i++ {
			f.access(100+uint64(i%8), i%3 == 0)
		}
		f.r.EndROI(0)
	}
	done := make(chan []*core.PSEC, 1)
	go func() { done <- f.r.Finish() }()
	select {
	case psecs := <-done:
		if len(psecs) != 1 || psecs[0] == nil {
			t.Fatalf("psecs = %v", psecs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Finish deadlocked with injected panics")
	}
	d := f.r.Diagnostics()
	if d.WorkerPanics != 1 || d.PostprocessorPanics != 1 {
		t.Errorf("panic counts = %d/%d, want 1/1", d.WorkerPanics, d.PostprocessorPanics)
	}
	testutil.WaitGoroutines(t, baseline)
}

func TestEventCapDegradation(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileFull, Limits: Limits{MaxEvents: 16}})
	f.alloc(100, 4, core.PSEHeap, "arr")
	f.r.BeginROI(0)
	accepted := 0
	for i := 0; i < 100; i++ {
		if f.access(100+uint64(i%4), true); true {
			accepted++
		}
	}
	f.r.EndROI(0) // structural: must pass despite the cap
	psecs := f.r.Finish()
	if psecs[0] == nil {
		t.Fatal("nil PSEC")
	}
	d := f.r.Diagnostics()
	if d.DroppedEvents == 0 {
		t.Errorf("event cap shed nothing: %+v", d)
	}
	if d.Events > 16+3 { // alloc + ROI begin/end are structural
		t.Errorf("accepted %d events past cap 16", d.Events)
	}
	if !d.Degraded() {
		t.Fatal("no downgrade recorded for event cap")
	}
	found := false
	for _, dg := range d.Downgrades {
		if dg.Action == "drop-access-events" && dg.Reason == "max-events=16" {
			found = true
		}
	}
	if !found {
		t.Errorf("drop-access-events downgrade missing: %v", d.Downgrades)
	}
	// The ROI-end structural event was accepted, so invocation accounting
	// survived the cap.
	if psecs[0].Stats.Invocations != 1 {
		t.Errorf("invocations = %d after cap", psecs[0].Stats.Invocations)
	}
}

func TestCellCapClimbsLadder(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileFull, Limits: Limits{MaxLiveCells: 8}})
	f.r.BeginROI(0)
	// Each allocation wants 6 tracked cells; the second breaches the
	// 8-cell cap and forces the governor up the ladder.
	for i := 0; i < 4; i++ {
		f.alloc(uint64(1000*(i+1)), 6, core.PSEHeap, fmt.Sprintf("a%d", i))
		for c := 0; c < 6; c++ {
			f.access(uint64(1000*(i+1)+c), true)
		}
	}
	f.r.EndROI(0)
	f.r.Finish()
	d := f.r.Diagnostics()
	if d.PeakLiveCells > 8 {
		t.Errorf("PeakLiveCells = %d, cap 8", d.PeakLiveCells)
	}
	if len(d.Downgrades) == 0 {
		t.Fatal("cell cap produced no downgrades")
	}
	// Ladder order: each recorded action must be a strictly later rung.
	rank := map[string]int{
		"drop-use-callstacks":  1,
		"coarse-cell-tracking": 2,
		"counts-only":          3,
	}
	last := 0
	for _, dg := range d.Downgrades {
		rk, ok := rank[dg.Action]
		if !ok {
			t.Errorf("unknown ladder action %q", dg.Action)
			continue
		}
		if rk <= last {
			t.Errorf("ladder out of order: %v", d.Downgrades)
		}
		last = rk
	}
	// Counts survive even at counts-only.
	p := f.r.Finish()[0]
	if p.Stats.TotalAccesses == 0 {
		t.Error("access counts lost under degradation")
	}
}

func TestCallstackCapCollapses(t *testing.T) {
	f := newFeeder(Config{Profile: ProfileOpenMP,
		Sites:  []SiteInfo{{Pos: "t.mc:5:3", Func: "f", Write: true}},
		Limits: Limits{MaxCallstacks: 2}})
	var ids []core.CallstackID
	for i := 0; i < 6; i++ {
		ids = append(ids, f.r.Callstacks().Intern([]core.Frame{
			{Func: fmt.Sprintf("fn%d", i), Pos: fmt.Sprintf("t.mc:%d:1", i+1)},
		}))
	}
	for _, id := range ids[2:] {
		if id != 0 {
			t.Errorf("stack beyond cap interned as %d, want collapse to 0", id)
		}
	}
	f.alloc(40, 1, core.PSEVariable, "v")
	f.r.BeginROI(0)
	f.r.EmitAccess(40, true, 0, ids[0])
	f.r.EndROI(0)
	f.r.Finish()
	d := f.r.Diagnostics()
	if d.Callstacks > 3 { // empty stack + 2 interned
		t.Errorf("callstack table grew past cap: %d", d.Callstacks)
	}
	found := false
	for _, dg := range d.Downgrades {
		if dg.Action == "collapse-new-callstacks" {
			found = true
		}
	}
	if !found {
		t.Errorf("callstack-cap downgrade missing: %v", d.Downgrades)
	}
}

func TestBatchQueueCapApplied(t *testing.T) {
	f := newFeeder(Config{Workers: 8, Profile: ProfileFull, Limits: Limits{MaxBatchQueue: 2}})
	if c := cap(f.r.filled); c != 2 {
		t.Errorf("filled queue cap = %d, want 2", c)
	}
	f.alloc(100, 1, core.PSEHeap, "a")
	f.r.BeginROI(0)
	for i := 0; i < 100; i++ {
		f.access(100, true)
	}
	f.r.EndROI(0)
	if p := f.r.Finish()[0]; p.Stats.TotalAccesses != 100 {
		t.Errorf("accesses = %d, want 100", p.Stats.TotalAccesses)
	}
}

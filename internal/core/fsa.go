// Package core implements Program State Element Characterization (PSEC),
// the paper's primary contribution (§3): the per-PSE finite state
// automaton of Figure 3, the four classification Sets, Use-callstacks, the
// Reachability Graph, and the cross-run merge rule of §4.2.
package core

// FSAState is a state of the Figure 3 automaton. One instance exists per
// (ROI, PSE cell). Rf/Wf denote the first read/write of the cell in a new
// dynamic ROI invocation; Rn/Wn subsequent accesses in the same invocation.
//
//	ε   --R--> I           ε  --W--> O
//	I   : R → I            W → IO
//	O   : Rn,Wn → O        Wf → CO     Rf → TO
//	IO  : Rn,Wn → IO       Wf → CIO    Rf → TIO
//	CO  : Rn,Wn,Wf → CO    Rf → TO     (C and T are exclusive)
//	CIO : Rn,Wn,Wf → CIO   Rf → TIO
//	TO, TIO: sinks
type FSAState uint8

// FSA states. The letters name the Sets the state maps to.
const (
	StateNone FSAState = iota // ε: never accessed in the ROI
	StateI
	StateO
	StateIO
	StateCO
	StateCIO
	StateTO
	StateTIO
	numStates
)

var fsaStateNames = [...]string{"ε", "I", "O", "IO", "CO", "CIO", "TO", "TIO"}

// String returns the state name.
func (s FSAState) String() string { return fsaStateNames[s] }

// transitionTable[state][first?1:0][write?1:0] — precomputed so the hot
// profiling path is a single indexed load.
var transitionTable [numStates][2][2]FSAState

func init() {
	set := func(s FSAState, first, write bool, next FSAState) {
		fi, wi := 0, 0
		if first {
			fi = 1
		}
		if write {
			wi = 1
		}
		transitionTable[s][fi][wi] = next
	}
	for _, first := range []bool{false, true} {
		// ε: any first access classifies (a PSE joins the PSEC on its
		// first access, which is by definition an Rf/Wf).
		set(StateNone, first, false, StateI)
		set(StateNone, first, true, StateO)
		// I: reads keep it Input-only; any write adds Output.
		set(StateI, first, false, StateI)
		set(StateI, first, true, StateIO)
		// Sinks.
		set(StateTO, first, false, StateTO)
		set(StateTO, first, true, StateTO)
		set(StateTIO, first, false, StateTIO)
		set(StateTIO, first, true, StateTIO)
	}
	// O: written by some invocation; a fresh-invocation read consumes the
	// previous invocation's value (Transfer); a fresh-invocation write
	// overwrites without reading (Cloneable).
	set(StateO, false, false, StateO)
	set(StateO, false, true, StateO)
	set(StateO, true, false, StateTO)
	set(StateO, true, true, StateCO)
	// IO: as O, but the very first access ever was a read (Input).
	set(StateIO, false, false, StateIO)
	set(StateIO, false, true, StateIO)
	set(StateIO, true, false, StateTIO)
	set(StateIO, true, true, StateCIO)
	// CO: a fresh-invocation read creates a cross-invocation RAW, so the
	// element moves from Cloneable to Transfer (C ∩ T = ∅).
	set(StateCO, false, false, StateCO)
	set(StateCO, false, true, StateCO)
	set(StateCO, true, false, StateTO)
	set(StateCO, true, true, StateCO)
	set(StateCIO, false, false, StateCIO)
	set(StateCIO, false, true, StateCIO)
	set(StateCIO, true, false, StateTIO)
	set(StateCIO, true, true, StateCIO)
}

// Next returns the successor state for an access. first reports whether
// this is the cell's first access in the current dynamic ROI invocation.
func (s FSAState) Next(first, write bool) FSAState {
	fi, wi := 0, 0
	if first {
		fi = 1
	}
	if write {
		wi = 1
	}
	return transitionTable[s][fi][wi]
}

// Sets returns the classification Sets the terminal state maps to.
func (s FSAState) Sets() SetMask {
	switch s {
	case StateI:
		return SetInput
	case StateO:
		return SetOutput
	case StateIO:
		return SetInput | SetOutput
	case StateCO:
		return SetCloneable | SetOutput
	case StateCIO:
		return SetCloneable | SetInput | SetOutput
	case StateTO:
		return SetTransfer | SetOutput
	case StateTIO:
		return SetTransfer | SetInput | SetOutput
	}
	return 0
}

// StateForSets returns a state whose Sets() equal m, used when the
// compiler pre-classifies a PSE (fixed FSA setting, §4.4 opt 3) and when
// reconstructing merged PSECs.
func StateForSets(m SetMask) FSAState {
	for s := StateI; s < numStates; s++ {
		if s.Sets() == m {
			return s
		}
	}
	return StateNone
}

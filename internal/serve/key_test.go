package serve

import (
	"reflect"
	"strings"
	"testing"

	"carmot"
)

// TestCacheKeyCoversCompileOptions is the guard the old hand-listed key
// lacked: every exported CompileOptions field must perturb the program
// key. The loop is reflection-driven, so a field added to CompileOptions
// later is covered automatically — or, if perturb cannot synthesize a
// distinct value for its kind, fails here instead of silently sharing
// cache slots between distinct programs.
func TestCacheKeyCoversCompileOptions(t *testing.T) {
	base := cacheKey("x.mc", "int main() { return 0; }", carmot.CompileOptions{})
	typ := reflect.TypeOf(carmot.CompileOptions{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		var opts carmot.CompileOptions
		v := reflect.ValueOf(&opts).Elem().Field(i)
		perturb(t, f.Name, v)
		if got := cacheKey("x.mc", "int main() { return 0; }", opts); got == base {
			t.Errorf("CompileOptions.%s does not affect the program cache key", f.Name)
		}
	}
}

// perturb sets v to a value distinct from its zero value, failing the
// test on kinds it cannot synthesize — the signal to extend it (and the
// fingerprint walk) when a fingerprinted struct grows a new field shape.
func perturb(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1)
	case reflect.String:
		v.SetString("perturbed")
	default:
		t.Fatalf("field %s has kind %s; teach perturb (and fingerprint) about it", name, v.Kind())
	}
}

// requestKey computes the full result-cache key a request would get,
// program key included.
func requestKey(t *testing.T, req profileRequest) string {
	t.Helper()
	use, err := parseUseCase(req.Use)
	if err != nil {
		t.Fatal(err)
	}
	filename := req.Filename
	if filename == "" {
		filename = "request.mc"
	}
	copts := carmot.CompileOptions{
		ProfileOmpRegions:   req.OmpROIs == nil || *req.OmpROIs,
		ProfileStatsRegions: req.StatsROIs,
		WholeProgramROI:     req.Whole,
	}
	return resultKey(cacheKey(filename, req.Source, copts), use, &req)
}

// TestResultKeyCoversProfileRequest classifies every profileRequest
// field as either covered (its value perturbs the result-cache key) or
// exempt (it cannot change a cacheable response body, with the reason
// pinned below). A field missing from both sets fails the test: adding
// a request field without deciding its cache semantics is exactly the
// bug class the old hand-listed key shipped.
func TestResultKeyCoversProfileRequest(t *testing.T) {
	no := false
	covered := map[string]func(*profileRequest){
		"Filename":  func(r *profileRequest) { r.Filename = "other.mc" },
		"Source":    func(r *profileRequest) { r.Source = r.Source + "\n" },
		"Use":       func(r *profileRequest) { r.Use = "task" },
		"OmpROIs":   func(r *profileRequest) { r.OmpROIs = &no },
		"StatsROIs": func(r *profileRequest) { r.StatsROIs = true },
		"Whole":     func(r *profileRequest) { r.Whole = true },
		"Naive":     func(r *profileRequest) { r.Naive = true },
		"MaxSteps":  func(r *profileRequest) { r.MaxSteps = 1 << 40 },
		"MaxEvents": func(r *profileRequest) { r.MaxEvents = 1 << 40 },
		"MaxCells":  func(r *profileRequest) { r.MaxCells = 1 << 40 },
		"PSECs":     func(r *profileRequest) { r.PSECs = true },
		"Reports":   func(r *profileRequest) { r.Reports = true },
	}
	exempt := map[string]string{
		// A deadline can only truncate, and truncated results are never
		// cached — two requests differing only in timeout that both
		// complete cleanly produce identical bodies.
		"TimeoutMs": "deadlines truncate; truncated results are never cached",
		// Transport shape, not profile shape: a streamed result event
		// carries the same body a plain response would.
		"Stream": "response framing only",
		// The bypass knob selects whether to consult the cache, not what
		// the answer is.
		"NoResultCache": "cache-control, not profile-shaping",
	}

	base := profileRequest{Source: demoSrc}
	baseKey := requestKey(t, base)
	typ := reflect.TypeOf(profileRequest{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		mut, isCovered := covered[name]
		_, isExempt := exempt[name]
		switch {
		case isCovered && isExempt:
			t.Errorf("profileRequest.%s classified both covered and exempt", name)
		case isCovered:
			req := base
			mut(&req)
			if requestKey(t, req) == baseKey {
				t.Errorf("profileRequest.%s is classified covered but does not perturb the result key", name)
			}
		case isExempt:
			// pinned above; nothing to perturb
		default:
			t.Errorf("profileRequest gained field %s: classify it covered (fold into resultKey) or exempt (document why it cannot change a cacheable body)", name)
		}
	}
}

// TestResultKeyCoversProfileOptions does the same classification one
// layer down, over carmot.ProfileOptions — the struct the session is
// actually configured from. Covered fields must have a request-side
// counterpart already folded into resultKeyParts; exempt fields must be
// unreachable from a request or provably unable to change a *cacheable*
// body.
func TestResultKeyCoversProfileOptions(t *testing.T) {
	// Fields whose value flows from the request; resultKeyParts must
	// carry each one.
	covered := map[string]string{
		"UseCase":   "Use",
		"Naive":     "Naive",
		"MaxSteps":  "MaxSteps",
		"MaxEvents": "MaxEvents",
		"MaxCells":  "MaxCells",
	}
	exempt := map[string]string{
		"Optimizations":      "not settable via the request; always nil in serve",
		"Stdout":             "server-owned capture buffer",
		"Engine":             "engines produce byte-identical PSECs by contract",
		"NoCoalesce":         "PSEC-invariant; not settable via the request",
		"ForceCoalesce":      "set only on degrade rungs, whose results are never cached",
		"Workers":            "PSECs are geometry-invariant; grant size is not request-controlled",
		"Shards":             "PSECs are geometry-invariant",
		"BatchSize":          "PSECs are batch-size-invariant; not settable via the request",
		"Context":            "can only truncate; truncated results are never cached",
		"Timeout":            "can only truncate; truncated results are never cached",
		"MaxCallstacks":      "not settable via the request",
		"Recover":            "always true in serve",
		"JournalBudgetBytes": "set only on degrade rungs, whose results are never cached",
		"Progress":           "observability hook; does not shape the result",
		"NoFuse":             "superinstructions are observationally identical by contract; not settable via the request",
		"CountDispatch":      "diagnostic counters; does not shape the result",
	}

	partsType := reflect.TypeOf(resultKeyParts{})
	typ := reflect.TypeOf(carmot.ProfileOptions{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		part, isCovered := covered[name]
		_, isExempt := exempt[name]
		switch {
		case isCovered && isExempt:
			t.Errorf("ProfileOptions.%s classified both covered and exempt", name)
		case isCovered:
			if _, ok := partsType.FieldByName(part); !ok {
				t.Errorf("ProfileOptions.%s is covered via resultKeyParts.%s, which does not exist", name, part)
			}
		case isExempt:
			// pinned above
		default:
			t.Errorf("carmot.ProfileOptions gained field %s: classify it in the serve result-key test (covered via resultKeyParts, or exempt with a reason)", name)
		}
	}
}

// TestFingerprintPanicsOnUnsupported pins the fail-loud contract: a
// fingerprinted struct growing a field the walk cannot canonicalize must
// panic at first use, not silently drop the field from the key.
func TestFingerprintPanicsOnUnsupported(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fingerprint accepted a func field")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "unsupported kind") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	type bad struct {
		F func()
	}
	fingerprint(discard{}, reflect.ValueOf(bad{}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

package recommend

import (
	"fmt"
	"sort"
	"strings"

	"carmot/internal/core"
)

// CycleReport describes one reference-counting cycle found in the PSEC
// Reachability Graph, with the weak-pointer suggestion that breaks it
// (§3.2, §5.2; Figure 9 is one of these rendered for nab).
type CycleReport struct {
	Nodes []CycleNode
	Edges []CycleEdge
	// WeakSuggestion is the reference that should become a weak pointer.
	WeakSuggestion *CycleEdge
}

// CycleNode is one PSE participating in the cycle.
type CycleNode struct {
	Name      string
	AllocPos  string
	Callstack string
	Cells     int
}

// CycleEdge is one reference within the cycle.
type CycleEdge struct {
	From, To  string
	FromPos   string
	ToPos     string
	FirstTime uint64
}

// SmartPointers is the smart-pointer use-case recommendation.
type SmartPointers struct {
	ROI    string
	Cycles []CycleReport
}

// RecommendSmartPointers analyzes the reachability graph for reference
// cycles and picks the weak-pointer break for each.
func RecommendSmartPointers(psec *core.PSEC) *SmartPointers {
	rec := &SmartPointers{ROI: psec.ROI.Name}
	if psec.Reach == nil {
		return rec
	}
	for _, cyc := range psec.Reach.Cycles() {
		report := CycleReport{}
		for _, n := range cyc.Nodes {
			report.Nodes = append(report.Nodes, CycleNode{
				Name: n.Name, AllocPos: n.AllocPos,
				Callstack: psec.Callstacks.Format(n.AllocStack),
				Cells:     n.Cells,
			})
		}
		for _, e := range cyc.Edges {
			report.Edges = append(report.Edges, CycleEdge{
				From: e.From.Name, To: e.To.Name,
				FromPos: e.From.AllocPos, ToPos: e.To.AllocPos,
				FirstTime: e.FirstTime,
			})
		}
		if weak := psec.Reach.WeakPointerSuggestion(cyc); weak != nil {
			report.WeakSuggestion = &CycleEdge{
				From: weak.From.Name, To: weak.To.Name,
				FromPos: weak.From.AllocPos, ToPos: weak.To.AllocPos,
				FirstTime: weak.FirstTime,
			}
		}
		rec.Cycles = append(rec.Cycles, report)
	}
	return rec
}

// Report renders the cycle findings like the paper's Figure 9 discussion.
func (rec *SmartPointers) Report() string {
	var b strings.Builder
	if len(rec.Cycles) == 0 {
		fmt.Fprintf(&b, "ROI %q: no reference cycles; smart pointers are safe here.\n", rec.ROI)
		return b.String()
	}
	fmt.Fprintf(&b, "ROI %q: %d reference cycle(s) detected:\n", rec.ROI, len(rec.Cycles))
	for i, c := range rec.Cycles {
		fmt.Fprintf(&b, "cycle %d:\n", i+1)
		for _, n := range c.Nodes {
			fmt.Fprintf(&b, "  node %s allocated at %s via %s (%d cells)\n", n.Name, n.AllocPos, n.Callstack, n.Cells)
		}
		for _, e := range c.Edges {
			fmt.Fprintf(&b, "  reference %s (%s) -> %s (%s)\n", e.From, e.FromPos, e.To, e.ToPos)
		}
		if c.WeakSuggestion != nil {
			fmt.Fprintf(&b, "  suggestion: make the reference %s -> %s a weak pointer (its target has the oldest access)\n",
				c.WeakSuggestion.From, c.WeakSuggestion.To)
		}
	}
	return b.String()
}

// STATSClasses is the STATS Input-Output-State recommendation (§3.2):
// Input/Output/Transfer sets map to the Input/Output/State classes, and
// Cloneable PSEs are declared locally in the extracted function.
type STATSClasses struct {
	ROI    string
	Input  []string
	Output []string
	State  []string
	Local  []string // Cloneable: localize in the extracted function
}

// RecommendSTATS classifies the PSEC elements into STATS classes. A
// source name may cover several PSEs (a pointer variable and its pointee
// allocation); the strongest class wins per name (State > Local > Output
// > Input).
func RecommendSTATS(psec *core.PSEC) *STATSClasses {
	rec := &STATSClasses{ROI: psec.ROI.Name}
	rank := map[string]int{}
	classOf := func(e *core.Element) int {
		s := e.Sets
		switch {
		case s.Has(core.SetTransfer):
			return 4
		case s.Has(core.SetInput) && s.Has(core.SetOutput):
			// Read first, then written within an invocation: a state
			// dependence in STATS terms.
			return 4
		case s.Has(core.SetCloneable):
			// Cloneable scratch variables are declared locally in the
			// extracted STATS function (§3.2); cloneable memory is
			// reported as Output (the §4.1 conservative assumption keeps
			// it written-and-possibly-consumed).
			if e.PSE.Kind == core.PSEVariable {
				return 3
			}
			return 2
		case s.Has(core.SetOutput):
			return 2
		case s.Has(core.SetInput):
			return 1
		}
		return 0
	}
	for _, e := range psec.Elements {
		c := classOf(e)
		if c > rank[e.PSE.Name] {
			rank[e.PSE.Name] = c
		}
	}
	for name, c := range rank {
		switch c {
		case 4:
			rec.State = append(rec.State, name)
		case 3:
			rec.Local = append(rec.Local, name)
		case 2:
			rec.Output = append(rec.Output, name)
		case 1:
			rec.Input = append(rec.Input, name)
		}
	}
	sortStrings(rec.Input, rec.Output, rec.State, rec.Local)
	return rec
}

func sortStrings(lists ...[]string) {
	for _, l := range lists {
		sort.Strings(l)
	}
}

// Pragma renders the STATS classification as the annotation the STATS
// compiler consumes.
func (rec *STATSClasses) Pragma() string {
	var b strings.Builder
	b.WriteString("#pragma stats")
	part := func(kw string, names []string) {
		if len(names) > 0 {
			fmt.Fprintf(&b, " %s(%s)", kw, strings.Join(names, ", "))
		}
	}
	part("input", rec.Input)
	part("output", rec.Output)
	part("state", rec.State)
	return b.String()
}

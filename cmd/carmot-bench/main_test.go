package main

import (
	"testing"

	"carmot/internal/harness"
)

// quick shrinks inputs so every experiment path runs in CI time.
var quick = harness.Config{Threads: 8, ScaleDiv: 32}

func TestRunFastExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "fig9", "stats", "verify"} {
		if err := run(exp, quick); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("frobnicate", quick); err == nil {
		t.Error("unknown experiment should error")
	}
}

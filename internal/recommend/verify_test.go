package recommend

import (
	"strings"
	"testing"

	"carmot/internal/lang"
)

func pfPragma(t *testing.T, payload string) *lang.Pragma {
	t.Helper()
	p, err := lang.ParsePragma(payload, lang.Pos{File: "t.mc", Line: 1, Col: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func findingVars(v *VerifyResult, sev VerifySeverity) []string {
	var out []string
	for _, f := range v.Findings {
		if f.Severity == sev {
			out = append(out, f.Var)
		}
	}
	return out
}

func TestVerifyNilPragma(t *testing.T) {
	v := VerifyParallelFor(&ParallelFor{ROI: "r"}, nil, VerifyContext{})
	if v.OK() {
		t.Error("nil pragma cannot verify")
	}
}

func TestVerifyWrongPragmaKind(t *testing.T) {
	v := VerifyParallelFor(&ParallelFor{ROI: "r"}, pfPragma(t, "omp critical"), VerifyContext{})
	if v.OK() {
		t.Error("a critical pragma is not a parallel for")
	}
}

func TestVerifyPrivateCoveredByDeclaration(t *testing.T) {
	rec := &ParallelFor{ROI: "r", Parallel: true,
		Private: []VarClause{{Name: "tmp"}, {Name: "i"}},
	}
	rec.InductionVar = "i"
	ctx := VerifyContext{DeclaredInLoop: map[string]bool{"tmp": true}}
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for"), ctx)
	if !v.OK() || len(v.Findings) != 0 {
		t.Errorf("loop-declared and induction variables are implicitly private: %s", v.Report())
	}
}

func TestVerifyPrivateListedShared(t *testing.T) {
	rec := &ParallelFor{ROI: "r", Private: []VarClause{{Name: "t"}}}
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for shared(t)"), VerifyContext{})
	if v.OK() {
		t.Fatal("shared(t) against a private recommendation must fail")
	}
	if vars := findingVars(v, VerifyError); len(vars) != 1 || vars[0] != "t" {
		t.Errorf("errors = %v", vars)
	}
}

func TestVerifyReductionOperatorMismatch(t *testing.T) {
	rec := &ParallelFor{ROI: "r", Reductions: []ReductionClause{{Op: "*", Name: "p"}}}
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for reduction(+: p)"), VerifyContext{})
	if v.OK() {
		t.Fatal("operator mismatch must fail")
	}
	if !strings.Contains(v.Report(), "mismatch") {
		t.Errorf("report: %s", v.Report())
	}
}

func TestVerifyReductionUnderCriticalIsWarning(t *testing.T) {
	rec := &ParallelFor{ROI: "r", Reductions: []ReductionClause{{Op: "+", Name: "s"}}}
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for"),
		VerifyContext{HasCriticalInside: true})
	if !v.OK() {
		t.Errorf("reduction protected by critical is safe (if slow): %s", v.Report())
	}
	if len(findingVars(v, VerifyWarning)) != 1 {
		t.Errorf("want one warning: %s", v.Report())
	}
}

func TestVerifyLastPrivateDowngrade(t *testing.T) {
	rec := &ParallelFor{ROI: "r", LastPrivate: []VarClause{{Name: "v"}}}
	// private(v) is safe but drops the final value: warning.
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for private(v)"), VerifyContext{})
	if !v.OK() {
		t.Errorf("private against lastprivate is a warning: %s", v.Report())
	}
	// Nothing at all: error.
	v2 := VerifyParallelFor(rec, pfPragma(t, "omp parallel for"), VerifyContext{})
	if v2.OK() {
		t.Error("defaulted-shared against lastprivate must fail")
	}
}

func TestVerifyCleanPragmaReportsMatch(t *testing.T) {
	rec := &ParallelFor{ROI: "r", Shared: []VarClause{{Name: "a"}}}
	v := VerifyParallelFor(rec, pfPragma(t, "omp parallel for shared(a)"), VerifyContext{})
	if !v.OK() || !strings.Contains(v.Report(), "matches") {
		t.Errorf("clean verification should say so: %s", v.Report())
	}
}

func TestDeclaredInLoopWalker(t *testing.T) {
	f, err := lang.ParseAndCheck("t.mc", `
int main() {
	int outer = 0;
	for (int i = 0; i < 4; i++) {
		int a = i;
		if (a > 1) {
			int b = a;
			outer += b;
		}
		while (a > 0) {
			int c = a;
			a = a - c;
		}
	}
	return outer;
}`)
	if err != nil {
		t.Fatal(err)
	}
	forStmt := f.FuncByName("main").Body.Stmts[1].(*lang.ForStmt)
	decls := DeclaredInLoop(forStmt)
	for _, want := range []string{"i", "a", "b", "c"} {
		if !decls[want] {
			t.Errorf("%s should be declared-in-loop: %v", want, decls)
		}
	}
	if decls["outer"] {
		t.Error("outer is declared before the loop")
	}
}

func TestHasCriticalInsideWalker(t *testing.T) {
	f, err := lang.ParseAndCheck("t.mc", `
int g = 0;
int main() {
	for (int i = 0; i < 4; i++) {
		if (i > 0) {
			#pragma omp critical
			{
				g = g + i;
			}
		}
	}
	for (int j = 0; j < 4; j++) {
		g = g + j;
	}
	return g;
}`)
	if err != nil {
		t.Fatal(err)
	}
	body := f.FuncByName("main").Body.Stmts
	withCrit := body[0].(*lang.ForStmt)
	without := body[1].(*lang.ForStmt)
	if !HasCriticalInside(withCrit) {
		t.Error("nested critical not found")
	}
	if HasCriticalInside(without) {
		t.Error("false positive on plain loop")
	}
}

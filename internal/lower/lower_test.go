package lower_test

import (
	"strings"
	"testing"

	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
)

func compile(t *testing.T, src string, opts lower.Options) *ir.Program {
	t.Helper()
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	prog, err := lower.Lower(f, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := ir.VerifyProgram(prog); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return prog
}

func TestAllocasAtEntryHead(t *testing.T) {
	prog := compile(t, `
int f(int a, float b) {
	int x = 1;
	float y[4];
	if (a) {
		int z = 2;
		return z;
	}
	return x + y[0] + b;
}
int main() { return f(1, 2.0); }
`, lower.Options{})
	fn := prog.FuncByName("f")
	// Params a,b + locals x,y,z = 5 allocas, all at the head of entry.
	if len(fn.Allocas) != 5 {
		t.Fatalf("want 5 allocas, got %d", len(fn.Allocas))
	}
	entry := fn.Entry()
	for i := 0; i < 5; i++ {
		if _, ok := entry.Instrs[i].(*ir.Alloca); !ok {
			t.Errorf("entry instr %d is %s, want alloca", i, entry.Instrs[i].Mnemonic())
		}
	}
	// The array alloca spans 4 cells.
	for _, a := range fn.Allocas {
		if a.Sym != nil && a.Sym.Name == "y" && a.Cells != 4 {
			t.Errorf("y cells = %d", a.Cells)
		}
	}
}

func TestSourceMapping(t *testing.T) {
	prog := compile(t, `
int main() {
	int v = 3;
	v = v + 1;
	return v;
}`, lower.Options{})
	fn := prog.FuncByName("main")
	found := false
	fn.Instructions(func(in ir.Instr) bool {
		base := ir.Base(in)
		if st, ok := in.(*ir.Store); ok && st.Sym != nil && st.Sym.Name == "v" {
			found = true
			if !base.Pos.IsValid() {
				t.Error("store to v lacks a source position")
			}
		}
		return true
	})
	if !found {
		t.Fatal("no direct store to v — source mapping lost")
	}
}

func countInstrs[T ir.Instr](prog *ir.Program) int {
	n := 0
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			if _, ok := in.(T); ok {
				n++
			}
			return true
		})
	}
	return n
}

func TestROIMarkersBalancedOnEarlyExits(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		#pragma carmot roi body
		{
			s = s + i;
			if (s > 5) { break; }
			if (s == 2) { continue; }
			if (s == 3) { return s; }
			s = s + 1;
		}
	}
	return s;
}`, lower.Options{})
	begins := countInstrs[*ir.ROIBegin](prog)
	ends := countInstrs[*ir.ROIEnd](prog)
	if begins != 1 {
		t.Errorf("static ROI begins = %d, want 1", begins)
	}
	// Normal fallthrough + break + continue + return = 4 static ends.
	if ends != 4 {
		t.Errorf("static ROI ends = %d, want 4 (each early exit closes the invocation)", ends)
	}
}

func TestPragmaOnForWrapsLoopBody(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	#pragma carmot roi loop
	for (int i = 0; i < 4; i++) {
		s += i;
	}
	return s;
}`, lower.Options{})
	if len(prog.ROIs) != 1 {
		t.Fatalf("want 1 ROI, got %d", len(prog.ROIs))
	}
	roi := prog.ROIs[0]
	if roi.Loop == nil || roi.Loop.IndVar.Name != "i" || roi.Loop.Step != 1 {
		t.Errorf("loop info = %+v", roi.Loop)
	}
	if len(prog.Regions) != 1 || prog.Regions[0].Kind != ir.RegionCandidate {
		t.Errorf("regions = %v", prog.Regions)
	}
}

func TestOmpRegionsAndProfileOption(t *testing.T) {
	src := `
int main() {
	int s = 0;
	#pragma omp parallel for reduction(+: s)
	for (int i = 0; i < 4; i++) {
		s = s + i;
	}
	return s;
}`
	without := compile(t, src, lower.Options{})
	if len(without.ROIs) != 0 {
		t.Errorf("no ROI expected without ProfileOmp, got %d", len(without.ROIs))
	}
	if len(without.Regions) != 1 || without.Regions[0].Kind != ir.RegionFor {
		t.Errorf("regions = %v", without.Regions)
	}
	with := compile(t, src, lower.Options{ProfileOmp: true})
	if len(with.ROIs) != 1 || with.ROIs[0].Kind != ir.ROIOmpFor {
		t.Errorf("ProfileOmp should create an omp-for ROI, got %v", with.ROIs)
	}
	if with.Regions[0].ROI != with.ROIs[0] {
		t.Error("region not linked to its ROI")
	}
}

func TestWholeProgramROI(t *testing.T) {
	prog := compile(t, `
int helper() { return 1; }
int main() { return helper(); }
`, lower.Options{WholeProgramROI: true})
	if len(prog.ROIs) != 1 || prog.ROIs[0].Name != "main" {
		t.Fatalf("ROIs = %v", prog.ROIs)
	}
	if countInstrs[*ir.ROIBegin](prog) != 1 || countInstrs[*ir.ROIEnd](prog) != 1 {
		t.Error("whole-program ROI markers missing")
	}
}

func TestIgnoreCarmotPragmas(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	#pragma carmot roi x
	for (int i = 0; i < 3; i++) { s += i; }
	return s;
}`, lower.Options{IgnoreCarmotPragmas: true})
	if len(prog.ROIs) != 0 {
		t.Errorf("carmot pragmas should be ignored, got %d ROIs", len(prog.ROIs))
	}
}

func TestMarksForSectionsAndTasks(t *testing.T) {
	prog := compile(t, `
int a;
int b;
int work(int x) { return x * 2; }
int main() {
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			a = work(1);
			#pragma omp barrier
		}
		#pragma omp section
		{
			b = work(2);
			#pragma omp barrier
		}
	}
	#pragma omp task depend(out: a)
	{
		a = a + 1;
	}
	#pragma omp taskwait
	return a + b;
}`, lower.Options{})
	counts := map[ir.MarkKind]int{}
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			if m, ok := in.(*ir.Mark); ok {
				counts[m.Kind]++
			}
			return true
		})
	}
	if counts[ir.MarkRegionBegin] != 1 || counts[ir.MarkRegionEnd] != 1 {
		t.Errorf("region marks = %v", counts)
	}
	if counts[ir.MarkSectionBegin] != 2 || counts[ir.MarkSectionEnd] != 2 {
		t.Errorf("section marks = %v", counts)
	}
	if counts[ir.MarkTaskBegin] != 1 || counts[ir.MarkTaskEnd] != 1 {
		t.Errorf("task marks = %v", counts)
	}
	if counts[ir.MarkBarrier] != 3 {
		t.Errorf("barrier marks = %d, want 3 (2 barriers + taskwait)", counts[ir.MarkBarrier])
	}
	// Section end marks must carry their region (the simulator matches
	// on it).
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			if m, ok := in.(*ir.Mark); ok && m.Kind == ir.MarkSectionEnd && m.Region == nil {
				t.Error("section end mark lost its region")
			}
			return true
		})
	}
}

func TestPtrStoreFlag(t *testing.T) {
	prog := compile(t, `
struct node_t { struct node_t* next; int v; };
int main() {
	struct node_t* n = malloc(1);
	n->next = n;
	n->v = 5;
	return n->v;
}`, lower.Options{})
	ptrStores, plainStores := 0, 0
	prog.FuncByName("main").Instructions(func(in ir.Instr) bool {
		if st, ok := in.(*ir.Store); ok {
			if st.PtrStore {
				ptrStores++
			} else {
				plainStores++
			}
		}
		return true
	})
	// n = malloc (ptr), n->next = n (ptr); n->v = 5 is plain.
	if ptrStores != 2 {
		t.Errorf("ptr stores = %d, want 2", ptrStores)
	}
	if plainStores == 0 {
		t.Error("plain stores missing")
	}
}

func TestGlobalInitConstFolding(t *testing.T) {
	prog := compile(t, `
int a = 5;
float b = -2.5;
int c = sizeof(float);
int main() { return a; }
`, lower.Options{})
	if prog.Globals[0].Init == nil || prog.Globals[0].Init.Int != 5 {
		t.Errorf("a init = %v", prog.Globals[0].Init)
	}
	if prog.Globals[1].Init == nil || prog.Globals[1].Init.Float != -2.5 {
		t.Errorf("b init = %v", prog.Globals[1].Init)
	}
	if prog.Globals[2].Init == nil || prog.Globals[2].Init.Int != 1 {
		t.Errorf("c init = %v", prog.Globals[2].Init)
	}
}

func TestGlobalInitMustBeConstant(t *testing.T) {
	f, err := lang.ParseAndCheck("t.mc", `
int g = 1;
int h = g + 1;
int main() { return h; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lower.Lower(f, lower.Options{}); err == nil ||
		!strings.Contains(err.Error(), "constant") {
		t.Errorf("non-constant global init should fail, got %v", err)
	}
}

func TestMallocHints(t *testing.T) {
	prog := compile(t, `
struct s_t { int x; };
int* gp;
int main() {
	int* local = malloc(4);
	gp = malloc(2);
	struct s_t* anon = malloc(1);
	return local[0];
}`, lower.Options{})
	var hints []string
	var types []string
	prog.FuncByName("main").Instructions(func(in ir.Instr) bool {
		if m, ok := in.(*ir.Malloc); ok {
			hints = append(hints, m.Hint)
			types = append(types, m.TypeName)
		}
		return true
	})
	if len(hints) != 3 || hints[0] != "local" || hints[1] != "gp" || hints[2] != "anon" {
		t.Errorf("hints = %v", hints)
	}
	if types[2] != "struct s_t" {
		t.Errorf("type names = %v", types)
	}
}

func TestIRPrinterRoundTrip(t *testing.T) {
	prog := compile(t, `
int main() {
	int s = 0;
	#pragma carmot roi r
	for (int i = 0; i < 2; i++) { s += i; }
	return s;
}`, lower.Options{})
	text := prog.FuncByName("main").String()
	for _, want := range []string{"func main", "alloca", "roi.begin", "roi.end", "mark.region.begin", "condbr", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed IR missing %q:\n%s", want, text)
		}
	}
}

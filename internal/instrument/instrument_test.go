package instrument_test

import (
	"testing"

	"carmot/internal/instrument"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
	"carmot/internal/rt"
)

func compile(t *testing.T, src string, opts lower.Options) *ir.Program {
	t.Helper()
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	prog, err := lower.Lower(f, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

const loopSrc = `
extern int rand_seed(int s);
extern float rand_float();
extern int memcpy_cells(int* dst, int* src, int n);

int N = 64;
float* in;
float* out;
float alpha = 0.5;

void init() {
	in = malloc(N);
	out = malloc(N);
	rand_seed(1);
	for (int j = 0; j < N; j++) { in[j] = rand_float(); }
}

int* stage(int* buf) {
	memcpy_cells(buf, buf, 1);
	return buf;
}

float unusedHelper(float x) { return x * 2.0; }

void kernel() {
	float t;
	int dead = 7;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		t = in[i] * alpha;
		out[i] = t;
	}
}

int main() {
	init();
	kernel();
	float u = unusedHelper(1.0);
	return out[0] + u;
}
`

func apply(t *testing.T, prog *ir.Program, opts instrument.Options) *instrument.Plan {
	t.Helper()
	plan, err := instrument.Apply(prog, opts)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return plan
}

func TestNaiveInstrumentsEverything(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	plan := apply(t, prog, instrument.Naive())
	if plan.Stats.Instrumented != plan.Stats.AccessSites {
		t.Errorf("naive should keep all %d sites, kept %d", plan.Stats.AccessSites, plan.Stats.Instrumented)
	}
	if plan.Stats.O3Functions != 0 || plan.Stats.RangedEvents != 0 || plan.Stats.FixedEvents != 0 {
		t.Errorf("naive must not optimize: %+v", plan.Stats)
	}
	if plan.Stats.PinGatedCalls != plan.Stats.TotalCalls {
		t.Errorf("naive gates every call: %d/%d", plan.Stats.PinGatedCalls, plan.Stats.TotalCalls)
	}
}

func TestCarmotOptimizes(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	naive := apply(t, prog, instrument.Naive())
	naiveSites := naive.Stats.Instrumented
	plan := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	if plan.Stats.Instrumented >= naiveSites {
		t.Errorf("carmot %d sites, naive %d", plan.Stats.Instrumented, naiveSites)
	}
	// in[i] is a read-only induction-indexed array, out[i] write-only:
	// both aggregate; alpha is loop-invariant: fixed Input.
	if plan.Stats.RangedEvents < 2 {
		t.Errorf("expected ranged events for in/out, got %d", plan.Stats.RangedEvents)
	}
	if plan.Stats.FixedEvents < 1 {
		t.Errorf("expected a fixed Input event for alpha, got %d", plan.Stats.FixedEvents)
	}
	if plan.Stats.O3Functions == 0 {
		t.Error("init/stage/unusedHelper can be -O3 compiled")
	}
	if plan.Stats.PinGatedCalls >= plan.Stats.TotalCalls {
		t.Errorf("pin gating should spare math-only calls: %d/%d", plan.Stats.PinGatedCalls, plan.Stats.TotalCalls)
	}
}

func TestApplyIsIdempotent(t *testing.T) {
	prog := compile(t, loopSrc, lower.Options{})
	p1 := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	p2 := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	if p1.Stats != p2.Stats {
		t.Errorf("re-planning changed stats:\n%+v\n%+v", p1.Stats, p2.Stats)
	}
	// And switching back to naive fully strips loop instrumentation.
	p3 := apply(t, prog, instrument.Naive())
	if p3.Stats.RangedEvents != 0 {
		t.Error("strip failed: ranged events survive")
	}
	count := 0
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			switch in.(type) {
			case *ir.RangedEvent, *ir.FixedClass:
				count++
			}
			return true
		})
	}
	if count != 0 {
		t.Errorf("%d stale planner instructions in IR", count)
	}
}

func TestSyntheticAllocasNeverTracked(t *testing.T) {
	prog := compile(t, `
int main() {
	int a = 1;
	int b = 0;
	int c = a && b;
	return c;
}`, lower.Options{})
	apply(t, prog, instrument.Naive())
	for _, fn := range prog.Funcs {
		for _, a := range fn.Allocas {
			if a.Synthetic && !a.Promoted {
				t.Error("synthetic slot must be promoted in every mode")
			}
		}
	}
}

func TestMem2RegPromotion(t *testing.T) {
	prog := compile(t, `
int main() {
	int used = 0;
	int untouchedByROI = 42;
	#pragma carmot roi r
	{
		used = used + 1;
	}
	return used + untouchedByROI;
}`, lower.Options{})
	apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	for _, a := range prog.FuncByName("main").Allocas {
		if a.Sym == nil {
			continue
		}
		switch a.Sym.Name {
		case "used":
			if a.Promoted {
				t.Error("used is accessed in the ROI; must stay tracked")
			}
		case "untouchedByROI":
			if !a.Promoted {
				t.Error("untouchedByROI is invisible to the ROI; should promote")
			}
		}
	}
}

func TestReductionRecognition(t *testing.T) {
	prog := compile(t, `
int N = 16;
float* data;
void init() { data = malloc(N); }
float kernel() {
	float sum = 0.0;
	float prod = 1.0;
	float odd = 0.0;
	int* cnt = malloc(8);
	#pragma carmot roi r
	for (int i = 0; i < N; i++) {
		sum = sum + data[i];
		prod = prod * (data[i] + 1.0);
		odd = (odd + data[i]) * 0.5;
		cnt[i % 8] = cnt[i % 8] + 1;
	}
	return sum + prod + odd + cnt[0];
}
int main() { init(); return kernel(); }
`, lower.Options{})
	plan := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	declPos := map[string]string{}
	for _, fn := range prog.Funcs {
		for _, a := range fn.Allocas {
			if a.Sym != nil {
				declPos[a.Sym.Name] = a.Sym.Pos.String()
			}
		}
	}
	if op := plan.ReducibleVars[declPos["sum"]]; op != "+" {
		t.Errorf("sum reduce op = %q, want +", op)
	}
	if op := plan.ReducibleVars[declPos["prod"]]; op != "*" {
		t.Errorf("prod reduce op = %q, want *", op)
	}
	if op, ok := plan.ReducibleVars[declPos["odd"]]; ok {
		t.Errorf("odd is not a pure reduction, got %q", op)
	}
	// cnt[k] = cnt[k] + 1 through two structurally equal GEPs.
	foundCntReduction := false
	for _, s := range plan.Sites {
		if s.Write && s.ReduceOp == "+" && s.Func == "kernel" {
			foundCntReduction = true
		}
	}
	if !foundCntReduction {
		t.Error("cnt[k] = cnt[k] + 1 should be recognized as a + reduction site")
	}
}

func TestStaticVarUsesRecorded(t *testing.T) {
	prog := compile(t, `
int main() {
	int y = 1;
	int s = 0;
	#pragma carmot roi r
	{
		s = y + 1;
		s = s * 2;
		s = s * 3;
	}
	return s;
}`, lower.Options{})
	plan := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	if plan.Stats.RemovedByDataflow == 0 {
		t.Fatal("dataflow should remove something here")
	}
	if len(plan.StaticVarUses) == 0 {
		t.Error("removed variable accesses should contribute static use sites")
	}
}

func TestProfileDrivenTracking(t *testing.T) {
	src := `
struct n_t { struct n_t* next; int v; };
int main() {
	struct n_t* a = malloc(1);
	a->next = a;
	#pragma carmot roi r
	{
		a->v = a->v + 1;
	}
	return a->v;
}`
	prog := compile(t, src, lower.Options{})
	full := apply(t, prog, instrument.Carmot(rt.ProfileOpenMP))
	smart := apply(t, prog, instrument.Carmot(rt.ProfileSmartPtr))
	if smart.Stats.Instrumented >= full.Stats.Instrumented {
		t.Errorf("smart-pointer profile should track less: %d vs %d",
			smart.Stats.Instrumented, full.Stats.Instrumented)
	}
}

package lang

import (
	"fmt"
	"strings"
)

// PragmaKind enumerates the directives CARMOT-Go understands.
type PragmaKind int

// Pragma kinds. CarmotROI marks a region of interest for PSEC. The omp
// pragmas serve two roles: they express the benchmark's original (manual)
// parallelism, and — when profiling existing pragmas (§5.1) — their code
// regions are used as ROIs so CARMOT can verify them. OmpParallelSections,
// OmpSection, OmpBarrier, and OmpMaster are parsed and executed but are
// abstractions CARMOT does not generate (the ep/nab cases of Figure 6).
const (
	PragmaCarmotROI PragmaKind = iota
	PragmaOmpParallelFor
	PragmaOmpCritical
	PragmaOmpOrdered
	PragmaOmpTask
	PragmaOmpTaskWait
	PragmaOmpParallelSections
	PragmaOmpSection
	PragmaOmpBarrier
	PragmaOmpMaster
	PragmaStats // manual STATS Input-Output-State classification
)

var pragmaKindNames = map[PragmaKind]string{
	PragmaCarmotROI: "carmot roi", PragmaOmpParallelFor: "omp parallel for",
	PragmaOmpCritical: "omp critical", PragmaOmpOrdered: "omp ordered",
	PragmaOmpTask: "omp task", PragmaOmpTaskWait: "omp taskwait",
	PragmaOmpParallelSections: "omp parallel sections",
	PragmaOmpSection:          "omp section", PragmaOmpBarrier: "omp barrier",
	PragmaOmpMaster: "omp master", PragmaStats: "stats",
}

// String returns the directive spelling.
func (k PragmaKind) String() string { return pragmaKindNames[k] }

// Reduction is one reduction(op:var) clause entry.
type Reduction struct {
	Op  string // one of + * - (the OpenMP-supported operators we model)
	Var string
}

// Pragma is a parsed #pragma directive.
type Pragma struct {
	Kind Pragma0Kind
	Pos  Pos

	Name string // ROI name for carmot roi (optional)

	// omp parallel for clauses.
	Private      []string
	FirstPrivate []string
	LastPrivate  []string
	Shared       []string
	Reductions   []Reduction
	Ordered      bool // the loop contains an ordered region

	// omp task clauses.
	DependIn  []string
	DependOut []string

	// stats clauses (manual classification for the STATS use case).
	StatsInput  []string
	StatsOutput []string
	StatsState  []string
}

// Pragma0Kind aliases PragmaKind; kept distinct in the struct definition to
// make accidental integer mixing a compile error in client code.
type Pragma0Kind = PragmaKind

// ParsePragma parses the payload of a "#pragma" line (the text after the
// "#pragma" keyword).
func ParsePragma(payload string, pos Pos) (*Pragma, error) {
	s := &clauseScanner{text: payload}
	word := s.word()
	switch word {
	case "carmot":
		if s.word() != "roi" {
			return nil, &Error{Pos: pos, Msg: "expected 'roi' after '#pragma carmot'"}
		}
		p := &Pragma{Kind: PragmaCarmotROI, Pos: pos}
		p.Name = s.word() // optional
		return p, nil
	case "stats":
		p := &Pragma{Kind: PragmaStats, Pos: pos}
		for {
			clause := s.word()
			if clause == "" {
				return p, nil
			}
			args, err := s.parenList(pos, clause)
			if err != nil {
				return nil, err
			}
			switch clause {
			case "input":
				p.StatsInput = append(p.StatsInput, args...)
			case "output":
				p.StatsOutput = append(p.StatsOutput, args...)
			case "state":
				p.StatsState = append(p.StatsState, args...)
			default:
				return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unknown stats clause %q", clause)}
			}
		}
	case "omp":
		return parseOmpPragma(s, pos)
	}
	return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unknown pragma %q", payload)}
}

func parseOmpPragma(s *clauseScanner, pos Pos) (*Pragma, error) {
	directive := s.word()
	switch directive {
	case "critical":
		return &Pragma{Kind: PragmaOmpCritical, Pos: pos}, nil
	case "ordered":
		return &Pragma{Kind: PragmaOmpOrdered, Pos: pos}, nil
	case "barrier":
		return &Pragma{Kind: PragmaOmpBarrier, Pos: pos}, nil
	case "master":
		return &Pragma{Kind: PragmaOmpMaster, Pos: pos}, nil
	case "section":
		return &Pragma{Kind: PragmaOmpSection, Pos: pos}, nil
	case "taskwait":
		return &Pragma{Kind: PragmaOmpTaskWait, Pos: pos}, nil
	case "task":
		p := &Pragma{Kind: PragmaOmpTask, Pos: pos}
		for {
			clause := s.word()
			if clause == "" {
				return p, nil
			}
			if clause != "depend" {
				return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unknown task clause %q", clause)}
			}
			args, err := s.parenList(pos, clause)
			if err != nil {
				return nil, err
			}
			if len(args) < 2 || (args[0] != "in" && args[0] != "out") {
				return nil, &Error{Pos: pos, Msg: "depend clause requires (in: ...) or (out: ...)"}
			}
			if args[0] == "in" {
				p.DependIn = append(p.DependIn, args[1:]...)
			} else {
				p.DependOut = append(p.DependOut, args[1:]...)
			}
		}
	case "parallel":
		next := s.word()
		switch next {
		case "for":
			return parseParallelForClauses(s, pos)
		case "sections":
			return &Pragma{Kind: PragmaOmpParallelSections, Pos: pos}, nil
		}
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unsupported '#pragma omp parallel %s'", next)}
	}
	return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unsupported '#pragma omp %s'", directive)}
}

func parseParallelForClauses(s *clauseScanner, pos Pos) (*Pragma, error) {
	p := &Pragma{Kind: PragmaOmpParallelFor, Pos: pos}
	for {
		clause := s.word()
		if clause == "" {
			return p, nil
		}
		if clause == "ordered" {
			p.Ordered = true
			continue
		}
		args, err := s.parenList(pos, clause)
		if err != nil {
			return nil, err
		}
		switch clause {
		case "private":
			p.Private = append(p.Private, args...)
		case "firstprivate":
			p.FirstPrivate = append(p.FirstPrivate, args...)
		case "lastprivate":
			p.LastPrivate = append(p.LastPrivate, args...)
		case "shared":
			p.Shared = append(p.Shared, args...)
		case "reduction":
			if len(args) < 2 {
				return nil, &Error{Pos: pos, Msg: "reduction clause requires (op: var, ...)"}
			}
			op := args[0]
			if op != "+" && op != "*" && op != "-" {
				return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unsupported reduction operator %q", op)}
			}
			for _, v := range args[1:] {
				p.Reductions = append(p.Reductions, Reduction{Op: op, Var: v})
			}
		default:
			return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unknown parallel for clause %q", clause)}
		}
	}
}

// clauseScanner tokenizes pragma payloads: words, and parenthesized
// comma/colon-separated lists such as reduction(+:sum) or depend(in: a, b).
type clauseScanner struct {
	text string
	off  int
}

func (s *clauseScanner) skipSpace() {
	for s.off < len(s.text) && (s.text[s.off] == ' ' || s.text[s.off] == '\t') {
		s.off++
	}
}

// word returns the next bare word, or "" at end of input or before a paren.
func (s *clauseScanner) word() string {
	s.skipSpace()
	start := s.off
	for s.off < len(s.text) {
		c := s.text[s.off]
		if c == ' ' || c == '\t' || c == '(' {
			break
		}
		s.off++
	}
	return s.text[start:s.off]
}

// parenList parses "(a, b: c)" returning the items; ':' and ',' both
// separate items, so reduction(+:sum) yields ["+", "sum"].
func (s *clauseScanner) parenList(pos Pos, clause string) ([]string, error) {
	s.skipSpace()
	if s.off >= len(s.text) || s.text[s.off] != '(' {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("clause %q requires a parenthesized list", clause)}
	}
	s.off++
	start := s.off
	depth := 1
	for s.off < len(s.text) && depth > 0 {
		switch s.text[s.off] {
		case '(':
			depth++
		case ')':
			depth--
		}
		s.off++
	}
	if depth != 0 {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("unterminated %q clause", clause)}
	}
	inner := s.text[start : s.off-1]
	var items []string
	for _, part := range strings.FieldsFunc(inner, func(r rune) bool { return r == ',' || r == ':' }) {
		part = strings.TrimSpace(part)
		if part != "" {
			items = append(items, part)
		}
	}
	return items, nil
}

package interp

import "testing"

// TestEnsureResliceZeroes covers the in-place growth path: when the
// requested length fits the existing capacity, ensure must reslice and
// explicitly zero the newly exposed cells — append never guarantees the
// grown tail is clean, and interpreter memory is defined to read zero
// until written.
func TestEnsureResliceZeroes(t *testing.T) {
	backing := make([]uint64, 8192)
	for i := range backing {
		backing[i] = 0xdeadbeef
	}
	it := &Interp{mem: backing[:100]}
	it.ensure(200)
	if want := uint64(200 + 4096); uint64(len(it.mem)) != want {
		t.Fatalf("len = %d, want %d (n+4096 schedule)", len(it.mem), want)
	}
	if &it.mem[0] != &backing[0] {
		t.Fatalf("ensure copied despite sufficient capacity")
	}
	for i := 100; i < len(it.mem); i++ {
		if it.mem[i] != 0 {
			t.Fatalf("mem[%d] = %#x after reslice, want 0", i, it.mem[i])
		}
	}
}

// TestEnsureCopyDoublesCapacity covers the reallocation path: capacity at
// least doubles, content is preserved, and the exposed tail reads zero.
func TestEnsureCopyDoublesCapacity(t *testing.T) {
	it := &Interp{mem: make([]uint64, 100, 128)}
	for i := range it.mem {
		it.mem[i] = uint64(i)
	}
	it.ensure(200)
	if want := uint64(200 + 4096); uint64(len(it.mem)) != want {
		t.Fatalf("len = %d, want %d", len(it.mem), want)
	}
	if cap(it.mem) < 2*128 {
		t.Fatalf("cap = %d, want at least doubled (>= 256)", cap(it.mem))
	}
	for i := 0; i < 100; i++ {
		if it.mem[i] != uint64(i) {
			t.Fatalf("mem[%d] = %d after copy, want %d", i, it.mem[i], i)
		}
	}
	for i := 100; i < len(it.mem); i++ {
		if it.mem[i] != 0 {
			t.Fatalf("mem[%d] = %d after copy, want 0", i, it.mem[i])
		}
	}
}

// TestEnsureNoopWithinLength verifies ensure leaves memory alone when the
// requested length is already covered.
func TestEnsureNoopWithinLength(t *testing.T) {
	it := &Interp{mem: make([]uint64, 500)}
	p := &it.mem[0]
	it.ensure(400)
	if len(it.mem) != 500 || &it.mem[0] != p {
		t.Fatalf("ensure(400) changed a 500-cell memory (len=%d)", len(it.mem))
	}
}

// TestEnsureSparseStoreCellSweep drives ensure through native.Env's
// StoreCell with widely spaced addresses, the pattern that made the old
// fixed-step growth loop quadratic: each store must land in one grow,
// values must persist across growths, and untouched cells must read zero.
func TestEnsureSparseStoreCellSweep(t *testing.T) {
	it := &Interp{mem: make([]uint64, 1024, 1024+(1<<16))}
	addrs := []uint64{5_000, 40_000, 300_000, 1_000_000, 2_500_000}
	for i, a := range addrs {
		it.StoreCell(a, uint64(i)+1)
		if want := a + 1 + 4096; uint64(len(it.mem)) != want {
			t.Fatalf("after StoreCell(%d): len = %d, want %d", a, len(it.mem), want)
		}
	}
	for i, a := range addrs {
		if got := it.LoadCell(a); got != uint64(i)+1 {
			t.Fatalf("LoadCell(%d) = %d, want %d", a, got, i+1)
		}
		if got := it.LoadCell(a + 1); got != 0 {
			t.Fatalf("LoadCell(%d) = %d, want 0 (untouched neighbor)", a+1, got)
		}
	}
}

package rt

import (
	"fmt"

	"carmot/internal/core"
	"carmot/internal/faultinject"
)

// Shard op kinds, routed by the sequencer.
const (
	opEvent    uint8 = iota // structural event fan-out (ROI/alloc/range/fixed)
	opSums                  // condensed access summaries owned by this shard
	opUses                  // use-callstack block (filtered by sample residue)
	opFinalize              // fold and retire one allocation's FSA state
)

// shardOp is one unit of work for a shard. All ops for one shard arrive
// in the sequencer's global order, which is all the FSA needs: per-
// (ROI, cell) transitions only require per-cell ordering, and every cell
// maps to exactly one shard.
type shardOp struct {
	sums  []accSummary
	uses  []useRec
	ev    Event
	cold  EventCold
	info  *allocInfo // opEvent/EvAlloc
	alloc int32      // opFinalize
	kind  uint8
}

// cellTrack is the per-(ROI, cell) FSA instance. lastInv==0 means the
// cell has not been accessed in the ROI yet (invocations start at 1).
type cellTrack struct {
	state    core.FSAState
	lastInv  uint64
	firstSeq uint64
	lastSeq  uint64
}

// shardAlloc is a shard's view of one allocation: the shared identity
// plus tracking state for the cells this shard owns (every cells-th
// address starting at firstOwned).
type shardAlloc struct {
	info       *allocInfo
	firstOwned uint64 // lowest owned address; meaningless when owned==0
	owned      int64  // number of owned cells
	trackCells int64  // owned normally, 1 when governor-coarsened
	track      [][]cellTrack
	live       bool
}

// shardBatch is one flushed op buffer on a shard's channel. epoch is the
// per-shard flush sequence number the sequencer stamped (and journaled)
// at flush time; a respawned shard compares it against the epochs its
// journal replay covered to skip already-applied batches.
type shardBatch struct {
	epoch uint64
	ops   []shardOp
}

// maxShardRespawns bounds how many times one shard's supervisor attempts
// a respawn-and-replay before settling on the degrade rung for good — a
// deterministic fault in the data would otherwise replay forever.
const maxShardRespawns = 3

// shardState owns the FSA shadow state for every cell address with
// addr%k == id: the strided owner view, per-(ROI, cell) tracking, the
// per-ROI element accumulators, use-callstack sets, access stats, and
// reach first-touch times. It consumes ops from its channel until the
// sequencer closes it.
type shardState struct {
	rt  *Runtime
	cfg *Config
	id  uint64
	k   uint64
	in  chan shardBatch

	// live mirrors the sequencer's interval index for the allocations
	// this shard owns cells of: sorted by base, non-overlapping (the
	// sequencer retires reused ranges before re-registering them). hit
	// caches the last lookup — condensed blocks cluster accesses by
	// allocation, so most lookups skip the binary search entirely.
	live   []*shardAlloc
	hit    *shardAlloc
	allocs []*shardAlloc // by alloc id; nil where this shard owns no cells

	active []bool
	roiInv []uint64
	acc    []map[string]*elemAcc
	stats  []core.Stats
	touch  []map[int32]uint64 // per-ROI first-touch seq per alloc id

	// Supervision state (single-goroutine; only the shard itself touches
	// it). appliedEpoch is the newest epoch fully applied or replayed;
	// cur/curOp/haveCur track the in-hand batch across a contained panic;
	// reserved counts this shard's outstanding governor cell
	// reservations so a respawn can return them before replaying.
	appliedEpoch uint64
	cur          shardBatch
	curOp        int
	haveCur      bool
	reserved     int64
	respawns     int
}

func newShardState(r *Runtime, id, k uint64) *shardState {
	n := len(r.cfg.ROIs)
	s := &shardState{
		rt:     r,
		cfg:    &r.cfg,
		id:     id,
		k:      k,
		in:     make(chan shardBatch, 4),
		active: make([]bool, n),
		roiInv: make([]uint64, n),
		acc:    make([]map[string]*elemAcc, n),
		stats:  make([]core.Stats, n),
		touch:  make([]map[int32]uint64, n),
	}
	for i := range s.acc {
		s.acc[i] = map[string]*elemAcc{}
	}
	return s
}

// run is the shard's supervisor: consume() applies ops until the
// sequencer closes the channel; a panic escaping one op climbs the
// failure ladder. With Recover and a complete journal, the shard is
// respawned logically — fresh FSA/accumulator state, journal replayed
// from epoch one — and the run's report comes out byte-identical. When
// the journal is unavailable (budget refused/evicted the partition) or
// respawn attempts are exhausted, the faulted op is dropped and the
// shard keeps draining with its surviving state — the historical degrade
// rung — with the loss recorded honestly.
func (s *shardState) run() {
	defer s.rt.post.wg.Done()
	for {
		done, pan := s.consume()
		if done {
			return
		}
		s.rt.countPanic("shard")
		reason := fmt.Sprintf("shard %d panic: %v", s.id, pan)
		if s.rt.cfg.Recover && s.respawns < maxShardRespawns {
			s.respawns++
			if n, ok := s.rebuild(); ok {
				s.rt.recordRecovery(Recovery{Stage: "shard", ID: int(s.id),
					Outcome: RecoveryReplayed, Reason: reason, Ops: n})
				continue
			}
		}
		s.rt.recordError(reason)
		if s.rt.cfg.Recover {
			s.rt.recordRecovery(Recovery{Stage: "shard", ID: int(s.id),
				Outcome: RecoveryDegraded, Reason: reason})
			s.rt.recordDowngrade(reason, "drop-op", s.rt.accepted.Load())
		}
		// Skip the faulted op and resume with the surviving state.
		s.curOp++
	}
}

// consume drains the shard's channel, applying every op in order. It
// returns done=true when the channel closed, or the contained panic
// value. Batches whose epoch a journal replay already covered are
// skipped whole.
func (s *shardState) consume() (done bool, pan interface{}) {
	defer func() { pan = recover() }()
	for {
		if !s.haveCur {
			b, ok := <-s.in
			if !ok {
				return true, nil
			}
			if b.epoch <= s.appliedEpoch {
				continue
			}
			s.cur, s.curOp, s.haveCur = b, 0, true
		}
		for s.curOp < len(s.cur.ops) {
			faultinject.Fire("rt.shard.apply")
			s.apply(&s.cur.ops[s.curOp])
			s.curOp++
		}
		s.appliedEpoch = s.cur.epoch
		if s.rt.journal == nil {
			s.recycleOps(s.cur.ops)
		}
		s.haveCur = false
		s.cur = shardBatch{}
	}
}

// recycleOps returns a fully applied op buffer to the sequencer's free
// list. Only called on journal-off runs: a journaled buffer is retained
// for replay and must never be rewritten. Cleared first so the pool does
// not pin the summary/use blocks the ops referenced.
func (s *shardState) recycleOps(ops []shardOp) {
	clear(ops)
	select {
	case s.rt.post.opFree <- ops[:0]:
	default:
	}
}

// rebuild respawns the shard's logical state: every accumulator built so
// far is discarded and the partition's journal is replayed from the
// first epoch. This is sound wherever the original panic struck — even
// mid-mutation — because the replacement state derives from the journal
// alone. The in-hand batch was journaled before it was sent, so replay
// covers it too; the epoch check in consume() then skips whatever of it
// (and of the channel backlog) was already replayed. Returns the number
// of ops replayed, or ok=false when the journal is incomplete or the
// replay itself faults (state is then partial and the caller degrades).
func (s *shardState) rebuild() (n int, ok bool) {
	if s.rt.journal == nil {
		return 0, false
	}
	entries, complete := s.rt.journal.shardEntries(int(s.id))
	if !complete {
		return 0, false
	}
	defer func() {
		if p := recover(); p != nil {
			s.rt.countPanic("shard")
			s.rt.recordError(fmt.Sprintf("shard %d replay panic: %v", s.id, p))
			ok = false
		}
	}()
	faultinject.Fire("rt.shard.replay")
	s.resetState()
	for _, e := range entries {
		for i := range e.ops {
			s.apply(&e.ops[i])
		}
		s.appliedEpoch = e.epoch
		n += len(e.ops)
	}
	s.haveCur = false
	s.cur = shardBatch{}
	return n, true
}

// resetState discards every accumulator the shard built so a journal
// replay can rebuild them from scratch. Outstanding governor cell
// reservations are returned to the shared budget first — the replay will
// re-reserve what it needs.
func (s *shardState) resetState() {
	if s.reserved > 0 {
		s.rt.releaseCells(s.reserved)
		s.reserved = 0
	}
	n := len(s.cfg.ROIs)
	s.live, s.hit, s.allocs = nil, nil, nil
	s.active = make([]bool, n)
	s.roiInv = make([]uint64, n)
	s.acc = make([]map[string]*elemAcc, n)
	for i := range s.acc {
		s.acc[i] = map[string]*elemAcc{}
	}
	s.stats = make([]core.Stats, n)
	s.touch = make([]map[int32]uint64, n)
}

func (s *shardState) apply(op *shardOp) {
	switch op.kind {
	case opSums:
		s.applySums(op.sums)
	case opUses:
		s.applyUses(op.uses)
	case opFinalize:
		s.finalize(op.alloc)
	case opEvent:
		switch op.ev.Kind {
		case EvROIBegin:
			roi := int(op.ev.ROI)
			s.roiInv[roi]++
			s.active[roi] = true
		case EvROIEnd:
			s.active[int(op.ev.ROI)] = false
		case EvAlloc:
			s.register(op.info)
		case EvRange:
			s.applyRange(&op.ev, &op.cold)
		case EvFixed:
			s.applyFixed(&op.ev, &op.cold)
		}
	}
}

// ownedRange returns the lowest owned address in [base, base+cells) and
// the number of owned cells (0 when the range misses this residue).
func (s *shardState) ownedRange(base uint64, cells int64) (uint64, int64) {
	if cells <= 0 {
		return 0, 0
	}
	off := (s.id + s.k - base%s.k) % s.k
	if off >= uint64(cells) {
		return 0, 0
	}
	return base + off, int64((uint64(cells) - off + s.k - 1) / s.k)
}

// liveAfter returns the index of the first live interval with base >
// addr; the candidate owner of addr is the interval just before it.
func (s *shardState) liveAfter(addr uint64) int {
	lo, hi := 0, len(s.live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.live[mid].info.base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ownerOf resolves an owned address (addr%k == id) to its allocation.
func (s *shardState) ownerOf(addr uint64) *shardAlloc {
	if sa := s.hit; sa != nil && addr-sa.info.base < uint64(sa.info.cells) {
		return sa
	}
	i := s.liveAfter(addr)
	if i == 0 {
		return nil
	}
	sa := s.live[i-1]
	if addr-sa.info.base < uint64(sa.info.cells) {
		s.hit = sa
		return sa
	}
	return nil
}

// register installs a new allocation. Any previous owners of the range
// were already retired by finalize ops the sequencer emitted first, so
// the interval insert keeps the live set sorted and non-overlapping.
// Allocations the fanout over-approximated onto this shard (owned == 0)
// are recorded by id but never hold an interval: no address with our
// residue can fall inside their range.
func (s *shardState) register(info *allocInfo) {
	for int(info.id) >= len(s.allocs) {
		s.allocs = append(s.allocs, nil)
	}
	sa := &shardAlloc{info: info, live: true}
	sa.firstOwned, sa.owned = s.ownedRange(info.base, info.cells)
	s.allocs[info.id] = sa
	if sa.owned > 0 {
		at := s.liveAfter(info.base)
		s.live = append(s.live, nil)
		copy(s.live[at+1:], s.live[at:])
		s.live[at] = sa
	}
}

// finalize folds a dying allocation's per-ROI FSA states into the
// per-source-PSE accumulators and releases its tracking storage.
func (s *shardState) finalize(id int32) {
	if int(id) >= len(s.allocs) {
		return
	}
	sa := s.allocs[id]
	if sa == nil || !sa.live {
		return
	}
	sa.live = false
	if s.hit == sa {
		s.hit = nil
	}
	if sa.owned > 0 {
		if i := s.liveAfter(sa.info.base); i > 0 && s.live[i-1] == sa {
			s.live = append(s.live[:i-1], s.live[i:]...)
		}
	}
	if sa.track == nil {
		return
	}
	for roi, cells := range sa.track {
		if cells == nil {
			continue
		}
		s.rt.releaseCells(int64(len(cells)))
		s.reserved -= int64(len(cells))
		var e *elemAcc
		for off := range cells {
			ct := &cells[off]
			if ct.state == core.StateNone {
				continue
			}
			if e == nil {
				e = s.elemFor(roi, sa.info)
			}
			e.fold(s.globalOff(sa, off), ct.state.Sets(), ct.firstSeq, ct.lastSeq)
		}
	}
	sa.track = nil
}

// globalOff maps a local tracking slot back to the allocation-relative
// cell offset the report uses; governor-coarsened PSEs fold to offset 0,
// exactly like the sequential pipeline.
func (s *shardState) globalOff(sa *shardAlloc, local int) int {
	if sa.trackCells != sa.owned {
		return 0
	}
	return int(sa.firstOwned-sa.info.base) + local*int(s.k)
}

// localOff maps an owned address to its slot in a (possibly coarse)
// tracking slice.
func (s *shardState) localOff(cells []cellTrack, sa *shardAlloc, addr uint64) int {
	off := int((addr - sa.firstOwned) / s.k)
	if off >= len(cells) {
		return 0
	}
	return off
}

// trackFor returns the per-cell FSA slots for sa in roi, reserving them
// against the shared governor cell budget. On a cap breach it climbs the
// degradation ladder exactly like the sequential postprocessor did —
// except the escalation and the budget are now shared across shards, so
// reservations go through a CAS loop that can never overshoot the cap.
func (s *shardState) trackFor(sa *shardAlloc, roi int) []cellTrack {
	if sa.track != nil && sa.track[roi] != nil {
		return sa.track[roi]
	}
	if s.rt.gLevel.Load() >= degradeCountsOnly {
		return nil
	}
	if sa.trackCells == 0 {
		sa.trackCells = sa.owned
		if s.rt.gLevel.Load() >= degradeCoarseCells {
			sa.trackCells = 1
		}
	}
	for !s.rt.reserveCells(sa.trackCells) {
		if !s.rt.escalate(fmt.Sprintf("max-live-cells=%d", s.cfg.Limits.MaxLiveCells)) {
			// Ladder exhausted and still over budget (a grandfathered
			// fine-grained PSE under a tiny cap): skip this ROI's tracking.
			return nil
		}
		lvl := s.rt.gLevel.Load()
		if lvl >= degradeCountsOnly {
			return nil
		}
		if lvl >= degradeCoarseCells && sa.track == nil {
			// This PSE is not yet tracked in any ROI: coarsen it.
			sa.trackCells = 1
		}
	}
	if sa.track == nil {
		sa.track = make([][]cellTrack, len(s.cfg.ROIs))
	}
	sa.track[roi] = make([]cellTrack, sa.trackCells)
	s.reserved += sa.trackCells
	return sa.track[roi]
}

func (s *shardState) elemFor(roi int, info *allocInfo) *elemAcc {
	e := s.acc[roi][info.key]
	if e == nil {
		e = &elemAcc{desc: info.desc, descID: info.id,
			useSites: map[int32]map[core.CallstackID]struct{}{}}
		s.acc[roi][info.key] = e
	} else if info.id < e.descID {
		e.desc, e.descID = info.desc, info.id
	}
	return e
}

// touchReach records the first time this shard saw an access to alloc id
// within roi; the sequencer merges the per-shard minima into the reach
// graph at finish.
func (s *shardState) touchReach(roi int, id int32, seq uint64) {
	m := s.touch[roi]
	if m == nil {
		m = map[int32]uint64{}
		s.touch[roi] = m
	}
	if old, ok := m[id]; !ok || seq < old {
		m[id] = seq
	}
}

func (s *shardState) applySums(sums []accSummary) {
	numROIs := len(s.cfg.ROIs)
	for si := range sums {
		sum := &sums[si]
		sa := s.ownerOf(sum.addr)
		if sa == nil {
			continue
		}
		for roi := 0; roi < numROIs; roi++ {
			if !s.active[roi] {
				continue
			}
			st := &s.stats[roi]
			st.TotalAccesses += sum.count
			// One runtime event per condensed access: counting summaries
			// instead would make Events depend on batch boundaries.
			st.Events += sum.count
			if sa.info.desc.Kind == core.PSEVariable {
				st.VarAccesses += sum.count
			} else {
				st.MemAccesses += sum.count
			}
			if !s.cfg.Profile.Sets && !s.cfg.Profile.Reach {
				continue
			}
			cells := s.trackFor(sa, roi)
			if cells == nil {
				continue // governor: counts-only mode
			}
			ct := &cells[s.localOff(cells, sa, sum.addr)]
			inv := s.roiInv[roi]
			if ct.lastInv == 0 {
				ct.firstSeq = sum.firstSeq
				if s.cfg.Profile.Reach && sa.info.roiMask&(1<<uint(roi)) != 0 {
					s.touchReach(roi, sa.info.id, sum.firstSeq)
				}
			}
			ct.lastSeq = sum.lastSeq
			if ct.lastInv != inv {
				ct.state = ct.state.Next(true, sum.firstIsWrite)
				if sum.hasWrite {
					ct.state = ct.state.Next(false, true)
				}
				ct.lastInv = inv
			} else if sum.hasWrite {
				ct.state = ct.state.Next(false, true)
			}
		}
	}
}

func (s *shardState) applyUses(uses []useRec) {
	if !s.cfg.Profile.UseCallstacks || s.rt.gLevel.Load() >= degradeNoUseCS {
		return
	}
	numROIs := len(s.cfg.ROIs)
	for ui := range uses {
		u := &uses[ui]
		for _, addr := range u.sampleSet() {
			if addr%s.k != s.id {
				continue
			}
			sa := s.ownerOf(addr)
			if sa == nil {
				continue
			}
			for roi := 0; roi < numROIs; roi++ {
				if !s.active[roi] {
					continue
				}
				e := s.elemFor(roi, sa.info)
				set := e.useSites[u.site]
				if set == nil {
					set = map[core.CallstackID]struct{}{}
					e.useSites[u.site] = set
				}
				set[u.cs] = struct{}{}
			}
		}
	}
}

// applyFixed applies a compile-time classification (§4.4 opt 3) to the
// owned cells of the range.
func (s *shardState) applyFixed(ev *Event, cold *EventCold) {
	if !s.cfg.Profile.Sets {
		return
	}
	roi := int(ev.ROI)
	for i := uint64(0); i < uint64(cold.N); i++ {
		addr := ev.Addr + i
		if addr%s.k != s.id {
			continue
		}
		sa := s.ownerOf(addr)
		if sa == nil {
			continue
		}
		e := s.elemFor(roi, sa.info)
		e.fold(int(addr-sa.info.base), cold.Sets, ev.Seq, ev.Seq)
	}
}

// applyRange applies an aggregated access event (§4.4 opt 2) to the
// owned cells: each covered cell behaves as first-accessed in its own
// ROI invocation. The per-event Events count was charged once at the
// sequencer.
func (s *shardState) applyRange(ev *Event, cold *EventCold) {
	roi := int(ev.ROI)
	stride := int64(cold.Aux)
	if stride == 0 {
		stride = 1
	}
	st := &s.stats[roi]
	for i := int64(0); i < cold.N; i++ {
		addr := ev.Addr + uint64(i*stride)
		if addr%s.k != s.id {
			continue
		}
		sa := s.ownerOf(addr)
		if sa == nil {
			continue
		}
		st.TotalAccesses++
		if sa.info.desc.Kind == core.PSEVariable {
			st.VarAccesses++
		} else {
			st.MemAccesses++
		}
		if !s.cfg.Profile.Sets {
			continue
		}
		cells := s.trackFor(sa, roi)
		if cells == nil {
			continue // governor: counts-only mode
		}
		ct := &cells[s.localOff(cells, sa, addr)]
		if ct.lastInv == 0 {
			ct.firstSeq = ev.Seq
		}
		ct.lastSeq = ev.Seq
		ct.state = ct.state.Next(true, ev.Write)
	}
}

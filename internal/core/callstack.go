package core

import (
	"fmt"
	"strings"
)

// Frame is one call-stack entry: the function and the call-site position.
type Frame struct {
	Func string
	Pos  string
}

// CallstackID identifies an interned call stack. ID 0 is the empty stack.
type CallstackID int32

// CallstackTable interns call stacks so that each distinct stack is stored
// once and referenced by ID. Allocations made within the same function
// invocation share one interned stack — this is what makes the callstack
// clustering optimization (§4.4 opt 7) effective: the stack is computed
// and interned once per function entry, and every PSE allocated in that
// invocation reuses the ID.
type CallstackTable struct {
	stacks   [][]Frame
	interner map[string]CallstackID
	cap      int  // max distinct stacks (0 = unlimited)
	capped   bool // a new stack was collapsed to ID 0 by the cap
}

// NewCallstackTable returns an empty table with the empty stack at ID 0.
func NewCallstackTable() *CallstackTable {
	t := &CallstackTable{interner: map[string]CallstackID{}}
	t.stacks = append(t.stacks, nil) // ID 0: empty
	t.interner[""] = 0
	return t
}

// Intern returns the ID for the given stack, adding it if new.
func (t *CallstackTable) Intern(frames []Frame) CallstackID {
	var b strings.Builder
	for _, f := range frames {
		b.WriteString(f.Func)
		b.WriteByte('@')
		b.WriteString(f.Pos)
		b.WriteByte('|')
	}
	key := b.String()
	if id, ok := t.interner[key]; ok {
		return id
	}
	if t.cap > 0 && len(t.stacks) >= t.cap {
		// Table full: collapse new stacks to the empty stack instead of
		// growing without bound. The owner reports this via Capped.
		t.capped = true
		return 0
	}
	id := CallstackID(len(t.stacks))
	cp := make([]Frame, len(frames))
	copy(cp, frames)
	t.stacks = append(t.stacks, cp)
	t.interner[key] = id
	return id
}

// Frames returns the interned stack for id (outermost first).
func (t *CallstackTable) Frames(id CallstackID) []Frame {
	if int(id) >= len(t.stacks) {
		return nil
	}
	return t.stacks[id]
}

// Len returns the number of distinct interned stacks.
func (t *CallstackTable) Len() int { return len(t.stacks) }

// SetCap bounds the number of distinct stacks the table will intern;
// new stacks beyond the cap collapse to ID 0. Zero removes the bound.
func (t *CallstackTable) SetCap(n int) { t.cap = n }

// Capped reports whether the cap ever collapsed a new stack.
func (t *CallstackTable) Capped() bool { return t.capped }

// Format renders a stack as "main (a.mc:3:1) > work (a.mc:9:5)".
func (t *CallstackTable) Format(id CallstackID) string {
	frames := t.Frames(id)
	if len(frames) == 0 {
		return "<top>"
	}
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = fmt.Sprintf("%s (%s)", f.Func, f.Pos)
	}
	return strings.Join(parts, " > ")
}

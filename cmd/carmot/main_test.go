package main

import (
	"os"
	"path/filepath"
	"testing"
)

const demoSrc = `int N = 16;
float* a;
float total = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		t = a[i] * 2.0;
		total = total + t;
		a[i] = t;
	}
	return total;
}
`

func writeDemo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "demo.mc")
	if err := os.WriteFile(path, []byte(demoSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIModes(t *testing.T) {
	path := writeDemo(t)
	type mode struct {
		name                                              string
		use                                               string
		naive, omp, stats, whole, ir, psec, run, vfy, ann bool
		json                                              bool
		wantErr                                           bool
	}
	cases := []mode{
		{name: "recommend-openmp", use: "openmp", psec: true},
		{name: "recommend-task", use: "task", psec: true},
		{name: "recommend-stats", use: "stats", psec: true},
		{name: "smartptr-whole", use: "smartptr", whole: true, psec: true},
		{name: "naive", use: "openmp", naive: true},
		{name: "dump-ir", use: "openmp", ir: true},
		{name: "run", use: "openmp", run: true},
		{name: "annotate", use: "openmp", ann: true},
		{name: "json", use: "openmp", json: true},
		{name: "bad-use", use: "frob", wantErr: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := mainErr(path, c.use, c.naive, c.omp, c.stats, c.whole,
				c.ir, c.psec, c.run, c.vfy, c.ann, c.json, 100_000_000)
			if (err != nil) != c.wantErr {
				t.Errorf("mainErr error = %v, wantErr=%v", err, c.wantErr)
			}
		})
	}
}

func TestCLIMissingFile(t *testing.T) {
	if err := mainErr("/does/not/exist.mc", "openmp", false, true, false,
		false, false, false, false, false, false, false, 1000); err == nil {
		t.Error("missing file should error")
	}
}

func TestCLINoROI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.mc")
	if err := os.WriteFile(path, []byte("int main() { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mainErr(path, "openmp", false, true, false, false,
		false, true, false, false, false, false, 1000); err == nil {
		t.Error("program without ROIs should error in recommend mode")
	}
}

package core

import "sort"

// ReachGraph is the PSEC Reachability Graph (§3.1): nodes are PSEs
// allocated within the ROI, and a directed edge A→B records that a
// pointer to B escaped into A's storage (A references B). Cycles in this
// graph are exactly the reference-counting cycles that leak under C++
// smart pointers (§5.2).
type ReachGraph struct {
	nodes   []PSEDesc
	nodeIdx map[string]int
	edges   []*ReachEdge
	adj     map[int][]int
	// access[i] is the oldest (first) access time of node i, for the
	// weak-pointer suggestion.
	access []uint64
}

// ReachEdge is a reference from one PSE's storage to another PSE.
type ReachEdge struct {
	From, To  PSEDesc
	fromIdx   int
	toIdx     int
	FirstTime uint64
	LastTime  uint64
}

// NewReachGraph returns an empty graph.
func NewReachGraph() *ReachGraph {
	return &ReachGraph{nodeIdx: map[string]int{}, adj: map[int][]int{}}
}

// Node interns a PSE as a graph node and returns its index.
func (g *ReachGraph) Node(d PSEDesc) int {
	if i, ok := g.nodeIdx[d.Key()]; ok {
		return i
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, d)
	g.nodeIdx[d.Key()] = i
	g.access = append(g.access, ^uint64(0))
	return i
}

// Touch records an access to the node at time t (kept as the oldest).
func (g *ReachGraph) Touch(d PSEDesc, t uint64) {
	i := g.Node(d)
	if t < g.access[i] {
		g.access[i] = t
	}
}

// AddEdge records a reference from→to first observed at time t and
// returns the edge (existing edges get their LastTime refreshed).
func (g *ReachGraph) AddEdge(from, to PSEDesc, t uint64) *ReachEdge {
	fi, ti := g.Node(from), g.Node(to)
	for _, e := range g.edges {
		if e.fromIdx == fi && e.toIdx == ti {
			if t > e.LastTime {
				e.LastTime = t
			}
			if t < e.FirstTime {
				e.FirstTime = t
			}
			return e
		}
	}
	e := &ReachEdge{From: from, To: to, fromIdx: fi, toIdx: ti, FirstTime: t, LastTime: t}
	g.edges = append(g.edges, e)
	g.adj[fi] = append(g.adj[fi], ti)
	return e
}

// Nodes returns the interned PSE nodes.
func (g *ReachGraph) Nodes() []PSEDesc { return g.nodes }

// Edges returns all reference edges.
func (g *ReachGraph) Edges() []*ReachEdge { return g.edges }

// Cycle is one reference cycle: the node indices of a strongly connected
// component with at least one internal edge.
type Cycle struct {
	Nodes []PSEDesc
	Edges []*ReachEdge
}

// Cycles finds all reference cycles (Tarjan SCCs of size > 1 plus
// self-loops), ordered deterministically.
func (g *ReachGraph) Cycles() []Cycle {
	n := len(g.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var next int
	var sccs [][]int

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.adj[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}

	var out []Cycle
	for _, scc := range sccs {
		if len(scc) == 1 {
			v := scc[0]
			selfLoop := false
			for _, w := range g.adj[v] {
				if w == v {
					selfLoop = true
				}
			}
			if !selfLoop {
				continue
			}
		}
		inSCC := map[int]bool{}
		for _, v := range scc {
			inSCC[v] = true
		}
		var cyc Cycle
		sort.Ints(scc)
		for _, v := range scc {
			cyc.Nodes = append(cyc.Nodes, g.nodes[v])
		}
		for _, e := range g.edges {
			if inSCC[e.fromIdx] && inSCC[e.toIdx] {
				cyc.Edges = append(cyc.Edges, e)
			}
		}
		out = append(out, cyc)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Nodes[0].Key() < out[j].Nodes[0].Key()
	})
	return out
}

// WeakPointerSuggestion picks the reference in the cycle that should
// become a weak pointer (§3.2): the edge pointing to the node with the
// oldest access time, so the least recently relevant object stops keeping
// the cycle alive.
func (g *ReachGraph) WeakPointerSuggestion(c Cycle) *ReachEdge {
	if len(c.Edges) == 0 {
		return nil
	}
	oldest := -1
	var oldestTime uint64 = ^uint64(0)
	for _, d := range c.Nodes {
		i := g.nodeIdx[d.Key()]
		if g.access[i] <= oldestTime {
			if oldest == -1 || g.access[i] < oldestTime {
				oldestTime = g.access[i]
				oldest = i
			}
		}
	}
	var best *ReachEdge
	for _, e := range c.Edges {
		if e.toIdx == oldest {
			if best == nil || e.FirstTime < best.FirstTime {
				best = e
			}
		}
	}
	if best == nil {
		best = c.Edges[0]
	}
	return best
}

package lang

// This file defines the MiniC abstract syntax tree. Every node carries its
// source position so that the compiler can maintain the reversible
// source-to-IR mapping that PSEC requires (§4.4 of the paper).

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Expr is implemented by expression nodes. After semantic checking every
// expression carries its resolved type.
type Expr interface {
	Node
	ExprType() *Type
	setType(*Type)
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type exprBase struct {
	Pos  Pos
	Type *Type
}

func (e *exprBase) NodePos() Pos    { return e.Pos }
func (e *exprBase) ExprType() *Type { return e.Type }
func (e *exprBase) setType(t *Type) { e.Type = t }

type stmtBase struct{ Pos Pos }

func (s *stmtBase) NodePos() Pos { return s.Pos }
func (s *stmtBase) stmtNode()    {}

// StorageClass describes where a variable lives.
type StorageClass int

// Storage classes.
const (
	StorageLocal StorageClass = iota
	StorageParam
	StorageGlobal
)

// Symbol is a resolved variable: a named Program State Element at the
// source level. Each distinct declaration gets a unique ID.
type Symbol struct {
	ID      int
	Name    string
	Type    *Type
	Storage StorageClass
	Pos     Pos
	Func    *FuncDecl // enclosing function for locals/params, nil for globals

	// AddressTaken is set during checking when &sym occurs or when the
	// symbol is an array/struct used in a context that materializes its
	// address. Used by selective mem2reg.
	AddressTaken bool
}

// File is a parsed and checked MiniC translation unit.
type File struct {
	Name    string
	Structs []*StructType
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Externs []*ExternDecl

	structsByName map[string]*StructType
	funcsByName   map[string]*FuncDecl
	externsByName map[string]*ExternDecl
	NextSymID     int
}

// StructByName returns the named struct type, or nil.
func (f *File) StructByName(name string) *StructType { return f.structsByName[name] }

// FuncByName returns the named function, or nil.
func (f *File) FuncByName(name string) *FuncDecl { return f.funcsByName[name] }

// ExternByName returns the named extern declaration, or nil.
func (f *File) ExternByName(name string) *ExternDecl { return f.externsByName[name] }

// GlobalDecl is a file-scope variable declaration.
type GlobalDecl struct {
	Sym  *Symbol
	Init Expr // optional constant initializer (nil when absent)
	Pos  Pos
}

// NodePos returns the declaration position.
func (g *GlobalDecl) NodePos() Pos { return g.Pos }

// ExternDecl declares a precompiled native function (the code Pin must
// trace in the paper: code for which no sources are available).
type ExternDecl struct {
	Name   string
	Ret    *Type
	Params []*Symbol
	Pos    Pos
}

// NodePos returns the declaration position.
func (e *ExternDecl) NodePos() Pos { return e.Pos }

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*Symbol
	Body   *BlockStmt
	Pos    Pos

	// Locals collects every local variable declared anywhere in the body,
	// filled in during checking.
	Locals []*Symbol
}

// NodePos returns the definition position.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// ---- Statements ----

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	stmtBase
	Sym  *Symbol
	Init Expr // nil when absent
}

// IfStmt is `if (Cond) Then else Else`.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is `while (Cond) Body`.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// ForStmt is `for (Init; Cond; Post) Body`. Init may be a DeclStmt or
// ExprStmt; all three clauses may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	stmtBase
	Value Expr // nil for bare return
}

// BreakStmt is `break;`.
type BreakStmt struct{ stmtBase }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ stmtBase }

// ExprStmt is an expression evaluated for side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// FreeStmt is `free(p);`.
type FreeStmt struct {
	stmtBase
	Ptr Expr
}

// PragmaStmt attaches a parsed pragma to the statement it precedes.
type PragmaStmt struct {
	stmtBase
	Pragma *Pragma
	Body   Stmt
}

// ---- Expressions ----

// Ident is a reference to a variable or function name. After checking,
// exactly one of Sym/FuncRef/ExternRef is set.
type Ident struct {
	exprBase
	Name      string
	Sym       *Symbol
	FuncRef   *FuncDecl
	ExternRef *ExternDecl
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UnaryNeg   UnaryOp = iota // -x
	UnaryNot                  // !x
	UnaryDeref                // *p
	UnaryAddr                 // &x
)

// Unary is a unary expression.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd // && (short-circuit)
	BinOr  // || (short-circuit)
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

// String returns the operator spelling.
func (op BinaryOp) String() string { return binOpNames[op] }

// Binary is a binary expression.
type Binary struct {
	exprBase
	Op   BinaryOp
	L, R Expr
}

// AssignOp enumerates assignment operators.
type AssignOp int

// Assignment operators.
const (
	AssignSet AssignOp = iota // =
	AssignAdd                 // +=
	AssignSub                 // -=
	AssignMul                 // *=
	AssignDiv                 // /=
)

var assignOpNames = [...]string{"=", "+=", "-=", "*=", "/="}

// String returns the operator spelling.
func (op AssignOp) String() string { return assignOpNames[op] }

// Assign is an assignment expression; LHS must be an lvalue.
type Assign struct {
	exprBase
	Op  AssignOp
	LHS Expr
	RHS Expr
}

// IncDec is the postfix ++/-- statement-expression.
type IncDec struct {
	exprBase
	X   Expr
	Dec bool
}

// Call invokes a named function, an extern, or a function pointer.
// After checking exactly one of Func/Extern is set for direct calls;
// both are nil for indirect calls (Callee is then an fnptr expression).
type Call struct {
	exprBase
	Callee Expr // Ident for direct calls, fnptr-typed expr for indirect
	Args   []Expr
	Func   *FuncDecl
	Extern *ExternDecl
}

// Index is `Base[Idx]`; Base is an array lvalue or a pointer.
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Member is `Base.Name` or `Base->Name`.
type Member struct {
	exprBase
	Base  Expr
	Name  string
	Arrow bool
	Field *Field // resolved during checking
}

// MallocExpr is `malloc(n)` where n is the element count; the result type
// is inferred from the assignment context during checking and defaults to
// int*. MallocExpr allocates n * sizeof(elem) cells on the heap.
type MallocExpr struct {
	exprBase
	Count Expr
	Elem  *Type // element type; set during checking
}

// SizeofExpr is `sizeof(type)`, yielding the size in cells.
type SizeofExpr struct {
	exprBase
	Of *Type
}

// Package parexec simulates multicore execution of MiniC programs. The
// host this reproduction targets has a single CPU, so Figure 6's
// wall-clock speedups cannot materialize directly; instead the program
// runs serially under the interpreter (which preserves exact semantics)
// while a scheduler model computes the parallel makespan over N simulated
// threads from the interpreter's cycle counts:
//
//   - parallel-for regions: static chunking over iteration costs, bounded
//     below by the total time spent in critical/ordered sections (which
//     serialize) and the longest single iteration;
//   - parallel sections: per-section costs split into phases at barriers,
//     makespan = Σ_phase max_section (the SPMD pattern ep/nab use);
//   - omp tasks: list scheduling honoring depend(in/out) conflicts.
//
// Two plans replay the same program: the original parallelism (the
// benchmark's own pragmas / pthread-style sections) and the
// CARMOT-induced parallelism (the loops CARMOT recommends, with the
// recommended critical statements serialized). Comparing their simulated
// times against the serial run reproduces the shape of Figure 6.
package parexec

import (
	"errors"
	"sort"
	"strings"

	"carmot/internal/interp"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/recommend"
)

// Costs of the simulated OpenMP machinery, in interpreter cycles.
const (
	forkJoinCost  = 4000
	taskSpawnCost = 200
)

// Plan says which regions execute in parallel during a simulation.
type Plan struct {
	// Parallel marks the regions the plan parallelizes.
	Parallel map[*ir.ParRegion]bool
	// SerialLines are "file:line" prefixes whose instructions must be
	// accounted as serialized (CARMOT-recommended critical statements).
	SerialLines []string
	Threads     int
}

// OriginalPlan parallelizes every region expressed by the program's own
// omp pragmas (parallel for, parallel sections); carmot-roi candidate
// loops stay serial unless they carry an omp pragma themselves.
func OriginalPlan(prog *ir.Program, threads int) *Plan {
	p := &Plan{Parallel: map[*ir.ParRegion]bool{}, Threads: threads}
	for _, r := range prog.Regions {
		if r.Kind == ir.RegionFor || r.Kind == ir.RegionSections {
			p.Parallel[r] = true
		}
	}
	return p
}

// CarmotPlan parallelizes the loops CARMOT recommends: every candidate or
// omp-for region whose ROI has a parallel-for recommendation. The
// recommendation's critical statements become the serialized set.
// Sections-based parallelism is an abstraction CARMOT does not generate
// (§5.1: the ep/nab limitation), so those regions run serially.
func CarmotPlan(prog *ir.Program, threads int, recs map[*ir.ROI]*recommend.ParallelFor) *Plan {
	p := &Plan{Parallel: map[*ir.ParRegion]bool{}, Threads: threads}
	for _, r := range prog.Regions {
		if r.ROI == nil {
			continue
		}
		rec, ok := recs[r.ROI]
		if !ok || !rec.Parallel {
			continue
		}
		p.Parallel[r] = true
		for _, crit := range rec.Criticals {
			for _, st := range crit.Statements {
				p.SerialLines = append(p.SerialLines, lineOf(st.Pos))
			}
		}
	}
	sort.Strings(p.SerialLines)
	return p
}

// lineOf trims the column from "file:line:col".
func lineOf(pos string) string {
	if i := strings.LastIndex(pos, ":"); i >= 0 {
		return pos[:i]
	}
	return pos
}

// Result is the outcome of one simulated execution.
type Result struct {
	// SerialCycles is the plain serial execution time of the run.
	SerialCycles int64
	// SimCycles is the modeled multicore execution time.
	SimCycles int64
	// Run is the interpreter summary.
	Run *interp.Result
	// Truncated marks a simulation stopped by an execution budget
	// (interp.Options Ctx/Deadline/MaxSteps); the makespan covers only
	// the executed prefix.
	Truncated bool
}

// Speedup returns serial time over simulated parallel time.
func (r *Result) Speedup() float64 {
	if r.SimCycles <= 0 {
		return 1
	}
	return float64(r.SerialCycles) / float64(r.SimCycles)
}

// Simulate executes the program serially and computes the plan's
// simulated multicore time.
func Simulate(prog *ir.Program, plan *Plan, opts interp.Options) (*Result, error) {
	if plan.Threads <= 0 {
		plan.Threads = 24
	}
	markSerialLines(prog, plan.SerialLines)
	defer clearSerialMarks(prog)

	sink := newSink(plan)
	opts.Sink = sink
	it := interp.New(prog, opts)
	run, err := it.Run()
	if err != nil {
		// A budget stop still yields a usable makespan for the executed
		// prefix; the caller gets the partial result alongside the error.
		var be *interp.BudgetError
		if errors.As(err, &be) && run != nil {
			sim := sink.finish(run.Cycles)
			return &Result{SerialCycles: run.Cycles, SimCycles: sim, Run: run, Truncated: true}, err
		}
		return nil, err
	}
	sim := sink.finish(run.Cycles)
	return &Result{SerialCycles: run.Cycles, SimCycles: sim, Run: run}, nil
}

func markSerialLines(prog *ir.Program, lines []string) {
	if len(lines) == 0 {
		return
	}
	set := map[string]bool{}
	for _, l := range lines {
		set[l] = true
	}
	forEachInstr(prog, func(in ir.Instr) {
		base := ir.Base(in)
		if base.Pos.IsValid() && set[lineOf(base.Pos.String())] {
			base.Serial = true
		}
	})
}

func clearSerialMarks(prog *ir.Program) {
	forEachInstr(prog, func(in ir.Instr) { ir.Base(in).Serial = false })
}

func forEachInstr(prog *ir.Program, f func(ir.Instr)) {
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			f(in)
			return true
		})
	}
}

// task is one spawned omp task.
type task struct {
	cost      int64
	dependIn  []string
	dependOut []string
}

// sink consumes the interpreter's timeline and accumulates simulated
// time. It implements interp.TimelineSink.
type sink struct {
	plan *Plan

	simTime    int64 // simulated time accumulated so far
	lastSerial int64 // cycle count at the last accounting boundary

	// Parallel-for state (one active region at a time; regions whose
	// plan is serial are passed through).
	region       *ir.ParRegion
	regionStack  []*ir.ParRegion
	iterStart    int64
	iterSerStart int64
	critStart    int64
	critDepth    int
	iterCrit     int64
	iters        []int64
	iterSerial   []int64
	regionSerial int64 // in-region cycles outside iterations

	// Sections state.
	inSection  bool
	secPhases  [][]int64
	curSec     []int64
	segStart   int64
	sectionGap int64

	// Task state (top-level task pool).
	tasks     []task
	inTask    bool
	taskStart int64
}

func newSink(plan *Plan) *sink { return &sink{plan: plan} }

// account moves serial time forward to the given cycle count.
func (s *sink) account(cycles int64) {
	if cycles > s.lastSerial {
		s.simTime += cycles - s.lastSerial
		s.lastSerial = cycles
	}
}

// skip advances the boundary without accounting (cycles spent inside a
// parallel construct are accounted by its makespan instead).
func (s *sink) skip(cycles int64) {
	if cycles > s.lastSerial {
		s.lastSerial = cycles
	}
}

// ROIBoundary is part of interp.TimelineSink; ROI events carry no
// scheduling information (region marks delimit parallel constructs).
func (s *sink) ROIBoundary(begin bool, roi *ir.ROI, cycles, serialCycles int64) {}

// Mark consumes one timeline marker.
func (s *sink) Mark(kind ir.MarkKind, region *ir.ParRegion, taskPrag *lang.Pragma, cycles, serialCycles int64) {
	switch kind {
	case ir.MarkRegionBegin:
		if s.region != nil || region == nil || !s.plan.Parallel[region] {
			// Nested or serial region: pass through.
			s.regionStack = append(s.regionStack, nil)
			return
		}
		s.account(cycles)
		s.regionStack = append(s.regionStack, region)
		s.region = region
		s.iters = s.iters[:0]
		s.iterSerial = s.iterSerial[:0]
		s.regionSerial = 0
		s.secPhases = nil
		s.inSection = false
		s.sectionGap = 0
		s.segStart = cycles

	case ir.MarkRegionEnd:
		if len(s.regionStack) == 0 {
			return
		}
		top := s.regionStack[len(s.regionStack)-1]
		s.regionStack = s.regionStack[:len(s.regionStack)-1]
		if top == nil || top != s.region {
			return
		}
		s.skip(cycles)
		if s.region.Kind == ir.RegionSections {
			s.simTime += s.sectionsMakespan()
		} else {
			s.simTime += s.forMakespan()
		}
		s.region = nil

	case ir.MarkIterBegin:
		if s.region == nil || region != s.region {
			return
		}
		s.skip(cycles)
		s.iterStart = cycles
		s.iterSerStart = serialCycles
		s.iterCrit = 0

	case ir.MarkIterEnd:
		if s.region == nil || region != s.region {
			return
		}
		s.skip(cycles)
		s.iters = append(s.iters, cycles-s.iterStart)
		ser := (serialCycles - s.iterSerStart) + s.iterCrit
		if ser > cycles-s.iterStart {
			ser = cycles - s.iterStart
		}
		s.iterSerial = append(s.iterSerial, ser)

	case ir.MarkCriticalBegin, ir.MarkOrderedBegin:
		if s.critDepth == 0 {
			s.critStart = cycles
		}
		s.critDepth++

	case ir.MarkCriticalEnd, ir.MarkOrderedEnd:
		s.critDepth--
		if s.critDepth == 0 && s.region != nil {
			s.iterCrit += cycles - s.critStart
		}

	case ir.MarkSectionBegin:
		if s.region == nil || region != s.region {
			return
		}
		s.skip(cycles)
		s.sectionGap += cycles - s.segStart
		s.inSection = true
		s.curSec = nil
		s.segStart = cycles

	case ir.MarkSectionEnd:
		if s.region == nil || region != s.region || !s.inSection {
			return
		}
		s.skip(cycles)
		s.curSec = append(s.curSec, cycles-s.segStart)
		s.secPhases = append(s.secPhases, s.curSec)
		s.inSection = false
		s.segStart = cycles

	case ir.MarkBarrier:
		if s.inSection {
			// Phase boundary within a section.
			s.curSec = append(s.curSec, cycles-s.segStart)
			s.segStart = cycles
			return
		}
		// Top-level taskwait: schedule the pending task pool.
		s.account(cycles)
		s.flushTasks()

	case ir.MarkTaskBegin:
		if s.inTask {
			return
		}
		s.account(cycles)
		s.inTask = true
		s.taskStart = cycles
		t := task{}
		if taskPrag != nil {
			t.dependIn = taskPrag.DependIn
			t.dependOut = taskPrag.DependOut
		}
		s.tasks = append(s.tasks, t)

	case ir.MarkTaskEnd:
		if !s.inTask {
			return
		}
		s.skip(cycles)
		s.inTask = false
		s.tasks[len(s.tasks)-1].cost = cycles - s.taskStart
		s.simTime += taskSpawnCost

	case ir.MarkMasterBegin, ir.MarkMasterEnd:
		// Master blocks are modeled as ordinary code of their section.
	}
}

// forMakespan models a parallel-for execution: static chunking over the
// recorded iteration costs, bounded below by the serialized cycles (the
// critical/ordered content must execute one-at-a-time) and by the longest
// iteration.
func (s *sink) forMakespan() int64 {
	n := len(s.iters)
	if n == 0 {
		return forkJoinCost
	}
	t := s.plan.Threads
	chunk := (n + t - 1) / t
	var maxChunk, totalSerial, maxIter int64
	for i := 0; i < n; i += chunk {
		var sum int64
		for j := i; j < n && j < i+chunk; j++ {
			sum += s.iters[j]
		}
		if sum > maxChunk {
			maxChunk = sum
		}
	}
	for i, c := range s.iters {
		totalSerial += s.iterSerial[i]
		if c > maxIter {
			maxIter = c
		}
	}
	m := maxChunk
	if totalSerial > m {
		m = totalSerial
	}
	if maxIter > m {
		m = maxIter
	}
	m += forkJoinCost
	// A programmer applies a parallel-for only when profitable; when the
	// serialized content (critical/ordered) or the fork/join overhead
	// erases the gain, the loop stays serial.
	var serialSum int64
	for _, c := range s.iters {
		serialSum += c
	}
	if m >= serialSum {
		return serialSum
	}
	return m
}

// sectionsMakespan models SPMD sections: phases delimited by barriers,
// each phase as slow as its slowest section.
func (s *sink) sectionsMakespan() int64 {
	var phases int
	for _, sec := range s.secPhases {
		if len(sec) > phases {
			phases = len(sec)
		}
	}
	var m int64
	for p := 0; p < phases; p++ {
		var worst int64
		for _, sec := range s.secPhases {
			if p < len(sec) && sec[p] > worst {
				worst = sec[p]
			}
		}
		m += worst
	}
	// Section spawn gaps execute serially on the master.
	return m + s.sectionGap + forkJoinCost
}

// flushTasks list-schedules the pending task pool over the simulated
// threads, honoring depend(in/out) conflicts, and charges the makespan.
func (s *sink) flushTasks() {
	if len(s.tasks) == 0 {
		return
	}
	t := s.plan.Threads
	threadFree := make([]int64, t)
	done := make([]int64, len(s.tasks))
	for i, tk := range s.tasks {
		ready := int64(0)
		for j := 0; j < i; j++ {
			if conflicts(s.tasks[j], tk) && done[j] > ready {
				ready = done[j]
			}
		}
		// Earliest-available thread.
		best := 0
		for k := 1; k < t; k++ {
			if threadFree[k] < threadFree[best] {
				best = k
			}
		}
		start := threadFree[best]
		if ready > start {
			start = ready
		}
		done[i] = start + tk.cost
		threadFree[best] = done[i]
	}
	var makespan int64
	for _, d := range done {
		if d > makespan {
			makespan = d
		}
	}
	s.simTime += makespan + forkJoinCost
	s.tasks = s.tasks[:0]
}

func conflicts(a, b task) bool {
	inter := func(x, y []string) bool {
		for _, u := range x {
			for _, v := range y {
				if u == v {
					return true
				}
			}
		}
		return false
	}
	return inter(a.dependOut, b.dependIn) || inter(a.dependOut, b.dependOut) || inter(a.dependIn, b.dependOut)
}

// finish accounts the trailing serial time and returns the simulated
// total.
func (s *sink) finish(totalCycles int64) int64 {
	s.account(totalCycles)
	s.flushTasks()
	return s.simTime
}

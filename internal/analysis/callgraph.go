package analysis

import "carmot/internal/ir"

// CallGraph is the complete call graph of §4.4: the absence of an edge
// (f, g) guarantees f cannot invoke g. Indirect calls are resolved with
// the points-to analysis (the paper uses NOELLE's PDG for this).
type CallGraph struct {
	prog *ir.Program

	// CalleeFuncs/CalleeExterns give the possible targets of each call.
	CalleeFuncs   map[*ir.Call][]*ir.Func
	CalleeExterns map[*ir.Call][]*ir.Extern
	callers       map[*ir.Func]map[*ir.Func]bool
	callees       map[*ir.Func]map[*ir.Func]bool
	externCallees map[*ir.Func]map[*ir.Extern]bool
}

// ComputeCallGraph builds the complete call graph.
func ComputeCallGraph(prog *ir.Program, pt *PointsTo) *CallGraph {
	cg := &CallGraph{
		prog:          prog,
		CalleeFuncs:   map[*ir.Call][]*ir.Func{},
		CalleeExterns: map[*ir.Call][]*ir.Extern{},
		callers:       map[*ir.Func]map[*ir.Func]bool{},
		callees:       map[*ir.Func]map[*ir.Func]bool{},
		externCallees: map[*ir.Func]map[*ir.Extern]bool{},
	}
	addEdge := func(from, to *ir.Func) {
		if cg.callees[from] == nil {
			cg.callees[from] = map[*ir.Func]bool{}
		}
		cg.callees[from][to] = true
		if cg.callers[to] == nil {
			cg.callers[to] = map[*ir.Func]bool{}
		}
		cg.callers[to][from] = true
	}
	for _, fn := range prog.Funcs {
		fn.Instructions(func(in ir.Instr) bool {
			c, ok := in.(*ir.Call)
			if !ok {
				return true
			}
			if fr := c.DirectTarget(); fr != nil {
				if fr.Func != nil {
					cg.CalleeFuncs[c] = []*ir.Func{fr.Func}
					addEdge(fn, fr.Func)
				} else {
					cg.CalleeExterns[c] = []*ir.Extern{fr.Extern}
					if cg.externCallees[fn] == nil {
						cg.externCallees[fn] = map[*ir.Extern]bool{}
					}
					cg.externCallees[fn][fr.Extern] = true
				}
				return true
			}
			funcs, externs := pt.IndirectCallees(c)
			cg.CalleeFuncs[c] = funcs
			cg.CalleeExterns[c] = externs
			for _, g := range funcs {
				addEdge(fn, g)
			}
			for _, e := range externs {
				if cg.externCallees[fn] == nil {
					cg.externCallees[fn] = map[*ir.Extern]bool{}
				}
				cg.externCallees[fn][e] = true
			}
			return true
		})
	}
	return cg
}

// Callers returns the possible direct callers of fn.
func (cg *CallGraph) Callers(fn *ir.Func) []*ir.Func {
	out := make([]*ir.Func, 0, len(cg.callers[fn]))
	for f := range cg.callers[fn] {
		out = append(out, f)
	}
	return out
}

// OnStackAtROIStart returns the set of functions that may be on the call
// stack when some ROI starts: the functions containing ROIs and all their
// transitive callers. Every other function can be compiled with
// conventional -O3-style optimization (§4.4 opt 5) because its stack PSEs
// cannot cross any ROI boundary.
func (cg *CallGraph) OnStackAtROIStart() map[*ir.Func]bool {
	out := map[*ir.Func]bool{}
	var work []*ir.Func
	for _, roi := range cg.prog.ROIs {
		if !out[roi.Func] {
			out[roi.Func] = true
			work = append(work, roi.Func)
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for caller := range cg.callers[f] {
			if !out[caller] {
				out[caller] = true
				work = append(work, caller)
			}
		}
	}
	return out
}

// MayReachPrecompiled returns, per function, whether executing it may
// reach a precompiled (native) function that accesses program memory —
// the condition under which a call site needs the Pin-analog hooks
// (§4.4 opt 6).
func (cg *CallGraph) MayReachPrecompiled() map[*ir.Func]bool {
	out := map[*ir.Func]bool{}
	changed := true
	for changed {
		changed = false
		for _, fn := range cg.prog.Funcs {
			if out[fn] {
				continue
			}
			hit := false
			for e := range cg.externCallees[fn] {
				if e.AccessesMemory {
					hit = true
					break
				}
			}
			if !hit {
				for g := range cg.callees[fn] {
					if out[g] {
						hit = true
						break
					}
				}
			}
			if hit {
				out[fn] = true
				changed = true
			}
		}
	}
	return out
}

// CallNeedsPin reports whether a specific call site may transfer control
// into memory-accessing precompiled code.
func (cg *CallGraph) CallNeedsPin(c *ir.Call, mayReach map[*ir.Func]bool) bool {
	for _, e := range cg.CalleeExterns[c] {
		if e.AccessesMemory {
			return true
		}
	}
	for _, f := range cg.CalleeFuncs[c] {
		if mayReach[f] {
			return true
		}
	}
	// An indirect call with no resolved targets is treated conservatively.
	if c.DirectTarget() == nil && len(cg.CalleeFuncs[c]) == 0 && len(cg.CalleeExterns[c]) == 0 {
		return true
	}
	return false
}

// ReachableWithinROI returns every function whose code may execute within
// some dynamic ROI invocation: the ROI-containing functions plus the
// forward closure of the calls made lexically inside ROI regions.
// Instrumentation outside this set can never observe an in-ROI access.
func (cg *CallGraph) ReachableWithinROI(regions map[*ir.ROI]*ROIRegion) map[*ir.Func]bool {
	out := map[*ir.Func]bool{}
	var work []*ir.Func
	add := func(f *ir.Func) {
		if f != nil && !out[f] {
			out[f] = true
			work = append(work, f)
		}
	}
	for _, roi := range cg.prog.ROIs {
		// The containing function itself is in scope (its in-region code
		// needs instrumentation); its out-of-region calls are not.
		out[roi.Func] = true
	}
	for _, roi := range cg.prog.ROIs {
		region := regions[roi]
		if region == nil {
			continue
		}
		region.Instructions(func(in ir.Instr) bool {
			if c, ok := in.(*ir.Call); ok {
				for _, f := range cg.CalleeFuncs[c] {
					add(f)
				}
			}
			return true
		})
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for g := range cg.callees[f] {
			add(g)
		}
	}
	return out
}

package parexec_test

import (
	"testing"

	"carmot/internal/instrument"
	"carmot/internal/interp"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/lower"
	"carmot/internal/parexec"
	"carmot/internal/recommend"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := lang.ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("front end: %v", err)
	}
	prog, err := lower.Lower(f, lower.Options{ProfileOmp: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := instrument.Apply(prog, instrument.Options{}); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return prog
}

func simulate(t *testing.T, prog *ir.Program, plan *parexec.Plan) *parexec.Result {
	t.Helper()
	res, err := parexec.Simulate(prog, plan, interp.Options{MaxSteps: 100_000_000})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return res
}

const balancedLoop = `
float* a;
int N = 2000;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma omp parallel for private(t)
	for (int i = 0; i < N; i++) {
		t = a[i];
		for (int r = 0; r < 40; r++) { t = t * 0.99 + 1.0; }
		a[i] = t;
	}
	return a[7];
}`

func TestParallelForSpeedupScalesWithThreads(t *testing.T) {
	prog := compile(t, balancedLoop)
	s4 := simulate(t, prog, parexec.OriginalPlan(prog, 4))
	s16 := simulate(t, prog, parexec.OriginalPlan(prog, 16))
	if s4.Speedup() < 2.5 || s4.Speedup() > 4.2 {
		t.Errorf("4 threads: speedup %.2f, want ~4", s4.Speedup())
	}
	if s16.Speedup() <= s4.Speedup() {
		t.Errorf("16 threads (%.2f) should beat 4 threads (%.2f)", s16.Speedup(), s4.Speedup())
	}
	if s4.SerialCycles != s16.SerialCycles {
		t.Error("serial time must not depend on the plan")
	}
}

func TestSerialPlanHasNoSpeedup(t *testing.T) {
	prog := compile(t, balancedLoop)
	res := simulate(t, prog, &parexec.Plan{Threads: 8})
	if res.Speedup() > 1.01 || res.Speedup() < 0.99 {
		t.Errorf("empty plan speedup = %.3f, want 1.0", res.Speedup())
	}
}

func TestCriticalSectionBoundsSpeedup(t *testing.T) {
	prog := compile(t, `
float* a;
int N = 1200;
float acc = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma omp parallel for private(t)
	for (int i = 0; i < N; i++) {
		t = a[i];
		for (int r = 0; r < 10; r++) { t = t * 0.99 + 1.0; }
		#pragma omp critical
		{
			acc = (acc + t) / 2.0;
		}
	}
	return acc;
}`)
	free := simulate(t, prog, parexec.OriginalPlan(prog, 16))
	// The critical body is a visible fraction of the iteration; speedup
	// must stay clearly below the thread count.
	if free.Speedup() > 12 {
		t.Errorf("critical-bound loop sped up %.2fx on 16 threads", free.Speedup())
	}
	if free.Speedup() < 1.0 {
		t.Errorf("speedup %.2f below serial", free.Speedup())
	}
}

func TestSectionsWithBarrierPhases(t *testing.T) {
	prog := compile(t, `
int a;
int b;
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + i % 7; }
	return s;
}
int main() {
	#pragma omp parallel sections
	{
		#pragma omp section
		{
			a = work(20000);
			#pragma omp barrier
			#pragma omp master
			{
				a = a + b;
			}
		}
		#pragma omp section
		{
			b = work(20000);
			#pragma omp barrier
		}
	}
	return a;
}`)
	res := simulate(t, prog, parexec.OriginalPlan(prog, 8))
	// Two equal sections: speedup ≈ 2 regardless of thread count.
	if res.Speedup() < 1.6 || res.Speedup() > 2.2 {
		t.Errorf("two-section SPMD speedup = %.2f, want ~2", res.Speedup())
	}
}

func TestTaskDAGScheduling(t *testing.T) {
	prog := compile(t, `
int q0;
int q1;
int q2;
int r;
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + i % 5; }
	return s;
}
int main() {
	#pragma omp task depend(out: q0)
	{
		q0 = work(30000);
	}
	#pragma omp task depend(out: q1)
	{
		q1 = work(30000);
	}
	#pragma omp task depend(out: q2)
	{
		q2 = work(30000);
	}
	#pragma omp task depend(in: q0, q1, q2) depend(out: r)
	{
		r = q0 + q1 + q2;
	}
	#pragma omp taskwait
	return r;
}`)
	res := simulate(t, prog, parexec.OriginalPlan(prog, 8))
	// Three independent tasks run concurrently; the reducer waits.
	if res.Speedup() < 2.0 || res.Speedup() > 3.5 {
		t.Errorf("task DAG speedup = %.2f, want ~3", res.Speedup())
	}
}

func TestTaskDependenceSerializes(t *testing.T) {
	prog := compile(t, `
int q0;
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s = s + i % 5; }
	return s;
}
int main() {
	#pragma omp task depend(out: q0)
	{
		q0 = work(30000);
	}
	#pragma omp task depend(in: q0) depend(out: q0)
	{
		q0 = q0 + work(30000);
	}
	#pragma omp taskwait
	return q0;
}`)
	res := simulate(t, prog, parexec.OriginalPlan(prog, 8))
	if res.Speedup() > 1.1 {
		t.Errorf("chained tasks must serialize, got %.2fx", res.Speedup())
	}
}

func TestCarmotPlanSerializesCriticalLines(t *testing.T) {
	prog := compile(t, `
float* a;
int N = 1500;
float carry = 0.0;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float t;
	#pragma carmot roi chain
	for (int i = 0; i < N; i++) {
		t = a[i];
		for (int r = 0; r < 12; r++) { t = t * 0.98 + 0.5; }
		carry = (carry + t) / 2.0;
	}
	return carry;
}`)
	var roi *ir.ROI
	for _, r := range prog.ROIs {
		roi = r
	}
	if roi == nil {
		t.Fatal("no ROI")
	}
	// A recommendation whose critical covers the carry statement.
	rec := &recommend.ParallelFor{Parallel: true}
	var carryLine string
	prog.FuncByName("main").Instructions(func(in ir.Instr) bool {
		if st, ok := in.(*ir.Store); ok && st.Sym != nil && st.Sym.Name == "carry" {
			carryLine = ir.Base(in).Pos.String()
		}
		return true
	})
	if carryLine == "" {
		t.Fatal("carry store not found")
	}
	rec.Criticals = []recommend.CriticalAdvice{{
		PSE:        "carry",
		Statements: []recommend.StatementRef{{Pos: carryLine, IsWrite: true}},
	}}
	withCrit := simulate(t, prog, parexec.CarmotPlan(prog, 16, map[*ir.ROI]*recommend.ParallelFor{roi: rec}))
	noCrit := simulate(t, prog, parexec.CarmotPlan(prog, 16, map[*ir.ROI]*recommend.ParallelFor{roi: {Parallel: true}}))
	if withCrit.Speedup() >= noCrit.Speedup() {
		t.Errorf("serializing the carry line must cost speedup: %.2f vs %.2f",
			withCrit.Speedup(), noCrit.Speedup())
	}
	if withCrit.Speedup() < 1.0 {
		t.Errorf("still parallel outside the critical, got %.2f", withCrit.Speedup())
	}
}

func TestUnprofitableLoopStaysSerial(t *testing.T) {
	// Tiny iterations: fork/join overhead would dominate; the simulator
	// must fall back to serial execution rather than slow down.
	prog := compile(t, `
int main() {
	int s = 0;
	#pragma omp parallel for
	for (int i = 0; i < 4; i++) {
		s = s + i;
	}
	return s;
}`)
	res := simulate(t, prog, parexec.OriginalPlan(prog, 16))
	if res.Speedup() < 0.95 {
		t.Errorf("unprofitable loop should clamp to serial, got %.3f", res.Speedup())
	}
}

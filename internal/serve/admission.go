package serve

import (
	"sync"
	"time"
)

// admission is per-tenant token-bucket admission control, sitting above
// the runtime's per-session rt.Limits: Limits bound what one session
// may consume, the bucket bounds how many sessions one tenant may start.
// Each tenant owns an independent bucket of Burst tokens refilled at
// Rate tokens/second; a request costs one token, and an empty bucket is
// a shed decision with a retry hint — never a queued request, so one
// hot tenant cannot build a backlog that starves the rest.
//
// Buckets are created on a tenant's first request and expired by a lazy
// sweep once they have been idle long enough to be full again (refill
// time ≥ burst/rate): a full bucket is indistinguishable from a fresh
// one, so expiry is lossless, and a client cycling through fabricated
// tenant IDs can only grow the map to the number of IDs seen within one
// refill window instead of without bound.
type admission struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu         sync.Mutex
	tenants    map[string]*bucket
	sinceSweep int // admits since the last idle-bucket sweep
}

// sweepEvery is how many admits may pass between idle-bucket sweeps.
// Each sweep is O(tenants), so the amortized cost per admit is O(1)
// once the map is larger than sweepEvery.
const sweepEvery = 256

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(rate float64, burst int, now func() time.Time) *admission {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &admission{rate: rate, burst: float64(burst), now: now, tenants: make(map[string]*bucket)}
}

// admit spends one token from the tenant's bucket. On refusal it
// reports how long until a full token accrues — the Retry-After hint.
func (a *admission) admit(tenant string) (ok bool, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.now()
	if a.sinceSweep++; a.sinceSweep >= sweepEvery {
		a.sweep(t)
	}
	b, found := a.tenants[tenant]
	if !found {
		b = &bucket{tokens: a.burst, last: t}
		a.tenants[tenant] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * a.rate
	if b.tokens > a.burst {
		b.tokens = a.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// sweep drops every bucket whose lazy refill has already returned it to
// full: tokens + idle·rate ≥ burst means the tenant's next request
// would find the bucket exactly as a fresh one, so nothing is lost.
// Caller holds mu.
func (a *admission) sweep(t time.Time) {
	a.sinceSweep = 0
	for id, b := range a.tenants {
		if b.tokens+t.Sub(b.last).Seconds()*a.rate >= a.burst {
			delete(a.tenants, id)
		}
	}
}

// size reports the resident bucket count (tests).
func (a *admission) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tenants)
}

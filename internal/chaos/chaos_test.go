package chaos

import (
	"flag"
	"testing"
	"time"

	"carmot/internal/testutil"
)

var (
	chaosSeed  = flag.Int64("chaos.seed", 0xC405, "base seed for the chaos schedules")
	chaosRuns  = flag.Int("chaos.runs", 60, "number of seeded schedules to execute")
	chaosDeadl = flag.Duration("chaos.deadline", 20*time.Second, "per-schedule termination deadline")
)

// TestSeededSchedules executes the seeded fault schedules and checks
// every invariant on each. Schedules are pure functions of
// base-seed+index, so any failure message names the exact seed to
// replay:
//
//	go test ./internal/chaos -run TestSeededSchedules -chaos.seed <seed> -chaos.runs 1
func TestSeededSchedules(t *testing.T) {
	baseline := testutil.Goroutines()
	faulted, recovered, degraded := 0, 0, 0
	for i := 0; i < *chaosRuns; i++ {
		seed := *chaosSeed + int64(i)
		s := NewSchedule(seed)
		res := Execute(s, *chaosDeadl)
		if err := Check(res); err != nil {
			t.Errorf("schedule %d: %v", i, err)
			continue
		}
		if res.Diag.WorkerPanics+res.Diag.PostprocessorPanics > 0 {
			faulted++
		}
		if len(res.Diag.Recoveries) > 0 {
			if res.Diag.RecoveryFailed() {
				degraded++
			} else {
				recovered++
			}
		}
	}
	t.Logf("%d schedules: %d hit a panic fault, %d fully recovered, %d degraded honestly",
		*chaosRuns, faulted, recovered, degraded)
	// The distribution must actually exercise the subsystem under test:
	// a harness whose faults never land proves nothing.
	if faulted == 0 {
		t.Error("no schedule hit a fault — schedule distribution is broken")
	}
	if recovered == 0 {
		t.Error("no schedule recovered via replay — recovery path never exercised")
	}
	testutil.WaitGoroutines(t, baseline)
}

// TestScheduleDerivationIsDeterministic pins that a seed fully
// determines the schedule — the reproducibility contract behind
// printing seeds on failure.
func TestScheduleDerivationIsDeterministic(t *testing.T) {
	for i := int64(0); i < 20; i++ {
		a, b := NewSchedule(*chaosSeed+i), NewSchedule(*chaosSeed+i)
		if a.String() != b.String() {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", *chaosSeed+i, a, b)
		}
	}
}

// TestExecuteIsReproducible replays a fully-recovered faulty seed twice
// end-to-end and requires byte-identical reports — the property that
// makes a chaos failure debuggable. (Degraded runs drop a
// scheduling-chosen batch or op, so only recovered runs promise
// replay-stable bytes; their reports must equal the reference both
// times.)
func TestExecuteIsReproducible(t *testing.T) {
	// Scan for a seed whose schedule triggers a panic fault AND fully
	// recovers from it, so the replay covers the interesting path.
	for i := 0; i < 60; i++ {
		seed := *chaosSeed + 1000 + int64(i)
		s := NewSchedule(seed)
		r1 := Execute(s, *chaosDeadl)
		d := r1.Diag
		if d.WorkerPanics+d.PostprocessorPanics == 0 ||
			r1.Err != nil || d.RecoveryFailed() || d.Degraded() {
			continue
		}
		r2 := Execute(s, *chaosDeadl)
		if r1.Report != r1.Ref || r2.Report != r1.Ref {
			t.Fatalf("seed %d: recovered reports diverge from reference across replays", seed)
		}
		if r2.Err != nil {
			t.Fatalf("seed %d: replay reported error %v where original was clean", seed, r2.Err)
		}
		return
	}
	t.Fatal("no seed in the scan window triggered a fully recovered fault")
}

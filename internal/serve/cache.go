package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"carmot"
)

// cacheKey derives the program-cache key: the hash of the source text
// and every compile option that changes the lowered program. Requests
// for the same source under different ROI selections are distinct
// programs and must not share a cache slot.
func cacheKey(filename, source string, opts carmot.CompileOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%t%t%t%t\x00", filename,
		opts.ProfileOmpRegions, opts.ProfileStatsRegions, opts.WholeProgramROI, opts.IgnoreCarmotPragmas)
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one compiled program, or one compile in flight. Waiters
// block on ready; prog/err are immutable once ready is closed.
//
// run is a capacity-1 token granting the exclusive right to Profile the
// shared program: carmot.Profile instruments the program's IR in place,
// so two sessions may never run one Program concurrently. A session
// that loses the token race compiles a private copy instead of queueing
// (see Server.leaseProgram) — the cache trades compile work for
// concurrency, never correctness.
type cacheEntry struct {
	ready chan struct{}
	prog  *carmot.Program
	err   error
	run   chan struct{}
}

// tryRun claims the entry's exclusive run token without blocking.
func (e *cacheEntry) tryRun() (release func(), ok bool) {
	select {
	case e.run <- struct{}{}:
		return func() { <-e.run }, true
	default:
		return nil, false
	}
}

// programCache is an LRU of compiled programs with singleflight
// semantics: concurrent requests for the same key share one compile
// instead of racing N frontend passes. Compile failures are not
// retained — the next request retries, so a transient failure (or a
// corrected source under the same key, which cannot happen with content
// hashing but costs nothing to handle) does not stick.
type programCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // key → *cacheSlot element
	order   *list.List               // front = most recent

	hits, misses uint64
}

type cacheSlot struct {
	key   string
	entry *cacheEntry
}

func newProgramCache(capacity int) *programCache {
	if capacity < 1 {
		capacity = 1
	}
	return &programCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the (settled) cache entry for key, compiling at most once
// per key across concurrent callers. hit reports whether a previous
// compile was reused (in-flight compiles joined by this caller count as
// hits). The returned entry's prog/err are ready to read.
func (c *programCache) get(key string, compile func() (*carmot.Program, error)) (_ *cacheEntry, hit bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheSlot).entry
		c.hits++
		c.mu.Unlock()
		<-entry.ready
		return entry, true
	}
	entry := &cacheEntry{ready: make(chan struct{}), run: make(chan struct{}, 1)}
	el := c.order.PushFront(&cacheSlot{key: key, entry: entry})
	c.entries[key] = el
	c.misses++
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheSlot).key)
	}
	c.mu.Unlock()

	entry.prog, entry.err = compile()
	close(entry.ready)
	if entry.err != nil {
		// Do not retain failures; evict our own slot if still present.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return entry, false
}

// stats returns hit/miss counts and the current resident size.
func (c *programCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

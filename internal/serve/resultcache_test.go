package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carmot"
	"carmot/internal/testutil"
	"carmot/internal/wire"
)

// TestServeResultCacheByteIdentical is the cache's core contract: a hit
// replays the originally computed response body byte for byte, and the
// outcome lives in the X-Carmot-Result-Cache header — never in the body.
func TestServeResultCacheByteIdentical(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()
	req := profileRequest{Source: demoSrc, PSECs: true, Reports: true}

	w1, resp1 := postProfile(t, h, req, nil)
	if w1.Code != http.StatusOK || resp1.ExitCode != 0 {
		t.Fatalf("warm run: status %d exit %d", w1.Code, resp1.ExitCode)
	}
	if got := w1.Header().Get(ResultCacheHeader); got != "miss" {
		t.Fatalf("warm run outcome = %q, want miss", got)
	}

	// Opting out must run a fresh session, not consult the store.
	bypass := req
	bypass.NoResultCache = true
	w2, resp2 := postProfile(t, h, bypass, nil)
	if got := w2.Header().Get(ResultCacheHeader); got != "bypass" {
		t.Fatalf("bypass outcome = %q", got)
	}
	if !resp2.CacheHit {
		t.Error("bypass run should still reuse the compiled program")
	}

	w3, _ := postProfile(t, h, req, nil)
	if got := w3.Header().Get(ResultCacheHeader); got != "hit" {
		t.Fatalf("repeat outcome = %q, want hit", got)
	}
	if !bytes.Equal(w3.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatalf("cached response is not byte-identical to the original\noriginal:\n%s\ncached:\n%s",
			w1.Body.Bytes(), w3.Body.Bytes())
	}

	st := s.Snapshot()
	if st.ResultStores != 1 || st.ResultHits != 1 || st.ResultBypass != 1 {
		t.Errorf("stats = stores %d hits %d bypass %d, want 1/1/1",
			st.ResultStores, st.ResultHits, st.ResultBypass)
	}
	if st.ResultEntries != 1 || st.ResultBytes != int64(w1.Body.Len()) {
		t.Errorf("residency = %d entries / %d bytes, want 1 / %d",
			st.ResultEntries, st.ResultBytes, w1.Body.Len())
	}
}

// TestServeResultCacheDegradedNotCached: a truncated run must never
// enter the cache — the identical repeat runs again (and is again not
// stored).
func TestServeResultCacheDegradedNotCached(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()
	req := profileRequest{Source: spinSrc, TimeoutMs: 150}

	for i := 0; i < 2; i++ {
		w, resp := postProfile(t, h, req, nil)
		if w.Code != http.StatusOK || resp.ExitCode != 3 || resp.Kind != wire.KindBudget {
			t.Fatalf("run %d: status %d exit %d kind %q, want truncation", i, w.Code, resp.ExitCode, resp.Kind)
		}
		if got := w.Header().Get(ResultCacheHeader); got != "miss" {
			t.Fatalf("run %d outcome = %q: a degraded result was served from cache", i, got)
		}
	}
	st := s.Snapshot()
	if st.ResultStores != 0 || st.ResultHits != 0 || st.ResultUncacheable != 2 {
		t.Errorf("stats = stores %d hits %d uncacheable %d, want 0/0/2",
			st.ResultStores, st.ResultHits, st.ResultUncacheable)
	}
}

// TestServeResultCacheSingleflight: N identical concurrent requests run
// one session; the rest replay the leader's bytes (joining the flight
// or hitting the store, depending on arrival time).
func TestServeResultCacheSingleflight(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	s := New(Config{})
	h := s.Handler()
	// Long enough that the followers arrive while the leader's session
	// is still in flight.
	src := `int a[64];
int main() {
	int s = 0;
	#pragma carmot roi hot
	for (int i = 0; i < 30000; i++) { a[0] = a[0] + 1; s = s + a[0]; }
	return s % 251;
}
`
	const n = 4
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, resp := postProfile(t, h, profileRequest{Source: src, PSECs: true}, nil)
			if w.Code != http.StatusOK || resp.ExitCode != 0 {
				t.Errorf("request %d: status %d exit %d err %q", i, w.Code, resp.ExitCode, resp.Error)
			}
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body diverges from request 0", i)
		}
	}
	st := s.Snapshot()
	if st.Completed != 1 {
		t.Fatalf("%d sessions ran for %d identical concurrent requests, want 1 (joins %d, hits %d)",
			st.Completed, n, st.ResultJoins, st.ResultHits)
	}
	if st.ResultJoins+st.ResultHits != n-1 {
		t.Errorf("joins %d + hits %d != %d followers", st.ResultJoins, st.ResultHits, n-1)
	}
}

// TestResultCacheEviction unit-tests the byte-budgeted LRU: residency
// never exceeds the budget, victims leave in LRU order, and a body
// larger than the whole budget is not retained.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(100)
	store := func(key string, n int) {
		fl, leader := c.flight(key)
		if !leader {
			t.Fatalf("flight %q unexpectedly contended", key)
		}
		c.settle(key, fl, bytes.Repeat([]byte{'x'}, n))
	}
	store("a", 40)
	store("b", 40)
	if _, ok := c.lookup("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing before budget pressure")
	}
	store("c", 40) // 120 > 100: evict b
	if _, ok := c.lookup("b"); ok {
		t.Error("LRU victim b survived")
	}
	if _, ok := c.lookup("a"); !ok {
		t.Error("recently used a was evicted")
	}
	st := c.stats()
	if st.Bytes > 100 || st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want ≤100 bytes, 2 entries, 1 eviction", st)
	}
	store("huge", 200) // over the whole budget: dropped, evicts nothing
	if _, ok := c.lookup("huge"); ok {
		t.Error("over-budget body was retained")
	}
	if st := c.stats(); st.Entries != 2 {
		t.Errorf("over-budget store disturbed residency: %+v", st)
	}
}

// TestServeCacheInflightPinned: with cap=1, a second key landing while
// the first key's compile is in flight must not evict it — a concurrent
// getter for the in-flight key joins the one compile instead of starting
// a duplicate.
func TestServeCacheInflightPinned(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	c := newProgramCache(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var compilesA atomic.Int32

	leaderDone := make(chan *cacheEntry, 1)
	go func() {
		entry, _ := c.get("A", func() (*carmot.Program, error) {
			compilesA.Add(1)
			close(started)
			<-release
			return nil, nil
		})
		leaderDone <- entry
	}()
	<-started

	// B lands mid-compile; before pinning, the cap-1 trim evicted A here
	// and the joiner below re-compiled it.
	if entry, _ := c.get("B", func() (*carmot.Program, error) { return nil, nil }); entry.err != nil {
		t.Fatal(entry.err)
	}

	type joinResult struct {
		entry *cacheEntry
		hit   bool
	}
	joined := make(chan joinResult, 1)
	go func() {
		entry, hit := c.get("A", func() (*carmot.Program, error) {
			compilesA.Add(1)
			return nil, nil
		})
		joined <- joinResult{entry, hit}
	}()
	time.Sleep(10 * time.Millisecond) // let the joiner block on the flight
	close(release)

	leader := <-leaderDone
	follower := <-joined
	if n := compilesA.Load(); n != 1 {
		t.Fatalf("key A compiled %d times, want 1 (in-flight entry was evicted)", n)
	}
	if !follower.hit || follower.entry != leader {
		t.Errorf("joiner hit=%v entry==leader=%v, want a join of the in-flight compile",
			follower.hit, follower.entry == leader)
	}
	if _, _, size := c.stats(); size > 1 {
		t.Errorf("cache settled at %d entries, cap 1", size)
	}
}

// TestServeAdmissionBounded: a client cycling fabricated tenant IDs must
// not grow the bucket map without bound — the lazy sweep expires buckets
// once their refill makes them indistinguishable from fresh, and expiry
// loses nothing.
func TestServeAdmissionBounded(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(50, 100, func() time.Time { return now })
	for i := 0; i < 10_000; i++ {
		if ok, _ := a.admit(fmt.Sprintf("tenant-%d", i)); !ok {
			t.Fatalf("fresh tenant %d refused", i)
		}
		now = now.Add(time.Millisecond)
	}
	// One spent token refills in 20ms at rate 50, so at each sweep all
	// but the most recent tenants are already full again and expire.
	if sz := a.size(); sz > 2*sweepEvery {
		t.Fatalf("bucket map grew to %d under 10k one-shot tenants, want ≤ %d", sz, 2*sweepEvery)
	}

	// Quiesce past everyone's refill, drive one steady tenant through a
	// sweep interval: the map must collapse to that tenant alone.
	now = now.Add(3 * time.Second)
	for i := 0; i <= sweepEvery; i++ {
		a.admit("steady")
		now = now.Add(time.Millisecond)
	}
	if sz := a.size(); sz > 2 {
		t.Fatalf("idle buckets survived the sweep: %d resident", sz)
	}

	// Losslessness: a swept bucket must behave exactly like a fresh one —
	// the full burst, then refusal.
	for i := 0; i < 100; i++ {
		if ok, _ := a.admit("tenant-0"); !ok {
			t.Fatalf("swept tenant lost burst capacity at request %d", i)
		}
	}
	if ok, _ := a.admit("tenant-0"); ok {
		t.Fatal("swept tenant admitted past its burst")
	}
}
